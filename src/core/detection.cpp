#include "core/detection.hpp"

#include <cstdio>

namespace kshot::core {

const char* detection_class_name(DetectionClass c) {
  switch (c) {
    case DetectionClass::kNone: return "none";
    case DetectionClass::kMailboxFlip: return "mailbox-flip";
    case DetectionClass::kStagedSizeFlip: return "staged-size-flip";
    case DetectionClass::kMemWRewrite: return "memw-rewrite";
    case DetectionClass::kReplay: return "replay";
    case DetectionClass::kSmiSuppression: return "smi-suppression";
    case DetectionClass::kChunkReorder: return "chunk-reorder";
    case DetectionClass::kIntrospectionRepair: return "introspection-repair";
  }
  return "?";
}

bool DetectionReport::has(DetectionClass c) const {
  for (const auto& e : events) {
    if (e.cls == c) return true;
  }
  return false;
}

void DetectionReport::add(DetectionClass cls, SmmStatus status, u64 epoch,
                          std::string detail) {
  events.push_back({cls, status, epoch, std::move(detail)});
}

void DetectionReport::merge(DetectionReport other) {
  for (auto& e : other.events) events.push_back(std::move(e));
}

std::string DetectionReport::to_string() const {
  if (events.empty()) return "no detections\n";
  std::string out;
  char line[256];
  for (const auto& e : events) {
    std::snprintf(line, sizeof(line), "  [%s] status=%s epoch=%llu %s\n",
                  detection_class_name(e.cls), smm_status_name(e.status),
                  static_cast<unsigned long long>(e.session_epoch),
                  e.detail.c_str());
    out += line;
  }
  return out;
}

}  // namespace kshot::core
