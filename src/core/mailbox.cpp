#include "core/mailbox.hpp"

namespace kshot::core {

const char* smm_status_name(SmmStatus s) {
  switch (s) {
    case SmmStatus::kOk: return "ok";
    case SmmStatus::kNothingStaged: return "nothing staged";
    case SmmStatus::kMacFailure: return "MAC failure";
    case SmmStatus::kDigestFailure: return "digest failure";
    case SmmStatus::kBadPackage: return "bad package";
    case SmmStatus::kNoSession: return "no session";
    case SmmStatus::kNothingToRollback: return "nothing to roll back";
    case SmmStatus::kBadCommand: return "bad command";
    case SmmStatus::kChunkAccepted: return "chunk accepted";
    case SmmStatus::kChunkOutOfOrder: return "chunk out of order";
    case SmmStatus::kMissingDependency: return "missing dependency";
    case SmmStatus::kRevertBlocked: return "revert blocked by dependent";
  }
  return "?";
}

Status Mailbox::write_command(SmmCommand cmd) {
  return mem_.write_u64(base_ + MailboxLayout::kCommand,
                        static_cast<u64>(cmd), mode_);
}

Result<SmmCommand> Mailbox::read_command() const {
  auto v = mem_.read_u64(base_ + MailboxLayout::kCommand, mode_);
  if (!v) return v.status();
  if (*v > static_cast<u64>(SmmCommand::kRevertPatch)) {
    return SmmCommand::kIdle;
  }
  return static_cast<SmmCommand>(*v);
}

Status Mailbox::write_status(SmmStatus st) {
  return mem_.write_u64(base_ + MailboxLayout::kStatus, static_cast<u64>(st),
                        mode_);
}

Result<SmmStatus> Mailbox::read_status() const {
  auto v = mem_.read_u64(base_ + MailboxLayout::kStatus, mode_);
  if (!v) return v.status();
  return static_cast<SmmStatus>(*v);
}

namespace {
Status write_key(machine::PhysMem& mem, PhysAddr addr,
                 const crypto::X25519Key& k, machine::AccessMode mode) {
  return mem.write(addr, ByteSpan(k.data(), k.size()), mode);
}

Result<crypto::X25519Key> read_key(const machine::PhysMem& mem, PhysAddr addr,
                                   machine::AccessMode mode) {
  crypto::X25519Key k{};
  Status st = mem.read(addr, MutByteSpan(k.data(), k.size()), mode);
  if (!st.is_ok()) return st;
  return k;
}
}  // namespace

Status Mailbox::write_enclave_pub(const crypto::X25519Key& k) {
  return write_key(mem_, base_ + MailboxLayout::kEnclavePub, k, mode_);
}

Result<crypto::X25519Key> Mailbox::read_enclave_pub() const {
  return read_key(mem_, base_ + MailboxLayout::kEnclavePub, mode_);
}

Status Mailbox::write_smm_pub(const crypto::X25519Key& k) {
  return write_key(mem_, base_ + MailboxLayout::kSmmPub, k, mode_);
}

Result<crypto::X25519Key> Mailbox::read_smm_pub() const {
  return read_key(mem_, base_ + MailboxLayout::kSmmPub, mode_);
}

Status Mailbox::write_staged_size(u64 n) {
  return mem_.write_u64(base_ + MailboxLayout::kStagedSize, n, mode_);
}

Result<u64> Mailbox::read_staged_size() const {
  return mem_.read_u64(base_ + MailboxLayout::kStagedSize, mode_);
}

Status Mailbox::bump_heartbeat() {
  auto v = mem_.read_u64(base_ + MailboxLayout::kHeartbeat, mode_);
  if (!v) return v.status();
  return mem_.write_u64(base_ + MailboxLayout::kHeartbeat, *v + 1, mode_);
}

Result<u64> Mailbox::read_heartbeat() const {
  return mem_.read_u64(base_ + MailboxLayout::kHeartbeat, mode_);
}

Status Mailbox::write_session_id(u64 id) {
  return mem_.write_u64(base_ + MailboxLayout::kSessionId, id, mode_);
}

Result<u64> Mailbox::read_session_id() const {
  return mem_.read_u64(base_ + MailboxLayout::kSessionId, mode_);
}

Status Mailbox::write_cmd_seq(u64 seq) {
  return mem_.write_u64(base_ + MailboxLayout::kCmdSeq, seq, mode_);
}

Result<u64> Mailbox::read_cmd_seq() const {
  return mem_.read_u64(base_ + MailboxLayout::kCmdSeq, mode_);
}

Status Mailbox::write_cmd_seq_echo(u64 seq) {
  return mem_.write_u64(base_ + MailboxLayout::kCmdSeqEcho, seq, mode_);
}

Result<u64> Mailbox::read_cmd_seq_echo() const {
  return mem_.read_u64(base_ + MailboxLayout::kCmdSeqEcho, mode_);
}

Status Mailbox::write_session_epoch(u64 epoch) {
  return mem_.write_u64(base_ + MailboxLayout::kSessionEpoch, epoch, mode_);
}

Result<u64> Mailbox::read_session_epoch() const {
  return mem_.read_u64(base_ + MailboxLayout::kSessionEpoch, mode_);
}

Status Mailbox::write_status_cmd(u64 raw_cmd) {
  return mem_.write_u64(base_ + MailboxLayout::kStatusCmd, raw_cmd, mode_);
}

Result<u64> Mailbox::read_status_cmd() const {
  return mem_.read_u64(base_ + MailboxLayout::kStatusCmd, mode_);
}

Status Mailbox::write_revert_target(u64 id_hash) {
  return mem_.write_u64(base_ + MailboxLayout::kRevertTarget, id_hash, mode_);
}

Result<u64> Mailbox::read_revert_target() const {
  return mem_.read_u64(base_ + MailboxLayout::kRevertTarget, mode_);
}

Status Mailbox::write_query_size(u64 n) {
  return mem_.write_u64(base_ + MailboxLayout::kQuerySize, n, mode_);
}

Result<u64> Mailbox::read_query_size() const {
  return mem_.read_u64(base_ + MailboxLayout::kQuerySize, mode_);
}

Result<MailboxSnapshot> Mailbox::snapshot() const {
  MailboxSnapshot s;
  auto raw = mem_.read_u64(base_ + MailboxLayout::kCommand, mode_);
  if (!raw) return raw.status();
  s.raw_command = *raw;
  s.command = s.command_in_range() ? static_cast<SmmCommand>(s.raw_command)
                                   : SmmCommand::kIdle;
  auto epub = read_enclave_pub();
  if (!epub) return epub.status();
  s.enclave_pub = *epub;
  auto spub = read_smm_pub();
  if (!spub) return spub.status();
  s.smm_pub = *spub;
  auto sz = read_staged_size();
  if (!sz) return sz.status();
  s.staged_size = *sz;
  auto st = read_status();
  if (!st) return st.status();
  s.status = *st;
  auto hb = read_heartbeat();
  if (!hb) return hb.status();
  s.heartbeat = *hb;
  auto sid = read_session_id();
  if (!sid) return sid.status();
  s.session_id = *sid;
  auto seq = read_cmd_seq();
  if (!seq) return seq.status();
  s.cmd_seq = *seq;
  auto echo = read_cmd_seq_echo();
  if (!echo) return echo.status();
  s.cmd_seq_echo = *echo;
  auto epoch = read_session_epoch();
  if (!epoch) return epoch.status();
  s.session_epoch = *epoch;
  auto rt = read_revert_target();
  if (!rt) return rt.status();
  s.revert_target = *rt;
  return s;
}

}  // namespace kshot::core
