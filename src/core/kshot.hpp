// KShot public API: the end-to-end live-patch pipeline of paper Fig. 2.
//
//   Kshot kshot(kernel, sgx, server, channel);
//   kshot.install();                        // firmware + enclave setup
//   auto report = kshot.live_patch("CVE-2017-17806");
//   kshot.rollback();                       // if the patch misbehaves
//   kshot.introspect();                     // detect/repair reversion
//
// The class also plays the role of the *untrusted helper application*: all
// its direct machine-memory accesses use normal (kernel-privilege) mode, so
// everything it relays can be tampered with by a rootkit — by construction
// the only consequences are detected integrity failures.
#pragma once

#include "core/kshot_enclave.hpp"
#include "core/smm_handler.hpp"
#include "kernel/scheduler.hpp"
#include "netsim/channel.hpp"
#include "netsim/patch_server.hpp"

namespace kshot::core {

/// Table II columns (microseconds; real measured work + modeled link time).
struct SgxPhaseTimings {
  double fetch_us = 0;       // request/response crypto + modeled network
  double preprocess_us = 0;  // integrity check, layout, branch replacement,
                             // sealing for SMM
  double passing_us = 0;     // writing mem_W + mailbox (untrusted app)
  [[nodiscard]] double total_us() const {
    return fetch_us + preprocess_us + passing_us;
  }
};

/// Table III columns (microseconds).
struct SmmPhaseTimings {
  double keygen_us = 0;
  double decrypt_us = 0;
  double verify_us = 0;
  double apply_us = 0;
  double switch_us = 0;       // modeled SMI entry + RSM, both SMIs
  double total_us = 0;        // sum of the above
  double modeled_total_us = 0;  // virtual-clock downtime incl. switches
};

struct PatchReport {
  std::string id;
  bool success = false;
  SmmStatus smm_status = SmmStatus::kOk;
  PackageStats stats;
  SgxPhaseTimings sgx;
  SmmPhaseTimings smm;
  /// Virtual cycles the OS was paused (both SMIs), from the machine clock.
  u64 downtime_cycles = 0;
};

struct DosCheckReport {
  bool smm_alive = false;       // heartbeat advanced when poked
  bool staging_observed = false;  // SMM saw a staged package this session
  bool dos_suspected = false;
};

class Kshot {
 public:
  Kshot(kernel::Kernel& kernel, sgx::SgxRuntime& sgx,
        netsim::PatchServer& server, netsim::Channel& channel,
        u64 entropy_seed = 0xC0FFEE);

  /// One-time setup: registers the SMM handler and locks SMRAM (firmware
  /// step), loads the preprocessing enclave (boot-time step). Must run
  /// before any kernel code executes untrusted modules.
  /// `watchdog_interval_cycles`, when nonzero, arms a firmware periodic SMI
  /// on which the handler runs its introspection sweep automatically — the
  /// SMM-based kernel protection deployment of §V-D.
  Status install(u64 watchdog_interval_cycles = 0);

  /// Fetches, preprocesses, and applies `patch_id` end to end. The target
  /// OS keeps running except during the two SMIs.
  Result<PatchReport> live_patch(const std::string& patch_id);

  /// Streaming variant for packages larger than mem_W: the sealed package
  /// crosses the reserved region in `chunk_bytes`-sized pieces, one SMI per
  /// chunk, with per-chunk authenticated ordering. Downtime is spread over
  /// the chunk SMIs; the patch itself still applies atomically after the
  /// final chunk verifies.
  Result<PatchReport> live_patch_chunked(const std::string& patch_id,
                                         u32 chunk_bytes);

  /// Rolls back the most recent patch (remote rollback instruction, §V-C).
  Result<PatchReport> rollback();

  /// SMM introspection sweep (§V-D): verifies and repairs trampolines,
  /// mem_X contents, and reserved-region page attributes.
  Result<IntrospectionReport> introspect();

  /// Arms the SMM kernel-text guard (§IV-A "kernel introspection module for
  /// kernel protection"): snapshots the just-booted kernel text into SMRAM
  /// state and builds the kernel-mutable window list from the symbol
  /// table's ftrace pads. Call at trusted-boot time, right after install().
  Status arm_kernel_guard();

  /// DoS detection handshake (§V-D): the remote server verifies with the
  /// SMM handler that patch staging actually happened.
  Result<DosCheckReport> dos_check();

  [[nodiscard]] SmmPatchHandler& handler() { return *handler_; }
  [[nodiscard]] KshotEnclave& enclave() { return *enclave_; }

  /// True if a trampoline for `function` is currently installed.
  [[nodiscard]] bool is_patched(const std::string& function) const;

  /// Trusted code base of the deployment pipeline in bytes (SMM handler
  /// state + enclave EPC footprint); used by the Table V comparison.
  [[nodiscard]] size_t tcb_bytes() const;

 private:
  Result<SmmStatus> trigger_and_status(SmmCommand cmd);

  kernel::Kernel& kernel_;
  sgx::SgxRuntime& sgx_;
  netsim::PatchServer& server_;
  netsim::Channel& channel_;
  u64 entropy_seed_;

  std::unique_ptr<SmmPatchHandler> handler_;
  std::unique_ptr<KshotEnclave> enclave_;
  bool installed_ = false;
};

}  // namespace kshot::core
