// KShot public API: the end-to-end live-patch pipeline of paper Fig. 2.
//
//   Kshot kshot(kernel, sgx, server, channel);
//   kshot.install();                        // firmware + enclave setup
//   auto report = kshot.live_patch("CVE-2017-17806");
//   kshot.rollback();                       // if the patch misbehaves
//   kshot.introspect();                     // detect/repair reversion
//
// The class also plays the role of the *untrusted helper application*: all
// its direct machine-memory accesses use normal (kernel-privilege) mode, so
// everything it relays can be tampered with by a rootkit — by construction
// the only consequences are detected integrity failures.
#pragma once

#include "core/kshot_enclave.hpp"
#include "core/retry.hpp"
#include "core/smm_handler.hpp"
#include "kernel/scheduler.hpp"
#include "netsim/channel.hpp"
#include "netsim/patch_server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace kshot::core {

/// Table II columns (microseconds; real measured work + modeled link time).
struct SgxPhaseTimings {
  double fetch_us = 0;       // request/response crypto + modeled network
  double preprocess_us = 0;  // integrity check, layout, branch replacement,
                             // sealing for SMM
  double passing_us = 0;     // writing mem_W + mailbox (untrusted app)
  [[nodiscard]] double total_us() const {
    return fetch_us + preprocess_us + passing_us;
  }
};

/// Table III columns (microseconds).
struct SmmPhaseTimings {
  double keygen_us = 0;
  double decrypt_us = 0;
  double verify_us = 0;
  double apply_us = 0;
  double switch_us = 0;       // modeled SMI entry + RSM, both SMIs
  double total_us = 0;        // sum of the above
  double modeled_total_us = 0;  // virtual-clock downtime incl. switches
};

/// Attempt/retry/abort accounting for one live_patch run (fault-injection
/// campaigns assert on these to see the pipeline actually retried).
struct ResilienceStats {
  u32 fetch_attempts = 0;   // round trips to the patch server
  u32 apply_attempts = 0;   // seal -> stage -> apply transactions
  u32 session_aborts = 0;   // kAbortSession commands issued to clean up
  double backoff_us = 0;    // modeled backoff, accrued on the OS clock
  bool retries_exhausted = false;  // failed with the budget spent
};

struct PatchReport {
  std::string id;
  bool success = false;
  SmmStatus smm_status = SmmStatus::kOk;
  PackageStats stats;
  SgxPhaseTimings sgx;
  SmmPhaseTimings smm;
  ResilienceStats resilience;
  /// Everything the pipeline detected and classified during this run —
  /// handler-side (inside SMIs) plus helper-side (SMI suppression).
  DetectionReport detections;
  /// Virtual cycles the OS was paused (both SMIs), from the machine clock.
  u64 downtime_cycles = 0;
  /// Per-CPU decomposition of the downtime (deltas of the machine's running
  /// totals over this run's SMIs): the multi-CPU rendezvous (SMI entry +
  /// IPIs + slowest-CPU jitter), the handler's own work, and the resume leg
  /// (RSM + per-AP wakeups not released early). Invariant, asserted by the
  /// obs tests: rendezvous_cycles + handler_cycles + resume_cycles ==
  /// downtime_cycles, exactly, at every CPU count.
  u64 rendezvous_cycles = 0;
  u64 handler_cycles = 0;
  u64 resume_cycles = 0;
};

/// Coarse pipeline phases of one live_patch run, reported through the phase
/// observer so orchestration layers (src/fleet/) can mirror the per-target
/// state machine off the real transitions instead of guessing.
enum class PatchPhase : u8 {
  kFetching = 0,  // first server round trip is about to start
  kStaged,        // full sealed package staged in mem_W, pre-apply SMI
  kApplied,       // transaction committed, trampolines live
  kFailed,        // pipeline finished without applying
};

const char* patch_phase_name(PatchPhase p);

/// Lifecycle directives for one live_patch run (the patch-stack features).
struct LifecycleOptions {
  /// Set ids that must already be applied on the target (enforced in SMM:
  /// kMissingDependency if not).
  std::vector<std::string> depends;
  /// Set ids this cumulative patch retires: their trampolines/splices are
  /// removed and their mem_X slots freed atomically, under the same SMI
  /// that installs this set. Ids not applied on the target are skipped.
  std::vector<std::string> supersedes;
  /// Let the enclave splice functions in place (body written over the old
  /// function, no mem_X copy, no trampoline) whenever the new body fits the
  /// old footprint per the kernel symbol table.
  bool allow_splice = false;

  [[nodiscard]] bool empty() const {
    return depends.empty() && supersedes.empty() && !allow_splice;
  }
};

/// Parsed kQueryApplied inventory ("KSHQ" blob): the applied patch stack and
/// mem_X occupancy as SMM sees them.
struct AppliedInfo {
  struct Unit {
    std::string id;
    std::string kernel_version;
    u64 seq = 0;      // apply order
    u64 id_hash = 0;  // SDBM of id (the kRevertTarget key)
    u32 functions = 0;
    u32 code_bytes = 0;
    u8 spliced = 0;   // members installed as in-place splices
  };
  std::vector<Unit> units;
  u64 memx_used = 0;
  u64 memx_free = 0;
  /// Occupied mem_X extents (base, len), sorted by base — the input to
  /// free-extent computation for slot reclamation.
  std::vector<std::pair<u64, u64>> extents;
};

struct DosCheckReport {
  bool smm_alive = false;         // heartbeat advanced when poked
  bool staging_attempted = false;  // helper app tried to stage a package
  bool staging_observed = false;   // SMM-side: a staging command arrived
  bool dos_suspected = false;
};

class Kshot {
 public:
  Kshot(kernel::Kernel& kernel, sgx::SgxRuntime& sgx,
        netsim::PatchServer& server, netsim::Channel& channel,
        u64 entropy_seed = 0xC0FFEE);

  /// One-time setup: registers the SMM handler and locks SMRAM (firmware
  /// step), loads the preprocessing enclave (boot-time step). Must run
  /// before any kernel code executes untrusted modules.
  /// `watchdog_interval_cycles`, when nonzero, arms a firmware periodic SMI
  /// on which the handler runs its introspection sweep automatically — the
  /// SMM-based kernel protection deployment of §V-D.
  Status install(u64 watchdog_interval_cycles = 0);

  /// Fetches, preprocesses, and applies `patch_id` end to end. The target
  /// OS keeps running except during the two SMIs.
  Result<PatchReport> live_patch(const std::string& patch_id);

  /// live_patch with lifecycle directives: dependency declarations,
  /// supersede lists, and splice eligibility ride to the enclave (stamped
  /// into the wire-v2 package) and are enforced in SMM. With empty options
  /// this is byte-for-byte the plain live_patch path.
  Result<PatchReport> live_patch(const std::string& patch_id,
                                 const LifecycleOptions& opts);

  /// Batched end-to-end patching: fetches and preprocesses each id in
  /// order, accumulates the processed packages in the enclave, then runs
  /// ONE seal->stage->apply session whose single kApplyBatch SMI installs
  /// every package (all-or-nothing; one rollback unit per package, popped
  /// in reverse by successive rollback() calls). Pays one SMI round trip
  /// and one SMM keygen for the whole batch instead of one per patch.
  Result<PatchReport> live_patch_batch(
      const std::vector<std::string>& patch_ids);

  /// Streaming variant for packages larger than mem_W: the sealed package
  /// crosses the reserved region in `chunk_bytes`-sized pieces, one SMI per
  /// chunk, with per-chunk authenticated ordering. Downtime is spread over
  /// the chunk SMIs; the patch itself still applies atomically after the
  /// final chunk verifies.
  Result<PatchReport> live_patch_chunked(const std::string& patch_id,
                                         u32 chunk_bytes);

  /// Rolls back the most recent patch (remote rollback instruction, §V-C).
  Result<PatchReport> rollback();

  /// Out-of-order revert of the applied set `patch_id`, wherever it sits in
  /// the stack. SMM refuses (kRevertBlocked) while another applied unit
  /// depends on it; kNothingToRollback if it is not applied.
  Result<PatchReport> revert_patch(const std::string& patch_id);

  /// kQueryApplied SMI: the applied patch stack (ids, versions, apply order,
  /// splice counts) and mem_X occupancy, as SMM reports them through the
  /// mem_RW inventory blob.
  Result<AppliedInfo> query_applied();

  /// Slot reclamation: queries the applied set, computes the free extents
  /// of mem_X (everything outside the occupied extents), and hands the map
  /// to the enclave, whose layout allocator first-fits later packages into
  /// the gaps that revert/supersede left behind.
  Status reclaim_mem_x();

  /// SMM introspection sweep (§V-D): verifies and repairs trampolines,
  /// mem_X contents, and reserved-region page attributes.
  Result<IntrospectionReport> introspect();

  /// Arms the SMM kernel-text guard (§IV-A "kernel introspection module for
  /// kernel protection"): snapshots the just-booted kernel text into SMRAM
  /// state and builds the kernel-mutable window list from the symbol
  /// table's ftrace pads. Call at trusted-boot time, right after install().
  Status arm_kernel_guard();

  /// DoS detection handshake (§V-D): the remote server verifies with the
  /// SMM handler that patch staging actually happened. Suspicion requires
  /// *contradiction* — the helper app tried to stage but SMM never saw a
  /// staging command, or SMM stopped answering at all. A freshly installed
  /// deployment that has not patched anything yet is not a DoS.
  Result<DosCheckReport> dos_check();

  /// Retry policy for the fetch and sealed-passing phases. Defaults to a
  /// modest exponential-backoff budget; RetryPolicy::none() restores the
  /// original fail-fast behaviour.
  void set_retry_policy(const RetryPolicy& p) { retry_ = p; }
  [[nodiscard]] const RetryPolicy& retry_policy() const { return retry_; }

  /// Observer invoked at each phase transition of live_patch /
  /// live_patch_chunked (never from rollback or introspection). Runs on the
  /// calling thread; keep it cheap and non-reentrant.
  using PhaseObserver = std::function<void(PatchPhase)>;
  void set_phase_observer(PhaseObserver o) { phase_observer_ = std::move(o); }
  void clear_phase_observer() { phase_observer_ = nullptr; }

  /// Second phase hook, reserved for the async-adversary testbed: runs
  /// after the regular observer at every transition, so an attacker can
  /// interpose on the stage→apply window without stealing the fleet's
  /// observer slot. Same threading rules as the observer.
  void set_async_interposer(PhaseObserver i) {
    async_interposer_ = std::move(i);
  }
  void clear_async_interposer() { async_interposer_ = nullptr; }

  /// Harvests (and clears) all detections accumulated since the last take:
  /// handler-side (recorded inside SMIs) plus helper-side (stale-echo SMI
  /// suppression). The live_patch variants call this into
  /// PatchReport::detections; when a run fails with a transport error and
  /// no report, callers (fleet quarantine) take the evidence from here.
  [[nodiscard]] DetectionReport take_detections();

  /// Tamper hook over the *staging* leg (helper app -> mem_W): models a
  /// rootkit garbling sealed blobs/chunks after they leave the enclave.
  /// FaultInjector::as_tamperer() plugs in here.
  void set_stage_tamperer(netsim::Channel::Tamperer t) {
    stage_tamperer_ = std::move(t);
  }
  void clear_stage_tamperer() { stage_tamperer_ = nullptr; }

  /// Backs this pipeline's counters/histograms with an external registry
  /// (fleet aggregation). Must be called before install(); the handler and
  /// enclave resolve their counters against it at construction.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }
  /// The registry in effect (external or internally owned).
  [[nodiscard]] obs::MetricsRegistry& metrics();

  /// Routes span/instant emission from every layer of this pipeline —
  /// Kshot itself, the enclave, and the SMM handler — into `trace` (null
  /// disables), tagging events with fleet target index `target`. May be
  /// called before or after install().
  void set_trace(obs::TraceRecorder* trace, u32 target = 0);

  [[nodiscard]] SmmPatchHandler& handler() { return *handler_; }
  [[nodiscard]] KshotEnclave& enclave() { return *enclave_; }

  /// True if a trampoline for `function` is currently installed.
  [[nodiscard]] bool is_patched(const std::string& function) const;

  /// Trusted code base of the deployment pipeline in bytes (SMM handler
  /// state + enclave EPC footprint); used by the Table V comparison.
  [[nodiscard]] size_t tcb_bytes() const;

 private:
  /// Writes the command + a fresh sequence number, raises the SMI, and
  /// cross-checks the handler's echo: a stale echo proves the SMI was
  /// suppressed and the status word is leftover garbage (satellite of the
  /// §V-D DoS handshake), reported as kAborted rather than trusted.
  Result<SmmStatus> trigger_and_status(SmmCommand cmd);

  /// One fetch round trip (request out, response back, finish_fetch).
  /// Returns the modeled link time; errors are the attempt's failure.
  Result<double> fetch_once(const std::string& patch_id);
  /// Fetch with the retry policy applied; fills report.sgx.fetch_us and the
  /// resilience counters.
  Status fetch_with_retry(const std::string& patch_id, PatchReport& report);

  /// Runs `attempt_once` under the retry policy, issuing kAbortSession
  /// between failed attempts so each retry stages against a clean epoch.
  /// Ok when the report carries the outcome (success or a final SmmStatus
  /// failure); an error Status only for unrecoverable transport failures.
  /// A transport-level failure (no SmmStatus came back) is ambiguous — the
  /// SMI may have run and applied before the channel broke, and blindly
  /// re-applying would collide with the already-installed windows. When
  /// `applied_probe` is set it is consulted (via kQueryApplied) before any
  /// retry; a positive probe resolves the attempt as success.
  Status apply_with_retry(
      const std::function<Result<SmmStatus>()>& attempt_once,
      PatchReport& report,
      const std::function<bool()>& applied_probe = nullptr);

  /// True when every id in `ids` shows up in the handler's applied set
  /// (one kQueryApplied SMI). Only consulted on ambiguous apply attempts —
  /// a clean success or a definite SmmStatus failure never probes.
  bool ids_applied(const std::vector<std::string>& ids);

  void notify_phase(PatchPhase p) {
    if (phase_observer_) phase_observer_(p);
    if (async_interposer_) async_interposer_(p);
  }

  /// Pause between retries: modeled time on the *running-OS* clock.
  void charge_backoff(double us, PatchReport& report);
  /// Best-effort transactional cleanup between attempts.
  void abort_session(PatchReport& report);

  /// Emits one "kshot" span closing at the machine's current cycle.
  void emit_span(const char* name, u64 c0, double wall_us,
                 std::vector<obs::TraceArg> args = {});
  void emit_instant(const char* name, std::vector<obs::TraceArg> args = {});

  kernel::Kernel& kernel_;
  sgx::SgxRuntime& sgx_;
  netsim::PatchServer& server_;
  netsim::Channel& channel_;
  u64 entropy_seed_;

  std::unique_ptr<SmmPatchHandler> handler_;
  std::unique_ptr<KshotEnclave> enclave_;
  bool installed_ = false;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  u32 trace_target_ = 0;

  RetryPolicy retry_;
  Rng retry_rng_;  // jitter source, seeded from entropy_seed_
  netsim::Channel::Tamperer stage_tamperer_;
  PhaseObserver phase_observer_;
  PhaseObserver async_interposer_;
  DetectionReport helper_detections_;
  u64 cmd_seq_ = 0;           // helper-side SMI command sequence
  u64 staging_attempts_ = 0;  // helper-side: sealed packages we tried to pass
};

}  // namespace kshot::core
