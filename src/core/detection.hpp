// Structured detection reporting for the async threat model (DESIGN.md
// §11). Every tamper the pipeline notices — handler-side inside an SMI or
// helper-side between SMIs — is recorded as a classified DetectionEvent
// instead of a scattered warn log, so callers (fleet quarantine, the
// attacker-schedule fuzz oracle, campaign tooling) can act on *what*
// tripped and *which* adversary variant class it implicates.
#pragma once

#include <string>
#include <vector>

#include "core/mailbox.hpp"

namespace kshot::core {

/// Adversary variant class implicated by a detection (the taxonomy of
/// src/attacks/async_adversary.hpp, plus kIntrospectionRepair for the
/// watchdog's after-the-fact repairs).
enum class DetectionClass : u8 {
  kNone = 0,
  kMailboxFlip,         // command/seq/size field flipped in mem_RW
  kStagedSizeFlip,      // staged_size inconsistent with a live staging
  kMemWRewrite,         // staged bytes failed authentication (fresh wire)
  kReplay,              // staged bytes match a previously-seen sealed wire
  kSmiSuppression,      // commanded SMI never ran (stale cmd_seq echo)
  kChunkReorder,        // stream chunk index/nonce out of order
  kIntrospectionRepair, // introspection found and repaired tampering
};

const char* detection_class_name(DetectionClass c);

/// One tripped detection: the class, the SMM status it surfaced as, the
/// session epoch it happened in, and a human-readable detail line.
struct DetectionEvent {
  DetectionClass cls = DetectionClass::kNone;
  SmmStatus status = SmmStatus::kOk;
  u64 session_epoch = 0;
  std::string detail;
};

/// All detections accumulated over one live_patch run (handler-side events
/// harvested after each SMI plus helper-side events), carried on
/// PatchReport. Deterministic: same seeds, same events, same order.
struct DetectionReport {
  std::vector<DetectionEvent> events;

  [[nodiscard]] bool any() const { return !events.empty(); }
  /// True if any event implicates `c`.
  [[nodiscard]] bool has(DetectionClass c) const;
  void add(DetectionClass cls, SmmStatus status, u64 epoch,
           std::string detail);
  void merge(DetectionReport other);
  void clear() { events.clear(); }
  [[nodiscard]] std::string to_string() const;
};

}  // namespace kshot::core
