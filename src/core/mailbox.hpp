// The mem_RW mailbox: the only memory both the (untrusted-app-mediated) SGX
// side and the SMM handler use for control data. Everything here is
// *untrusted plumbing* — a rootkit can scribble over it — so the design
// only ever places public values (DH public keys, sizes, command codes) and
// SMM-written status here. Secrets never touch it; tampering at worst
// causes a detected integrity failure.
#pragma once

#include "common/status.hpp"
#include "crypto/x25519.hpp"
#include "machine/phys_mem.hpp"

namespace kshot::core {

/// SMI commands written to the mailbox before triggering the SMI.
enum class SmmCommand : u64 {
  kIdle = 0,
  kBeginSession = 1,  // generate a fresh DH key pair, publish the public key
  kApplyPatch = 2,    // decrypt/verify/apply the package staged in mem_W
  kRollback = 3,      // restore original bytes of the last applied patch
  kIntrospect = 4,    // verify installed patches + reserved-region attrs
  kStageChunk = 5,    // streaming mode: accept one sealed chunk from mem_W;
                      // the final chunk triggers verify + apply
  kAbortSession = 6,  // transactional reset: discard session keys and any
                      // partial chunk stream, bump the session epoch. Always
                      // succeeds (aborting nothing is a no-op), so a failed
                      // or interrupted staging can be restaged idempotently.
  kApplyBatch = 7,    // decrypt the staged blob as a batch envelope carrying
                      // N packages; verify and apply all of them under this
                      // one SMI, all-or-nothing, one rollback unit each
  kQueryApplied = 8,  // write the applied-set inventory ("KSHQ" blob: unit
                      // ids, versions, mem_X occupancy) into mem_RW; no
                      // session needed — the blob carries no secrets
  kRevertPatch = 9,   // out-of-order revert of the applied unit whose id
                      // hash is in kRevertTarget, refused while another
                      // applied unit depends on it (kRevertBlocked)
};

/// SMM status codes (mirrored into PatchReport).
enum class SmmStatus : u64 {
  kOk = 0,
  kNothingStaged = 1,
  kMacFailure = 2,      // mem_W contents failed authenticated decryption
  kDigestFailure = 3,   // package digest / CRC mismatch
  kBadPackage = 4,      // malformed or out-of-bounds package
  kNoSession = 5,       // kApplyPatch without kBeginSession
  kNothingToRollback = 6,
  kBadCommand = 7,
  kChunkAccepted = 8,   // streaming: chunk stored, send the next one
  kChunkOutOfOrder = 9, // streaming: unexpected index; session aborted
  kMissingDependency = 10,  // package depends on ids that are not applied
                            // (and not provided by the sets it supersedes)
  kRevertBlocked = 11,  // another applied unit still depends on the revert
                        // target; revert it (or a superseding unit) first
};

/// Human-readable name of an SMM status code (diagnostics and reports).
const char* smm_status_name(SmmStatus s);

/// Leading magic of the kQueryApplied inventory blob ("KSHQ", little-endian).
inline constexpr u32 kQueryMagic = 0x51485348;

/// Field offsets within mem_RW.
struct MailboxLayout {
  static constexpr u64 kCommand = 0x00;        // u64 SmmCommand
  static constexpr u64 kEnclavePub = 0x08;     // 32 bytes
  static constexpr u64 kSmmPub = 0x28;         // 32 bytes
  static constexpr u64 kStagedSize = 0x48;     // u64: bytes staged in mem_W
  static constexpr u64 kStatus = 0x50;         // u64 SmmStatus
  static constexpr u64 kHeartbeat = 0x58;      // u64: incremented per SMI
  static constexpr u64 kSessionId = 0x60;      // u64: bumped per session
  static constexpr u64 kCmdSeq = 0x68;         // u64: written by the helper
                                               // app before each commanded SMI
  static constexpr u64 kCmdSeqEcho = 0x70;     // u64: echoed by the handler;
                                               // a non-matching echo proves
                                               // the SMI never ran and the
                                               // status word is stale
  static constexpr u64 kSessionEpoch = 0x78;   // u64: bumped on every session
                                               // begin/abort (transaction id)
  static constexpr u64 kStatusCmd = 0x80;      // u64: the command word the
                                               // handler actually executed
                                               // when it wrote kStatus; a
                                               // mismatch with the command
                                               // the helper issued proves the
                                               // command word was flipped
                                               // between write and SMI
  static constexpr u64 kRevertTarget = 0x88;   // u64: SDBM hash of the patch
                                               // set id kRevertPatch removes
  static constexpr u64 kQuerySize = 0x90;      // u64: bytes of the "KSHQ"
                                               // blob kQueryApplied wrote at
                                               // kQueryBlob
  /// kQueryApplied writes its inventory blob here (mem_RW is the only
  /// reserved region the kernel may read back).
  static constexpr u64 kQueryBlob = 0x100;
};

/// One coherent copy of every mailbox field, read in a single pass at SMI
/// entry. The handler works exclusively off this snapshot so a concurrent
/// writer (another core, a DMA engine) cannot change a field between its
/// validation and its use — the double-fetch seam the async adversary
/// targets. `raw_command` keeps the unclamped value so an out-of-range
/// command is *detected* rather than silently treated as kIdle.
struct MailboxSnapshot {
  u64 raw_command = 0;
  SmmCommand command = SmmCommand::kIdle;
  crypto::X25519Key enclave_pub{};
  crypto::X25519Key smm_pub{};
  u64 staged_size = 0;
  SmmStatus status = SmmStatus::kOk;
  u64 heartbeat = 0;
  u64 session_id = 0;
  u64 cmd_seq = 0;
  u64 cmd_seq_echo = 0;
  u64 session_epoch = 0;
  u64 revert_target = 0;

  [[nodiscard]] bool command_in_range() const {
    return raw_command <= static_cast<u64>(SmmCommand::kRevertPatch);
  }
};

/// Typed accessor over the mailbox for a given access mode.
class Mailbox {
 public:
  Mailbox(machine::PhysMem& mem, PhysAddr base, machine::AccessMode mode)
      : mem_(mem), base_(base), mode_(mode) {}

  Status write_command(SmmCommand cmd);
  Result<SmmCommand> read_command() const;
  Status write_status(SmmStatus st);
  Result<SmmStatus> read_status() const;
  Status write_enclave_pub(const crypto::X25519Key& k);
  Result<crypto::X25519Key> read_enclave_pub() const;
  Status write_smm_pub(const crypto::X25519Key& k);
  Result<crypto::X25519Key> read_smm_pub() const;
  Status write_staged_size(u64 n);
  Result<u64> read_staged_size() const;
  Status bump_heartbeat();
  Result<u64> read_heartbeat() const;
  Status write_session_id(u64 id);
  Result<u64> read_session_id() const;
  Status write_cmd_seq(u64 seq);
  Result<u64> read_cmd_seq() const;
  Status write_cmd_seq_echo(u64 seq);
  Result<u64> read_cmd_seq_echo() const;
  Status write_session_epoch(u64 epoch);
  Result<u64> read_session_epoch() const;
  Status write_status_cmd(u64 raw_cmd);
  Result<u64> read_status_cmd() const;
  Status write_revert_target(u64 id_hash);
  Result<u64> read_revert_target() const;
  Status write_query_size(u64 n);
  Result<u64> read_query_size() const;

  /// Single-fetch read of every field (see MailboxSnapshot).
  Result<MailboxSnapshot> snapshot() const;

 private:
  machine::PhysMem& mem_;
  PhysAddr base_;
  machine::AccessMode mode_;
};

}  // namespace kshot::core
