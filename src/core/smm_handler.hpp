// The SMM handler (paper §V-C "SMM-based Live Patching" and §V-D "Patching
// Protection"). In the real system this is firmware code resident in locked
// SMRAM; here it is a native object whose mutable state models SMRAM-resident
// data — the simulated kernel can only reach it by raising an SMI, and the
// handler touches machine memory exclusively in SMM access mode.
//
// Per SMI it dispatches on the mem_RW mailbox command:
//   kBeginSession  fresh DH key pair (5.2 us modeled), public key published
//   kApplyPatch    read mem_W -> authenticated decrypt -> package digest +
//                  per-function CRC verify -> global variable edits ->
//                  copy bodies into mem_X -> install 5-byte jmp trampolines
//   kApplyBatch    same decrypt leg, but the plaintext is a batch envelope
//                  of N packages; verify all, validate all, then apply all
//                  under this one SMI (all-or-nothing, one rollback unit
//                  per package)
//   kRollback      restore the newest rollback unit's original entry bytes
//   kIntrospect    re-check trampolines, mem_X hash and reserved-region page
//                  attributes; repair anything a rootkit reverted
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <vector>

#include "common/arena.hpp"
#include "core/detection.hpp"
#include "core/mailbox.hpp"
#include "crypto/aead.hpp"
#include "kernel/layout.hpp"
#include "machine/machine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "patchtool/package.hpp"

namespace kshot::core {

/// Wall-clock nanoseconds of each SMM phase during the last kApplyPatch,
/// plus the modeled virtual-time charges (Table III columns). Since the obs
/// layer landed this struct is derived from the phase spans the handler
/// emits — each *_ns field is the wall duration of the matching "smm" span.
struct SmmPatchTimings {
  double keygen_ns = 0;       // measured in the last kBeginSession
  double decrypt_ns = 0;      // mem_W read + DH shared secret + ChaCha20/MAC
  double verify_ns = 0;       // package SHA-256 digest + per-function CRCs
  double apply_ns = 0;        // var edits + mem_X copies + trampolines
  u64 modeled_cycles = 0;     // total modeled SMM work (excl. SMI/RSM)
  size_t package_bytes = 0;
  size_t code_bytes = 0;
  u32 functions = 0;
};

/// One installed trampoline (or in-place splice), remembered for rollback
/// and introspection.
struct InstalledPatch {
  std::string name;
  u64 taddr = 0;
  u64 paddr = 0;
  u16 ftrace_off = 0;
  u32 code_size = 0;
  std::array<u8, 5> original_entry{};  // bytes replaced by the jmp
  std::array<u8, 5> trampoline{};      // the jmp we wrote
  crypto::Digest256 memx_hash{};       // hash of the body (mem_X, or the
                                       // spliced-in text for splice entries)
  /// SMRAM-kept authoritative body bytes for repair (§V-D). On the zero-copy
  /// path `code_ref` borrows from `retain` — the decrypted session envelope,
  /// shared by every record that envelope produced. Under the legacy copying
  /// parser `retain` is a per-function owned copy instead. Either way the
  /// record never dangles: the bytes live as long as the record does.
  std::shared_ptr<const Bytes> retain;
  ByteSpan code_ref;
  [[nodiscard]] ByteSpan code() const { return code_ref; }
  /// In-place splice: the body was written directly over the old function at
  /// taddr; paddr is 0, there is no trampoline, and `original_body` holds
  /// the code_size bytes of kernel text the splice replaced.
  bool spliced = false;
  Bytes original_body;
};

/// One applied patch set: the unit of supersede/revert bookkeeping. Every
/// successful apply (each package of a batch individually) pushes one unit;
/// kRollback pops the newest, kRevertPatch removes any unit the dependency
/// DAG allows.
struct AppliedUnit {
  std::string id;
  std::string kernel_version;
  u64 id_hash = 0;  // SDBM hash of id (the kRevertTarget key)
  u64 seq = 0;      // monotonic apply order (survives out-of-order revert)
  std::vector<size_t> members;  // indices into installed_
  /// Set-id hashes this unit satisfies as a dependency: its own id plus
  /// everything inherited from the units it superseded (a cumulative patch
  /// keeps standing in for its retired predecessors).
  std::vector<u64> provides;
  /// Set-id hashes this unit requires to stay applied; reverting a unit
  /// another unit depends on is refused with kRevertBlocked.
  std::vector<u64> depends;
};

struct IntrospectionReport {
  u32 patches_checked = 0;
  u32 trampolines_reverted = 0;  // found tampered, repaired
  u32 memx_tampered = 0;         // mem_X body hash mismatches, repaired
  u32 attrs_restored = 0;        // reserved-region page attributes fixed
  u32 text_bytes_restored = 0;   // kernel-text guard repairs (see below)
  u32 unreadable = 0;            // reads that failed: repair skipped and the
                                 // condition surfaced as a detection — never
                                 // a blind repair write off zeroed bytes
  [[nodiscard]] bool clean() const {
    return trampolines_reverted == 0 && memx_tampered == 0 &&
           attrs_restored == 0 && text_bytes_restored == 0 && unreadable == 0;
  }
};

/// A byte range of kernel text the guard must treat as legitimately
/// kernel-mutable (e.g. the 5-byte ftrace pads the dynamic tracer rewrites).
struct MutableWindow {
  u64 addr = 0;
  u32 len = 0;
};

class SmmPatchHandler {
 public:
  /// `metrics` backs the handler's counters; pass null to let the handler
  /// own a private registry (standalone/test use).
  explicit SmmPatchHandler(kernel::MemoryLayout layout, u64 entropy_seed,
                           obs::MetricsRegistry* metrics = nullptr);

  /// The entry point registered with Machine::set_smm_handler.
  void on_smi(machine::Machine& m);

  /// Directs span/instant emission into `trace` (null disables), tagging
  /// events with fleet target index `target`.
  void set_trace(obs::TraceRecorder* trace, u32 target = 0) {
    trace_ = trace;
    trace_target_ = target;
  }

  /// Firmware configuration: run an introspection sweep on SMIs that carry
  /// no command (the periodic watchdog SMIs).
  void set_introspect_on_idle(bool v) { introspect_on_idle_ = v; }

  /// Fuzz-harness self-test seam: swaps bounds_ok back to the pre-fix
  /// `base + len > end` arithmetic that wraps for attacker-chosen addresses
  /// near UINT64_MAX. The harness (kshot-sim fuzz --selftest) enables this
  /// to prove its oracles catch that bug class; nothing else may call it.
  void enable_legacy_wrapping_bounds_for_selftest() {
    legacy_wrapping_bounds_ = true;
  }

  /// Fuzz-harness self-test seam: re-opens the pre-hardening double fetch —
  /// after validating the mailbox snapshot and pinning the staged bytes,
  /// the handler re-reads staged_size and mem_W from attacker-writable
  /// memory and uses *those* (the classic TOCTOU window). The
  /// attacker_schedule surface enables this to prove its prevented-or-
  /// detected oracle catches the bug class; nothing else may call it.
  void enable_legacy_double_fetch_for_selftest() {
    legacy_double_fetch_ = true;
  }

  /// Differential-test seam: routes every package through the legacy copying
  /// pipeline (SealedBox::deserialize + crypto::open + parse_patchset)
  /// instead of the zero-copy span pipeline. Modeled charges are identical
  /// in both modes — only the smm.staged_copies counter differs — so the
  /// zero-copy differential suite can assert byte-identical outcomes over
  /// the whole fuzz corpus. Nothing else may call it.
  void enable_legacy_copy_parser_for_selftest() { legacy_copy_parser_ = true; }

  /// Models a concurrent writer racing the SMI (another core or a DMA
  /// engine scribbling while this core is in SMM): invoked once per staged-
  /// bytes fetch, between the single fetch into SMRAM and its use. Under
  /// the hardened handler anything it writes is invisible (the SMRAM copy
  /// is authoritative); under the legacy seam it lands in the re-read.
  using ConcurrentWriter = std::function<void(machine::Machine&)>;
  void set_concurrent_writer(ConcurrentWriter w) {
    concurrent_writer_ = std::move(w);
  }

  /// Arms the kernel-text guard (the paper's §IV-A "kernel introspection
  /// module for kernel protection"): snapshots the pristine kernel text
  /// into SMRAM state; every introspection sweep thereafter detects and
  /// restores any modification outside (a) KShot's own trampolines and
  /// (b) the provided kernel-mutable windows (ftrace pads). Must be armed
  /// at trusted-boot time, before untrusted code runs.
  Status arm_kernel_guard(machine::Machine& m,
                          std::vector<MutableWindow> windows);
  [[nodiscard]] bool kernel_guard_armed() const { return guard_armed_; }

  // SMRAM-resident state inspection (harness/test access; simulated software
  // cannot reach any of this).
  [[nodiscard]] const SmmPatchTimings& last_timings() const {
    return timings_;
  }
  [[nodiscard]] const std::vector<InstalledPatch>& installed() const {
    return installed_;
  }
  [[nodiscard]] const std::vector<AppliedUnit>& applied_units() const {
    return applied_units_;
  }
  /// mem_X bytes currently occupied by installed (non-splice) bodies.
  [[nodiscard]] u64 memx_used() const {
    u64 n = 0;
    for (const auto& p : installed_) {
      if (!p.spliced) n += p.code_size;
    }
    return n;
  }
  [[nodiscard]] const IntrospectionReport& last_introspection() const {
    return last_introspection_;
  }
  // Counters are backed by the obs registry ("smm.*" namespace); these
  // accessors remain the SMM-side ground truth the DoS handshake reads.
  [[nodiscard]] u64 sessions_started() const { return c_sessions_->value(); }
  [[nodiscard]] u64 patches_applied() const { return c_applied_->value(); }
  [[nodiscard]] u64 rollbacks() const { return c_rollbacks_->value(); }
  /// Apply/stage-chunk commands the handler has seen, successful or not —
  /// SMM-side proof that the helper app's staging reached SMM at all (the
  /// DoS-detection handshake's ground truth).
  [[nodiscard]] u64 stagings_seen() const { return c_stagings_->value(); }
  [[nodiscard]] u64 sessions_aborted() const { return c_aborts_->value(); }
  /// Tamper detections recorded since construction ("smm.detections").
  [[nodiscard]] u64 detections_seen() const { return c_detections_->value(); }
  /// Introspection repairs performed ("smm.introspect_repairs").
  [[nodiscard]] u64 introspect_repairs() const {
    return c_introspect_repairs_->value();
  }
  /// Transaction id: bumped on every session begin and abort.
  [[nodiscard]] u64 session_epoch() const { return session_epoch_; }

  /// Total modeled cycles charged to TOCTOU hardening (mailbox snapshot +
  /// freshness checks per SMI, staged-bytes hash pinning per fetch) since
  /// construction. This is the honest price of detection: it is already
  /// inside every downtime number, and benchkit reports it separately as
  /// `detection_overhead` so the gate notices if it grows.
  [[nodiscard]] u64 detection_overhead_cycles() const {
    return detection_overhead_cycles_;
  }

  /// Hands over (and clears) the detections accumulated since the last
  /// take; Kshot harvests these into PatchReport::detections per run.
  [[nodiscard]] DetectionReport take_detections() {
    DetectionReport out = std::move(detections_);
    detections_.clear();
    return out;
  }
  [[nodiscard]] const DetectionReport& detections() const {
    return detections_;
  }

 private:
  void begin_session(machine::Machine& m, Mailbox& mbox);
  SmmStatus apply_patch(machine::Machine& m, Mailbox& mbox,
                        const MailboxSnapshot& snap);
  SmmStatus apply_batch(machine::Machine& m, Mailbox& mbox,
                        const MailboxSnapshot& snap);
  SmmStatus stage_chunk(machine::Machine& m, Mailbox& mbox,
                        const MailboxSnapshot& snap);
  SmmStatus rollback(machine::Machine& m);
  /// kRevertPatch: removes the applied unit whose id hash matches
  /// snap.revert_target, wherever it sits in the stack, unless another
  /// applied unit still depends on something it provides (kRevertBlocked).
  SmmStatus revert_patch(machine::Machine& m, const MailboxSnapshot& snap);
  /// kQueryApplied: writes the deterministic "KSHQ" inventory blob (unit
  /// ids/versions/seqs, mem_X occupancy + occupied extents) into mem_RW at
  /// MailboxLayout::kQueryBlob and its size at kQuerySize.
  SmmStatus query_applied(machine::Machine& m, Mailbox& mbox);
  void introspect(machine::Machine& m);

  /// Shared decrypt leg of kApplyPatch/kApplyBatch: session check, single
  /// staged mem_W fetch into SMRAM with a pinned hash, DH + "sgx-smm" key
  /// derivation, authenticated open, decrypt charge, and single-use
  /// session-key reset. All mailbox fields come from `snap` — nothing is
  /// re-read from attacker-writable memory (unless the legacy double-fetch
  /// seam is enabled). Returns kOk with the plaintext span in `out_plain`
  /// and the buffer that owns it in `out_retain` (zero-copy mode: the
  /// envelope itself, decrypted in place; legacy seam: an owned copy), or
  /// the status to report.
  SmmStatus decrypt_staged(machine::Machine& m, Mailbox& mbox,
                           const MailboxSnapshot& snap,
                           std::shared_ptr<const Bytes>& out_retain,
                           ByteSpan& out_plain, size_t& out_staged);

  /// Records one classified tamper detection (counter, report, trace).
  void record_detection(machine::Machine& m, DetectionClass cls,
                        SmmStatus status, std::string detail);
  /// Replay ring: sealed-wire hashes recently staged at this handler.
  [[nodiscard]] bool seen_recent_wire(const crypto::Digest256& h) const;
  void remember_wire(const crypto::Digest256& h);

  /// Discards the chunk-stream accumulation state.
  void reset_stream();
  /// Transactional reset: session keys + stream state gone, epoch bumped.
  /// Idempotent — aborting with nothing active is still a clean abort.
  void abort_session(Mailbox& mbox);

  /// Shared tail of apply_patch / stage_chunk: verify the plaintext package
  /// and apply it, charging costs and recording timings. `package` borrows
  /// from `retain` (which installed patches keep alive past the SMI).
  SmmStatus verify_and_apply(machine::Machine& m,
                             const std::shared_ptr<const Bytes>& retain,
                             ByteSpan package, size_t staged_bytes);

  /// Applies one parsed set. `retain` is the buffer the set's code spans
  /// borrow from; null (legacy copying parser) makes the installed records
  /// take owned per-function copies instead.
  SmmStatus apply_parsed(machine::Machine& m,
                         const patchtool::PatchSetView& set,
                         const std::shared_ptr<const Bytes>& retain);
  SmmStatus rollback_parsed(machine::Machine& m,
                            const patchtool::PatchSetView& set);

  /// Per-byte work the rendezvoused CPUs share during the SMI window
  /// (package verify hashing, staged-bytes pinning): the byte cost divides
  /// across cpus plus a per-AP merge charge. At one CPU this is exactly
  /// bytes_cost() — the legacy model, untouched.
  [[nodiscard]] u64 parallel_bytes_cost(const machine::Machine& m,
                                        double per_byte, size_t bytes) const;

  /// A byte range an apply would write (mem_X body, trampoline window, or
  /// splice window) — the unit of overlap rejection.
  struct ByteWindow {
    u64 addr = 0;
    u64 len = 0;
  };
  /// Every byte range `p` writes outside SMRAM.
  static void collect_windows(const patchtool::FunctionPatchView& p,
                              std::vector<ByteWindow>& out);
  static void collect_windows(const InstalledPatch& p,
                              std::vector<ByteWindow>& out);

  /// Pre-apply validation of one set: bounds, preprocessing, var-edit
  /// targets, splice eligibility, and byte-precise overlap rejection — a
  /// set whose write windows intersect each other, an installed patch's
  /// windows (minus `retired_installed`, the records a supersede is about
  /// to free), or `extra_windows` (earlier sets of the same batch) is
  /// kBadPackage. apply_parsed re-runs it; apply_batch runs it over every
  /// set before applying any, making the whole batch all-or-nothing for
  /// validation failures.
  [[nodiscard]] SmmStatus validate_set(
      const patchtool::PatchSetView& set,
      const std::vector<bool>* retired_installed = nullptr,
      const std::vector<ByteWindow>* extra_windows = nullptr) const;

  /// Restores one installed record's kernel-text effect (trampoline's
  /// original entry, or the pre-splice body).
  void restore_installed(machine::Machine& m, const InstalledPatch& p);
  /// Removes applied_units_[unit_idx]: restores members in reverse, erases
  /// their installed_ records, and re-bases every other unit's member
  /// indices. No counters/spans — callers account for themselves.
  void remove_unit(machine::Machine& m, size_t unit_idx);
  /// Pops the newest unit (mid-batch unwind, kRollback).
  void restore_top_unit(machine::Machine& m);

  /// Emits one "smm" span [c0, m.cycles()] named `name` and returns its
  /// wall-clock duration in ns — the value the SmmPatchTimings fields are
  /// derived from.
  double phase_span(machine::Machine& m, const char* name, u64 c0,
                    std::chrono::steady_clock::time_point t0);
  void emit_instant(machine::Machine& m, const char* name,
                    std::vector<obs::TraceArg> args = {});

  Status write_trampoline(machine::Machine& m, const InstalledPatch& p);
  [[nodiscard]] bool bounds_ok(const patchtool::FunctionPatchView& p) const;

  kernel::MemoryLayout layout_;
  Rng rng_;  // hardware entropy for DH keys

  /// Per-session parse arena: the view parser's tables (function headers,
  /// reloc/var-edit arrays) live here; reset at the start of each parse.
  Arena arena_;

  // Session state (fresh per patch, defeating replay §V-C).
  std::optional<crypto::DhKeyPair> session_keys_;
  u64 session_id_ = 0;

  // Streaming-mode state (SMRAM-resident accumulation buffer).
  std::optional<crypto::Key256> stream_key_;
  Bytes stream_buffer_;
  u32 stream_expected_ = 0;
  u32 stream_total_ = 0;

  std::vector<InstalledPatch> installed_;
  /// Stack of applied units in apply order: each successful apply (every
  /// package of a batch individually) pushes one unit; kRollback pops the
  /// newest and kRevertPatch removes any unit the dependency DAG allows
  /// (remove_unit re-bases the surviving units' member indices, so the
  /// stack no longer relies on LIFO-only erasure).
  std::vector<AppliedUnit> applied_units_;
  u64 unit_seq_ = 0;  // monotonic AppliedUnit::seq source

  bool introspect_on_idle_ = false;
  bool legacy_wrapping_bounds_ = false;  // self-test seam, see above
  bool legacy_double_fetch_ = false;     // self-test seam, see above
  bool legacy_copy_parser_ = false;      // differential-test seam, see above
  ConcurrentWriter concurrent_writer_;
  u64 detection_overhead_cycles_ = 0;  // hardening cycles, see accessor

  // Detection state (SMRAM-resident). The replay ring holds hashes of the
  // last kRecentWires sealed wires staged here, so a MAC failure over a
  // previously-seen wire classifies as kReplay instead of kMemWRewrite.
  static constexpr size_t kRecentWires = 8;
  std::vector<crypto::Digest256> recent_wires_;
  size_t recent_wires_next_ = 0;
  DetectionReport detections_;

  // Kernel-text guard state (SMRAM-resident).
  bool guard_armed_ = false;
  Bytes pristine_text_;
  std::vector<MutableWindow> guard_windows_;

  SmmPatchTimings timings_;
  IntrospectionReport last_introspection_;
  u64 session_epoch_ = 0;
  u64 last_cmd_seq_ = 0;  // SMRAM copy: detects seq-advance-with-idle flips

  // Observability. The registry hands out stable references, so the hot
  // counters are resolved once at construction.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* c_sessions_ = nullptr;
  obs::Counter* c_applied_ = nullptr;
  obs::Counter* c_rollbacks_ = nullptr;
  obs::Counter* c_stagings_ = nullptr;
  obs::Counter* c_aborts_ = nullptr;
  obs::Counter* c_batch_applies_ = nullptr;
  obs::Counter* c_detections_ = nullptr;
  obs::Counter* c_introspect_repairs_ = nullptr;
  /// Buffer copies of staged package payload per pipeline run. Zero-copy
  /// mode: exactly one per applied package (the SMM write into machine
  /// memory). Legacy mode additionally counts the envelope deserialize, the
  /// AEAD open, the parser's code copy-out, and the installed-record
  /// retention — the copies the span pipeline eliminated.
  obs::Counter* c_staged_copies_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  u32 trace_target_ = 0;
};

}  // namespace kshot::core
