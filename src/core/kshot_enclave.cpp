#include "core/kshot_enclave.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/byte_io.hpp"
#include "common/log.hpp"
#include "crypto/simple_hash.hpp"
#include "isa/reloc.hpp"

namespace kshot::core {

namespace {
// EPC internal layout: two package regions after a header page.
constexpr u64 kRawRegion = 0;
constexpr u64 kProcessedRegion = 1;
constexpr u64 kRegionHeader = 0x1000;

Bytes identity_blob(const kernel::OsInfo& os) {
  ByteWriter w;
  w.put_bytes(to_bytes(std::string("kshot-enclave-v1:")));
  w.put_bytes(to_bytes(os.version));
  return w.take();
}
}  // namespace

Bytes ReservedGeometry::serialize() const {
  ByteWriter w;
  w.put_u64(mem_x_base);
  w.put_u64(mem_x_size);
  w.put_u64(mem_w_size);
  return w.take();
}

Result<ReservedGeometry> ReservedGeometry::deserialize(ByteSpan wire) {
  ByteReader r(wire);
  ReservedGeometry g;
  auto a = r.get_u64();
  auto b = r.get_u64();
  auto c = r.get_u64();
  if (!a || !b || !c) return Status{Errc::kOutOfRange, "truncated geometry"};
  g.mem_x_base = *a;
  g.mem_x_size = *b;
  g.mem_w_size = *c;
  return g;
}

Bytes PackageStats::serialize() const {
  ByteWriter w;
  w.put_u32(functions);
  w.put_u32(code_bytes);
  w.put_u32(package_bytes);
  return w.take();
}

Result<PackageStats> PackageStats::deserialize(ByteSpan wire) {
  ByteReader r(wire);
  PackageStats s;
  auto a = r.get_u32();
  auto b = r.get_u32();
  auto c = r.get_u32();
  if (!a || !b || !c) return Status{Errc::kOutOfRange, "truncated stats"};
  s.functions = *a;
  s.code_bytes = *b;
  s.package_bytes = *c;
  return s;
}

KshotEnclave::KshotEnclave(kernel::OsInfo os, u64 entropy_seed)
    : sgx::Enclave("kshot-prep", identity_blob(os)),
      os_(std::move(os)),
      rng_(entropy_seed) {}

// ---- typed wrappers -------------------------------------------------------

Status KshotEnclave::initialize(const ReservedGeometry& geom) {
  auto r = ecall(kEcallInitialize, geom.serialize());
  return r.is_ok() ? Status::ok() : r.status();
}

Result<Bytes> KshotEnclave::begin_fetch(const std::string& patch_id,
                                        netsim::PatchRequest::Op op) {
  ByteWriter w;
  w.put_u8(static_cast<u8>(op));
  w.put_bytes(to_bytes(patch_id));
  return ecall(kEcallBeginFetch, w.bytes());
}

Result<PackageStats> KshotEnclave::finish_fetch(ByteSpan response_wire) {
  auto r = ecall(kEcallFinishFetch, response_wire);
  if (!r) return r.status();
  return PackageStats::deserialize(*r);
}

Result<PackageStats> KshotEnclave::preprocess() {
  auto r = ecall(kEcallPreprocess, {});
  if (!r) return r.status();
  return PackageStats::deserialize(*r);
}

Result<Bytes> KshotEnclave::seal_for_smm(const crypto::X25519Key& smm_pub) {
  return ecall(kEcallSeal, ByteSpan(smm_pub.data(), smm_pub.size()));
}

Result<Bytes> KshotEnclave::begin_seal_chunked(const crypto::X25519Key& smm_pub,
                                               u32 max_chunk_plain_bytes) {
  ByteWriter w;
  w.put_bytes(ByteSpan(smm_pub.data(), smm_pub.size()));
  w.put_u32(max_chunk_plain_bytes);
  return ecall(kEcallBeginSealChunked, w.bytes());
}

Result<Bytes> KshotEnclave::get_chunk(u32 index) {
  ByteWriter w;
  w.put_u32(index);
  return ecall(kEcallGetChunk, w.bytes());
}

Status KshotEnclave::batch_reset() {
  auto r = ecall(kEcallBatchReset, {});
  return r.is_ok() ? Status::ok() : r.status();
}

Status KshotEnclave::batch_add() {
  auto r = ecall(kEcallBatchAdd, {});
  return r.is_ok() ? Status::ok() : r.status();
}

Result<Bytes> KshotEnclave::seal_batch_for_smm(
    const crypto::X25519Key& smm_pub) {
  return ecall(kEcallSealBatch, ByteSpan(smm_pub.data(), smm_pub.size()));
}

Status KshotEnclave::set_lifecycle(const std::vector<std::string>& depends,
                                   const std::vector<std::string>& supersedes,
                                   bool allow_splice,
                                   const std::vector<OldSizeEntry>& old_sizes) {
  if (depends.size() > 255 || supersedes.size() > 255) {
    return {Errc::kInvalidArgument, "too many lifecycle ids"};
  }
  ByteWriter w;
  auto put_string8 = [&w](const std::string& s) {
    size_t n = std::min<size_t>(s.size(), 255);
    w.put_u8(static_cast<u8>(n));
    w.put_bytes(ByteSpan(reinterpret_cast<const u8*>(s.data()), n));
  };
  w.put_u8(static_cast<u8>(depends.size()));
  for (const auto& d : depends) put_string8(d);
  w.put_u8(static_cast<u8>(supersedes.size()));
  for (const auto& s : supersedes) put_string8(s);
  w.put_u8(allow_splice ? 1 : 0);
  w.put_u16(static_cast<u16>(std::min<size_t>(old_sizes.size(), 65535)));
  for (const auto& e : old_sizes) {
    w.put_u64(e.name_hash);
    w.put_u32(e.old_size);
  }
  auto r = ecall(kEcallSetLifecycle, w.bytes());
  return r.is_ok() ? Status::ok() : r.status();
}

Status KshotEnclave::set_mem_x_map(const std::vector<FreeExtent>& free_extents) {
  ByteWriter w;
  w.put_u32(static_cast<u32>(free_extents.size()));
  for (const auto& e : free_extents) {
    w.put_u64(e.base);
    w.put_u64(e.len);
  }
  auto r = ecall(kEcallSetMemXMap, w.bytes());
  return r.is_ok() ? Status::ok() : r.status();
}

void KshotEnclave::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    c_prep_hits_ = nullptr;
    c_prep_misses_ = nullptr;
    return;
  }
  c_prep_hits_ = &metrics->counter("enclave.prep_hits");
  c_prep_misses_ = &metrics->counter("enclave.prep_misses");
}

// ---- ECALL dispatch --------------------------------------------------------

Result<Bytes> KshotEnclave::handle_ecall(int fn, ByteSpan input) {
  if (!trace_) return dispatch_ecall(fn, input);
  const char* name = "ecall";
  switch (fn) {
    case kEcallInitialize: name = "initialize"; break;
    case kEcallBeginFetch: name = "begin_fetch"; break;
    case kEcallFinishFetch: name = "finish_fetch"; break;
    case kEcallPreprocess: name = "preprocess"; break;
    case kEcallSeal: name = "seal"; break;
    case kEcallBeginSealChunked: name = "begin_seal_chunked"; break;
    case kEcallGetChunk: name = "get_chunk"; break;
    case kEcallBatchReset: name = "batch_reset"; break;
    case kEcallBatchAdd: name = "batch_add"; break;
    case kEcallSealBatch: name = "seal_batch"; break;
    case kEcallSetLifecycle: name = "set_lifecycle"; break;
    case kEcallSetMemXMap: name = "set_mem_x_map"; break;
  }
  auto t0 = std::chrono::steady_clock::now();
  u64 c0 = vclock_ ? vclock_() : 0;
  auto result = dispatch_ecall(fn, input);
  double wall_us = std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  trace_->complete("enclave", name, trace_target_, c0,
                   vclock_ ? vclock_() : c0, wall_us,
                   {{"ok", result.is_ok() ? "1" : "0"}});
  return result;
}

Result<Bytes> KshotEnclave::dispatch_ecall(int fn, ByteSpan input) {
  switch (fn) {
    case kEcallInitialize: {
      auto g = ReservedGeometry::deserialize(input);
      if (!g) return g.status();
      geom_ = *g;
      initialized_ = true;
      return Bytes{};
    }
    case kEcallBeginFetch:
      return do_begin_fetch(input);
    case kEcallFinishFetch:
      return do_finish_fetch(input);
    case kEcallPreprocess:
      return do_preprocess();
    case kEcallSeal:
      return do_seal(input);
    case kEcallBeginSealChunked:
      return do_begin_seal_chunked(input);
    case kEcallGetChunk:
      return do_get_chunk(input);
    case kEcallBatchReset:
      batch_pkgs_.clear();
      return Bytes{};
    case kEcallBatchAdd:
      return do_batch_add();
    case kEcallSealBatch:
      return do_seal_batch(input);
    case kEcallSetLifecycle:
      return do_set_lifecycle(input);
    case kEcallSetMemXMap:
      return do_set_mem_x_map(input);
    default:
      return Status{Errc::kInvalidArgument, "unknown ecall"};
  }
}

Result<Bytes> KshotEnclave::do_begin_fetch(ByteSpan input) {
  if (!initialized_) {
    return Status{Errc::kFailedPrecondition, "enclave not initialized"};
  }
  ByteReader r(input);
  auto op = r.get_u8();
  if (!op || (*op != 1 && *op != 2)) {
    return Status{Errc::kInvalidArgument, "bad fetch op"};
  }
  auto id_bytes = r.get_bytes(r.remaining());
  std::string patch_id(id_bytes->begin(), id_bytes->end());

  // Fresh DH key per fetch; the attestation report binds the public key so
  // the server knows it is talking to this enclave, not a MITM.
  server_session_ = crypto::dh_generate(rng_);
  netsim::PatchRequest req;
  req.op = static_cast<netsim::PatchRequest::Op>(*op);
  req.patch_id = patch_id;
  req.os = os_;
  req.client_pub = server_session_.public_key;
  req.attestation = create_report(
      ByteSpan(server_session_.public_key.data(),
               server_session_.public_key.size()));
  fetch_in_flight_ = true;
  return req.serialize();
}

Result<Bytes> KshotEnclave::do_finish_fetch(ByteSpan input) {
  if (!fetch_in_flight_) {
    return Status{Errc::kFailedPrecondition, "no fetch in flight"};
  }
  fetch_in_flight_ = false;

  auto resp = netsim::PatchResponse::deserialize(input);
  if (!resp) return resp.status();

  crypto::X25519Key shared =
      crypto::dh_shared(server_session_.private_key, resp->server_pub);
  crypto::Key256 session = crypto::derive_key(
      ByteSpan(shared.data(), shared.size()), "server-enclave");

  // Zero-copy open: decrypt in place inside the response's own envelope
  // buffer, then validate through borrowed views. The only copy left on this
  // path is the EPC store, which is a real data movement in the model.
  auto box = crypto::SealedBoxView::deserialize(
      MutByteSpan(resp->sealed_package.data(), resp->sealed_package.size()));
  if (!box) return box.status();
  auto plain = crypto::open_in_place(session, *box);
  if (!plain) return plain.status();
  ByteSpan package(plain->data(), plain->size());

  // Integrity check #1 (network transmission errors / tampering): full
  // package validation before anything is kept.
  fetch_arena_.reset();
  auto set = patchtool::parse_patchset_view(package, fetch_arena_);
  if (!set) return set.status();

  KSHOT_RETURN_IF_ERROR(store_package(kRawRegion, package));
  raw_size_ = package.size();
  processed_size_ = 0;

  PackageStats stats;
  stats.functions = static_cast<u32>(set->patches.size());
  stats.code_bytes = static_cast<u32>(set->total_code_bytes());
  stats.package_bytes = static_cast<u32>(package.size());
  return stats.serialize();
}

Result<Bytes> KshotEnclave::do_preprocess() {
  if (raw_size_ == 0) {
    return Status{Errc::kFailedPrecondition, "no package fetched"};
  }
  auto raw = load_package(kRawRegion);
  if (!raw) return raw.status();
  auto set_r = patchtool::parse_patchset(*raw);
  if (!set_r) return set_r.status();
  patchtool::PatchSet set = std::move(*set_r);
  patchtool::PatchOp op = set.patches.empty()
                              ? patchtool::PatchOp::kPatch
                              : set.patches[0].op;

  // 0. Consume pending lifecycle directives (single-shot): stamp the
  //    depends/supersedes lists, and mark as in-place splices the functions
  //    whose new body fits the old footprint. A splice is laid out at its
  //    kernel-text address — no mem_X slot, no trampoline.
  if (lifecycle_pending_) {
    lifecycle_pending_ = false;
    set.depends = std::move(pending_depends_);
    set.supersedes = std::move(pending_supersedes_);
    if (pending_allow_splice_) {
      for (auto& p : set.patches) {
        auto it = pending_old_sizes_.find(crypto::sdbm(to_bytes(p.name)));
        if (it != pending_old_sizes_.end() && p.taddr != 0 &&
            it->second != 0 && p.code.size() <= it->second) {
          p.splice = true;
          p.old_size = it->second;
        }
      }
    }
    pending_depends_.clear();
    pending_supersedes_.clear();
    pending_allow_splice_ = false;
    pending_old_sizes_.clear();
  }

  // 1. Lay the patched functions out in mem_X (paper §V-C: p1 at the base,
  //    p_i at p_{i-1}.paddr + p_{i-1}.size), 16-byte aligned. With a
  //    free-extent map installed (set_mem_x_map) the layout first-fits into
  //    the reclaimed gaps instead of advancing the monotonic cursor.
  //    Spliced functions take no slot: their body lands over the old
  //    function in kernel text.
  for (auto& p : set.patches) {
    if (p.splice) {
      p.paddr = 0;
      continue;
    }
    if (memx_map_set_) {
      bool placed = false;
      for (auto& e : memx_free_) {
        u64 aligned = (e.base + 15) & ~u64{15};
        u64 pad = aligned - e.base;
        if (pad <= e.len && p.code.size() <= e.len - pad) {
          p.paddr = aligned;
          u64 consumed = pad + p.code.size();
          e.base += consumed;
          e.len -= consumed;
          placed = true;
          break;
        }
      }
      if (!placed) {
        return Status{Errc::kResourceExhausted,
                      "mem_X exhausted (no free extent fits)"};
      }
      continue;
    }
    u64 aligned = (mem_x_cursor_ + 15) & ~u64{15};
    if (aligned + p.code.size() > geom_.mem_x_size) {
      return Status{Errc::kResourceExhausted, "mem_X exhausted"};
    }
    p.paddr = geom_.mem_x_base + aligned;
    mem_x_cursor_ = aligned + p.code.size();
  }

  // 2. Branch replacement: rewrite every external rel32 for the new home.
  //    Intra-patch-set references resolve to the callee's mem_X body. The
  //    rewrite is memoized content-addressed: the key covers the original
  //    code, its layout address, and every resolved target, so the cached
  //    body is valid exactly when the transformation inputs repeat (e.g. a
  //    re-preprocess of the same package at the same mem_X layout).
  for (auto& p : set.patches) {
    // A spliced body runs from the old function's address, so rel32 fixups
    // are computed against taddr, not a mem_X slot.
    const u64 reloc_base = p.splice ? p.taddr : p.paddr;
    std::vector<u64> targets;
    targets.reserve(p.relocs.size());
    for (const auto& rel : p.relocs) {
      u64 target;
      if (rel.patch_index >= 0) {
        if (static_cast<size_t>(rel.patch_index) >= set.patches.size()) {
          return Status{Errc::kIntegrityFailure, "bad intra-set reloc"};
        }
        const auto& callee = set.patches[rel.patch_index];
        // A spliced callee's body lives at its kernel-text address.
        u64 callee_base = callee.splice ? callee.taddr : callee.paddr;
        target = callee_base + callee.ftrace_off;
      } else {
        target = rel.target;
      }
      if (rel.offset + 4 > p.code.size()) {
        return Status{Errc::kIntegrityFailure, "reloc outside code"};
      }
      targets.push_back(target);
    }

    ByteWriter keybuf;
    keybuf.put_bytes(p.code);
    keybuf.put_u64(reloc_base);
    for (size_t k = 0; k < p.relocs.size(); ++k) {
      keybuf.put_u32(p.relocs[k].offset);
      keybuf.put_u64(targets[k]);
    }
    u64 key = crypto::fnv1a(keybuf.bytes());
    auto hit = prep_cache_.find(key);
    if (hit != prep_cache_.end()) {
      p.code = hit->second;
      if (c_prep_hits_) c_prep_hits_->inc();
    } else {
      for (size_t k = 0; k < p.relocs.size(); ++k) {
        isa::retarget_rel32(MutByteSpan(p.code), p.relocs[k].offset,
                            reloc_base, targets[k]);
      }
      prep_cache_.emplace(key, p.code);
      if (c_prep_misses_) c_prep_misses_->inc();
    }
    p.relocs.clear();  // fixups are baked into the code now
  }

  Bytes processed = patchtool::serialize_patchset(set, op);
  KSHOT_RETURN_IF_ERROR(store_package(kProcessedRegion, processed));
  processed_size_ = processed.size();

  PackageStats stats;
  stats.functions = static_cast<u32>(set.patches.size());
  stats.code_bytes = static_cast<u32>(set.total_code_bytes());
  stats.package_bytes = static_cast<u32>(processed.size());
  return stats.serialize();
}

Result<Bytes> KshotEnclave::seal_blob_for(ByteSpan smm_pub_bytes,
                                          const Bytes& plain) {
  if (smm_pub_bytes.size() != 32) {
    return Status{Errc::kInvalidArgument, "expected 32-byte SMM public key"};
  }
  crypto::X25519Key smm_pub;
  std::memcpy(smm_pub.data(), smm_pub_bytes.data(), 32);

  // Fresh enclave-side key for the SGX<->SMM session too.
  crypto::DhKeyPair smm_session = crypto::dh_generate(rng_);
  crypto::X25519Key shared =
      crypto::dh_shared(smm_session.private_key, smm_pub);
  crypto::Key256 key = crypto::derive_key(
      ByteSpan(shared.data(), shared.size()), "sgx-smm");
  crypto::Nonce96 nonce{};
  rng_.fill(MutByteSpan(nonce.data(), nonce.size()));

  // Single-buffer build: pub || nonce || len || ciphertext || mac, with the
  // plaintext placed once and encrypted in place (no intermediate SealedBox
  // or serialize() copy). Bytes are identical to seal().serialize().
  constexpr size_t kPub = 32;
  constexpr size_t kHdr = sizeof(crypto::Nonce96) + 4;
  constexpr size_t kMac = sizeof(crypto::Digest256);
  Bytes out(kPub + kHdr + plain.size() + kMac);
  std::memcpy(out.data(), smm_session.public_key.data(), kPub);
  std::memcpy(out.data() + kPub + kHdr, plain.data(), plain.size());
  KSHOT_RETURN_IF_ERROR(crypto::seal_in_place(
      key, nonce, MutByteSpan(out.data() + kPub, out.size() - kPub),
      plain.size()));
  return out;
}

Result<Bytes> KshotEnclave::do_seal(ByteSpan input) {
  if (processed_size_ == 0) {
    return Status{Errc::kFailedPrecondition, "nothing preprocessed"};
  }
  if (processed_size_ + 64 > geom_.mem_w_size) {
    return Status{Errc::kResourceExhausted,
                  "package exceeds mem_W; use chunked staging"};
  }
  auto processed = load_package(kProcessedRegion);
  if (!processed) return processed.status();
  return seal_blob_for(input, *processed);
}

Result<Bytes> KshotEnclave::do_batch_add() {
  if (processed_size_ == 0) {
    return Status{Errc::kFailedPrecondition, "nothing preprocessed"};
  }
  if (batch_pkgs_.size() >= patchtool::kMaxBatchPackages) {
    return Status{Errc::kResourceExhausted, "batch accumulator full"};
  }
  auto processed = load_package(kProcessedRegion);
  if (!processed) return processed.status();
  batch_pkgs_.push_back(std::move(*processed));
  return Bytes{};
}

Result<Bytes> KshotEnclave::do_seal_batch(ByteSpan input) {
  if (batch_pkgs_.empty()) {
    return Status{Errc::kFailedPrecondition, "empty batch"};
  }
  Bytes envelope = patchtool::serialize_batch(batch_pkgs_);
  if (envelope.size() + 64 > geom_.mem_w_size) {
    return Status{Errc::kResourceExhausted,
                  "batch envelope exceeds mem_W"};
  }
  return seal_blob_for(input, envelope);
}

Result<Bytes> KshotEnclave::do_set_lifecycle(ByteSpan input) {
  if (!initialized_) {
    return Status{Errc::kFailedPrecondition, "enclave not initialized"};
  }
  ByteReader r(input);
  auto get_string8 = [&r]() -> Result<std::string> {
    auto n = r.get_u8();
    if (!n) return n.status();
    auto b = r.get_bytes(*n);
    if (!b) return b.status();
    return std::string(b->begin(), b->end());
  };
  std::vector<std::string> depends;
  std::vector<std::string> supersedes;
  auto ndep = r.get_u8();
  if (!ndep) return Status{Errc::kOutOfRange, "truncated lifecycle wire"};
  for (u8 i = 0; i < *ndep; ++i) {
    auto s = get_string8();
    if (!s) return s.status();
    depends.push_back(std::move(*s));
  }
  auto nsup = r.get_u8();
  if (!nsup) return Status{Errc::kOutOfRange, "truncated lifecycle wire"};
  for (u8 i = 0; i < *nsup; ++i) {
    auto s = get_string8();
    if (!s) return s.status();
    supersedes.push_back(std::move(*s));
  }
  auto allow_splice = r.get_u8();
  auto nold = r.get_u16();
  if (!allow_splice || !nold || *allow_splice > 1) {
    return Status{Errc::kOutOfRange, "truncated lifecycle wire"};
  }
  std::map<u64, u32> old_sizes;
  for (u16 i = 0; i < *nold; ++i) {
    auto h = r.get_u64();
    auto sz = r.get_u32();
    if (!h || !sz) return Status{Errc::kOutOfRange, "truncated lifecycle wire"};
    old_sizes[*h] = *sz;
  }
  pending_depends_ = std::move(depends);
  pending_supersedes_ = std::move(supersedes);
  pending_allow_splice_ = *allow_splice != 0;
  pending_old_sizes_ = std::move(old_sizes);
  lifecycle_pending_ = true;
  return Bytes{};
}

Result<Bytes> KshotEnclave::do_set_mem_x_map(ByteSpan input) {
  if (!initialized_) {
    return Status{Errc::kFailedPrecondition, "enclave not initialized"};
  }
  ByteReader r(input);
  auto count = r.get_u32();
  if (!count) return Status{Errc::kOutOfRange, "truncated extent map"};
  std::vector<FreeExtent> extents;
  extents.reserve(*count);
  for (u32 i = 0; i < *count; ++i) {
    auto base = r.get_u64();
    auto len = r.get_u64();
    if (!base || !len) {
      return Status{Errc::kOutOfRange, "truncated extent map"};
    }
    // Every extent must sit inside the reserved mem_X window (overflow-safe).
    if (*base < geom_.mem_x_base ||
        *base - geom_.mem_x_base > geom_.mem_x_size ||
        *len > geom_.mem_x_size - (*base - geom_.mem_x_base)) {
      return Status{Errc::kOutOfRange, "extent outside mem_X"};
    }
    if (*len != 0) extents.push_back({*base, *len});
  }
  memx_free_ = std::move(extents);
  memx_map_set_ = true;
  return Bytes{};
}

Result<Bytes> KshotEnclave::do_begin_seal_chunked(ByteSpan input) {
  if (processed_size_ == 0) {
    return Status{Errc::kFailedPrecondition, "nothing preprocessed"};
  }
  ByteReader r(input);
  auto pub_bytes = r.get_bytes(32);
  auto max_plain = r.get_u32();
  if (!pub_bytes || !max_plain || *max_plain < 256) {
    return Status{Errc::kInvalidArgument, "bad chunking parameters"};
  }
  crypto::X25519Key smm_pub;
  std::memcpy(smm_pub.data(), pub_bytes->data(), 32);

  crypto::DhKeyPair session = crypto::dh_generate(rng_);
  crypto::X25519Key shared = crypto::dh_shared(session.private_key, smm_pub);
  chunk_key_ = crypto::derive_key(ByteSpan(shared.data(), shared.size()),
                                  "sgx-smm-stream");
  chunk_plain_bytes_ = *max_plain - 8;  // room for the {index,total} header
  chunk_count_ = static_cast<u32>(
      (processed_size_ + chunk_plain_bytes_ - 1) / chunk_plain_bytes_);
  chunking_ = true;

  ByteWriter out;
  out.put_bytes(
      ByteSpan(session.public_key.data(), session.public_key.size()));
  out.put_u32(chunk_count_);
  return out.take();
}

Result<Bytes> KshotEnclave::do_get_chunk(ByteSpan input) {
  if (!chunking_) {
    return Status{Errc::kFailedPrecondition, "chunking not set up"};
  }
  ByteReader r(input);
  auto index = r.get_u32();
  if (!index || *index >= chunk_count_) {
    return Status{Errc::kInvalidArgument, "bad chunk index"};
  }
  auto processed = load_package(kProcessedRegion);
  if (!processed) return processed.status();

  u64 off = static_cast<u64>(*index) * chunk_plain_bytes_;
  u64 len = std::min<u64>(chunk_plain_bytes_, processed->size() - off);

  // Authenticated chunk header + payload slice.
  ByteWriter plain;
  plain.put_u32(*index);
  plain.put_u32(chunk_count_);
  plain.put_bytes(ByteSpan(*processed).subspan(off, len));

  // Nonce: per-chunk, derived from the index — never reused under this
  // stream's fresh key.
  crypto::Nonce96 nonce{};
  store_u32(nonce.data(), *index);
  nonce[11] = 0x5C;  // stream-mode domain separator
  return crypto::seal(chunk_key_, nonce, plain.bytes()).serialize();
}

// ---- EPC package storage ----------------------------------------------------

Status KshotEnclave::store_package(u64 region, ByteSpan data) {
  u64 half = (epc_size() - kRegionHeader) / 2;
  if (data.size() + 8 > half) {
    return {Errc::kResourceExhausted, "package exceeds EPC region"};
  }
  u64 base = kRegionHeader + region * half;
  ByteWriter w;
  w.put_u64(data.size());
  w.put_bytes(data);
  return epc_write(base, w.bytes());
}

Result<Bytes> KshotEnclave::load_package(u64 region) const {
  u64 half = (epc_size() - kRegionHeader) / 2;
  u64 base = kRegionHeader + region * half;
  auto hdr = epc_read(base, 8);
  if (!hdr) return hdr.status();
  u64 size = load_u64(hdr->data());
  if (size == 0 || size > half - 8) {
    return Status{Errc::kInternal, "corrupt EPC package header"};
  }
  return epc_read(base + 8, size);
}

}  // namespace kshot::core
