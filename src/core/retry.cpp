#include "core/retry.hpp"

#include <algorithm>
#include <cmath>

namespace kshot::core {

bool RetryPolicy::retryable(Errc c) {
  switch (c) {
    case Errc::kIntegrityFailure:   // MAC/hash mismatch: tampered in flight
    case Errc::kOutOfRange:         // truncated wire
    case Errc::kInvalidArgument:    // undecodable wire
    case Errc::kPermissionDenied:   // attestation bytes garbled in flight
    case Errc::kAborted:            // SMI suppressed / round rejected
      return true;
    default:
      return false;
  }
}

bool RetryPolicy::retryable(SmmStatus s) {
  switch (s) {
    case SmmStatus::kMacFailure:       // staged ciphertext tampered/garbled
    case SmmStatus::kNothingStaged:    // staging lost before the SMI
    case SmmStatus::kNoSession:        // session burned by a previous fault
    case SmmStatus::kChunkOutOfOrder:  // stream disrupted; restage from zero
      return true;
    default:
      return false;
  }
}

double Backoff::next_us() {
  double base = policy_.base_backoff_us *
                std::pow(policy_.multiplier, static_cast<double>(step_));
  base = std::min(base, policy_.max_backoff_us);
  ++step_;
  // Jitter in [-j, +j] * base, drawn from the seeded RNG so runs reproduce.
  double u = static_cast<double>(rng_.next() >> 11) * 0x1.0p-53;  // [0, 1)
  double pause = base * (1.0 + policy_.jitter * (2.0 * u - 1.0));
  pause = std::max(pause, 0.0);
  total_us_ += pause;
  return pause;
}

}  // namespace kshot::core
