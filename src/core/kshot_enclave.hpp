// The KShot SGX enclave (paper §V-B "SGX-based Patch Preparation").
//
// All patch plaintext and private keys live in the enclave's EPC slice; the
// untrusted helper application only ever relays opaque wire blobs:
//
//   ecall kBeginFetch   -> attested PatchRequest wire (app sends to server)
//   ecall kFinishFetch  <- PatchResponse wire (app got from server); the
//                          enclave unseals and integrity-checks the package
//   ecall kPreprocess   -> lays the patch functions out in mem_X, applies
//                          branch/relocation fixups, formats the package
//   ecall kSeal         <- SMM's session public key (app read the mailbox);
//                          returns the encrypted package + enclave pub key
//                          for the app to place in mem_W / mem_RW
#pragma once

#include <functional>
#include <map>

#include "obs/metrics.hpp"

#include "common/arena.hpp"
#include "core/mailbox.hpp"
#include "kernel/kernel.hpp"
#include "netsim/protocol.hpp"
#include "obs/trace.hpp"
#include "patchtool/package.hpp"
#include "sgx/sgx.hpp"

namespace kshot::core {

/// ECALL function numbers.
enum EnclaveCall : int {
  kEcallInitialize = 1,
  kEcallBeginFetch = 2,
  kEcallFinishFetch = 3,
  kEcallPreprocess = 4,
  kEcallSeal = 5,
  kEcallBeginSealChunked = 6,  // set up streaming; returns chunk count
  kEcallGetChunk = 7,          // one sealed chunk by index
  kEcallBatchReset = 8,        // drop any accumulated batch packages
  kEcallBatchAdd = 9,          // append the current processed package to the
                               // EPC-resident batch accumulator
  kEcallSealBatch = 10,        // seal the accumulated batch envelope for SMM
  kEcallSetLifecycle = 11,     // single-shot lifecycle directives (depends/
                               // supersedes lists, splice eligibility) the
                               // next preprocess stamps into the package
  kEcallSetMemXMap = 12,       // replace the mem_X layout cursor with a
                               // free-extent map (slot reclamation): the
                               // allocator first-fits into the gaps revert
                               // and supersede left behind
};

/// Geometry of the reserved region, passed to the enclave at initialization.
struct ReservedGeometry {
  u64 mem_x_base = 0;
  u64 mem_x_size = 0;
  u64 mem_w_size = 0;

  Bytes serialize() const;
  static Result<ReservedGeometry> deserialize(ByteSpan wire);
};

/// Summary returned by kFinishFetch / kPreprocess.
struct PackageStats {
  u32 functions = 0;
  u32 code_bytes = 0;
  u32 package_bytes = 0;

  Bytes serialize() const;
  static Result<PackageStats> deserialize(ByteSpan wire);
};

class KshotEnclave final : public sgx::Enclave {
 public:
  KshotEnclave(kernel::OsInfo os, u64 entropy_seed);

  /// Typed wrappers over ecall() for the helper application.
  Status initialize(const ReservedGeometry& geom);
  Result<Bytes> begin_fetch(const std::string& patch_id,
                            netsim::PatchRequest::Op op);
  Result<PackageStats> finish_fetch(ByteSpan response_wire);
  Result<PackageStats> preprocess();
  /// Returns enclave_pub(32) || sealed package wire.
  Result<Bytes> seal_for_smm(const crypto::X25519Key& smm_pub);

  /// Streaming mode for packages larger than mem_W: sets up per-chunk
  /// sealing under the SMM session key. Returns enclave_pub(32) || u32
  /// chunk count. Each chunk's sealed plaintext carries an authenticated
  /// {index, total} header so the SMM side can enforce ordering.
  Result<Bytes> begin_seal_chunked(const crypto::X25519Key& smm_pub,
                                   u32 max_chunk_plain_bytes);
  /// One sealed chunk (SealedBox wire) by index.
  Result<Bytes> get_chunk(u32 index);

  /// Batched staging: accumulate several preprocessed packages, then seal
  /// them as one batch envelope (patchtool::serialize_batch) so the SMM
  /// side installs all of them under a single kApplyBatch SMI. batch_add()
  /// snapshots the current processed package; seal_batch_for_smm() does not
  /// clear the accumulator (retry-safe — a failed staging can re-seal).
  Status batch_reset();
  Status batch_add();
  /// Returns enclave_pub(32) || sealed batch envelope wire.
  Result<Bytes> seal_batch_for_smm(const crypto::X25519Key& smm_pub);
  [[nodiscard]] u32 batch_count() const {
    return static_cast<u32>(batch_pkgs_.size());
  }

  /// mem_X bytes consumed so far by preprocessing layout.
  [[nodiscard]] u64 mem_x_cursor() const { return mem_x_cursor_; }
  /// Resets the mem_X layout cursor (fresh reserved region).
  void reset_mem_x_cursor() { mem_x_cursor_ = 0; }

  /// One function's linked size, keyed by SDBM name hash — the splice
  /// eligibility input (a splice body must fit the old footprint).
  struct OldSizeEntry {
    u64 name_hash = 0;
    u32 old_size = 0;
  };
  /// Single-shot lifecycle directives: the next preprocess stamps `depends`/
  /// `supersedes` into the package and, when `allow_splice` is set, marks
  /// every function whose body fits its old footprint (per `old_sizes`) as
  /// an in-place splice — laid out at its kernel-text address, no mem_X
  /// slot. Cleared once consumed.
  Status set_lifecycle(const std::vector<std::string>& depends,
                       const std::vector<std::string>& supersedes,
                       bool allow_splice,
                       const std::vector<OldSizeEntry>& old_sizes);
  /// A free byte extent of mem_X (absolute addresses).
  struct FreeExtent {
    u64 base = 0;
    u64 len = 0;
  };
  /// Replaces the monotonic layout cursor with a free-extent map: subsequent
  /// preprocesses first-fit (16-byte aligned) into the extents, so slots
  /// freed by revert/supersede are reclaimed instead of leaking forever.
  /// Without a map the legacy cursor keeps every historical layout stable.
  Status set_mem_x_map(const std::vector<FreeExtent>& free_extents);

  /// Mirrors the preprocessing-cache counters into `metrics` as
  /// "enclave.prep_hits"/"enclave.prep_misses". Null disables mirroring.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Emits one "enclave" span per ecall into `trace` (null disables).
  /// `vclock` supplies the machine's modeled cycle counter — the enclave has
  /// no machine reference of its own — so enclave spans share the same
  /// virtual timeline as the SMM handler's.
  void set_trace(obs::TraceRecorder* trace, std::function<u64()> vclock,
                 u32 target = 0) {
    trace_ = trace;
    vclock_ = std::move(vclock);
    trace_target_ = target;
  }

 protected:
  Result<Bytes> handle_ecall(int fn, ByteSpan input) override;

 private:
  Result<Bytes> dispatch_ecall(int fn, ByteSpan input);
  Result<Bytes> do_begin_fetch(ByteSpan input);
  Result<Bytes> do_finish_fetch(ByteSpan input);
  Result<Bytes> do_preprocess();
  Result<Bytes> do_seal(ByteSpan input);
  Result<Bytes> do_begin_seal_chunked(ByteSpan input);
  Result<Bytes> do_get_chunk(ByteSpan input);
  Result<Bytes> do_batch_add();
  Result<Bytes> do_seal_batch(ByteSpan input);
  Result<Bytes> do_set_lifecycle(ByteSpan input);
  Result<Bytes> do_set_mem_x_map(ByteSpan input);
  /// Shared seal leg: fresh DH against `smm_pub`, "sgx-smm" key, random
  /// nonce; returns enclave_pub(32) || sealed wire.
  Result<Bytes> seal_blob_for(ByteSpan smm_pub_bytes, const Bytes& plain);

  // EPC-backed package storage.
  Status store_package(u64 region, ByteSpan data);
  Result<Bytes> load_package(u64 region) const;

  kernel::OsInfo os_;
  ReservedGeometry geom_{};
  Rng rng_;  // enclave-internal entropy (RDRAND analogue)
  bool initialized_ = false;

  // DH key for the server session; private part conceptually EPC-resident.
  crypto::DhKeyPair server_session_{};
  bool fetch_in_flight_ = false;

  u64 mem_x_cursor_ = 0;
  u64 raw_size_ = 0;
  u64 processed_size_ = 0;

  // Backing store for the zero-copy fetch validation views (reset per fetch).
  Arena fetch_arena_;

  // Pending lifecycle directives (single-shot, consumed by the next
  // preprocess; conceptually EPC-resident).
  bool lifecycle_pending_ = false;
  std::vector<std::string> pending_depends_;
  std::vector<std::string> pending_supersedes_;
  bool pending_allow_splice_ = false;
  std::map<u64, u32> pending_old_sizes_;  // name hash -> linked size

  // mem_X free-extent map; empty + !memx_map_set_ means the legacy
  // monotonic cursor is in charge.
  bool memx_map_set_ = false;
  std::vector<FreeExtent> memx_free_;

  // Batch accumulator (conceptually EPC-resident, like server_session_).
  std::vector<Bytes> batch_pkgs_;

  // Content-addressed cache of reloc-retargeted function bodies: keyed over
  // (original code, layout address, resolved targets), so a repeated
  // preprocessing of the same package at the same mem_X layout is a hit.
  std::map<u64, Bytes> prep_cache_;
  obs::Counter* c_prep_hits_ = nullptr;
  obs::Counter* c_prep_misses_ = nullptr;

  // Streaming-seal state.
  bool chunking_ = false;
  crypto::Key256 chunk_key_{};
  u32 chunk_plain_bytes_ = 0;
  u32 chunk_count_ = 0;

  // Observability.
  obs::TraceRecorder* trace_ = nullptr;
  std::function<u64()> vclock_;
  u32 trace_target_ = 0;
};

}  // namespace kshot::core
