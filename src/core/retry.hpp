// Retry policy for the untrusted legs of the live-patch pipeline.
//
// The fetch phase (enclave <-> remote server over the lossy channel) and the
// sealed-passing phase (helper app -> mem_W -> SMM) are both safe to repeat:
// integrity comes from the crypto envelope, not the transport, and session
// keys are single-use, so a retransmission is always a *fresh* round — a
// stale or replayed blob can never authenticate. RetryPolicy bounds the
// attempts and spaces them with exponential backoff + jitter; the backoff is
// charged to the machine's *virtual* clock (the OS keeps running — backoff
// is never SMM downtime).
#pragma once

#include "common/rng.hpp"
#include "core/mailbox.hpp"

namespace kshot::core {

struct RetryPolicy {
  u32 max_attempts = 4;           // total tries per phase (1 = no retry)
  double base_backoff_us = 200.0;  // pause before the first retry
  double multiplier = 2.0;         // exponential growth per retry
  double max_backoff_us = 50'000.0;
  double jitter = 0.25;  // +/- fraction of the deterministic backoff

  [[nodiscard]] bool enabled() const { return max_attempts > 1; }

  static RetryPolicy none() {
    RetryPolicy p;
    p.max_attempts = 1;
    return p;
  }

  /// Transport-shaped errors: a garbled/lost/stale message produces one of
  /// these, and a fresh round trip can succeed. Deterministic rejections
  /// (unknown patch, exhausted resources, bad arguments caught up front) are
  /// not retried.
  static bool retryable(Errc c);

  /// SMM statuses a retransmission (with a fresh session) can clear:
  /// tampered/lost staging, a burned session, a disrupted chunk stream.
  /// kDigestFailure is excluded — the MAC already passed, so the corruption
  /// happened *inside* the trusted path and repeating it cannot help.
  static bool retryable(SmmStatus s);
};

/// Exponential backoff schedule with seeded jitter. One instance per
/// pipeline run; next_us() advances the schedule.
class Backoff {
 public:
  Backoff(const RetryPolicy& policy, Rng& rng) : policy_(policy), rng_(rng) {}

  /// Modeled microseconds to pause before the next retry.
  double next_us();

  [[nodiscard]] double total_us() const { return total_us_; }
  [[nodiscard]] u32 steps() const { return step_; }

 private:
  const RetryPolicy& policy_;
  Rng& rng_;
  u32 step_ = 0;
  double total_us_ = 0;
};

}  // namespace kshot::core
