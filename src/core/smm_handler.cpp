#include "core/smm_handler.hpp"

#include <cstring>

#include <algorithm>

#include "common/byte_io.hpp"
#include "common/log.hpp"
#include "crypto/simple_hash.hpp"
#include "crypto/x25519.hpp"

namespace kshot::core {

namespace {

using Clock = std::chrono::steady_clock;

double ns_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
}

/// Builds the 5-byte jmp encoding for a trampoline at `jmp_addr` reaching
/// `target`: E9 rel32 with rel32 relative to the end of the instruction.
std::array<u8, 5> make_jmp(u64 jmp_addr, u64 target) {
  std::array<u8, 5> bytes{};
  bytes[0] = 0xE9;
  i64 rel = static_cast<i64>(target) - static_cast<i64>(jmp_addr + 5);
  store_u32(bytes.data() + 1, static_cast<u32>(static_cast<i32>(rel)));
  return bytes;
}

}  // namespace

SmmPatchHandler::SmmPatchHandler(kernel::MemoryLayout layout, u64 entropy_seed,
                                 obs::MetricsRegistry* metrics)
    : layout_(layout), rng_(entropy_seed), metrics_(metrics) {
  if (!metrics_) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  c_sessions_ = &metrics_->counter("smm.sessions");
  c_applied_ = &metrics_->counter("smm.applied");
  c_rollbacks_ = &metrics_->counter("smm.rollbacks");
  c_stagings_ = &metrics_->counter("smm.stagings_seen");
  c_aborts_ = &metrics_->counter("smm.aborts");
  c_batch_applies_ = &metrics_->counter("smm.batch_applies");
  c_detections_ = &metrics_->counter("smm.detections");
  c_introspect_repairs_ = &metrics_->counter("smm.introspect_repairs");
  c_staged_copies_ = &metrics_->counter("smm.staged_copies");
}

u64 SmmPatchHandler::parallel_bytes_cost(const machine::Machine& m,
                                         double per_byte,
                                         size_t bytes) const {
  const auto& cost = m.cost_model();
  u64 c = cost.bytes_cost(per_byte, bytes);
  const u32 n = m.cpus();
  if (n > 1) {
    // The rendezvoused APs are captive in SMM anyway; fan the byte work out
    // across them and pay a merge charge per AP to combine partial hashes.
    c = c / n + static_cast<u64>(n - 1) * cost.verify_merge_cycles_per_cpu;
  }
  return c;
}

void SmmPatchHandler::record_detection(machine::Machine& m, DetectionClass cls,
                                       SmmStatus status, std::string detail) {
  c_detections_->inc();
  emit_instant(m, "detection",
               {{"class", detection_class_name(cls)}, {"detail", detail}});
  detections_.add(cls, status, session_epoch_, std::move(detail));
}

bool SmmPatchHandler::seen_recent_wire(const crypto::Digest256& h) const {
  for (const auto& w : recent_wires_) {
    if (crypto::digest_equal(w, h)) return true;
  }
  return false;
}

void SmmPatchHandler::remember_wire(const crypto::Digest256& h) {
  if (recent_wires_.size() < kRecentWires) {
    recent_wires_.push_back(h);
    recent_wires_next_ = recent_wires_.size() % kRecentWires;
    return;
  }
  recent_wires_[recent_wires_next_] = h;
  recent_wires_next_ = (recent_wires_next_ + 1) % kRecentWires;
}

double SmmPatchHandler::phase_span(machine::Machine& m, const char* name,
                                   u64 c0, Clock::time_point t0) {
  double ns = ns_since(t0);
  if (trace_) {
    trace_->complete("smm", name, trace_target_, c0, m.cycles(), ns / 1000.0);
  }
  return ns;
}

void SmmPatchHandler::emit_instant(machine::Machine& m, const char* name,
                                   std::vector<obs::TraceArg> args) {
  if (trace_) {
    trace_->instant("smm", name, trace_target_, m.cycles(), std::move(args));
  }
}

void SmmPatchHandler::on_smi(machine::Machine& m) {
  // The machine charged the full rendezvous (SMI entry, IPIs, slowest-CPU
  // jitter) before dispatching here and will charge the resume on return, so
  // the full residency span is known now. At one CPU these are exactly the
  // legacy smi_entry/rsm constants.
  const u64 smi_begin = m.cycles() - m.current_rendezvous_cycles();
  const auto smi_t0 = Clock::now();

  Mailbox mbox(m.mem(), layout_.mem_rw_base(), machine::AccessMode::smm());
  mbox.bump_heartbeat();

  // Single-fetch snapshot of every mailbox field: all dispatch decisions and
  // every field use below work off this one coherent copy, so a concurrent
  // writer cannot change a field between its validation and its use. The
  // snapshot and the freshness/classification checks it feeds are charged
  // against downtime — hardening is not free.
  const auto& costm = m.cost_model();
  m.charge_cycles(costm.snapshot_cycles + costm.detect_fixed_cycles);
  detection_overhead_cycles_ += costm.snapshot_cycles + costm.detect_fixed_cycles;
  auto snap_r = mbox.snapshot();

  // Echo the helper app's command sequence number: after trigger_smi()
  // returns, a stale echo proves this handler never ran (an SMI suppressed
  // by a rootkit) and that the status word is left over from an earlier
  // command. A rootkit can forge the echo, but forging only ever makes the
  // *untrusted* side believe stale news — the SMM-side counters used by the
  // DoS handshake cannot be forged.
  if (snap_r) mbox.write_cmd_seq_echo(snap_r->cmd_seq);

  const char* cmd_name = "none";
  if (snap_r) {
    const MailboxSnapshot& snap = *snap_r;
    // The helper never advances cmd_seq without writing a command, so a
    // fresh sequence number alongside an idle command word means the
    // command was flipped to kIdle after the helper wrote it — without this
    // check the helper would read the *previous* command's leftover kOk.
    const bool fresh_command = snap.cmd_seq != last_cmd_seq_;
    last_cmd_seq_ = snap.cmd_seq;
    if (!snap.command_in_range()) {
      // Pre-hardening this was silently clamped to kIdle; an out-of-range
      // command word is mailbox tampering and must say so.
      cmd_name = "bad_command";
      record_detection(m, DetectionClass::kMailboxFlip, SmmStatus::kBadCommand,
                       "command word out of range");
      mbox.write_status(SmmStatus::kBadCommand);
      mbox.write_command(SmmCommand::kIdle);
    } else {
      switch (snap.command) {
        case SmmCommand::kIdle:
          if (fresh_command) {
            cmd_name = "flipped_idle";
            record_detection(m, DetectionClass::kMailboxFlip,
                             SmmStatus::kBadCommand,
                             "command sequence advanced with an idle "
                             "command word");
            mbox.write_status(SmmStatus::kBadCommand);
            break;
          }
          // Watchdog SMI: nothing requested, so guard the installed patches.
          cmd_name = "idle";
          if (introspect_on_idle_) introspect(m);
          break;
        case SmmCommand::kBeginSession:
          cmd_name = "begin_session";
          begin_session(m, mbox);
          mbox.write_status(SmmStatus::kOk);
          break;
        case SmmCommand::kApplyPatch:
          cmd_name = "apply_patch";
          mbox.write_status(apply_patch(m, mbox, snap));
          break;
        case SmmCommand::kApplyBatch:
          cmd_name = "apply_batch";
          mbox.write_status(apply_batch(m, mbox, snap));
          break;
        case SmmCommand::kStageChunk:
          cmd_name = "stage_chunk";
          mbox.write_status(stage_chunk(m, mbox, snap));
          break;
        case SmmCommand::kRollback:
          cmd_name = "rollback";
          mbox.write_status(rollback(m));
          break;
        case SmmCommand::kRevertPatch:
          cmd_name = "revert_patch";
          mbox.write_status(revert_patch(m, snap));
          break;
        case SmmCommand::kQueryApplied:
          cmd_name = "query_applied";
          mbox.write_status(query_applied(m, mbox));
          break;
        case SmmCommand::kIntrospect:
          cmd_name = "introspect";
          introspect(m);
          mbox.write_status(SmmStatus::kOk);
          break;
        case SmmCommand::kAbortSession:
          cmd_name = "abort_session";
          abort_session(mbox);
          mbox.write_status(SmmStatus::kOk);
          break;
      }
      if (snap.command != SmmCommand::kIdle) {
        mbox.write_command(SmmCommand::kIdle);
      }
    }
    // Bind the status word to the command it answers: the helper checks
    // this against the command it issued, so flipping the command word
    // mid-handoff (e.g. to kBeginSession, whose status is also kOk) can no
    // longer make a stale or wrong-command status pass for success.
    mbox.write_status_cmd(snap.raw_command);
  }

  if (trace_) {
    // The span closes at the cycle the resume leg will complete (RSM plus
    // any APs not already released early), so the sum of "smi" spans equals
    // the machine's total SMM residency exactly at any CPU count.
    trace_->complete("smm", "smi", trace_target_, smi_begin,
                     m.cycles() + m.projected_resume_cycles(),
                     ns_since(smi_t0) / 1000.0, {{"cmd", cmd_name}});
  }
}

void SmmPatchHandler::reset_stream() {
  stream_key_.reset();
  stream_buffer_.clear();
  stream_expected_ = 0;
  stream_total_ = 0;
}

void SmmPatchHandler::abort_session(Mailbox& mbox) {
  session_keys_.reset();
  reset_stream();
  c_aborts_->inc();
  mbox.write_session_epoch(++session_epoch_);
}

void SmmPatchHandler::begin_session(machine::Machine& m, Mailbox& mbox) {
  auto t0 = Clock::now();
  u64 c0 = m.cycles();
  session_keys_ = crypto::dh_generate(rng_);
  m.charge_cycles(m.cost_model().keygen_cycles);
  timings_.keygen_ns = phase_span(m, "keygen", c0, t0);

  // A new session implicitly supersedes any partial chunk stream: the old
  // stream's key is gone, so it could never complete anyway.
  reset_stream();

  c_sessions_->inc();
  ++session_id_;
  mbox.write_smm_pub(session_keys_->public_key);
  mbox.write_session_id(session_id_);
  mbox.write_session_epoch(++session_epoch_);
}

bool SmmPatchHandler::bounds_ok(const patchtool::FunctionPatchView& p) const {
  // All comparisons are in `offset/size <= remaining` form: the natural
  // `base + size > end` wraps for an attacker-chosen base near UINT64_MAX
  // and sails past the end check.
  u64 memx_base = layout_.mem_x_base();
  u64 memx_size = layout_.mem_x_size;
  if (legacy_wrapping_bounds_) {
    // The pre-fix arithmetic, kept verbatim for the fuzz-harness self-test.
    if (p.paddr < memx_base ||
        p.paddr + p.code.size() > memx_base + memx_size) {
      return false;
    }
    if (p.taddr != 0 &&
        (p.taddr < layout_.text_base ||
         p.taddr + p.ftrace_off + 5 > layout_.text_base + layout_.text_max)) {
      return false;
    }
    return true;
  }
  if (p.paddr < memx_base) return false;
  u64 memx_off = p.paddr - memx_base;
  if (memx_off > memx_size || p.code.size() > memx_size - memx_off) {
    return false;
  }
  if (p.taddr != 0) {
    if (p.taddr < layout_.text_base) return false;
    u64 text_off = p.taddr - layout_.text_base;
    if (text_off > layout_.text_max) return false;
    u64 entry_span = static_cast<u64>(p.ftrace_off) + 5;  // u16 + 5: no wrap
    if (entry_span > layout_.text_max - text_off) return false;
  }
  return true;
}

SmmStatus SmmPatchHandler::decrypt_staged(
    machine::Machine& m, Mailbox& mbox, const MailboxSnapshot& snap,
    std::shared_ptr<const Bytes>& out_retain, ByteSpan& out_plain,
    size_t& out_staged) {
  const auto mode = machine::AccessMode::smm();
  const auto& cost = m.cost_model();

  c_stagings_->inc();
  if (!session_keys_.has_value()) return SmmStatus::kNoSession;
  u64 staged = snap.staged_size;
  if (staged == 0) {
    // A live session with nothing staged: the helper never issues this
    // command without staging first, so a zero size here is a flipped field.
    record_detection(m, DetectionClass::kStagedSizeFlip,
                     SmmStatus::kNothingStaged,
                     "staged size is zero under a live session");
    return SmmStatus::kNothingStaged;
  }
  if (staged > layout_.mem_w_size) {
    record_detection(m, DetectionClass::kStagedSizeFlip, SmmStatus::kBadPackage,
                     "staged size exceeds mem_W");
    return SmmStatus::kBadPackage;
  }

  // ---- Data fetching + decryption (Table III "Data Decryption") ----------
  // The staged bytes are fetched exactly once into SMRAM and their hash is
  // pinned; everything downstream (freshness classification, decrypt)
  // operates on this copy. A concurrent writer racing the SMI can no longer
  // swap bytes between validation and use.
  auto t0 = Clock::now();
  u64 c0 = m.cycles();
  auto fetched = m.mem().read_bytes(layout_.mem_w_base(), staged, mode);
  if (!fetched) return SmmStatus::kBadPackage;
  // The envelope buffer is SMRAM-owned for the rest of the session: on the
  // zero-copy path it is decrypted in place and every downstream span (the
  // package views, the installed bodies) borrows straight from it.
  auto envelope = std::make_shared<Bytes>(std::move(*fetched));
  crypto::Digest256 pin = crypto::sha256(*envelope);
  const u64 pin_cycles =
      parallel_bytes_cost(m, cost.pin_hash_cycles_per_byte, staged);
  m.charge_cycles(pin_cycles);
  detection_overhead_cycles_ += pin_cycles;

  // The mid-SMI race window: a second core / DMA engine writing while this
  // core is in SMM.
  if (concurrent_writer_) concurrent_writer_(m);

  if (legacy_double_fetch_) {
    // Self-test seam: the pre-hardening double fetch, re-reading size and
    // bytes from attacker-writable memory after validation.
    auto staged2 = mbox.read_staged_size();
    if (staged2 && *staged2 != 0 && *staged2 <= layout_.mem_w_size) {
      staged = *staged2;
      auto again = m.mem().read_bytes(layout_.mem_w_base(), staged, mode);
      if (again) *envelope = std::move(*again);
    }
  } else if (!crypto::digest_equal(crypto::sha256(*envelope), pin)) {
    // Defense-in-depth: the SMRAM copy cannot change, so this never fires
    // unless the single-fetch invariant itself regresses.
    record_detection(m, DetectionClass::kMemWRewrite, SmmStatus::kMacFailure,
                     "staged-bytes pin mismatch");
    session_keys_.reset();
    return SmmStatus::kMacFailure;
  }

  // Freshness: a wire this handler has staged before can only reappear via
  // an attacker replaying a stale sealed envelope.
  bool replayed = seen_recent_wire(pin);
  remember_wire(pin);

  crypto::X25519Key shared =
      crypto::dh_shared(session_keys_->private_key, snap.enclave_pub);
  crypto::Key256 key = crypto::derive_key(
      ByteSpan(shared.data(), shared.size()), "sgx-smm");
  if (legacy_copy_parser_) {
    // Legacy copying pipeline: ciphertext copied out of the envelope, then
    // the plaintext allocated fresh by the decrypt. Identical statuses,
    // detections, and modeled charges as below — only the copy count
    // differs.
    auto box = crypto::SealedBox::deserialize(*envelope);
    if (!box) {
      session_keys_.reset();
      record_detection(m, replayed ? DetectionClass::kReplay
                                   : DetectionClass::kMemWRewrite,
                       SmmStatus::kMacFailure,
                       "staged bytes do not decode as a sealed envelope");
      return SmmStatus::kMacFailure;
    }
    auto package = crypto::open(key, *box);
    m.charge_cycles(cost.bytes_cost(cost.decrypt_cycles_per_byte, staged));
    timings_.decrypt_ns = phase_span(m, "decrypt", c0, t0);
    if (!package) {
      session_keys_.reset();
      emit_instant(m, "mac_failure");
      record_detection(m, replayed ? DetectionClass::kReplay
                                   : DetectionClass::kMemWRewrite,
                       SmmStatus::kMacFailure,
                       replayed ? "replayed sealed envelope rejected"
                                : "staged bytes failed authentication");
      return SmmStatus::kMacFailure;
    }
    c_staged_copies_->inc(2);  // deserialize copy-out + open's fresh plaintext
    session_keys_.reset();
    auto owned = std::make_shared<Bytes>(std::move(*package));
    out_plain = ByteSpan(owned->data(), owned->size());
    out_retain = std::move(owned);
  } else {
    auto view = crypto::SealedBoxView::deserialize(
        MutByteSpan(envelope->data(), envelope->size()));
    if (!view) {
      // Undecodable staging is indistinguishable from tampering; burn the
      // session either way.
      session_keys_.reset();
      record_detection(m, replayed ? DetectionClass::kReplay
                                   : DetectionClass::kMemWRewrite,
                       SmmStatus::kMacFailure,
                       "staged bytes do not decode as a sealed envelope");
      return SmmStatus::kMacFailure;
    }
    auto plain = crypto::open_in_place(key, *view);
    m.charge_cycles(cost.bytes_cost(cost.decrypt_cycles_per_byte, staged));
    timings_.decrypt_ns = phase_span(m, "decrypt", c0, t0);
    if (!plain) {
      // MAC failure: tampered mem_W or a replayed blob from an old session.
      session_keys_.reset();
      emit_instant(m, "mac_failure");
      record_detection(m, replayed ? DetectionClass::kReplay
                                   : DetectionClass::kMemWRewrite,
                       SmmStatus::kMacFailure,
                       replayed ? "replayed sealed envelope rejected"
                                : "staged bytes failed authentication");
      return SmmStatus::kMacFailure;
    }

    out_plain = ByteSpan(plain->data(), plain->size());
    out_retain = std::move(envelope);
    // Session keys are single-use: replaying this exact ciphertext later
    // cannot succeed (paper §V-C).
    session_keys_.reset();
  }
  out_staged = staged;
  return SmmStatus::kOk;
}

SmmStatus SmmPatchHandler::apply_patch(machine::Machine& m, Mailbox& mbox,
                                       const MailboxSnapshot& snap) {
  std::shared_ptr<const Bytes> retain;
  ByteSpan package;
  size_t staged = 0;
  SmmStatus st = decrypt_staged(m, mbox, snap, retain, package, staged);
  if (st != SmmStatus::kOk) return st;
  return verify_and_apply(m, retain, package, staged);
}

SmmStatus SmmPatchHandler::apply_batch(machine::Machine& m, Mailbox& mbox,
                                       const MailboxSnapshot& snap) {
  const auto& cost = m.cost_model();

  std::shared_ptr<const Bytes> retain;
  ByteSpan envelope;
  size_t staged = 0;
  SmmStatus st = decrypt_staged(m, mbox, snap, retain, envelope, staged);
  if (st != SmmStatus::kOk) return st;

  arena_.reset();
  std::vector<ByteSpan> pkg_wires;
  std::vector<Bytes> pkg_copies;  // legacy mode: owned inner wires
  if (legacy_copy_parser_) {
    auto pkgs = patchtool::parse_batch(envelope);
    if (!pkgs) {
      emit_instant(m, "bad_batch_envelope");
      return SmmStatus::kBadPackage;
    }
    pkg_copies = std::move(*pkgs);
    c_staged_copies_->inc(pkg_copies.size());  // inner wires copied out
    pkg_wires.reserve(pkg_copies.size());
    for (const Bytes& b : pkg_copies) pkg_wires.emplace_back(b.data(), b.size());
  } else {
    auto pkgs = patchtool::parse_batch_view(envelope);
    if (!pkgs) {
      emit_instant(m, "bad_batch_envelope");
      return SmmStatus::kBadPackage;
    }
    pkg_wires = std::move(*pkgs);
  }

  // ---- Verification: every inner package is digest/CRC-checked and parsed
  //      before anything is applied, charged per package (Table III "Patch
  //      Verification" scales with bytes, so the batch pays the fixed
  //      verify cost N times but keygen/SMI entry only once). At >1 CPU the
  //      per-byte hashing fans out across the rendezvoused CPUs. ----------
  auto t0 = Clock::now();
  u64 c0 = m.cycles();
  std::vector<patchtool::PatchSet> owned_sets;  // legacy: keeps copies alive
  std::vector<patchtool::PatchSetView> sets;
  owned_sets.reserve(pkg_wires.size());
  sets.reserve(pkg_wires.size());
  u64 verify_cycles = 0;
  SmmStatus verdict = SmmStatus::kOk;
  const char* fail_instant = nullptr;
  // A batch is an apply-only construct: rollback is a per-unit command on
  // the mailbox, never an inner package. Lifecycle operations (supersede/
  // depends/splice) are single-package: retiring units mid-batch while
  // later members still validate against them has no sane all-or-nothing
  // semantics, so an inner package carrying lifecycle data is rejected
  // outright.
  auto check_set = [&](const auto& set) {
    for (const auto& p : set.patches) {
      if (p.op == patchtool::PatchOp::kRollback) {
        verdict = SmmStatus::kBadPackage;
        fail_instant = "rollback_in_batch";
        return;
      }
    }
    if (set.has_lifecycle()) {
      verdict = SmmStatus::kBadPackage;
      fail_instant = "lifecycle_in_batch";
    }
  };
  for (ByteSpan pkg : pkg_wires) {
    u64 c = cost.verify_fixed_cycles +
            parallel_bytes_cost(m, cost.verify_cycles_per_byte, pkg.size());
    m.charge_cycles(c);
    verify_cycles += c;
    if (legacy_copy_parser_) {
      auto set = patchtool::parse_patchset(pkg);
      if (!set) {
        bool digest = set.status().code() == Errc::kIntegrityFailure;
        verdict = digest ? SmmStatus::kDigestFailure : SmmStatus::kBadPackage;
        fail_instant = digest ? "digest_failure" : "bad_package";
        break;
      }
      check_set(*set);
      if (verdict != SmmStatus::kOk) break;
      c_staged_copies_->inc();  // names + code copied out of the wire
      owned_sets.push_back(std::move(*set));
    } else {
      auto set = patchtool::parse_patchset_view(pkg, arena_);
      if (!set) {
        bool digest = set.status().code() == Errc::kIntegrityFailure;
        verdict = digest ? SmmStatus::kDigestFailure : SmmStatus::kBadPackage;
        fail_instant = digest ? "digest_failure" : "bad_package";
        break;
      }
      check_set(*set);
      if (verdict != SmmStatus::kOk) break;
      sets.push_back(*set);
    }
  }
  if (verdict == SmmStatus::kOk && legacy_copy_parser_) {
    // Views are built only after owned_sets stops growing: view strings may
    // point into SSO storage that a vector reallocation would move.
    for (const auto& s : owned_sets) {
      sets.push_back(patchtool::view_of_patchset(s, arena_));
    }
  }
  timings_.verify_ns = phase_span(m, "verify", c0, t0);
  if (verdict != SmmStatus::kOk) {
    if (fail_instant) emit_instant(m, fail_instant);
    return verdict;
  }

  // ---- Cross-batch validation: if any set would fail validation, reject
  //      the whole batch before a single byte of memory changes. Earlier
  //      members' write windows feed later members' overlap checks, so two
  //      inner packages cannot claim the same mem_X slot or entry point.
  std::vector<ByteWindow> prior_windows;
  for (const auto& set : sets) {
    SmmStatus v = validate_set(set, nullptr, &prior_windows);
    if (v != SmmStatus::kOk) {
      emit_instant(m, "batch_validation_failed");
      return v;
    }
    for (const auto& p : set.patches) collect_windows(p, prior_windows);
  }

  // ---- Application: one rollback unit per package; a mid-batch write
  //      failure unwinds the units already applied, in reverse. Each
  //      committed package releases an even share of the rendezvoused APs:
  //      CPUs whose code later packages do not touch resume before the full
  //      batch completes (fine-grained commit). -----------
  t0 = Clock::now();
  c0 = m.cycles();
  size_t applied_units = 0;
  size_t total_code = 0;
  u32 total_functions = 0;
  const u32 aps = m.cpus() > 1 ? m.cpus() - 1 : 0;
  for (const auto& set : sets) {
    SmmStatus s = apply_parsed(m, set, legacy_copy_parser_ ? nullptr : retain);
    if (s != SmmStatus::kOk) {
      while (applied_units > 0) {
        restore_top_unit(m);
        --applied_units;
      }
      emit_instant(m, "batch_unwound");
      phase_span(m, "apply", c0, t0);
      return s;
    }
    ++applied_units;
    if (aps > 0) {
      u32 share = aps / static_cast<u32>(sets.size());
      if (applied_units <= aps % sets.size()) ++share;
      m.release_aps(share);
    }
    total_code += set.total_code_bytes();
    total_functions += static_cast<u32>(set.patches.size());
  }
  m.charge_cycles(cost.bytes_cost(cost.apply_cycles_per_byte, total_code));
  timings_.apply_ns = phase_span(m, "apply", c0, t0);

  timings_.package_bytes = envelope.size();
  timings_.code_bytes = total_code;
  timings_.functions = total_functions;
  timings_.modeled_cycles =
      cost.keygen_cycles +
      cost.bytes_cost(cost.decrypt_cycles_per_byte, staged) + verify_cycles +
      cost.bytes_cost(cost.apply_cycles_per_byte, total_code);

  c_batch_applies_->inc();
  metrics_->histogram("smm.batch_size").observe(
      static_cast<double>(sets.size()));
  KSHOT_LOG(kInfo, "smm") << "applied batch of " << sets.size()
                          << " package(s), " << total_code << " code bytes";
  return SmmStatus::kOk;
}

SmmStatus SmmPatchHandler::verify_and_apply(
    machine::Machine& m, const std::shared_ptr<const Bytes>& retain,
    ByteSpan package, size_t staged_bytes) {
  const auto& cost = m.cost_model();

  // ---- Patch verification (Table III "Patch Verification": SHA-2 digest
  //      over the package plus per-function CRCs, done by the parser). The
  //      per-byte hashing fans out across the rendezvoused CPUs when there
  //      is more than one; the charge is identical under both parsers. -----
  auto t0 = Clock::now();
  u64 c0 = m.cycles();
  arena_.reset();
  std::optional<patchtool::PatchSet> owned;  // legacy: keeps the copies alive
  patchtool::PatchSetView set;
  Status parse_st = Status::ok();
  if (legacy_copy_parser_) {
    auto parsed = patchtool::parse_patchset(package);
    if (parsed) {
      c_staged_copies_->inc();  // names + code copied out of the wire
      owned = std::move(*parsed);
      set = patchtool::view_of_patchset(*owned, arena_);
    } else {
      parse_st = parsed.status();
    }
  } else {
    auto parsed = patchtool::parse_patchset_view(package, arena_);
    if (parsed) {
      set = *parsed;
    } else {
      parse_st = parsed.status();
    }
  }
  const u64 verify_cycles =
      cost.verify_fixed_cycles +
      parallel_bytes_cost(m, cost.verify_cycles_per_byte, package.size());
  m.charge_cycles(verify_cycles);
  timings_.verify_ns = phase_span(m, "verify", c0, t0);
  if (!parse_st.is_ok()) {
    bool digest = parse_st.code() == Errc::kIntegrityFailure;
    emit_instant(m, digest ? "digest_failure" : "bad_package");
    return digest ? SmmStatus::kDigestFailure : SmmStatus::kBadPackage;
  }

  timings_.package_bytes = package.size();
  timings_.code_bytes = set.total_code_bytes();
  timings_.functions = static_cast<u32>(set.patches.size());

  // A package is either all-apply or all-rollback. The old first-entry
  // sniff silently dropped the apply entries of a mixed package while
  // reporting kOk — reject the mix outright instead.
  bool any_rollback = false;
  bool any_apply = false;
  for (const auto& p : set.patches) {
    (p.op == patchtool::PatchOp::kRollback ? any_rollback : any_apply) = true;
  }
  if (any_rollback && any_apply) {
    emit_instant(m, "mixed_op_package");
    return SmmStatus::kBadPackage;
  }

  // ---- Patch application (Table III "Patch Application") ------------------
  // Spliced bytes skip the mem_X copy and trampoline, so they are charged at
  // the cheaper splice rate; everything else pays the full apply rate. A set
  // with no splice entries charges exactly what it always did.
  size_t splice_code = 0;
  for (const auto& p : set.patches) {
    if (p.splice) splice_code += p.code.size();
  }
  size_t tramp_code = set.total_code_bytes() - splice_code;
  t0 = Clock::now();
  c0 = m.cycles();
  SmmStatus st;
  if (any_rollback) {
    st = rollback_parsed(m, set);
  } else {
    st = apply_parsed(m, set, legacy_copy_parser_ ? nullptr : retain);
    // Fine-grained commit: once the text writes land, the rendezvoused APs
    // have nothing left to wait for — they resume while the BSP finishes
    // the bookkeeping tail.
    if (st == SmmStatus::kOk) m.release_aps(m.cpus());
  }
  u64 apply_cycles =
      cost.bytes_cost(cost.apply_cycles_per_byte, tramp_code) +
      cost.bytes_cost(cost.splice_cycles_per_byte, splice_code);
  m.charge_cycles(apply_cycles);
  timings_.apply_ns = phase_span(m, "apply", c0, t0);
  timings_.modeled_cycles =
      cost.keygen_cycles +
      cost.bytes_cost(cost.decrypt_cycles_per_byte, staged_bytes) +
      verify_cycles + apply_cycles;
  return st;
}

SmmStatus SmmPatchHandler::stage_chunk(machine::Machine& m, Mailbox& mbox,
                                       const MailboxSnapshot& snap) {
  const auto mode = machine::AccessMode::smm();
  const auto& cost = m.cost_model();
  constexpr u32 kMaxChunks = 4096;
  constexpr size_t kMaxStreamBytes = 256ull << 20;

  auto abort_stream = [&]() { reset_stream(); };

  c_stagings_->inc();
  // First chunk: consume the session key and derive the stream key.
  if (!stream_key_.has_value()) {
    if (!session_keys_.has_value()) return SmmStatus::kNoSession;
    crypto::X25519Key shared =
        crypto::dh_shared(session_keys_->private_key, snap.enclave_pub);
    stream_key_ = crypto::derive_key(ByteSpan(shared.data(), shared.size()),
                                     "sgx-smm-stream");
    session_keys_.reset();
    stream_expected_ = 0;
    stream_total_ = 0;
    stream_buffer_.clear();
  }

  u64 staged = snap.staged_size;
  if (staged == 0) {
    record_detection(m, DetectionClass::kStagedSizeFlip,
                     SmmStatus::kNothingStaged,
                     "chunk staged size is zero under a live stream");
    abort_stream();
    return SmmStatus::kNothingStaged;
  }
  if (staged > layout_.mem_w_size) {
    record_detection(m, DetectionClass::kStagedSizeFlip, SmmStatus::kBadPackage,
                     "chunk staged size exceeds mem_W");
    abort_stream();
    return SmmStatus::kBadPackage;
  }
  // Single fetch of the chunk into SMRAM, hash-pinned — same TOCTOU
  // discipline as decrypt_staged.
  auto sealed_wire = m.mem().read_bytes(layout_.mem_w_base(), staged, mode);
  if (!sealed_wire) {
    abort_stream();
    return SmmStatus::kBadPackage;
  }
  crypto::Digest256 pin = crypto::sha256(*sealed_wire);
  const u64 pin_cycles =
      parallel_bytes_cost(m, cost.pin_hash_cycles_per_byte, staged);
  m.charge_cycles(pin_cycles);
  detection_overhead_cycles_ += pin_cycles;
  if (concurrent_writer_) concurrent_writer_(m);
  if (legacy_double_fetch_) {
    auto staged2 = mbox.read_staged_size();
    if (staged2 && *staged2 != 0 && *staged2 <= layout_.mem_w_size) {
      staged = *staged2;
      auto again = m.mem().read_bytes(layout_.mem_w_base(), staged, mode);
      if (again) sealed_wire = std::move(again);
    }
  } else if (!crypto::digest_equal(crypto::sha256(*sealed_wire), pin)) {
    record_detection(m, DetectionClass::kMemWRewrite, SmmStatus::kMacFailure,
                     "chunk pin mismatch");
    abort_stream();
    return SmmStatus::kMacFailure;
  }

  auto box = crypto::SealedBox::deserialize(*sealed_wire);
  if (!box) {
    record_detection(m, DetectionClass::kMemWRewrite, SmmStatus::kMacFailure,
                     "chunk does not decode as a sealed envelope");
    abort_stream();
    return SmmStatus::kMacFailure;
  }
  // Enforce the expected index through the nonce: a chunk sealed for a
  // different position cannot authenticate.
  crypto::Nonce96 want_nonce{};
  store_u32(want_nonce.data(), stream_expected_);
  want_nonce[11] = 0x5C;
  if (box->nonce != want_nonce) {
    record_detection(m, DetectionClass::kChunkReorder,
                     SmmStatus::kChunkOutOfOrder, "chunk nonce out of order");
    abort_stream();
    return SmmStatus::kChunkOutOfOrder;
  }
  auto plain = crypto::open(*stream_key_, *box);
  m.charge_cycles(cost.bytes_cost(cost.decrypt_cycles_per_byte, staged));
  if (!plain) {
    record_detection(m, DetectionClass::kMemWRewrite, SmmStatus::kMacFailure,
                     "chunk failed authentication");
    abort_stream();
    return SmmStatus::kMacFailure;
  }

  ByteReader r(*plain);
  auto index = r.get_u32();
  auto total = r.get_u32();
  if (!index || !total || *index != stream_expected_ || *total == 0 ||
      *total > kMaxChunks || (stream_total_ != 0 && *total != stream_total_)) {
    record_detection(m, DetectionClass::kChunkReorder,
                     SmmStatus::kChunkOutOfOrder,
                     "chunk header index/total inconsistent");
    abort_stream();
    return SmmStatus::kChunkOutOfOrder;
  }
  stream_total_ = *total;
  auto payload = r.get_bytes(r.remaining());
  if (stream_buffer_.size() + payload->size() > kMaxStreamBytes) {
    abort_stream();
    return SmmStatus::kBadPackage;
  }
  stream_buffer_.insert(stream_buffer_.end(), payload->begin(),
                        payload->end());
  ++stream_expected_;

  if (stream_expected_ < stream_total_) return SmmStatus::kChunkAccepted;

  // Final chunk: the accumulated plaintext is the full package. The stream
  // buffer itself becomes the retained envelope — no copy.
  auto package = std::make_shared<Bytes>(std::move(stream_buffer_));
  size_t staged_total = package->size();
  abort_stream();
  ByteSpan span(package->data(), package->size());
  return verify_and_apply(m, std::move(package), span, staged_total);
}

void SmmPatchHandler::collect_windows(const patchtool::FunctionPatchView& p,
                                      std::vector<ByteWindow>& out) {
  if (p.splice) {
    if (!p.code.empty()) out.push_back({p.taddr, p.code.size()});
    return;
  }
  if (!p.code.empty()) out.push_back({p.paddr, p.code.size()});
  if (p.taddr != 0) out.push_back({p.taddr + p.ftrace_off, 5});
}

void SmmPatchHandler::collect_windows(const InstalledPatch& p,
                                      std::vector<ByteWindow>& out) {
  if (p.spliced) {
    if (p.code_size != 0) out.push_back({p.taddr, p.code_size});
    return;
  }
  if (p.code_size != 0) out.push_back({p.paddr, p.code_size});
  if (p.taddr != 0) out.push_back({p.taddr + p.ftrace_off, 5});
}

SmmStatus SmmPatchHandler::validate_set(
    const patchtool::PatchSetView& set,
    const std::vector<bool>* retired_installed,
    const std::vector<ByteWindow>* extra_windows) const {
  // Validate everything — bounds, preprocessing, variable-edit targets —
  // before touching memory: the whole set applies or nothing does. Nothing
  // in apply_parsed past this check may fail for a reason validation could
  // have caught.
  std::vector<ByteWindow> mine;
  for (const auto& p : set.patches) {
    if (p.splice) {
      // In-place splice: the body lands straight over the old function, so
      // it must fit the old footprint and sit entirely inside kernel text.
      // paddr is 0 by construction (the wire parser enforces it), so the
      // mem_X bounds check does not apply.
      if (p.taddr == 0 || p.paddr != 0) return SmmStatus::kBadPackage;
      if (p.old_size == 0 || p.code.size() > p.old_size) {
        return SmmStatus::kBadPackage;
      }
      if (p.taddr < layout_.text_base) return SmmStatus::kBadPackage;
      u64 text_off = p.taddr - layout_.text_base;
      if (text_off > layout_.text_max ||
          p.code.size() > layout_.text_max - text_off) {
        return SmmStatus::kBadPackage;
      }
    } else if (!bounds_ok(p)) {
      return SmmStatus::kBadPackage;
    }
    if (!p.relocs.empty()) return SmmStatus::kBadPackage;  // not preprocessed
    for (const auto& v : p.var_edits) {
      // Overflow-safe, like bounds_ok: `v.addr + 8` wraps for addresses near
      // UINT64_MAX and would slip past a `> end` comparison.
      if (v.addr < layout_.data_base ||
          v.addr - layout_.data_base > layout_.data_max - 8) {
        return SmmStatus::kBadPackage;
      }
    }
    collect_windows(p, mine);
  }

  // Byte-precise overlap rejection. A set whose write windows intersect each
  // other or an installed patch's body/trampoline would corrupt the earlier
  // write and leave introspection repairing the two back and forth forever —
  // reject it before anything touches memory. Records a supersede is about
  // to retire (`retired_installed`) are exempt: the cumulative set legally
  // re-patches the same entry points.
  auto overlaps = [](const ByteWindow& a, const ByteWindow& b) {
    return a.addr < b.addr + b.len && b.addr < a.addr + a.len;
  };
  for (size_t i = 0; i < mine.size(); ++i) {
    for (size_t j = i + 1; j < mine.size(); ++j) {
      if (overlaps(mine[i], mine[j])) return SmmStatus::kBadPackage;
    }
  }
  std::vector<ByteWindow> others;
  for (size_t k = 0; k < installed_.size(); ++k) {
    if (retired_installed && k < retired_installed->size() &&
        (*retired_installed)[k]) {
      continue;
    }
    collect_windows(installed_[k], others);
  }
  if (extra_windows) {
    others.insert(others.end(), extra_windows->begin(), extra_windows->end());
  }
  for (const auto& a : mine) {
    for (const auto& b : others) {
      if (overlaps(a, b)) return SmmStatus::kBadPackage;
    }
  }
  return SmmStatus::kOk;
}

SmmStatus SmmPatchHandler::apply_parsed(
    machine::Machine& m, const patchtool::PatchSetView& set,
    const std::shared_ptr<const Bytes>& retain) {
  const auto mode = machine::AccessMode::smm();
  auto sv_bytes = [](std::string_view s) {
    return ByteSpan(reinterpret_cast<const u8*>(s.data()), s.size());
  };

  // 0. Resolve the supersede list against the applied stack. Predecessors a
  //    cumulative patch names but that are not applied here (already
  //    reverted, or never rolled out to this target) are skipped: the point
  //    of a cumulative patch is that it carries their fixes regardless.
  std::vector<size_t> superseded;
  for (const auto& sid : set.supersedes) {
    for (size_t u = 0; u < applied_units_.size(); ++u) {
      if (applied_units_[u].id == sid) {
        superseded.push_back(u);
        break;
      }
    }
  }
  std::sort(superseded.begin(), superseded.end());
  superseded.erase(std::unique(superseded.begin(), superseded.end()),
                   superseded.end());

  // Dependency fence: every declared dependency must be provided by some
  // applied unit. Units being superseded still count — the new set inherits
  // their provides, so depending on a set you supersede is legal (and the
  // common cumulative-patch shape).
  auto provided = [&](u64 h) {
    for (const auto& u : applied_units_) {
      for (u64 pv : u.provides) {
        if (pv == h) return true;
      }
    }
    return false;
  };
  for (const auto& dep : set.depends) {
    if (!provided(crypto::sdbm(sv_bytes(dep)))) {
      emit_instant(m, "missing_dependency");
      return SmmStatus::kMissingDependency;
    }
  }

  std::vector<bool> retired(installed_.size(), false);
  for (size_t u : superseded) {
    for (size_t idx : applied_units_[u].members) retired[idx] = true;
  }
  SmmStatus valid = validate_set(set, &retired, nullptr);
  if (valid != SmmStatus::kOk) return valid;

  // Retire the superseded units' kernel-text effects up front (reverse apply
  // order), so the cumulative set may legally re-patch the same entry
  // points. Their installed_ records stay until commit: a failed apply
  // re-installs them and the kernel ends byte-identical to its pre-SMI
  // state.
  for (auto it = superseded.rbegin(); it != superseded.rend(); ++it) {
    const AppliedUnit& u = applied_units_[*it];
    for (auto mi = u.members.rbegin(); mi != u.members.rend(); ++mi) {
      restore_installed(m, installed_[*mi]);
    }
  }
  auto reinstall_superseded = [&]() {
    for (size_t u : superseded) {
      for (size_t idx : applied_units_[u].members) {
        const InstalledPatch& p = installed_[idx];
        if (p.spliced) {
          m.mem().write(p.taddr, p.code(), mode);
        } else if (p.taddr != 0) {
          write_trampoline(m, p);
        }
      }
    }
  };

  // 1. Global/shared variable edits (paper: before redirection), remembering
  //    the overwritten values so a late failure can unwind them.
  std::vector<std::pair<u64, u64>> var_undo;
  auto unwind_vars = [&]() {
    for (auto it = var_undo.rbegin(); it != var_undo.rend(); ++it) {
      m.mem().write_u64(it->first, it->second, mode);
    }
  };
  for (const auto& p : set.patches) {
    for (const auto& v : p.var_edits) {
      auto old = m.mem().read_u64(v.addr, mode);
      Status st = old ? m.mem().write_u64(v.addr, v.value, mode)
                      : old.status();
      if (!st.is_ok()) {
        unwind_vars();
        reinstall_superseded();
        return SmmStatus::kBadPackage;
      }
      var_undo.emplace_back(v.addr, *old);
    }
  }

  // 2. Place the patched bodies in mem_X (splice entries have no mem_X
  //    footprint; their body lands in step 3). mem_X is KShot-owned, but the
  //    unwind still restores the overwritten bytes: a failed apply must
  //    leave mem_X byte-identical too, or every aborted transaction leaks
  //    its partial bodies into slots the allocator believes are free.
  struct BodyUndo {
    u64 addr;
    Bytes prev;
  };
  std::vector<BodyUndo> body_undo;
  auto unwind_bodies = [&]() {
    for (auto it = body_undo.rbegin(); it != body_undo.rend(); ++it) {
      m.mem().write(it->addr, it->prev, mode);
    }
  };
  std::vector<InstalledPatch> batch;
  // Legacy retention: without a retained envelope the installed records must
  // own their bytes, so the bodies are copied out of the parse.
  if (!retain) c_staged_copies_->inc();
  for (const auto& p : set.patches) {
    InstalledPatch inst;
    inst.name = std::string(p.name);
    inst.taddr = p.taddr;
    inst.paddr = p.paddr;
    inst.ftrace_off = p.ftrace_off;
    inst.code_size = static_cast<u32>(p.code.size());
    inst.memx_hash = crypto::sha256(p.code);
    // SMRAM-kept authoritative body (§V-D): zero-copy installs borrow from
    // the shared decrypted envelope; legacy installs own a copy.
    if (retain) {
      inst.retain = retain;
      inst.code_ref = p.code;
    } else {
      auto copy = std::make_shared<Bytes>(p.code.begin(), p.code.end());
      inst.code_ref = ByteSpan(copy->data(), copy->size());
      inst.retain = std::move(copy);
    }
    inst.spliced = p.splice;
    if (!p.splice) {
      auto prev = m.mem().read_bytes(p.paddr, p.code.size(), mode);
      if (!prev || !m.mem().write(p.paddr, p.code, mode).is_ok()) {
        unwind_bodies();
        unwind_vars();
        reinstall_superseded();
        return SmmStatus::kBadPackage;
      }
      body_undo.push_back({p.paddr, std::move(*prev)});
    }
    batch.push_back(std::move(inst));
  }

  // 3. Rewrite kernel text: 5-byte jmp trampolines (preserving the kernel-
  //    tracing pad — the jmp lands *after* it and targets the patched body
  //    past its own pad), or the spliced body written straight over the old
  //    function. On any failure, restore the text already rewritten, the
  //    mem_X bodies, and the variable edits — the machine ends
  //    byte-identical to its pre-SMI state.
  auto unwind_text = [&](size_t upto) {
    for (size_t j = upto; j-- > 0;) {
      const auto& done = batch[j];
      if (done.spliced) {
        m.mem().write(done.taddr, done.original_body, mode);
      } else if (done.taddr != 0) {
        m.mem().write(done.taddr + done.ftrace_off,
                      ByteSpan(done.original_entry.data(), 5), mode);
      }
    }
  };
  for (size_t i = 0; i < batch.size(); ++i) {
    auto& inst = batch[i];
    if (inst.spliced) {
      // Capture the replaced text first: it is what revert writes back.
      auto prev = m.mem().read_bytes(inst.taddr, inst.code_size, mode);
      if (!prev || !m.mem().write(inst.taddr, inst.code(), mode).is_ok()) {
        unwind_text(i);
        unwind_bodies();
        unwind_vars();
        reinstall_superseded();
        return SmmStatus::kBadPackage;
      }
      inst.original_body = std::move(*prev);
      continue;
    }
    if (inst.taddr == 0) continue;  // new mem_X-only helper: no trampoline
    u64 jmp_addr = inst.taddr + inst.ftrace_off;
    u64 target = inst.paddr + inst.ftrace_off;
    // The captured entry bytes are what rollback and introspection later
    // write back into kernel text; committing a patch whose capture failed
    // would make rollback write five zero bytes over live instructions.
    Status rd = m.mem().read(jmp_addr,
                             MutByteSpan(inst.original_entry.data(), 5), mode);
    if (!rd.is_ok()) {
      unwind_text(i);
      unwind_bodies();
      unwind_vars();
      reinstall_superseded();
      return SmmStatus::kBadPackage;
    }
    inst.trampoline = make_jmp(jmp_addr, target);
    Status st = write_trampoline(m, inst);
    if (!st.is_ok()) {
      unwind_text(i);
      unwind_bodies();
      unwind_vars();
      reinstall_superseded();
      return SmmStatus::kBadPackage;
    }
  }

  // Commit. First erase the superseded units for real — records and units,
  // highest first, re-basing surviving units' member indices — collecting
  // the provides the new unit inherits. Then push this set as one applied
  // unit. An empty, non-superseding set installs nothing and must not leave
  // a phantom unit for a later kRollback to pop.
  std::vector<u64> inherited;
  for (auto it = superseded.rbegin(); it != superseded.rend(); ++it) {
    AppliedUnit gone = std::move(applied_units_[*it]);
    applied_units_.erase(applied_units_.begin() +
                         static_cast<std::ptrdiff_t>(*it));
    inherited.insert(inherited.end(), gone.provides.begin(),
                     gone.provides.end());
    std::sort(gone.members.begin(), gone.members.end());
    for (auto mi = gone.members.rbegin(); mi != gone.members.rend(); ++mi) {
      installed_.erase(installed_.begin() + static_cast<std::ptrdiff_t>(*mi));
      for (auto& u : applied_units_) {
        for (auto& idx : u.members) {
          if (idx > *mi) --idx;
        }
      }
    }
  }
  AppliedUnit unit;
  unit.id = std::string(set.id);
  unit.kernel_version = std::string(set.kernel_version);
  unit.id_hash = crypto::sdbm(sv_bytes(set.id));
  unit.members.reserve(batch.size());
  for (auto& inst : batch) {
    unit.members.push_back(installed_.size());
    installed_.push_back(std::move(inst));
  }
  unit.provides.push_back(unit.id_hash);
  unit.provides.insert(unit.provides.end(), inherited.begin(),
                       inherited.end());
  std::sort(unit.provides.begin(), unit.provides.end());
  unit.provides.erase(std::unique(unit.provides.begin(), unit.provides.end()),
                      unit.provides.end());
  unit.depends.reserve(set.depends.size());
  for (const auto& dep : set.depends) {
    unit.depends.push_back(crypto::sdbm(sv_bytes(dep)));
  }
  if (!unit.members.empty() || !superseded.empty()) {
    unit.seq = ++unit_seq_;
    applied_units_.push_back(std::move(unit));
  }
  // The one copy the zero-copy pipeline cannot eliminate: this package's
  // bodies were written into machine memory by the steps above (the SMM
  // write). Everything before it was a borrowed span.
  c_staged_copies_->inc();
  c_applied_->inc();
  metrics_->histogram("smm.code_bytes").observe(
      static_cast<double>(set.total_code_bytes()));
  KSHOT_LOG(kInfo, "smm") << "applied " << set.id << ": "
                          << set.patches.size() << " function(s)"
                          << (superseded.empty()
                                  ? ""
                                  : ", superseding " +
                                        std::to_string(superseded.size()) +
                                        " unit(s)");
  return SmmStatus::kOk;
}

Status SmmPatchHandler::write_trampoline(machine::Machine& m,
                                         const InstalledPatch& p) {
  return m.mem().write(p.taddr + p.ftrace_off,
                       ByteSpan(p.trampoline.data(), p.trampoline.size()),
                       machine::AccessMode::smm());
}

SmmStatus SmmPatchHandler::rollback_parsed(machine::Machine& m,
                                           const patchtool::PatchSetView& set) {
  (void)set;  // a rollback package authorizes the operation; state is local
  return rollback(m);
}

void SmmPatchHandler::restore_installed(machine::Machine& m,
                                        const InstalledPatch& p) {
  const auto mode = machine::AccessMode::smm();
  if (p.spliced) {
    m.mem().write(p.taddr, p.original_body, mode);
  } else if (p.taddr != 0) {
    m.mem().write(p.taddr + p.ftrace_off,
                  ByteSpan(p.original_entry.data(), 5), mode);
  }
}

void SmmPatchHandler::remove_unit(machine::Machine& m, size_t unit_idx) {
  AppliedUnit unit = std::move(applied_units_[unit_idx]);
  applied_units_.erase(applied_units_.begin() +
                       static_cast<std::ptrdiff_t>(unit_idx));
  std::sort(unit.members.begin(), unit.members.end());
  // Restore kernel text in reverse apply order, then drop the records
  // (highest indices first), re-basing the surviving units' member indices —
  // this is what frees the unit's mem_X slots for the enclave's allocator to
  // reclaim (the bytes themselves are left behind; nothing points at them).
  for (auto it = unit.members.rbegin(); it != unit.members.rend(); ++it) {
    restore_installed(m, installed_[*it]);
  }
  for (auto it = unit.members.rbegin(); it != unit.members.rend(); ++it) {
    installed_.erase(installed_.begin() + static_cast<std::ptrdiff_t>(*it));
    for (auto& u : applied_units_) {
      for (auto& idx : u.members) {
        if (idx > *it) --idx;
      }
    }
  }
}

void SmmPatchHandler::restore_top_unit(machine::Machine& m) {
  if (applied_units_.empty()) return;
  remove_unit(m, applied_units_.size() - 1);
}

SmmStatus SmmPatchHandler::rollback(machine::Machine& m) {
  auto t0 = Clock::now();
  u64 c0 = m.cycles();
  if (applied_units_.empty()) return SmmStatus::kNothingToRollback;
  restore_top_unit(m);
  c_rollbacks_->inc();
  phase_span(m, "rollback", c0, t0);
  KSHOT_LOG(kInfo, "smm") << "rolled back last patch unit";
  return SmmStatus::kOk;
}

SmmStatus SmmPatchHandler::revert_patch(machine::Machine& m,
                                        const MailboxSnapshot& snap) {
  auto t0 = Clock::now();
  u64 c0 = m.cycles();
  size_t idx = applied_units_.size();
  for (size_t u = 0; u < applied_units_.size(); ++u) {
    if (applied_units_[u].id_hash == snap.revert_target) {
      idx = u;
      break;
    }
  }
  if (idx == applied_units_.size()) return SmmStatus::kNothingToRollback;
  // Dependency fence: a unit another applied unit depends on must stay until
  // the dependent is reverted (or superseded) first.
  for (size_t u = 0; u < applied_units_.size(); ++u) {
    if (u == idx) continue;
    for (u64 dep : applied_units_[u].depends) {
      for (u64 pv : applied_units_[idx].provides) {
        if (dep == pv) {
          emit_instant(m, "revert_blocked");
          return SmmStatus::kRevertBlocked;
        }
      }
    }
  }
  remove_unit(m, idx);
  c_rollbacks_->inc();
  phase_span(m, "revert", c0, t0);
  KSHOT_LOG(kInfo, "smm") << "reverted patch unit out of order";
  return SmmStatus::kOk;
}

SmmStatus SmmPatchHandler::query_applied(machine::Machine& m, Mailbox& mbox) {
  const auto mode = machine::AccessMode::smm();
  ByteWriter w;
  w.put_u32(kQueryMagic);
  w.put_u32(static_cast<u32>(applied_units_.size()));
  auto put_string8 = [&w](const std::string& s) {
    size_t n = std::min<size_t>(s.size(), 255);
    w.put_u8(static_cast<u8>(n));
    w.put_bytes(ByteSpan(reinterpret_cast<const u8*>(s.data()), n));
  };
  for (const auto& u : applied_units_) {
    put_string8(u.id);
    put_string8(u.kernel_version);
    w.put_u64(u.seq);
    w.put_u64(u.id_hash);
    w.put_u32(static_cast<u32>(u.members.size()));
    u32 code_bytes = 0;
    u8 spliced = 0;
    for (size_t idx : u.members) {
      code_bytes += installed_[idx].code_size;
      if (installed_[idx].spliced) ++spliced;
    }
    w.put_u32(code_bytes);
    w.put_u8(spliced);
  }
  // mem_X occupancy: the occupied extents (sorted by base) are exactly what
  // the enclave-side allocator needs to place the next set into the gaps.
  std::vector<ByteWindow> extents;
  for (const auto& p : installed_) {
    if (!p.spliced && p.code_size != 0) {
      extents.push_back({p.paddr, p.code_size});
    }
  }
  std::sort(extents.begin(), extents.end(),
            [](const ByteWindow& a, const ByteWindow& b) {
              return a.addr < b.addr;
            });
  u64 used = memx_used();
  w.put_u64(used);
  w.put_u64(layout_.mem_x_size - used);
  w.put_u32(static_cast<u32>(extents.size()));
  for (const auto& e : extents) {
    w.put_u64(e.addr);
    w.put_u64(e.len);
  }
  Bytes blob = w.take();
  if (MailboxLayout::kQueryBlob + blob.size() > layout_.mem_rw_size) {
    return SmmStatus::kBadPackage;
  }
  if (!m.mem()
           .write(layout_.mem_rw_base() + MailboxLayout::kQueryBlob, blob,
                  mode)
           .is_ok()) {
    return SmmStatus::kBadPackage;
  }
  mbox.write_query_size(blob.size());
  return SmmStatus::kOk;
}

Status SmmPatchHandler::arm_kernel_guard(machine::Machine& m,
                                         std::vector<MutableWindow> windows) {
  auto text = m.mem().read_bytes(layout_.text_base, layout_.text_max,
                                 machine::AccessMode::smm());
  if (!text) return text.status();
  pristine_text_ = std::move(*text);
  guard_windows_ = std::move(windows);
  guard_armed_ = true;
  return Status::ok();
}

void SmmPatchHandler::introspect(machine::Machine& m) {
  const auto mode = machine::AccessMode::smm();
  auto t0 = Clock::now();
  u64 c0 = m.cycles();
  IntrospectionReport rep;
  rep.patches_checked = static_cast<u32>(installed_.size());

  for (const auto& p : installed_) {
    if (p.spliced) {
      // Spliced body lives in kernel text: no trampoline or mem_X footprint
      // to check, just the body itself against the SMRAM copy's hash.
      auto cur = m.mem().read_bytes(p.taddr, p.code_size, mode);
      if (!cur) {
        ++rep.unreadable;
      } else if (!crypto::digest_equal(crypto::sha256(*cur), p.memx_hash)) {
        ++rep.trampolines_reverted;
        m.mem().write(p.taddr, p.code(), mode);
      }
      continue;
    }
    // Trampoline still present? (Malicious patch reversion, §V-D.)
    if (p.taddr != 0) {
      std::array<u8, 5> cur{};
      Status rd = m.mem().read(p.taddr + p.ftrace_off,
                               MutByteSpan(cur.data(), 5), mode);
      if (!rd.is_ok()) {
        // A failed read leaves `cur` zeroed; comparing those zeros anyway
        // would "detect" a mismatch and blind-write a repair jmp into a
        // range that could not even be read. Skip the repair and surface
        // the unreadable range as a detection instead.
        ++rep.unreadable;
      } else if (cur != p.trampoline) {
        ++rep.trampolines_reverted;
        write_trampoline(m, p);
      }
    }
    // mem_X body intact?
    auto body = m.mem().read_bytes(p.paddr, p.code_size, mode);
    if (!body) {
      ++rep.unreadable;
    } else {
      auto h = crypto::sha256(*body);
      if (!crypto::digest_equal(h, p.memx_hash)) {
        ++rep.memx_tampered;
        // Repair from the authoritative copy kept in SMRAM, so the patched
        // version persists (§V-D "Malicious Patch Reversion").
        m.mem().write(p.paddr, p.code(), mode);
      }
    }
  }

  // Reserved-region page attributes (a rootkit with page-table control could
  // have re-opened mem_X for writing).
  auto check_attrs = [&](PhysAddr base, size_t len, machine::PageAttr want) {
    for (PhysAddr a = base; a < base + len; a += machine::kPageSize) {
      machine::PageAttr got = m.mem().attrs_at(a);
      if (got.read != want.read || got.write != want.write ||
          got.exec != want.exec) {
        ++rep.attrs_restored;
        m.mem().set_attrs(a, machine::kPageSize, want);
      }
    }
  };
  check_attrs(layout_.mem_rw_base(), layout_.mem_rw_size,
              {true, true, false, 0});
  check_attrs(layout_.mem_w_base(), layout_.mem_w_size,
              {false, true, false, 0});
  check_attrs(layout_.mem_x_base(), layout_.mem_x_size,
              {false, false, true, 0});

  // Kernel-text guard: any byte differing from the trusted-boot snapshot —
  // outside KShot's own trampolines and the kernel-mutable windows — is an
  // unauthorized kernel modification; restore it.
  if (guard_armed_) {
    auto current = m.mem().read_bytes(layout_.text_base, pristine_text_.size(),
                                      mode);
    if (current) {
      auto in_window = [&](u64 addr) {
        for (const auto& w : guard_windows_) {
          if (addr >= w.addr && addr < w.addr + w.len) return true;
        }
        for (const auto& p : installed_) {
          if (p.spliced) {
            if (addr >= p.taddr && addr < p.taddr + p.code_size) return true;
            continue;
          }
          if (p.taddr != 0 && addr >= p.taddr + p.ftrace_off &&
              addr < p.taddr + p.ftrace_off + 5) {
            return true;
          }
        }
        return false;
      };
      for (size_t i = 0; i < current->size(); ++i) {
        if ((*current)[i] == pristine_text_[i]) continue;
        u64 addr = layout_.text_base + i;
        if (in_window(addr)) continue;
        m.mem().write(addr, ByteSpan(&pristine_text_[i], 1), mode);
        ++rep.text_bytes_restored;
      }
    }
  }

  last_introspection_ = rep;
  phase_span(m, "introspect", c0, t0);
  if (!rep.clean()) {
    // Repairs are a first-class detection, not just a warn log: the count
    // lands in the metric and the run's DetectionReport so callers (fleet
    // quarantine, campaign oracles) can see the tampering happened.
    u64 repairs = static_cast<u64>(rep.trampolines_reverted) +
                  rep.memx_tampered + rep.attrs_restored +
                  rep.text_bytes_restored;
    c_introspect_repairs_->inc(repairs);
    record_detection(
        m, DetectionClass::kIntrospectionRepair, SmmStatus::kOk,
        "repaired " + std::to_string(rep.trampolines_reverted) +
            " trampoline(s), " + std::to_string(rep.memx_tampered) +
            " body(ies), " + std::to_string(rep.attrs_restored) +
            " page(s), " + std::to_string(rep.text_bytes_restored) +
            " text byte(s); " + std::to_string(rep.unreadable) +
            " unreadable range(s) skipped");
    emit_instant(m, "tampering_repaired",
                 {{"trampolines", std::to_string(rep.trampolines_reverted)},
                  {"bodies", std::to_string(rep.memx_tampered)},
                  {"pages", std::to_string(rep.attrs_restored)},
                  {"text_bytes", std::to_string(rep.text_bytes_restored)},
                  {"unreadable", std::to_string(rep.unreadable)}});
    KSHOT_LOG(kWarn, "smm") << "introspection repaired tampering: "
                            << rep.trampolines_reverted << " trampolines, "
                            << rep.memx_tampered << " bodies, "
                            << rep.attrs_restored << " pages";
  }
}

}  // namespace kshot::core
