#include "core/kshot.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/byte_io.hpp"
#include "common/log.hpp"
#include "crypto/simple_hash.hpp"

namespace kshot::core {

namespace {
using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

/// Baseline of the machine's downtime decomposition totals, taken before a
/// run's SMIs; the deltas land in PatchReport and must sum to the run's
/// downtime exactly.
struct DowntimeMark {
  u64 smm = 0;
  u64 rdv = 0;
  u64 hnd = 0;
  u64 res = 0;
};

DowntimeMark mark_downtime(const machine::Machine& m) {
  return {m.smm_cycles(), m.rendezvous_cycles_total(),
          m.handler_cycles_total(), m.resume_cycles_total()};
}

void fill_downtime(const machine::Machine& m, const DowntimeMark& before,
                   PatchReport& report) {
  report.downtime_cycles = m.smm_cycles() - before.smm;
  report.rendezvous_cycles = m.rendezvous_cycles_total() - before.rdv;
  report.handler_cycles = m.handler_cycles_total() - before.hnd;
  report.resume_cycles = m.resume_cycles_total() - before.res;
}
}  // namespace

const char* patch_phase_name(PatchPhase p) {
  switch (p) {
    case PatchPhase::kFetching: return "FETCHING";
    case PatchPhase::kStaged: return "STAGED";
    case PatchPhase::kApplied: return "APPLIED";
    case PatchPhase::kFailed: return "FAILED";
  }
  return "?";
}

Kshot::Kshot(kernel::Kernel& kernel, sgx::SgxRuntime& sgx,
             netsim::PatchServer& server, netsim::Channel& channel,
             u64 entropy_seed)
    : kernel_(kernel),
      sgx_(sgx),
      server_(server),
      channel_(channel),
      entropy_seed_(entropy_seed),
      retry_rng_(entropy_seed ^ 0xB0FF) {}

DetectionReport Kshot::take_detections() {
  DetectionReport out;
  if (handler_) out = handler_->take_detections();
  out.merge(std::move(helper_detections_));
  helper_detections_ = {};
  return out;
}

obs::MetricsRegistry& Kshot::metrics() {
  if (!metrics_) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  return *metrics_;
}

void Kshot::set_trace(obs::TraceRecorder* trace, u32 target) {
  trace_ = trace;
  trace_target_ = target;
  if (handler_) handler_->set_trace(trace_, trace_target_);
  if (enclave_) {
    auto* m = &kernel_.machine();
    enclave_->set_trace(trace_, [m] { return m->cycles(); }, trace_target_);
  }
}

void Kshot::emit_span(const char* name, u64 c0, double wall_us,
                      std::vector<obs::TraceArg> args) {
  if (trace_) {
    trace_->complete("kshot", name, trace_target_, c0,
                     kernel_.machine().cycles(), wall_us, std::move(args));
  }
}

void Kshot::emit_instant(const char* name, std::vector<obs::TraceArg> args) {
  if (trace_) {
    trace_->instant("kshot", name, trace_target_, kernel_.machine().cycles(),
                    std::move(args));
  }
}

Status Kshot::install(u64 watchdog_interval_cycles) {
  if (installed_) return {Errc::kFailedPrecondition, "already installed"};
  auto& m = kernel_.machine();
  const auto& lay = kernel_.layout();

  // Firmware step: SMM handler into SMRAM, optional watchdog timer, then
  // lock (D_LCK). After this, nothing — including a fully compromised
  // kernel — can replace either.
  handler_ = std::make_unique<SmmPatchHandler>(lay, entropy_seed_ ^ 0x5A5A,
                                               &metrics());
  SmmPatchHandler* h = handler_.get();
  KSHOT_RETURN_IF_ERROR(
      m.set_smm_handler([h](machine::Machine& mm) { h->on_smi(mm); }));
  if (watchdog_interval_cycles != 0) {
    KSHOT_RETURN_IF_ERROR(m.set_periodic_smi(watchdog_interval_cycles));
    handler_->set_introspect_on_idle(true);
  }
  m.lock_smram();

  // Boot step: load the preprocessing enclave. Its EPC slice must hold two
  // copies of the largest deliverable package — bounded by mem_X, since
  // chunked staging lets packages exceed mem_W — capped by available EPC.
  enclave_ = std::make_unique<KshotEnclave>(kernel_.os_info(),
                                            entropy_seed_ ^ 0xE9C1);
  size_t epc_bytes =
      std::min<size_t>(lay.epc_size, 2 * lay.mem_x_size + (1ull << 20));
  KSHOT_RETURN_IF_ERROR(sgx_.load_enclave(*enclave_, epc_bytes));

  ReservedGeometry geom;
  geom.mem_x_base = lay.mem_x_base();
  geom.mem_x_size = lay.mem_x_size;
  geom.mem_w_size = lay.mem_w_size;
  KSHOT_RETURN_IF_ERROR(enclave_->initialize(geom));
  enclave_->set_metrics(&metrics());

  installed_ = true;
  // Re-apply any trace routing configured before install so the freshly
  // built handler/enclave emit too.
  if (trace_) set_trace(trace_, trace_target_);
  return Status::ok();
}

Result<SmmStatus> Kshot::trigger_and_status(SmmCommand cmd) {
  auto& m = kernel_.machine();
  Mailbox mbox(m.mem(), kernel_.layout().mem_rw_base(),
               machine::AccessMode::normal());
  u64 seq = ++cmd_seq_;
  KSHOT_RETURN_IF_ERROR(mbox.write_cmd_seq(seq));
  KSHOT_RETURN_IF_ERROR(mbox.write_command(cmd));
  emit_instant("smi_raised",
               {{"cmd", std::to_string(static_cast<int>(cmd))},
                {"seq", std::to_string(seq)}});
  m.trigger_smi();
  // The handler echoes the sequence number on entry. A stale echo means the
  // SMI never ran — whatever sits in the status word is from an *earlier*
  // command, and trusting it would let a rootkit that gates SMIs spoof
  // success forever. (A rootkit can forge the echo, but that only fools the
  // untrusted side into proceeding — every later integrity check still
  // happens inside SMM, so forgery buys it nothing.)
  auto echo = mbox.read_cmd_seq_echo();
  if (!echo) return echo.status();
  if (*echo != seq) {
    helper_detections_.add(
        DetectionClass::kSmiSuppression, SmmStatus::kOk,
        handler_ ? handler_->session_epoch() : 0,
        "commanded SMI never ran (stale cmd_seq echo)");
    metrics().counter("kshot.smi_suppressions").inc();
    emit_instant("smi_suppressed", {{"seq", std::to_string(seq)}});
    return Status{Errc::kAborted, "SMI suppressed: mailbox status is stale"};
  }
  // The status word must answer the command we issued: the handler records
  // the command it actually executed next to the status, so a command word
  // flipped between our write and SMI delivery (to kIdle, kBeginSession, or
  // anything else whose status could read as success) is caught here.
  auto status_cmd = mbox.read_status_cmd();
  if (!status_cmd) return status_cmd.status();
  if (*status_cmd != static_cast<u64>(cmd)) {
    helper_detections_.add(
        DetectionClass::kMailboxFlip, SmmStatus::kBadCommand,
        handler_ ? handler_->session_epoch() : 0,
        "handler executed a different command than issued");
    metrics().counter("kshot.command_flips").inc();
    emit_instant("command_flipped", {{"seq", std::to_string(seq)}});
    return Status{Errc::kAborted, "command word tampered in flight"};
  }
  auto st = mbox.read_status();
  if (!st) return st.status();
  return *st;
}

Result<double> Kshot::fetch_once(const std::string& patch_id) {
  auto request = enclave_->begin_fetch(patch_id,
                                       netsim::PatchRequest::Op::kFetchPatch);
  if (!request) return request.status();
  Bytes req_wire = channel_.transfer(std::move(*request));
  double link_us = channel_.last_latency_us();
  auto response = server_.handle_request(req_wire);
  if (!response) return response.status();
  Bytes resp_wire = channel_.transfer(std::move(*response));
  link_us += channel_.last_latency_us();
  auto fetch_stats = enclave_->finish_fetch(resp_wire);
  if (!fetch_stats) return fetch_stats.status();
  return link_us;
}

Status Kshot::fetch_with_retry(const std::string& patch_id,
                               PatchReport& report) {
  auto t0 = Clock::now();
  u64 c0 = kernel_.machine().cycles();
  Backoff backoff(retry_, retry_rng_);
  Status last = Status::ok();
  double link_us = 0;
  for (u32 attempt = 1; attempt <= retry_.max_attempts; ++attempt) {
    ++report.resilience.fetch_attempts;
    metrics().counter("kshot.fetch_attempts").inc();
    auto res = fetch_once(patch_id);
    if (res) {
      link_us = *res;
      last = Status::ok();
      break;
    }
    last = res.status();
    emit_instant("fetch_retry", {{"attempt", std::to_string(attempt)}});
    metrics().counter("kshot.fetch_retries").inc();
    if (!RetryPolicy::retryable(last.code())) break;
    if (attempt == retry_.max_attempts) {
      report.resilience.retries_exhausted = true;
      break;
    }
    charge_backoff(backoff.next_us(), report);
  }
  report.sgx.fetch_us = us_since(t0) + link_us;
  emit_span("fetch", c0, report.sgx.fetch_us,
            {{"id", patch_id},
             {"attempts",
              std::to_string(report.resilience.fetch_attempts)}});
  metrics().histogram("kshot.fetch_us").observe(report.sgx.fetch_us);
  return last;
}

void Kshot::charge_backoff(double us, PatchReport& report) {
  auto& m = kernel_.machine();
  u64 c0 = m.cycles();
  // Backoff is OS run time, never SMM downtime: charge plain cycles.
  m.charge_cycles(static_cast<u64>(us * m.cost_model().ghz * 1000.0));
  report.resilience.backoff_us += us;
  // wall_us 0: a backoff takes no real time, only modeled (virtual) time.
  emit_span("backoff", c0, 0.0);
  metrics().counter("kshot.backoffs").inc();
}

void Kshot::abort_session(PatchReport& report) {
  // Best-effort: if the SMI itself is suppressed there is nothing to clean
  // up on the SMM side anyway.
  auto st = trigger_and_status(SmmCommand::kAbortSession);
  (void)st;
  ++report.resilience.session_aborts;
  metrics().counter("kshot.session_aborts").inc();
}

Status Kshot::apply_with_retry(
    const std::function<Result<SmmStatus>()>& attempt_once,
    PatchReport& report,
    const std::function<bool()>& applied_probe) {
  Backoff backoff(retry_, retry_rng_);
  bool outcome_unknown = false;
  for (u32 attempt = 1; attempt <= retry_.max_attempts; ++attempt) {
    ++report.resilience.apply_attempts;
    metrics().counter("kshot.apply_attempts").inc();
    auto res = attempt_once();
    if (res && *res == SmmStatus::kOk) {
      report.smm_status = SmmStatus::kOk;
      report.success = true;
      return Status::ok();
    }

    // A transport failure leaves the attempt's outcome unknown: an
    // interposer that garbled the echo (or swallowed the reply) may have
    // let the apply SMI run to completion first. Ask the handler what is
    // actually installed before deciding — re-staging an already-applied
    // set would (correctly) be rejected for overlapping its own windows.
    // The probe itself rides an SMI the interposer can also garble, so once
    // any outcome in this call has been unknown, keep asking: a later
    // attempt's *rejection* is exactly what re-staging an already-applied
    // set looks like, and trusting it would report failure with the patch
    // live in kernel text.
    const bool ask_probe = !res || outcome_unknown;
    if (!res) outcome_unknown = true;
    if (ask_probe && applied_probe && applied_probe()) {
      emit_instant("apply_confirmed_by_query",
                   {{"attempt", std::to_string(attempt)}});
      report.smm_status = SmmStatus::kOk;
      report.success = true;
      return Status::ok();
    }

    // Discard the failed attempt's session + partial stream so the next
    // attempt (or the next live_patch call) stages against a fresh epoch.
    abort_session(report);

    Status transport_err = Status::ok();
    bool retryable;
    if (res) {
      report.smm_status = *res;
      retryable = RetryPolicy::retryable(*res);
    } else {
      transport_err = res.status();
      retryable = RetryPolicy::retryable(transport_err.code());
    }
    if (!retryable || attempt == retry_.max_attempts) {
      report.resilience.retries_exhausted =
          retryable && attempt == retry_.max_attempts;
      report.success = false;
      return transport_err;  // ok() for an SmmStatus failure: report carries it
    }
    charge_backoff(backoff.next_us(), report);
  }
  report.success = false;
  return Status::ok();
}

Result<PatchReport> Kshot::live_patch(const std::string& patch_id) {
  return live_patch(patch_id, LifecycleOptions{});
}

Result<PatchReport> Kshot::live_patch(const std::string& patch_id,
                                      const LifecycleOptions& opts) {
  if (!installed_) {
    return Status{Errc::kFailedPrecondition, "install() first"};
  }
  auto& m = kernel_.machine();
  const auto& lay = kernel_.layout();
  Mailbox mbox(m.mem(), lay.mem_rw_base(), machine::AccessMode::normal());

  PatchReport report;
  report.id = patch_id;
  const DowntimeMark dt0 = mark_downtime(m);
  u64 run_c0 = m.cycles();
  auto run_t0 = Clock::now();
  metrics().counter("kshot.live_patches").inc();

  // ---- Fetch (SGX <-> remote server over the untrusted channel) ----------
  // Each attempt is a whole fresh round trip: requests carry a fresh nonce,
  // so a retried fetch can never be satisfied by a replayed response.
  notify_phase(PatchPhase::kFetching);
  if (Status st = fetch_with_retry(patch_id, report); !st.is_ok()) {
    notify_phase(PatchPhase::kFailed);
    return st;
  }

  // ---- Preprocess once: deterministic, and it consumes mem_X budget ------
  // Lifecycle directives go to the enclave first (single-shot; the next
  // preprocess consumes them). Splice eligibility needs the old footprints,
  // which only the helper side has — the kernel symbol table.
  if (!opts.empty()) {
    std::vector<KshotEnclave::OldSizeEntry> old_sizes;
    if (opts.allow_splice) {
      old_sizes.reserve(kernel_.image().symbols.size());
      for (const auto& sym : kernel_.image().symbols) {
        old_sizes.push_back(
            {crypto::sdbm(to_bytes(sym.name)), sym.size});
      }
    }
    if (Status st = enclave_->set_lifecycle(opts.depends, opts.supersedes,
                                            opts.allow_splice, old_sizes);
        !st.is_ok()) {
      notify_phase(PatchPhase::kFailed);
      return st;
    }
  }
  auto t0 = Clock::now();
  auto prep_stats = enclave_->preprocess();
  if (!prep_stats) {
    notify_phase(PatchPhase::kFailed);
    return prep_stats.status();
  }
  report.sgx.preprocess_us = us_since(t0);
  report.stats = *prep_stats;

  // ---- Seal + stage + apply: one transaction per attempt ------------------
  // Session keys are single-use, so every attempt begins a fresh session
  // and re-seals against the fresh SMM public key; a failed attempt is
  // aborted (epoch bump) before the next one stages.
  auto attempt_once = [&]() -> Result<SmmStatus> {
    // SMI #1: fresh SMM session key.
    auto begin = trigger_and_status(SmmCommand::kBeginSession);
    if (!begin) return begin.status();
    auto smm_pub = mbox.read_smm_pub();
    if (!smm_pub) return smm_pub.status();

    auto t1 = Clock::now();
    auto sealed = enclave_->seal_for_smm(*smm_pub);
    if (!sealed) return sealed.status();
    if (sealed->size() < 32) {
      return Status{Errc::kInternal, "malformed seal output"};
    }
    report.sgx.preprocess_us += us_since(t1);

    // Passing: the untrusted app writes mem_W + mailbox. This is the leg a
    // resident rootkit can garble (modeled by the stage tamperer).
    t1 = Clock::now();
    u64 stage_c0 = m.cycles();
    Bytes blob = std::move(*sealed);
    if (stage_tamperer_) stage_tamperer_(blob);
    if (blob.size() < 32) {
      return Status{Errc::kIntegrityFailure, "staged blob mangled"};
    }
    crypto::X25519Key enclave_pub;
    std::memcpy(enclave_pub.data(), blob.data(), 32);
    ByteSpan package(blob.data() + 32, blob.size() - 32);
    if (package.size() > lay.mem_w_size) {
      return Status{Errc::kResourceExhausted, "package exceeds mem_W"};
    }
    ++staging_attempts_;
    KSHOT_RETURN_IF_ERROR(m.mem().write(lay.mem_w_base(), package,
                                        machine::AccessMode::normal()));
    KSHOT_RETURN_IF_ERROR(mbox.write_enclave_pub(enclave_pub));
    KSHOT_RETURN_IF_ERROR(mbox.write_staged_size(package.size()));
    report.sgx.passing_us += us_since(t1);
    emit_span("stage", stage_c0, us_since(t1),
              {{"bytes", std::to_string(package.size())}});
    notify_phase(PatchPhase::kStaged);

    // SMI #2: decrypt, verify, apply.
    return trigger_and_status(SmmCommand::kApplyPatch);
  };
  auto applied_probe = [&] { return ids_applied({patch_id}); };
  if (Status st = apply_with_retry(attempt_once, report, applied_probe);
      !st.is_ok()) {
    notify_phase(PatchPhase::kFailed);
    return st;
  }
  notify_phase(report.success ? PatchPhase::kApplied : PatchPhase::kFailed);

  const SmmPatchTimings& t = handler_->last_timings();
  const auto& cost = m.cost_model();
  report.smm.keygen_us = t.keygen_ns / 1000.0;
  report.smm.decrypt_us = t.decrypt_ns / 1000.0;
  report.smm.verify_us = t.verify_ns / 1000.0;
  report.smm.apply_us = t.apply_ns / 1000.0;
  fill_downtime(m, dt0, report);
  // World-switch time straight from the decomposition: rendezvous + resume
  // across both SMIs (at one CPU, exactly SMI-count * (smi_entry + rsm)).
  report.smm.switch_us =
      cost.to_us(report.rendezvous_cycles + report.resume_cycles);
  report.smm.total_us = report.smm.keygen_us + report.smm.decrypt_us +
                        report.smm.verify_us + report.smm.apply_us +
                        report.smm.switch_us;
  report.smm.modeled_total_us = cost.to_us(report.downtime_cycles);
  report.detections = take_detections();
  emit_span("live_patch", run_c0, us_since(run_t0),
            {{"id", patch_id}, {"success", report.success ? "1" : "0"}});
  metrics().counter(report.success ? "kshot.patch_success"
                                   : "kshot.patch_failure").inc();
  metrics().histogram("kshot.downtime_us").observe(
      report.smm.modeled_total_us);
  return report;
}

Result<PatchReport> Kshot::live_patch_batch(
    const std::vector<std::string>& patch_ids) {
  if (!installed_) {
    return Status{Errc::kFailedPrecondition, "install() first"};
  }
  if (patch_ids.empty()) {
    return Status{Errc::kInvalidArgument, "empty batch"};
  }
  auto& m = kernel_.machine();
  const auto& lay = kernel_.layout();
  Mailbox mbox(m.mem(), lay.mem_rw_base(), machine::AccessMode::normal());

  PatchReport report;
  report.id = "BATCH(";
  for (size_t i = 0; i < patch_ids.size(); ++i) {
    if (i != 0) report.id += ",";
    report.id += patch_ids[i];
  }
  report.id += ")";
  const DowntimeMark dt0 = mark_downtime(m);
  u64 run_c0 = m.cycles();
  auto run_t0 = Clock::now();
  metrics().counter("kshot.live_patches").inc();

  // ---- Fetch + preprocess each package, accumulating in the enclave ------
  // fetch_with_retry writes per-call fetch_us; sum them across the batch.
  KSHOT_RETURN_IF_ERROR(enclave_->batch_reset());
  notify_phase(PatchPhase::kFetching);
  double fetch_us_total = 0;
  for (const std::string& id : patch_ids) {
    if (Status st = fetch_with_retry(id, report); !st.is_ok()) {
      notify_phase(PatchPhase::kFailed);
      return st;
    }
    fetch_us_total += report.sgx.fetch_us;
    auto t0 = Clock::now();
    auto prep_stats = enclave_->preprocess();
    if (!prep_stats) {
      notify_phase(PatchPhase::kFailed);
      return prep_stats.status();
    }
    report.sgx.preprocess_us += us_since(t0);
    report.stats.functions += prep_stats->functions;
    report.stats.code_bytes += prep_stats->code_bytes;
    report.stats.package_bytes += prep_stats->package_bytes;
    if (Status st = enclave_->batch_add(); !st.is_ok()) {
      notify_phase(PatchPhase::kFailed);
      return st;
    }
  }
  report.sgx.fetch_us = fetch_us_total;

  // ---- One seal + stage + apply transaction for the whole batch ----------
  // Exactly two SMIs per attempt (begin_session + apply_batch) no matter
  // how many packages ride along; the enclave re-seals the accumulated
  // envelope against each attempt's fresh SMM session key.
  auto attempt_once = [&]() -> Result<SmmStatus> {
    auto begin = trigger_and_status(SmmCommand::kBeginSession);
    if (!begin) return begin.status();
    auto smm_pub = mbox.read_smm_pub();
    if (!smm_pub) return smm_pub.status();

    auto t1 = Clock::now();
    auto sealed = enclave_->seal_batch_for_smm(*smm_pub);
    if (!sealed) return sealed.status();
    if (sealed->size() < 32) {
      return Status{Errc::kInternal, "malformed seal output"};
    }
    report.sgx.preprocess_us += us_since(t1);

    t1 = Clock::now();
    u64 stage_c0 = m.cycles();
    Bytes blob = std::move(*sealed);
    if (stage_tamperer_) stage_tamperer_(blob);
    if (blob.size() < 32) {
      return Status{Errc::kIntegrityFailure, "staged blob mangled"};
    }
    crypto::X25519Key enclave_pub;
    std::memcpy(enclave_pub.data(), blob.data(), 32);
    ByteSpan package(blob.data() + 32, blob.size() - 32);
    if (package.size() > lay.mem_w_size) {
      return Status{Errc::kResourceExhausted, "package exceeds mem_W"};
    }
    ++staging_attempts_;
    KSHOT_RETURN_IF_ERROR(m.mem().write(lay.mem_w_base(), package,
                                        machine::AccessMode::normal()));
    KSHOT_RETURN_IF_ERROR(mbox.write_enclave_pub(enclave_pub));
    KSHOT_RETURN_IF_ERROR(mbox.write_staged_size(package.size()));
    report.sgx.passing_us += us_since(t1);
    emit_span("stage", stage_c0, us_since(t1),
              {{"bytes", std::to_string(package.size())},
               {"batch", std::to_string(patch_ids.size())}});
    notify_phase(PatchPhase::kStaged);

    return trigger_and_status(SmmCommand::kApplyBatch);
  };
  auto applied_probe = [&] { return ids_applied(patch_ids); };
  if (Status st = apply_with_retry(attempt_once, report, applied_probe);
      !st.is_ok()) {
    notify_phase(PatchPhase::kFailed);
    return st;
  }
  notify_phase(report.success ? PatchPhase::kApplied : PatchPhase::kFailed);

  const SmmPatchTimings& t = handler_->last_timings();
  const auto& cost = m.cost_model();
  report.smm.keygen_us = t.keygen_ns / 1000.0;
  report.smm.decrypt_us = t.decrypt_ns / 1000.0;
  report.smm.verify_us = t.verify_ns / 1000.0;
  report.smm.apply_us = t.apply_ns / 1000.0;
  fill_downtime(m, dt0, report);
  report.smm.switch_us =
      cost.to_us(report.rendezvous_cycles + report.resume_cycles);
  report.smm.total_us = report.smm.keygen_us + report.smm.decrypt_us +
                        report.smm.verify_us + report.smm.apply_us +
                        report.smm.switch_us;
  report.smm.modeled_total_us = cost.to_us(report.downtime_cycles);
  report.detections = take_detections();
  emit_span("live_patch_batch", run_c0, us_since(run_t0),
            {{"id", report.id}, {"success", report.success ? "1" : "0"}});
  metrics().counter(report.success ? "kshot.patch_success"
                                   : "kshot.patch_failure").inc();
  metrics().histogram("kshot.downtime_us").observe(
      report.smm.modeled_total_us);
  return report;
}

Result<PatchReport> Kshot::live_patch_chunked(const std::string& patch_id,
                                              u32 chunk_bytes) {
  if (!installed_) {
    return Status{Errc::kFailedPrecondition, "install() first"};
  }
  auto& m = kernel_.machine();
  const auto& lay = kernel_.layout();
  if (chunk_bytes < 512 || chunk_bytes + 64 > lay.mem_w_size) {
    return Status{Errc::kInvalidArgument, "bad chunk size"};
  }
  Mailbox mbox(m.mem(), lay.mem_rw_base(), machine::AccessMode::normal());

  PatchReport report;
  report.id = patch_id;
  const DowntimeMark dt0 = mark_downtime(m);
  u64 run_c0 = m.cycles();
  auto run_t0 = Clock::now();
  metrics().counter("kshot.live_patches").inc();

  // Fetch + preprocess exactly as in the single-shot path.
  notify_phase(PatchPhase::kFetching);
  if (Status st = fetch_with_retry(patch_id, report); !st.is_ok()) {
    notify_phase(PatchPhase::kFailed);
    return st;
  }

  auto t0 = Clock::now();
  auto prep_stats = enclave_->preprocess();
  if (!prep_stats) {
    notify_phase(PatchPhase::kFailed);
    return prep_stats.status();
  }
  report.sgx.preprocess_us = us_since(t0);
  report.stats = *prep_stats;

  // One attempt = fresh session, fresh chunked sealing (new stream key,
  // per-chunk nonces), the whole chunk train. Any mid-stream failure voids
  // the partial SMRAM accumulation via kAbortSession; nothing of a failed
  // stream can leak into a later one.
  auto attempt_once = [&]() -> Result<SmmStatus> {
    auto begin = trigger_and_status(SmmCommand::kBeginSession);
    if (!begin) return begin.status();
    auto smm_pub = mbox.read_smm_pub();
    if (!smm_pub) return smm_pub.status();

    auto t1 = Clock::now();
    auto setup = enclave_->begin_seal_chunked(*smm_pub, chunk_bytes);
    if (!setup) return setup.status();
    if (setup->size() != 36) {
      return Status{Errc::kInternal, "malformed chunk setup"};
    }
    crypto::X25519Key enclave_pub;
    std::memcpy(enclave_pub.data(), setup->data(), 32);
    u32 chunks = load_u32(setup->data() + 32);
    report.sgx.preprocess_us += us_since(t1);
    KSHOT_RETURN_IF_ERROR(mbox.write_enclave_pub(enclave_pub));

    // Stream the chunks, one SMI each.
    for (u32 i = 0; i < chunks; ++i) {
      t1 = Clock::now();
      auto chunk = enclave_->get_chunk(i);
      if (!chunk) return chunk.status();
      Bytes blob = std::move(*chunk);
      if (stage_tamperer_) stage_tamperer_(blob);
      if (blob.size() > lay.mem_w_size) {
        return Status{Errc::kResourceExhausted, "chunk exceeds mem_W"};
      }
      ++staging_attempts_;
      KSHOT_RETURN_IF_ERROR(m.mem().write(lay.mem_w_base(), blob,
                                          machine::AccessMode::normal()));
      KSHOT_RETURN_IF_ERROR(mbox.write_staged_size(blob.size()));
      report.sgx.passing_us += us_since(t1);

      bool last = i + 1 == chunks;
      if (last) notify_phase(PatchPhase::kStaged);  // whole train is in
      auto status = trigger_and_status(SmmCommand::kStageChunk);
      if (!status) return status.status();
      if (last) return *status;  // kOk applies; anything else is the failure
      if (*status != SmmStatus::kChunkAccepted) return *status;
    }
    return Status{Errc::kInternal, "package sealed to zero chunks"};
  };
  auto applied_probe = [&] { return ids_applied({patch_id}); };
  if (Status st = apply_with_retry(attempt_once, report, applied_probe);
      !st.is_ok()) {
    notify_phase(PatchPhase::kFailed);
    return st;
  }
  notify_phase(report.success ? PatchPhase::kApplied : PatchPhase::kFailed);

  const SmmPatchTimings& t = handler_->last_timings();
  const auto& cost = m.cost_model();
  report.smm.keygen_us = t.keygen_ns / 1000.0;
  report.smm.verify_us = t.verify_ns / 1000.0;
  report.smm.apply_us = t.apply_ns / 1000.0;
  fill_downtime(m, dt0, report);
  report.smm.switch_us =
      cost.to_us(report.rendezvous_cycles + report.resume_cycles);
  report.smm.modeled_total_us = cost.to_us(report.downtime_cycles);
  report.detections = take_detections();
  emit_span("live_patch_chunked", run_c0, us_since(run_t0),
            {{"id", patch_id}, {"success", report.success ? "1" : "0"}});
  metrics().counter(report.success ? "kshot.patch_success"
                                   : "kshot.patch_failure").inc();
  metrics().histogram("kshot.downtime_us").observe(
      report.smm.modeled_total_us);
  return report;
}

Result<PatchReport> Kshot::rollback() {
  if (!installed_) {
    return Status{Errc::kFailedPrecondition, "install() first"};
  }
  auto& m = kernel_.machine();
  const DowntimeMark dt0 = mark_downtime(m);
  auto status = trigger_and_status(SmmCommand::kRollback);
  if (!status) return status.status();

  PatchReport report;
  report.id = "(rollback)";
  report.smm_status = *status;
  report.success = *status == SmmStatus::kOk;
  fill_downtime(m, dt0, report);
  report.smm.modeled_total_us =
      m.cost_model().to_us(report.downtime_cycles);
  return report;
}

Result<PatchReport> Kshot::revert_patch(const std::string& patch_id) {
  if (!installed_) {
    return Status{Errc::kFailedPrecondition, "install() first"};
  }
  auto& m = kernel_.machine();
  Mailbox mbox(m.mem(), kernel_.layout().mem_rw_base(),
               machine::AccessMode::normal());
  KSHOT_RETURN_IF_ERROR(
      mbox.write_revert_target(crypto::sdbm(to_bytes(patch_id))));
  const DowntimeMark dt0 = mark_downtime(m);
  auto status = trigger_and_status(SmmCommand::kRevertPatch);
  if (!status) return status.status();

  PatchReport report;
  report.id = "(revert " + patch_id + ")";
  report.smm_status = *status;
  report.success = *status == SmmStatus::kOk;
  fill_downtime(m, dt0, report);
  report.smm.modeled_total_us =
      m.cost_model().to_us(report.downtime_cycles);
  return report;
}

Result<AppliedInfo> Kshot::query_applied() {
  if (!installed_) {
    return Status{Errc::kFailedPrecondition, "install() first"};
  }
  auto& m = kernel_.machine();
  const auto& lay = kernel_.layout();
  Mailbox mbox(m.mem(), lay.mem_rw_base(), machine::AccessMode::normal());
  auto status = trigger_and_status(SmmCommand::kQueryApplied);
  if (!status) return status.status();
  if (*status != SmmStatus::kOk) {
    return Status{Errc::kInternal,
                  std::string("kQueryApplied failed: ") +
                      smm_status_name(*status)};
  }
  auto size = mbox.read_query_size();
  if (!size) return size.status();
  if (*size < 8 || MailboxLayout::kQueryBlob + *size > lay.mem_rw_size) {
    return Status{Errc::kOutOfRange, "bad query blob size"};
  }
  auto blob = m.mem().read_bytes(lay.mem_rw_base() + MailboxLayout::kQueryBlob,
                                 *size, machine::AccessMode::normal());
  if (!blob) return blob.status();

  ByteReader r(*blob);
  auto magic = r.get_u32();
  auto nunits = r.get_u32();
  if (!magic || !nunits || *magic != kQueryMagic) {
    return Status{Errc::kIntegrityFailure, "bad query blob magic"};
  }
  auto get_string8 = [&r]() -> Result<std::string> {
    auto n = r.get_u8();
    if (!n) return n.status();
    auto b = r.get_bytes(*n);
    if (!b) return b.status();
    return std::string(b->begin(), b->end());
  };
  AppliedInfo info;
  info.units.reserve(*nunits);
  for (u32 i = 0; i < *nunits; ++i) {
    AppliedInfo::Unit u;
    auto id = get_string8();
    if (!id) return id.status();
    u.id = std::move(*id);
    auto kv = get_string8();
    if (!kv) return kv.status();
    u.kernel_version = std::move(*kv);
    auto seq = r.get_u64();
    auto hash = r.get_u64();
    auto funcs = r.get_u32();
    auto code = r.get_u32();
    auto spl = r.get_u8();
    if (!seq || !hash || !funcs || !code || !spl) {
      return Status{Errc::kOutOfRange, "truncated query blob"};
    }
    u.seq = *seq;
    u.id_hash = *hash;
    u.functions = *funcs;
    u.code_bytes = *code;
    u.spliced = *spl;
    info.units.push_back(std::move(u));
  }
  auto used = r.get_u64();
  auto free = r.get_u64();
  auto next = r.get_u32();
  if (!used || !free || !next) {
    return Status{Errc::kOutOfRange, "truncated query blob"};
  }
  info.memx_used = *used;
  info.memx_free = *free;
  info.extents.reserve(*next);
  for (u32 i = 0; i < *next; ++i) {
    auto base = r.get_u64();
    auto len = r.get_u64();
    if (!base || !len) {
      return Status{Errc::kOutOfRange, "truncated query blob"};
    }
    info.extents.emplace_back(*base, *len);
  }
  return info;
}

bool Kshot::ids_applied(const std::vector<std::string>& ids) {
  auto info = query_applied();
  if (!info) return false;
  for (const std::string& id : ids) {
    bool found = false;
    for (const auto& u : info->units) {
      if (u.id == id) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

Status Kshot::reclaim_mem_x() {
  if (!installed_) return {Errc::kFailedPrecondition, "install() first"};
  auto info = query_applied();
  if (!info) return info.status();
  const auto& lay = kernel_.layout();
  // Free extents = mem_X minus the occupied extents (already sorted by base;
  // clamp defensively since the blob crossed untrusted mem_RW).
  std::vector<KshotEnclave::FreeExtent> free;
  u64 cursor = lay.mem_x_base();
  const u64 end = lay.mem_x_base() + lay.mem_x_size;
  for (const auto& [base, len] : info->extents) {
    u64 b = std::max(base, lay.mem_x_base());
    u64 e = std::min(base + len, end);
    if (b >= e) continue;
    if (b > cursor) free.push_back({cursor, b - cursor});
    cursor = std::max(cursor, e);
  }
  if (cursor < end) free.push_back({cursor, end - cursor});
  return enclave_->set_mem_x_map(free);
}

Status Kshot::arm_kernel_guard() {
  if (!installed_) return {Errc::kFailedPrecondition, "install() first"};
  // The dynamic tracer legitimately rewrites the 5-byte pad of every traced
  // function; everything else in kernel text is guarded.
  std::vector<MutableWindow> windows;
  for (const auto& sym : kernel_.image().symbols) {
    if (sym.traced) windows.push_back({sym.addr, 5});
  }
  return handler_->arm_kernel_guard(kernel_.machine(), std::move(windows));
}

Result<IntrospectionReport> Kshot::introspect() {
  if (!installed_) {
    return Status{Errc::kFailedPrecondition, "install() first"};
  }
  auto status = trigger_and_status(SmmCommand::kIntrospect);
  if (!status) return status.status();
  return handler_->last_introspection();
}

Result<DosCheckReport> Kshot::dos_check() {
  if (!installed_) {
    return Status{Errc::kFailedPrecondition, "install() first"};
  }
  auto& m = kernel_.machine();
  Mailbox mbox(m.mem(), kernel_.layout().mem_rw_base(),
               machine::AccessMode::normal());
  DosCheckReport rep;
  // Poke SMM by hand rather than through trigger_and_status: a suppressed
  // SMI must surface as !smm_alive in the report, not as an error.
  auto hb_before = mbox.read_heartbeat();
  u64 seq = ++cmd_seq_;
  (void)mbox.write_cmd_seq(seq);
  (void)mbox.write_command(SmmCommand::kIntrospect);
  m.trigger_smi();
  auto hb_after = mbox.read_heartbeat();
  auto echo = mbox.read_cmd_seq_echo();
  rep.smm_alive = hb_before.is_ok() && hb_after.is_ok() &&
                  *hb_after > *hb_before && echo.is_ok() && *echo == seq;
  // Suspicion requires contradiction, not mere absence of activity: the
  // helper side claims it staged (staging_attempts_) but the SMM side —
  // unforgeable ground truth, SMRAM-resident — never saw a staging command.
  // A fresh install that has not patched anything is NOT a DoS.
  rep.staging_attempted = staging_attempts_ > 0;
  rep.staging_observed = handler_->stagings_seen() > 0;
  rep.dos_suspected =
      !rep.smm_alive || (rep.staging_attempted && !rep.staging_observed);
  return rep;
}

bool Kshot::is_patched(const std::string& function) const {
  if (!handler_) return false;
  for (const auto& p : handler_->installed()) {
    if (p.name == function && p.taddr != 0) return true;
  }
  return false;
}

size_t Kshot::tcb_bytes() const {
  // SMM handler state (SMRAM-resident) + a fixed estimate of the handler and
  // enclave code footprints. Contrast with baselines whose TCB is the whole
  // kernel text.
  size_t smm_state = sizeof(SmmPatchHandler);
  if (handler_) {
    for (const auto& p : handler_->installed()) {
      smm_state += sizeof(InstalledPatch) + p.code().size();
    }
  }
  constexpr size_t kHandlerCodeEstimate = 24 * 1024;
  constexpr size_t kEnclaveCodeEstimate = 48 * 1024;
  return smm_state + kHandlerCodeEstimate + kEnclaveCodeEstimate;
}

}  // namespace kshot::core
