#include "attacks/network_attacks.hpp"

namespace kshot::attacks {

netsim::Channel::Tamperer make_bitflip_mitm(size_t min_size,
                                            u64* tamper_count) {
  return [min_size, tamper_count](Bytes& msg) {
    if (msg.size() < min_size) return;
    msg[msg.size() / 2] ^= 0x40;
    msg[msg.size() / 3] ^= 0x01;
    if (tamper_count) ++*tamper_count;
  };
}

Status ReplayAttacker::capture(machine::Machine& m) {
  core::Mailbox mbox(m.mem(), layout_.mem_rw_base(),
                     machine::AccessMode::normal());
  auto size = mbox.read_staged_size();
  if (!size || *size == 0) {
    return {Errc::kFailedPrecondition, "nothing staged to capture"};
  }
  auto pub = mbox.read_enclave_pub();
  if (!pub) return pub.status();
  // Harness-mode read standing in for interception inside the helper app.
  auto data = m.mem().read_bytes(layout_.mem_w_base(), *size,
                                 machine::AccessMode::smm());
  if (!data) return data.status();
  captured_ = std::move(*data);
  captured_pub_ = *pub;
  captured_size_ = *size;
  return Status::ok();
}

Result<core::SmmStatus> ReplayAttacker::replay(machine::Machine& m) {
  if (captured_.empty()) {
    return Status{Errc::kFailedPrecondition, "no capture"};
  }
  core::Mailbox mbox(m.mem(), layout_.mem_rw_base(),
                     machine::AccessMode::normal());
  // Kernel-privileged writes: mem_W is write-only but writable.
  KSHOT_RETURN_IF_ERROR(m.mem().write(layout_.mem_w_base(), captured_,
                                      machine::AccessMode::normal()));
  KSHOT_RETURN_IF_ERROR(mbox.write_enclave_pub(captured_pub_));
  KSHOT_RETURN_IF_ERROR(mbox.write_staged_size(captured_size_));
  KSHOT_RETURN_IF_ERROR(mbox.write_command(core::SmmCommand::kApplyPatch));
  m.trigger_smi();
  auto st = mbox.read_status();
  if (!st) return st.status();
  return *st;
}

}  // namespace kshot::attacks
