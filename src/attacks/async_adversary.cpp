#include "attacks/async_adversary.hpp"

#include <cstdio>

#include "common/byte_io.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "core/mailbox.hpp"

namespace kshot::attacks {

const char* adversary_variant_name(AdversaryVariant v) {
  switch (v) {
    case AdversaryVariant::kMailboxCmdFlip: return "cmd-flip";
    case AdversaryVariant::kMailboxSeqFlip: return "seq-flip";
    case AdversaryVariant::kStagedSizeFlip: return "size-flip";
    case AdversaryVariant::kMemWRewrite: return "memw-rewrite";
    case AdversaryVariant::kReplayEnvelope: return "replay";
    case AdversaryVariant::kSmiSuppress: return "smi-suppress";
    case AdversaryVariant::kSmiDuplicate: return "smi-duplicate";
    case AdversaryVariant::kMidSmiMemWFlip: return "midsmi-flip";
    case AdversaryVariant::kVariantCount: break;
  }
  return "unknown";
}

const char* adversary_trigger_name(AdversaryTrigger t) {
  switch (t) {
    case AdversaryTrigger::kOnFetching: return "fetching";
    case AdversaryTrigger::kOnStaged: return "staged";
    case AdversaryTrigger::kPreSmi: return "pre-smi";
    case AdversaryTrigger::kOnOutcome: return "outcome";
    case AdversaryTrigger::kTriggerCount: break;
  }
  return "unknown";
}

std::string AdversaryAction::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s@%s#%u arg=%u value=0x%08x",
                adversary_variant_name(variant),
                adversary_trigger_name(trigger), occurrence(), arg(), value);
  return buf;
}

AdversarySchedule AdversarySchedule::generate(u64 seed) {
  Rng rng(seed);
  AdversarySchedule s;
  const size_t n = 1 + rng.next_below(3);
  while (s.actions.size() < n && s.actions.size() < kMaxActions) {
    const auto v = static_cast<AdversaryVariant>(
        rng.next_below(static_cast<u64>(AdversaryVariant::kVariantCount)));
    AdversaryAction a{};
    a.variant = v;
    const u16 occ = static_cast<u16>(rng.next_below(3) << 8);
    switch (v) {
      case AdversaryVariant::kMailboxCmdFlip:
        a.trigger = AdversaryTrigger::kPreSmi;
        a.param = occ;
        // Mix of in-range commands (idle, begin-session, rollback, ...) and
        // out-of-range command words.
        a.value = static_cast<u32>(rng.next_below(12));
        break;
      case AdversaryVariant::kMailboxSeqFlip:
        a.trigger = AdversaryTrigger::kPreSmi;
        a.param = occ;
        a.value = static_cast<u32>(rng.next());
        break;
      case AdversaryVariant::kStagedSizeFlip: {
        a.trigger = (rng.next() & 1) ? AdversaryTrigger::kOnStaged
                                     : AdversaryTrigger::kPreSmi;
        a.param = occ;
        static constexpr u32 kSizes[] = {0, 1, 64, 0x00FF'FFFF, 0x7FFF'FFFF};
        a.value = kSizes[rng.next_below(5)];
        break;
      }
      case AdversaryVariant::kMemWRewrite:
        a.trigger = (rng.next() & 1) ? AdversaryTrigger::kOnStaged
                                     : AdversaryTrigger::kPreSmi;
        a.param = static_cast<u16>(occ | rng.next_below(256));
        a.value = static_cast<u32>(rng.next());
        break;
      case AdversaryVariant::kReplayEnvelope: {
        // Capture/replay pair: grab the first staged wire (optionally
        // spoiling the live copy so the pipeline rejects it and restages),
        // then write the stale capture over the next staging.
        AdversaryAction cap{};
        cap.variant = v;
        cap.trigger = AdversaryTrigger::kOnStaged;
        cap.param = static_cast<u16>(rng.next() & 1);  // occurrence 0; spoil?
        s.actions.push_back(cap);
        a.trigger = AdversaryTrigger::kOnStaged;
        a.param = 1u << 8;  // occurrence 1: whatever got staged next
        break;
      }
      case AdversaryVariant::kSmiSuppress:
        a.trigger = (rng.next() & 1) ? AdversaryTrigger::kOnStaged
                                     : AdversaryTrigger::kOnFetching;
        a.param = static_cast<u16>(occ | rng.next_below(4));
        break;
      case AdversaryVariant::kSmiDuplicate:
        a.trigger = (rng.next() & 1) ? AdversaryTrigger::kOnStaged
                                     : AdversaryTrigger::kOnOutcome;
        a.param = occ;
        break;
      case AdversaryVariant::kMidSmiMemWFlip:
        a.trigger = AdversaryTrigger::kOnStaged;  // ignored: fetch-keyed
        a.param = static_cast<u16>(occ | rng.next_below(256));
        a.value = static_cast<u32>(rng.next());
        break;
      case AdversaryVariant::kVariantCount:
        continue;
    }
    s.actions.push_back(a);
  }
  return s;
}

Bytes AdversarySchedule::encode() const {
  ByteWriter w;
  w.put_u8(static_cast<u8>(actions.size()));
  for (const auto& a : actions) {
    w.put_u8(static_cast<u8>(a.variant));
    w.put_u8(static_cast<u8>(a.trigger));
    w.put_u16(a.param);
    w.put_u32(a.value);
  }
  return w.take();
}

Result<AdversarySchedule> AdversarySchedule::decode(ByteSpan wire) {
  ByteReader r(wire);
  auto count = r.get_u8();
  if (!count) return count.status();
  if (*count > kMaxActions) {
    return Status{Errc::kInvalidArgument,
                  "schedule action count out of range"};
  }
  AdversarySchedule s;
  for (u8 i = 0; i < *count; ++i) {
    auto v = r.get_u8();
    auto t = r.get_u8();
    auto param = r.get_u16();
    auto value = r.get_u32();
    if (!v || !t || !param || !value) {
      return Status{Errc::kInvalidArgument, "truncated schedule action"};
    }
    if (*v >= static_cast<u8>(AdversaryVariant::kVariantCount)) {
      return Status{Errc::kInvalidArgument, "schedule variant out of range"};
    }
    if (*t >= static_cast<u8>(AdversaryTrigger::kTriggerCount)) {
      return Status{Errc::kInvalidArgument, "schedule trigger out of range"};
    }
    AdversaryAction a{};
    a.variant = static_cast<AdversaryVariant>(*v);
    a.trigger = static_cast<AdversaryTrigger>(*t);
    a.param = *param;
    a.value = *value;
    s.actions.push_back(a);
  }
  if (!r.exhausted()) {
    return Status{Errc::kInvalidArgument, "trailing bytes after schedule"};
  }
  return s;
}

std::string AdversarySchedule::to_string() const {
  std::string out = "schedule[" + std::to_string(actions.size()) + "]";
  for (const auto& a : actions) out += " {" + a.to_string() + "}";
  return out;
}

AsyncAdversary::AsyncAdversary(machine::Machine& m, core::Kshot& kshot,
                               kernel::MemoryLayout layout,
                               AdversarySchedule schedule)
    : machine_(m),
      kshot_(kshot),
      layout_(layout),
      schedule_(std::move(schedule)),
      done_(schedule_.actions.size(), false) {}

AsyncAdversary::~AsyncAdversary() {
  if (attached_) detach();
}

void AsyncAdversary::attach() {
  if (attached_) return;
  attached_ = true;
  // Requires kshot.install() to have run (the handler owns the mid-SMI
  // hook). All three hooks model kernel-privileged interposition points an
  // async attacker genuinely has: phase timing, the write→SMI gap, and a
  // second core racing the handler's fetch.
  kshot_.set_async_interposer(
      [this](core::PatchPhase p) { on_phase(p); });
  machine_.set_pre_smi_hook([this](machine::Machine&) { on_pre_smi(); });
  kshot_.handler().set_concurrent_writer(
      [this](machine::Machine&) { on_mid_smi_fetch(); });
}

void AsyncAdversary::detach() {
  if (!attached_) return;
  kshot_.clear_async_interposer();
  machine_.set_pre_smi_hook(nullptr);
  kshot_.handler().set_concurrent_writer(nullptr);
  attached_ = false;
}

void AsyncAdversary::on_phase(core::PatchPhase p) {
  AdversaryTrigger t;
  switch (p) {
    case core::PatchPhase::kFetching:
      t = AdversaryTrigger::kOnFetching;
      break;
    case core::PatchPhase::kStaged:
      t = AdversaryTrigger::kOnStaged;
      break;
    case core::PatchPhase::kApplied:
    case core::PatchPhase::kFailed:
      t = AdversaryTrigger::kOnOutcome;
      break;
    default:
      return;
  }
  u64& c = trigger_counts_[static_cast<size_t>(t)];
  fire_due(t, c++);
}

void AsyncAdversary::on_pre_smi() {
  in_pre_smi_ = true;
  u64& c = trigger_counts_[static_cast<size_t>(AdversaryTrigger::kPreSmi)];
  fire_due(AdversaryTrigger::kPreSmi, c++);
  in_pre_smi_ = false;
}

void AsyncAdversary::on_mid_smi_fetch() {
  const u64 occ = mid_smi_fetches_++;
  for (size_t i = 0; i < schedule_.actions.size(); ++i) {
    const auto& a = schedule_.actions[i];
    if (done_[i] || a.variant != AdversaryVariant::kMidSmiMemWFlip) continue;
    if (a.occurrence() != occ) continue;
    execute(i);
  }
}

void AsyncAdversary::fire_due(AdversaryTrigger t, u64 occurrence) {
  for (size_t i = 0; i < schedule_.actions.size(); ++i) {
    const auto& a = schedule_.actions[i];
    if (done_[i] || a.variant == AdversaryVariant::kMidSmiMemWFlip) continue;
    if (a.trigger != t || a.occurrence() != occurrence) continue;
    execute(i);
  }
}

void AsyncAdversary::execute(size_t action_index) {
  const AdversaryAction& a = schedule_.actions[action_index];
  done_[action_index] = true;
  switch (a.variant) {
    case AdversaryVariant::kMailboxCmdFlip: do_mailbox_cmd_flip(a); break;
    case AdversaryVariant::kMailboxSeqFlip: do_mailbox_seq_flip(a); break;
    case AdversaryVariant::kStagedSizeFlip: do_staged_size_flip(a); break;
    case AdversaryVariant::kMemWRewrite: do_mem_w_rewrite(a); break;
    case AdversaryVariant::kMidSmiMemWFlip: do_mem_w_rewrite(a); break;
    case AdversaryVariant::kReplayEnvelope: do_replay_envelope(a); break;
    case AdversaryVariant::kSmiSuppress: do_smi_suppress(a); break;
    case AdversaryVariant::kSmiDuplicate: do_smi_duplicate(a); break;
    case AdversaryVariant::kVariantCount: return;
  }
  ++actions_fired_;
  fired_.push_back(a.to_string());
  KSHOT_LOG(kDebug, "attack") << "async adversary fired " << a.to_string();
}

void AsyncAdversary::do_mailbox_cmd_flip(const AdversaryAction& a) {
  core::Mailbox mbox(machine_.mem(), layout_.mem_rw_base(),
                     machine::AccessMode::normal());
  (void)mbox.write_command(static_cast<core::SmmCommand>(a.value));
}

void AsyncAdversary::do_mailbox_seq_flip(const AdversaryAction& a) {
  core::Mailbox mbox(machine_.mem(), layout_.mem_rw_base(),
                     machine::AccessMode::normal());
  (void)mbox.write_cmd_seq(a.value);
}

void AsyncAdversary::do_staged_size_flip(const AdversaryAction& a) {
  core::Mailbox mbox(machine_.mem(), layout_.mem_rw_base(),
                     machine::AccessMode::normal());
  (void)mbox.write_staged_size(a.value);
}

void AsyncAdversary::do_mem_w_rewrite(const AdversaryAction& a) {
  // mem_W is write-only from normal mode, so the rewrite is blind: the
  // attacker cannot read-modify-write, only clobber bytes at a chosen
  // offset and hope the damage lands somewhere exploitable.
  u8 buf[4];
  store_u32(buf, a.value);
  (void)machine_.mem().write(layout_.mem_w_base() + a.arg(),
                             ByteSpan(buf, sizeof(buf)),
                             machine::AccessMode::normal());
}

void AsyncAdversary::do_replay_envelope(const AdversaryAction& a) {
  core::Mailbox mbox(machine_.mem(), layout_.mem_rw_base(),
                     machine::AccessMode::normal());
  if (captured_wire_.empty()) {
    auto size = mbox.read_staged_size();
    if (!size || *size == 0 || *size > layout_.mem_w_size) return;
    auto wire = read_mem_w(0, *size);
    if (!wire) return;
    captured_wire_ = std::move(*wire);
    captured_size_ = *size;
    if (a.arg() & 1) {
      // Spoil the live staging so this attempt fails and the pipeline
      // restages, giving the stale capture a later session to replay into.
      u8 spoiled = static_cast<u8>(captured_wire_[0] ^ 0xA5);
      (void)machine_.mem().write(layout_.mem_w_base(),
                                 ByteSpan(&spoiled, 1),
                                 machine::AccessMode::normal());
    }
    return;
  }
  (void)machine_.mem().write(layout_.mem_w_base(), captured_wire_,
                             machine::AccessMode::normal());
  (void)mbox.write_staged_size(captured_size_);
}

void AsyncAdversary::do_smi_suppress(const AdversaryAction& a) {
  machine_.add_smi_suppress_budget(1 + (a.arg() & 3));
}

void AsyncAdversary::do_smi_duplicate(const AdversaryAction& a) {
  (void)a;
  // An unsolicited SMI re-runs whatever command word is resident in the
  // mailbox. From inside the pre-SMI window the machine would deliver it
  // immediately before the real one anyway, so skip there.
  if (in_pre_smi_) return;
  machine_.trigger_smi();
}

Result<Bytes> AsyncAdversary::read_mem_w(u64 offset, size_t n) {
  // Page-table attack (same idiom as MemXCorruptorRootkit): temporarily
  // open the write-only staging region for reads, copy the wire out, then
  // restore the attributes so nothing else notices.
  const auto normal = machine::AccessMode::normal();
  machine_.mem().set_attrs(layout_.mem_w_base(), layout_.mem_w_size,
                           machine::PageAttr{true, true, false, 0});
  auto bytes =
      machine_.mem().read_bytes(layout_.mem_w_base() + offset, n, normal);
  machine_.mem().set_attrs(layout_.mem_w_base(), layout_.mem_w_size,
                           machine::PageAttr{false, true, false, 0});
  return bytes;
}

}  // namespace kshot::attacks
