#include "attacks/rootkits.hpp"

#include "common/log.hpp"

namespace kshot::attacks {

ReversionRootkit::ReversionRootkit(const kcc::KernelImage& pristine)
    : pristine_(pristine) {}

void ReversionRootkit::on_tick(machine::Machine& m, kernel::Kernel& k) {
  (void)k;
  const auto mode = machine::AccessMode::normal();
  for (const auto& sym : pristine_.symbols) {
    u64 entry = sym.addr + (sym.traced ? 5 : 0);
    u8 b = 0;
    if (!m.mem().read(entry, MutByteSpan(&b, 1), mode).is_ok()) continue;
    if (b != 0xE9) continue;
    // A trampoline is present where the pristine kernel had none: check the
    // jmp target — if it leaves kernel text, revert to the recorded bytes.
    auto rel_bytes = m.mem().read_bytes(entry + 1, 4, mode);
    if (!rel_bytes) continue;
    i32 rel = static_cast<i32>(static_cast<u32>(
        (*rel_bytes)[0] | ((*rel_bytes)[1] << 8) | ((*rel_bytes)[2] << 16) |
        (static_cast<u32>((*rel_bytes)[3]) << 24)));
    u64 target = entry + 5 + static_cast<i64>(rel);
    bool in_text = target >= pristine_.text_base &&
                   target < pristine_.text_base + pristine_.text.size();
    if (in_text) continue;

    size_t off = entry - pristine_.text_base;
    if (off + 5 > pristine_.text.size()) continue;
    Bytes original(pristine_.text.begin() + static_cast<std::ptrdiff_t>(off),
                   pristine_.text.begin() +
                       static_cast<std::ptrdiff_t>(off + 5));
    if (m.mem().write(entry, original, mode).is_ok()) {
      ++reversions_;
      KSHOT_LOG(kDebug, "attack")
          << "reverted trampoline at " << sym.name;
    }
  }
}

void MemXCorruptorRootkit::on_tick(machine::Machine& m, kernel::Kernel& k) {
  (void)k;
  // Step 1 (page-table edit): make mem_X writable from normal mode.
  machine::PageAttr open_attr{true, true, true, 0};
  m.mem().set_attrs(layout_.mem_x_base(), layout_.mem_x_size, open_attr);
  // Step 2: stomp the first page of patched text.
  Bytes garbage(256, 0xCC);
  if (m.mem()
          .write(layout_.mem_x_base(), garbage, machine::AccessMode::normal())
          .is_ok()) {
    ++corruptions_;
  }
}

std::function<void(Bytes&)> make_patch_corruptor(u64* corruption_count) {
  return [corruption_count](Bytes& code) {
    if (code.empty()) return;
    // Replace the patch body's first real bytes with a BUG trap: the
    // "patched" function now oopses on entry.
    for (size_t i = 0; i + 1 < code.size() && i < 16; i += 2) {
      code[i] = 0x72;      // trap
      code[i + 1] = 0x66;  // attacker-chosen code 0x66
    }
    if (corruption_count) ++*corruption_count;
  };
}

std::function<void(kcc::KernelImage&)> make_kexec_hijacker(
    kcc::KernelImage malicious, u64* hijack_count) {
  return [malicious = std::move(malicious),
          hijack_count](kcc::KernelImage& image) {
    image = malicious;
    if (hijack_count) ++*hijack_count;
  };
}

}  // namespace kshot::attacks
