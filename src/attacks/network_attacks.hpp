// Network-path attacks: man-in-the-middle tampering on the patch-server
// channel and replay of stale encrypted packages into mem_W.
#pragma once

#include "core/kshot.hpp"
#include "netsim/channel.hpp"

namespace kshot::attacks {

/// Channel tamperer that flips bits in every message over `min_size` bytes
/// (so small control messages pass but patch payloads are corrupted).
netsim::Channel::Tamperer make_bitflip_mitm(size_t min_size,
                                            u64* tamper_count);

/// Replay attack against the SGX->SMM handoff (paper §V-C: per-patch DH keys
/// defeat "replay attacks between data transmissions"). The attacker records
/// the encrypted package while it transits the compromised helper
/// application, then re-stages it later and raises an SMI.
class ReplayAttacker {
 public:
  explicit ReplayAttacker(kernel::MemoryLayout layout) : layout_(layout) {}

  /// Records the currently staged ciphertext + mailbox metadata. (The read
  /// uses harness access as a stand-in for hooking the helper app's write
  /// path — mem_W itself is write-only for kernel code.)
  Status capture(machine::Machine& m);

  /// Re-stages the recorded ciphertext and triggers an apply SMI. Returns
  /// the SMM status — success of the *attack*, so the expected value in a
  /// defended system is kMacFailure or kNoSession.
  Result<core::SmmStatus> replay(machine::Machine& m);

  [[nodiscard]] bool has_capture() const { return !captured_.empty(); }

 private:
  kernel::MemoryLayout layout_;
  Bytes captured_;
  crypto::X25519Key captured_pub_{};
  u64 captured_size_ = 0;
};

}  // namespace kshot::attacks
