// Kernel-privileged attacks against live patching (threat model §III).
// Every rootkit here runs as an ordinary kernel module — exactly the
// privilege a real attacker gets from a kernel exploit like CVE-2016-5195.
#pragma once

#include "core/kshot.hpp"
#include "kernel/kernel.hpp"

namespace kshot::attacks {

/// "Malicious Patch Reversion" (paper §V-D): the rootkit was resident before
/// the patch, kept a pristine copy of the kernel text, and on every tick
/// scans function entries for foreign jmp trampolines, restoring the
/// original (vulnerable) bytes.
class ReversionRootkit final : public kernel::KernelModule {
 public:
  explicit ReversionRootkit(const kcc::KernelImage& pristine);

  [[nodiscard]] std::string name() const override {
    return "reversion_rootkit";
  }
  void on_tick(machine::Machine& m, kernel::Kernel& k) override;

  [[nodiscard]] u64 reversions() const { return reversions_; }

 private:
  kcc::KernelImage pristine_;
  u64 reversions_ = 0;
};

/// Page-table attack: re-opens the execute-only mem_X region for writing and
/// scribbles over patched bodies. Normal-mode writes to mem_X are denied
/// until the attribute flip, which models a rootkit editing kernel page
/// tables (only SMM introspection can catch this).
class MemXCorruptorRootkit final : public kernel::KernelModule {
 public:
  explicit MemXCorruptorRootkit(kernel::MemoryLayout layout)
      : layout_(layout) {}

  [[nodiscard]] std::string name() const override { return "memx_corruptor"; }
  void on_tick(machine::Machine& m, kernel::Kernel& k) override;

  [[nodiscard]] u64 corruptions() const { return corruptions_; }

 private:
  kernel::MemoryLayout layout_;
  u64 corruptions_ = 0;
};

/// Returns a kpatch write hook that flips bytes in every staged patch —
/// the hijacked in-kernel patching path of §VI-D. The counter records how
/// many writes were corrupted.
std::function<void(Bytes&)> make_patch_corruptor(u64* corruption_count);

/// Returns a KUP kexec hook that swaps the booted image for a backdoored
/// one: the CVE-2015-7837 unsigned-kexec attack.
std::function<void(kcc::KernelImage&)> make_kexec_hijacker(
    kcc::KernelImage malicious, u64* hijack_count);

}  // namespace kshot::attacks
