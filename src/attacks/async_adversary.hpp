// Asynchronous OS-level adversary for the stage→apply handoff (threat
// model §III, sharpened): a kernel-privileged attacker that races the
// helper app *between* its mailbox/mem_W writes and the SMI, rather than
// persistently garbling traffic like the rootkits in rootkits.hpp. Every
// interposition is driven by a small deterministic schedule, so a campaign
// over seeds explores the TOCTOU surface reproducibly and a failing
// schedule shrinks to a replayable wire (src/fuzz attacker_schedule
// surface).
#pragma once

#include <string>
#include <vector>

#include "core/kshot.hpp"
#include "kernel/layout.hpp"
#include "machine/machine.hpp"

namespace kshot::attacks {

/// What one scheduled action does when its trigger fires.
enum class AdversaryVariant : u8 {
  kMailboxCmdFlip = 0,  // overwrite the mailbox command word with `value`
  kMailboxSeqFlip,      // overwrite kCmdSeq with `value` (breaks the echo)
  kStagedSizeFlip,      // overwrite kStagedSize with `value`
  kMemWRewrite,         // blind 4-byte write of `value` into staged mem_W
  kReplayEnvelope,      // first fire: capture the staged wire (page-table
                        // read of write-only mem_W); later fire: write the
                        // stale capture back over whatever is staged
  kSmiSuppress,         // swallow the next 1 + (param & 3) SMIs
  kSmiDuplicate,        // raise one extra, unsolicited SMI
  kMidSmiMemWFlip,      // rewrite mem_W *inside* the SMI, between the
                        // handler's single fetch and its use (another-core /
                        // DMA race; only the pre-hardening double fetch
                        // could ever observe it)
  kVariantCount,
};

/// When an action fires. Phase triggers piggyback on the pipeline's phase
/// notifications; kPreSmi rides the machine's pre-SMI hook — the instant
/// after the helper wrote command + seq but before SMI delivery, which is
/// the only window where command/seq flips survive (phase hooks run before
/// trigger_and_status rewrites those fields).
enum class AdversaryTrigger : u8 {
  kOnFetching = 0,  // PatchPhase::kFetching
  kOnStaged,        // PatchPhase::kStaged (package fully staged in mem_W)
  kPreSmi,          // trigger_smi() entry, pre-suppression, pre-handler
  kOnOutcome,       // PatchPhase::kApplied or kFailed
  kTriggerCount,
};

const char* adversary_variant_name(AdversaryVariant v);
const char* adversary_trigger_name(AdversaryTrigger t);

/// One scheduled interposition. `param >> 8` selects which occurrence of
/// the trigger fires it (0 = first); `param & 0xFF` is variant-specific
/// (mem_W offset for rewrites, suppression extra budget, replay spoil
/// flag). `value` is the 32-bit payload written by the flip variants.
/// kMidSmiMemWFlip ignores `trigger`: it is keyed by the handler's
/// staged-fetch occurrence count instead of a pipeline phase.
struct AdversaryAction {
  AdversaryVariant variant = AdversaryVariant::kMailboxCmdFlip;
  AdversaryTrigger trigger = AdversaryTrigger::kPreSmi;
  u16 param = 0;
  u32 value = 0;

  [[nodiscard]] u16 occurrence() const { return param >> 8; }
  [[nodiscard]] u8 arg() const { return static_cast<u8>(param & 0xFF); }
  [[nodiscard]] std::string to_string() const;
};

/// A deterministic attack schedule plus its wire form (the fuzz input of
/// the attacker_schedule surface):
///   u8  count                 (<= kMaxActions)
///   per action, 8 bytes: u8 variant, u8 trigger, u16 param LE, u32 value LE
/// Decode demands exact size and in-range variant/trigger bytes, so a
/// shrunk corpus entry replays byte-for-byte.
struct AdversarySchedule {
  static constexpr size_t kMaxActions = 16;

  std::vector<AdversaryAction> actions;

  /// Deterministic schedule from a seed: 1–3 actions with
  /// variant-appropriate triggers/payloads; kReplayEnvelope is emitted as a
  /// capture(+spoil)/replay pair so the stale wire actually exists.
  static AdversarySchedule generate(u64 seed);

  [[nodiscard]] Bytes encode() const;
  static Result<AdversarySchedule> decode(ByteSpan wire);
  [[nodiscard]] std::string to_string() const;
};

/// Drives one schedule against a live Kshot pipeline. attach() claims the
/// pipeline's async-interposer slot, the machine's pre-SMI hook, and the
/// handler's concurrent-writer hook; detach() releases all three. Each
/// action fires at most once per attach; fired() records what actually ran
/// (campaign diagnostics — the ground truth an oracle compares against
/// DetectionReport).
class AsyncAdversary {
 public:
  AsyncAdversary(machine::Machine& m, core::Kshot& kshot,
                 kernel::MemoryLayout layout, AdversarySchedule schedule);
  ~AsyncAdversary();

  AsyncAdversary(const AsyncAdversary&) = delete;
  AsyncAdversary& operator=(const AsyncAdversary&) = delete;

  void attach();
  void detach();

  [[nodiscard]] u64 actions_fired() const { return actions_fired_; }
  [[nodiscard]] const std::vector<std::string>& fired() const {
    return fired_;
  }
  [[nodiscard]] const AdversarySchedule& schedule() const { return schedule_; }

 private:
  void on_phase(core::PatchPhase p);
  void on_pre_smi();
  void on_mid_smi_fetch();
  void fire_due(AdversaryTrigger t, u64 occurrence);
  void execute(size_t action_index);

  // Variant bodies.
  void do_mailbox_cmd_flip(const AdversaryAction& a);
  void do_mailbox_seq_flip(const AdversaryAction& a);
  void do_staged_size_flip(const AdversaryAction& a);
  void do_mem_w_rewrite(const AdversaryAction& a);
  void do_replay_envelope(const AdversaryAction& a);
  void do_smi_suppress(const AdversaryAction& a);
  void do_smi_duplicate(const AdversaryAction& a);

  /// Page-table read of write-only mem_W (rootkit idiom: open the attrs,
  /// read in normal mode, restore write-only).
  [[nodiscard]] Result<Bytes> read_mem_w(u64 offset, size_t n);

  machine::Machine& machine_;
  core::Kshot& kshot_;
  kernel::MemoryLayout layout_;
  AdversarySchedule schedule_;

  bool attached_ = false;
  bool in_pre_smi_ = false;
  std::vector<bool> done_;
  u64 trigger_counts_[static_cast<size_t>(AdversaryTrigger::kTriggerCount)] =
      {};
  u64 mid_smi_fetches_ = 0;

  // Replay state shared by a capture/replay action pair.
  Bytes captured_wire_;
  u64 captured_size_ = 0;

  u64 actions_fired_ = 0;
  std::vector<std::string> fired_;
};

}  // namespace kshot::attacks
