// Simulated Intel SGX: an Enclave Page Cache carved out of machine memory,
// enclaves entered only through a registered ECALL gate, SHA-256 code
// measurement (MRENCLAVE), and local-attestation reports MACed with a
// hardware key that simulated software can never read.
//
// The isolation contract this reproduces (paper §II-C): non-enclave code —
// including the kernel and any rootkit — cannot read or write EPC pages;
// the OS can only *invoke* the enclave through its ECALL interface and relay
// opaque (encrypted) buffers for it.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <string>

#include "common/status.hpp"
#include "crypto/hmac.hpp"
#include "machine/machine.hpp"

namespace kshot::sgx {

/// Local attestation report (EREPORT analogue).
struct Report {
  u16 enclave_id = 0;
  crypto::Digest256 mrenclave{};
  std::array<u8, 64> report_data{};
  crypto::Digest256 mac{};
};

class SgxRuntime;

/// Base class for enclave logic. The enclave's *data* lives in its EPC slice
/// inside simulated physical memory; its *code* is native C++ (as compiled
/// enclave code would be), identified by a measured identity blob.
class Enclave {
 public:
  Enclave(std::string name, ByteSpan code_identity);
  virtual ~Enclave() = default;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] u16 id() const { return id_; }
  [[nodiscard]] const crypto::Digest256& mrenclave() const {
    return mrenclave_;
  }

  /// Untrusted entry point: dispatches to handle_ecall. Returns
  /// kFailedPrecondition if the enclave was never loaded into a runtime.
  Result<Bytes> ecall(int fn, ByteSpan input);

 protected:
  /// Enclave-defined ECALL dispatch.
  virtual Result<Bytes> handle_ecall(int fn, ByteSpan input) = 0;

  // EPC-backed private storage, offset-addressed within this enclave's
  // slice. Accesses go through the machine's access checks in enclave mode.
  Status epc_write(u64 offset, ByteSpan data);
  Result<Bytes> epc_read(u64 offset, size_t n) const;
  [[nodiscard]] size_t epc_size() const { return epc_len_; }

  /// Issues an attestation report bound to `user_data`.
  [[nodiscard]] Report create_report(ByteSpan user_data) const;

  /// Access to ordinary (non-EPC) machine memory in enclave mode — used to
  /// write staged patches into the shared reserved region.
  machine::Machine* target_machine();

 private:
  friend class SgxRuntime;

  std::string name_;
  crypto::Digest256 mrenclave_;
  SgxRuntime* runtime_ = nullptr;
  u16 id_ = 0;
  PhysAddr epc_base_ = 0;
  size_t epc_len_ = 0;
};

/// Manages the EPC region and the hardware report key.
class SgxRuntime {
 public:
  SgxRuntime(machine::Machine& m, PhysAddr epc_base, size_t epc_size,
             u64 hw_key_seed);

  /// Loads an enclave: allocates `epc_bytes` of EPC for it, marks the pages,
  /// and measures it. Fails if EPC is exhausted.
  Status load_enclave(Enclave& e, size_t epc_bytes);

  /// Tears down an enclave, scrubbing and releasing its EPC pages.
  Status destroy_enclave(Enclave& e);

  /// Verifies a report against the hardware key (usable by parties that
  /// were provisioned with it, e.g. the remote patch server).
  [[nodiscard]] bool verify_report(const Report& r) const;

  machine::Machine& machine() { return machine_; }

 private:
  friend class Enclave;

  [[nodiscard]] crypto::Digest256 report_mac(const Report& r) const;

  machine::Machine& machine_;
  PhysAddr epc_base_;
  size_t epc_size_;
  PhysAddr epc_cursor_;
  std::array<u8, 32> hw_report_key_{};
  u16 next_id_ = 1;
};

}  // namespace kshot::sgx
