#include "sgx/sgx.hpp"

#include <cstring>

#include "common/byte_io.hpp"
#include "common/rng.hpp"

namespace kshot::sgx {

Enclave::Enclave(std::string name, ByteSpan code_identity)
    : name_(std::move(name)), mrenclave_(crypto::sha256(code_identity)) {}

Result<Bytes> Enclave::ecall(int fn, ByteSpan input) {
  if (runtime_ == nullptr) {
    return {Errc::kFailedPrecondition, "enclave not loaded"};
  }
  return handle_ecall(fn, input);
}

Status Enclave::epc_write(u64 offset, ByteSpan data) {
  if (runtime_ == nullptr) {
    return {Errc::kFailedPrecondition, "enclave not loaded"};
  }
  if (offset + data.size() > epc_len_) {
    return {Errc::kOutOfRange, "EPC slice overflow"};
  }
  return runtime_->machine_.mem().write(epc_base_ + offset, data,
                                        machine::AccessMode::enclave(id_));
}

Result<Bytes> Enclave::epc_read(u64 offset, size_t n) const {
  if (runtime_ == nullptr) {
    return {Errc::kFailedPrecondition, "enclave not loaded"};
  }
  if (offset + n > epc_len_) {
    return {Errc::kOutOfRange, "EPC slice overflow"};
  }
  return runtime_->machine_.mem().read_bytes(
      epc_base_ + offset, n, machine::AccessMode::enclave(id_));
}

Report Enclave::create_report(ByteSpan user_data) const {
  Report r;
  r.enclave_id = id_;
  r.mrenclave = mrenclave_;
  size_t n = std::min(user_data.size(), r.report_data.size());
  std::memcpy(r.report_data.data(), user_data.data(), n);
  r.mac = runtime_->report_mac(r);
  return r;
}

machine::Machine* Enclave::target_machine() {
  return runtime_ ? &runtime_->machine_ : nullptr;
}

SgxRuntime::SgxRuntime(machine::Machine& m, PhysAddr epc_base, size_t epc_size,
                       u64 hw_key_seed)
    : machine_(m),
      epc_base_(epc_base),
      epc_size_(epc_size),
      epc_cursor_(epc_base) {
  // The hardware report key is derived from fuses; simulated software can
  // never observe it (it lives only in this harness object).
  Rng rng(hw_key_seed);
  rng.fill(MutByteSpan(hw_report_key_.data(), hw_report_key_.size()));
}

Status SgxRuntime::load_enclave(Enclave& e, size_t epc_bytes) {
  if (e.runtime_ != nullptr) {
    return {Errc::kFailedPrecondition, "enclave already loaded"};
  }
  size_t rounded =
      (epc_bytes + machine::kPageSize - 1) / machine::kPageSize *
      machine::kPageSize;
  if (epc_cursor_ + rounded > epc_base_ + epc_size_) {
    return {Errc::kResourceExhausted, "EPC exhausted"};
  }
  e.runtime_ = this;
  e.id_ = next_id_++;
  e.epc_base_ = epc_cursor_;
  e.epc_len_ = rounded;
  epc_cursor_ += rounded;

  machine::PageAttr attr;
  attr.read = attr.write = attr.exec = false;  // opaque to normal mode
  attr.epc_owner = e.id_;
  machine_.mem().set_attrs(e.epc_base_, e.epc_len_, attr);
  return Status::ok();
}

Status SgxRuntime::destroy_enclave(Enclave& e) {
  if (e.runtime_ != this) {
    return {Errc::kFailedPrecondition, "enclave not loaded here"};
  }
  // Scrub before releasing the pages back to the OS.
  Bytes zeros(e.epc_len_, 0);
  KSHOT_RETURN_IF_ERROR(machine_.mem().write(
      e.epc_base_, zeros, machine::AccessMode::enclave(e.id_)));
  machine_.mem().set_attrs(e.epc_base_, e.epc_len_, machine::PageAttr{});
  e.runtime_ = nullptr;
  e.id_ = 0;
  e.epc_base_ = 0;
  e.epc_len_ = 0;
  return Status::ok();
}

crypto::Digest256 SgxRuntime::report_mac(const Report& r) const {
  ByteWriter w;
  w.put_u16(r.enclave_id);
  w.put_bytes(ByteSpan(r.mrenclave.data(), r.mrenclave.size()));
  w.put_bytes(ByteSpan(r.report_data.data(), r.report_data.size()));
  return crypto::hmac_sha256(
      ByteSpan(hw_report_key_.data(), hw_report_key_.size()), w.bytes());
}

bool SgxRuntime::verify_report(const Report& r) const {
  return crypto::digest_equal(report_mac(r), r.mac);
}

}  // namespace kshot::sgx
