// Lightweight Status / Result<T> error handling, in the style of
// absl::Status. Used for expected, recoverable failures (bad packages,
// permission faults, patch rejections); programmer errors use assertions.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace kshot {

enum class Errc {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kPermissionDenied,   // page-attribute / SMRAM / EPC violations
  kIntegrityFailure,   // hash or MAC mismatch
  kOutOfRange,
  kFailedPrecondition,
  kUnsupported,
  kResourceExhausted,
  kAborted,            // operation rejected mid-flight (e.g. DoS detected)
  kInternal,
};

/// Human-readable name of an error code.
const char* errc_name(Errc c);

class Status {
 public:
  Status() : code_(Errc::kOk) {}
  Status(Errc code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status ok() { return Status(); }

  [[nodiscard]] bool is_ok() const { return code_ == Errc::kOk; }
  [[nodiscard]] Errc code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return msg_; }

  /// "OK" or "<code>: <message>".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Errc code_;
  std::string msg_;
};

/// A value or a failure Status. Dereferencing a failed Result asserts.
template <class T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.is_ok() && "Result(Status) requires an error status");
  }
  Result(Errc code, std::string msg) : status_(code, std::move(msg)) {}

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] const Status& status() const { return status_; }

  T& value() {
    assert(is_ok());
    return *value_;
  }
  const T& value() const {
    assert(is_ok());
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const { return is_ok() ? *value_ : fallback; }

 private:
  std::optional<T> value_;
  Status status_;
};

#define KSHOT_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::kshot::Status _st = (expr);                \
    if (!_st.is_ok()) return _st;                \
  } while (0)

}  // namespace kshot
