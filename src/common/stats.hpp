// Shared sample-statistics helpers: nearest-rank percentiles and the
// mean/stddev/min/max aggregate used by the bench binaries and the fleet
// report. Consolidated here so every consumer computes percentiles with the
// exact same formula (nearest-rank, 1-based), keeping report numbers
// byte-stable across subsystems.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace kshot {

/// Nearest-rank percentile of a *sorted* sample vector.
///
/// Pinned convention: rank is the smallest integer >= pct*n/100, clamped to
/// [1, n]; returns sorted[rank-1]. When pct*n/100 lands *exactly* on an
/// integer k the rank is k (p50 of 10 samples is the 5th, p95 of 20 the
/// 19th, p99 of 100 the 99th). The naive ceil(pct/100.0 * n) breaks that:
/// pct/100.0 is already rounded, so the product straddles the integer
/// unpredictably (ceil(0.47 * 100) == 48). We compute pct*n first (exact in
/// double for every realistic pct/n) and subtract an epsilon far below half
/// a rank before ceiling, so FP noise can never push an exact boundary up a
/// rank. Empty input returns 0; with one sample every percentile is it.
inline double percentile_sorted(const std::vector<double>& sorted,
                                double pct) {
  if (sorted.empty()) return 0;
  double exact_rank = pct * static_cast<double>(sorted.size()) / 100.0;
  size_t rank = static_cast<size_t>(std::ceil(exact_rank - 1e-9));
  if (rank == 0) rank = 1;
  return sorted[std::min(rank, sorted.size()) - 1];
}

struct SampleStats {
  double mean = 0;
  double stddev = 0;  // population standard deviation
  double min = 0;
  double max = 0;
  double p50 = 0;  // nearest-rank percentiles
  double p95 = 0;
  double p99 = 0;
  int n = 0;
};

/// Aggregates externally collected samples: mean, population stddev,
/// min/max, and p50/p95/p99 via percentile_sorted. This is the exact
/// (sample-hoarding) summary; for unbounded streams use common/sketch.hpp,
/// whose quantiles agree with this within its documented error bound.
inline SampleStats summarize(std::vector<double> xs) {
  SampleStats s;
  s.n = static_cast<int>(xs.size());
  if (xs.empty()) return s;
  double sum = 0;
  for (double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(xs.size()));
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  s.p50 = percentile_sorted(xs, 50);
  s.p95 = percentile_sorted(xs, 95);
  s.p99 = percentile_sorted(xs, 99);
  return s;
}

/// Historical name for summarize(); existing bench code uses it.
inline SampleStats stats_of(std::vector<double> xs) {
  return summarize(std::move(xs));
}

}  // namespace kshot
