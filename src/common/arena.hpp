// Chunked bump allocator for per-session parse objects. The zero-copy
// package parser allocates its view arrays (function headers, reloc and
// var-edit tables) here instead of the heap: one reset() per SMM session
// frees everything at once, and nothing allocated from an arena outlives
// the session that owns it. Only trivially-destructible types are allowed —
// reset() never runs destructors.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "common/types.hpp"

namespace kshot {

class Arena {
 public:
  explicit Arena(size_t chunk_bytes = 16 * 1024) : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw allocation, max_align-aligned. Never returns null (throws
  /// std::bad_alloc on exhaustion like operator new).
  void* alloc(size_t n) {
    constexpr size_t kAlign = alignof(std::max_align_t);
    n = (n + kAlign - 1) & ~(kAlign - 1);
    if (chunks_.empty() || chunks_.back().used + n > chunks_.back().size) {
      size_t want = n > chunk_bytes_ ? n : chunk_bytes_;
      chunks_.push_back(Chunk{std::make_unique<u8[]>(want), want, 0});
    }
    Chunk& c = chunks_.back();
    void* p = c.data.get() + c.used;
    c.used += n;
    allocated_ += n;
    return p;
  }

  /// Default-constructed array of `count` Ts. T must be trivially
  /// destructible (reset() runs no destructors).
  template <typename T>
  T* alloc_array(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena types must not need destruction");
    if (count == 0) return nullptr;
    T* p = static_cast<T*>(alloc(count * sizeof(T)));
    for (size_t i = 0; i < count; ++i) new (p + i) T();
    return p;
  }

  /// Drops every allocation at once. Keeps the first chunk for reuse so a
  /// steady-state session loop stops hitting the heap entirely.
  void reset() {
    if (chunks_.size() > 1) chunks_.resize(1);
    if (!chunks_.empty()) chunks_.front().used = 0;
    allocated_ = 0;
  }

  [[nodiscard]] size_t bytes_allocated() const { return allocated_; }

 private:
  struct Chunk {
    std::unique_ptr<u8[]> data;
    size_t size = 0;
    size_t used = 0;
  };
  std::vector<Chunk> chunks_;
  size_t chunk_bytes_;
  size_t allocated_ = 0;
};

}  // namespace kshot
