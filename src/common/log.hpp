// Minimal leveled logger. Quiet by default so tests and benches stay clean;
// examples turn it up to narrate the patching pipeline.
#pragma once

#include <sstream>
#include <string>

namespace kshot {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& component,
              const std::string& message);
}

/// Streams a message: KSHOT_LOG(kInfo, "smm") << "applied " << n << " fns";
#define KSHOT_LOG(level, component)                                 \
  for (bool _once = ::kshot::log_level() <= ::kshot::LogLevel::level; \
       _once; _once = false)                                         \
  ::kshot::detail::LogLine(::kshot::LogLevel::level, component)

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() { log_emit(level_, component_, os_.str()); }
  template <class T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace kshot
