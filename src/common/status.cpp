#include "common/status.hpp"

namespace kshot {

const char* errc_name(Errc c) {
  switch (c) {
    case Errc::kOk: return "OK";
    case Errc::kInvalidArgument: return "INVALID_ARGUMENT";
    case Errc::kNotFound: return "NOT_FOUND";
    case Errc::kPermissionDenied: return "PERMISSION_DENIED";
    case Errc::kIntegrityFailure: return "INTEGRITY_FAILURE";
    case Errc::kOutOfRange: return "OUT_OF_RANGE";
    case Errc::kFailedPrecondition: return "FAILED_PRECONDITION";
    case Errc::kUnsupported: return "UNSUPPORTED";
    case Errc::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case Errc::kAborted: return "ABORTED";
    case Errc::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string s = errc_name(code_);
  if (!msg_.empty()) {
    s += ": ";
    s += msg_;
  }
  return s;
}

}  // namespace kshot
