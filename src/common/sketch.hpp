// Deterministic streaming percentile sketch for planet-scale aggregation.
//
// The fleet report used to hoard every latency sample in a vector and sort
// it (common/stats.hpp) — fine for hundreds of targets, hopeless for a
// million. QuantileSketch keeps a fixed array of logarithmic buckets
// (DDSketch-style: bucket i covers (gamma^(i-1), gamma^i]), so memory is
// constant and every quantile estimate carries a *guaranteed* relative
// error bound of kRelativeError.
//
// Why log buckets and not a t-digest / P² estimator: those sketches adapt
// their centroids to the insertion order, so merging shard A then B gives
// different bytes than B then A. Our backbone invariant is byte-identical
// reports across --jobs and shard counts, which requires the sketch state
// to be a pure function of the sample *multiset*. Fixed log buckets give
// exactly that: insert is a counter increment at an order-independent
// index, and merge is bucket-wise u64 addition — commutative, associative,
// and exact — so any partition of the samples folds to identical bytes.
// (There is deliberately no floating-point sum inside the sketch: double
// addition is not associative, and a running sum would leak the shard
// partition into the state.)
//
// Accuracy contract (tested in test_common.cpp):
//   * quantile(q) is within kRelativeError (1%) of the exact nearest-rank
//     quantile (same pinned rank convention as common::percentile_sorted)
//     for any value in [kMinTrackable, kMaxTrackable];
//   * values below kMinTrackable collapse into an underflow bucket
//     represented as kMinTrackable (absolute error <= kMinTrackable);
//     values above kMaxTrackable saturate at the top bucket.
#pragma once

#include <cstddef>

#include "common/status.hpp"
#include "common/types.hpp"

namespace kshot {

class QuantileSketch {
 public:
  /// Guaranteed relative error of quantile(): alpha = (gamma-1)/(gamma+1).
  static constexpr double kRelativeError = 0.01;
  /// Smallest / largest accurately-representable value (microseconds in the
  /// fleet reports; the sketch itself is unit-agnostic).
  static constexpr double kMinTrackable = 1e-3;
  static constexpr double kMaxTrackable = 1e12;

  QuantileSketch();

  /// O(1): increments one bucket counter. Negative values clamp to the
  /// underflow bucket (latencies are non-negative; be forgiving, not UB).
  void insert(double value);

  /// Exact bucket-wise fold: merge(a, b) == merge(b, a), and folding any
  /// partition of a sample multiset yields byte-identical state.
  void merge(const QuantileSketch& other);

  /// Nearest-rank quantile estimate for q in [0, 1]: the representative
  /// value of the bucket holding the rank-ceil(q*count) smallest sample.
  /// Empty sketch returns 0.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }

  [[nodiscard]] u64 count() const { return count_; }
  /// Exact min/max of the inserted samples (doubles compare exactly, so
  /// these are partition-independent too). 0 when empty.
  [[nodiscard]] double min() const { return count_ ? min_ : 0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0; }

  /// Canonical byte encoding (magic, count, min/max bit patterns, then
  /// (index, count) pairs for the non-empty buckets in index order). Two
  /// sketches over the same sample multiset encode byte-identically; the
  /// determinism tests compare these bytes across shard/job partitions.
  [[nodiscard]] Bytes encode() const;
  static Result<QuantileSketch> decode(ByteSpan wire);

 private:
  // gamma = (1 + alpha) / (1 - alpha); index(v) = ceil(log_gamma(v)).
  // With alpha = 1% the bucket count covering [1e-3, 1e12] is ~1727.
  static constexpr size_t kBuckets = 1792;
  /// Bucket 0 is the underflow bucket (v <= kMinTrackable); buckets
  /// 1..kBuckets-1 are log buckets, the last doubling as saturation.
  [[nodiscard]] size_t bucket_index(double value) const;
  [[nodiscard]] double bucket_value(size_t index) const;

  u64 count_ = 0;
  double min_ = 0;
  double max_ = 0;
  u64 buckets_[kBuckets] = {};
};

}  // namespace kshot
