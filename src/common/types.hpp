// Fundamental aliases shared by every KShot module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace kshot {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Owned byte buffer.
using Bytes = std::vector<u8>;
/// Non-owning read-only view of bytes.
using ByteSpan = std::span<const u8>;
/// Non-owning mutable view of bytes.
using MutByteSpan = std::span<u8>;

/// Guest-physical address inside the simulated machine.
using PhysAddr = u64;

inline Bytes to_bytes(ByteSpan s) { return Bytes(s.begin(), s.end()); }

inline Bytes to_bytes(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

}  // namespace kshot
