#include "common/hex.hpp"

#include <cctype>
#include <sstream>

namespace kshot {

namespace {
constexpr char kDigits[] = "0123456789abcdef";

int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(ByteSpan data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (u8 b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

Result<Bytes> from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) return {Errc::kInvalidArgument, "odd hex length"};
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return {Errc::kInvalidArgument, "bad hex digit"};
    out.push_back(static_cast<u8>((hi << 4) | lo));
  }
  return out;
}

std::string hexdump(ByteSpan data, u64 base_addr) {
  std::ostringstream os;
  char buf[32];
  for (size_t row = 0; row < data.size(); row += 16) {
    std::snprintf(buf, sizeof(buf), "%08llx  ",
                  static_cast<unsigned long long>(base_addr + row));
    os << buf;
    for (size_t i = 0; i < 16; ++i) {
      if (row + i < data.size()) {
        std::snprintf(buf, sizeof(buf), "%02x ", data[row + i]);
        os << buf;
      } else {
        os << "   ";
      }
      if (i == 7) os << ' ';
    }
    os << " |";
    for (size_t i = 0; i < 16 && row + i < data.size(); ++i) {
      u8 c = data[row + i];
      os << (std::isprint(c) ? static_cast<char>(c) : '.');
    }
    os << "|\n";
  }
  return os.str();
}

}  // namespace kshot
