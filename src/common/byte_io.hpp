// Little-endian binary serialization helpers used by the patch package
// format, the SMRAM save-state area, and wire protocols.
#pragma once

#include "common/status.hpp"
#include "common/types.hpp"

namespace kshot {

/// Appends little-endian scalars and raw bytes to a growable buffer.
class ByteWriter {
 public:
  void put_u8(u8 v) { buf_.push_back(v); }
  void put_u16(u16 v);
  void put_u32(u32 v);
  void put_u64(u64 v);
  void put_bytes(ByteSpan b) { buf_.insert(buf_.end(), b.begin(), b.end()); }
  void put_zeros(size_t n) { buf_.insert(buf_.end(), n, 0); }

  [[nodiscard]] size_t size() const { return buf_.size(); }
  [[nodiscard]] const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Reads little-endian scalars from a span; all reads are bounds-checked.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  [[nodiscard]] size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] size_t position() const { return pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ >= data_.size(); }

  Result<u8> get_u8();
  Result<u16> get_u16();
  Result<u32> get_u32();
  Result<u64> get_u64();
  /// Copies the next n bytes out; fails if fewer remain.
  Result<Bytes> get_bytes(size_t n);
  /// Returns a view of the next n bytes and advances.
  Result<ByteSpan> get_span(size_t n);
  Status skip(size_t n);

 private:
  ByteSpan data_;
  size_t pos_ = 0;
};

/// In-place little-endian scalar access over raw memory.
u16 load_u16(const u8* p);
u32 load_u32(const u8* p);
u64 load_u64(const u8* p);
void store_u16(u8* p, u16 v);
void store_u32(u8* p, u32 v);
void store_u64(u8* p, u64 v);

}  // namespace kshot
