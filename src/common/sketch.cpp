#include "common/sketch.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/byte_io.hpp"

namespace kshot {

namespace {

// gamma = (1 + alpha) / (1 - alpha) for alpha = kRelativeError.
constexpr double kGamma = (1.0 + QuantileSketch::kRelativeError) /
                          (1.0 - QuantileSketch::kRelativeError);
const double kLnGamma = std::log(kGamma);
// Raw log index of kMinTrackable; bucket 1 starts one past it so every
// tracked value maps to [1, kBuckets).
const i64 kIndexOffset =
    static_cast<i64>(std::ceil(std::log(QuantileSketch::kMinTrackable) /
                               kLnGamma)) -
    1;
constexpr u32 kSketchMagic = 0x314B5351;  // "QSK1"

}  // namespace

QuantileSketch::QuantileSketch() = default;

size_t QuantileSketch::bucket_index(double value) const {
  if (!(value > kMinTrackable)) return 0;  // underflow (and NaN) bucket
  i64 raw = static_cast<i64>(std::ceil(std::log(value) / kLnGamma));
  i64 idx = raw - kIndexOffset;
  if (idx < 1) return 1;
  if (idx >= static_cast<i64>(kBuckets)) return kBuckets - 1;  // saturate
  return static_cast<size_t>(idx);
}

double QuantileSketch::bucket_value(size_t index) const {
  if (index == 0) return kMinTrackable;
  // Bucket covers (gamma^(raw-1), gamma^raw]; the harmonic representative
  // 2*gamma^raw/(gamma+1) is within kRelativeError of every member.
  double raw = static_cast<double>(static_cast<i64>(index) + kIndexOffset);
  return 2.0 * std::exp(raw * kLnGamma) / (kGamma + 1.0);
}

void QuantileSketch::insert(double value) {
  ++buckets_[bucket_index(value)];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Same pinned nearest-rank convention as common::percentile_sorted.
  double exact_rank = q * static_cast<double>(count_);
  u64 rank = static_cast<u64>(std::ceil(exact_rank - 1e-9));
  rank = std::clamp<u64>(rank, 1, count_);
  u64 seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Clamp into the exact observed range: the extreme buckets only know
      // their bound, but min_/max_ are exact and tighter.
      return std::clamp(bucket_value(i), min_, max_);
    }
  }
  return max_;  // unreachable: bucket counts sum to count_
}

Bytes QuantileSketch::encode() const {
  ByteWriter w;
  w.put_u32(kSketchMagic);
  w.put_u64(count_);
  w.put_u64(std::bit_cast<u64>(min_));
  w.put_u64(std::bit_cast<u64>(max_));
  u32 pairs = 0;
  for (size_t i = 0; i < kBuckets; ++i) pairs += buckets_[i] != 0;
  w.put_u32(pairs);
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    w.put_u32(static_cast<u32>(i));
    w.put_u64(buckets_[i]);
  }
  return w.take();
}

Result<QuantileSketch> QuantileSketch::decode(ByteSpan wire) {
  ByteReader r(wire);
  auto magic = r.get_u32();
  if (!magic || *magic != kSketchMagic) {
    return Status{Errc::kInvalidArgument, "sketch: bad magic"};
  }
  QuantileSketch s;
  auto count = r.get_u64();
  auto min_bits = r.get_u64();
  auto max_bits = r.get_u64();
  auto pairs = r.get_u32();
  if (!count || !min_bits || !max_bits || !pairs) {
    return Status{Errc::kInvalidArgument, "sketch: truncated header"};
  }
  s.count_ = *count;
  s.min_ = std::bit_cast<double>(*min_bits);
  s.max_ = std::bit_cast<double>(*max_bits);
  u64 total = 0;
  for (u32 p = 0; p < *pairs; ++p) {
    auto idx = r.get_u32();
    auto cnt = r.get_u64();
    if (!idx || !cnt || *idx >= kBuckets || *cnt == 0) {
      return Status{Errc::kInvalidArgument, "sketch: bad bucket pair"};
    }
    if (s.buckets_[*idx] != 0) {
      return Status{Errc::kInvalidArgument, "sketch: duplicate bucket"};
    }
    s.buckets_[*idx] = *cnt;
    total += *cnt;
  }
  if (!r.exhausted() || total != s.count_) {
    return Status{Errc::kInvalidArgument, "sketch: count mismatch"};
  }
  return s;
}

}  // namespace kshot
