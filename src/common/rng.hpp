// Deterministic RNG (xoshiro256**) so experiments and tests reproduce
// byte-for-byte across runs. Simulated "hardware entropy" (DH private keys,
// nonces) is drawn from machine-owned instances seeded per scenario.
#pragma once

#include "common/types.hpp"

namespace kshot {

class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(u64 seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    u64 x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  u64 next() {
    u64 result = rotl(state_[1] * 5, 7) * 9;
    u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be nonzero.
  u64 next_below(u64 bound) { return next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  u64 next_range(u64 lo, u64 hi) { return lo + next_below(hi - lo + 1); }

  u8 next_byte() { return static_cast<u8>(next()); }

  Bytes next_bytes(size_t n) {
    Bytes out(n);
    fill(out);
    return out;
  }

  void fill(MutByteSpan out) {
    for (auto& b : out) b = next_byte();
  }

 private:
  static u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
  u64 state_[4];
};

}  // namespace kshot
