// Hex encoding/decoding for digests, test vectors and diagnostics.
#pragma once

#include "common/status.hpp"
#include "common/types.hpp"

namespace kshot {

/// Lowercase hex of a byte span.
std::string to_hex(ByteSpan data);

/// Parses lowercase/uppercase hex; fails on odd length or bad digits.
Result<Bytes> from_hex(const std::string& hex);

/// Classic hexdump (offset, 16 bytes, ASCII gutter) for diagnostics.
std::string hexdump(ByteSpan data, u64 base_addr = 0);

}  // namespace kshot
