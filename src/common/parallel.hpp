// Bounded worker-pool fan-out shared by fleet rollouts, patchtool bindiff,
// and the bench harness. Callers must make fn(i) write only index-i slots
// (or take their own locks) — results are then merged in index order, which
// keeps outputs deterministic regardless of scheduling.
#pragma once

#include <algorithm>
#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace kshot {

/// Runs fn(0..n-1) on up to `jobs` worker threads. Work items are claimed
/// from an atomic counter; every item writes only its own slots, so no
/// further synchronization is needed. jobs==1 degenerates to a plain loop.
inline void parallel_for(u32 n, u32 jobs,
                         const std::function<void(u32)>& fn) {
  jobs = std::max<u32>(1, std::min(jobs, n));
  if (jobs <= 1) {
    for (u32 i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<u32> next{0};
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (u32 w = 0; w < jobs; ++w) {
    pool.emplace_back([&] {
      for (u32 i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
    });
  }
  for (auto& th : pool) th.join();
}

}  // namespace kshot
