#include "common/byte_io.hpp"

namespace kshot {

void ByteWriter::put_u16(u16 v) {
  put_u8(static_cast<u8>(v));
  put_u8(static_cast<u8>(v >> 8));
}

void ByteWriter::put_u32(u32 v) {
  for (int i = 0; i < 4; ++i) put_u8(static_cast<u8>(v >> (8 * i)));
}

void ByteWriter::put_u64(u64 v) {
  for (int i = 0; i < 8; ++i) put_u8(static_cast<u8>(v >> (8 * i)));
}

Result<u8> ByteReader::get_u8() {
  if (remaining() < 1) return {Errc::kOutOfRange, "read past end"};
  return data_[pos_++];
}

Result<u16> ByteReader::get_u16() {
  if (remaining() < 2) return {Errc::kOutOfRange, "read past end"};
  u16 v = load_u16(data_.data() + pos_);
  pos_ += 2;
  return v;
}

Result<u32> ByteReader::get_u32() {
  if (remaining() < 4) return {Errc::kOutOfRange, "read past end"};
  u32 v = load_u32(data_.data() + pos_);
  pos_ += 4;
  return v;
}

Result<u64> ByteReader::get_u64() {
  if (remaining() < 8) return {Errc::kOutOfRange, "read past end"};
  u64 v = load_u64(data_.data() + pos_);
  pos_ += 8;
  return v;
}

Result<Bytes> ByteReader::get_bytes(size_t n) {
  if (remaining() < n) return {Errc::kOutOfRange, "read past end"};
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Result<ByteSpan> ByteReader::get_span(size_t n) {
  if (remaining() < n) return {Errc::kOutOfRange, "read past end"};
  ByteSpan out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

Status ByteReader::skip(size_t n) {
  if (remaining() < n) return {Errc::kOutOfRange, "skip past end"};
  pos_ += n;
  return Status::ok();
}

u16 load_u16(const u8* p) {
  return static_cast<u16>(p[0] | (static_cast<u16>(p[1]) << 8));
}

u32 load_u32(const u8* p) {
  u32 v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

u64 load_u64(const u8* p) {
  u64 v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

void store_u16(u8* p, u16 v) {
  p[0] = static_cast<u8>(v);
  p[1] = static_cast<u8>(v >> 8);
}

void store_u32(u8* p, u32 v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<u8>(v >> (8 * i));
}

void store_u64(u8* p, u64 v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<u8>(v >> (8 * i));
}

}  // namespace kshot
