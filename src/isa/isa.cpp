#include "isa/isa.hpp"

#include "common/byte_io.hpp"

namespace kshot::isa {

namespace {

// First encoding byte for each opcode.
u8 opcode_byte(Op op) {
  switch (op) {
    case Op::kNop: return 0x90;
    case Op::kNop5: return 0x0F;
    case Op::kJmp: return 0xE9;
    case Op::kCall: return 0xE8;
    case Op::kRet: return 0xC3;
    case Op::kInt3: return 0xCC;
    case Op::kHlt: return 0xF4;
    case Op::kUd2: return 0x0F;
    case Op::kMov: return 0x10;
    case Op::kMovi: return 0x11;
    case Op::kAdd: return 0x20;
    case Op::kSub: return 0x21;
    case Op::kMul: return 0x22;
    case Op::kDiv: return 0x23;
    case Op::kMod: return 0x24;
    case Op::kXor: return 0x25;
    case Op::kAnd: return 0x26;
    case Op::kOr: return 0x27;
    case Op::kShl: return 0x28;
    case Op::kShr: return 0x29;
    case Op::kAddi: return 0x30;
    case Op::kSubi: return 0x31;
    case Op::kMuli: return 0x32;
    case Op::kDivi: return 0x33;
    case Op::kModi: return 0x34;
    case Op::kXori: return 0x35;
    case Op::kAndi: return 0x36;
    case Op::kOri: return 0x37;
    case Op::kShli: return 0x38;
    case Op::kShri: return 0x39;
    case Op::kLoadG: return 0x3A;
    case Op::kStoreG: return 0x3B;
    case Op::kLoadR: return 0x3C;
    case Op::kStoreR: return 0x3D;
    case Op::kCmp: return 0x40;
    case Op::kCmpi: return 0x41;
    case Op::kJe: return 0x50;
    case Op::kJne: return 0x51;
    case Op::kJl: return 0x52;
    case Op::kJge: return 0x53;
    case Op::kJg: return 0x54;
    case Op::kJle: return 0x55;
    case Op::kPush: return 0x60;
    case Op::kPop: return 0x61;
    case Op::kTrap: return 0x72;
  }
  return 0x90;
}

}  // namespace

size_t encoded_len(Op op) {
  switch (op) {
    case Op::kNop:
    case Op::kRet:
    case Op::kInt3:
    case Op::kHlt:
      return 1;
    case Op::kUd2:
    case Op::kPush:
    case Op::kPop:
    case Op::kTrap:
      return 2;
    case Op::kNop5:
    case Op::kJmp:
    case Op::kCall:
    case Op::kJe:
    case Op::kJne:
    case Op::kJl:
    case Op::kJge:
    case Op::kJg:
    case Op::kJle:
      return 5;
    case Op::kMov:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod:
    case Op::kXor:
    case Op::kAnd:
    case Op::kOr:
    case Op::kShl:
    case Op::kShr:
    case Op::kCmp:
      return 3;
    case Op::kMovi:
    case Op::kAddi:
    case Op::kSubi:
    case Op::kMuli:
    case Op::kDivi:
    case Op::kModi:
    case Op::kXori:
    case Op::kAndi:
    case Op::kOri:
    case Op::kShli:
    case Op::kShri:
    case Op::kLoadG:
    case Op::kStoreG:
    case Op::kCmpi:
      return 6;
    case Op::kLoadR:
    case Op::kStoreR:
      return 7;
  }
  return 1;
}

size_t encode(const Instr& in, Bytes& out) {
  size_t start = out.size();
  switch (in.op) {
    case Op::kNop5:
      out.insert(out.end(), {0x0F, 0x1F, 0x44, 0x00, 0x00});
      break;
    case Op::kUd2:
      out.insert(out.end(), {0x0F, 0x0B});
      break;
    case Op::kNop:
    case Op::kRet:
    case Op::kInt3:
    case Op::kHlt:
      out.push_back(opcode_byte(in.op));
      break;
    case Op::kJmp:
    case Op::kCall:
    case Op::kJe:
    case Op::kJne:
    case Op::kJl:
    case Op::kJge:
    case Op::kJg:
    case Op::kJle: {
      out.push_back(opcode_byte(in.op));
      u8 rel[4];
      store_u32(rel, static_cast<u32>(static_cast<i32>(in.imm)));
      out.insert(out.end(), rel, rel + 4);
      break;
    }
    case Op::kMov:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod:
    case Op::kXor:
    case Op::kAnd:
    case Op::kOr:
    case Op::kShl:
    case Op::kShr:
    case Op::kCmp:
      out.push_back(opcode_byte(in.op));
      out.push_back(in.a);
      out.push_back(in.b);
      break;
    case Op::kMovi:
    case Op::kAddi:
    case Op::kSubi:
    case Op::kMuli:
    case Op::kDivi:
    case Op::kModi:
    case Op::kXori:
    case Op::kAndi:
    case Op::kOri:
    case Op::kShli:
    case Op::kShri:
    case Op::kLoadG:
    case Op::kStoreG:
    case Op::kCmpi: {
      out.push_back(opcode_byte(in.op));
      out.push_back(in.a);
      u8 imm[4];
      store_u32(imm, static_cast<u32>(static_cast<i32>(in.imm)));
      out.insert(out.end(), imm, imm + 4);
      break;
    }
    case Op::kLoadR:
    case Op::kStoreR: {
      out.push_back(opcode_byte(in.op));
      out.push_back(in.a);
      out.push_back(in.b);
      u8 disp[4];
      store_u32(disp, static_cast<u32>(static_cast<i32>(in.imm)));
      out.insert(out.end(), disp, disp + 4);
      break;
    }
    case Op::kPush:
    case Op::kPop:
      out.push_back(opcode_byte(in.op));
      out.push_back(in.a);
      break;
    case Op::kTrap:
      out.push_back(opcode_byte(in.op));
      out.push_back(static_cast<u8>(in.imm));
      break;
  }
  return out.size() - start;
}

namespace {

Result<Decoded> decode_reg_reg(Op op, ByteSpan code) {
  if (code.size() < 3) return {Errc::kOutOfRange, "truncated instruction"};
  if (code[1] >= kNumRegs || code[2] >= kNumRegs)
    return {Errc::kInvalidArgument, "bad register"};
  return Decoded{{op, code[1], code[2], 0}, 3};
}

Result<Decoded> decode_reg_imm(Op op, ByteSpan code) {
  if (code.size() < 6) return {Errc::kOutOfRange, "truncated instruction"};
  if (code[1] >= kNumRegs) return {Errc::kInvalidArgument, "bad register"};
  i32 imm = static_cast<i32>(load_u32(code.data() + 2));
  return Decoded{{op, code[1], 0, imm}, 6};
}

Result<Decoded> decode_rel32(Op op, ByteSpan code) {
  if (code.size() < 5) return {Errc::kOutOfRange, "truncated instruction"};
  i32 rel = static_cast<i32>(load_u32(code.data() + 1));
  return Decoded{{op, 0, 0, rel}, 5};
}

}  // namespace

Result<Decoded> decode(ByteSpan code) {
  if (code.empty()) return {Errc::kOutOfRange, "empty code"};
  u8 b0 = code[0];
  switch (b0) {
    case 0x90: return Decoded{{Op::kNop}, 1};
    case 0xC3: return Decoded{{Op::kRet}, 1};
    case 0xCC: return Decoded{{Op::kInt3}, 1};
    case 0xF4: return Decoded{{Op::kHlt}, 1};
    case 0x0F:
      if (code.size() >= 2 && code[1] == 0x0B) return Decoded{{Op::kUd2}, 2};
      if (code.size() >= 5 && code[1] == 0x1F && code[2] == 0x44 &&
          code[3] == 0x00 && code[4] == 0x00) {
        return Decoded{{Op::kNop5}, 5};
      }
      return {Errc::kInvalidArgument, "bad 0F escape"};
    case 0xE9: return decode_rel32(Op::kJmp, code);
    case 0xE8: return decode_rel32(Op::kCall, code);
    case 0x50: return decode_rel32(Op::kJe, code);
    case 0x51: return decode_rel32(Op::kJne, code);
    case 0x52: return decode_rel32(Op::kJl, code);
    case 0x53: return decode_rel32(Op::kJge, code);
    case 0x54: return decode_rel32(Op::kJg, code);
    case 0x55: return decode_rel32(Op::kJle, code);
    case 0x10: return decode_reg_reg(Op::kMov, code);
    case 0x11: return decode_reg_imm(Op::kMovi, code);
    case 0x20: return decode_reg_reg(Op::kAdd, code);
    case 0x21: return decode_reg_reg(Op::kSub, code);
    case 0x22: return decode_reg_reg(Op::kMul, code);
    case 0x23: return decode_reg_reg(Op::kDiv, code);
    case 0x24: return decode_reg_reg(Op::kMod, code);
    case 0x25: return decode_reg_reg(Op::kXor, code);
    case 0x26: return decode_reg_reg(Op::kAnd, code);
    case 0x27: return decode_reg_reg(Op::kOr, code);
    case 0x28: return decode_reg_reg(Op::kShl, code);
    case 0x29: return decode_reg_reg(Op::kShr, code);
    case 0x30: return decode_reg_imm(Op::kAddi, code);
    case 0x31: return decode_reg_imm(Op::kSubi, code);
    case 0x32: return decode_reg_imm(Op::kMuli, code);
    case 0x33: return decode_reg_imm(Op::kDivi, code);
    case 0x34: return decode_reg_imm(Op::kModi, code);
    case 0x35: return decode_reg_imm(Op::kXori, code);
    case 0x36: return decode_reg_imm(Op::kAndi, code);
    case 0x37: return decode_reg_imm(Op::kOri, code);
    case 0x38: return decode_reg_imm(Op::kShli, code);
    case 0x39: return decode_reg_imm(Op::kShri, code);
    case 0x3A: return decode_reg_imm(Op::kLoadG, code);
    case 0x3B: return decode_reg_imm(Op::kStoreG, code);
    case 0x3C: {
      if (code.size() < 7) return {Errc::kOutOfRange, "truncated instruction"};
      if (code[1] >= kNumRegs || code[2] >= kNumRegs)
        return {Errc::kInvalidArgument, "bad register"};
      i32 disp = static_cast<i32>(load_u32(code.data() + 3));
      return Decoded{{Op::kLoadR, code[1], code[2], disp}, 7};
    }
    case 0x3D: {
      if (code.size() < 7) return {Errc::kOutOfRange, "truncated instruction"};
      if (code[1] >= kNumRegs || code[2] >= kNumRegs)
        return {Errc::kInvalidArgument, "bad register"};
      i32 disp = static_cast<i32>(load_u32(code.data() + 3));
      return Decoded{{Op::kStoreR, code[1], code[2], disp}, 7};
    }
    case 0x40: return decode_reg_reg(Op::kCmp, code);
    case 0x41: return decode_reg_imm(Op::kCmpi, code);
    case 0x60:
      if (code.size() < 2) return {Errc::kOutOfRange, "truncated instruction"};
      if (code[1] >= kNumRegs) return {Errc::kInvalidArgument, "bad register"};
      return Decoded{{Op::kPush, code[1]}, 2};
    case 0x61:
      if (code.size() < 2) return {Errc::kOutOfRange, "truncated instruction"};
      if (code[1] >= kNumRegs) return {Errc::kInvalidArgument, "bad register"};
      return Decoded{{Op::kPop, code[1]}, 2};
    case 0x72:
      if (code.size() < 2) return {Errc::kOutOfRange, "truncated instruction"};
      return Decoded{{Op::kTrap, 0, 0, code[1]}, 2};
    default:
      return {Errc::kInvalidArgument, "unknown opcode"};
  }
}

bool is_rel32_branch(Op op) {
  switch (op) {
    case Op::kJmp:
    case Op::kCall:
    case Op::kJe:
    case Op::kJne:
    case Op::kJl:
    case Op::kJge:
    case Op::kJg:
    case Op::kJle:
      return true;
    default:
      return false;
  }
}

bool is_cond_branch(Op op) {
  switch (op) {
    case Op::kJe:
    case Op::kJne:
    case Op::kJl:
    case Op::kJge:
    case Op::kJg:
    case Op::kJle:
      return true;
    default:
      return false;
  }
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kNop5: return "nop5";
    case Op::kJmp: return "jmp";
    case Op::kCall: return "call";
    case Op::kRet: return "ret";
    case Op::kInt3: return "int3";
    case Op::kHlt: return "hlt";
    case Op::kUd2: return "ud2";
    case Op::kMov: return "mov";
    case Op::kMovi: return "movi";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kMod: return "mod";
    case Op::kXor: return "xor";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kAddi: return "addi";
    case Op::kSubi: return "subi";
    case Op::kMuli: return "muli";
    case Op::kDivi: return "divi";
    case Op::kModi: return "modi";
    case Op::kXori: return "xori";
    case Op::kAndi: return "andi";
    case Op::kOri: return "ori";
    case Op::kShli: return "shli";
    case Op::kShri: return "shri";
    case Op::kLoadG: return "loadg";
    case Op::kStoreG: return "storeg";
    case Op::kLoadR: return "loadr";
    case Op::kStoreR: return "storer";
    case Op::kCmp: return "cmp";
    case Op::kCmpi: return "cmpi";
    case Op::kJe: return "je";
    case Op::kJne: return "jne";
    case Op::kJl: return "jl";
    case Op::kJge: return "jge";
    case Op::kJg: return "jg";
    case Op::kJle: return "jle";
    case Op::kPush: return "push";
    case Op::kPop: return "pop";
    case Op::kTrap: return "trap";
  }
  return "?";
}

}  // namespace kshot::isa
