// Relocation analysis for function bodies: finds every rel32 site so a
// function can be moved (into mem_X) while preserving its external branch
// targets — the "calculating label differences" step of paper §V-A.
#pragma once

#include <vector>

#include "isa/isa.hpp"

namespace kshot::isa {

/// One rel32 control-transfer site inside a function body.
struct Rel32Site {
  size_t instr_off = 0;  // offset of the opcode byte
  size_t rel_off = 0;    // offset of the rel32 field (instr_off + 1)
  Op op = Op::kJmp;
  i32 rel = 0;           // displacement as encoded
  /// Target as a function-relative offset (may be outside [0, size)).
  i64 target_off = 0;
  /// True if the target lies inside the function body (no fixup needed when
  /// the function is relocated as a unit).
  bool internal = false;
};

/// Scans a function body, decoding linearly from offset 0.
/// Fails if any byte fails to decode (function bodies are expected to be
/// well-formed instruction streams).
Result<std::vector<Rel32Site>> scan_rel32(ByteSpan body);

/// Rewrites the rel32 at `rel_off` in `body` so that the branch, once the
/// function is placed at `new_base`, reaches absolute `target`.
void retarget_rel32(MutByteSpan body, size_t rel_off, u64 new_base,
                    u64 target);

/// Computes the absolute target of a rel32 branch located at `instr_addr`
/// with encoded instruction length `len`.
inline u64 branch_target(u64 instr_addr, size_t len, i32 rel) {
  return instr_addr + len + static_cast<i64>(rel);
}

}  // namespace kshot::isa
