#include "isa/disasm.hpp"

#include <cstdio>
#include <sstream>

namespace kshot::isa {

std::string to_string(const Instr& in) {
  char buf[96];
  const char* name = op_name(in.op);
  switch (in.op) {
    case Op::kNop:
    case Op::kNop5:
    case Op::kRet:
    case Op::kInt3:
    case Op::kHlt:
    case Op::kUd2:
      std::snprintf(buf, sizeof(buf), "%s", name);
      break;
    case Op::kJmp:
    case Op::kCall:
    case Op::kJe:
    case Op::kJne:
    case Op::kJl:
    case Op::kJge:
    case Op::kJg:
    case Op::kJle:
      std::snprintf(buf, sizeof(buf), "%s %+lld", name,
                    static_cast<long long>(in.imm));
      break;
    case Op::kMov:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod:
    case Op::kXor:
    case Op::kAnd:
    case Op::kOr:
    case Op::kShl:
    case Op::kShr:
    case Op::kCmp:
      std::snprintf(buf, sizeof(buf), "%s r%d, r%d", name, in.a, in.b);
      break;
    case Op::kMovi:
    case Op::kAddi:
    case Op::kSubi:
    case Op::kMuli:
    case Op::kDivi:
    case Op::kModi:
    case Op::kXori:
    case Op::kAndi:
    case Op::kOri:
    case Op::kShli:
    case Op::kShri:
    case Op::kCmpi:
      std::snprintf(buf, sizeof(buf), "%s r%d, %lld", name, in.a,
                    static_cast<long long>(in.imm));
      break;
    case Op::kLoadG:
      std::snprintf(buf, sizeof(buf), "loadg r%d, [0x%llx]", in.a,
                    static_cast<unsigned long long>(in.imm));
      break;
    case Op::kStoreG:
      std::snprintf(buf, sizeof(buf), "storeg [0x%llx], r%d",
                    static_cast<unsigned long long>(in.imm), in.a);
      break;
    case Op::kLoadR:
      std::snprintf(buf, sizeof(buf), "loadr r%d, [r%d%+lld]", in.a, in.b,
                    static_cast<long long>(in.imm));
      break;
    case Op::kStoreR:
      std::snprintf(buf, sizeof(buf), "storer [r%d%+lld], r%d", in.b,
                    static_cast<long long>(in.imm), in.a);
      break;
    case Op::kPush:
    case Op::kPop:
      std::snprintf(buf, sizeof(buf), "%s r%d", name, in.a);
      break;
    case Op::kTrap:
      std::snprintf(buf, sizeof(buf), "trap %lld",
                    static_cast<long long>(in.imm));
      break;
  }
  return buf;
}

std::string disassemble(ByteSpan code, u64 base) {
  std::ostringstream os;
  size_t off = 0;
  char addr[32];
  while (off < code.size()) {
    auto d = decode(code.subspan(off));
    if (!d) {
      std::snprintf(addr, sizeof(addr), "%08llx  ",
                    static_cast<unsigned long long>(base + off));
      os << addr << "(bad byte 0x" << std::hex << int(code[off]) << std::dec
         << ")\n";
      break;
    }
    std::snprintf(addr, sizeof(addr), "%08llx  ",
                  static_cast<unsigned long long>(base + off));
    os << addr;
    if (is_rel32_branch(d->instr.op)) {
      // Print the absolute target for branches.
      u64 target = base + off + d->len + static_cast<i64>(d->instr.imm);
      char t[64];
      std::snprintf(t, sizeof(t), "%s 0x%llx", op_name(d->instr.op),
                    static_cast<unsigned long long>(target));
      os << t << '\n';
    } else {
      os << to_string(d->instr) << '\n';
    }
    off += d->len;
  }
  return os.str();
}

}  // namespace kshot::isa
