// Label-based assembler used by the kcc code generator and by tests that
// hand-craft kernel functions. Produces position-independent code except for
// external call sites, which are recorded for the linker to resolve.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "isa/isa.hpp"

namespace kshot::isa {

/// A forward-referencable code label (function-local).
struct Label {
  int id = -1;
};

/// An unresolved reference to another function, to be patched by the linker.
/// `offset` is the offset of the rel32 field within the emitted bytes.
struct ExtRef {
  size_t offset = 0;
  std::string symbol;
};

class Assembler {
 public:
  Label new_label() { return Label{next_label_++}; }

  /// Binds `l` to the current position. A label may be bound exactly once.
  void bind(Label l);

  size_t here() const { return code_.size(); }

  void emit(const Instr& in) { isa::encode(in, code_); }

  // Convenience emitters -----------------------------------------------
  void nop() { emit({Op::kNop}); }
  void nop5() { emit({Op::kNop5}); }
  void ret() { emit({Op::kRet}); }
  void ud2() { emit({Op::kUd2}); }
  void hlt() { emit({Op::kHlt}); }
  void trap(u8 code) { emit({Op::kTrap, 0, 0, code}); }
  void mov(u8 dst, u8 src) { emit({Op::kMov, dst, src}); }
  void movi(u8 dst, i64 imm) { emit({Op::kMovi, dst, 0, imm}); }
  void alu(Op op, u8 dst, u8 src) { emit({op, dst, src}); }
  void alui(Op op, u8 dst, i64 imm) { emit({op, dst, 0, imm}); }
  void loadg(u8 dst, u32 abs) { emit({Op::kLoadG, dst, 0, abs}); }
  void storeg(u8 src, u32 abs) { emit({Op::kStoreG, src, 0, abs}); }
  void loadr(u8 dst, u8 base, i32 disp) { emit({Op::kLoadR, dst, base, disp}); }
  void storer(u8 src, u8 base, i32 disp) {
    emit({Op::kStoreR, src, base, disp});
  }
  void cmp(u8 a, u8 b) { emit({Op::kCmp, a, b}); }
  void cmpi(u8 a, i64 imm) { emit({Op::kCmpi, a, 0, imm}); }
  void push(u8 r) { emit({Op::kPush, r}); }
  void pop(u8 r) { emit({Op::kPop, r}); }

  /// rel32 branch to a (possibly not yet bound) local label.
  void branch(Op op, Label target);
  void jmp(Label l) { branch(Op::kJmp, l); }
  void je(Label l) { branch(Op::kJe, l); }
  void jne(Label l) { branch(Op::kJne, l); }
  void jl(Label l) { branch(Op::kJl, l); }
  void jge(Label l) { branch(Op::kJge, l); }
  void jg(Label l) { branch(Op::kJg, l); }
  void jle(Label l) { branch(Op::kJle, l); }

  /// Call to an external symbol; the rel32 is left zero and recorded.
  void call_sym(const std::string& symbol);

  /// External references accumulated so far (valid after finish()).
  const std::vector<ExtRef>& ext_refs() const { return ext_refs_; }

  /// Resolves all label fixups and returns the code. Unbound labels fail.
  Result<Bytes> finish();

 private:
  struct Fixup {
    size_t offset;  // of the rel32 field
    int label;
  };

  Bytes code_;
  int next_label_ = 0;
  std::map<int, size_t> bound_;
  std::vector<Fixup> fixups_;
  std::vector<ExtRef> ext_refs_;
};

}  // namespace kshot::isa
