#include "isa/assembler.hpp"

#include <cassert>

#include "common/byte_io.hpp"

namespace kshot::isa {

void Assembler::bind(Label l) {
  assert(l.id >= 0 && "label must come from new_label()");
  assert(!bound_.count(l.id) && "label bound twice");
  bound_[l.id] = code_.size();
}

void Assembler::branch(Op op, Label target) {
  assert(is_rel32_branch(op));
  size_t rel_off = code_.size() + 1;
  emit({op, 0, 0, 0});
  fixups_.push_back({rel_off, target.id});
}

void Assembler::call_sym(const std::string& symbol) {
  size_t rel_off = code_.size() + 1;
  emit({Op::kCall, 0, 0, 0});
  ext_refs_.push_back({rel_off, symbol});
}

Result<Bytes> Assembler::finish() {
  for (const Fixup& f : fixups_) {
    auto it = bound_.find(f.label);
    if (it == bound_.end()) {
      return {Errc::kFailedPrecondition, "unbound label in assembler"};
    }
    // rel32 is relative to the end of the 5-byte branch instruction.
    i64 rel = static_cast<i64>(it->second) - static_cast<i64>(f.offset + 4);
    store_u32(code_.data() + f.offset, static_cast<u32>(static_cast<i32>(rel)));
  }
  fixups_.clear();
  return code_;
}

}  // namespace kshot::isa
