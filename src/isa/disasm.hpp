// Disassembler for diagnostics, binary-level call-graph construction and
// the examples' narrated output.
#pragma once

#include <string>

#include "isa/isa.hpp"

namespace kshot::isa {

/// One instruction, e.g. "jmp +0x2a" or "movi r3, 17".
std::string to_string(const Instr& in);

/// Disassembles a code region; `base` is the address of code[0] so branch
/// targets can be printed absolutely. Stops at the first undecodable byte.
std::string disassemble(ByteSpan code, u64 base = 0);

}  // namespace kshot::isa
