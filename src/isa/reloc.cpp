#include "isa/reloc.hpp"

#include "common/byte_io.hpp"

namespace kshot::isa {

Result<std::vector<Rel32Site>> scan_rel32(ByteSpan body) {
  std::vector<Rel32Site> sites;
  size_t off = 0;
  while (off < body.size()) {
    auto d = decode(body.subspan(off));
    if (!d) return d.status();
    if (is_rel32_branch(d->instr.op)) {
      Rel32Site s;
      s.instr_off = off;
      s.rel_off = off + 1;
      s.op = d->instr.op;
      s.rel = static_cast<i32>(d->instr.imm);
      s.target_off = static_cast<i64>(off + d->len) + s.rel;
      s.internal = s.target_off >= 0 &&
                   s.target_off <= static_cast<i64>(body.size());
      sites.push_back(s);
    }
    off += d->len;
  }
  return sites;
}

void retarget_rel32(MutByteSpan body, size_t rel_off, u64 new_base,
                    u64 target) {
  // rel32 is relative to the end of the rel32 field itself.
  i64 rel = static_cast<i64>(target) -
            static_cast<i64>(new_base + rel_off + 4);
  store_u32(body.data() + rel_off, static_cast<u32>(static_cast<i32>(rel)));
}

}  // namespace kshot::isa
