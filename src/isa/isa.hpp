// The simulated kernel instruction set.
//
// The encodings that live patching manipulates are genuine x86:
//   E9 rel32            jmp   (the 5-byte trampoline KShot installs)
//   E8 rel32            call
//   0F 1F 44 00 00      5-byte nop (the ftrace pad at traced function entry)
//   C3 / CC / F4 / 0F 0B ret / int3 / hlt / ud2
// The remaining opcodes are a compact x86-flavoured RISC subset that the
// machine interpreter executes. All control flow uses rel32 displacements, so
// relocating a patched function into mem_X requires exactly the fixups the
// paper describes ("we must change these offsets to retain required
// functionality via the standard approach of calculating label differences").
#pragma once

#include "common/status.hpp"
#include "common/types.hpp"

namespace kshot::isa {

inline constexpr int kNumRegs = 16;

enum class Op : u8 {
  kNop,    // 90
  kNop5,   // 0F 1F 44 00 00   (ftrace pad)
  kJmp,    // E9 rel32
  kCall,   // E8 rel32
  kRet,    // C3
  kInt3,   // CC
  kHlt,    // F4
  kUd2,    // 0F 0B            (kernel BUG(): fires an oops/trap)

  kMov,    // 10 dst src
  kMovi,   // 11 dst imm32 (sign-extended)

  kAdd,    // 20 dst src
  kSub,    // 21
  kMul,    // 22
  kDiv,    // 23  (divide by zero faults -> oops)
  kMod,    // 24
  kXor,    // 25
  kAnd,    // 26
  kOr,     // 27
  kShl,    // 28
  kShr,    // 29

  kAddi,   // 30 dst imm32
  kSubi,   // 31
  kMuli,   // 32
  kDivi,   // 33
  kModi,   // 34
  kXori,   // 35
  kAndi,   // 36
  kOri,    // 37
  kShli,   // 38
  kShri,   // 39

  kLoadG,  // 3A dst abs32     load 8 bytes from absolute address
  kStoreG, // 3B src abs32     store 8 bytes to absolute address
  kLoadR,  // 3C dst base disp32
  kStoreR, // 3D src base disp32

  kCmp,    // 40 a b
  kCmpi,   // 41 a imm32

  kJe,     // 50 rel32
  kJne,    // 51
  kJl,     // 52 (signed)
  kJge,    // 53
  kJg,     // 54
  kJle,    // 55

  kPush,   // 60 r
  kPop,    // 61 r

  kTrap,   // 72 imm8          software-defined trap (exploit payload fires)
};

/// Decoded instruction. `a`/`b` are register operands; `imm` holds the
/// immediate, displacement, absolute address, rel32, or trap code.
struct Instr {
  Op op = Op::kNop;
  u8 a = 0;
  u8 b = 0;
  i64 imm = 0;

  friend bool operator==(const Instr&, const Instr&) = default;
};

/// Encoded length in bytes of an instruction with this opcode.
size_t encoded_len(Op op);

/// Appends the encoding of `in` to `out`. Returns the encoded length.
size_t encode(const Instr& in, Bytes& out);

/// Decoded instruction plus its encoded length.
struct Decoded {
  Instr instr;
  size_t len = 0;
};

/// Decodes one instruction at the start of `code`.
Result<Decoded> decode(ByteSpan code);

/// True if the opcode is a rel32 control transfer (jmp/call/jcc); such
/// instructions carry their displacement in the 4 bytes after the first
/// opcode byte.
bool is_rel32_branch(Op op);

/// True for conditional branches (50..55).
bool is_cond_branch(Op op);

/// Mnemonic, e.g. "jmp" or "addi".
const char* op_name(Op op);

}  // namespace kshot::isa
