// Deterministic fault injection for the untrusted channel (threat model
// §III/§IV: every byte between the enclave and the outside world is relayed
// by a possibly hostile kernel and crosses an unreliable network).
//
// A FaultInjector is a Channel whose link loses, garbles, truncates,
// duplicates, reorders, or delays messages according to a seeded FaultPlan —
// per-message probabilities, scripted per-message faults, or both. The same
// seed always reproduces the same fault sequence, so any failing campaign
// run can be replayed exactly.
//
// Nothing here is trusted to preserve integrity (that is the crypto
// envelope's job); the injector exists so the resilience layer above it —
// RetryPolicy in src/core/retry.hpp and the transactional SMM sessions — can
// be exercised and regression-tested under hostile conditions.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "netsim/channel.hpp"

namespace kshot::netsim {

enum class FaultType : u8 {
  kNone = 0,
  kDrop,       // message never arrives (delivered as empty bytes)
  kCorrupt,    // 1..max_corrupt_bytes random bytes XOR-flipped
  kTruncate,   // delivered as a strict prefix of random length
  kDuplicate,  // a stale copy of the previous delivery arrives instead
  kReorder,    // swapped with the injector's one-slot holding buffer
  kDelay,      // delivered intact but with extra modeled latency
};

const char* fault_type_name(FaultType t);

/// Independent per-message fault probabilities in [0, 1]. At most one fault
/// fires per message (a single uniform draw against the cumulative rates),
/// so the sum should stay <= 1.
struct FaultRates {
  double drop = 0;
  double corrupt = 0;
  double truncate = 0;
  double duplicate = 0;
  double reorder = 0;
  double delay = 0;

  [[nodiscard]] double total() const {
    return drop + corrupt + truncate + duplicate + reorder + delay;
  }
};

/// A fault pinned to one message index (0-based, in transfer order).
/// Scripted faults take precedence over the probabilistic rates.
struct ScriptedFault {
  u64 message_index = 0;
  FaultType type = FaultType::kNone;
};

struct FaultPlan {
  FaultRates rates;
  std::vector<ScriptedFault> script;
  u32 max_corrupt_bytes = 4;      // kCorrupt flips 1..this many bytes
  double extra_delay_us = 500.0;  // latency added by kDelay
  double drop_timeout_us = 0.0;   // extra latency charged for a kDrop

  /// Every message faces `rate` probability of exactly fault `t`.
  static FaultPlan uniform(FaultType t, double rate);
};

struct FaultStats {
  u64 drops = 0;
  u64 corruptions = 0;
  u64 truncations = 0;
  u64 duplicates = 0;
  u64 reorders = 0;
  u64 delays = 0;

  [[nodiscard]] u64 total() const {
    return drops + corruptions + truncations + duplicates + reorders + delays;
  }
};

class FaultInjector final : public Channel {
 public:
  explicit FaultInjector(FaultPlan plan, u64 seed, LinkModel model = {});

  /// Applies at most one fault, then moves the (possibly mutated) message
  /// across the underlying link (tamper hook + modeled latency as usual).
  Bytes transfer(Bytes message) override;

  /// Replaces the plan and reseeds: message index, reorder buffer, and
  /// duplicate memory reset so the run is reproducible from scratch.
  void reset(FaultPlan plan, u64 seed);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const FaultStats& fault_stats() const { return stats_; }
  /// Messages seen so far (== the index the next message will get).
  [[nodiscard]] u64 message_index() const { return index_; }

  /// Adapts this injector into a Channel::Tamperer so the same fault model
  /// can disturb byte streams that are not network messages — e.g. the
  /// sealed blobs the untrusted helper app writes into mem_W. Latency
  /// modeled on those "messages" is meaningless and ignored by callers.
  Tamperer as_tamperer();

 private:
  FaultType pick_fault(u64 index);

  FaultPlan plan_;
  Rng rng_;
  FaultStats stats_;
  Bytes held_;            // one-slot reorder buffer (kReorder swaps with it)
  Bytes last_delivered_;  // source for kDuplicate's stale copy
  u64 index_ = 0;
};

}  // namespace kshot::netsim
