// The remote, trusted patch server (paper §IV-A / §V-A "Binary Patch
// Preparation"). Holds pre- and post-patch kernel *sources*, rebuilds the
// target's exact binary image from the OsInfo the target sends (verifying
// the measurement so the diff is meaningful), runs the patch toolchain, and
// ships the resulting package sealed under an attested DH session key.
#pragma once

#include <map>
#include <optional>

#include "kcc/compiler.hpp"
#include "netsim/protocol.hpp"
#include "patchtool/bindiff.hpp"

namespace kshot::netsim {

/// One patch known to the server.
struct PatchSource {
  std::string id;              // e.g. "CVE-2017-17806"
  std::string kernel_version;  // version the patch applies to
  std::string pre_source;      // vulnerable kernel source
  std::string post_source;     // fixed kernel source
};

class PatchServer {
 public:
  /// `attestation_verifier` models the provisioned SGX attestation
  /// infrastructure; `key_seed` seeds the server's ephemeral DH keys.
  PatchServer(const sgx::SgxRuntime* attestation_verifier, u64 key_seed);

  void add_patch(PatchSource src);
  [[nodiscard]] bool has_patch(const std::string& id) const;

  /// Full request handling: attestation check, compatibility check (rebuild
  /// pre image from OsInfo and compare measurements), patch-set
  /// construction, and sealing. Input/output are raw wire bytes, so a
  /// Channel (with its tamper hook) can sit in between.
  Result<Bytes> handle_request(ByteSpan request_wire);

  /// Builds the unsealed patch set for a patch id + target info (exposed for
  /// tests and for the baseline patchers, which consume plain patch sets).
  Result<patchtool::PatchSet> build_patchset(const std::string& id,
                                             const kernel::OsInfo& os) const;

  /// Compiles the *pre* (vulnerable) kernel image for a patch id — the image
  /// a target machine boots in experiments.
  Result<kcc::KernelImage> build_pre_image(const std::string& id,
                                           const kcc::CompileOptions& o) const;
  Result<kcc::KernelImage> build_post_image(const std::string& id,
                                            const kcc::CompileOptions& o) const;

  /// Number of requests that failed attestation or compatibility checks.
  [[nodiscard]] u64 rejected_requests() const { return rejected_; }

 private:
  [[nodiscard]] kcc::CompileOptions options_for(const kernel::OsInfo& os,
                                                const std::string& ver) const;

  const sgx::SgxRuntime* verifier_;
  Rng rng_;
  std::map<std::string, PatchSource> patches_;
  /// Build cache keyed by patch id + target measurement: repeated requests
  /// for the same target skip the double kernel rebuild.
  mutable std::map<std::string, patchtool::PatchSet> build_cache_;
  u64 rejected_ = 0;
};

}  // namespace kshot::netsim
