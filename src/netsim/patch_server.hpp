// The remote, trusted patch server (paper §IV-A / §V-A "Binary Patch
// Preparation"). Holds pre- and post-patch kernel *sources*, rebuilds the
// target's exact binary image from the OsInfo the target sends (verifying
// the measurement so the diff is meaningful), runs the patch toolchain, and
// ships the resulting package sealed under an attested DH session key.
//
// Locking contract: a PatchServer may be shared by any number of threads
// (one fleet target per thread is the intended shape — see src/fleet/).
// Every public method is safe to call concurrently. Internally a single
// mutex `mu_` guards all mutable state: the patch table, the verifier list,
// the ephemeral DH/session RNG, the rejection counter, and the two
// single-flight build caches. The expensive compile/diff work itself runs
// *outside* the lock: the first caller for a cache key publishes a
// std::shared_future under the lock and computes the value lock-free;
// concurrent callers for the same key block on that future (counted as
// hits), so each distinct build happens exactly once per fleet regardless
// of how many targets race for it. No public method calls back into user
// code while holding `mu_`.
#pragma once

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "kcc/compiler.hpp"
#include "netsim/protocol.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "patchtool/bindiff.hpp"

namespace kshot::netsim {

/// One patch known to the server.
struct PatchSource {
  std::string id;              // e.g. "CVE-2017-17806"
  std::string kernel_version;  // version the patch applies to
  std::string pre_source;      // vulnerable kernel source
  std::string post_source;     // fixed kernel source
};

/// Hit/miss counters for the two server-side build caches. A "hit" includes
/// a caller that arrived while the build was still in flight and waited for
/// it; a "miss" is the one caller that actually ran the compile pipeline.
struct BuildCacheStats {
  u64 patchset_hits = 0;
  u64 patchset_misses = 0;
  u64 image_hits = 0;
  u64 image_misses = 0;

  [[nodiscard]] double patchset_hit_rate() const {
    u64 total = patchset_hits + patchset_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(patchset_hits) /
                            static_cast<double>(total);
  }
};

class PatchServer {
 public:
  /// `attestation_verifier` models the provisioned SGX attestation
  /// infrastructure; `key_seed` seeds the server's ephemeral DH keys. Pass
  /// nullptr when every platform registers via add_verifier() instead.
  /// `metrics` backs the request/cache counters; null means a private
  /// registry.
  PatchServer(const sgx::SgxRuntime* attestation_verifier, u64 key_seed,
              obs::MetricsRegistry* metrics = nullptr);

  /// Emits request/compile spans and cache hit/miss instants into `trace`
  /// under the shared (non-per-target) pid. The server lives outside any
  /// simulated machine, so its events carry virtual timestamp 0 and order
  /// deterministically only after obs::canonicalize(). Set before the fleet
  /// starts; the recorder itself is thread-safe.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

  /// Registers an additional platform whose attestation reports this server
  /// accepts (the attestation service knows each provisioned platform key).
  /// Used by fleet deployments where many targets share one server.
  void add_verifier(const sgx::SgxRuntime* verifier);

  /// Idempotent: re-adding an id keeps the first registration, so fleet
  /// targets can all announce the same patch without invalidating caches.
  void add_patch(PatchSource src);
  [[nodiscard]] bool has_patch(const std::string& id) const;

  /// Full request handling: attestation check, compatibility check (rebuild
  /// pre image from OsInfo and compare measurements), patch-set
  /// construction, and sealing. Input/output are raw wire bytes, so a
  /// Channel (with its tamper hook) can sit in between.
  Result<Bytes> handle_request(ByteSpan request_wire);

  /// Builds the unsealed patch set for a patch id + target info (exposed for
  /// tests and for the baseline patchers, which consume plain patch sets).
  /// Cached under (patch id, kernel version, compile options, measurement);
  /// the compile/diff pipeline runs once per distinct key.
  Result<patchtool::PatchSet> build_patchset(const std::string& id,
                                             const kernel::OsInfo& os) const;

  /// Compiles the *pre* (vulnerable) kernel image for a patch id — the image
  /// a target machine boots in experiments. Cached under (patch id, side,
  /// compile options), so a fleet of identical targets compiles it once.
  Result<kcc::KernelImage> build_pre_image(const std::string& id,
                                           const kcc::CompileOptions& o) const;
  Result<kcc::KernelImage> build_post_image(const std::string& id,
                                            const kcc::CompileOptions& o) const;

  /// Number of requests that failed attestation or compatibility checks.
  [[nodiscard]] u64 rejected_requests() const;

  /// Snapshot of the build-cache counters (consistent, but immediately
  /// stale under concurrency — read it after the fleet quiesces).
  [[nodiscard]] BuildCacheStats cache_stats() const;

  /// Worker-pool width for the bindiff/matcher stage of patch-set builds.
  /// The built patch set is identical for any value (deterministic merge).
  void set_prep_jobs(u32 jobs);

  /// Function-normalization prep-cache counters ("server.prep_hits" /
  /// "server.prep_misses"). Hits accumulate whenever two builds — across
  /// CVEs, kernel versions, or pre/post sides — share a function body and
  /// reloc context.
  [[nodiscard]] u64 prep_hits() const { return prep_cache_.hits(); }
  [[nodiscard]] u64 prep_misses() const { return prep_cache_.misses(); }

 private:
  [[nodiscard]] kcc::CompileOptions options_for(const kernel::OsInfo& os,
                                                const std::string& ver) const;
  /// Single-flight compile of one side of a patch's kernel source.
  Result<kcc::KernelImage> image_for(const std::string& id, bool post,
                                     const kcc::CompileOptions& o) const;
  /// patches_ lookup under the lock; copy out so callers hold no reference.
  Result<PatchSource> find_source(const std::string& id) const;

  mutable std::mutex mu_;
  std::vector<const sgx::SgxRuntime*> verifiers_;
  Rng rng_;
  std::map<std::string, PatchSource> patches_;
  /// Single-flight caches: the future is published under mu_, the build
  /// runs outside it, and late arrivals wait on the shared state.
  mutable std::map<std::string,
                   std::shared_future<Result<patchtool::PatchSet>>>
      patchset_cache_;
  mutable std::map<std::string, std::shared_future<Result<kcc::KernelImage>>>
      image_cache_;
  /// Content-addressed normalization cache shared by every patch-set build
  /// this server runs (thread-safe internally; not guarded by mu_).
  mutable patchtool::PrepCache prep_cache_;
  u32 prep_jobs_ = 1;

  // Observability. Counters live in the registry ("server.*" namespace);
  // BuildCacheStats/rejected_requests() are derived views over them.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* c_patchset_hits_ = nullptr;
  obs::Counter* c_patchset_misses_ = nullptr;
  obs::Counter* c_image_hits_ = nullptr;
  obs::Counter* c_image_misses_ = nullptr;
  obs::Counter* c_rejected_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
};

}  // namespace kshot::netsim
