#include "netsim/faults.hpp"

#include <algorithm>
#include <utility>

namespace kshot::netsim {

const char* fault_type_name(FaultType t) {
  switch (t) {
    case FaultType::kNone:
      return "none";
    case FaultType::kDrop:
      return "drop";
    case FaultType::kCorrupt:
      return "corrupt";
    case FaultType::kTruncate:
      return "truncate";
    case FaultType::kDuplicate:
      return "duplicate";
    case FaultType::kReorder:
      return "reorder";
    case FaultType::kDelay:
      return "delay";
  }
  return "?";
}

FaultPlan FaultPlan::uniform(FaultType t, double rate) {
  FaultPlan plan;
  switch (t) {
    case FaultType::kNone:
      break;
    case FaultType::kDrop:
      plan.rates.drop = rate;
      break;
    case FaultType::kCorrupt:
      plan.rates.corrupt = rate;
      break;
    case FaultType::kTruncate:
      plan.rates.truncate = rate;
      break;
    case FaultType::kDuplicate:
      plan.rates.duplicate = rate;
      break;
    case FaultType::kReorder:
      plan.rates.reorder = rate;
      break;
    case FaultType::kDelay:
      plan.rates.delay = rate;
      break;
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, u64 seed, LinkModel model)
    : Channel(model), plan_(std::move(plan)), rng_(seed) {}

void FaultInjector::reset(FaultPlan plan, u64 seed) {
  plan_ = std::move(plan);
  rng_.reseed(seed);
  stats_ = {};
  held_.clear();
  last_delivered_.clear();
  index_ = 0;
}

FaultType FaultInjector::pick_fault(u64 index) {
  for (const auto& s : plan_.script) {
    if (s.message_index == index) return s.type;
  }
  // One draw against the cumulative rates: at most one fault per message.
  double u = static_cast<double>(rng_.next() >> 11) * 0x1.0p-53;
  const FaultRates& r = plan_.rates;
  if ((u -= r.drop) < 0) return FaultType::kDrop;
  if ((u -= r.corrupt) < 0) return FaultType::kCorrupt;
  if ((u -= r.truncate) < 0) return FaultType::kTruncate;
  if ((u -= r.duplicate) < 0) return FaultType::kDuplicate;
  if ((u -= r.reorder) < 0) return FaultType::kReorder;
  if ((u -= r.delay) < 0) return FaultType::kDelay;
  return FaultType::kNone;
}

Bytes FaultInjector::transfer(Bytes message) {
  FaultType fault = pick_fault(index_++);
  double extra_us = 0;

  switch (fault) {
    case FaultType::kNone:
      break;
    case FaultType::kDrop:
      ++stats_.drops;
      message.clear();
      extra_us = plan_.drop_timeout_us;
      break;
    case FaultType::kCorrupt: {
      ++stats_.corruptions;
      if (!message.empty()) {
        u64 flips = 1 + rng_.next_below(std::max<u32>(1, plan_.max_corrupt_bytes));
        for (u64 i = 0; i < flips; ++i) {
          message[rng_.next_below(message.size())] ^=
              static_cast<u8>(1 + rng_.next_below(255));
        }
      }
      break;
    }
    case FaultType::kTruncate:
      ++stats_.truncations;
      if (!message.empty()) message.resize(rng_.next_below(message.size()));
      break;
    case FaultType::kDuplicate:
      // A stale duplicate of the previous delivery arrives in this slot
      // (empty if nothing was delivered yet — indistinguishable from a drop).
      ++stats_.duplicates;
      message = last_delivered_;
      break;
    case FaultType::kReorder:
      // Swap with the one-slot holding buffer: the current message stays in
      // flight and whatever was held (nothing, on the first reorder) arrives
      // in its place. A later reorder releases it, stale.
      ++stats_.reorders;
      std::swap(held_, message);
      break;
    case FaultType::kDelay:
      ++stats_.delays;
      extra_us = plan_.extra_delay_us;
      break;
  }

  Bytes delivered = Channel::transfer(std::move(message));
  if (extra_us > 0) add_latency(extra_us);
  last_delivered_ = delivered;
  return delivered;
}

Channel::Tamperer FaultInjector::as_tamperer() {
  return [this](Bytes& b) { b = transfer(std::move(b)); };
}

}  // namespace kshot::netsim
