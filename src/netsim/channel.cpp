#include "netsim/channel.hpp"

namespace kshot::netsim {

Bytes Channel::transfer(Bytes message) {
  if (tamperer_) tamperer_(message);
  last_latency_us_ = model_.fixed_latency_us +
                     static_cast<double>(message.size()) / model_.bytes_per_us;
  total_latency_us_ += last_latency_us_;
  ++messages_;
  bytes_moved_ += message.size();
  return message;
}

}  // namespace kshot::netsim
