// Simulated network channel between the target machine and the remote patch
// server. Models transfer latency (for the "Fetching" column of Table II)
// and exposes a tamper hook so tests can mount man-in-the-middle attacks.
// The channel is *untrusted*: nothing here provides integrity — that is the
// job of the crypto envelope above it.
#pragma once

#include <functional>

#include "common/status.hpp"
#include "common/types.hpp"

namespace kshot::netsim {

class Channel {
 public:
  /// Hook invoked on every message in flight; may mutate or observe bytes.
  using Tamperer = std::function<void(Bytes&)>;

  struct LinkModel {
    double fixed_latency_us = 40.0;  // per-message RTT share
    double bytes_per_us = 50.0;      // ~50 MB/s, fits Table II's fetch column
  };

  Channel() = default;
  explicit Channel(LinkModel model) : model_(model) {}
  virtual ~Channel() = default;

  void set_tamperer(Tamperer t) { tamperer_ = std::move(t); }
  void clear_tamperer() { tamperer_ = nullptr; }

  /// Moves a message across the link: applies the tamper hook and accrues
  /// modeled latency. Virtual so lossy-link models (see faults.hpp) can
  /// garble, drop, or delay messages before they reach the other end.
  virtual Bytes transfer(Bytes message);

  /// Modeled latency of the last transfer, in microseconds.
  [[nodiscard]] double last_latency_us() const { return last_latency_us_; }
  [[nodiscard]] double total_latency_us() const { return total_latency_us_; }
  [[nodiscard]] u64 messages() const { return messages_; }
  [[nodiscard]] u64 bytes_moved() const { return bytes_moved_; }

 protected:
  /// Extra modeled latency accrued by subclasses (fault delays, timeouts).
  void add_latency(double us) {
    last_latency_us_ += us;
    total_latency_us_ += us;
  }

 private:
  LinkModel model_;
  Tamperer tamperer_;
  double last_latency_us_ = 0;
  double total_latency_us_ = 0;
  u64 messages_ = 0;
  u64 bytes_moved_ = 0;
};

}  // namespace kshot::netsim
