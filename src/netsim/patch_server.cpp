#include "netsim/patch_server.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/hex.hpp"
#include "common/log.hpp"
#include "kcc/parser.hpp"
#include "patchtool/callgraph.hpp"
#include "patchtool/package.hpp"

namespace kshot::netsim {

namespace {

// Every field of CompileOptions goes into the cache key: two targets whose
// builds differ in any way must never share an image or patch set.
std::string options_key(const kcc::CompileOptions& o) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%llx:%llx:%d%d%d:",
                static_cast<unsigned long long>(o.text_base),
                static_cast<unsigned long long>(o.data_base),
                o.enable_inlining ? 1 : 0, o.enable_ftrace ? 1 : 0,
                o.enable_constfold ? 1 : 0);
  return std::string(buf) + o.version;
}

}  // namespace

PatchServer::PatchServer(const sgx::SgxRuntime* attestation_verifier,
                         u64 key_seed, obs::MetricsRegistry* metrics)
    : rng_(key_seed), metrics_(metrics) {
  if (attestation_verifier != nullptr) {
    verifiers_.push_back(attestation_verifier);
  }
  if (!metrics_) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  c_patchset_hits_ = &metrics_->counter("server.patchset_hits");
  c_patchset_misses_ = &metrics_->counter("server.patchset_misses");
  c_image_hits_ = &metrics_->counter("server.image_hits");
  c_image_misses_ = &metrics_->counter("server.image_misses");
  c_rejected_ = &metrics_->counter("server.rejected");
  prep_cache_.set_counters(&metrics_->counter("server.prep_hits"),
                           &metrics_->counter("server.prep_misses"));
}

void PatchServer::set_prep_jobs(u32 jobs) {
  std::lock_guard<std::mutex> lock(mu_);
  prep_jobs_ = std::max<u32>(1, jobs);
}

void PatchServer::add_verifier(const sgx::SgxRuntime* verifier) {
  if (verifier == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto* v : verifiers_) {
    if (v == verifier) return;
  }
  verifiers_.push_back(verifier);
}

void PatchServer::add_patch(PatchSource src) {
  std::lock_guard<std::mutex> lock(mu_);
  patches_.emplace(src.id, std::move(src));  // first registration wins
}

bool PatchServer::has_patch(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return patches_.count(id) > 0;
}

u64 PatchServer::rejected_requests() const { return c_rejected_->value(); }

BuildCacheStats PatchServer::cache_stats() const {
  BuildCacheStats s;
  s.patchset_hits = c_patchset_hits_->value();
  s.patchset_misses = c_patchset_misses_->value();
  s.image_hits = c_image_hits_->value();
  s.image_misses = c_image_misses_->value();
  return s;
}

Result<PatchSource> PatchServer::find_source(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = patches_.find(id);
  if (it == patches_.end()) return Status{Errc::kNotFound, "unknown patch"};
  return it->second;
}

kcc::CompileOptions PatchServer::options_for(const kernel::OsInfo& os,
                                             const std::string& ver) const {
  kcc::CompileOptions opts;
  opts.text_base = os.text_base;
  opts.data_base = os.data_base;
  opts.enable_ftrace = os.ftrace;
  opts.enable_inlining = true;
  opts.version = ver;
  return opts;
}

Result<kcc::KernelImage> PatchServer::image_for(
    const std::string& id, bool post, const kcc::CompileOptions& o) const {
  auto src = find_source(id);
  if (!src) return src.status();

  std::string key =
      id + (post ? ":post:" : ":pre:") + options_key(o);
  std::promise<Result<kcc::KernelImage>> promise;
  std::shared_future<Result<kcc::KernelImage>> fut;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = image_cache_.find(key);
    if (it != image_cache_.end()) {
      c_image_hits_->inc();
      fut = it->second;
    } else {
      c_image_misses_->inc();
      builder = true;
      fut = promise.get_future().share();
      image_cache_.emplace(key, fut);
    }
  }
  if (trace_) {
    trace_->instant("netsim", builder ? "image_cache_miss" : "image_cache_hit",
                    obs::kSharedTarget, 0, {{"key", key}});
  }
  if (builder) {
    auto t0 = std::chrono::steady_clock::now();
    promise.set_value(kcc::compile_source(
        post ? src->post_source : src->pre_source, o));
    if (trace_) {
      double wall_us = std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      trace_->complete("netsim", "compile", obs::kSharedTarget, 0, 0, wall_us,
                       {{"key", key}});
    }
  }
  return fut.get();
}

Result<kcc::KernelImage> PatchServer::build_pre_image(
    const std::string& id, const kcc::CompileOptions& o) const {
  return image_for(id, /*post=*/false, o);
}

Result<kcc::KernelImage> PatchServer::build_post_image(
    const std::string& id, const kcc::CompileOptions& o) const {
  return image_for(id, /*post=*/true, o);
}

Result<patchtool::PatchSet> PatchServer::build_patchset(
    const std::string& id, const kernel::OsInfo& os) const {
  auto src = find_source(id);
  if (!src) return src.status();

  kcc::CompileOptions opts = options_for(os, src->kernel_version);
  std::string key = id + ":" + src->kernel_version + ":" + options_key(opts) +
                    ":" +
                    to_hex(ByteSpan(os.measurement.data(),
                                    os.measurement.size()));
  std::promise<Result<patchtool::PatchSet>> promise;
  std::shared_future<Result<patchtool::PatchSet>> fut;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = patchset_cache_.find(key);
    if (it != patchset_cache_.end()) {
      c_patchset_hits_->inc();
      fut = it->second;
    } else {
      c_patchset_misses_->inc();
      builder = true;
      fut = promise.get_future().share();
      patchset_cache_.emplace(key, fut);
    }
  }
  if (trace_) {
    trace_->instant("netsim",
                    builder ? "patchset_cache_miss" : "patchset_cache_hit",
                    obs::kSharedTarget, 0, {{"key", key}});
  }
  if (!builder) return fut.get();

  auto build = [&]() -> Result<patchtool::PatchSet> {
    auto pre = image_for(id, /*post=*/false, opts);
    if (!pre) return pre.status();
    auto post = image_for(id, /*post=*/true, opts);
    if (!post) return post.status();

    // Compatibility: the rebuilt pre image must be the binary the target
    // runs.
    if (!crypto::digest_equal(pre->measurement(), os.measurement)) {
      return Status{Errc::kFailedPrecondition,
                    "target kernel does not match server rebuild (version/"
                    "config drift)"};
    }

    auto pre_mod = kcc::parse(src->pre_source);
    if (!pre_mod) return pre_mod.status();
    auto post_mod = kcc::parse(src->post_source);
    if (!post_mod) return post_mod.status();

    patchtool::BuildPatchOptions bopts;
    bopts.id = id;
    auto changed = patchtool::source_changed_functions(*pre_mod, *post_mod);
    bopts.source_changed.assign(changed.begin(), changed.end());
    {
      std::lock_guard<std::mutex> lock(mu_);
      bopts.jobs = prep_jobs_;
    }
    bopts.prep_cache = &prep_cache_;

    return patchtool::build_patchset(*pre, *post, bopts);
  };
  promise.set_value(build());
  return fut.get();
}

Result<Bytes> PatchServer::handle_request(ByteSpan request_wire) {
  auto reject = [this](Status why) -> Result<Bytes> {
    c_rejected_->inc();
    if (trace_) {
      trace_->instant("netsim", "request_rejected", obs::kSharedTarget, 0,
                      {{"why", std::string(why.message())}});
    }
    return why;
  };
  metrics_->counter("server.requests").inc();
  auto req_t0 = std::chrono::steady_clock::now();

  auto req_r = PatchRequest::deserialize(request_wire);
  if (!req_r) return reject(req_r.status());
  const PatchRequest& req = *req_r;

  // 1. Attestation: the report must verify against one of the provisioned
  //    platforms and must bind the DH key.
  std::vector<const sgx::SgxRuntime*> verifiers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    verifiers = verifiers_;
  }
  bool attested = false;
  for (const auto* v : verifiers) {
    if (v != nullptr && v->verify_report(req.attestation)) {
      attested = true;
      break;
    }
  }
  if (!attested) {
    return reject({Errc::kPermissionDenied, "enclave attestation failed"});
  }
  if (std::memcmp(req.attestation.report_data.data(), req.client_pub.data(),
                  req.client_pub.size()) != 0) {
    return reject({Errc::kPermissionDenied,
                   "attestation does not bind the session key"});
  }

  // 2. Build the patch set (single-flight cached across the fleet).
  auto set = build_patchset(req.patch_id, req.os);
  if (!set) return reject(set.status());
  patchtool::PatchOp op = req.op == PatchRequest::Op::kFetchRollback
                              ? patchtool::PatchOp::kRollback
                              : patchtool::PatchOp::kPatch;
  Bytes package = patchtool::serialize_patchset(*set, op);

  // 3. Seal under the DH session key. The RNG is shared mutable state, so
  //    the draw happens under the lock; which request gets which ephemeral
  //    key is scheduling-dependent, but every key works for every client.
  crypto::DhKeyPair server_keys;
  crypto::Nonce96 nonce{};
  {
    std::lock_guard<std::mutex> lock(mu_);
    server_keys = crypto::dh_generate(rng_);
    rng_.fill(MutByteSpan(nonce.data(), nonce.size()));
  }
  crypto::X25519Key shared =
      crypto::dh_shared(server_keys.private_key, req.client_pub);
  crypto::Key256 session = crypto::derive_key(
      ByteSpan(shared.data(), shared.size()), "server-enclave");

  PatchResponse resp;
  resp.server_pub = server_keys.public_key;
  resp.sealed_package = crypto::seal(session, nonce, package).serialize();

  KSHOT_LOG(kInfo, "server") << "served " << req.patch_id << " ("
                             << package.size() << " bytes, "
                             << set->patches.size() << " functions)";
  if (trace_) {
    double wall_us = std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - req_t0)
                         .count();
    trace_->complete("netsim", "handle_request", obs::kSharedTarget, 0, 0,
                     wall_us, {{"id", req.patch_id}});
  }
  metrics_->histogram("server.package_bytes").observe(
      static_cast<double>(package.size()));
  return resp.serialize();
}

}  // namespace kshot::netsim
