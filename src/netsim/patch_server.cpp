#include "netsim/patch_server.hpp"

#include <cstring>

#include "common/log.hpp"
#include "kcc/parser.hpp"
#include "patchtool/callgraph.hpp"
#include "patchtool/package.hpp"

namespace kshot::netsim {

PatchServer::PatchServer(const sgx::SgxRuntime* attestation_verifier,
                         u64 key_seed)
    : verifier_(attestation_verifier), rng_(key_seed) {}

void PatchServer::add_patch(PatchSource src) {
  patches_[src.id] = std::move(src);
}

bool PatchServer::has_patch(const std::string& id) const {
  return patches_.count(id) > 0;
}

kcc::CompileOptions PatchServer::options_for(const kernel::OsInfo& os,
                                             const std::string& ver) const {
  kcc::CompileOptions opts;
  opts.text_base = os.text_base;
  opts.data_base = os.data_base;
  opts.enable_ftrace = os.ftrace;
  opts.enable_inlining = true;
  opts.version = ver;
  return opts;
}

Result<kcc::KernelImage> PatchServer::build_pre_image(
    const std::string& id, const kcc::CompileOptions& o) const {
  auto it = patches_.find(id);
  if (it == patches_.end()) return Status{Errc::kNotFound, "unknown patch"};
  return kcc::compile_source(it->second.pre_source, o);
}

Result<kcc::KernelImage> PatchServer::build_post_image(
    const std::string& id, const kcc::CompileOptions& o) const {
  auto it = patches_.find(id);
  if (it == patches_.end()) return Status{Errc::kNotFound, "unknown patch"};
  return kcc::compile_source(it->second.post_source, o);
}

Result<patchtool::PatchSet> PatchServer::build_patchset(
    const std::string& id, const kernel::OsInfo& os) const {
  auto it = patches_.find(id);
  if (it == patches_.end()) return Status{Errc::kNotFound, "unknown patch"};
  const PatchSource& src = it->second;

  std::string cache_key =
      id + ":" +
      std::string(reinterpret_cast<const char*>(os.measurement.data()),
                  os.measurement.size());
  auto cached = build_cache_.find(cache_key);
  if (cached != build_cache_.end()) return cached->second;

  kcc::CompileOptions opts = options_for(os, src.kernel_version);
  auto pre = kcc::compile_source(src.pre_source, opts);
  if (!pre) return pre.status();
  auto post = kcc::compile_source(src.post_source, opts);
  if (!post) return post.status();

  // Compatibility: the rebuilt pre image must be the binary the target runs.
  if (!crypto::digest_equal(pre->measurement(), os.measurement)) {
    return Status{Errc::kFailedPrecondition,
                  "target kernel does not match server rebuild (version/"
                  "config drift)"};
  }

  auto pre_mod = kcc::parse(src.pre_source);
  if (!pre_mod) return pre_mod.status();
  auto post_mod = kcc::parse(src.post_source);
  if (!post_mod) return post_mod.status();

  patchtool::BuildPatchOptions bopts;
  bopts.id = id;
  auto changed =
      patchtool::source_changed_functions(*pre_mod, *post_mod);
  bopts.source_changed.assign(changed.begin(), changed.end());

  auto set = patchtool::build_patchset(*pre, *post, bopts);
  if (set.is_ok()) build_cache_[cache_key] = *set;
  return set;
}

Result<Bytes> PatchServer::handle_request(ByteSpan request_wire) {
  auto req_r = PatchRequest::deserialize(request_wire);
  if (!req_r) {
    ++rejected_;
    return req_r.status();
  }
  const PatchRequest& req = *req_r;

  // 1. Attestation: the report must verify and must bind the DH key.
  if (verifier_ == nullptr || !verifier_->verify_report(req.attestation)) {
    ++rejected_;
    return Status{Errc::kPermissionDenied, "enclave attestation failed"};
  }
  if (std::memcmp(req.attestation.report_data.data(), req.client_pub.data(),
                  req.client_pub.size()) != 0) {
    ++rejected_;
    return Status{Errc::kPermissionDenied,
                  "attestation does not bind the session key"};
  }

  // 2. Build the patch set.
  auto set = build_patchset(req.patch_id, req.os);
  if (!set) {
    ++rejected_;
    return set.status();
  }
  patchtool::PatchOp op = req.op == PatchRequest::Op::kFetchRollback
                              ? patchtool::PatchOp::kRollback
                              : patchtool::PatchOp::kPatch;
  Bytes package = patchtool::serialize_patchset(*set, op);

  // 3. Seal under the DH session key.
  crypto::DhKeyPair server_keys = crypto::dh_generate(rng_);
  crypto::X25519Key shared =
      crypto::dh_shared(server_keys.private_key, req.client_pub);
  crypto::Key256 session = crypto::derive_key(
      ByteSpan(shared.data(), shared.size()), "server-enclave");
  crypto::Nonce96 nonce{};
  rng_.fill(MutByteSpan(nonce.data(), nonce.size()));

  PatchResponse resp;
  resp.server_pub = server_keys.public_key;
  resp.sealed_package = crypto::seal(session, nonce, package).serialize();

  KSHOT_LOG(kInfo, "server") << "served " << req.patch_id << " ("
                             << package.size() << " bytes, "
                             << set->patches.size() << " functions)";
  return resp.serialize();
}

}  // namespace kshot::netsim
