// Wire protocol between the target's SGX enclave and the remote patch
// server. The enclave attests itself (report bound to its ephemeral DH
// public key); the server verifies the report, derives the session key, and
// returns the patch package sealed under it.
#pragma once

#include "common/status.hpp"
#include "crypto/aead.hpp"
#include "crypto/x25519.hpp"
#include "kernel/kernel.hpp"
#include "sgx/sgx.hpp"

namespace kshot::netsim {

/// Request: who we are, which kernel we run, which patch we want.
struct PatchRequest {
  enum class Op : u8 { kFetchPatch = 1, kFetchRollback = 2 };

  Op op = Op::kFetchPatch;
  std::string patch_id;
  kernel::OsInfo os;
  sgx::Report attestation;          // report_data binds client_pub
  crypto::X25519Key client_pub{};

  Bytes serialize() const;
  static Result<PatchRequest> deserialize(ByteSpan wire);
};

struct PatchResponse {
  crypto::X25519Key server_pub{};
  Bytes sealed_package;  // crypto::SealedBox wire bytes

  Bytes serialize() const;
  static Result<PatchResponse> deserialize(ByteSpan wire);
};

/// Serialization helpers shared with OsInfo.
Bytes serialize_os_info(const kernel::OsInfo& info);
Result<kernel::OsInfo> deserialize_os_info(ByteSpan wire);

}  // namespace kshot::netsim
