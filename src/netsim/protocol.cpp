#include "netsim/protocol.hpp"

#include <cstring>

#include "common/byte_io.hpp"

namespace kshot::netsim {

namespace {

void put_string16(ByteWriter& w, const std::string& s) {
  // Truncate the payload to match the capped length header: writing the
  // full string under a capped header desynchronizes every field after it.
  w.put_u16(static_cast<u16>(std::min<size_t>(s.size(), 65535)));
  w.put_bytes(to_bytes(s.substr(0, 65535)));
}

Result<std::string> get_string16(ByteReader& r) {
  auto len = r.get_u16();
  if (!len) return len.status();
  auto bytes = r.get_bytes(*len);
  if (!bytes) return bytes.status();
  return std::string(bytes->begin(), bytes->end());
}

}  // namespace

Bytes serialize_os_info(const kernel::OsInfo& info) {
  ByteWriter w;
  put_string16(w, info.version);
  w.put_u64(info.text_base);
  w.put_u64(info.data_base);
  w.put_u8(info.ftrace ? 1 : 0);
  w.put_bytes(ByteSpan(info.measurement.data(), info.measurement.size()));
  return w.take();
}

Result<kernel::OsInfo> deserialize_os_info(ByteSpan wire) {
  ByteReader r(wire);
  kernel::OsInfo info;
  auto version = get_string16(r);
  if (!version) return version.status();
  info.version = std::move(*version);
  auto text = r.get_u64();
  auto data = r.get_u64();
  auto ftrace = r.get_u8();
  if (!text || !data || !ftrace) {
    return Status{Errc::kOutOfRange, "truncated OsInfo"};
  }
  info.text_base = *text;
  info.data_base = *data;
  info.ftrace = *ftrace != 0;
  auto digest = r.get_bytes(info.measurement.size());
  if (!digest) return digest.status();
  std::copy(digest->begin(), digest->end(), info.measurement.begin());
  if (!r.exhausted()) {
    return Status{Errc::kInvalidArgument, "trailing bytes after OsInfo"};
  }
  return info;
}

Bytes PatchRequest::serialize() const {
  ByteWriter w;
  w.put_u8(static_cast<u8>(op));
  put_string16(w, patch_id);
  Bytes os_bytes = serialize_os_info(os);
  w.put_u32(static_cast<u32>(os_bytes.size()));
  w.put_bytes(os_bytes);
  w.put_u16(attestation.enclave_id);
  w.put_bytes(ByteSpan(attestation.mrenclave.data(),
                       attestation.mrenclave.size()));
  w.put_bytes(ByteSpan(attestation.report_data.data(),
                       attestation.report_data.size()));
  w.put_bytes(ByteSpan(attestation.mac.data(), attestation.mac.size()));
  w.put_bytes(ByteSpan(client_pub.data(), client_pub.size()));
  return w.take();
}

Result<PatchRequest> PatchRequest::deserialize(ByteSpan wire) {
  ByteReader r(wire);
  PatchRequest req;
  auto op = r.get_u8();
  if (!op || (*op != 1 && *op != 2)) {
    return Status{Errc::kInvalidArgument, "bad request op"};
  }
  req.op = static_cast<Op>(*op);
  auto id = get_string16(r);
  if (!id) return id.status();
  req.patch_id = std::move(*id);
  auto os_len = r.get_u32();
  if (!os_len) return os_len.status();
  auto os_bytes = r.get_span(*os_len);
  if (!os_bytes) return os_bytes.status();
  auto os = deserialize_os_info(*os_bytes);
  if (!os) return os.status();
  req.os = std::move(*os);

  auto eid = r.get_u16();
  if (!eid) return eid.status();
  req.attestation.enclave_id = *eid;
  auto mr = r.get_bytes(32);
  auto rd = r.get_bytes(64);
  auto mac = r.get_bytes(32);
  auto pub = r.get_bytes(32);
  if (!mr || !rd || !mac || !pub) {
    return Status{Errc::kOutOfRange, "truncated request"};
  }
  std::copy(mr->begin(), mr->end(), req.attestation.mrenclave.begin());
  std::copy(rd->begin(), rd->end(), req.attestation.report_data.begin());
  std::copy(mac->begin(), mac->end(), req.attestation.mac.begin());
  std::copy(pub->begin(), pub->end(), req.client_pub.begin());
  if (!r.exhausted()) {
    // Fuzz-found: appended garbage used to parse as a valid request, so two
    // distinct wires named the same session — reject anything non-canonical.
    return Status{Errc::kInvalidArgument, "trailing bytes after request"};
  }
  return req;
}

Bytes PatchResponse::serialize() const {
  ByteWriter w;
  w.put_bytes(ByteSpan(server_pub.data(), server_pub.size()));
  w.put_u32(static_cast<u32>(sealed_package.size()));
  w.put_bytes(sealed_package);
  return w.take();
}

Result<PatchResponse> PatchResponse::deserialize(ByteSpan wire) {
  ByteReader r(wire);
  PatchResponse resp;
  auto pub = r.get_bytes(32);
  if (!pub) return pub.status();
  std::copy(pub->begin(), pub->end(), resp.server_pub.begin());
  auto len = r.get_u32();
  if (!len) return len.status();
  auto body = r.get_bytes(*len);
  if (!body) return body.status();
  resp.sealed_package = std::move(*body);
  if (!r.exhausted()) {
    return Status{Errc::kInvalidArgument, "trailing bytes after response"};
  }
  return resp;
}

}  // namespace kshot::netsim
