#include "crypto/chacha20.hpp"

#include <cstring>

#include "common/byte_io.hpp"

namespace kshot::crypto {

namespace {

inline u32 rotl(u32 x, int n) { return (x << n) | (x >> (32 - n)); }

inline void quarter_round(u32& a, u32& b, u32& c, u32& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

}  // namespace

void chacha20_block(const Key256& key, const Nonce96& nonce, u32 counter,
                    u8 out[64]) {
  u32 state[16];
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = load_u32(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load_u32(nonce.data() + 4 * i);

  u32 x[16];
  std::memcpy(x, state, sizeof(x));
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) store_u32(out + 4 * i, x[i] + state[i]);
}

void chacha20_xor(const Key256& key, const Nonce96& nonce, u32 counter,
                  MutByteSpan data) {
  u8 block[64];
  size_t off = 0;
  while (off < data.size()) {
    chacha20_block(key, nonce, counter++, block);
    size_t n = std::min(data.size() - off, size_t{64});
    for (size_t i = 0; i < n; ++i) data[off + i] ^= block[i];
    off += n;
  }
}

Bytes chacha20(const Key256& key, const Nonce96& nonce, u32 counter,
               ByteSpan data) {
  Bytes out(data.begin(), data.end());
  chacha20_xor(key, nonce, counter, MutByteSpan(out));
  return out;
}

}  // namespace kshot::crypto
