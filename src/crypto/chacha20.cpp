#include "crypto/chacha20.hpp"

#include <cstring>

#include "common/byte_io.hpp"
#include "crypto/simd.hpp"

namespace kshot::crypto {

namespace {

inline u32 rotl(u32 x, int n) { return (x << n) | (x >> (32 - n)); }

inline void quarter_round(u32& a, u32& b, u32& c, u32& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

inline void quarter_round4(u32x4& a, u32x4& b, u32x4& c, u32x4& d) {
  a = a + b; d = d ^ a; d = vrotl(d, 16);
  c = c + d; b = b ^ c; b = vrotl(b, 12);
  a = a + b; d = d ^ a; d = vrotl(d, 8);
  c = c + d; b = b ^ c; b = vrotl(b, 7);
}

void init_state(const Key256& key, const Nonce96& nonce, u32 counter,
                u32 state[16]) {
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = load_u32(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load_u32(nonce.data() + 4 * i);
}

/// Four consecutive blocks (counters c..c+3) in one vertical 4-lane pass:
/// lane b carries block c+b through all 20 rounds. The keystream is
/// bit-identical to four scalar chacha20_block calls.
void chacha20_xor4(const u32 state[16], u32 counter, u8* data) {
  u32x4 s[16];
  for (int i = 0; i < 16; ++i) s[i] = u32x4::splat(state[i]);
  s[12] = u32x4::make(counter, counter + 1, counter + 2, counter + 3);

  u32x4 x[16];
  for (int i = 0; i < 16; ++i) x[i] = s[i];
  for (int round = 0; round < 10; ++round) {
    quarter_round4(x[0], x[4], x[8], x[12]);
    quarter_round4(x[1], x[5], x[9], x[13]);
    quarter_round4(x[2], x[6], x[10], x[14]);
    quarter_round4(x[3], x[7], x[11], x[15]);
    quarter_round4(x[0], x[5], x[10], x[15]);
    quarter_round4(x[1], x[6], x[11], x[12]);
    quarter_round4(x[2], x[7], x[8], x[13]);
    quarter_round4(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) x[i] = x[i] + s[i];

  for (int b = 0; b < 4; ++b) {
    u8* block = data + 64 * b;
    for (int i = 0; i < 16; ++i) {
      u32 ks = x[i].lane(b);
      block[4 * i] ^= static_cast<u8>(ks);
      block[4 * i + 1] ^= static_cast<u8>(ks >> 8);
      block[4 * i + 2] ^= static_cast<u8>(ks >> 16);
      block[4 * i + 3] ^= static_cast<u8>(ks >> 24);
    }
  }
}

}  // namespace

void chacha20_block(const Key256& key, const Nonce96& nonce, u32 counter,
                    u8 out[64]) {
  u32 state[16];
  init_state(key, nonce, counter, state);

  u32 x[16];
  std::memcpy(x, state, sizeof(x));
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) store_u32(out + 4 * i, x[i] + state[i]);
}

void chacha20_xor(const Key256& key, const Nonce96& nonce, u32 counter,
                  MutByteSpan data) {
  size_t off = 0;
  if (simd_enabled() && data.size() >= 256) {
    u32 state[16];
    init_state(key, nonce, counter, state);
    while (data.size() - off >= 256) {
      chacha20_xor4(state, counter, data.data() + off);
      counter += 4;
      off += 256;
    }
  }
  u8 block[64];
  while (off < data.size()) {
    chacha20_block(key, nonce, counter++, block);
    size_t n = std::min(data.size() - off, size_t{64});
    for (size_t i = 0; i < n; ++i) data[off + i] ^= block[i];
    off += n;
  }
}

Bytes chacha20(const Key256& key, const Nonce96& nonce, u32 counter,
               ByteSpan data) {
  Bytes out(data.begin(), data.end());
  chacha20_xor(key, nonce, counter, MutByteSpan(out));
  return out;
}

}  // namespace kshot::crypto
