// ChaCha20 stream cipher (RFC 8439). Encrypts the binary patch in transit
// (patch server -> enclave) and at rest in mem_W (enclave -> SMM handler).
#pragma once

#include <array>

#include "common/types.hpp"

namespace kshot::crypto {

using Key256 = std::array<u8, 32>;
using Nonce96 = std::array<u8, 12>;

/// XORs the keystream into `data` in place (encrypt == decrypt).
void chacha20_xor(const Key256& key, const Nonce96& nonce, u32 counter,
                  MutByteSpan data);

/// Copying convenience.
Bytes chacha20(const Key256& key, const Nonce96& nonce, u32 counter,
               ByteSpan data);

/// Raw ChaCha20 block function — exposed for tests against RFC vectors.
void chacha20_block(const Key256& key, const Nonce96& nonce, u32 counter,
                    u8 out[64]);

}  // namespace kshot::crypto
