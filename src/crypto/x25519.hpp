// X25519 Diffie-Hellman (RFC 7748), implemented from the specification with
// 51-bit limbs. This is the DH key exchange the paper runs between the SGX
// enclave and the SMM handler (§V-B/§V-C); the key is regenerated before each
// patch to defeat replay.
#pragma once

#include <array>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace kshot::crypto {

using X25519Key = std::array<u8, 32>;

/// scalar * point on Curve25519 (u-coordinate form).
X25519Key x25519(const X25519Key& scalar, const X25519Key& point);

/// scalar * base point (u = 9).
X25519Key x25519_base(const X25519Key& scalar);

/// A DH key pair: clamped private scalar + public u-coordinate.
struct DhKeyPair {
  X25519Key private_key;
  X25519Key public_key;
};

/// Generates a fresh key pair from the given entropy source.
DhKeyPair dh_generate(Rng& rng);

/// Computes the shared secret (other party's public * own private).
X25519Key dh_shared(const X25519Key& private_key, const X25519Key& peer_public);

}  // namespace kshot::crypto
