// Portable 4-lane 32-bit SIMD abstraction backing the crypto hot paths
// (SHA-256 message schedule, ChaCha20 4-block keystream). Uses GNU vector
// extensions where the compiler provides them and a plain scalar array
// otherwise; both produce bit-identical results, and a process-wide runtime
// toggle lets tests and CI exercise the scalar fallback explicitly.
#pragma once

#include <atomic>

#include "common/types.hpp"

namespace kshot::crypto {

#if defined(__GNUC__) || defined(__clang__)
#define KSHOT_SIMD_NATIVE 1
#endif

/// Four u32 lanes with element-wise arithmetic. Wraparound (mod 2^32) adds
/// and logical shifts, exactly like scalar u32 — so vectorized kernels are
/// identical-by-construction to their scalar references.
struct u32x4 {
#ifdef KSHOT_SIMD_NATIVE
  using Lanes = u32 __attribute__((vector_size(16)));
#else
  struct Lanes {
    u32 l[4];
  };
#endif
  Lanes v;

  static u32x4 splat(u32 x) {
#ifdef KSHOT_SIMD_NATIVE
    return {Lanes{x, x, x, x}};
#else
    return {Lanes{{x, x, x, x}}};
#endif
  }
  static u32x4 make(u32 a, u32 b, u32 c, u32 d) {
#ifdef KSHOT_SIMD_NATIVE
    return {Lanes{a, b, c, d}};
#else
    return {Lanes{{a, b, c, d}}};
#endif
  }
  [[nodiscard]] u32 lane(int i) const {
#ifdef KSHOT_SIMD_NATIVE
    return v[i];
#else
    return v.l[i];
#endif
  }
};

#ifdef KSHOT_SIMD_NATIVE

inline u32x4 operator+(u32x4 a, u32x4 b) { return {a.v + b.v}; }
inline u32x4 operator^(u32x4 a, u32x4 b) { return {a.v ^ b.v}; }
inline u32x4 operator|(u32x4 a, u32x4 b) { return {a.v | b.v}; }
inline u32x4 vshl(u32x4 x, int n) { return {x.v << n}; }
inline u32x4 vshr(u32x4 x, int n) { return {x.v >> n}; }

#else

inline u32x4 operator+(u32x4 a, u32x4 b) {
  u32x4 r;
  for (int i = 0; i < 4; ++i) r.v.l[i] = a.v.l[i] + b.v.l[i];
  return r;
}
inline u32x4 operator^(u32x4 a, u32x4 b) {
  u32x4 r;
  for (int i = 0; i < 4; ++i) r.v.l[i] = a.v.l[i] ^ b.v.l[i];
  return r;
}
inline u32x4 operator|(u32x4 a, u32x4 b) {
  u32x4 r;
  for (int i = 0; i < 4; ++i) r.v.l[i] = a.v.l[i] | b.v.l[i];
  return r;
}
inline u32x4 vshl(u32x4 x, int n) {
  u32x4 r;
  for (int i = 0; i < 4; ++i) r.v.l[i] = x.v.l[i] << n;
  return r;
}
inline u32x4 vshr(u32x4 x, int n) {
  u32x4 r;
  for (int i = 0; i < 4; ++i) r.v.l[i] = x.v.l[i] >> n;
  return r;
}

#endif  // KSHOT_SIMD_NATIVE

inline u32x4 vrotl(u32x4 x, int n) { return vshl(x, n) | vshr(x, 32 - n); }
inline u32x4 vrotr(u32x4 x, int n) { return vrotl(x, 32 - n); }

// ---- Runtime toggle ----------------------------------------------------------
//
// Default on. The scalar reference stays compiled in as the fallback; tests
// flip this to prove both paths agree on every vector and length.

inline std::atomic<bool>& simd_toggle() {
  static std::atomic<bool> enabled{true};
  return enabled;
}
inline bool simd_enabled() {
  return simd_toggle().load(std::memory_order_relaxed);
}
inline void set_simd_enabled(bool on) {
  simd_toggle().store(on, std::memory_order_relaxed);
}

}  // namespace kshot::crypto
