// Authenticated encryption envelope: ChaCha20 + HMAC-SHA256
// (encrypt-then-MAC). Wraps the patch package for the server->enclave channel
// and the enclave->SMM shared-memory handoff.
#pragma once

#include "common/status.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"

namespace kshot::crypto {

/// Wire layout: nonce(12) || ciphertext || mac(32).
struct SealedBox {
  Nonce96 nonce;
  Bytes ciphertext;
  Digest256 mac;

  Bytes serialize() const;
  static Result<SealedBox> deserialize(ByteSpan wire);
};

/// Seals plaintext under (enc = key, mac = HMAC(key || "mac")).
SealedBox seal(const Key256& key, const Nonce96& nonce, ByteSpan plaintext);

/// Opens a box; fails with kIntegrityFailure if the MAC does not verify.
Result<Bytes> open(const Key256& key, const SealedBox& box);

/// Zero-copy mirror of SealedBox: the ciphertext stays a mutable borrowed
/// span over the serialized wire so open_in_place can decrypt without a
/// single allocation or copy.
struct SealedBoxView {
  Nonce96 nonce;
  MutByteSpan ciphertext;
  Digest256 mac;

  /// Parses the SealedBox wire layout over a mutable buffer. Same framing
  /// checks as SealedBox::deserialize; no bytes are copied except the fixed
  /// nonce and mac.
  static Result<SealedBoxView> deserialize(MutByteSpan wire);
};

/// MAC-checks and then decrypts the ciphertext in place (ChaCha20 is its own
/// inverse). On success the returned span is the plaintext — the same bytes
/// as view.ciphertext, now decrypted inside the caller's buffer. On MAC
/// failure the buffer is untouched.
Result<MutByteSpan> open_in_place(const Key256& key, SealedBoxView view);

/// Seals plaintext directly into a caller-provided buffer already holding
/// the plaintext at offset 12 + 4 (the SealedBox wire layout): encrypts in
/// place and writes nonce/length/mac around it. `wire` must be exactly
/// 12 + 4 + plain_len + 32 bytes. Produces bytes identical to
/// seal(...).serialize().
Status seal_in_place(const Key256& key, const Nonce96& nonce,
                     MutByteSpan wire, size_t plain_len);

/// Derives a 256-bit key from a DH shared secret and a context label.
Key256 derive_key(ByteSpan shared_secret, const std::string& label);

}  // namespace kshot::crypto
