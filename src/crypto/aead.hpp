// Authenticated encryption envelope: ChaCha20 + HMAC-SHA256
// (encrypt-then-MAC). Wraps the patch package for the server->enclave channel
// and the enclave->SMM shared-memory handoff.
#pragma once

#include "common/status.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"

namespace kshot::crypto {

/// Wire layout: nonce(12) || ciphertext || mac(32).
struct SealedBox {
  Nonce96 nonce;
  Bytes ciphertext;
  Digest256 mac;

  Bytes serialize() const;
  static Result<SealedBox> deserialize(ByteSpan wire);
};

/// Seals plaintext under (enc = key, mac = HMAC(key || "mac")).
SealedBox seal(const Key256& key, const Nonce96& nonce, ByteSpan plaintext);

/// Opens a box; fails with kIntegrityFailure if the MAC does not verify.
Result<Bytes> open(const Key256& key, const SealedBox& box);

/// Derives a 256-bit key from a DH shared secret and a context label.
Key256 derive_key(ByteSpan shared_secret, const std::string& label);

}  // namespace kshot::crypto
