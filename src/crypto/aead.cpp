#include "crypto/aead.hpp"

#include <cstring>

#include "common/byte_io.hpp"

namespace kshot::crypto {

namespace {

Digest256 mac_key(const Key256& key) {
  ByteWriter w;
  w.put_bytes(ByteSpan(key.data(), key.size()));
  w.put_bytes(to_bytes(std::string("mac")));
  return sha256(w.bytes());
}

Digest256 compute_mac(const Key256& key, const Nonce96& nonce,
                      ByteSpan ciphertext) {
  Digest256 mk = mac_key(key);
  ByteWriter w;
  w.put_bytes(ByteSpan(nonce.data(), nonce.size()));
  w.put_bytes(ciphertext);
  return hmac_sha256(ByteSpan(mk.data(), mk.size()), w.bytes());
}

}  // namespace

Bytes SealedBox::serialize() const {
  ByteWriter w;
  w.put_bytes(ByteSpan(nonce.data(), nonce.size()));
  w.put_u32(static_cast<u32>(ciphertext.size()));
  w.put_bytes(ciphertext);
  w.put_bytes(ByteSpan(mac.data(), mac.size()));
  return w.take();
}

Result<SealedBox> SealedBox::deserialize(ByteSpan wire) {
  ByteReader r(wire);
  SealedBox box;
  auto nonce = r.get_bytes(box.nonce.size());
  if (!nonce) return nonce.status();
  std::memcpy(box.nonce.data(), nonce->data(), box.nonce.size());
  auto len = r.get_u32();
  if (!len) return len.status();
  auto ct = r.get_bytes(*len);
  if (!ct) return ct.status();
  box.ciphertext = std::move(*ct);
  auto mac = r.get_bytes(box.mac.size());
  if (!mac) return mac.status();
  std::memcpy(box.mac.data(), mac->data(), box.mac.size());
  return box;
}

SealedBox seal(const Key256& key, const Nonce96& nonce, ByteSpan plaintext) {
  SealedBox box;
  box.nonce = nonce;
  box.ciphertext = chacha20(key, nonce, 1, plaintext);
  box.mac = compute_mac(key, nonce, box.ciphertext);
  return box;
}

Result<Bytes> open(const Key256& key, const SealedBox& box) {
  Digest256 expect = compute_mac(key, box.nonce, box.ciphertext);
  if (!digest_equal(expect, box.mac)) {
    return {Errc::kIntegrityFailure, "AEAD MAC mismatch"};
  }
  return chacha20(key, box.nonce, 1, box.ciphertext);
}

Result<SealedBoxView> SealedBoxView::deserialize(MutByteSpan wire) {
  SealedBoxView v;
  constexpr size_t kNonce = sizeof(Nonce96);
  constexpr size_t kMac = sizeof(Digest256);
  // Framing identical to SealedBox::deserialize, reusing ByteReader for the
  // error statuses; the ciphertext is carved out of `wire` mutably.
  ByteReader r(ByteSpan(wire.data(), wire.size()));
  auto nonce = r.get_span(kNonce);
  if (!nonce) return nonce.status();
  std::memcpy(v.nonce.data(), nonce->data(), kNonce);
  auto len = r.get_u32();
  if (!len) return len.status();
  auto ct = r.get_span(*len);
  if (!ct) return ct.status();
  v.ciphertext = wire.subspan(kNonce + 4, *len);
  auto mac = r.get_span(kMac);
  if (!mac) return mac.status();
  std::memcpy(v.mac.data(), mac->data(), kMac);
  return v;
}

Result<MutByteSpan> open_in_place(const Key256& key, SealedBoxView view) {
  Digest256 expect =
      compute_mac(key, view.nonce,
                  ByteSpan(view.ciphertext.data(), view.ciphertext.size()));
  if (!digest_equal(expect, view.mac)) {
    return {Errc::kIntegrityFailure, "AEAD MAC mismatch"};
  }
  chacha20_xor(key, view.nonce, 1, view.ciphertext);
  return view.ciphertext;
}

Status seal_in_place(const Key256& key, const Nonce96& nonce, MutByteSpan wire,
                     size_t plain_len) {
  constexpr size_t kNonce = sizeof(Nonce96);
  constexpr size_t kMac = sizeof(Digest256);
  if (wire.size() != kNonce + 4 + plain_len + kMac) {
    return {Errc::kInvalidArgument, "seal_in_place: bad buffer size"};
  }
  std::memcpy(wire.data(), nonce.data(), kNonce);
  store_u32(wire.data() + kNonce, static_cast<u32>(plain_len));
  MutByteSpan ct = wire.subspan(kNonce + 4, plain_len);
  chacha20_xor(key, nonce, 1, ct);
  Digest256 mac = compute_mac(key, nonce, ByteSpan(ct.data(), ct.size()));
  std::memcpy(wire.data() + kNonce + 4 + plain_len, mac.data(), kMac);
  return Status::ok();
}

Key256 derive_key(ByteSpan shared_secret, const std::string& label) {
  ByteWriter w;
  w.put_bytes(shared_secret);
  w.put_bytes(to_bytes(label));
  Digest256 d = sha256(w.bytes());
  Key256 k;
  std::memcpy(k.data(), d.data(), k.size());
  return k;
}

}  // namespace kshot::crypto
