#include "crypto/simple_hash.hpp"

#include <array>

namespace kshot::crypto {

u64 sdbm(ByteSpan data) {
  u64 h = 0;
  for (u8 c : data) h = c + (h << 6) + (h << 16) - h;
  return h;
}

u64 fnv1a(ByteSpan data) {
  u64 h = 0xcbf29ce484222325ULL;
  for (u8 c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {
std::array<u32, 256> make_crc_table() {
  std::array<u32, 256> table{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}
}  // namespace

u32 crc32(ByteSpan data) {
  static const std::array<u32, 256> table = make_crc_table();
  u32 c = 0xFFFFFFFFu;
  for (u8 b : data) c = table[(c ^ b) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace kshot::crypto
