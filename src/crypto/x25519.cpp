#include "crypto/x25519.hpp"

#include <cstring>

namespace kshot::crypto {

namespace {

// Field element mod p = 2^255 - 19, five 51-bit limbs.
struct Fe {
  u64 v[5];
};

using u128 = unsigned __int128;

constexpr u64 kMask51 = (u64{1} << 51) - 1;

Fe fe_zero() { return {{0, 0, 0, 0, 0}}; }
Fe fe_one() { return {{1, 0, 0, 0, 0}}; }

Fe fe_add(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}

// a - b, adding a multiple of p to keep limbs nonnegative.
Fe fe_sub(const Fe& a, const Fe& b) {
  // 2*p, spread across limbs, is added before subtracting.
  Fe r;
  r.v[0] = a.v[0] + 0xFFFFFFFFFFFDA * 2 - b.v[0];
  r.v[1] = a.v[1] + 0xFFFFFFFFFFFFE * 2 - b.v[1];
  r.v[2] = a.v[2] + 0xFFFFFFFFFFFFE * 2 - b.v[2];
  r.v[3] = a.v[3] + 0xFFFFFFFFFFFFE * 2 - b.v[3];
  r.v[4] = a.v[4] + 0xFFFFFFFFFFFFE * 2 - b.v[4];
  return r;
}

void fe_carry(Fe& r, u128 t[5]) {
  u64 c;
  c = static_cast<u64>(t[0] >> 51); t[1] += c; r.v[0] = static_cast<u64>(t[0]) & kMask51;
  c = static_cast<u64>(t[1] >> 51); t[2] += c; r.v[1] = static_cast<u64>(t[1]) & kMask51;
  c = static_cast<u64>(t[2] >> 51); t[3] += c; r.v[2] = static_cast<u64>(t[2]) & kMask51;
  c = static_cast<u64>(t[3] >> 51); t[4] += c; r.v[3] = static_cast<u64>(t[3]) & kMask51;
  c = static_cast<u64>(t[4] >> 51); r.v[4] = static_cast<u64>(t[4]) & kMask51;
  r.v[0] += c * 19;
  c = r.v[0] >> 51; r.v[0] &= kMask51; r.v[1] += c;
}

Fe fe_mul(const Fe& a, const Fe& b) {
  u128 t[5] = {};
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      u128 prod = static_cast<u128>(a.v[i]) * b.v[j];
      int k = i + j;
      if (k >= 5) {
        k -= 5;
        prod *= 19;
      }
      t[k] += prod;
    }
  }
  Fe r;
  fe_carry(r, t);
  return r;
}

Fe fe_sq(const Fe& a) { return fe_mul(a, a); }

Fe fe_mul_small(const Fe& a, u64 s) {
  u128 t[5];
  for (int i = 0; i < 5; ++i) t[i] = static_cast<u128>(a.v[i]) * s;
  Fe r;
  fe_carry(r, t);
  return r;
}

// a^(p-2) mod p via the standard addition chain.
Fe fe_invert(const Fe& z) {
  Fe z2 = fe_sq(z);                       // 2
  Fe z8 = fe_sq(fe_sq(z2));               // 8
  Fe z9 = fe_mul(z8, z);                  // 9
  Fe z11 = fe_mul(z9, z2);                // 11
  Fe z22 = fe_sq(z11);                    // 22
  Fe z_5_0 = fe_mul(z22, z9);             // 2^5 - 2^0
  Fe t = z_5_0;
  for (int i = 0; i < 5; ++i) t = fe_sq(t);
  Fe z_10_0 = fe_mul(t, z_5_0);           // 2^10 - 2^0
  t = z_10_0;
  for (int i = 0; i < 10; ++i) t = fe_sq(t);
  Fe z_20_0 = fe_mul(t, z_10_0);          // 2^20 - 2^0
  t = z_20_0;
  for (int i = 0; i < 20; ++i) t = fe_sq(t);
  Fe z_40_0 = fe_mul(t, z_20_0);          // 2^40 - 2^0
  t = z_40_0;
  for (int i = 0; i < 10; ++i) t = fe_sq(t);
  Fe z_50_0 = fe_mul(t, z_10_0);          // 2^50 - 2^0
  t = z_50_0;
  for (int i = 0; i < 50; ++i) t = fe_sq(t);
  Fe z_100_0 = fe_mul(t, z_50_0);         // 2^100 - 2^0
  t = z_100_0;
  for (int i = 0; i < 100; ++i) t = fe_sq(t);
  Fe z_200_0 = fe_mul(t, z_100_0);        // 2^200 - 2^0
  t = z_200_0;
  for (int i = 0; i < 50; ++i) t = fe_sq(t);
  Fe z_250_0 = fe_mul(t, z_50_0);         // 2^250 - 2^0
  t = z_250_0;
  for (int i = 0; i < 5; ++i) t = fe_sq(t);
  return fe_mul(t, z11);                  // 2^255 - 21 = p - 2
}

Fe fe_from_bytes(const X25519Key& s) {
  u64 w[4];
  for (int i = 0; i < 4; ++i) {
    w[i] = 0;
    for (int j = 7; j >= 0; --j) w[i] = (w[i] << 8) | s[8 * i + j];
  }
  Fe r;
  r.v[0] = w[0] & kMask51;
  r.v[1] = ((w[0] >> 51) | (w[1] << 13)) & kMask51;
  r.v[2] = ((w[1] >> 38) | (w[2] << 26)) & kMask51;
  r.v[3] = ((w[2] >> 25) | (w[3] << 39)) & kMask51;
  r.v[4] = (w[3] >> 12) & kMask51;  // top bit of the input is masked per RFC
  return r;
}

X25519Key fe_to_bytes(const Fe& a) {
  // Carry-propagate until every limb is below 2^51, so the value is in
  // [0, 2^255).
  Fe h = a;
  for (int pass = 0; pass < 3; ++pass) {
    u64 c = 0;
    for (int i = 0; i < 5; ++i) {
      h.v[i] += c;
      c = h.v[i] >> 51;
      h.v[i] &= kMask51;
    }
    h.v[0] += c * 19;
  }
  // v >= p iff v + 19 >= 2^255: add 19, propagate, and test bit 255. If set,
  // clearing it yields v - p (since v + 19 - 2^255 = v - p).
  Fe t = h;
  t.v[0] += 19;
  u64 c = 0;
  for (int i = 0; i < 5; ++i) {
    t.v[i] += c;
    c = t.v[i] >> 51;
    t.v[i] &= kMask51;
  }
  if (c != 0) {
    h = t;  // bit 255 was set and is dropped by the masking above
  }
  u64 w[4];
  w[0] = h.v[0] | (h.v[1] << 51);
  w[1] = (h.v[1] >> 13) | (h.v[2] << 38);
  w[2] = (h.v[2] >> 26) | (h.v[3] << 25);
  w[3] = (h.v[3] >> 39) | (h.v[4] << 12);
  X25519Key out;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 8; ++j) out[8 * i + j] = static_cast<u8>(w[i] >> (8 * j));
  return out;
}

void fe_cswap(Fe& a, Fe& b, u64 swap) {
  u64 mask = 0 - swap;
  for (int i = 0; i < 5; ++i) {
    u64 x = mask & (a.v[i] ^ b.v[i]);
    a.v[i] ^= x;
    b.v[i] ^= x;
  }
}

}  // namespace

X25519Key x25519(const X25519Key& scalar, const X25519Key& point) {
  X25519Key e = scalar;
  e[0] &= 248;
  e[31] &= 127;
  e[31] |= 64;

  Fe x1 = fe_from_bytes(point);
  Fe x2 = fe_one(), z2 = fe_zero();
  Fe x3 = x1, z3 = fe_one();
  u64 swap = 0;

  for (int t = 254; t >= 0; --t) {
    u64 bit = (e[t >> 3] >> (t & 7)) & 1;
    swap ^= bit;
    fe_cswap(x2, x3, swap);
    fe_cswap(z2, z3, swap);
    swap = bit;

    Fe a = fe_add(x2, z2);
    Fe aa = fe_sq(a);
    Fe b = fe_sub(x2, z2);
    Fe bb = fe_sq(b);
    Fe ee = fe_sub(aa, bb);
    Fe c = fe_add(x3, z3);
    Fe d = fe_sub(x3, z3);
    Fe da = fe_mul(d, a);
    Fe cb = fe_mul(c, b);
    x3 = fe_sq(fe_add(da, cb));
    z3 = fe_mul(x1, fe_sq(fe_sub(da, cb)));
    x2 = fe_mul(aa, bb);
    z2 = fe_mul(ee, fe_add(aa, fe_mul_small(ee, 121665)));
  }
  fe_cswap(x2, x3, swap);
  fe_cswap(z2, z3, swap);

  return fe_to_bytes(fe_mul(x2, fe_invert(z2)));
}

X25519Key x25519_base(const X25519Key& scalar) {
  X25519Key base = {9};
  return x25519(scalar, base);
}

DhKeyPair dh_generate(Rng& rng) {
  DhKeyPair kp;
  rng.fill(MutByteSpan(kp.private_key.data(), kp.private_key.size()));
  kp.private_key[0] &= 248;
  kp.private_key[31] &= 127;
  kp.private_key[31] |= 64;
  kp.public_key = x25519_base(kp.private_key);
  return kp;
}

X25519Key dh_shared(const X25519Key& private_key,
                    const X25519Key& peer_public) {
  return x25519(private_key, peer_public);
}

}  // namespace kshot::crypto
