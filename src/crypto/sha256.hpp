// SHA-256 (FIPS 180-4), implemented from the specification. Used as the
// patch package verification hash (paper §VI-C2: "the majority of the patch
// time comes from the patch verification process, which involves computing a
// SHA-2 hash").
#pragma once

#include <array>

#include "common/types.hpp"

namespace kshot::crypto {

using Digest256 = std::array<u8, 32>;

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(ByteSpan data);
  /// Finalizes and returns the digest; the context must be reset() before
  /// further use.
  Digest256 finish();

 private:
  void compress(const u8 block[64]);

  std::array<u32, 8> h_{};
  u8 buf_[64];
  size_t buf_len_ = 0;
  u64 total_len_ = 0;
};

/// One-shot convenience.
Digest256 sha256(ByteSpan data);

}  // namespace kshot::crypto
