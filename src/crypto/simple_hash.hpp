// Non-cryptographic hashes. The paper (§VI-C2) notes patch verification time
// is dominated by SHA-2 and "could be reduced by employing a simpler hashing
// algorithm such as SDBM" — these back the bench_ablation_hash experiment.
#pragma once

#include "common/types.hpp"

namespace kshot::crypto {

/// SDBM string hash extended to byte spans.
u64 sdbm(ByteSpan data);

/// FNV-1a 64-bit.
u64 fnv1a(ByteSpan data);

/// CRC-32 (IEEE 802.3 polynomial, reflected).
u32 crc32(ByteSpan data);

}  // namespace kshot::crypto
