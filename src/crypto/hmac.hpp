// HMAC-SHA256 (RFC 2104). Authenticates patch-server messages and the
// enclave→SMM shared-memory packages.
#pragma once

#include "crypto/sha256.hpp"

namespace kshot::crypto {

Digest256 hmac_sha256(ByteSpan key, ByteSpan message);

/// Constant-time comparison of two digests (MAC checks must not leak
/// position-of-first-difference timing).
bool digest_equal(const Digest256& a, const Digest256& b);

}  // namespace kshot::crypto
