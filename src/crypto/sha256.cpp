#include "crypto/sha256.hpp"

#include <cstring>

#include "crypto/simd.hpp"

namespace kshot::crypto {

namespace {

constexpr u32 kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline u32 rotr(u32 x, int n) { return (x >> n) | (x << (32 - n)); }

}  // namespace

void Sha256::reset() {
  h_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
        0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  buf_len_ = 0;
  total_len_ = 0;
}

void Sha256::compress(const u8 block[64]) {
  u32 w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<u32>(block[4 * i]) << 24) |
           (static_cast<u32>(block[4 * i + 1]) << 16) |
           (static_cast<u32>(block[4 * i + 2]) << 8) |
           static_cast<u32>(block[4 * i + 3]);
  }
  if (simd_enabled()) {
    // Vectorize the independent part of the schedule recurrence: for four
    // consecutive words, t[k] = w[i+k-16] + s0(w[i+k-15]) + w[i+k-7] only
    // reads words below i, so it computes in one 4-lane pass. The s1 term
    // reads w[i+k-2] — inside the group for lanes 2 and 3 — and is fixed up
    // sequentially. All adds are mod 2^32, so the result is bit-identical
    // to the scalar loop.
    for (int i = 16; i < 64; i += 4) {
      u32x4 wm15 = u32x4::make(w[i - 15], w[i - 14], w[i - 13], w[i - 12]);
      u32x4 s0 = vrotr(wm15, 7) ^ vrotr(wm15, 18) ^ vshr(wm15, 3);
      u32x4 t = u32x4::make(w[i - 16], w[i - 15], w[i - 14], w[i - 13]) + s0 +
                u32x4::make(w[i - 7], w[i - 6], w[i - 5], w[i - 4]);
      for (int k = 0; k < 4; ++k) {
        u32 x = w[i + k - 2];
        w[i + k] = t.lane(k) + (rotr(x, 17) ^ rotr(x, 19) ^ (x >> 10));
      }
    }
  } else {
    for (int i = 16; i < 64; ++i) {
      u32 s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      u32 s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
  }

  u32 a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  u32 e = h_[4], f = h_[5], g = h_[6], h = h_[7];

  for (int i = 0; i < 64; ++i) {
    u32 s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    u32 ch = (e & f) ^ (~e & g);
    u32 t1 = h + s1 + ch + kK[i] + w[i];
    u32 s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    u32 maj = (a & b) ^ (a & c) ^ (b & c);
    u32 t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }

  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
  h_[5] += f;
  h_[6] += g;
  h_[7] += h;
}

void Sha256::update(ByteSpan data) {
  total_len_ += data.size();
  size_t off = 0;
  if (buf_len_ > 0) {
    size_t take = std::min(data.size(), size_t{64} - buf_len_);
    std::memcpy(buf_ + buf_len_, data.data(), take);
    buf_len_ += take;
    off += take;
    if (buf_len_ == 64) {
      compress(buf_);
      buf_len_ = 0;
    }
  }
  while (off + 64 <= data.size()) {
    compress(data.data() + off);
    off += 64;
  }
  if (off < data.size()) {
    std::memcpy(buf_, data.data() + off, data.size() - off);
    buf_len_ = data.size() - off;
  }
}

Digest256 Sha256::finish() {
  u64 bit_len = total_len_ * 8;
  u8 pad[72];
  size_t pad_len = (buf_len_ < 56) ? (56 - buf_len_) : (120 - buf_len_);
  pad[0] = 0x80;
  std::memset(pad + 1, 0, pad_len - 1);
  for (int i = 0; i < 8; ++i) {
    pad[pad_len + i] = static_cast<u8>(bit_len >> (56 - 8 * i));
  }
  update(ByteSpan(pad, pad_len + 8));

  Digest256 out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<u8>(h_[i] >> 24);
    out[4 * i + 1] = static_cast<u8>(h_[i] >> 16);
    out[4 * i + 2] = static_cast<u8>(h_[i] >> 8);
    out[4 * i + 3] = static_cast<u8>(h_[i]);
  }
  return out;
}

Digest256 sha256(ByteSpan data) {
  Sha256 ctx;
  ctx.update(data);
  return ctx.finish();
}

}  // namespace kshot::crypto
