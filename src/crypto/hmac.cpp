#include "crypto/hmac.hpp"

#include <cstring>

namespace kshot::crypto {

Digest256 hmac_sha256(ByteSpan key, ByteSpan message) {
  u8 k[64] = {0};
  if (key.size() > 64) {
    Digest256 kh = sha256(key);
    std::memcpy(k, kh.data(), kh.size());
  } else {
    std::memcpy(k, key.data(), key.size());
  }

  u8 ipad[64], opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ByteSpan(ipad, 64));
  inner.update(message);
  Digest256 ih = inner.finish();

  Sha256 outer;
  outer.update(ByteSpan(opad, 64));
  outer.update(ByteSpan(ih.data(), ih.size()));
  return outer.finish();
}

bool digest_equal(const Digest256& a, const Digest256& b) {
  u8 acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace kshot::crypto
