#include "patchtool/prep_cache.hpp"

#include "crypto/simple_hash.hpp"

namespace kshot::patchtool {

namespace {

/// Re-resolves an entry's witnesses against the querying image. All must
/// match for the cached normalization to be valid in this context.
bool witnesses_hold(const PrepCache::Entry& e, const kcc::KernelImage& img,
                    u64 sym_addr) {
  for (const auto& w : e.sym_witnesses) {
    u64 abs = sym_addr + static_cast<u64>(w.target_off);
    const kcc::Symbol* callee = img.symbol_at(abs);
    const std::string& name = callee ? callee->name : "<unknown>";
    if (name != w.name) return false;
  }
  for (const auto& w : e.global_witnesses) {
    std::string name;
    for (const auto& g : img.globals) {
      if (g.addr == w.addr) {
        name = g.name;
        break;
      }
    }
    if (name != w.name) return false;
  }
  return true;
}

}  // namespace

std::shared_ptr<const PrepCache::Entry> PrepCache::probe(
    u64 body_hash, const kcc::KernelImage& img, u64 sym_addr) {
  std::vector<std::shared_ptr<const Entry>> candidates;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(body_hash);
    if (it != map_.end()) candidates = it->second;
  }
  for (const auto& e : candidates) {
    if (witnesses_hold(*e, img, sym_addr)) {
      std::lock_guard<std::mutex> lock(mu_);
      ++hits_;
      if (c_hits_) c_hits_->inc();
      return e;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++misses_;
  if (c_misses_) c_misses_->inc();
  return nullptr;
}

void PrepCache::insert(u64 body_hash, std::shared_ptr<const Entry> entry) {
  std::lock_guard<std::mutex> lock(mu_);
  map_[body_hash].push_back(std::move(entry));
}

void PrepCache::set_counters(obs::Counter* hits, obs::Counter* misses) {
  std::lock_guard<std::mutex> lock(mu_);
  c_hits_ = hits;
  c_misses_ = misses;
}

u64 PrepCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

u64 PrepCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

Result<std::vector<NormInstr>> normalize_function(const kcc::KernelImage& img,
                                                  const kcc::Symbol& sym,
                                                  PrepCache* cache) {
  auto body_r = img.function_bytes(sym.name);
  if (!body_r) return body_r.status();
  const Bytes& body = *body_r;

  u64 body_hash = 0;
  if (cache) {
    body_hash = crypto::fnv1a(ByteSpan(body));
    if (auto hit = cache->probe(body_hash, img, sym.addr)) return hit->norm;
  }

  auto entry = std::make_shared<PrepCache::Entry>();
  std::vector<NormInstr> out;
  size_t off = 0;
  while (off < body.size()) {
    auto d = isa::decode(ByteSpan(body).subspan(off));
    if (!d) return d.status();
    NormInstr n;
    n.op = d->instr.op;
    n.a = d->instr.a;
    n.b = d->instr.b;
    n.imm = d->instr.imm;

    if (isa::is_rel32_branch(d->instr.op)) {
      i64 target_off = static_cast<i64>(off + d->len) + d->instr.imm;
      if (target_off >= 0 && target_off <= static_cast<i64>(body.size())) {
        n.is_internal_branch = true;
        n.internal_target = target_off;
        n.imm = 0;
      } else {
        u64 abs = sym.addr + static_cast<u64>(target_off);
        const kcc::Symbol* callee = img.symbol_at(abs);
        n.sym = callee ? callee->name : "<unknown>";
        n.imm = 0;
        entry->sym_witnesses.push_back({target_off, n.sym});
      }
    } else if (d->instr.op == isa::Op::kLoadG ||
               d->instr.op == isa::Op::kStoreG) {
      u64 abs = static_cast<u64>(d->instr.imm);
      std::string gname;
      for (const auto& g : img.globals) {
        if (g.addr == abs) {
          gname = g.name;
          break;
        }
      }
      if (!gname.empty()) {
        n.sym = gname;
        n.imm = 0;
      }
      entry->global_witnesses.push_back({abs, gname});
    }
    out.push_back(std::move(n));
    off += d->len;
  }

  if (cache) {
    entry->norm = out;
    cache->insert(body_hash, std::move(entry));
  }
  return out;
}

}  // namespace kshot::patchtool
