// Call-graph construction and inlining analysis (paper §V-A "Identifying
// Target Functions"): a source-level call graph (codeviz analogue), a
// binary-level call graph recovered from E8 rel32 sites (IDA analogue), and
// the worklist algorithm that finds all functions implicated by edits to
// (possibly transitively) inlined functions.
#pragma once

#include <map>
#include <set>
#include <string>

#include "kcc/ast.hpp"
#include "kcc/image.hpp"

namespace kshot::patchtool {

using CallGraph = std::map<std::string, std::set<std::string>>;

/// Direct calls visible in the source AST.
CallGraph source_call_graph(const kcc::Module& m);

/// Calls recovered by scanning linked function bodies for E8 targets.
/// Undecodable bodies are skipped (conservative).
CallGraph binary_call_graph(const kcc::KernelImage& img);

/// Functions present in the source call graph but absent from the binary
/// symbol table — i.e. compiled away by inlining.
std::set<std::string> inlined_functions(const kcc::Module& m,
                                        const kcc::KernelImage& img);

/// Worklist algorithm: given source-changed functions, returns the set of
/// *binary* functions that must be patched. A changed inline function
/// implicates all its callers; inline-into-inline chains propagate until no
/// new function is added.
std::set<std::string> implicated_functions(
    const kcc::Module& m, const kcc::KernelImage& img,
    const std::set<std::string>& changed_source_fns);

/// Functions whose canonical source text differs between two modules.
std::set<std::string> source_changed_functions(const kcc::Module& pre,
                                               const kcc::Module& post);

}  // namespace kshot::patchtool
