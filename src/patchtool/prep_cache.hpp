// Content-addressed cache for the expensive half of bindiff: decoding and
// normalizing a function body. The cache key is a hash of the raw body
// bytes; because normalization also folds in *context* (which symbol an
// external rel32 lands on, which global an absolute load touches), each
// entry carries resolution witnesses that are re-checked against the
// querying image. Two kernels sharing a function body but resolving its
// relocations differently therefore miss, as required — the witnesses are
// the "reloc context" half of the key.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/isa.hpp"
#include "kcc/image.hpp"
#include "obs/metrics.hpp"

namespace kshot::patchtool {

/// Normalized view of one instruction for semantic comparison.
struct NormInstr {
  isa::Op op;
  u8 a = 0, b = 0;
  i64 imm = 0;             // raw immediate for non-branch, non-global ops
  std::string sym;         // callee/global symbol for external references
  i64 internal_target = 0; // function-relative target for internal branches
  bool is_internal_branch = false;

  friend bool operator==(const NormInstr&, const NormInstr&) = default;
};

/// Thread-safe memoization of normalize_function. Probes verify the stored
/// resolution witnesses against the querying image before a hit is
/// declared; verification runs outside the lock, so concurrent probes for
/// distinct bodies never serialize on each other's decode work.
class PrepCache {
 public:
  struct SymWitness {
    i64 target_off = 0;  // body-relative: abs target = sym.addr + target_off
    std::string name;    // resolved callee, or "<unknown>"
    friend bool operator==(const SymWitness&, const SymWitness&) = default;
  };
  struct GlobalWitness {
    u64 addr = 0;      // absolute global address referenced by the body
    std::string name;  // empty if the image had no global at that address
    friend bool operator==(const GlobalWitness&,
                           const GlobalWitness&) = default;
  };
  struct Entry {
    std::vector<NormInstr> norm;
    std::vector<SymWitness> sym_witnesses;
    std::vector<GlobalWitness> global_witnesses;
  };

  /// Finds a cached entry whose witnesses all re-resolve identically in
  /// `img` at base address `sym_addr`. Returns nullptr on miss (counts the
  /// miss; the caller computes and insert()s).
  std::shared_ptr<const Entry> probe(u64 body_hash,
                                     const kcc::KernelImage& img,
                                     u64 sym_addr);

  void insert(u64 body_hash, std::shared_ptr<const Entry> entry);

  /// Mirrors hit/miss counts into an obs registry (e.g. "server.prep_hits"
  /// / "server.prep_misses"). May be null.
  void set_counters(obs::Counter* hits, obs::Counter* misses);

  [[nodiscard]] u64 hits() const;
  [[nodiscard]] u64 misses() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<u64, std::vector<std::shared_ptr<const Entry>>> map_;
  u64 hits_ = 0;
  u64 misses_ = 0;
  obs::Counter* c_hits_ = nullptr;
  obs::Counter* c_misses_ = nullptr;
};

/// Decodes and normalizes one function body for semantic comparison.
/// With a cache, identical bodies with identical resolution contexts are
/// returned from the cache without re-decoding.
Result<std::vector<NormInstr>> normalize_function(const kcc::KernelImage& img,
                                                  const kcc::Symbol& sym,
                                                  PrepCache* cache = nullptr);

}  // namespace kshot::patchtool
