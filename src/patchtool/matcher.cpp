#include "patchtool/matcher.hpp"

#include <algorithm>

#include "common/parallel.hpp"
#include "crypto/simple_hash.hpp"
#include "isa/isa.hpp"
#include "patchtool/callgraph.hpp"

namespace kshot::patchtool {

namespace {

/// Serializes a function body with position-dependent fields masked.
Bytes normalized_bytes(const kcc::KernelImage& img, const kcc::Symbol& sym) {
  auto body_r = img.function_bytes(sym.name);
  if (!body_r) return {};
  const Bytes& body = *body_r;

  Bytes out;
  size_t off = 0;
  while (off < body.size()) {
    auto d = isa::decode(ByteSpan(body).subspan(off));
    if (!d) break;
    out.push_back(static_cast<u8>(d->instr.op));
    out.push_back(d->instr.a);
    out.push_back(d->instr.b);
    bool positional = isa::is_rel32_branch(d->instr.op) ||
                      d->instr.op == isa::Op::kLoadG ||
                      d->instr.op == isa::Op::kStoreG;
    if (!positional) {
      for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<u8>(d->instr.imm >> (8 * i)));
      }
    } else if (isa::is_rel32_branch(d->instr.op)) {
      // Keep only whether the branch is function-internal (shape) and, for
      // internal ones, its relative landing offset.
      i64 target = static_cast<i64>(off + d->len) + d->instr.imm;
      bool internal =
          target >= 0 && target <= static_cast<i64>(body.size());
      out.push_back(internal ? 1 : 0);
      if (internal) {
        for (int i = 0; i < 4; ++i) {
          out.push_back(static_cast<u8>(target >> (8 * i)));
        }
      }
    }
    off += d->len;
  }
  return out;
}

}  // namespace

u64 function_signature(const kcc::KernelImage& img, const std::string& name) {
  const kcc::Symbol* sym = img.find_symbol(name);
  if (sym == nullptr) return 0;
  return crypto::fnv1a(normalized_bytes(img, *sym));
}

MatchResult match_functions(const kcc::KernelImage& pre,
                            const kcc::KernelImage& post, u32 jobs) {
  MatchResult result;

  // Signatures are independent per function: compute them in parallel into
  // per-index slots, then bucket sequentially in image order so the result
  // is identical for any jobs value.
  std::vector<u64> pre_sigs(pre.symbols.size());
  std::vector<u64> post_sigs(post.symbols.size());
  parallel_for(static_cast<u32>(pre.symbols.size()), jobs, [&](u32 i) {
    pre_sigs[i] = function_signature(pre, pre.symbols[i].name);
  });
  parallel_for(static_cast<u32>(post.symbols.size()), jobs, [&](u32 i) {
    post_sigs[i] = function_signature(post, post.symbols[i].name);
  });

  // Bucket pre functions by signature.
  std::map<u64, std::vector<std::string>> pre_by_sig;
  for (size_t i = 0; i < pre.symbols.size(); ++i) {
    pre_by_sig[pre_sigs[i]].push_back(pre.symbols[i].name);
  }
  CallGraph pre_cg = binary_call_graph(pre);
  CallGraph post_cg = binary_call_graph(post);

  std::map<std::string, bool> pre_taken;
  for (size_t pi = 0; pi < post.symbols.size(); ++pi) {
    const auto& sym = post.symbols[pi];
    u64 sig = post_sigs[pi];
    auto bucket = pre_by_sig.find(sig);
    if (bucket == pre_by_sig.end()) {
      result.unmatched.push_back(sym.name);
      continue;
    }
    // Collect untaken candidates.
    std::vector<std::string> candidates;
    for (const auto& cand : bucket->second) {
      if (!pre_taken[cand]) candidates.push_back(cand);
    }
    if (candidates.empty()) {
      result.unmatched.push_back(sym.name);
      continue;
    }
    std::string chosen;
    if (candidates.size() == 1) {
      chosen = candidates[0];
    } else {
      // Refine by call-graph out-degree, then by layout order.
      size_t want = post_cg[sym.name].size();
      std::stable_sort(candidates.begin(), candidates.end(),
                       [&](const std::string& a, const std::string& b) {
                         size_t da = pre_cg[a].size(), db = pre_cg[b].size();
                         auto da_diff = da > want ? da - want : want - da;
                         auto db_diff = db > want ? db - want : want - db;
                         return da_diff < db_diff;
                       });
      chosen = candidates[0];
      result.ambiguous.push_back(sym.name);
    }
    pre_taken[chosen] = true;
    result.matches[sym.name] = chosen;
  }
  return result;
}

}  // namespace kshot::patchtool
