// Wire format of the patch package exchanged between the patch server, the
// SGX enclave, and the SMM handler — the structure of paper Fig. 3. Each
// function carries exactly 42 bytes of header (§VI-C3: "each function
// requires 42 bytes of header data in the transmitted patch package"):
//
//   offset  field        size
//   0       sequence     u16
//   2       opt          u8    (1 = patch, 2 = rollback)
//   3       type         u8    (1/2/3)
//   4       taddr        u64   target entry in the running kernel
//   12      paddr        u64   destination in mem_X (0 until preprocessing)
//   20      size         u32   code payload bytes
//   24      ftrace_off   u16   5 if the target begins with the ftrace pad
//   26      nreloc       u16
//   28      nvar         u16
//   30      payload_crc  u32   CRC-32 of the code payload
//   34      name_hash    u64   SDBM hash of the symbol name
//   42      --- end of header ---
//
// The package set prepends a set header with a SHA-256 digest over all
// entries; the SMM handler recomputes it before applying anything (§V-C).
#pragma once

#include <span>
#include <string_view>

#include "common/arena.hpp"
#include "common/status.hpp"
#include "crypto/sha256.hpp"
#include "patchtool/patch.hpp"

namespace kshot::patchtool {

inline constexpr u32 kPackageMagic = 0x5448534B;  // "KSHT"
inline constexpr u16 kPackageVersion = 1;
/// Wire v2 = v1 + patch-stack lifecycle data. After the kernel-version
/// string: u8 ndep + ndep string8 ids, u8 nsup + nsup string8 ids. After
/// each function's name string8: u8 flags (bit0 = in-place splice) and
/// u32 old_size. The serializer only emits v2 when the set actually carries
/// lifecycle data, so every pre-existing package stays byte-identical.
inline constexpr u16 kPackageVersionLifecycle = 2;
inline constexpr size_t kFnHeaderBytes = 42;

/// Serializes a patch set, overriding every entry's op with `op` (the same
/// set is shipped with kPatch and replayed with kRollback).
Bytes serialize_patchset(const PatchSet& set, PatchOp op);

/// Serializes a patch set preserving each entry's own op field. The normal
/// pipeline never mixes ops within one package; this exists so tests and
/// adversarial harnesses can craft such packages and assert they are
/// rejected at the SMM boundary.
Bytes serialize_patchset_raw(const PatchSet& set);

/// Parses and fully verifies a package (magic, version, set digest, per-
/// function CRCs). Returns kIntegrityFailure on any mismatch. This is the
/// legacy copying parser: every name and code payload is copied out of the
/// wire. The hot path uses parse_patchset_view; this stays as the reference
/// the zero-copy differential suite replays against.
Result<PatchSet> parse_patchset(ByteSpan wire);

// ---- Zero-copy views ------------------------------------------------------
// Borrowed-span mirror of FunctionPatch/PatchSet. Strings and code payloads
// point straight into the parsed wire; the structured tables (relocs,
// var_edits, patches) are materialized into a caller-owned Arena because the
// wire stores them unaligned. Ownership rule (DESIGN.md §15): a view is
// valid only while BOTH the wire buffer and the arena outlive it — consumers
// that keep patch bodies past the parse (installed-patch bookkeeping) must
// retain the envelope buffer itself, not copy out of it.

struct FunctionPatchView {
  u16 sequence = 0;
  PatchOp op = PatchOp::kPatch;
  PatchType type = PatchType::kType1;
  std::string_view name;
  u64 taddr = 0;
  u64 paddr = 0;
  u16 ftrace_off = 0;
  ByteSpan code;
  std::span<const RelocEntry> relocs;
  std::span<const VarEdit> var_edits;
  bool splice = false;
  u32 old_size = 0;

  [[nodiscard]] size_t payload_bytes() const {
    return code.size() + relocs.size() * 16 + var_edits.size() * 17;
  }
};

struct PatchSetView {
  std::string_view id;
  std::string_view kernel_version;
  std::span<const std::string_view> depends;
  std::span<const std::string_view> supersedes;
  std::span<const FunctionPatchView> patches;

  [[nodiscard]] size_t total_code_bytes() const {
    size_t n = 0;
    for (const auto& p : patches) n += p.code.size();
    return n;
  }
  [[nodiscard]] bool has_lifecycle() const {
    if (!depends.empty() || !supersedes.empty()) return true;
    for (const auto& p : patches) {
      if (p.splice || p.old_size != 0) return true;
    }
    return false;
  }
};

/// Span-parsing twin of parse_patchset: identical validation and rejection
/// behavior, but name/code stay borrowed from `wire` and the view tables
/// live in `arena`. The returned view dangles if `wire`'s backing buffer or
/// `arena` dies first.
Result<PatchSetView> parse_patchset_view(ByteSpan wire, Arena& arena);

/// Builds a view over an owned PatchSet (legacy-parser bridge: lets every
/// downstream consumer take PatchSetView regardless of which parser ran).
/// The view borrows from `set` and `arena`.
PatchSetView view_of_patchset(const PatchSet& set, Arena& arena);

/// The set digest stored in (and checked against) the set header.
crypto::Digest256 package_digest(ByteSpan wire_after_digest);

/// Parsed op of a serialized package without full validation (the SMM
/// handler dispatches on this before verifying).
Result<PatchOp> peek_op(ByteSpan wire);

// ---- Batch envelope -------------------------------------------------------
// A batched SMM session stages N ordinary packages inside one sealed blob:
//
//   u32 kBatchMagic ("KSHB") || u32 count || (u32 len || package bytes) * N
//
// Each inner package keeps its own digest/CRC protection; the envelope adds
// no crypto of its own because the whole blob is already sealed under the
// session key. The SMM handler applies the envelope all-or-nothing with one
// rollback unit per inner package.

inline constexpr u32 kBatchMagic = 0x4248534B;  // "KSHB"
inline constexpr u32 kMaxBatchPackages = 64;

/// Wraps already-serialized packages into a batch envelope.
Bytes serialize_batch(const std::vector<Bytes>& packages);

/// Splits a batch envelope back into its inner package wires. Structural
/// validation only (magic, count bounds, length framing); each inner wire
/// still needs parse_patchset. Legacy copying variant.
Result<std::vector<Bytes>> parse_batch(ByteSpan wire);

/// Zero-copy variant: identical framing validation, but each inner wire is
/// a borrowed span into `wire`.
Result<std::vector<ByteSpan>> parse_batch_view(ByteSpan wire);

/// True if `wire` starts with the batch envelope magic.
bool is_batch_wire(ByteSpan wire);

}  // namespace kshot::patchtool
