// Binary diffing between pre- and post-patch kernel images, in the spirit of
// iBinHunt/FIBER (paper §V-A): functions are matched by symbol and compared
// *semantically* — rel32 branch targets are normalized (internal branches to
// function-relative offsets, external calls to callee symbol names) so pure
// relocation shifts caused by resized neighbours do not count as changes.
#pragma once

#include "kcc/image.hpp"
#include "patchtool/patch.hpp"
#include "patchtool/prep_cache.hpp"

namespace kshot::patchtool {

struct DiffResult {
  std::vector<std::string> changed_functions;  // present in both, body differs
  std::vector<std::string> added_functions;
  std::vector<std::string> removed_functions;
  std::vector<kcc::GlobalSym> added_globals;
  std::vector<kcc::GlobalSym> modified_globals;  // init value changed
  /// False if a global shared between the images moved or shrank — the
  /// "complex data structure change" the paper excludes (§VI-A, §VIII).
  bool layout_compatible = true;
};

/// Knobs for the diff hot path: per-function comparisons fan out over a
/// bounded worker pool (results are merged in image order, so the output is
/// identical for any jobs value) and normalizations go through an optional
/// content-addressed PrepCache.
struct DiffOptions {
  u32 jobs = 1;
  PrepCache* cache = nullptr;
};

/// Structural diff of two images built with the same options.
Result<DiffResult> diff_images(const kcc::KernelImage& pre,
                               const kcc::KernelImage& post,
                               const DiffOptions& dopts = {});

/// Semantic equality of one function across the two images.
Result<bool> functions_equal(const kcc::KernelImage& pre,
                             const kcc::KernelImage& post,
                             const std::string& name,
                             const DiffOptions& dopts = {});

struct BuildPatchOptions {
  std::string id;  // e.g. the CVE number
  /// Functions changed at the *source* level (used for Type 1 vs Type 2
  /// classification; a binary-changed function that was not source-changed
  /// was implicated by inlining).
  std::vector<std::string> source_changed;
  /// Worker-pool width and prep cache threaded through to diff_images.
  u32 jobs = 1;
  PrepCache* prep_cache = nullptr;
};

/// Produces a deployable PatchSet from the image diff: extracts post-patch
/// bodies, records external rel32 fixups (absolute running-kernel targets or
/// intra-patch-set references), emits global-variable edits, and classifies
/// each function patch as Type 1/2/3. Fails on layout-incompatible diffs.
Result<PatchSet> build_patchset(const kcc::KernelImage& pre,
                                const kcc::KernelImage& post,
                                const BuildPatchOptions& opts);

}  // namespace kshot::patchtool
