#include "patchtool/callgraph.hpp"

#include "isa/reloc.hpp"
#include "kcc/printer.hpp"

namespace kshot::patchtool {

namespace {

void collect_calls(const kcc::Expr& e, std::set<std::string>& out) {
  switch (e.kind) {
    case kcc::Expr::Kind::kNum:
    case kcc::Expr::Kind::kVar:
      return;
    case kcc::Expr::Kind::kBin:
      collect_calls(*e.lhs, out);
      collect_calls(*e.rhs, out);
      return;
    case kcc::Expr::Kind::kCall:
      out.insert(e.name);
      for (const auto& a : e.args) collect_calls(*a, out);
      return;
  }
}

void collect_calls(const std::vector<kcc::StmtPtr>& body,
                   std::set<std::string>& out) {
  for (const auto& s : body) {
    if (s->value) collect_calls(*s->value, out);
    if (s->cond) collect_calls(*s->cond, out);
    collect_calls(s->body, out);
    collect_calls(s->else_body, out);
  }
}

}  // namespace

CallGraph source_call_graph(const kcc::Module& m) {
  CallGraph g;
  for (const auto& f : m.functions) {
    std::set<std::string> callees;
    collect_calls(f.body, callees);
    g[f.name] = std::move(callees);
  }
  return g;
}

CallGraph binary_call_graph(const kcc::KernelImage& img) {
  CallGraph g;
  for (const auto& sym : img.symbols) {
    std::set<std::string> callees;
    auto body = img.function_bytes(sym.name);
    if (body) {
      auto sites = isa::scan_rel32(*body);
      if (sites) {
        for (const auto& s : *sites) {
          if (s.op != isa::Op::kCall) continue;
          u64 target = sym.addr + static_cast<u64>(s.target_off);
          const kcc::Symbol* callee = img.symbol_at(target);
          if (callee) callees.insert(callee->name);
        }
      }
    }
    g[sym.name] = std::move(callees);
  }
  return g;
}

std::set<std::string> inlined_functions(const kcc::Module& m,
                                        const kcc::KernelImage& img) {
  std::set<std::string> out;
  for (const auto& f : m.functions) {
    if (!img.find_symbol(f.name)) out.insert(f.name);
  }
  return out;
}

std::set<std::string> implicated_functions(
    const kcc::Module& m, const kcc::KernelImage& img,
    const std::set<std::string>& changed_source_fns) {
  CallGraph src = source_call_graph(m);
  // Reverse edges: callee -> callers.
  CallGraph callers;
  for (const auto& [caller, callees] : src) {
    for (const auto& callee : callees) callers[callee].insert(caller);
  }
  std::set<std::string> inlined = inlined_functions(m, img);

  // Worklist: a changed function that exists in the binary is patched
  // directly; a changed function that was inlined away implicates its
  // callers (transitively through chains of inlined functions).
  std::set<std::string> result;
  std::set<std::string> visited;
  std::vector<std::string> work(changed_source_fns.begin(),
                                changed_source_fns.end());
  while (!work.empty()) {
    std::string fn = std::move(work.back());
    work.pop_back();
    if (!visited.insert(fn).second) continue;
    if (!inlined.count(fn)) {
      if (img.find_symbol(fn)) result.insert(fn);
      continue;
    }
    for (const auto& caller : callers[fn]) work.push_back(caller);
  }
  return result;
}

std::set<std::string> source_changed_functions(const kcc::Module& pre,
                                               const kcc::Module& post) {
  std::set<std::string> out;
  for (const auto& f : post.functions) {
    const kcc::Function* old = pre.find_function(f.name);
    if (old == nullptr || kcc::to_source(*old) != kcc::to_source(f)) {
      out.insert(f.name);
    }
  }
  // Deleted functions also count as source changes.
  for (const auto& f : pre.functions) {
    if (!post.find_function(f.name)) out.insert(f.name);
  }
  return out;
}

}  // namespace kshot::patchtool
