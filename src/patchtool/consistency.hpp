// Consistency analysis (paper §VIII "Consistency Issues"): some patches
// change global data that non-patched functions also use, or change
// semantics across multiple functions — KShot "currently cannot handle
// those cases" (~2% of kernel CVE patches). This checker detects the shared
// -data flavor before deployment, so an operator can fall back to a
// whole-kernel update instead of shipping an unsafe live patch.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "kcc/ast.hpp"
#include "kcc/image.hpp"
#include "patchtool/bindiff.hpp"

namespace kshot::patchtool {

struct ConsistencyReport {
  bool safe = true;
  /// One entry per unpatched binary function that reads or writes a global
  /// the patch modifies.
  std::vector<std::string> warnings;
};

/// Checks a computed diff against the post-patch source + image: every
/// global the patch adds or modifies must only be referenced (at the binary
/// level, i.e. after inlining) by functions that the patch also replaces.
ConsistencyReport check_consistency(const kcc::Module& post_module,
                                    const kcc::KernelImage& post_image,
                                    const DiffResult& diff);

/// Source-level helper: names of globals referenced (read or written)
/// anywhere in `f`.
std::set<std::string> referenced_globals(const kcc::Function& f,
                                         const kcc::Module& m);

}  // namespace kshot::patchtool
