// Binary function matching without symbol names, in the spirit of
// iBinHunt/FIBER (paper §V-A / §VII-B): when the running kernel's symbol
// table is stripped or untrusted, patched functions are aligned to the
// binary by normalized instruction signatures — opcode/operand sequences
// with position-dependent fields (rel32 displacements, absolute global
// addresses) masked out — refined by call-graph degree when signatures
// collide.
#pragma once

#include <map>
#include <string>

#include "common/status.hpp"
#include "kcc/image.hpp"

namespace kshot::patchtool {

/// Normalized signature of one function body (stable across relocation).
u64 function_signature(const kcc::KernelImage& img, const std::string& name);

struct MatchResult {
  /// post-image function name -> pre-image function name.
  std::map<std::string, std::string> matches;
  std::vector<std::string> unmatched;  // post functions with no counterpart
  std::vector<std::string> ambiguous;  // resolved by call-graph refinement
};

/// Aligns the functions of `post` with those of `pre` using signatures and
/// call-graph out-degree. Designed for images built from related sources
/// (the pre/post pair of a patch). `jobs` parallelizes the per-function
/// signature computation; matching itself stays sequential, so the result
/// is identical for any jobs value.
MatchResult match_functions(const kcc::KernelImage& pre,
                            const kcc::KernelImage& post, u32 jobs = 1);

}  // namespace kshot::patchtool
