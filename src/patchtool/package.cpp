#include "patchtool/package.hpp"

#include "common/byte_io.hpp"
#include "crypto/hmac.hpp"
#include "crypto/simple_hash.hpp"

namespace kshot::patchtool {

namespace {

void put_string8(ByteWriter& w, const std::string& s) {
  w.put_u8(static_cast<u8>(std::min<size_t>(s.size(), 255)));
  w.put_bytes(to_bytes(s.substr(0, 255)));
}

Result<std::string> get_string8(ByteReader& r) {
  auto len = r.get_u8();
  if (!len) return len.status();
  auto bytes = r.get_bytes(*len);
  if (!bytes) return bytes.status();
  return std::string(bytes->begin(), bytes->end());
}

Result<std::string_view> get_string8_view(ByteReader& r) {
  auto len = r.get_u8();
  if (!len) return len.status();
  auto bytes = r.get_span(*len);
  if (!bytes) return bytes.status();
  return std::string_view(reinterpret_cast<const char*>(bytes->data()),
                          bytes->size());
}

Bytes serialize_entries(const PatchSet& set, const PatchOp* override_op,
                        u16 version) {
  ByteWriter w;
  put_string8(w, set.id);
  put_string8(w, set.kernel_version);
  if (version >= kPackageVersionLifecycle) {
    w.put_u8(static_cast<u8>(std::min<size_t>(set.depends.size(), 255)));
    for (size_t i = 0; i < std::min<size_t>(set.depends.size(), 255); ++i) {
      put_string8(w, set.depends[i]);
    }
    w.put_u8(static_cast<u8>(std::min<size_t>(set.supersedes.size(), 255)));
    for (size_t i = 0; i < std::min<size_t>(set.supersedes.size(), 255); ++i) {
      put_string8(w, set.supersedes[i]);
    }
  }
  for (const auto& p : set.patches) {
    // 42-byte header (see file comment).
    w.put_u16(p.sequence);
    w.put_u8(static_cast<u8>(override_op ? *override_op : p.op));
    w.put_u8(static_cast<u8>(p.type));
    w.put_u64(p.taddr);
    w.put_u64(p.paddr);
    w.put_u32(static_cast<u32>(p.code.size()));
    w.put_u16(p.ftrace_off);
    w.put_u16(static_cast<u16>(p.relocs.size()));
    w.put_u16(static_cast<u16>(p.var_edits.size()));
    w.put_u32(crypto::crc32(p.code));
    w.put_u64(crypto::sdbm(to_bytes(p.name)));
    // Trailer: diagnostics + variable-size payloads.
    put_string8(w, p.name);
    if (version >= kPackageVersionLifecycle) {
      w.put_u8(p.splice ? 1 : 0);
      w.put_u32(p.old_size);
    }
    for (const auto& rel : p.relocs) {
      w.put_u32(rel.offset);
      w.put_u32(static_cast<u32>(rel.patch_index));
      w.put_u64(rel.target);
    }
    for (const auto& v : p.var_edits) {
      w.put_u64(v.addr);
      w.put_u64(v.value);
      w.put_u8(static_cast<u8>(v.kind));
    }
    w.put_bytes(p.code);
  }
  return w.take();
}

}  // namespace

crypto::Digest256 package_digest(ByteSpan wire_after_digest) {
  return crypto::sha256(wire_after_digest);
}

namespace {

Bytes wrap_entries(const PatchSet& set, Bytes entries, u16 version) {
  crypto::Digest256 digest = package_digest(entries);

  ByteWriter w;
  w.put_u32(kPackageMagic);
  w.put_u16(version);
  w.put_u16(static_cast<u16>(set.patches.size()));
  w.put_u32(static_cast<u32>(entries.size()));
  w.put_bytes(ByteSpan(digest.data(), digest.size()));
  w.put_bytes(entries);
  return w.take();
}

u16 wire_version_for(const PatchSet& set) {
  return set.has_lifecycle() ? kPackageVersionLifecycle : kPackageVersion;
}

}  // namespace

Bytes serialize_patchset(const PatchSet& set, PatchOp op) {
  u16 v = wire_version_for(set);
  return wrap_entries(set, serialize_entries(set, &op, v), v);
}

Bytes serialize_patchset_raw(const PatchSet& set) {
  u16 v = wire_version_for(set);
  return wrap_entries(set, serialize_entries(set, nullptr, v), v);
}

Result<PatchOp> peek_op(ByteSpan wire) {
  ByteReader r(wire);
  auto magic = r.get_u32();
  if (!magic || *magic != kPackageMagic) {
    return Status{Errc::kIntegrityFailure, "bad package magic"};
  }
  auto version = r.get_u16();
  if (!version ||
      (*version != kPackageVersion && *version != kPackageVersionLifecycle)) {
    return Status{Errc::kIntegrityFailure, "unsupported package version"};
  }
  // Skip count/size/digest, id and kernel version strings.
  if (!r.skip(2 + 4 + 32).is_ok()) {
    return Status{Errc::kOutOfRange, "truncated package"};
  }
  ByteReader r2 = r;
  auto id = get_string8(r2);
  if (!id) return id.status();
  auto kver = get_string8(r2);
  if (!kver) return kver.status();
  if (*version >= kPackageVersionLifecycle) {
    // Skip the depends / supersedes id lists.
    for (int list = 0; list < 2; ++list) {
      auto n = r2.get_u8();
      if (!n) return n.status();
      for (u8 k = 0; k < *n; ++k) {
        auto s = get_string8(r2);
        if (!s) return s.status();
      }
    }
  }
  KSHOT_RETURN_IF_ERROR(r2.skip(2));  // sequence
  auto op = r2.get_u8();
  if (!op) return op.status();
  if (*op != 1 && *op != 2) {
    return Status{Errc::kIntegrityFailure, "bad op field"};
  }
  return static_cast<PatchOp>(*op);
}

Result<PatchSet> parse_patchset(ByteSpan wire) {
  ByteReader r(wire);
  auto magic = r.get_u32();
  if (!magic || *magic != kPackageMagic) {
    return Status{Errc::kIntegrityFailure, "bad package magic"};
  }
  auto version = r.get_u16();
  if (!version ||
      (*version != kPackageVersion && *version != kPackageVersionLifecycle)) {
    return Status{Errc::kIntegrityFailure, "unsupported package version"};
  }
  const bool v2 = *version == kPackageVersionLifecycle;
  auto count = r.get_u16();
  if (!count) return count.status();
  auto entries_size = r.get_u32();
  if (!entries_size) return entries_size.status();
  auto digest_bytes = r.get_bytes(32);
  if (!digest_bytes) return digest_bytes.status();
  auto entries = r.get_span(*entries_size);
  if (!entries) return Status{Errc::kIntegrityFailure, "truncated package"};
  if (!r.exhausted()) {
    return Status{Errc::kIntegrityFailure, "trailing bytes after package"};
  }

  crypto::Digest256 stored;
  std::copy(digest_bytes->begin(), digest_bytes->end(), stored.begin());
  if (!crypto::digest_equal(stored, package_digest(*entries))) {
    return Status{Errc::kIntegrityFailure, "package digest mismatch"};
  }

  ByteReader er(*entries);
  PatchSet set;
  auto id = get_string8(er);
  if (!id) return id.status();
  set.id = std::move(*id);
  auto kver = get_string8(er);
  if (!kver) return kver.status();
  set.kernel_version = std::move(*kver);
  if (v2) {
    auto ndep = er.get_u8();
    if (!ndep) return ndep.status();
    for (u8 k = 0; k < *ndep; ++k) {
      auto dep = get_string8(er);
      if (!dep) return dep.status();
      set.depends.push_back(std::move(*dep));
    }
    auto nsup = er.get_u8();
    if (!nsup) return nsup.status();
    for (u8 k = 0; k < *nsup; ++k) {
      auto sup = get_string8(er);
      if (!sup) return sup.status();
      set.supersedes.push_back(std::move(*sup));
    }
  }

  for (u16 i = 0; i < *count; ++i) {
    FunctionPatch p;
    auto seq = er.get_u16();
    auto op = er.get_u8();
    auto type = er.get_u8();
    auto taddr = er.get_u64();
    auto paddr = er.get_u64();
    auto size = er.get_u32();
    auto ftrace_off = er.get_u16();
    auto nreloc = er.get_u16();
    auto nvar = er.get_u16();
    auto crc = er.get_u32();
    auto name_hash = er.get_u64();
    if (!seq || !op || !type || !taddr || !paddr || !size || !ftrace_off ||
        !nreloc || !nvar || !crc || !name_hash) {
      return Status{Errc::kIntegrityFailure, "truncated function header"};
    }
    if (*op != 1 && *op != 2) {
      return Status{Errc::kIntegrityFailure, "bad op field"};
    }
    if (*type < 1 || *type > 3) {
      return Status{Errc::kIntegrityFailure, "bad type field"};
    }
    p.sequence = *seq;
    p.op = static_cast<PatchOp>(*op);
    p.type = static_cast<PatchType>(*type);
    p.taddr = *taddr;
    p.paddr = *paddr;
    p.ftrace_off = *ftrace_off;

    auto name = get_string8(er);
    if (!name) return name.status();
    p.name = std::move(*name);
    if (crypto::sdbm(to_bytes(p.name)) != *name_hash) {
      return Status{Errc::kIntegrityFailure, "name hash mismatch"};
    }
    if (v2) {
      auto flags = er.get_u8();
      if (!flags) return flags.status();
      if (*flags > 1) {
        return Status{Errc::kIntegrityFailure, "bad function flags"};
      }
      p.splice = (*flags & 1) != 0;
      auto old_size = er.get_u32();
      if (!old_size) return old_size.status();
      p.old_size = *old_size;
      if (p.splice && p.taddr == 0) {
        return Status{Errc::kIntegrityFailure, "splice without target"};
      }
      if (p.splice && p.paddr != 0) {
        return Status{Errc::kIntegrityFailure, "splice with mem_X paddr"};
      }
    }
    for (u16 k = 0; k < *nreloc; ++k) {
      auto off = er.get_u32();
      auto idx = er.get_u32();
      auto target = er.get_u64();
      if (!off || !idx || !target) {
        return Status{Errc::kIntegrityFailure, "truncated reloc"};
      }
      p.relocs.push_back(
          {*off, static_cast<i32>(*idx), *target});
    }
    for (u16 k = 0; k < *nvar; ++k) {
      auto addr = er.get_u64();
      auto value = er.get_u64();
      auto kind = er.get_u8();
      if (!addr || !value || !kind) {
        return Status{Errc::kIntegrityFailure, "truncated var edit"};
      }
      if (*kind != 1 && *kind != 2) {
        return Status{Errc::kIntegrityFailure, "bad var edit kind"};
      }
      p.var_edits.push_back(
          {*addr, *value, static_cast<VarEdit::Kind>(*kind)});
    }
    auto code = er.get_bytes(*size);
    if (!code) return Status{Errc::kIntegrityFailure, "truncated code"};
    p.code = std::move(*code);
    if (crypto::crc32(p.code) != *crc) {
      return Status{Errc::kIntegrityFailure, "function payload CRC mismatch"};
    }
    set.patches.push_back(std::move(p));
  }
  if (!er.exhausted()) {
    return Status{Errc::kIntegrityFailure, "trailing bytes in package"};
  }
  return set;
}

Result<PatchSetView> parse_patchset_view(ByteSpan wire, Arena& arena) {
  // Mirrors parse_patchset check for check — including the exact Status
  // messages — so a package is accepted/rejected identically by both
  // parsers and the zero-copy differential suite can compare verdicts.
  ByteReader r(wire);
  auto magic = r.get_u32();
  if (!magic || *magic != kPackageMagic) {
    return Status{Errc::kIntegrityFailure, "bad package magic"};
  }
  auto version = r.get_u16();
  if (!version ||
      (*version != kPackageVersion && *version != kPackageVersionLifecycle)) {
    return Status{Errc::kIntegrityFailure, "unsupported package version"};
  }
  const bool v2 = *version == kPackageVersionLifecycle;
  auto count = r.get_u16();
  if (!count) return count.status();
  auto entries_size = r.get_u32();
  if (!entries_size) return entries_size.status();
  auto digest_bytes = r.get_span(32);
  if (!digest_bytes) return digest_bytes.status();
  auto entries = r.get_span(*entries_size);
  if (!entries) return Status{Errc::kIntegrityFailure, "truncated package"};
  if (!r.exhausted()) {
    return Status{Errc::kIntegrityFailure, "trailing bytes after package"};
  }

  crypto::Digest256 stored;
  std::copy(digest_bytes->begin(), digest_bytes->end(), stored.begin());
  if (!crypto::digest_equal(stored, package_digest(*entries))) {
    return Status{Errc::kIntegrityFailure, "package digest mismatch"};
  }

  ByteReader er(*entries);
  PatchSetView set;
  auto id = get_string8_view(er);
  if (!id) return id.status();
  set.id = *id;
  auto kver = get_string8_view(er);
  if (!kver) return kver.status();
  set.kernel_version = *kver;
  if (v2) {
    for (int list = 0; list < 2; ++list) {
      auto n = er.get_u8();
      if (!n) return n.status();
      std::string_view* ids = arena.alloc_array<std::string_view>(*n);
      for (u8 k = 0; k < *n; ++k) {
        auto s = get_string8_view(er);
        if (!s) return s.status();
        ids[k] = *s;
      }
      auto span = std::span<const std::string_view>(ids, *n);
      if (list == 0) {
        set.depends = span;
      } else {
        set.supersedes = span;
      }
    }
  }

  FunctionPatchView* patches = arena.alloc_array<FunctionPatchView>(*count);
  for (u16 i = 0; i < *count; ++i) {
    FunctionPatchView& p = patches[i];
    auto seq = er.get_u16();
    auto op = er.get_u8();
    auto type = er.get_u8();
    auto taddr = er.get_u64();
    auto paddr = er.get_u64();
    auto size = er.get_u32();
    auto ftrace_off = er.get_u16();
    auto nreloc = er.get_u16();
    auto nvar = er.get_u16();
    auto crc = er.get_u32();
    auto name_hash = er.get_u64();
    if (!seq || !op || !type || !taddr || !paddr || !size || !ftrace_off ||
        !nreloc || !nvar || !crc || !name_hash) {
      return Status{Errc::kIntegrityFailure, "truncated function header"};
    }
    if (*op != 1 && *op != 2) {
      return Status{Errc::kIntegrityFailure, "bad op field"};
    }
    if (*type < 1 || *type > 3) {
      return Status{Errc::kIntegrityFailure, "bad type field"};
    }
    p.sequence = *seq;
    p.op = static_cast<PatchOp>(*op);
    p.type = static_cast<PatchType>(*type);
    p.taddr = *taddr;
    p.paddr = *paddr;
    p.ftrace_off = *ftrace_off;

    auto name = get_string8_view(er);
    if (!name) return name.status();
    p.name = *name;
    if (crypto::sdbm(ByteSpan(reinterpret_cast<const u8*>(p.name.data()),
                              p.name.size())) != *name_hash) {
      return Status{Errc::kIntegrityFailure, "name hash mismatch"};
    }
    if (v2) {
      auto flags = er.get_u8();
      if (!flags) return flags.status();
      if (*flags > 1) {
        return Status{Errc::kIntegrityFailure, "bad function flags"};
      }
      p.splice = (*flags & 1) != 0;
      auto old_size = er.get_u32();
      if (!old_size) return old_size.status();
      p.old_size = *old_size;
      if (p.splice && p.taddr == 0) {
        return Status{Errc::kIntegrityFailure, "splice without target"};
      }
      if (p.splice && p.paddr != 0) {
        return Status{Errc::kIntegrityFailure, "splice with mem_X paddr"};
      }
    }
    RelocEntry* relocs = arena.alloc_array<RelocEntry>(*nreloc);
    for (u16 k = 0; k < *nreloc; ++k) {
      auto off = er.get_u32();
      auto idx = er.get_u32();
      auto target = er.get_u64();
      if (!off || !idx || !target) {
        return Status{Errc::kIntegrityFailure, "truncated reloc"};
      }
      relocs[k] = {*off, static_cast<i32>(*idx), *target};
    }
    p.relocs = std::span<const RelocEntry>(relocs, *nreloc);
    VarEdit* vars = arena.alloc_array<VarEdit>(*nvar);
    for (u16 k = 0; k < *nvar; ++k) {
      auto addr = er.get_u64();
      auto value = er.get_u64();
      auto kind = er.get_u8();
      if (!addr || !value || !kind) {
        return Status{Errc::kIntegrityFailure, "truncated var edit"};
      }
      if (*kind != 1 && *kind != 2) {
        return Status{Errc::kIntegrityFailure, "bad var edit kind"};
      }
      vars[k] = {*addr, *value, static_cast<VarEdit::Kind>(*kind)};
    }
    p.var_edits = std::span<const VarEdit>(vars, *nvar);
    auto code = er.get_span(*size);
    if (!code) return Status{Errc::kIntegrityFailure, "truncated code"};
    p.code = *code;
    if (crypto::crc32(p.code) != *crc) {
      return Status{Errc::kIntegrityFailure, "function payload CRC mismatch"};
    }
  }
  if (!er.exhausted()) {
    return Status{Errc::kIntegrityFailure, "trailing bytes in package"};
  }
  set.patches = std::span<const FunctionPatchView>(patches, *count);
  return set;
}

PatchSetView view_of_patchset(const PatchSet& set, Arena& arena) {
  PatchSetView v;
  v.id = set.id;
  v.kernel_version = set.kernel_version;
  std::string_view* deps = arena.alloc_array<std::string_view>(
      set.depends.size() + set.supersedes.size());
  for (size_t i = 0; i < set.depends.size(); ++i) deps[i] = set.depends[i];
  for (size_t i = 0; i < set.supersedes.size(); ++i) {
    deps[set.depends.size() + i] = set.supersedes[i];
  }
  v.depends = std::span<const std::string_view>(deps, set.depends.size());
  v.supersedes = std::span<const std::string_view>(deps + set.depends.size(),
                                                   set.supersedes.size());
  FunctionPatchView* patches =
      arena.alloc_array<FunctionPatchView>(set.patches.size());
  for (size_t i = 0; i < set.patches.size(); ++i) {
    const FunctionPatch& p = set.patches[i];
    FunctionPatchView& pv = patches[i];
    pv.sequence = p.sequence;
    pv.op = p.op;
    pv.type = p.type;
    pv.name = p.name;
    pv.taddr = p.taddr;
    pv.paddr = p.paddr;
    pv.ftrace_off = p.ftrace_off;
    pv.code = ByteSpan(p.code);
    pv.relocs = std::span<const RelocEntry>(p.relocs);
    pv.var_edits = std::span<const VarEdit>(p.var_edits);
    pv.splice = p.splice;
    pv.old_size = p.old_size;
  }
  v.patches = std::span<const FunctionPatchView>(patches, set.patches.size());
  return v;
}

Bytes serialize_batch(const std::vector<Bytes>& packages) {
  ByteWriter w;
  w.put_u32(kBatchMagic);
  w.put_u32(static_cast<u32>(packages.size()));
  for (const Bytes& pkg : packages) {
    w.put_u32(static_cast<u32>(pkg.size()));
    w.put_bytes(pkg);
  }
  return w.take();
}

Result<std::vector<Bytes>> parse_batch(ByteSpan wire) {
  ByteReader r(wire);
  auto magic = r.get_u32();
  if (!magic || *magic != kBatchMagic) {
    return Status{Errc::kIntegrityFailure, "bad batch magic"};
  }
  auto count = r.get_u32();
  if (!count || *count == 0 || *count > kMaxBatchPackages) {
    return Status{Errc::kIntegrityFailure, "bad batch count"};
  }
  std::vector<Bytes> out;
  out.reserve(*count);
  for (u32 i = 0; i < *count; ++i) {
    auto len = r.get_u32();
    if (!len || *len == 0 || *len > r.remaining()) {
      return Status{Errc::kIntegrityFailure, "truncated batch entry"};
    }
    auto pkg = r.get_bytes(*len);
    if (!pkg) return Status{Errc::kIntegrityFailure, "truncated batch entry"};
    out.push_back(std::move(*pkg));
  }
  if (!r.exhausted()) {
    return Status{Errc::kIntegrityFailure, "trailing bytes in batch"};
  }
  return out;
}

Result<std::vector<ByteSpan>> parse_batch_view(ByteSpan wire) {
  ByteReader r(wire);
  auto magic = r.get_u32();
  if (!magic || *magic != kBatchMagic) {
    return Status{Errc::kIntegrityFailure, "bad batch magic"};
  }
  auto count = r.get_u32();
  if (!count || *count == 0 || *count > kMaxBatchPackages) {
    return Status{Errc::kIntegrityFailure, "bad batch count"};
  }
  std::vector<ByteSpan> out;
  out.reserve(*count);
  for (u32 i = 0; i < *count; ++i) {
    auto len = r.get_u32();
    if (!len || *len == 0 || *len > r.remaining()) {
      return Status{Errc::kIntegrityFailure, "truncated batch entry"};
    }
    auto pkg = r.get_span(*len);
    if (!pkg) return Status{Errc::kIntegrityFailure, "truncated batch entry"};
    out.push_back(*pkg);
  }
  if (!r.exhausted()) {
    return Status{Errc::kIntegrityFailure, "trailing bytes in batch"};
  }
  return out;
}

bool is_batch_wire(ByteSpan wire) {
  ByteReader r(wire);
  auto magic = r.get_u32();
  return magic && *magic == kBatchMagic;
}

}  // namespace kshot::patchtool
