#include "patchtool/bindiff.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "common/parallel.hpp"
#include "isa/isa.hpp"
#include "isa/reloc.hpp"

namespace kshot::patchtool {

Result<bool> functions_equal(const kcc::KernelImage& pre,
                             const kcc::KernelImage& post,
                             const std::string& name,
                             const DiffOptions& dopts) {
  const kcc::Symbol* a = pre.find_symbol(name);
  const kcc::Symbol* b = post.find_symbol(name);
  if (a == nullptr || b == nullptr) {
    return Status{Errc::kNotFound, "function missing from an image: " + name};
  }
  auto na = normalize_function(pre, *a, dopts.cache);
  if (!na) return na.status();
  auto nb = normalize_function(post, *b, dopts.cache);
  if (!nb) return nb.status();
  return *na == *nb;
}

Result<DiffResult> diff_images(const kcc::KernelImage& pre,
                               const kcc::KernelImage& post,
                               const DiffOptions& dopts) {
  DiffResult out;

  // Per-function comparisons are independent: fan out, then merge the
  // per-index slots in image order so the result (including which error
  // wins) is identical for any jobs value.
  const u32 n = static_cast<u32>(post.symbols.size());
  enum class Verdict : u8 { kUnchanged, kChanged, kAdded };
  std::vector<Verdict> verdicts(n, Verdict::kUnchanged);
  std::vector<std::optional<Status>> errors(n);
  parallel_for(n, dopts.jobs, [&](u32 i) {
    const auto& s = post.symbols[i];
    if (!pre.find_symbol(s.name)) {
      verdicts[i] = Verdict::kAdded;
      return;
    }
    auto eq = functions_equal(pre, post, s.name, dopts);
    if (!eq) {
      errors[i] = eq.status();
      return;
    }
    if (!*eq) verdicts[i] = Verdict::kChanged;
  });
  for (u32 i = 0; i < n; ++i) {
    if (errors[i]) return *errors[i];  // lowest-index error wins
    if (verdicts[i] == Verdict::kAdded) {
      out.added_functions.push_back(post.symbols[i].name);
    } else if (verdicts[i] == Verdict::kChanged) {
      out.changed_functions.push_back(post.symbols[i].name);
    }
  }
  for (const auto& s : pre.symbols) {
    if (!post.find_symbol(s.name)) out.removed_functions.push_back(s.name);
  }

  // Globals: shared globals must keep their addresses (8-byte slots in
  // declaration order); anything else is a layout-incompatible change.
  for (const auto& g : post.globals) {
    const kcc::GlobalSym* old = pre.find_global(g.name);
    if (old == nullptr) {
      if (g.addr < pre.data_base + pre.data_size()) {
        // New global did not land in slack space: prefix shifted.
        out.layout_compatible = false;
      }
      out.added_globals.push_back(g);
    } else {
      if (old->addr != g.addr) out.layout_compatible = false;
      if (old->init != g.init) out.modified_globals.push_back(g);
    }
  }
  return out;
}

Result<PatchSet> build_patchset(const kcc::KernelImage& pre,
                                const kcc::KernelImage& post,
                                const BuildPatchOptions& opts) {
  DiffOptions dopts{opts.jobs, opts.prep_cache};
  auto diff_r = diff_images(pre, post, dopts);
  if (!diff_r) return diff_r.status();
  DiffResult& diff = *diff_r;

  if (!diff.layout_compatible) {
    return Status{Errc::kUnsupported,
                  "patch changes shared data layout (paper Type 3 limit)"};
  }

  PatchSet set;
  set.id = opts.id;
  set.kernel_version = pre.version;

  std::set<std::string> source_changed(opts.source_changed.begin(),
                                       opts.source_changed.end());
  bool any_global_change =
      !diff.added_globals.empty() || !diff.modified_globals.empty();

  // Deterministic order: changed functions first (image order), then added.
  std::vector<std::string> fn_order;
  for (const auto& s : post.symbols) {
    if (std::find(diff.changed_functions.begin(), diff.changed_functions.end(),
                  s.name) != diff.changed_functions.end()) {
      fn_order.push_back(s.name);
    }
  }
  for (const auto& s : post.symbols) {
    if (std::find(diff.added_functions.begin(), diff.added_functions.end(),
                  s.name) != diff.added_functions.end()) {
      fn_order.push_back(s.name);
    }
  }

  std::map<std::string, int> patch_index;
  for (size_t i = 0; i < fn_order.size(); ++i) {
    patch_index[fn_order[i]] = static_cast<int>(i);
  }

  for (size_t i = 0; i < fn_order.size(); ++i) {
    const std::string& name = fn_order[i];
    const kcc::Symbol* post_sym = post.find_symbol(name);
    const kcc::Symbol* pre_sym = pre.find_symbol(name);

    FunctionPatch p;
    p.sequence = static_cast<u16>(i);
    p.op = PatchOp::kPatch;
    p.name = name;
    p.taddr = pre_sym ? pre_sym->addr : 0;
    p.ftrace_off = (pre_sym && pre_sym->traced) ? 5 : 0;
    auto body = post.function_bytes(name);
    if (!body) return body.status();
    p.code = std::move(*body);

    // Classify (paper §V-A / §VI-B): global edits dominate, then inlining.
    if (any_global_change) {
      p.type = PatchType::kType3;
    } else if (!source_changed.empty() && !source_changed.count(name)) {
      p.type = PatchType::kType2;
    } else {
      p.type = PatchType::kType1;
    }

    // External rel32 fixups.
    auto sites = isa::scan_rel32(p.code);
    if (!sites) return sites.status();
    for (const auto& s : *sites) {
      if (s.internal) continue;
      u64 post_target = post_sym->addr + static_cast<u64>(s.target_off);
      const kcc::Symbol* callee = post.symbol_at(post_target);
      if (callee == nullptr) {
        return Status{Errc::kInternal,
                      "unresolved external branch in " + name};
      }
      RelocEntry r;
      r.offset = static_cast<u32>(s.rel_off);
      auto idx = patch_index.find(callee->name);
      if (idx != patch_index.end()) {
        // Callee is itself in the patch set: bind to its mem_X copy.
        r.patch_index = idx->second;
      } else {
        const kcc::Symbol* running = pre.find_symbol(callee->name);
        if (running == nullptr) {
          return Status{Errc::kUnsupported,
                        "patched code calls function absent from the "
                        "running kernel: " +
                            callee->name};
        }
        r.target = running->addr;
      }
      p.relocs.push_back(r);
    }
    set.patches.push_back(std::move(p));
  }

  // Global-variable edits ride on the first patch entry (they are applied
  // once, before any trampoline is installed).
  if (!set.patches.empty()) {
    for (const auto& g : diff.added_globals) {
      set.patches[0].var_edits.push_back(
          {g.addr, static_cast<u64>(g.init), VarEdit::Kind::kInit});
    }
    for (const auto& g : diff.modified_globals) {
      set.patches[0].var_edits.push_back(
          {g.addr, static_cast<u64>(g.init), VarEdit::Kind::kSet});
    }
  } else if (any_global_change) {
    return Status{Errc::kUnsupported,
                  "data-only patches need at least one code change"};
  }

  return set;
}

}  // namespace kshot::patchtool
