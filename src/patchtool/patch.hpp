// In-memory patch representation shared by the patch server, the SGX
// preprocessing enclave, and the SMM handler.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace kshot::patchtool {

/// Function category from paper §V-A: Type 1 = plain replacement, Type 2 =
/// implicated via inlining, Type 3 = global/shared variable changes.
enum class PatchType : u8 { kType1 = 1, kType2 = 2, kType3 = 3 };

/// Operation field of the package header (§V-C).
enum class PatchOp : u8 { kPatch = 1, kRollback = 2 };

/// An external rel32 fixup inside a patched function body. If
/// `patch_index >= 0` the branch targets another function in the same patch
/// set (resolved after paddr assignment); otherwise `target` is an absolute
/// address in the running kernel.
struct RelocEntry {
  u32 offset = 0;       // offset of the rel32 field within the code payload
  i32 patch_index = -1;
  u64 target = 0;

  friend bool operator==(const RelocEntry&, const RelocEntry&) = default;
};

/// A global-variable edit applied from SMM before installing trampolines.
struct VarEdit {
  enum class Kind : u8 {
    kInit = 1,  // new global: initialize slack slot
    kSet = 2,   // existing global: overwrite value
  };
  u64 addr = 0;
  u64 value = 0;
  Kind kind = Kind::kInit;

  friend bool operator==(const VarEdit&, const VarEdit&) = default;
};

/// One function-level patch (one Fig. 3 package entry).
struct FunctionPatch {
  u16 sequence = 0;
  PatchOp op = PatchOp::kPatch;
  PatchType type = PatchType::kType1;
  std::string name;      // symbol name (diagnostic; not in the 42-byte header)
  u64 taddr = 0;         // entry of the vulnerable function in the running
                         // kernel; 0 for newly added helper functions
  u64 paddr = 0;         // location in mem_X; assigned by SGX preprocessing
  u16 ftrace_off = 0;    // 5 if the target begins with the ftrace pad
  Bytes code;            // post-patch function body
  std::vector<RelocEntry> relocs;
  std::vector<VarEdit> var_edits;
  /// In-place splice: the body is written directly over the old function at
  /// taddr (no mem_X copy, no trampoline). Chosen by SGX preprocessing when
  /// the new body fits the old footprint; paddr stays 0. Wire v2 only.
  bool splice = false;
  /// Linked size of the function being replaced (splice-eligibility input;
  /// 0 = unknown). Wire v2 only.
  u32 old_size = 0;

  [[nodiscard]] size_t payload_bytes() const {
    return code.size() + relocs.size() * 16 + var_edits.size() * 17;
  }

  friend bool operator==(const FunctionPatch&, const FunctionPatch&) = default;
};

/// A complete patch produced for one CVE / one kernel update.
struct PatchSet {
  std::string id;              // e.g. "CVE-2017-17806"
  std::string kernel_version;  // target kernel the patch was built against
  std::vector<FunctionPatch> patches;
  /// Patch-stack lifecycle metadata (wire v2). `depends`: ids of patch sets
  /// that must already be applied. `supersedes`: ids of applied sets this
  /// cumulative patch replaces — the SMM handler retires their trampolines
  /// and frees their mem_X slots in the same SMI that installs this set.
  std::vector<std::string> depends;
  std::vector<std::string> supersedes;

  [[nodiscard]] size_t total_code_bytes() const {
    size_t n = 0;
    for (const auto& p : patches) n += p.code.size();
    return n;
  }

  /// True when the set carries any lifecycle data that only wire v2 can
  /// represent (the serializer emits byte-identical v1 otherwise).
  [[nodiscard]] bool has_lifecycle() const {
    if (!depends.empty() || !supersedes.empty()) return true;
    for (const auto& p : patches) {
      if (p.splice || p.old_size != 0) return true;
    }
    return false;
  }

  friend bool operator==(const PatchSet&, const PatchSet&) = default;
};

}  // namespace kshot::patchtool
