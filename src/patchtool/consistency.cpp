#include "patchtool/consistency.hpp"

#include <algorithm>

#include "patchtool/callgraph.hpp"

namespace kshot::patchtool {

namespace {

void collect_vars(const kcc::Expr& e, std::set<std::string>& out) {
  switch (e.kind) {
    case kcc::Expr::Kind::kNum:
      return;
    case kcc::Expr::Kind::kVar:
      out.insert(e.name);
      return;
    case kcc::Expr::Kind::kBin:
      collect_vars(*e.lhs, out);
      collect_vars(*e.rhs, out);
      return;
    case kcc::Expr::Kind::kCall:
      for (const auto& a : e.args) collect_vars(*a, out);
      return;
  }
}

void collect_vars(const std::vector<kcc::StmtPtr>& body,
                  std::set<std::string>& reads,
                  std::set<std::string>& writes) {
  for (const auto& s : body) {
    if (s->value) collect_vars(*s->value, reads);
    if (s->cond) collect_vars(*s->cond, reads);
    if (s->kind == kcc::Stmt::Kind::kAssign) writes.insert(s->name);
    collect_vars(s->body, reads, writes);
    collect_vars(s->else_body, reads, writes);
  }
}

}  // namespace

std::set<std::string> referenced_globals(const kcc::Function& f,
                                         const kcc::Module& m) {
  std::set<std::string> reads, writes;
  collect_vars(f.body, reads, writes);
  std::set<std::string> all;
  all.insert(reads.begin(), reads.end());
  all.insert(writes.begin(), writes.end());

  std::set<std::string> globals;
  for (const auto& g : m.globals) {
    if (all.count(g.name)) globals.insert(g.name);
  }
  return globals;
}

ConsistencyReport check_consistency(const kcc::Module& post_module,
                                    const kcc::KernelImage& post_image,
                                    const DiffResult& diff) {
  ConsistencyReport rep;

  std::set<std::string> touched_globals;
  for (const auto& g : diff.added_globals) touched_globals.insert(g.name);
  for (const auto& g : diff.modified_globals) touched_globals.insert(g.name);
  if (touched_globals.empty()) return rep;

  std::set<std::string> patched(diff.changed_functions.begin(),
                                diff.changed_functions.end());
  patched.insert(diff.added_functions.begin(), diff.added_functions.end());

  // For every source function referencing a touched global, find the binary
  // functions it lands in (itself, or — if inlined — its transitive
  // callers) and require them to be in the patch set.
  for (const auto& f : post_module.functions) {
    std::set<std::string> refs = referenced_globals(f, post_module);
    bool touches = std::any_of(
        refs.begin(), refs.end(),
        [&](const std::string& g) { return touched_globals.count(g) > 0; });
    if (!touches) continue;

    std::set<std::string> binary_homes =
        implicated_functions(post_module, post_image, {f.name});
    for (const auto& home : binary_homes) {
      if (!patched.count(home)) {
        rep.safe = false;
        rep.warnings.push_back(
            "function '" + home + "' uses patched global data (via '" +
            f.name + "') but is not part of the patch");
      }
    }
  }
  std::sort(rep.warnings.begin(), rep.warnings.end());
  rep.warnings.erase(std::unique(rep.warnings.begin(), rep.warnings.end()),
                     rep.warnings.end());
  return rep;
}

}  // namespace kshot::patchtool
