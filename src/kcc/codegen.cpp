#include "kcc/codegen.hpp"

#include <cstdint>
#include <functional>

namespace kshot::kcc {

namespace {

using isa::Assembler;
using isa::Label;
using isa::Op;

class FnCodegen {
 public:
  FnCodegen(const Function& f, const CodegenContext& ctx) : f_(f), ctx_(ctx) {}

  Result<CompiledFunction> run() {
    KSHOT_RETURN_IF_ERROR(collect_slots());

    bool traced = ctx_.ftrace && !f_.notrace;
    if (traced) asm_.nop5();

    // Prologue: save caller fp, establish frame, spill params. The first
    // instruction is deliberately 6 bytes long so that a live-patch
    // trampoline (5-byte jmp) overwriting the entry leaves no instruction
    // boundary inside the overwritten window — a thread suspended mid-call
    // can only have its saved rip at the entry itself, where resuming into
    // the trampoline is semantically a clean restart of the function.
    asm_.alui(Op::kSubi, kRegSp, 8);
    asm_.storer(kRegFp, kRegSp, 0);
    asm_.mov(kRegFp, kRegSp);
    asm_.alui(Op::kSubi, kRegSp, static_cast<i64>(8 * slots_.size()));
    if (f_.params.size() > kMaxArgs) {
      return Status{Errc::kUnsupported,
                    "function '" + f_.name + "' has too many parameters"};
    }
    for (size_t i = 0; i < f_.params.size(); ++i) {
      asm_.storer(static_cast<u8>(kRegArg0 + i), kRegFp,
                  slot_disp(f_.params[i]));
    }

    epilogue_ = asm_.new_label();
    KSHOT_RETURN_IF_ERROR(gen_stmts(f_.body));

    // Fall-through return: r0 = 0.
    asm_.movi(kRegAcc, 0);
    asm_.bind(epilogue_);
    asm_.mov(kRegSp, kRegFp);
    asm_.pop(kRegFp);
    asm_.ret();

    auto code = asm_.finish();
    if (!code) return code.status();
    CompiledFunction out;
    out.name = f_.name;
    out.code = std::move(*code);
    out.ext_refs = asm_.ext_refs();
    out.traced = traced;
    return out;
  }

 private:
  // Slot management --------------------------------------------------------
  Status collect_slots() {
    for (const auto& p : f_.params) {
      if (slots_.count(p)) {
        return {Errc::kInvalidArgument, "duplicate parameter '" + p + "'"};
      }
      slots_[p] = static_cast<int>(slots_.size());
    }
    std::function<Status(const std::vector<StmtPtr>&)> walk =
        [&](const std::vector<StmtPtr>& body) -> Status {
      for (const auto& s : body) {
        if (s->kind == Stmt::Kind::kLet && !slots_.count(s->name)) {
          slots_[s->name] = static_cast<int>(slots_.size());
        }
        if (s->kind == Stmt::Kind::kIf || s->kind == Stmt::Kind::kWhile) {
          KSHOT_RETURN_IF_ERROR(walk(s->body));
          KSHOT_RETURN_IF_ERROR(walk(s->else_body));
        }
      }
      return Status::ok();
    };
    return walk(f_.body);
  }

  i32 slot_disp(const std::string& name) const {
    return -8 * (slots_.at(name) + 1);
  }

  bool is_local(const std::string& name) const { return slots_.count(name); }

  // Statements --------------------------------------------------------------
  Status gen_stmts(const std::vector<StmtPtr>& body) {
    for (const auto& s : body) KSHOT_RETURN_IF_ERROR(gen_stmt(*s));
    return Status::ok();
  }

  Status gen_stmt(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::kLet:
      case Stmt::Kind::kAssign: {
        KSHOT_RETURN_IF_ERROR(gen_expr(*s.value));
        if (is_local(s.name)) {
          asm_.storer(kRegAcc, kRegFp, slot_disp(s.name));
        } else {
          auto g = ctx_.global_addrs.find(s.name);
          if (g == ctx_.global_addrs.end()) {
            return {Errc::kNotFound, "unknown variable '" + s.name + "'"};
          }
          asm_.storeg(kRegAcc, static_cast<u32>(g->second));
        }
        return Status::ok();
      }
      case Stmt::Kind::kIf: {
        Label lelse = asm_.new_label();
        Label lend = asm_.new_label();
        KSHOT_RETURN_IF_ERROR(gen_expr(*s.cond));
        asm_.cmpi(kRegAcc, 0);
        asm_.je(lelse);
        KSHOT_RETURN_IF_ERROR(gen_stmts(s.body));
        asm_.jmp(lend);
        asm_.bind(lelse);
        KSHOT_RETURN_IF_ERROR(gen_stmts(s.else_body));
        asm_.bind(lend);
        return Status::ok();
      }
      case Stmt::Kind::kWhile: {
        Label lcond = asm_.new_label();
        Label lend = asm_.new_label();
        asm_.bind(lcond);
        KSHOT_RETURN_IF_ERROR(gen_expr(*s.cond));
        asm_.cmpi(kRegAcc, 0);
        asm_.je(lend);
        KSHOT_RETURN_IF_ERROR(gen_stmts(s.body));
        asm_.jmp(lcond);
        asm_.bind(lend);
        return Status::ok();
      }
      case Stmt::Kind::kReturn:
        KSHOT_RETURN_IF_ERROR(gen_expr(*s.value));
        asm_.jmp(epilogue_);
        return Status::ok();
      case Stmt::Kind::kBug:
        asm_.trap(static_cast<u8>(s.num));
        return Status::ok();
      case Stmt::Kind::kPad:
        for (i64 i = 0; i < s.num; ++i) asm_.nop();
        return Status::ok();
      case Stmt::Kind::kExpr:
        return gen_expr(*s.value);
    }
    return Status::ok();
  }

  /// Loads an arbitrary 64-bit constant into `dst`. movi carries a
  /// sign-extended imm32; wider values are assembled from 16-bit chunks
  /// (shifted in high-to-low so sign extension never corrupts the result).
  void emit_const(u8 dst, u64 v) {
    i64 sv = static_cast<i64>(v);
    if (sv >= INT32_MIN && sv <= INT32_MAX) {
      asm_.movi(dst, sv);
      return;
    }
    asm_.movi(dst, static_cast<i64>((v >> 48) & 0xFFFF));
    for (int shift = 32; shift >= 0; shift -= 16) {
      asm_.alui(Op::kShli, dst, 16);
      u64 chunk = (v >> shift) & 0xFFFF;
      if (chunk != 0) asm_.alui(Op::kOri, dst, static_cast<i64>(chunk));
    }
  }

  // Expressions: evaluate into r0 ---------------------------------------
  Status gen_expr(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kNum:
        emit_const(kRegAcc, static_cast<u64>(e.num));
        return Status::ok();
      case Expr::Kind::kVar: {
        if (is_local(e.name)) {
          asm_.loadr(kRegAcc, kRegFp, slot_disp(e.name));
          return Status::ok();
        }
        auto g = ctx_.global_addrs.find(e.name);
        if (g == ctx_.global_addrs.end()) {
          return {Errc::kNotFound,
                  "unknown variable '" + e.name + "' in " + f_.name};
        }
        asm_.loadg(kRegAcc, static_cast<u32>(g->second));
        return Status::ok();
      }
      case Expr::Kind::kBin: {
        KSHOT_RETURN_IF_ERROR(gen_expr(*e.lhs));
        asm_.push(kRegAcc);
        KSHOT_RETURN_IF_ERROR(gen_expr(*e.rhs));
        asm_.pop(kRegScratch);  // scratch = lhs, acc = rhs
        return gen_binop(e.op);
      }
      case Expr::Kind::kCall: {
        if (!ctx_.known_functions.count(e.name)) {
          return {Errc::kNotFound,
                  "call to unknown function '" + e.name + "' in " + f_.name};
        }
        if (e.args.size() > kMaxArgs) {
          return {Errc::kUnsupported, "too many call arguments"};
        }
        for (const auto& a : e.args) {
          KSHOT_RETURN_IF_ERROR(gen_expr(*a));
          asm_.push(kRegAcc);
        }
        for (size_t i = e.args.size(); i-- > 0;) {
          asm_.pop(static_cast<u8>(kRegArg0 + i));
        }
        asm_.call_sym(e.name);
        return Status::ok();
      }
    }
    return Status::ok();
  }

  Status gen_binop(BinOp op) {
    // scratch = lhs, acc = rhs; result must land in acc.
    switch (op) {
      case BinOp::kAdd: return arith(Op::kAdd);
      case BinOp::kSub: return arith(Op::kSub);
      case BinOp::kMul: return arith(Op::kMul);
      case BinOp::kDiv: return arith(Op::kDiv);
      case BinOp::kMod: return arith(Op::kMod);
      case BinOp::kAnd: return arith(Op::kAnd);
      case BinOp::kOr: return arith(Op::kOr);
      case BinOp::kXor: return arith(Op::kXor);
      case BinOp::kShl: return arith(Op::kShl);
      case BinOp::kShr: return arith(Op::kShr);
      case BinOp::kEq: return compare(Op::kJe);
      case BinOp::kNe: return compare(Op::kJne);
      case BinOp::kLt: return compare(Op::kJl);
      case BinOp::kLe: return compare(Op::kJle);
      case BinOp::kGt: return compare(Op::kJg);
      case BinOp::kGe: return compare(Op::kJge);
    }
    return Status::ok();
  }

  Status arith(Op op) {
    asm_.alu(op, kRegScratch, kRegAcc);  // scratch = lhs OP rhs
    asm_.mov(kRegAcc, kRegScratch);
    return Status::ok();
  }

  Status compare(Op jcc) {
    Label ltrue = asm_.new_label();
    Label lend = asm_.new_label();
    asm_.cmp(kRegScratch, kRegAcc);
    asm_.branch(jcc, ltrue);
    asm_.movi(kRegAcc, 0);
    asm_.jmp(lend);
    asm_.bind(ltrue);
    asm_.movi(kRegAcc, 1);
    asm_.bind(lend);
    return Status::ok();
  }

  const Function& f_;
  const CodegenContext& ctx_;
  Assembler asm_;
  std::map<std::string, int> slots_;
  Label epilogue_;
};

}  // namespace

Result<CompiledFunction> codegen_function(const Function& f,
                                          const CodegenContext& ctx) {
  return FnCodegen(f, ctx).run();
}

}  // namespace kshot::kcc
