// AST mutation hooks over ksrc modules. The CVE synthesizer (cve/synth.*)
// builds the *fixed* source as an AST and derives the matching vulnerable
// source by mutating a clone at the planted site: dropping the -EINVAL
// guard (fix-adds-validation, the patch grows), swapping the guard action
// for a trap (size-neutral fix, splice-eligible), removing a post-only
// audit global, and retuning pad() size shaping.
#pragma once

#include <string>

#include "kcc/ast.hpp"

namespace kshot::kcc {

/// Index into fn.body of the first else-less `if` whose then-body ends in
/// `return (0 - 22);` — the suite's canonical -EINVAL guard idiom — or in
/// the inline-safe assignment form `r = (0 - 22);` (inline functions may
/// not return early). Returns -1 when the function has no such guard.
int find_einval_guard(const Function& fn);

/// Deletes the guard statement entirely, so the vulnerable body is the
/// fixed body minus the validation. Returns false when no guard exists.
bool drop_einval_guard(Function& fn);

/// Replaces the guard's then-body with a single `bug(trap);`, keeping the
/// compare + branch: the vulnerable and fixed bodies then differ only in
/// the guarded action, the size-neutral shape the in-place splice path
/// needs. Returns false when no guard exists.
bool trap_einval_guard(Function& fn, i64 trap);

/// Removes a global declaration (a post-patch-only audit counter). Any
/// uses are expected to live inside statements removed by
/// drop_einval_guard. Returns false when the global does not exist.
bool drop_global(Module& m, const std::string& name);

/// Sets the byte count of the function's leading pad() statement. Returns
/// false when the first statement is not a pad().
bool set_leading_pad(Function& fn, i64 bytes);

}  // namespace kshot::kcc
