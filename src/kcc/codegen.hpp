// Code generation: one AST function -> machine code + external call refs.
//
// Calling convention (shared with the kernel runtime):
//   r1..r5   arguments
//   r0       return value / expression accumulator
//   r10      secondary scratch
//   r14      frame pointer (callee saved)
//   r15      stack pointer
// All params and locals live in stack slots at [fp - 8*(slot+1)], so nothing
// is live in scratch registers across a call.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "isa/assembler.hpp"
#include "kcc/ast.hpp"

namespace kshot::kcc {

inline constexpr u8 kRegAcc = 0;   // r0
inline constexpr u8 kRegArg0 = 1;  // r1..r5
inline constexpr u8 kRegScratch = 10;
inline constexpr u8 kRegFp = 14;
inline constexpr u8 kRegSp = 15;
inline constexpr int kMaxArgs = 5;

/// Output of compiling one function.
struct CompiledFunction {
  std::string name;
  Bytes code;
  std::vector<isa::ExtRef> ext_refs;  // call sites to resolve at link time
  bool traced = false;                // begins with the ftrace nop5 pad
};

struct CodegenContext {
  /// Absolute addresses of globals.
  std::map<std::string, u64> global_addrs;
  /// Names of functions callable from generated code.
  std::map<std::string, bool> known_functions;
  /// Emit the 5-byte ftrace pad at function entry.
  bool ftrace = true;
};

/// Compiles `f`; fails on unknown identifiers, arity overflow, etc.
Result<CompiledFunction> codegen_function(const Function& f,
                                          const CodegenContext& ctx);

}  // namespace kshot::kcc
