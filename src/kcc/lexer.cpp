#include "kcc/lexer.hpp"

#include <cctype>
#include <map>

namespace kshot::kcc {

Result<std::vector<Token>> lex(const std::string& src) {
  static const std::map<std::string, Tok> kKeywords = {
      {"fn", Tok::kFn},         {"let", Tok::kLet},
      {"if", Tok::kIf},         {"else", Tok::kElse},
      {"while", Tok::kWhile},   {"return", Tok::kReturn},
      {"global", Tok::kGlobal}, {"inline", Tok::kInline},
      {"notrace", Tok::kNotrace}, {"bug", Tok::kBug},
      {"pad", Tok::kPad},
  };

  std::vector<Token> out;
  size_t i = 0;
  int line = 1;
  auto peek = [&](size_t k = 0) -> char {
    return i + k < src.size() ? src[i + k] : '\0';
  };

  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < src.size() && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                                src[i] == '_')) {
        ++i;
      }
      std::string word = src.substr(start, i - start);
      auto kw = kKeywords.find(word);
      if (kw != kKeywords.end()) {
        out.push_back({kw->second, word, 0, line});
      } else {
        out.push_back({Tok::kIdent, word, 0, line});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      i64 value = 0;
      if (c == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        i += 2;
        while (i < src.size() &&
               std::isxdigit(static_cast<unsigned char>(src[i]))) {
          char d = src[i];
          int v = std::isdigit(static_cast<unsigned char>(d))
                      ? d - '0'
                      : (std::tolower(d) - 'a' + 10);
          value = value * 16 + v;
          ++i;
        }
      } else {
        while (i < src.size() &&
               std::isdigit(static_cast<unsigned char>(src[i]))) {
          value = value * 10 + (src[i] - '0');
          ++i;
        }
      }
      (void)start;
      out.push_back({Tok::kNum, "", value, line});
      continue;
    }

    auto two = [&](char a, char b, Tok t) -> bool {
      if (c == a && peek(1) == b) {
        out.push_back({t, "", 0, line});
        i += 2;
        return true;
      }
      return false;
    };
    if (two('=', '=', Tok::kEq)) continue;
    if (two('!', '=', Tok::kNe)) continue;
    if (two('<', '=', Tok::kLe)) continue;
    if (two('>', '=', Tok::kGe)) continue;
    if (two('<', '<', Tok::kShl)) continue;
    if (two('>', '>', Tok::kShr)) continue;

    Tok t;
    switch (c) {
      case '(': t = Tok::kLParen; break;
      case ')': t = Tok::kRParen; break;
      case '{': t = Tok::kLBrace; break;
      case '}': t = Tok::kRBrace; break;
      case ',': t = Tok::kComma; break;
      case ';': t = Tok::kSemi; break;
      case '=': t = Tok::kAssign; break;
      case '+': t = Tok::kPlus; break;
      case '-': t = Tok::kMinus; break;
      case '*': t = Tok::kStar; break;
      case '/': t = Tok::kSlash; break;
      case '%': t = Tok::kPercent; break;
      case '&': t = Tok::kAmp; break;
      case '|': t = Tok::kPipe; break;
      case '^': t = Tok::kCaret; break;
      case '<': t = Tok::kLt; break;
      case '>': t = Tok::kGt; break;
      default:
        return {Errc::kInvalidArgument,
                "unexpected character '" + std::string(1, c) + "' at line " +
                    std::to_string(line)};
    }
    out.push_back({t, "", 0, line});
    ++i;
  }
  out.push_back({Tok::kEof, "", 0, line});
  return out;
}

}  // namespace kshot::kcc
