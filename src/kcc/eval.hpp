// Reference AST interpreter for ksrc. Defines the language's semantics
// independently of the compiler + machine pipeline, enabling differential
// testing: for any program and input, compiled execution must agree with
// this evaluator (including oops/trap behaviour).
#pragma once

#include <map>

#include "common/status.hpp"
#include "kcc/ast.hpp"

namespace kshot::kcc {

struct EvalOutcome {
  bool oops = false;
  u64 trap_code = 0;  // bug() code or 0 for div-by-zero
  u64 value = 0;
};

class AstEvaluator {
 public:
  explicit AstEvaluator(const Module& m);

  /// Calls `function` with up to 5 args. Global state persists across calls
  /// (like a running kernel's data segment). Fails on unknown functions,
  /// unbound variables, call-depth or step-budget exhaustion.
  Result<EvalOutcome> call(const std::string& function,
                           const std::vector<u64>& args);

  [[nodiscard]] Result<u64> global(const std::string& name) const;
  void set_global(const std::string& name, u64 v) { globals_[name] = v; }

 private:
  struct Frame {
    std::map<std::string, u64> locals;
  };

  struct Signal {
    enum class Kind { kNone, kReturn, kOops } kind = Kind::kNone;
    u64 value = 0;
    u64 trap = 0;
  };

  Result<Signal> exec_block(const std::vector<StmtPtr>& body, Frame& f,
                            int depth);
  Result<Signal> exec_stmt(const Stmt& s, Frame& f, int depth);
  /// Evaluates an expression; a Signal with kOops aborts evaluation.
  Result<u64> eval_expr(const Expr& e, Frame& f, int depth, Signal& sig);

  const Module& module_;
  std::map<std::string, u64> globals_;
  u64 steps_ = 0;
  static constexpr u64 kStepBudget = 50'000'000;
  static constexpr int kMaxDepth = 128;
};

}  // namespace kshot::kcc
