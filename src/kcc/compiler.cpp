#include "kcc/compiler.hpp"

#include "common/byte_io.hpp"
#include "kcc/codegen.hpp"
#include "kcc/constfold.hpp"
#include "kcc/inline_pass.hpp"
#include "kcc/parser.hpp"

namespace kshot::kcc {

namespace {
constexpr size_t kFnAlign = 16;

size_t align_up(size_t v, size_t a) { return (v + a - 1) / a * a; }
}  // namespace

Result<KernelImage> compile_module(const Module& module,
                                   const CompileOptions& opts) {
  Module m = module.clone();
  if (opts.enable_inlining) {
    KSHOT_RETURN_IF_ERROR(run_inline_pass(m));
  }
  if (opts.enable_constfold) {
    run_constfold_pass(m);
  }

  KernelImage img;
  img.text_base = opts.text_base;
  img.data_base = opts.data_base;
  img.version = opts.version;

  // Lay out globals: 8 bytes each, declaration order. A patch that appends a
  // global therefore lands in the running kernel's data-segment slack.
  CodegenContext ctx;
  ctx.ftrace = opts.enable_ftrace;
  for (size_t i = 0; i < m.globals.size(); ++i) {
    u64 addr = opts.data_base + 8 * i;
    ctx.global_addrs[m.globals[i].name] = addr;
    img.globals.push_back({m.globals[i].name, addr, m.globals[i].init});
  }

  // Functions emitted into the image (inline fns are expanded away unless
  // inlining is disabled).
  // Calls to inline functions must be gone after the pass, so only emitted
  // functions are callable.
  std::vector<const Function*> emitted;
  for (const auto& f : m.functions) {
    if (opts.enable_inlining && f.is_inline) continue;
    emitted.push_back(&f);
    ctx.known_functions[f.name] = true;
  }

  // Compile each function, then link.
  struct Linked {
    CompiledFunction fn;
    u64 addr = 0;
  };
  std::vector<Linked> linked;
  u64 cursor = opts.text_base;
  for (const Function* f : emitted) {
    auto cf = codegen_function(*f, ctx);
    if (!cf) {
      return Status{cf.status().code(),
                    "in function '" + f->name + "': " + cf.status().message()};
    }
    Linked l;
    l.fn = std::move(*cf);
    l.addr = cursor;
    cursor = align_up(cursor + l.fn.code.size(), kFnAlign);
    linked.push_back(std::move(l));
  }

  // Symbol table.
  for (const auto& l : linked) {
    img.symbols.push_back({l.fn.name, l.addr,
                           static_cast<u32>(l.fn.code.size()), l.fn.traced});
  }

  // Resolve external call rel32s and emit text.
  img.text.assign(cursor - opts.text_base, 0x90 /* pad with nop */);
  for (auto& l : linked) {
    for (const auto& ref : l.fn.ext_refs) {
      const Symbol* target = img.find_symbol(ref.symbol);
      if (!target) {
        return Status{Errc::kNotFound, "undefined function '" + ref.symbol +
                                           "' called from '" + l.fn.name +
                                           "'"};
      }
      // rel32 relative to the end of the rel32 field.
      u64 site_addr = l.addr + ref.offset;
      i64 rel = static_cast<i64>(target->addr) -
                static_cast<i64>(site_addr + 4);
      store_u32(l.fn.code.data() + ref.offset,
                static_cast<u32>(static_cast<i32>(rel)));
    }
    std::copy(l.fn.code.begin(), l.fn.code.end(),
              img.text.begin() +
                  static_cast<std::ptrdiff_t>(l.addr - opts.text_base));
  }

  return img;
}

Result<KernelImage> compile_source(const std::string& source,
                                   const CompileOptions& opts) {
  auto m = parse(source);
  if (!m) return m.status();
  return compile_module(*m, opts);
}

}  // namespace kshot::kcc
