// Source-level function inlining. Functions marked `inline` are expanded at
// every call site (like static inline in kernel C) and are not emitted into
// the binary image. This is what creates the paper's Type 2 patches: editing
// an inlined function's source implicates every *caller* in the binary, and
// the patch toolchain must discover that via the source-vs-binary call-graph
// difference (§V-A).
#pragma once

#include "kcc/ast.hpp"
#include "common/status.hpp"

namespace kshot::kcc {

/// Expands all calls to `inline` functions in place. Fails if an inline
/// function has an unsupported shape (loops, early returns, or a call to it
/// appears in a loop condition) or if inlining exceeds the transitive depth
/// limit (recursive inline functions).
Status run_inline_pass(Module& module);

/// True if `f` has a shape the inliner supports: straight-line lets/assigns/
/// ifs/bugs/pads with a single trailing `return`.
bool is_inlinable_shape(const Function& f);

}  // namespace kshot::kcc
