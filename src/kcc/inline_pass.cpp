#include "kcc/inline_pass.hpp"

#include <map>
#include <set>

namespace kshot::kcc {

namespace {

bool stmts_inlinable(const std::vector<StmtPtr>& body, bool allow_return_last);

bool stmt_inlinable(const Stmt& s, bool may_be_return) {
  switch (s.kind) {
    case Stmt::Kind::kLet:
    case Stmt::Kind::kAssign:
    case Stmt::Kind::kBug:
    case Stmt::Kind::kPad:
    case Stmt::Kind::kExpr:
      return true;
    case Stmt::Kind::kIf:
      return stmts_inlinable(s.body, false) &&
             stmts_inlinable(s.else_body, false);
    case Stmt::Kind::kWhile:
      return false;
    case Stmt::Kind::kReturn:
      return may_be_return;
  }
  return false;
}

bool stmts_inlinable(const std::vector<StmtPtr>& body, bool allow_return_last) {
  for (size_t i = 0; i < body.size(); ++i) {
    bool last = allow_return_last && i + 1 == body.size();
    if (!stmt_inlinable(*body[i], last)) return false;
  }
  return true;
}

/// Renames variable references: params/locals of the inlinee get fresh
/// names; anything else (globals, function names) is left alone.
void rename_expr(Expr& e, const std::map<std::string, std::string>& renames) {
  switch (e.kind) {
    case Expr::Kind::kNum:
      break;
    case Expr::Kind::kVar: {
      auto it = renames.find(e.name);
      if (it != renames.end()) e.name = it->second;
      break;
    }
    case Expr::Kind::kBin:
      rename_expr(*e.lhs, renames);
      rename_expr(*e.rhs, renames);
      break;
    case Expr::Kind::kCall:
      for (auto& a : e.args) rename_expr(*a, renames);
      break;
  }
}

void rename_stmts(std::vector<StmtPtr>& body,
                  std::map<std::string, std::string>& renames,
                  int inst_id) {
  for (auto& s : body) {
    switch (s->kind) {
      case Stmt::Kind::kLet: {
        // Rename uses first, then introduce the fresh binding.
        rename_expr(*s->value, renames);
        std::string fresh =
            "__inl" + std::to_string(inst_id) + "_" + s->name;
        renames[s->name] = fresh;
        s->name = fresh;
        break;
      }
      case Stmt::Kind::kAssign: {
        rename_expr(*s->value, renames);
        auto it = renames.find(s->name);
        if (it != renames.end()) s->name = it->second;
        break;
      }
      case Stmt::Kind::kIf:
        rename_expr(*s->cond, renames);
        rename_stmts(s->body, renames, inst_id);
        rename_stmts(s->else_body, renames, inst_id);
        break;
      case Stmt::Kind::kWhile:
        rename_expr(*s->cond, renames);
        rename_stmts(s->body, renames, inst_id);
        break;
      case Stmt::Kind::kReturn:
      case Stmt::Kind::kExpr:
        rename_expr(*s->value, renames);
        break;
      case Stmt::Kind::kBug:
      case Stmt::Kind::kPad:
        break;
    }
  }
}

class Inliner {
 public:
  explicit Inliner(Module& m) : module_(m) {
    for (const auto& f : m.functions) {
      if (f.is_inline) inlinable_.insert(f.name);
    }
  }

  Status run() {
    for (const auto& name : inlinable_) {
      const Function* f = module_.find_function(name);
      if (!is_inlinable_shape(*f)) {
        return {Errc::kUnsupported,
                "inline function '" + name + "' has unsupported shape"};
      }
    }
    for (auto& f : module_.functions) {
      if (f.is_inline) continue;
      KSHOT_RETURN_IF_ERROR(expand_in_stmts(f.body, 0));
    }
    return Status::ok();
  }

 private:
  /// Rewrites `e` in place, appending prelude statements (argument bindings
  /// and the inlinee body) to `prelude`. Depth caps transitive expansion.
  Status expand_in_expr(ExprPtr& e, std::vector<StmtPtr>& prelude, int depth) {
    if (depth > 16) {
      return {Errc::kResourceExhausted, "inline expansion too deep"};
    }
    switch (e->kind) {
      case Expr::Kind::kNum:
      case Expr::Kind::kVar:
        return Status::ok();
      case Expr::Kind::kBin:
        KSHOT_RETURN_IF_ERROR(expand_in_expr(e->lhs, prelude, depth));
        KSHOT_RETURN_IF_ERROR(expand_in_expr(e->rhs, prelude, depth));
        return Status::ok();
      case Expr::Kind::kCall: {
        for (auto& a : e->args) {
          KSHOT_RETURN_IF_ERROR(expand_in_expr(a, prelude, depth));
        }
        if (!inlinable_.count(e->name)) return Status::ok();

        const Function* callee = module_.find_function(e->name);
        if (callee->params.size() != e->args.size()) {
          return {Errc::kInvalidArgument,
                  "arity mismatch calling '" + e->name + "'"};
        }
        int id = next_instance_++;
        std::map<std::string, std::string> renames;
        // Bind arguments to fresh locals.
        for (size_t i = 0; i < callee->params.size(); ++i) {
          std::string fresh = "__inl" + std::to_string(id) + "_" +
                              callee->params[i];
          renames[callee->params[i]] = fresh;
          auto let = std::make_unique<Stmt>();
          let->kind = Stmt::Kind::kLet;
          let->name = fresh;
          let->value = std::move(e->args[i]);
          prelude.push_back(std::move(let));
        }
        // Splice the body (all but the trailing return), renamed.
        Function body_copy = callee->clone();
        StmtPtr ret = std::move(body_copy.body.back());
        body_copy.body.pop_back();
        rename_stmts(body_copy.body, renames, id);
        // The return expression replaces the call. Rename it with the final
        // rename map (which now includes the inlinee's lets).
        rename_expr(*ret->value, renames);
        // Transitively expand calls inside the spliced body.
        for (auto& s : body_copy.body) prelude.push_back(std::move(s));
        KSHOT_RETURN_IF_ERROR(expand_prelude_tail(prelude, depth + 1));
        ExprPtr replacement = std::move(ret->value);
        KSHOT_RETURN_IF_ERROR(
            expand_in_expr(replacement, prelude, depth + 1));
        e = std::move(replacement);
        return Status::ok();
      }
    }
    return Status::ok();
  }

  /// Expands inlinable calls inside statements just appended to a prelude.
  Status expand_prelude_tail(std::vector<StmtPtr>& prelude, int depth) {
    // Re-run expansion over the prelude itself; expand_in_stmts handles
    // insertion ordering.
    return expand_in_stmts(prelude, depth);
  }

  Status expand_in_stmts(std::vector<StmtPtr>& body, int depth) {
    std::vector<StmtPtr> out;
    out.reserve(body.size());
    for (auto& s : body) {
      std::vector<StmtPtr> prelude;
      switch (s->kind) {
        case Stmt::Kind::kLet:
        case Stmt::Kind::kAssign:
        case Stmt::Kind::kReturn:
        case Stmt::Kind::kExpr:
          KSHOT_RETURN_IF_ERROR(expand_in_expr(s->value, prelude, depth));
          break;
        case Stmt::Kind::kIf: {
          KSHOT_RETURN_IF_ERROR(expand_in_expr(s->cond, prelude, depth));
          KSHOT_RETURN_IF_ERROR(expand_in_stmts(s->body, depth));
          KSHOT_RETURN_IF_ERROR(expand_in_stmts(s->else_body, depth));
          break;
        }
        case Stmt::Kind::kWhile: {
          if (contains_inlinable_call(*s->cond)) {
            return {Errc::kUnsupported,
                    "inline call in while-condition is not supported"};
          }
          KSHOT_RETURN_IF_ERROR(expand_in_stmts(s->body, depth));
          break;
        }
        case Stmt::Kind::kBug:
        case Stmt::Kind::kPad:
          break;
      }
      for (auto& p : prelude) out.push_back(std::move(p));
      out.push_back(std::move(s));
    }
    body = std::move(out);
    return Status::ok();
  }

  bool contains_inlinable_call(const Expr& e) const {
    switch (e.kind) {
      case Expr::Kind::kNum:
      case Expr::Kind::kVar:
        return false;
      case Expr::Kind::kBin:
        return contains_inlinable_call(*e.lhs) ||
               contains_inlinable_call(*e.rhs);
      case Expr::Kind::kCall:
        if (inlinable_.count(e.name)) return true;
        for (const auto& a : e.args) {
          if (contains_inlinable_call(*a)) return true;
        }
        return false;
    }
    return false;
  }

  Module& module_;
  std::set<std::string> inlinable_;
  int next_instance_ = 0;
};

}  // namespace

bool is_inlinable_shape(const Function& f) {
  if (f.body.empty()) return false;
  if (f.body.back()->kind != Stmt::Kind::kReturn) return false;
  return stmts_inlinable(f.body, true);
}

Status run_inline_pass(Module& module) { return Inliner(module).run(); }

}  // namespace kshot::kcc
