#include "kcc/parser.hpp"

namespace kshot::kcc {

namespace {

// Consumes the expected token or early-returns the error from the enclosing
// Result-returning parse method.
#define KSHOT_PARSE_EXPECT(tok, what)        \
  do {                                       \
    ::kshot::Status _st = expect(tok, what); \
    if (!_st.is_ok()) return _st;            \
  } while (0)

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Result<Module> run() {
    Module m;
    while (!at(Tok::kEof)) {
      if (at(Tok::kGlobal)) {
        auto g = parse_global();
        if (!g) return g.status();
        m.globals.push_back(*g);
      } else {
        auto f = parse_function();
        if (!f) return f.status();
        m.functions.push_back(std::move(*f));
      }
    }
    return m;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  bool at(Tok t) const { return cur().kind == t; }
  Token advance() { return toks_[pos_++]; }

  Status expect(Tok t, const char* what) {
    if (!at(t)) {
      return {Errc::kInvalidArgument,
              std::string("expected ") + what + " at line " +
                  std::to_string(cur().line)};
    }
    ++pos_;
    return Status::ok();
  }

  Result<GlobalDecl> parse_global() {
    ++pos_;  // 'global'
    if (!at(Tok::kIdent)) {
      return Status{Errc::kInvalidArgument, "expected global name"};
    }
    GlobalDecl g;
    g.name = advance().text;
    KSHOT_PARSE_EXPECT(Tok::kAssign, "'='");
    i64 sign = 1;
    if (at(Tok::kMinus)) {
      sign = -1;
      ++pos_;
    }
    if (!at(Tok::kNum)) {
      return Status{Errc::kInvalidArgument, "expected global initializer"};
    }
    g.init = sign * advance().num;
    KSHOT_PARSE_EXPECT(Tok::kSemi, "';'");
    return g;
  }

  Result<Function> parse_function() {
    Function f;
    while (at(Tok::kInline) || at(Tok::kNotrace)) {
      if (at(Tok::kInline)) f.is_inline = true;
      if (at(Tok::kNotrace)) f.notrace = true;
      ++pos_;
    }
    KSHOT_PARSE_EXPECT(Tok::kFn, "'fn'");
    if (!at(Tok::kIdent)) {
      return Status{Errc::kInvalidArgument,
                    "expected function name at line " +
                        std::to_string(cur().line)};
    }
    f.name = advance().text;
    KSHOT_PARSE_EXPECT(Tok::kLParen, "'('");
    if (!at(Tok::kRParen)) {
      while (true) {
        if (!at(Tok::kIdent)) {
          return Status{Errc::kInvalidArgument, "expected parameter name"};
        }
        f.params.push_back(advance().text);
        if (at(Tok::kComma)) {
          ++pos_;
          continue;
        }
        break;
      }
    }
    KSHOT_PARSE_EXPECT(Tok::kRParen, "')'");
    auto body = parse_block();
    if (!body) return body.status();
    f.body = std::move(*body);
    return f;
  }

  Result<std::vector<StmtPtr>> parse_block() {
    KSHOT_PARSE_EXPECT(Tok::kLBrace, "'{'");
    std::vector<StmtPtr> stmts;
    while (!at(Tok::kRBrace)) {
      if (at(Tok::kEof)) {
        return Status{Errc::kInvalidArgument, "unterminated block"};
      }
      auto s = parse_stmt();
      if (!s) return s.status();
      stmts.push_back(std::move(*s));
    }
    ++pos_;  // '}'
    return stmts;
  }

  Result<StmtPtr> parse_stmt() {
    auto s = std::make_unique<Stmt>();
    if (at(Tok::kLet)) {
      ++pos_;
      s->kind = Stmt::Kind::kLet;
      if (!at(Tok::kIdent)) {
        return Status{Errc::kInvalidArgument, "expected local name"};
      }
      s->name = advance().text;
      KSHOT_PARSE_EXPECT(Tok::kAssign, "'='");
      auto e = parse_expr();
      if (!e) return e.status();
      s->value = std::move(*e);
      KSHOT_PARSE_EXPECT(Tok::kSemi, "';'");
      return s;
    }
    if (at(Tok::kIf)) {
      ++pos_;
      s->kind = Stmt::Kind::kIf;
      KSHOT_PARSE_EXPECT(Tok::kLParen, "'('");
      auto c = parse_expr();
      if (!c) return c.status();
      s->cond = std::move(*c);
      KSHOT_PARSE_EXPECT(Tok::kRParen, "')'");
      auto body = parse_block();
      if (!body) return body.status();
      s->body = std::move(*body);
      if (at(Tok::kElse)) {
        ++pos_;
        auto eb = parse_block();
        if (!eb) return eb.status();
        s->else_body = std::move(*eb);
      }
      return s;
    }
    if (at(Tok::kWhile)) {
      ++pos_;
      s->kind = Stmt::Kind::kWhile;
      KSHOT_PARSE_EXPECT(Tok::kLParen, "'('");
      auto c = parse_expr();
      if (!c) return c.status();
      s->cond = std::move(*c);
      KSHOT_PARSE_EXPECT(Tok::kRParen, "')'");
      auto body = parse_block();
      if (!body) return body.status();
      s->body = std::move(*body);
      return s;
    }
    if (at(Tok::kReturn)) {
      ++pos_;
      s->kind = Stmt::Kind::kReturn;
      auto e = parse_expr();
      if (!e) return e.status();
      s->value = std::move(*e);
      KSHOT_PARSE_EXPECT(Tok::kSemi, "';'");
      return s;
    }
    if (at(Tok::kBug)) {
      ++pos_;
      s->kind = Stmt::Kind::kBug;
      KSHOT_PARSE_EXPECT(Tok::kLParen, "'('");
      if (!at(Tok::kNum)) {
        return Status{Errc::kInvalidArgument, "bug() needs a numeric code"};
      }
      s->num = advance().num;
      KSHOT_PARSE_EXPECT(Tok::kRParen, "')'");
      KSHOT_PARSE_EXPECT(Tok::kSemi, "';'");
      return s;
    }
    if (at(Tok::kPad)) {
      ++pos_;
      s->kind = Stmt::Kind::kPad;
      KSHOT_PARSE_EXPECT(Tok::kLParen, "'('");
      if (!at(Tok::kNum)) {
        return Status{Errc::kInvalidArgument, "pad() needs a byte count"};
      }
      s->num = advance().num;
      KSHOT_PARSE_EXPECT(Tok::kRParen, "')'");
      KSHOT_PARSE_EXPECT(Tok::kSemi, "';'");
      return s;
    }
    // assignment or expression statement
    if (at(Tok::kIdent) && toks_[pos_ + 1].kind == Tok::kAssign) {
      s->kind = Stmt::Kind::kAssign;
      s->name = advance().text;
      ++pos_;  // '='
      auto e = parse_expr();
      if (!e) return e.status();
      s->value = std::move(*e);
      KSHOT_PARSE_EXPECT(Tok::kSemi, "';'");
      return s;
    }
    {
      s->kind = Stmt::Kind::kExpr;
      auto e = parse_expr();
      if (!e) return e.status();
      s->value = std::move(*e);
      KSHOT_PARSE_EXPECT(Tok::kSemi, "';'");
      return s;
    }
  }

  Result<ExprPtr> parse_expr() { return parse_comparison(); }

  Result<ExprPtr> parse_comparison() {
    auto lhs = parse_additive();
    if (!lhs) return lhs;
    BinOp op;
    switch (cur().kind) {
      case Tok::kEq: op = BinOp::kEq; break;
      case Tok::kNe: op = BinOp::kNe; break;
      case Tok::kLt: op = BinOp::kLt; break;
      case Tok::kLe: op = BinOp::kLe; break;
      case Tok::kGt: op = BinOp::kGt; break;
      case Tok::kGe: op = BinOp::kGe; break;
      default: return lhs;
    }
    ++pos_;
    auto rhs = parse_additive();
    if (!rhs) return rhs;
    return Expr::make_bin(op, std::move(*lhs), std::move(*rhs));
  }

  Result<ExprPtr> parse_additive() {
    auto lhs = parse_term();
    if (!lhs) return lhs;
    while (at(Tok::kPlus) || at(Tok::kMinus) || at(Tok::kAmp) ||
           at(Tok::kPipe) || at(Tok::kCaret)) {
      BinOp op;
      switch (cur().kind) {
        case Tok::kPlus: op = BinOp::kAdd; break;
        case Tok::kMinus: op = BinOp::kSub; break;
        case Tok::kAmp: op = BinOp::kAnd; break;
        case Tok::kPipe: op = BinOp::kOr; break;
        default: op = BinOp::kXor; break;
      }
      ++pos_;
      auto rhs = parse_term();
      if (!rhs) return rhs;
      lhs = Expr::make_bin(op, std::move(*lhs), std::move(*rhs));
    }
    return lhs;
  }

  Result<ExprPtr> parse_term() {
    auto lhs = parse_unary();
    if (!lhs) return lhs;
    while (at(Tok::kStar) || at(Tok::kSlash) || at(Tok::kPercent) ||
           at(Tok::kShl) || at(Tok::kShr)) {
      BinOp op;
      switch (cur().kind) {
        case Tok::kStar: op = BinOp::kMul; break;
        case Tok::kSlash: op = BinOp::kDiv; break;
        case Tok::kPercent: op = BinOp::kMod; break;
        case Tok::kShl: op = BinOp::kShl; break;
        default: op = BinOp::kShr; break;
      }
      ++pos_;
      auto rhs = parse_unary();
      if (!rhs) return rhs;
      lhs = Expr::make_bin(op, std::move(*lhs), std::move(*rhs));
    }
    return lhs;
  }

  Result<ExprPtr> parse_unary() {
    if (at(Tok::kNum)) {
      return Expr::make_num(advance().num);
    }
    if (at(Tok::kMinus)) {
      ++pos_;
      auto e = parse_unary();
      if (!e) return e;
      return Expr::make_bin(BinOp::kSub, Expr::make_num(0), std::move(*e));
    }
    if (at(Tok::kLParen)) {
      ++pos_;
      auto e = parse_expr();
      if (!e) return e;
      KSHOT_PARSE_EXPECT(Tok::kRParen, "')'");
      return e;
    }
    if (at(Tok::kIdent)) {
      std::string name = advance().text;
      if (at(Tok::kLParen)) {
        ++pos_;
        std::vector<ExprPtr> args;
        if (!at(Tok::kRParen)) {
          while (true) {
            auto a = parse_expr();
            if (!a) return a;
            args.push_back(std::move(*a));
            if (at(Tok::kComma)) {
              ++pos_;
              continue;
            }
            break;
          }
        }
        KSHOT_PARSE_EXPECT(Tok::kRParen, "')'");
        return Expr::make_call(std::move(name), std::move(args));
      }
      return Expr::make_var(std::move(name));
    }
    return Status{Errc::kInvalidArgument,
                  "unexpected token at line " + std::to_string(cur().line)};
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<Module> parse(const std::string& source) {
  auto toks = lex(source);
  if (!toks) return toks.status();
  Parser p(std::move(*toks));
  return p.run();
}

}  // namespace kshot::kcc
