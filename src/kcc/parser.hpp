// Recursive-descent parser: tokens -> Module.
#pragma once

#include "kcc/ast.hpp"
#include "kcc/lexer.hpp"

namespace kshot::kcc {

/// Parses a complete ksrc module. Errors carry a line number.
Result<Module> parse(const std::string& source);

}  // namespace kshot::kcc
