// Canonical ksrc pretty-printer. Used to compare functions structurally
// (source-level diff) and to round-trip sources in tests.
#pragma once

#include <string>

#include "kcc/ast.hpp"

namespace kshot::kcc {

std::string to_source(const Expr& e);
std::string to_source(const Stmt& s, int indent = 0);
std::string to_source(const Function& f);
std::string to_source(const Module& m);

}  // namespace kshot::kcc
