// Tokenizer for ksrc.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace kshot::kcc {

enum class Tok {
  kEof,
  kIdent,
  kNum,
  // keywords
  kFn, kLet, kIf, kElse, kWhile, kReturn, kGlobal, kInline, kNotrace,
  kBug, kPad,
  // punctuation
  kLParen, kRParen, kLBrace, kRBrace, kComma, kSemi, kAssign,
  // operators
  kPlus, kMinus, kStar, kSlash, kPercent, kAmp, kPipe, kCaret,
  kShl, kShr, kEq, kNe, kLt, kLe, kGt, kGe,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;   // identifier text
  i64 num = 0;        // literal value
  int line = 1;       // 1-based source line, for diagnostics
};

/// Tokenizes the whole source; fails on an unexpected character.
Result<std::vector<Token>> lex(const std::string& source);

}  // namespace kshot::kcc
