#include "kcc/image.hpp"

#include "common/byte_io.hpp"

namespace kshot::kcc {

const Symbol* KernelImage::find_symbol(const std::string& name) const {
  for (const auto& s : symbols) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const GlobalSym* KernelImage::find_global(const std::string& name) const {
  for (const auto& g : globals) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const Symbol* KernelImage::symbol_at(u64 addr) const {
  for (const auto& s : symbols) {
    if (addr >= s.addr && addr < s.addr + s.size) return &s;
  }
  return nullptr;
}

Result<Bytes> KernelImage::function_bytes(const std::string& name) const {
  const Symbol* s = find_symbol(name);
  if (!s) return {Errc::kNotFound, "symbol '" + name + "' not in image"};
  size_t off = s->addr - text_base;
  return Bytes(text.begin() + static_cast<std::ptrdiff_t>(off),
               text.begin() + static_cast<std::ptrdiff_t>(off + s->size));
}

Bytes KernelImage::data_image() const {
  ByteWriter w;
  for (const auto& g : globals) w.put_u64(static_cast<u64>(g.init));
  return w.take();
}

crypto::Digest256 KernelImage::measurement() const {
  ByteWriter w;
  w.put_u64(text_base);
  w.put_u64(data_base);
  w.put_bytes(text);
  w.put_bytes(data_image());
  return crypto::sha256(w.bytes());
}

}  // namespace kshot::kcc
