// The binary kernel image produced by kcc: linked text, symbol table, global
// variable layout, and provenance. The patch server builds two of these
// (pre- and post-patch) and the patch toolchain diffs them.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "crypto/sha256.hpp"

namespace kshot::kcc {

/// A linked function symbol.
struct Symbol {
  std::string name;
  u64 addr = 0;   // absolute address of the function entry
  u32 size = 0;   // linked size in bytes (without alignment padding)
  bool traced = false;  // starts with the 5-byte ftrace pad
};

/// A linked global variable (8 bytes each, laid out in declaration order).
struct GlobalSym {
  std::string name;
  u64 addr = 0;
  i64 init = 0;
};

class KernelImage {
 public:
  u64 text_base = 0;
  u64 data_base = 0;
  Bytes text;                     // linked code, starting at text_base
  std::vector<Symbol> symbols;    // in layout order
  std::vector<GlobalSym> globals; // in declaration order
  std::string version;            // e.g. "sim-3.14" / "sim-4.4"

  [[nodiscard]] const Symbol* find_symbol(const std::string& name) const;
  [[nodiscard]] const GlobalSym* find_global(const std::string& name) const;

  /// The symbol containing `addr`, if any.
  [[nodiscard]] const Symbol* symbol_at(u64 addr) const;

  /// Copy of the linked bytes of one function.
  [[nodiscard]] Result<Bytes> function_bytes(const std::string& name) const;

  /// Serialized initial data segment (8 bytes per global, declaration order).
  [[nodiscard]] Bytes data_image() const;

  /// Size in bytes of the data segment.
  [[nodiscard]] size_t data_size() const { return globals.size() * 8; }

  /// SHA-256 over text + data + bases, identifying this exact build.
  [[nodiscard]] crypto::Digest256 measurement() const;
};

}  // namespace kshot::kcc
