// Compiler driver: ksrc source -> linked KernelImage. The remote patch
// server invokes this twice (pre- and post-patch source) with the *same*
// options gathered from the target machine, which is what makes the binary
// diff meaningful (paper §V-A "Binary Patch Preparation").
#pragma once

#include "kcc/ast.hpp"
#include "kcc/image.hpp"

namespace kshot::kcc {

struct CompileOptions {
  u64 text_base = 0x10'0000;   // 1 MB: kernel text segment
  u64 data_base = 0x40'0000;   // 4 MB: kernel data segment
  /// Expand `inline` functions (the realistic configuration). Disabling it
  /// models an -O0 build where inline functions are real symbols.
  bool enable_inlining = true;
  /// Emit the 5-byte ftrace pad at each traced function entry (paper §V-A
  /// "Supporting Kernel Tracing").
  bool enable_ftrace = true;
  /// Constant folding + static branch pruning (another optimization that
  /// perturbs binary diffs without changing semantics).
  bool enable_constfold = false;
  std::string version = "sim-4.4";
};

/// Compiles a parsed module.
Result<KernelImage> compile_module(const Module& module,
                                   const CompileOptions& opts);

/// Parses and compiles ksrc text.
Result<KernelImage> compile_source(const std::string& source,
                                   const CompileOptions& opts);

}  // namespace kshot::kcc
