#include "kcc/ast.hpp"

namespace kshot::kcc {

ExprPtr Expr::make_num(i64 v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kNum;
  e->num = v;
  return e;
}

ExprPtr Expr::make_var(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kVar;
  e->name = std::move(name);
  return e;
}

ExprPtr Expr::make_bin(BinOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBin;
  e->op = op;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

ExprPtr Expr::make_call(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kCall;
  e->name = std::move(name);
  e->args = std::move(args);
  return e;
}

ExprPtr Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->num = num;
  e->name = name;
  e->op = op;
  if (lhs) e->lhs = lhs->clone();
  if (rhs) e->rhs = rhs->clone();
  for (const auto& a : args) e->args.push_back(a->clone());
  return e;
}

namespace {
std::vector<StmtPtr> clone_stmts(const std::vector<StmtPtr>& in) {
  std::vector<StmtPtr> out;
  out.reserve(in.size());
  for (const auto& s : in) out.push_back(s->clone());
  return out;
}
}  // namespace

StmtPtr Stmt::clone() const {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->name = name;
  if (value) s->value = value->clone();
  if (cond) s->cond = cond->clone();
  s->body = clone_stmts(body);
  s->else_body = clone_stmts(else_body);
  s->num = num;
  return s;
}

Function Function::clone() const {
  Function f;
  f.name = name;
  f.params = params;
  f.body = clone_stmts(body);
  f.is_inline = is_inline;
  f.notrace = notrace;
  return f;
}

const Function* Module::find_function(const std::string& name) const {
  for (const auto& f : functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

Module Module::clone() const {
  Module m;
  m.globals = globals;
  for (const auto& f : functions) m.functions.push_back(f.clone());
  return m;
}

}  // namespace kshot::kcc
