// Constant folding + branch pruning. This is the "compiler optimization"
// knob (besides inlining) that makes pre/post binaries differ even for
// semantically equivalent sources — the class of problems the paper's patch
// analysis (§V-A) has to be robust against.
#pragma once

#include "common/status.hpp"
#include "kcc/ast.hpp"

namespace kshot::kcc {

/// Folds numeric subexpressions (2 + 3 -> 5) and prunes statically decided
/// `if` branches throughout the module. Division/modulo by a constant zero
/// is left unfolded so the runtime oops semantics are preserved.
void run_constfold_pass(Module& module);

/// Folds one expression in place; returns true if anything changed.
bool fold_expr(ExprPtr& e);

}  // namespace kshot::kcc
