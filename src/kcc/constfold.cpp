#include "kcc/constfold.hpp"

namespace kshot::kcc {

namespace {

/// Computes `a op b` with the language's u64 semantics. Returns false for
/// division/modulo by zero (must stay a runtime oops).
bool apply(BinOp op, u64 a, u64 b, u64& out) {
  switch (op) {
    case BinOp::kAdd: out = a + b; return true;
    case BinOp::kSub: out = a - b; return true;
    case BinOp::kMul: out = a * b; return true;
    case BinOp::kDiv:
      if (b == 0) return false;
      out = a / b;
      return true;
    case BinOp::kMod:
      if (b == 0) return false;
      out = a % b;
      return true;
    case BinOp::kAnd: out = a & b; return true;
    case BinOp::kOr: out = a | b; return true;
    case BinOp::kXor: out = a ^ b; return true;
    case BinOp::kShl: out = a << (b & 63); return true;
    case BinOp::kShr: out = a >> (b & 63); return true;
    case BinOp::kEq: out = a == b; return true;
    case BinOp::kNe: out = a != b; return true;
    case BinOp::kLt: out = static_cast<i64>(a) < static_cast<i64>(b); return true;
    case BinOp::kLe: out = static_cast<i64>(a) <= static_cast<i64>(b); return true;
    case BinOp::kGt: out = static_cast<i64>(a) > static_cast<i64>(b); return true;
    case BinOp::kGe: out = static_cast<i64>(a) >= static_cast<i64>(b); return true;
  }
  return false;
}

void fold_stmts(std::vector<StmtPtr>& body) {
  std::vector<StmtPtr> out;
  out.reserve(body.size());
  for (auto& s : body) {
    switch (s->kind) {
      case Stmt::Kind::kLet:
      case Stmt::Kind::kAssign:
      case Stmt::Kind::kReturn:
      case Stmt::Kind::kExpr:
        fold_expr(s->value);
        out.push_back(std::move(s));
        break;
      case Stmt::Kind::kIf: {
        fold_expr(s->cond);
        fold_stmts(s->body);
        fold_stmts(s->else_body);
        if (s->cond->kind == Expr::Kind::kNum) {
          // Statically decided: splice the live branch.
          auto& live = s->cond->num != 0 ? s->body : s->else_body;
          for (auto& inner : live) out.push_back(std::move(inner));
        } else {
          out.push_back(std::move(s));
        }
        break;
      }
      case Stmt::Kind::kWhile:
        fold_expr(s->cond);
        fold_stmts(s->body);
        if (s->cond->kind == Expr::Kind::kNum && s->cond->num == 0) {
          break;  // while(0): drop entirely
        }
        out.push_back(std::move(s));
        break;
      case Stmt::Kind::kBug:
      case Stmt::Kind::kPad:
        out.push_back(std::move(s));
        break;
    }
  }
  body = std::move(out);
}

}  // namespace

bool fold_expr(ExprPtr& e) {
  switch (e->kind) {
    case Expr::Kind::kNum:
    case Expr::Kind::kVar:
      return false;
    case Expr::Kind::kBin: {
      bool changed = fold_expr(e->lhs);
      changed |= fold_expr(e->rhs);
      if (e->lhs->kind == Expr::Kind::kNum &&
          e->rhs->kind == Expr::Kind::kNum) {
        u64 v;
        if (apply(e->op, static_cast<u64>(e->lhs->num),
                  static_cast<u64>(e->rhs->num), v)) {
          e = Expr::make_num(static_cast<i64>(v));
          return true;
        }
      }
      return changed;
    }
    case Expr::Kind::kCall: {
      bool changed = false;
      for (auto& a : e->args) changed |= fold_expr(a);
      return changed;
    }
  }
  return false;
}

void run_constfold_pass(Module& module) {
  for (auto& f : module.functions) fold_stmts(f.body);
}

}  // namespace kshot::kcc
