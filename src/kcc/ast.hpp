// AST for "ksrc", the mini-C kernel source language. The patch server holds
// pre- and post-patch kernel sources in this language; kcc compiles them to
// binary kernel images that the patch toolchain diffs.
//
// Language summary:
//   global name = <num>;
//   [inline] [notrace] fn name(p1, p2) {
//     let x = expr;            // declare local
//     x = expr;                // assign local or global
//     if (expr) { ... } [else { ... }]
//     while (expr) { ... }
//     return expr;
//     bug(code);               // kernel BUG(): traps when executed
//     pad(n);                  // emit n nop bytes (size shaping)
//     f(a, b);                 // call for effect
//   }
// Expressions: integer literals, variables, globals, calls, ( ),
// + - * / % & | ^ << >>, and comparisons == != < <= > >=.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace kshot::kcc {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kMod, kAnd, kOr, kXor, kShl, kShr,
  kEq, kNe, kLt, kLe, kGt, kGe,
};

struct Expr {
  enum class Kind { kNum, kVar, kBin, kCall } kind = Kind::kNum;

  // kNum
  i64 num = 0;
  // kVar / kCall
  std::string name;
  // kBin
  BinOp op = BinOp::kAdd;
  ExprPtr lhs, rhs;
  // kCall
  std::vector<ExprPtr> args;

  static ExprPtr make_num(i64 v);
  static ExprPtr make_var(std::string name);
  static ExprPtr make_bin(BinOp op, ExprPtr l, ExprPtr r);
  static ExprPtr make_call(std::string name, std::vector<ExprPtr> args);

  ExprPtr clone() const;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind {
    kLet, kAssign, kIf, kWhile, kReturn, kBug, kPad, kExpr,
  } kind = Kind::kExpr;

  // kLet / kAssign: name = value
  std::string name;
  ExprPtr value;           // also the return expr / condition-less uses
  // kIf / kWhile
  ExprPtr cond;
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> else_body;
  // kBug / kPad
  i64 num = 0;

  StmtPtr clone() const;
};

struct Function {
  std::string name;
  std::vector<std::string> params;
  std::vector<StmtPtr> body;
  bool is_inline = false;
  bool notrace = false;

  Function clone() const;
};

struct GlobalDecl {
  std::string name;
  i64 init = 0;
};

/// A complete kernel source module.
struct Module {
  std::vector<GlobalDecl> globals;
  std::vector<Function> functions;

  const Function* find_function(const std::string& name) const;
  Module clone() const;
};

}  // namespace kshot::kcc
