#include "kcc/printer.hpp"

#include <sstream>

namespace kshot::kcc {

namespace {
const char* binop_str(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kAnd: return "&";
    case BinOp::kOr: return "|";
    case BinOp::kXor: return "^";
    case BinOp::kShl: return "<<";
    case BinOp::kShr: return ">>";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
  }
  return "?";
}

std::string ind(int n) { return std::string(static_cast<size_t>(n) * 2, ' '); }
}  // namespace

std::string to_source(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kNum:
      return std::to_string(e.num);
    case Expr::Kind::kVar:
      return e.name;
    case Expr::Kind::kBin:
      return "(" + to_source(*e.lhs) + " " + binop_str(e.op) + " " +
             to_source(*e.rhs) + ")";
    case Expr::Kind::kCall: {
      std::string s = e.name + "(";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i) s += ", ";
        s += to_source(*e.args[i]);
      }
      return s + ")";
    }
  }
  return "";
}

std::string to_source(const Stmt& s, int indent) {
  std::ostringstream os;
  switch (s.kind) {
    case Stmt::Kind::kLet:
      os << ind(indent) << "let " << s.name << " = " << to_source(*s.value)
         << ";\n";
      break;
    case Stmt::Kind::kAssign:
      os << ind(indent) << s.name << " = " << to_source(*s.value) << ";\n";
      break;
    case Stmt::Kind::kIf:
      os << ind(indent) << "if (" << to_source(*s.cond) << ") {\n";
      for (const auto& b : s.body) os << to_source(*b, indent + 1);
      if (!s.else_body.empty()) {
        os << ind(indent) << "} else {\n";
        for (const auto& b : s.else_body) os << to_source(*b, indent + 1);
      }
      os << ind(indent) << "}\n";
      break;
    case Stmt::Kind::kWhile:
      os << ind(indent) << "while (" << to_source(*s.cond) << ") {\n";
      for (const auto& b : s.body) os << to_source(*b, indent + 1);
      os << ind(indent) << "}\n";
      break;
    case Stmt::Kind::kReturn:
      os << ind(indent) << "return " << to_source(*s.value) << ";\n";
      break;
    case Stmt::Kind::kBug:
      os << ind(indent) << "bug(" << s.num << ");\n";
      break;
    case Stmt::Kind::kPad:
      os << ind(indent) << "pad(" << s.num << ");\n";
      break;
    case Stmt::Kind::kExpr:
      os << ind(indent) << to_source(*s.value) << ";\n";
      break;
  }
  return os.str();
}

std::string to_source(const Function& f) {
  std::ostringstream os;
  if (f.is_inline) os << "inline ";
  if (f.notrace) os << "notrace ";
  os << "fn " << f.name << "(";
  for (size_t i = 0; i < f.params.size(); ++i) {
    if (i) os << ", ";
    os << f.params[i];
  }
  os << ") {\n";
  for (const auto& s : f.body) os << to_source(*s, 1);
  os << "}\n";
  return os.str();
}

std::string to_source(const Module& m) {
  std::ostringstream os;
  for (const auto& g : m.globals) {
    os << "global " << g.name << " = " << g.init << ";\n";
  }
  if (!m.globals.empty()) os << "\n";
  for (const auto& f : m.functions) os << to_source(f) << "\n";
  return os.str();
}

}  // namespace kshot::kcc
