#include "kcc/eval.hpp"

namespace kshot::kcc {

AstEvaluator::AstEvaluator(const Module& m) : module_(m) {
  for (const auto& g : m.globals) {
    globals_[g.name] = static_cast<u64>(g.init);
  }
}

Result<u64> AstEvaluator::global(const std::string& name) const {
  auto it = globals_.find(name);
  if (it == globals_.end()) return Status{Errc::kNotFound, "no global"};
  return it->second;
}

Result<EvalOutcome> AstEvaluator::call(const std::string& function,
                                       const std::vector<u64>& args) {
  const Function* f = module_.find_function(function);
  if (f == nullptr) {
    return Status{Errc::kNotFound, "no function '" + function + "'"};
  }
  if (args.size() > f->params.size()) {
    return Status{Errc::kInvalidArgument, "too many arguments"};
  }
  Frame frame;
  for (size_t i = 0; i < f->params.size(); ++i) {
    frame.locals[f->params[i]] = i < args.size() ? args[i] : 0;
  }
  auto sig = exec_block(f->body, frame, 0);
  if (!sig) return sig.status();

  EvalOutcome out;
  switch (sig->kind) {
    case Signal::Kind::kReturn:
      out.value = sig->value;
      break;
    case Signal::Kind::kOops:
      out.oops = true;
      out.trap_code = sig->trap;
      break;
    case Signal::Kind::kNone:
      out.value = 0;  // fall-through return
      break;
  }
  return out;
}

Result<AstEvaluator::Signal> AstEvaluator::exec_block(
    const std::vector<StmtPtr>& body, Frame& f, int depth) {
  for (const auto& s : body) {
    auto sig = exec_stmt(*s, f, depth);
    if (!sig) return sig;
    if (sig->kind != Signal::Kind::kNone) return sig;
  }
  return Signal{};
}

Result<AstEvaluator::Signal> AstEvaluator::exec_stmt(const Stmt& s, Frame& f,
                                                     int depth) {
  if (++steps_ > kStepBudget) {
    return Status{Errc::kResourceExhausted, "step budget exhausted"};
  }
  Signal sig;
  switch (s.kind) {
    case Stmt::Kind::kLet:
    case Stmt::Kind::kAssign: {
      auto v = eval_expr(*s.value, f, depth, sig);
      if (!v) return v.status();
      if (sig.kind == Signal::Kind::kOops) return sig;
      if (s.kind == Stmt::Kind::kLet || f.locals.count(s.name)) {
        f.locals[s.name] = *v;
      } else if (globals_.count(s.name)) {
        globals_[s.name] = *v;
      } else {
        return Status{Errc::kNotFound, "unbound variable '" + s.name + "'"};
      }
      return Signal{};
    }
    case Stmt::Kind::kIf: {
      auto c = eval_expr(*s.cond, f, depth, sig);
      if (!c) return c.status();
      if (sig.kind == Signal::Kind::kOops) return sig;
      return exec_block(*c != 0 ? s.body : s.else_body, f, depth);
    }
    case Stmt::Kind::kWhile: {
      while (true) {
        if (++steps_ > kStepBudget) {
          return Status{Errc::kResourceExhausted, "step budget exhausted"};
        }
        auto c = eval_expr(*s.cond, f, depth, sig);
        if (!c) return c.status();
        if (sig.kind == Signal::Kind::kOops) return sig;
        if (*c == 0) return Signal{};
        auto b = exec_block(s.body, f, depth);
        if (!b) return b;
        if (b->kind != Signal::Kind::kNone) return b;
      }
    }
    case Stmt::Kind::kReturn: {
      auto v = eval_expr(*s.value, f, depth, sig);
      if (!v) return v.status();
      if (sig.kind == Signal::Kind::kOops) return sig;
      Signal ret;
      ret.kind = Signal::Kind::kReturn;
      ret.value = *v;
      return ret;
    }
    case Stmt::Kind::kBug: {
      Signal oops;
      oops.kind = Signal::Kind::kOops;
      // The trap instruction carries an 8-bit code; match that semantics.
      oops.trap = static_cast<u8>(s.num);
      return oops;
    }
    case Stmt::Kind::kPad:
      return Signal{};
    case Stmt::Kind::kExpr: {
      auto v = eval_expr(*s.value, f, depth, sig);
      if (!v) return v.status();
      if (sig.kind == Signal::Kind::kOops) return sig;
      return Signal{};
    }
  }
  return Signal{};
}

Result<u64> AstEvaluator::eval_expr(const Expr& e, Frame& f, int depth,
                                    Signal& sig) {
  switch (e.kind) {
    case Expr::Kind::kNum:
      return static_cast<u64>(e.num);
    case Expr::Kind::kVar: {
      auto it = f.locals.find(e.name);
      if (it != f.locals.end()) return it->second;
      auto g = globals_.find(e.name);
      if (g != globals_.end()) return g->second;
      return Status{Errc::kNotFound, "unbound variable '" + e.name + "'"};
    }
    case Expr::Kind::kBin: {
      auto l = eval_expr(*e.lhs, f, depth, sig);
      if (!l) return l;
      if (sig.kind == Signal::Kind::kOops) return u64{0};
      auto r = eval_expr(*e.rhs, f, depth, sig);
      if (!r) return r;
      if (sig.kind == Signal::Kind::kOops) return u64{0};
      u64 a = *l, b = *r;
      switch (e.op) {
        case BinOp::kAdd: return a + b;
        case BinOp::kSub: return a - b;
        case BinOp::kMul: return a * b;
        case BinOp::kDiv:
          if (b == 0) {
            sig.kind = Signal::Kind::kOops;
            sig.trap = 0;
            return u64{0};
          }
          return a / b;
        case BinOp::kMod:
          if (b == 0) {
            sig.kind = Signal::Kind::kOops;
            sig.trap = 0;
            return u64{0};
          }
          return a % b;
        case BinOp::kAnd: return a & b;
        case BinOp::kOr: return a | b;
        case BinOp::kXor: return a ^ b;
        case BinOp::kShl: return a << (b & 63);
        case BinOp::kShr: return a >> (b & 63);
        case BinOp::kEq: return u64{a == b};
        case BinOp::kNe: return u64{a != b};
        case BinOp::kLt:
          return u64{static_cast<i64>(a) < static_cast<i64>(b)};
        case BinOp::kLe:
          return u64{static_cast<i64>(a) <= static_cast<i64>(b)};
        case BinOp::kGt:
          return u64{static_cast<i64>(a) > static_cast<i64>(b)};
        case BinOp::kGe:
          return u64{static_cast<i64>(a) >= static_cast<i64>(b)};
      }
      return u64{0};
    }
    case Expr::Kind::kCall: {
      if (depth >= kMaxDepth) {
        return Status{Errc::kResourceExhausted, "call depth exhausted"};
      }
      const Function* callee = module_.find_function(e.name);
      if (callee == nullptr) {
        return Status{Errc::kNotFound, "no function '" + e.name + "'"};
      }
      if (e.args.size() > callee->params.size()) {
        return Status{Errc::kInvalidArgument, "too many arguments"};
      }
      Frame inner;
      for (size_t i = 0; i < callee->params.size(); ++i) {
        if (i < e.args.size()) {
          auto v = eval_expr(*e.args[i], f, depth, sig);
          if (!v) return v;
          if (sig.kind == Signal::Kind::kOops) return u64{0};
          inner.locals[callee->params[i]] = *v;
        } else {
          inner.locals[callee->params[i]] = 0;
        }
      }
      auto ret = exec_block(callee->body, inner, depth + 1);
      if (!ret) return ret.status();
      if (ret->kind == Signal::Kind::kOops) {
        sig = *ret;
        return u64{0};
      }
      return ret->kind == Signal::Kind::kReturn ? ret->value : u64{0};
    }
  }
  return u64{0};
}

}  // namespace kshot::kcc
