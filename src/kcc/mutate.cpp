#include "kcc/mutate.hpp"

namespace kshot::kcc {

namespace {

/// Matches the canonical fixed-rejection idioms: `return (0 - 22);` or the
/// inline-safe assignment form `r = (0 - 22);` (inline functions may not
/// return early, so fixes planted there clamp a result variable instead).
bool is_einval_action(const Stmt& s) {
  if (s.kind != Stmt::Kind::kReturn && s.kind != Stmt::Kind::kAssign) {
    return false;
  }
  if (!s.value) return false;
  const Expr& e = *s.value;
  return e.kind == Expr::Kind::kBin && e.op == BinOp::kSub &&
         e.lhs->kind == Expr::Kind::kNum && e.lhs->num == 0 &&
         e.rhs->kind == Expr::Kind::kNum && e.rhs->num == 22;
}

}  // namespace

int find_einval_guard(const Function& fn) {
  for (size_t i = 0; i < fn.body.size(); ++i) {
    const Stmt& s = *fn.body[i];
    if (s.kind != Stmt::Kind::kIf || !s.else_body.empty()) continue;
    if (!s.body.empty() && is_einval_action(*s.body.back())) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool drop_einval_guard(Function& fn) {
  int i = find_einval_guard(fn);
  if (i < 0) return false;
  fn.body.erase(fn.body.begin() + i);
  return true;
}

bool trap_einval_guard(Function& fn, i64 trap) {
  int i = find_einval_guard(fn);
  if (i < 0) return false;
  auto bug = std::make_unique<Stmt>();
  bug->kind = Stmt::Kind::kBug;
  bug->num = trap;
  fn.body[static_cast<size_t>(i)]->body.clear();
  fn.body[static_cast<size_t>(i)]->body.push_back(std::move(bug));
  return true;
}

bool drop_global(Module& m, const std::string& name) {
  for (size_t i = 0; i < m.globals.size(); ++i) {
    if (m.globals[i].name == name) {
      m.globals.erase(m.globals.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

bool set_leading_pad(Function& fn, i64 bytes) {
  if (fn.body.empty() || fn.body.front()->kind != Stmt::Kind::kPad) {
    return false;
  }
  fn.body.front()->num = bytes;
  return true;
}

}  // namespace kshot::kcc
