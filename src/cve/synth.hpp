// Auto-CVE synthesis: a deterministic, seeded generator of vulnerability
// cases that mutates kcc kernel sources to plant parameterized bug classes
// (DESIGN.md §14). Where suite.cpp transcribes the paper's 31 fixed Table I
// cases, this module manufactures an unbounded corpus: every splitmix64
// seed yields a fresh `cve::CveCase` — vulnerable pre_source, fixed
// post_source differing only at the planted site, and a derived exploit
// probe — that every existing consumer (PatchServer, fleet waves,
// combine_cases batching, lifecycle supersede chains, benchkit) ingests
// unchanged.
//
// Construction is fix-first: the *fixed* tail is built as a kcc AST and
// canonically printed; the vulnerable tail is a mutated clone (kcc/mutate.*)
// — the guard dropped (fix grows, trampoline path) or its action swapped
// for the trap (size-neutral fix, pad-equalized so the in-place splice path
// is hit). Diff confinement to the planted site falls out of construction
// and is still independently verified.
//
// Oracle stack, run BEFORE a case touches the live pipeline:
//   1. probe contract on the AST evaluator — exploit traps pre (with the
//      case's trap code), returns -EINVAL post, benign returns the same
//      value pre and post;
//   2. evaluator-vs-compiled-machine differential under two optimization
//      configs (constfold off/on), comparing oops/trap/value/globals — the
//      same pattern as the PR 4 kcc fuzz surface;
//   3. structural diff confinement — pre/post may differ only in the
//      declared changed functions plus the declared added global.
#pragma once

#include <array>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "cve/suite.hpp"

namespace kshot::cve {

enum class BugClass : u8 {
  kOobWrite = 0,       // copy loop runs past a synthesized buffer bound
  kMissingCheck = 1,   // attacker arg reaches a privileged helper unchecked
  kTypeConfusion = 2,  // out-of-range selector hits a wrong-type handler
};

/// Stable id tag: "OOB" / "CHK" / "DSP".
const char* bug_class_tag(BugClass c);
Result<BugClass> bug_class_from_tag(const std::string& tag);

/// Every knob changes the *shape* of the resulting patch, not just its
/// constants; all are derived from the seed (knobs_for_seed) unless a
/// caller pins them (the fuzz surface decodes them from the wire).
struct SynthKnobs {
  BugClass bug_class = BugClass::kOobWrite;
  /// The flawed function is `inline fn` => the binary patch implicates its
  /// synthesized callers (Type 2 metadata).
  bool inline_flaw = false;
  /// Fix guards inside the flawed helper vs up front in the syscall entry.
  bool guard_in_helper = true;
  /// The fix also adds an audit global bumped on the rejected path
  /// (Type 3 metadata; the vulnerable source lacks the global).
  bool add_global_fix = false;
  /// Size-neutral fix: both sources carry a pad() equalized against the
  /// compiled symbol sizes so the fixed body fits the old footprint and
  /// the enclave's in-place splice path (allow_splice) is eligible.
  bool size_neutral_fix = false;
  int filler_lines = 2;   // deterministic no-op lines per function (0..8)
  int helpers = 1;        // call-chain depth entry -> flawed fn (1..3)
  u64 limit = kGuardLimit;  // planted bounds limit, clamped to [8, 8192]
};

SynthKnobs knobs_for_seed(BugClass cls, u64 seed);

/// Clamps ranges and reconciles knob interactions deterministically:
/// size_neutral_fix forces !inline_flaw and !add_global_fix (a splice needs
/// one non-inline symbol of unchanged footprint), and inline_flaw forces
/// guard_in_helper (the flaw must live in the inline function).
void normalize_knobs(SynthKnobs& k);

/// "SYNTH-<TAG>-<seed as 16 hex digits>"; invertible via parse_synth_id,
/// which is what lets resolve_case() regenerate a case from its id alone.
std::string synth_id(BugClass cls, u64 seed);
Result<std::pair<BugClass, u64>> parse_synth_id(const std::string& id);

struct SynthCase {
  CveCase cve;
  SynthKnobs knobs;
  u64 seed = 0;
  /// Functions whose source differs between pre and post (the planted
  /// site); the diff-confinement oracle holds the sources to exactly this.
  std::vector<std::string> changed_functions;
  /// Non-empty iff the fix adds a global (Type 3).
  std::string added_global;
};

struct SynthOptions {
  /// Test-only seam (fuzz --selftest): plants the defensive fault-site
  /// limit one too high, so the minimal exploit no longer traps pre-patch
  /// and the probe-contract oracle must catch the mis-planted guard.
  /// Applies to the classes with a numeric fault-site limit (OOB, CHK).
  bool misplant_off_by_one = false;
};

Result<SynthCase> make_case(BugClass cls, u64 seed,
                            const SynthOptions& o = {});
Result<SynthCase> make_case(const SynthKnobs& knobs, u64 seed,
                            const SynthOptions& o = {});

/// Runs the full oracle stack (header comment) on one case.
Status check_case(const SynthCase& sc);

/// The lifecycle supersede-chain shape: one shared vulnerable kernel with
/// two independent flaws (guard A on a1 in the entry, guard B on a2 in the
/// helper). `partial` fixes only A — its exploit (A) dies but exploit_b
/// still traps; `cumulative` fixes A+B and retires the partial patch via
/// LifecycleOptions::supersedes.
struct SupersedePair {
  CveCase partial;
  CveCase cumulative;
  std::array<u64, 5> exploit_b{};  // traps until the cumulative fix lands
  u8 trap_b = 0;
};
Result<SupersedePair> make_supersede_pair(u64 seed);

// ---- Campaign --------------------------------------------------------------

/// Per-case seed stream (splitmix64 finalizer over campaign seed + index).
u64 synth_case_seed(u64 campaign_seed, u32 index);

struct CampaignOptions {
  u64 seed = 0x5EED;
  u32 cases = 200;
  u32 jobs = 1;
  /// Bug classes cycled case-by-case (index i gets classes[i % size]).
  std::vector<BugClass> classes = {BugClass::kOobWrite,
                                   BugClass::kMissingCheck,
                                   BugClass::kTypeConfusion};
  /// Optional extra per-case probe through a live deployment (the caller
  /// supplies a testbed live_patch driver; cve cannot depend on testbed).
  /// Runs on the first `live_cases` indices.
  std::function<Status(const SynthCase&)> live_probe;
  u32 live_cases = 0;
  SynthOptions synth;  // seam passthrough for selftests
};

struct CampaignReport {
  u32 cases = 0;
  u32 passed = 0;
  u32 failed = 0;
  /// Deterministic rendering: results are computed into index-order slots
  /// and aggregated serially, so the text is byte-identical across jobs.
  std::string report;
  [[nodiscard]] bool ok() const { return cases > 0 && failed == 0; }
};

Result<CampaignReport> run_campaign(const CampaignOptions& opts);

}  // namespace kshot::cve
