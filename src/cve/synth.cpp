#include "cve/synth.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "kcc/compiler.hpp"
#include "kcc/eval.hpp"
#include "kcc/mutate.hpp"
#include "kcc/parser.hpp"
#include "kcc/printer.hpp"
#include "machine/machine.hpp"

namespace kshot::cve {

namespace {

using kcc::BinOp;
using kcc::Expr;
using kcc::ExprPtr;
using kcc::Stmt;
using kcc::StmtPtr;

/// SplitMix64 finalizer — the seed stream backbone: every derived quantity
/// (knobs, traps, args, filler constants) is a pure function of it.
u64 mix64(u64 x) {
  x += 0x9e3779b97f4a7c15ULL;
  u64 z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string hex16(u64 v) {
  char b[17];
  std::snprintf(b, sizeof(b), "%016llx", static_cast<unsigned long long>(v));
  return b;
}

// ---- AST construction helpers ---------------------------------------------

ExprPtr num(i64 v) { return Expr::make_num(v); }
ExprPtr var(std::string n) { return Expr::make_var(std::move(n)); }
ExprPtr bin(BinOp op, ExprPtr l, ExprPtr r) {
  return Expr::make_bin(op, std::move(l), std::move(r));
}
ExprPtr call1(std::string n, ExprPtr a) {
  std::vector<ExprPtr> args;
  args.push_back(std::move(a));
  return Expr::make_call(std::move(n), std::move(args));
}
ExprPtr call0(std::string n) { return Expr::make_call(std::move(n), {}); }
/// The canonical fixed-return value `(0 - 22)`.
ExprPtr einval_expr() { return bin(BinOp::kSub, num(0), num(22)); }

StmtPtr s_let(std::string name, ExprPtr v) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::kLet;
  s->name = std::move(name);
  s->value = std::move(v);
  return s;
}
StmtPtr s_assign(std::string name, ExprPtr v) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::kAssign;
  s->name = std::move(name);
  s->value = std::move(v);
  return s;
}
StmtPtr s_ret(ExprPtr v) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::kReturn;
  s->value = std::move(v);
  return s;
}
StmtPtr s_if(ExprPtr cond, std::vector<StmtPtr> body) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::kIf;
  s->cond = std::move(cond);
  s->body = std::move(body);
  return s;
}
StmtPtr s_while(ExprPtr cond, std::vector<StmtPtr> body) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::kWhile;
  s->cond = std::move(cond);
  s->body = std::move(body);
  return s;
}
StmtPtr s_bug(i64 code) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::kBug;
  s->num = code;
  return s;
}
StmtPtr s_pad(i64 n) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::kPad;
  s->num = n;
  return s;
}

/// Deterministic side-effect-free filler lines (matches the suite idiom).
void add_filler(std::vector<StmtPtr>& body, const std::string& src_var,
                int count, u64 salt) {
  for (int i = 0; i < count; ++i) {
    u64 m = mix64(salt + static_cast<u64>(i));
    char fname[16];
    std::snprintf(fname, sizeof(fname), "f%d", i);
    body.push_back(s_let(
        fname,
        bin(BinOp::kMul,
            bin(BinOp::kAdd, var(src_var), num(3 + static_cast<i64>(m % 97))),
            num(2 + static_cast<i64>((m >> 32) % 9)))));
  }
}

/// The -EINVAL guard the fix plants: `if (<cond>) { [audit bump] return
/// (0 - 22); }`. This is the one statement kcc/mutate.* rewrites to derive
/// the vulnerable source.
StmtPtr make_guard(ExprPtr cond, const std::string& audit) {
  std::vector<StmtPtr> body;
  if (!audit.empty()) {
    body.push_back(
        s_assign(audit, bin(BinOp::kAdd, var(audit), num(1))));
  }
  body.push_back(s_ret(einval_expr()));
  return s_if(std::move(cond), std::move(body));
}

/// The inline-safe guard form: inline functions may not return early, so
/// the fix clamps the result variable to -EINVAL and the caller's
/// propagation check turns that into the syscall's -EINVAL. Recognized by
/// the same kcc/mutate.* matcher as the return form.
StmtPtr make_guard_assign(ExprPtr cond, const std::string& audit,
                          const std::string& result_var) {
  std::vector<StmtPtr> body;
  if (!audit.empty()) {
    body.push_back(
        s_assign(audit, bin(BinOp::kAdd, var(audit), num(1))));
  }
  body.push_back(s_assign(result_var, einval_expr()));
  return s_if(std::move(cond), std::move(body));
}

kcc::Function make_fn(std::string name, std::vector<std::string> params,
                      std::vector<StmtPtr> body, bool is_inline) {
  kcc::Function f;
  f.name = std::move(name);
  f.params = std::move(params);
  f.body = std::move(body);
  f.is_inline = is_inline;
  return f;
}

/// Leading pad used on size-neutral cases before equalization against the
/// compiled symbol sizes.
constexpr i64 kBasePad = 32;

struct Blueprint {
  kcc::Module tail;        // the fixed (post) tail
  std::string entry;
  std::string guarded_fn;  // holds the -EINVAL guard (the planted site)
  std::string audit;       // post-only global, or empty
  std::vector<std::string> emitted;  // every synthesized function name
};

/// Builds the FIXED tail module for one case. The vulnerable tail is then
/// derived by mutation in make_case (fix-first construction).
Blueprint build_post_tail(const SynthKnobs& k, u64 seed, u8 trap,
                          const SynthOptions& o) {
  Blueprint bp;
  std::string tag = bug_class_tag(k.bug_class);
  for (auto& c : tag) c = static_cast<char>(c - 'A' + 'a');
  const std::string pfx = tag + "_" + hex16(seed) + "_";
  const i64 limit = static_cast<i64>(k.limit);
  const i64 fault_limit = limit + (o.misplant_off_by_one ? 1 : 0);

  bp.entry = pfx + "entry";
  bp.audit = k.add_global_fix ? pfx + "audit" : "";
  if (!bp.audit.empty()) bp.tail.globals.push_back({bp.audit, 0});

  // The flawed function's name and the name the entry's call chain starts
  // at (filled in below once the intermediates exist).
  std::string flawed;
  auto push = [&](kcc::Function f) {
    bp.emitted.push_back(f.name);
    bp.tail.functions.push_back(std::move(f));
  };

  switch (k.bug_class) {
    case BugClass::kOobWrite: {
      // Copy loop past a synthesized buffer of `limit` slots: the loop body
      // models the machine check that fires when the write runs past the
      // buffer. The fix validates the requested length up front. The inline
      // variant (no loops or early returns allowed) compresses the copy to
      // a bounded-summary expression guarded by the assignment-form fix.
      flawed = pfx + "copy";
      std::vector<StmtPtr> body;
      if (k.inline_flaw) {
        add_filler(body, "n", k.filler_lines, mix64(seed ^ 0xF111));
        body.push_back(s_let(
            "r", bin(BinOp::kAdd,
                     bin(BinOp::kMul, call1("k_hash", var("n")), num(2)),
                     num(1))));
        body.push_back(make_guard_assign(
            bin(BinOp::kGt, var("n"), num(limit)), bp.audit, "r"));
        body.push_back(s_ret(var("r")));
        push(make_fn(flawed, {"n"}, std::move(body), true));
        break;
      }
      if (k.size_neutral_fix && k.guard_in_helper) {
        body.push_back(s_pad(kBasePad));
      }
      add_filler(body, "n", k.filler_lines, mix64(seed ^ 0xF111));
      if (k.guard_in_helper) {
        body.push_back(
            make_guard(bin(BinOp::kGt, var("n"), num(limit)), bp.audit));
      }
      body.push_back(s_let("i", num(0)));
      body.push_back(s_let("acc", num(0)));
      {
        std::vector<StmtPtr> loop;
        std::vector<StmtPtr> fault;
        fault.push_back(s_bug(trap));
        loop.push_back(s_if(bin(BinOp::kGe, var("i"), num(fault_limit)),
                            std::move(fault)));
        loop.push_back(s_assign(
            "acc", bin(BinOp::kAdd, var("acc"), call1("k_hash", var("i")))));
        loop.push_back(s_assign("i", bin(BinOp::kAdd, var("i"), num(1))));
        body.push_back(
            s_while(bin(BinOp::kLt, var("i"), var("n")), std::move(loop)));
      }
      body.push_back(s_ret(bin(BinOp::kAdd, var("acc"), num(1))));
      push(make_fn(flawed, {"n"}, std::move(body), false));
      break;
    }
    case BugClass::kMissingCheck: {
      // Privileged helper that faults on out-of-range input; the checked
      // wrapper is where the fix plants (or the attacker-controlled
      // argument bypasses) the bounds/permission validation. The inline
      // variant makes the helper total and puts the fault at the guard
      // itself (trap-swap derivation).
      std::string priv = pfx + "priv";
      {
        std::vector<StmtPtr> body;
        add_filler(body, "x", 1, mix64(seed ^ 0x9B1BULL));
        if (!k.inline_flaw) {
          std::vector<StmtPtr> fault;
          fault.push_back(s_bug(trap));
          body.push_back(s_if(bin(BinOp::kGt, var("x"), num(fault_limit)),
                              std::move(fault)));
        }
        body.push_back(s_ret(bin(
            BinOp::kAdd,
            call1("k_hash", bin(BinOp::kAnd, var("x"), num(1048575))),
            num(7))));
        push(make_fn(priv, {"x"}, std::move(body), false));
      }
      flawed = pfx + "check";
      std::vector<StmtPtr> body;
      if (k.inline_flaw) {
        add_filler(body, "x", k.filler_lines, mix64(seed ^ 0xC44C));
        body.push_back(s_let("r", call1(priv, var("x"))));
        body.push_back(make_guard_assign(
            bin(BinOp::kGt, var("x"), num(limit)), bp.audit, "r"));
        body.push_back(s_ret(var("r")));
        push(make_fn(flawed, {"x"}, std::move(body), true));
        break;
      }
      if (k.size_neutral_fix && k.guard_in_helper) {
        body.push_back(s_pad(kBasePad));
      }
      add_filler(body, "x", k.filler_lines, mix64(seed ^ 0xC44C));
      if (k.guard_in_helper) {
        body.push_back(
            make_guard(bin(BinOp::kGt, var("x"), num(limit)), bp.audit));
      }
      body.push_back(s_let("v", call1(priv, var("x"))));
      body.push_back(s_ret(var("v")));
      push(make_fn(flawed, {"x"}, std::move(body), false));
      break;
    }
    case BugClass::kTypeConfusion: {
      // Dispatch table: selector bits route to typed handlers; an
      // out-of-range selector lands on the wrong-type handler, which traps.
      // The fix validates the selector before dispatching.
      std::string h0 = pfx + "op0", h1 = pfx + "op1", bad = pfx + "bad";
      {
        std::vector<StmtPtr> body;
        body.push_back(
            s_ret(bin(BinOp::kAdd, call1("k_hash", var("x")), num(11))));
        push(make_fn(h0, {"x"}, std::move(body), false));
      }
      {
        std::vector<StmtPtr> body;
        body.push_back(s_ret(
            bin(BinOp::kMul, bin(BinOp::kAnd, var("x"), num(4095)), num(3))));
        push(make_fn(h1, {"x"}, std::move(body), false));
      }
      flawed = pfx + "dispatch";
      std::vector<StmtPtr> body;
      if (k.inline_flaw) {
        // Inline dispatch: handlers assign into a result variable (no early
        // returns), and the out-of-range selector is the guard itself.
        add_filler(body, "v", k.filler_lines, mix64(seed ^ 0xD157));
        body.push_back(s_let("op", bin(BinOp::kShr, var("v"), num(12))));
        body.push_back(s_let("x", bin(BinOp::kAnd, var("v"), num(4095))));
        body.push_back(s_let("r", num(0)));
        {
          std::vector<StmtPtr> then0;
          then0.push_back(s_assign("r", call1(h0, var("x"))));
          body.push_back(
              s_if(bin(BinOp::kEq, var("op"), num(0)), std::move(then0)));
          std::vector<StmtPtr> then1;
          then1.push_back(s_assign("r", call1(h1, var("x"))));
          body.push_back(
              s_if(bin(BinOp::kEq, var("op"), num(1)), std::move(then1)));
        }
        body.push_back(make_guard_assign(
            bin(BinOp::kGt, var("op"), num(1)), bp.audit, "r"));
        body.push_back(s_ret(var("r")));
        push(make_fn(flawed, {"v"}, std::move(body), true));
        break;
      }
      {
        std::vector<StmtPtr> body2;
        body2.push_back(s_bug(trap));
        body2.push_back(s_ret(num(0)));
        push(make_fn(bad, {"x"}, std::move(body2), false));
      }
      if (k.size_neutral_fix && k.guard_in_helper) {
        body.push_back(s_pad(kBasePad));
      }
      add_filler(body, "v", k.filler_lines, mix64(seed ^ 0xD157));
      body.push_back(s_let("op", bin(BinOp::kShr, var("v"), num(12))));
      body.push_back(s_let("x", bin(BinOp::kAnd, var("v"), num(4095))));
      if (k.guard_in_helper) {
        body.push_back(
            make_guard(bin(BinOp::kGt, var("op"), num(1)), bp.audit));
      }
      {
        std::vector<StmtPtr> then0;
        then0.push_back(s_ret(call1(h0, var("x"))));
        body.push_back(
            s_if(bin(BinOp::kEq, var("op"), num(0)), std::move(then0)));
        std::vector<StmtPtr> then1;
        then1.push_back(s_ret(call1(h1, var("x"))));
        body.push_back(
            s_if(bin(BinOp::kEq, var("op"), num(1)), std::move(then1)));
      }
      body.push_back(s_ret(call1(bad, var("x"))));
      push(make_fn(flawed, {"v"}, std::move(body), false));
      break;
    }
  }

  // Pass-through call chain between the entry and the flawed function
  // (depth knob): c1 -> c2 -> ... -> flawed. Emitted callee-first.
  std::string next = flawed;
  for (int j = k.helpers - 1; j >= 1; --j) {
    std::string name = pfx + "c" + std::to_string(j);
    std::vector<StmtPtr> body;
    add_filler(body, "x", 1, mix64(seed ^ (0xCA11 + static_cast<u64>(j))));
    body.push_back(s_let("v", call1(next, var("x"))));
    body.push_back(s_ret(var("v")));
    push(make_fn(name, {"x"}, std::move(body), false));
    next = name;
  }
  // `next` now names the first function the entry calls. Reversing gives
  // source order c1, c2, ...; emission above already placed callees first.
  std::reverse(bp.tail.functions.end() -
                   static_cast<std::ptrdiff_t>(std::max(0, k.helpers - 1)),
               bp.tail.functions.end());

  // Syscall entry: account, filler, optional up-front guard, call the
  // chain, propagate the fix's -EINVAL, hash the result.
  {
    std::vector<StmtPtr> body;
    if (k.size_neutral_fix && !k.guard_in_helper) {
      body.push_back(s_pad(kBasePad));
    }
    body.push_back(s_let("t", call0("k_account")));
    add_filler(body, "a1", std::min(k.filler_lines, 3),
               mix64(seed ^ 0xE117));
    if (!k.guard_in_helper) {
      ExprPtr cond =
          k.bug_class == BugClass::kTypeConfusion
              ? bin(BinOp::kGt, bin(BinOp::kShr, var("a1"), num(12)), num(1))
              : bin(BinOp::kGt, var("a1"), num(limit));
      body.push_back(make_guard(std::move(cond), bp.audit));
    }
    body.push_back(s_let("v", call1(next, var("a1"))));
    {
      std::vector<StmtPtr> prop;
      prop.push_back(s_ret(einval_expr()));
      body.push_back(
          s_if(bin(BinOp::kEq, var("v"), einval_expr()), std::move(prop)));
    }
    body.push_back(s_ret(bin(
        BinOp::kAdd,
        bin(BinOp::kAdd, call1("k_hash", var("v")),
            bin(BinOp::kMul, var("t"), num(0))),
        num(1))));
    push(make_fn(bp.entry, {"a1", "a2"}, std::move(body), false));
  }

  bp.guarded_fn = k.guard_in_helper ? flawed : bp.entry;
  return bp;
}

kcc::Function* find_mut(kcc::Module& m, const std::string& name) {
  for (auto& f : m.functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

/// Lines present in `b` but not in `a` (multiset difference) — a cheap,
/// deterministic stand-in for patch LoC.
int diff_line_count(const std::string& a, const std::string& b) {
  std::multiset<std::string> left;
  std::istringstream ia(a);
  for (std::string l; std::getline(ia, l);) left.insert(l);
  int only = 0;
  std::istringstream ib(b);
  for (std::string l; std::getline(ib, l);) {
    auto it = left.find(l);
    if (it != left.end()) {
      left.erase(it);
    } else {
      ++only;
    }
  }
  return only;
}

}  // namespace

const char* bug_class_tag(BugClass c) {
  switch (c) {
    case BugClass::kOobWrite: return "OOB";
    case BugClass::kMissingCheck: return "CHK";
    case BugClass::kTypeConfusion: return "DSP";
  }
  return "?";
}

Result<BugClass> bug_class_from_tag(const std::string& tag) {
  if (tag == "OOB") return BugClass::kOobWrite;
  if (tag == "CHK") return BugClass::kMissingCheck;
  if (tag == "DSP") return BugClass::kTypeConfusion;
  return Status{Errc::kInvalidArgument, "unknown bug class tag: " + tag};
}

void normalize_knobs(SynthKnobs& k) {
  k.filler_lines = std::clamp(k.filler_lines, 0, 8);
  k.helpers = std::clamp(k.helpers, 1, 3);
  // Upper bound keeps the OOB exploit's pre-trap loop well inside the
  // machine probe's instruction budget in the differential oracle.
  k.limit = std::clamp<u64>(k.limit, 8, 8192);
  // A splice needs one non-inline symbol whose fixed body fits the old
  // footprint: inlining smears the diff across callers, and an added
  // global changes the data segment.
  if (k.size_neutral_fix) {
    k.inline_flaw = false;
    k.add_global_fix = false;
  }
  // An inline flaw IS the planted site; the guard must live there.
  if (k.inline_flaw) k.guard_in_helper = true;
}

SynthKnobs knobs_for_seed(BugClass cls, u64 seed) {
  Rng r(mix64(seed ^ (0xC1A55ULL * (static_cast<u64>(cls) + 1))));
  SynthKnobs k;
  k.bug_class = cls;
  k.inline_flaw = r.next_below(3) == 0;
  k.guard_in_helper = r.next_below(3) != 0;
  k.add_global_fix = r.next_below(4) == 0;
  k.size_neutral_fix = r.next_below(4) == 0;
  k.filler_lines = static_cast<int>(r.next_below(6));
  k.helpers = 1 + static_cast<int>(r.next_below(3));
  k.limit = 64ull << r.next_below(6);  // 64 .. 2048
  normalize_knobs(k);
  return k;
}

std::string synth_id(BugClass cls, u64 seed) {
  return std::string("SYNTH-") + bug_class_tag(cls) + "-" + hex16(seed);
}

Result<std::pair<BugClass, u64>> parse_synth_id(const std::string& id) {
  // SYNTH-<TAG>-<16 hex>
  if (id.size() != 6 + 3 + 1 + 16 || id.compare(0, 6, "SYNTH-") != 0 ||
      id[9] != '-') {
    return Status{Errc::kInvalidArgument, "not a synth id: " + id};
  }
  auto cls = bug_class_from_tag(id.substr(6, 3));
  if (!cls) return cls.status();
  u64 seed = 0;
  for (size_t i = 10; i < id.size(); ++i) {
    char c = id[i];
    int nib;
    if (c >= '0' && c <= '9') {
      nib = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      nib = c - 'a' + 10;
    } else {
      return Status{Errc::kInvalidArgument, "bad synth id seed: " + id};
    }
    seed = (seed << 4) | static_cast<u64>(nib);
  }
  return std::make_pair(*cls, seed);
}

u64 synth_case_seed(u64 campaign_seed, u32 index) {
  return mix64(campaign_seed +
               (static_cast<u64>(index) + 1) * 0x9e3779b97f4a7c15ULL);
}

Result<SynthCase> make_case(BugClass cls, u64 seed, const SynthOptions& o) {
  return make_case(knobs_for_seed(cls, seed), seed, o);
}

Result<SynthCase> make_case(const SynthKnobs& knobs_in, u64 seed,
                            const SynthOptions& o) {
  SynthCase sc;
  sc.knobs = knobs_in;
  normalize_knobs(sc.knobs);
  if (o.misplant_off_by_one) {
    // The seam mis-plants the numeric fault-site limit, which only exists
    // in the guard-drop shapes: trap-swap derivations (inline or
    // size-neutral) keep the guard itself as the fault, where the limit is
    // the guard constant. Pin the shape so the mis-plant is always live.
    sc.knobs.inline_flaw = false;
    sc.knobs.size_neutral_fix = false;
  }
  sc.seed = seed;
  const SynthKnobs& k = sc.knobs;

  const u64 m = mix64(seed ^ 0x5EED5EEDULL);
  const u8 trap = static_cast<u8>(60 + m % 180);

  Blueprint bp = build_post_tail(k, seed, trap, o);

  // Derive the vulnerable tail by mutating a clone of the fixed one.
  kcc::Module pre = bp.tail.clone();
  kcc::Function* guarded = find_mut(pre, bp.guarded_fn);
  if (guarded == nullptr) {
    return Status{Errc::kInternal,
                  "synth: guarded function missing: " + bp.guarded_fn};
  }
  if (k.size_neutral_fix || k.inline_flaw) {
    // The guard is itself the fault site: keep the compare, swap the
    // rejection for the trap. (Inline flaws can't drop the guard — there is
    // no separate fault statement to fall through to.)
    if (!kcc::trap_einval_guard(*guarded, trap)) {
      return Status{Errc::kInternal, "synth: no guard to trap-swap"};
    }
  } else {
    if (!kcc::drop_einval_guard(*guarded)) {
      return Status{Errc::kInternal, "synth: no guard to drop"};
    }
  }
  if (!bp.audit.empty() && !kcc::drop_global(pre, bp.audit)) {
    return Status{Errc::kInternal, "synth: audit global missing"};
  }

  const std::string base = base_kernel_source();
  auto full = [&](const kcc::Module& tail) {
    return base + "\n" + kcc::to_source(tail);
  };

  if (k.size_neutral_fix) {
    // Pad-equalize against the compiled symbol sizes: the fixed body must
    // fit the vulnerable body's footprint for the enclave's in-place
    // splice. nop == 1 byte, so the adjustment is exact.
    kcc::CompileOptions copts;
    auto pre_img = kcc::compile_source(full(pre), copts);
    if (!pre_img) return pre_img.status();
    auto post_img = kcc::compile_source(full(bp.tail), copts);
    if (!post_img) return post_img.status();
    const kcc::Symbol* ps = pre_img->find_symbol(bp.guarded_fn);
    const kcc::Symbol* qs = post_img->find_symbol(bp.guarded_fn);
    if (ps == nullptr || qs == nullptr) {
      return Status{Errc::kInternal, "synth: guarded symbol not linked"};
    }
    if (qs->size > ps->size) {
      i64 delta = static_cast<i64>(qs->size) - static_cast<i64>(ps->size);
      if (!kcc::set_leading_pad(*guarded, kBasePad + delta)) {
        return Status{Errc::kInternal, "synth: no pad to equalize"};
      }
    }
  }

  CveCase& c = sc.cve;
  c.id = synth_id(k.bug_class, seed);
  c.kernel = "sim-4.4";
  c.trap_code = trap;
  c.syscall_nr = 200 + static_cast<int>((m >> 8) % 1000000);
  c.entry_function = bp.entry;
  c.pre_source = full(pre);
  c.post_source = full(bp.tail);
  c.types = k.inline_flaw ? "2" : "1";
  if (k.add_global_fix) c.types += ",3";

  sc.changed_functions = {bp.guarded_fn};
  sc.added_global = bp.audit;
  c.functions = {bp.guarded_fn};
  if (bp.entry != bp.guarded_fn) c.functions.push_back(bp.entry);
  if (!bp.audit.empty()) c.functions.push_back(bp.audit);

  // Probe inputs. The exploit is the MINIMAL out-of-range input, so an
  // off-by-one mis-plant (SynthOptions seam) is observable.
  u64 benign_small = 3 + ((m >> 16) % 48);
  switch (k.bug_class) {
    case BugClass::kOobWrite:
    case BugClass::kMissingCheck:
      c.exploit_args = {k.limit + 1, 1, 0, 0, 0};
      c.benign_args = {std::min<u64>(benign_small, k.limit - 1), 2, 0, 0, 0};
      break;
    case BugClass::kTypeConfusion: {
      u64 bad_op = 2 + ((m >> 24) % 5);
      u64 x = (m >> 40) % 4095;
      c.exploit_args = {(bad_op << 12) | x, 1, 0, 0, 0};
      c.benign_args = {(((m >> 33) % 2) << 12) | (x ^ 1), 2, 0, 0, 0};
      break;
    }
  }
  c.patch_loc = std::max(
      1, diff_line_count(kcc::to_source(pre), kcc::to_source(bp.tail)));
  return sc;
}

// ---- Oracle stack ----------------------------------------------------------

namespace {

Result<kcc::EvalOutcome> eval_probe(const kcc::Module& m,
                                    const std::string& entry,
                                    const std::vector<u64>& args) {
  // Fresh evaluator per probe: globals must start from their initializers,
  // like the machine probes (which rewrite the data image).
  kcc::AstEvaluator ev(m);
  return ev.call(entry, args);
}

std::vector<u64> args_for(const kcc::Function& entry,
                          const std::array<u64, 5>& a) {
  return std::vector<u64>(a.begin(),
                          a.begin() + static_cast<std::ptrdiff_t>(
                                          std::min<size_t>(entry.params.size(),
                                                           a.size())));
}

/// Evaluator-vs-machine differential for one module under two optimization
/// configs (the PR 4 kcc-surface pattern): oops/trap/value and every
/// global's final state must agree for both the benign and exploit inputs.
Status differential_check(const kcc::Module& mod, const CveCase& c,
                          const std::vector<u64>& exploit,
                          const std::vector<u64>& benign,
                          const char* which) {
  static const kcc::CompileOptions kConfigs[] = {
      {.text_base = 0x100000,
       .data_base = 0x400000,
       .enable_inlining = true,
       .enable_constfold = false},
      {.text_base = 0x100000,
       .data_base = 0x400000,
       .enable_inlining = true,
       .enable_constfold = true},
  };
  for (size_t ci = 0; ci < 2; ++ci) {
    auto img = kcc::compile_module(mod, kConfigs[ci]);
    if (!img) {
      return Status{img.status().code(),
                    std::string(which) + " failed to compile (config " +
                        std::to_string(ci) + "): " + img.status().message()};
    }
    const kcc::Symbol* sym = img->find_symbol(c.entry_function);
    if (sym == nullptr) {
      return Status{Errc::kInternal,
                    std::string(which) + ": entry symbol missing"};
    }
    machine::Machine m{16 << 20, 0xA0000, 0x20000};
    KSHOT_RETURN_IF_ERROR(
        m.mem().write(img->text_base, img->text, machine::AccessMode::smm()));
    for (int round = 0; round < 2; ++round) {
      const std::vector<u64>& args = round == 0 ? benign : exploit;
      // Reset the data segment so both worlds start from initializers.
      Bytes data = img->data_image();
      if (!data.empty()) {
        KSHOT_RETURN_IF_ERROR(m.mem().write(img->data_base, data,
                                            machine::AccessMode::smm()));
      }
      auto expect = eval_probe(mod, c.entry_function, args);
      if (!expect) {
        return Status{expect.status().code(),
                      std::string(which) +
                          ": evaluator failed: " + expect.status().message()};
      }
      auto& cpu = m.cpu();
      cpu = machine::CpuState{};
      for (size_t i = 0; i < args.size(); ++i) cpu.regs[1 + i] = args[i];
      cpu.sp() = (12 << 20) - 8;
      KSHOT_RETURN_IF_ERROR(m.mem().write_u64(
          cpu.sp(), machine::kReturnSentinel, machine::AccessMode::normal()));
      cpu.rip = sym->addr;
      auto res = m.run(20'000'000);
      bool oops = res.kind == machine::StepKind::kOops;
      if (res.kind != machine::StepKind::kRetTop && !oops) {
        return Status{Errc::kInternal,
                      std::string(which) + ": machine did not complete: " +
                          res.detail};
      }
      std::ostringstream why;
      if (oops != expect->oops) {
        why << "machine " << (oops ? "oopsed" : "returned") << ", evaluator "
            << (expect->oops ? "oopsed" : "returned");
      } else if (oops && res.info != expect->trap_code) {
        why << "trap " << res.info << " vs evaluator " << expect->trap_code;
      } else if (!oops && cpu.regs[0] != expect->value) {
        why << "value " << cpu.regs[0] << " vs evaluator " << expect->value;
      } else if (!oops) {
        kcc::AstEvaluator ref(mod);
        auto redo = ref.call(c.entry_function, args);
        if (!redo) return redo.status();
        for (const auto& g : mod.globals) {
          const kcc::GlobalSym* gs = img->find_global(g.name);
          auto eg = ref.global(g.name);
          if (gs == nullptr || !eg.is_ok()) continue;
          auto mg = m.mem().read_u64(gs->addr, machine::AccessMode::normal());
          if (mg.is_ok() && *mg != *eg) {
            why << "global " << g.name << " " << *mg << " vs evaluator "
                << *eg;
            break;
          }
        }
      }
      if (!why.str().empty()) {
        return Status{Errc::kInternal,
                      std::string("differential divergence (") + which +
                          ", config " + std::to_string(ci) + ", " +
                          (round == 0 ? "benign" : "exploit") +
                          "): " + why.str()};
      }
    }
  }
  return Status::ok();
}

/// Structural diff confinement: pre and post may differ only in the
/// declared changed functions plus the declared added global.
Status confinement_check(const kcc::Module& pre, const kcc::Module& post,
                         const SynthCase& sc) {
  std::map<std::string, const kcc::Function*> pre_fns, post_fns;
  for (const auto& f : pre.functions) pre_fns[f.name] = &f;
  for (const auto& f : post.functions) post_fns[f.name] = &f;
  std::set<std::string> changed(sc.changed_functions.begin(),
                                sc.changed_functions.end());
  for (const auto& [name, f] : post_fns) {
    auto it = pre_fns.find(name);
    if (it == pre_fns.end()) {
      return Status{Errc::kInternal,
                    "diff confinement: function only in post: " + name};
    }
    bool differs = kcc::to_source(*f) != kcc::to_source(*it->second);
    if (differs && changed.count(name) == 0) {
      return Status{Errc::kInternal,
                    "diff confinement: unplanted change in " + name};
    }
    if (!differs && changed.count(name) != 0) {
      return Status{Errc::kInternal,
                    "diff confinement: declared site unchanged: " + name};
    }
  }
  for (const auto& [name, f] : pre_fns) {
    (void)f;
    if (post_fns.count(name) == 0) {
      return Status{Errc::kInternal,
                    "diff confinement: function only in pre: " + name};
    }
  }
  std::map<std::string, i64> pre_globals;
  for (const auto& g : pre.globals) pre_globals[g.name] = g.init;
  for (const auto& g : post.globals) {
    auto it = pre_globals.find(g.name);
    if (it == pre_globals.end()) {
      if (g.name != sc.added_global) {
        return Status{Errc::kInternal,
                      "diff confinement: undeclared added global: " + g.name};
      }
      continue;
    }
    if (it->second != g.init) {
      return Status{Errc::kInternal,
                    "diff confinement: global initializer changed: " + g.name};
    }
    pre_globals.erase(it);
  }
  if (!pre_globals.empty()) {
    return Status{Errc::kInternal, "diff confinement: global dropped in post: " +
                                       pre_globals.begin()->first};
  }
  return Status::ok();
}

}  // namespace

Status check_case(const SynthCase& sc) {
  const CveCase& c = sc.cve;
  auto pre = kcc::parse(c.pre_source);
  if (!pre) {
    return Status{pre.status().code(),
                  "pre_source does not parse: " + pre.status().message()};
  }
  auto post = kcc::parse(c.post_source);
  if (!post) {
    return Status{post.status().code(),
                  "post_source does not parse: " + post.status().message()};
  }
  const kcc::Function* entry = post->find_function(c.entry_function);
  if (entry == nullptr) {
    return Status{Errc::kInternal, "entry function missing: " +
                                       c.entry_function};
  }
  std::vector<u64> exploit = args_for(*entry, c.exploit_args);
  std::vector<u64> benign = args_for(*entry, c.benign_args);

  // 1. Probe contract on the reference evaluator.
  auto pre_exp = eval_probe(*pre, c.entry_function, exploit);
  if (!pre_exp) return pre_exp.status();
  if (!pre_exp->oops) {
    return Status{Errc::kInternal,
                  "probe contract: exploit did not trap pre-patch (value " +
                      std::to_string(pre_exp->value) + ")"};
  }
  if (pre_exp->trap_code != c.trap_code) {
    return Status{Errc::kInternal,
                  "probe contract: pre-patch trap " +
                      std::to_string(pre_exp->trap_code) + " != planted " +
                      std::to_string(c.trap_code)};
  }
  auto post_exp = eval_probe(*post, c.entry_function, exploit);
  if (!post_exp) return post_exp.status();
  if (post_exp->oops) {
    return Status{Errc::kInternal,
                  "probe contract: exploit still traps post-patch (trap " +
                      std::to_string(post_exp->trap_code) + ")"};
  }
  if (post_exp->value != kEinval) {
    return Status{Errc::kInternal,
                  "probe contract: post-patch exploit returned " +
                      std::to_string(post_exp->value) + ", not -EINVAL"};
  }
  auto pre_ben = eval_probe(*pre, c.entry_function, benign);
  if (!pre_ben) return pre_ben.status();
  auto post_ben = eval_probe(*post, c.entry_function, benign);
  if (!post_ben) return post_ben.status();
  if (pre_ben->oops || post_ben->oops) {
    return Status{Errc::kInternal, "probe contract: benign input trapped"};
  }
  if (pre_ben->value != post_ben->value) {
    return Status{Errc::kInternal,
                  "probe contract: benign value diverged pre " +
                      std::to_string(pre_ben->value) + " vs post " +
                      std::to_string(post_ben->value)};
  }

  // 2. Evaluator-vs-machine differential on both sources.
  KSHOT_RETURN_IF_ERROR(differential_check(*pre, c, exploit, benign, "pre"));
  KSHOT_RETURN_IF_ERROR(
      differential_check(*post, c, exploit, benign, "post"));

  // 3. Structural diff confinement.
  return confinement_check(*pre, *post, sc);
}

// ---- resolve_case (declared in suite.hpp) ----------------------------------

Result<CveCase> resolve_case(const std::string& id) {
  for (const auto& c : all_cases()) {
    if (c.id == id) return c;
  }
  if (id.compare(0, 6, "SYNTH-") == 0) {
    auto parsed = parse_synth_id(id);
    if (!parsed) return parsed.status();
    auto sc = make_case(parsed->first, parsed->second);
    if (!sc) return sc.status();
    return sc->cve;
  }
  return Status{Errc::kNotFound, "unknown CVE id: " + id};
}

// ---- Supersede pair --------------------------------------------------------

Result<SupersedePair> make_supersede_pair(u64 seed) {
  const u64 m = mix64(seed ^ 0x50B3B5EDULL);
  const u8 trap_a = static_cast<u8>(60 + m % 90);
  const u8 trap_b = static_cast<u8>(trap_a + 90);
  const i64 limit_a = 1024, limit_b = 2048;
  const std::string pfx = "sup_" + hex16(seed) + "_";
  const std::string helper = pfx + "helper";
  const std::string entry = pfx + "entry";

  // Cumulative post: guard A in the entry (a1), guard B in the helper (a2);
  // both fault sites stay in place beneath the guards.
  kcc::Module cum;
  {
    std::vector<StmtPtr> body;
    body.push_back(make_guard(bin(BinOp::kGt, var("x"), num(limit_b)), ""));
    std::vector<StmtPtr> fault;
    fault.push_back(s_bug(trap_b));
    body.push_back(
        s_if(bin(BinOp::kGt, var("x"), num(limit_b)), std::move(fault)));
    body.push_back(
        s_ret(bin(BinOp::kAdd, call1("k_hash", var("x")), num(5))));
    cum.functions.push_back(make_fn(helper, {"x"}, std::move(body), false));
  }
  {
    std::vector<StmtPtr> body;
    body.push_back(s_let("t", call0("k_account")));
    body.push_back(make_guard(bin(BinOp::kGt, var("a1"), num(limit_a)), ""));
    std::vector<StmtPtr> fault;
    fault.push_back(s_bug(trap_a));
    body.push_back(
        s_if(bin(BinOp::kGt, var("a1"), num(limit_a)), std::move(fault)));
    body.push_back(s_let("v", call1(helper, var("a2"))));
    {
      std::vector<StmtPtr> prop;
      prop.push_back(s_ret(einval_expr()));
      body.push_back(
          s_if(bin(BinOp::kEq, var("v"), einval_expr()), std::move(prop)));
    }
    body.push_back(s_ret(bin(
        BinOp::kAdd,
        bin(BinOp::kAdd, call1("k_hash", var("a1")), var("v")),
        bin(BinOp::kMul, var("t"), num(0)))));
    cum.functions.push_back(
        make_fn(entry, {"a1", "a2"}, std::move(body), false));
  }

  // Shared vulnerable source: both guards dropped.
  kcc::Module pre = cum.clone();
  if (!kcc::drop_einval_guard(*find_mut(pre, helper)) ||
      !kcc::drop_einval_guard(*find_mut(pre, entry))) {
    return Status{Errc::kInternal, "supersede pair: guard derivation failed"};
  }
  // Partial fix: only guard A (drop the helper's guard from the cumulative).
  kcc::Module part = cum.clone();
  if (!kcc::drop_einval_guard(*find_mut(part, helper))) {
    return Status{Errc::kInternal, "supersede pair: partial derivation failed"};
  }

  const std::string base = base_kernel_source();
  auto full = [&](const kcc::Module& tail) {
    return base + "\n" + kcc::to_source(tail);
  };

  SupersedePair out;
  CveCase c;
  c.kernel = "sim-4.4";
  c.trap_code = trap_a;
  c.syscall_nr = 200 + static_cast<int>((m >> 8) % 1000000);
  c.entry_function = entry;
  c.exploit_args = {static_cast<u64>(limit_a) + 1, 7, 0, 0, 0};
  c.benign_args = {11, 7, 0, 0, 0};
  c.pre_source = full(pre);
  c.types = "1";

  out.partial = c;
  out.partial.id = "SYNTH-SUP-" + hex16(seed) + "-PART";
  out.partial.functions = {entry};
  out.partial.patch_loc = 3;
  out.partial.post_source = full(part);

  out.cumulative = c;
  out.cumulative.id = "SYNTH-SUP-" + hex16(seed) + "-CUM";
  out.cumulative.functions = {entry, helper};
  out.cumulative.patch_loc = 6;
  out.cumulative.post_source = full(cum);

  out.exploit_b = {11, static_cast<u64>(limit_b) + 1, 0, 0, 0};
  out.trap_b = trap_b;
  return out;
}

// ---- Campaign --------------------------------------------------------------

Result<CampaignReport> run_campaign(const CampaignOptions& opts) {
  if (opts.cases == 0) {
    return Status{Errc::kInvalidArgument, "synth campaign: cases must be > 0"};
  }
  if (opts.classes.empty()) {
    return Status{Errc::kInvalidArgument, "synth campaign: no bug classes"};
  }
  struct Slot {
    std::string id;
    SynthKnobs knobs;
    bool ok = false;
    bool live = false;
    std::string detail;
  };
  std::vector<Slot> slots(opts.cases);
  parallel_for(opts.cases, std::max<u32>(1, opts.jobs), [&](u32 i) {
    Slot& s = slots[i];
    BugClass cls = opts.classes[i % opts.classes.size()];
    u64 cs = synth_case_seed(opts.seed, i);
    s.id = synth_id(cls, cs);
    auto sc = make_case(cls, cs, opts.synth);
    if (!sc) {
      s.detail = sc.status().message();
      return;
    }
    s.knobs = sc->knobs;
    Status st = check_case(*sc);
    if (st.is_ok() && opts.live_probe && i < opts.live_cases) {
      s.live = true;
      st = opts.live_probe(*sc);
    }
    if (!st.is_ok()) {
      s.detail = st.message();
      return;
    }
    s.ok = true;
  });

  CampaignReport rep;
  rep.cases = opts.cases;
  struct Tally {
    u32 cases = 0, passed = 0;
  };
  std::map<std::string, Tally> by_class;
  u32 inline_n = 0, global_n = 0, neutral_n = 0, grown_n = 0, live_n = 0;
  std::ostringstream os;
  char seedbuf[32];
  std::snprintf(seedbuf, sizeof(seedbuf), "0x%llx",
                static_cast<unsigned long long>(opts.seed));
  os << "synth campaign: seed=" << seedbuf << " cases=" << opts.cases
     << " classes=";
  for (size_t i = 0; i < opts.classes.size(); ++i) {
    if (i) os << ",";
    os << bug_class_tag(opts.classes[i]);
  }
  os << "\n";
  std::ostringstream failures;
  for (u32 i = 0; i < opts.cases; ++i) {
    const Slot& s = slots[i];
    Tally& t = by_class[bug_class_tag(opts.classes[i % opts.classes.size()])];
    ++t.cases;
    if (s.ok) {
      ++t.passed;
      ++rep.passed;
    } else {
      ++rep.failed;
      failures << "  FAIL " << s.id << ": " << s.detail << "\n";
    }
    if (s.knobs.inline_flaw) ++inline_n;
    if (s.knobs.add_global_fix) ++global_n;
    if (s.knobs.size_neutral_fix) {
      ++neutral_n;
    } else {
      ++grown_n;
    }
    if (s.live) ++live_n;
  }
  for (const auto& [tag, t] : by_class) {
    os << "  " << tag << ": " << t.cases << " cases, " << t.passed
       << " passed\n";
  }
  os << "  shapes: inline=" << inline_n << " global_add=" << global_n
     << " size_neutral=" << neutral_n << " grown=" << grown_n << "\n";
  if (opts.live_cases > 0) os << "  live probes: " << live_n << "\n";
  os << failures.str();
  if (rep.failed == 0) {
    os << "synth: OK (" << rep.passed << "/" << rep.cases << " cases)\n";
  } else {
    os << "synth: FAIL (" << rep.failed << "/" << rep.cases
       << " cases failed)\n";
  }
  rep.report = os.str();
  return rep;
}

}  // namespace kshot::cve
