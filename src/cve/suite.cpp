#include "cve/suite.hpp"

#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

namespace kshot::cve {

namespace {

/// How a case exercises global/shared data (Type 3 flavors).
enum class GlobalMode {
  kNone,    // no data changes
  kAdd,     // post-patch source adds a new global
  kModify,  // post-patch source changes an existing global's value
};

struct Spec {
  const char* id;
  const char* kernel;
  std::vector<const char*> functions;  // Table I affected functions
  int loc;
  const char* types;
  GlobalMode gmode = GlobalMode::kNone;
  /// For kAdd: index into `functions` naming the added variable rather than
  /// a function (CVE-2014-3690 lists the struct field vmcs_host_cr4).
  int var_name_index = -1;
};

// Table I, transcribed. 2014/2015 CVEs target sim-3.14, later ones sim-4.4.
// CVE-2014-4608 (last) is the §VI-C3 / Fig. 4-5 extra case.
const std::vector<Spec>& specs() {
  static const std::vector<Spec> kSpecs = {
      {"CVE-2014-0196", "sim-3.14", {"n_tty_write"}, 86, "1"},
      {"CVE-2014-3687", "sim-3.14",
       {"scp_chunk_pending", "ctp_assoc_lookup_asconf_ack"}, 16, "1,2"},
      {"CVE-2014-3690", "sim-3.14",
       {"vmx_vcpu_run", "vmcs_host_cr4", "vmx_set_constant_host_state"}, 247,
       "3", GlobalMode::kAdd, 1},
      {"CVE-2014-4157", "sim-3.14", {"current_thread_info"}, 5, "2"},
      {"CVE-2014-5077", "sim-3.14", {"scpct_assoce_update"}, 98, "1"},
      {"CVE-2014-8206", "sim-3.14", {"do_remount"}, 34, "2"},
      {"CVE-2014-7842", "sim-3.14", {"handle_emulation_failure"}, 16, "1"},
      {"CVE-2014-8133", "sim-3.14", {"set_tls_desc", "regset_tls_set"}, 81,
       "1,2"},
      {"CVE-2015-1333", "sim-3.14", {"__key_link_end"}, 21, "1"},
      {"CVE-2015-1421", "sim-3.14", {"scpct_assoce_update"}, 96, "1"},
      {"CVE-2015-5707", "sim-3.14", {"sg_start_req"}, 117, "1"},
      {"CVE-2015-7172", "sim-3.14",
       {"key_gc_unused_keys", "request_key_and_link"}, 20, "1"},
      {"CVE-2015-8812", "sim-3.14",
       {"iwch_li2_send", "iwch_cxgb3_ofld_send"}, 26, "1"},
      {"CVE-2015-8963", "sim-3.14",
       {"perf_swevent_add", "swevent_hist_get_cpu",
        "perf_event_exit_cpu_context"},
       72, "3", GlobalMode::kModify},
      {"CVE-2015-8964", "sim-3.14", {"tty_set_termios_ldisc"}, 10, "2"},
      {"CVE-2016-2143", "sim-4.4",
       {"init_new_context", "pgd_alloc", "pgd_free"}, 53, "2"},
      {"CVE-2016-2543", "sim-4.4", {"snd_seq_ioctl_remove_events"}, 25, "1"},
      {"CVE-2016-4578", "sim-4.4", {"snd_timer_user_callback"}, 24, "1"},
      {"CVE-2016-4580", "sim-4.4", {"x25_negotiate_facilities"}, 67, "1"},
      {"CVE-2016-5195", "sim-4.4", {"follow_page_pte", "faulti_page"}, 229,
       "1,3", GlobalMode::kAdd},
      {"CVE-2016-5829", "sim-4.4", {"hiddev_ioctl_usage"}, 119, "1"},
      {"CVE-2016-7914", "sim-4.4",
       {"assoc_array_insert__into_terminal_node"}, 330, "1"},
      {"CVE-2016-7916", "sim-4.4", {"environ_read"}, 63, "1"},
      {"CVE-2017-6347", "sim-4.4", {"ip_msg_recv_checksum"}, 15, "2"},
      {"CVE-2017-8251", "sim-4.4", {"omninetc_open"}, 9, "2"},
      {"CVE-2017-16994", "sim-4.4", {"walk_page_range"}, 27, "1"},
      {"CVE-2017-17053", "sim-4.4", {"init_new_context"}, 13, "2"},
      {"CVE-2017-17806", "sim-4.4",
       {"hmac_create", "crypto_hash_algs_setkey"}, 91, "1,2"},
      {"CVE-2017-18270", "sim-4.4",
       {"install_user_keyring", "join_session_keyring"}, 273, "1,2"},
      {"CVE-2018-10124", "sim-4.4", {"kill_something_info", "sys_kill"}, 51,
       "1,2"},
      // §VI-C3's whole-system example (156-byte patch), used in Figs. 4/5.
      {"CVE-2014-4608", "sim-3.14", {"lzo1x_decompress_safe"}, 30, "1"},
  };
  return kSpecs;
}

bool spec_has_type(const Spec& s, char t) {
  return std::string(s.types).find(t) != std::string::npos;
}

/// Filler statements: deterministic, side-effect free, `count` lines.
std::string filler(int count, const std::string& seed_var) {
  std::ostringstream os;
  for (int i = 0; i < count; ++i) {
    os << "  let f" << i << " = (" << seed_var << " + " << (i * 7 + 3)
       << ") * " << (i % 9 + 2) << ";\n";
  }
  return os.str();
}

struct GeneratedCase {
  std::string pre;
  std::string post;
  std::string entry;
};

/// Emits one CVE's functions (pre and post variants) following the schema
/// described in suite.hpp.
GeneratedCase generate(const Spec& s, u8 trap_code) {
  std::ostringstream pre, post;
  GeneratedCase out;

  // Resolve the function list: for kAdd with var_name_index, one entry is a
  // variable name, not a function.
  std::vector<std::string> fns;
  std::string added_global;
  for (size_t i = 0; i < s.functions.size(); ++i) {
    if (s.gmode == GlobalMode::kAdd &&
        static_cast<int>(i) == s.var_name_index) {
      added_global = s.functions[i];
    } else {
      fns.emplace_back(s.functions[i]);
    }
  }
  if (s.gmode == GlobalMode::kAdd && added_global.empty()) {
    added_global = std::string(s.id) + "_state";
    for (auto& c : added_global) {
      if (c == '-') c = '_';
    }
  }

  bool inline_case = spec_has_type(s, '2');
  std::string inline_fn = inline_case ? fns.back() : "";
  std::string modified_global;
  if (s.gmode == GlobalMode::kModify) {
    modified_global = "perf_sample_window";
    pre << "global " << modified_global << " = 16384;\n\n";
    post << "global " << modified_global << " = 4096;\n\n";
  }
  if (s.gmode == GlobalMode::kAdd) {
    post << "global " << added_global << " = 17;\n\n";
  }

  int share = std::max(2, s.loc / static_cast<int>(fns.size()));

  // --- The inline (Type 2) function, if any -----------------------------
  if (inline_case) {
    int fill = std::min(share - 2 > 0 ? share - 2 : 1, 8);
    pre << "inline fn " << inline_fn << "(v) {\n"
        << filler(fill, "v")
        << "  let r = v & 4095;\n"
        << "  if (v > " << kGuardLimit << ") {\n"
        << "    bug(" << int(trap_code) << ");\n"
        << "  }\n"
        << "  return r;\n"
        << "}\n\n";
    post << "inline fn " << inline_fn << "(v) {\n"
         << filler(fill, "v")
         << "  let r = v & 4095;\n"
         << "  if (v > " << kGuardLimit << ") {\n"
         << "    r = 4095;\n"
         << "  }\n"
         << "  return r;\n"
         << "}\n\n";
  }

  // --- Regular functions -------------------------------------------------
  std::vector<std::string> regular(fns.begin(),
                                   fns.end() - (inline_case ? 1 : 0));
  for (size_t i = 0; i < regular.size(); ++i) {
    const std::string& name = regular[i];
    bool is_entry = i == 0;
    int fill = std::max(1, share - 8);

    auto emit = [&](std::ostringstream& os, bool fixed) {
      os << "fn " << name << "(a1, a2) {\n"
         << "  let t = k_account();\n"
         << filler(fill, "a1");
      if (is_entry) {
        if (fixed) {
          // The official fix: reject out-of-range input up front.
          if (!modified_global.empty()) {
            os << "  if (a1 > " << modified_global << ") {\n"
               << "    return 0 - 22;\n"
               << "  }\n";
          } else {
            os << "  if (a1 > " << kGuardLimit << ") {\n"
               << "    return 0 - 22;\n"
               << "  }\n";
          }
          if (!added_global.empty()) {
            os << "  " << added_global << " = " << added_global << " + 1;\n";
          }
        } else {
          if (!inline_case) {
            // The vulnerability: reachable BUG on crafted input.
            if (!modified_global.empty()) {
              os << "  if (a1 > " << modified_global << ") {\n"
                 << "    bug(" << int(trap_code) << ");\n"
                 << "  }\n";
            } else {
              os << "  if (a1 > " << kGuardLimit << ") {\n"
                 << "    bug(" << int(trap_code) << ");\n"
                 << "  }\n";
            }
          }
        }
        if (inline_case) {
          os << "  let w = " << inline_fn << "(a1);\n";
        } else {
          os << "  let w = a1 & 4095;\n";
        }
        os << "  let r = k_hash(w) + t * 0;\n";
        // Chain into the other affected functions.
        for (size_t j = 1; j < regular.size(); ++j) {
          os << "  r = r + " << regular[j] << "(a1 & 4095, a2);\n";
        }
        os << "  return r;\n";
      } else {
        if (fixed) {
          os << "  let __cve_fix = " << (i + 1) << ";\n";
          if (!added_global.empty()) {
            os << "  " << added_global << " = " << added_global << " + 1;\n";
          }
        }
        os << "  return k_hash(a1) + " << (i * 13 + 5) << " + t * 0;\n";
      }
      os << "}\n\n";
    };
    emit(pre, false);
    emit(post, true);
  }

  // --- Synthesized callers for Type 2 cases --------------------------------
  // These functions are byte-identical at the source level between pre and
  // post; they change in the *binary* only because the edited inline
  // function is expanded into them — the pure "implicated via inlining"
  // situation the worklist analysis must discover.
  if (inline_case) {
    // __usera passes its argument through unmasked (it is the exploitable
    // syscall entry for pure Type 2 cases); __userb is a second, benign
    // call site.
    for (const char* suffix : {"__usera", "__userb"}) {
      bool masked = std::string(suffix) == "__userb";
      for (auto* os : {&pre, &post}) {
        *os << "fn " << inline_fn << suffix << "(a1, a2) {\n"
            << "  let t = k_account();\n"
            << filler(2, "a1")
            << "  let v = " << inline_fn << "(a1"
            << (masked ? " & 4095" : "") << ");\n"
            << "  return v + k_hash(a2) * 0 + t * 0;\n"
            << "}\n\n";
      }
    }
  }
  if (inline_case && regular.empty()) {
    out.entry = inline_fn + "__usera";
  } else {
    out.entry = regular.empty() ? inline_fn : regular[0];
  }

  out.pre = pre.str();
  out.post = post.str();
  return out;
}

std::vector<CveCase> build_all() {
  std::vector<CveCase> cases;
  const std::string base = base_kernel_source();
  int idx = 0;
  for (const Spec& s : specs()) {
    CveCase c;
    c.id = s.id;
    c.kernel = s.kernel;
    for (const char* f : s.functions) c.functions.emplace_back(f);
    c.patch_loc = s.loc;
    c.types = s.types;
    c.trap_code = static_cast<u8>(20 + idx);
    c.syscall_nr = 100 + idx;

    GeneratedCase g = generate(s, c.trap_code);
    c.entry_function = g.entry;
    c.pre_source = base + "\n" + g.pre;
    c.post_source = base + "\n" + g.post;

    u64 exploit = s.gmode == GlobalMode::kModify ? 20000 : 8192;
    c.exploit_args = {exploit, 1, 0, 0, 0};
    c.benign_args = {static_cast<u64>(37 + idx * 11 % 1000), 2, 0, 0, 0};
    cases.push_back(std::move(c));
    ++idx;
  }
  return cases;
}

}  // namespace

std::string base_kernel_source() {
  return R"(// base simulated kernel
global jiffies = 0;
global syscalls_served = 0;

fn k_hash(x) {
  let h = (x & 1048575) * 40503;
  h = h % 65521;
  return h;
}

fn k_account() {
  jiffies = jiffies + 1;
  syscalls_served = syscalls_served + 1;
  return jiffies;
}

fn k_busy(n) {
  let i = 0;
  let acc = 0;
  while (i < n) {
    acc = acc + k_hash(i);
    i = i + 1;
  }
  return acc;
}

fn sys_account(a1) {
  return k_account() * 0 + 1;
}

fn sys_busy(n) {
  let t = k_account();
  return k_busy(n & 1023) + t * 0;
}

fn sys_hash(x) {
  let t = k_account();
  return k_hash(x) + t * 0;
}
)";
}

const std::vector<CveCase>& all_cases() {
  static const std::vector<CveCase> kCases = build_all();
  return kCases;
}

const CveCase& find_case(const std::string& id) {
  for (const auto& c : all_cases()) {
    if (c.id == id) return c;
  }
  std::fprintf(stderr, "unknown CVE case: %s\n", id.c_str());
  std::abort();
}

Result<BatchCase> combine_cases(const std::vector<std::string>& ids) {
  if (ids.empty()) {
    return Status{Errc::kInvalidArgument, "no cases to combine"};
  }
  BatchCase batch;
  const std::string base = base_kernel_source();
  std::string pre = base, post = base;
  std::set<std::string> seen_functions;
  std::string kernel;
  std::string id = "BATCH(";

  for (size_t i = 0; i < ids.size(); ++i) {
    auto resolved = resolve_case(ids[i]);
    if (!resolved) return resolved.status();
    const CveCase& c = *resolved;
    if (kernel.empty()) {
      kernel = c.kernel;
    } else if (kernel != c.kernel) {
      return Status{Errc::kInvalidArgument,
                    "cases target different kernel versions"};
    }
    for (const auto& fn : c.functions) {
      if (!seen_functions.insert(fn).second) {
        return Status{Errc::kInvalidArgument,
                      "function name collision on '" + fn + "'"};
      }
    }
    // Each case's source is base + its own code; strip the shared base.
    pre += c.pre_source.substr(base.size());
    post += c.post_source.substr(base.size());
    batch.parts.push_back(c);
    id += ids[i];
    if (i + 1 < ids.size()) id += ",";
  }
  id += ")";

  batch.merged = batch.parts[0];
  batch.merged.id = id;
  batch.merged.kernel = kernel;
  batch.merged.pre_source = pre;
  batch.merged.post_source = post;
  return batch;
}

Result<std::vector<CveCase>> batch_part_cases(
    const std::vector<std::string>& ids) {
  auto batch = combine_cases(ids);  // reuse its validation
  if (!batch) return batch.status();

  const std::string base = base_kernel_source();
  std::vector<CveCase> parts;
  for (size_t i = 0; i < ids.size(); ++i) {
    CveCase part = batch->parts[i];
    // Merged kernel with exactly CVE i fixed: base + every case's pre tail,
    // except case i contributes its post tail. Appending in `ids` order
    // keeps the layout identical to the merged pre image for all shared
    // code, so per-part patch sets apply cleanly to one booted kernel.
    std::string pre = base, post = base;
    for (size_t j = 0; j < ids.size(); ++j) {
      const CveCase& c = batch->parts[j];
      pre += c.pre_source.substr(base.size());
      post += (j == i ? c.post_source : c.pre_source).substr(base.size());
    }
    part.pre_source = std::move(pre);
    part.post_source = std::move(post);
    parts.push_back(std::move(part));
  }
  return parts;
}

std::vector<std::string> figure_case_ids() {
  return {"CVE-2014-0196", "CVE-2014-3687",  "CVE-2014-4608",
          "CVE-2015-8964", "CVE-2016-5195", "CVE-2017-17806"};
}

Result<ProbeReport> probe_case(const CveCase& c, const ProbeFn& probe,
                               bool expect_fixed) {
  if (!probe) {
    return Status{Errc::kInvalidArgument, "probe_case: null probe"};
  }
  ProbeReport rep;
  auto note = [&](const std::string& d) {
    if (rep.detail.empty()) rep.detail = d;
  };

  auto ex = probe(c.syscall_nr, c.exploit_args);
  if (!ex) {
    note("probe [" + c.id + "]: exploit syscall stuck: " +
         ex.status().message());
  } else if (ex->oops) {
    rep.exploit_trapped = ex->trap_code == c.trap_code;
    if (!rep.exploit_trapped) {
      note("probe [" + c.id + "]: exploit trapped with code " +
           std::to_string(ex->trap_code) + ", expected " +
           std::to_string(c.trap_code));
    } else if (expect_fixed) {
      note("probe [" + c.id + "]: exploit still fires");
    }
  } else {
    rep.exploit_rejected = ex->value == kEinval;
    if (expect_fixed && !rep.exploit_rejected) {
      note("probe [" + c.id + "]: exploit returned " +
           std::to_string(ex->value) + ", not -EINVAL");
    }
    if (!expect_fixed) {
      note("probe [" + c.id + "]: exploit did not trap pre-patch");
    }
  }

  auto ben = probe(c.syscall_nr, c.benign_args);
  if (!ben) {
    note("probe [" + c.id + "]: benign syscall stuck: " +
         ben.status().message());
  } else if (ben->oops) {
    note("probe [" + c.id + "]: benign syscall oopsed");
  } else {
    rep.benign_ok = true;
    rep.benign_value = ben->value;
  }
  return rep;
}

}  // namespace kshot::cve
