// The Table I benchmark suite: 30 indicative kernel CVE patches (plus
// CVE-2014-4608, which §VI-C3 and Figs. 4/5 use), synthesized as ksrc kernel
// modules that mirror the paper's affected-function names, patch sizes
// (lines of code) and Type 1/2/3 classification.
//
// Every case follows one schema:
//   * the vulnerable path is a reachable `bug(trap_code)` guarded by an
//     attacker-controlled argument (the exploit);
//   * the post-patch source removes the trap behind a proper bounds check
//     (returning -EINVAL) while preserving behaviour for benign arguments;
//   * Type 2 cases put the flaw in an `inline fn`, so the binary patch must
//     implicate the synthesized callers;
//   * Type 3 cases add or modify a global in the post-patch source.
#pragma once

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace kshot::cve {

/// The value the fixed code returns for exploit inputs (-EINVAL as u64).
inline constexpr u64 kEinval = static_cast<u64>(-22);
/// Guard threshold used by every synthesized vulnerability.
inline constexpr u64 kGuardLimit = 4096;

struct CveCase {
  std::string id;                  // e.g. "CVE-2017-17806"
  std::string kernel;              // "sim-3.14" or "sim-4.4"
  std::vector<std::string> functions;  // Table I "Affected Functions"
  int patch_loc = 0;               // Table I "Size" (LoC)
  std::string types;               // Table I "Type", e.g. "1,2"
  u8 trap_code = 0;                // trap the exploit fires pre-patch
  int syscall_nr = 0;              // syscall wired to the entry function
  std::string entry_function;      // emitted function the syscall calls
  std::array<u64, 5> exploit_args{};
  std::array<u64, 5> benign_args{};

  std::string pre_source;          // full kernel source (base + CVE code)
  std::string post_source;

  [[nodiscard]] bool has_type(int t) const {
    return types.find(static_cast<char>('0' + t)) != std::string::npos;
  }
};

/// All 31 cases (Table I's 30 + CVE-2014-4608), in table order.
const std::vector<CveCase>& all_cases();

/// Case lookup by id; aborts if unknown (benchmark ids are compile-time).
const CveCase& find_case(const std::string& id);

/// Case lookup that also understands synthesized ids: table cases are
/// returned as-is, "SYNTH-<TAG>-<seed>" ids are regenerated on the fly
/// (synth.hpp — the id alone is the whole case), anything else is
/// kNotFound. Fleet, batching and CLI paths resolve through this so a
/// synthesized case is usable anywhere a table CVE id is.
Result<CveCase> resolve_case(const std::string& id);

/// The 6 CVEs of Figs. 4 and 5.
std::vector<std::string> figure_case_ids();

/// Shared base-kernel source every case builds on (workload syscalls the
/// Sysbench-style benchmarks exercise).
std::string base_kernel_source();

/// A distro-style cumulative update: several CVE fixes merged into a single
/// kernel + a single patch set.
struct BatchCase {
  CveCase merged;              // pre = all vulnerable, post = all fixed
  std::vector<CveCase> parts;  // per-CVE syscall/exploit metadata
};

/// Merges the given cases (which must target the same kernel version and
/// have pairwise-distinct function names) into one BatchCase. The merged
/// case's id is "BATCH(<id>,...)".
Result<BatchCase> combine_cases(const std::vector<std::string>& ids);

/// Per-CVE cases rebased onto the merged kernel of combine_cases(ids): part
/// i keeps its own id/metadata but its pre_source is the fully merged
/// all-vulnerable kernel and its post_source fixes only CVE i (every other
/// CVE stays vulnerable). A patch server fed these sources builds per-CVE
/// patch sets whose pre images all measure identically to the merged
/// kernel, so the N sets can be batched into one SMM session.
Result<std::vector<CveCase>> batch_part_cases(
    const std::vector<std::string>& ids);

/// Syscall numbers provided by the base kernel.
inline constexpr int kSysAccount = 1;  // bumps jiffies
inline constexpr int kSysBusy = 2;     // CPU-bound loop, arg = iterations
inline constexpr int kSysHash = 3;     // hashes arg

// ---- Shared exploit/benign probing ----------------------------------------

/// One syscall observation, stripped of any execution-backend detail.
struct ProbeOutcome {
  bool oops = false;
  u8 trap_code = 0;
  u64 value = 0;
};

/// Runs syscall `nr` with `args` against some live deployment. Adapters
/// exist for each backend (testbed::prober); cve stays dependency-free.
using ProbeFn =
    std::function<Result<ProbeOutcome>(int, const std::array<u64, 5>&)>;

struct ProbeReport {
  bool exploit_trapped = false;   // exploit oopsed with the case's trap code
  bool exploit_rejected = false;  // exploit returned -EINVAL (patched)
  bool benign_ok = false;         // benign syscall completed without oops
  u64 benign_value = 0;
  std::string detail;             // first contract violation, or empty
};

/// Probes one case through `probe`: runs the exploit and the benign args
/// and classifies the outcomes against the case's contract. `expect_fixed`
/// selects which exploit behaviour is a violation (detail is set when the
/// observation contradicts the expectation, or any probe errors/oopses on
/// benign input). Both the fleet health checks and the CVE tests layer on
/// this single implementation.
Result<ProbeReport> probe_case(const CveCase& c, const ProbeFn& probe,
                               bool expect_fixed);

}  // namespace kshot::cve
