// Structured tracing for the patching pipeline (the observability layer the
// paper's Table III / Fig. 4 timing claims are verified against).
//
// Every pipeline layer — Kshot (fetch/retry/stage/SMI), the preprocessing
// enclave (ecalls), the SMM handler (keygen/decrypt/verify/apply/introspect/
// rollback), the patch server (cache hit/miss, compile) and the fleet
// controller (waves, per-target state transitions) — emits spans and instant
// events into a TraceRecorder. Each event carries two clocks:
//
//   * virtual time: the machine's modeled cycle counter. Deterministic for a
//     fixed seed, byte-identical across --jobs levels, and the clock all
//     determinism tests and exports are keyed on.
//   * wall time: real measured duration of the span (diagnostic only; the
//     deterministic exporters omit it).
//
// The SmmPatchTimings / SgxPhaseTimings structs of earlier revisions are now
// derived from these spans rather than measured separately.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace kshot::obs {

/// Synthetic "process id" used for events that belong to no fleet target
/// (the shared patch server, fleet-level rollout events).
inline constexpr u32 kSharedTarget = 1'000'000;

enum class EventKind : u8 {
  kComplete = 0,  // a span with a begin and an end
  kInstant = 1,   // a point event
};

struct TraceArg {
  std::string key;
  std::string value;
};

struct TraceEvent {
  EventKind kind = EventKind::kInstant;
  std::string component;  // "kshot", "enclave", "smm", "netsim", "fleet"
  std::string name;       // "decrypt", "fetch", "cache_hit", ...
  u32 target = 0;         // fleet target index; kSharedTarget for global
  u64 seq = 0;            // recorder-assigned append order
  u64 virt_begin_cycles = 0;
  u64 virt_end_cycles = 0;  // == virt_begin_cycles for instants
  double wall_us = 0;       // measured wall duration (0 for instants)
  std::vector<TraceArg> args;

  [[nodiscard]] u64 virt_cycles() const {
    return virt_end_cycles - virt_begin_cycles;
  }
};

/// Thread-safe append-only event sink. One recorder per fleet target keeps
/// per-target traces deterministic; a shared recorder (patch server, fleet
/// controller) must be canonicalize()d before deterministic export.
class TraceRecorder {
 public:
  void complete(std::string component, std::string name, u32 target,
                u64 virt_begin_cycles, u64 virt_end_cycles, double wall_us,
                std::vector<TraceArg> args = {});
  void instant(std::string component, std::string name, u32 target,
               u64 virt_cycles, std::vector<TraceArg> args = {});

  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  [[nodiscard]] size_t size() const;
  void clear();

 private:
  mutable std::mutex mu_;
  u64 next_seq_ = 0;
  std::vector<TraceEvent> events_;
};

struct ChromeTraceOptions {
  /// Conversion from modeled cycles to exported microseconds (set this to
  /// 1 / (CostModel::ghz * 1000)).
  double us_per_cycle = 1.0 / 3000.0;
  /// Include measured wall durations as event args. Wall time is real time:
  /// turning this on makes the output run-dependent, so the deterministic
  /// fleet export keeps it off.
  bool include_wall = true;
};

/// Renders events in Chrome trace-event JSON ("traceEvents" array form, as
/// accepted by chrome://tracing and Perfetto). Events are emitted in the
/// order given; pid = target, tid = component.
std::string to_chrome_trace(const std::vector<TraceEvent>& events,
                            const ChromeTraceOptions& opts = {});

/// Deterministic order for events recorded by concurrently-written shared
/// recorders: stable-sorts by (target, component, name, args, virtual
/// begin), discarding the racy append order. Events whose content is
/// identical are interchangeable, so the result is byte-stable across
/// thread interleavings as long as the event *multiset* is.
std::vector<TraceEvent> canonicalize(std::vector<TraceEvent> events);

}  // namespace kshot::obs
