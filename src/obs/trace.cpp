#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace kshot::obs {

namespace {

/// Stable small tids per component so exported traces group rows nicely.
int component_tid(const std::string& component) {
  if (component == "kshot") return 1;
  if (component == "enclave") return 2;
  if (component == "smm") return 3;
  if (component == "netsim") return 4;
  if (component == "fleet") return 5;
  return 9;
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_fixed(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

std::string args_key(const TraceEvent& e) {
  std::string k;
  for (const auto& a : e.args) {
    k += a.key;
    k += '=';
    k += a.value;
    k += ';';
  }
  return k;
}

}  // namespace

void TraceRecorder::complete(std::string component, std::string name,
                             u32 target, u64 virt_begin_cycles,
                             u64 virt_end_cycles, double wall_us,
                             std::vector<TraceArg> args) {
  TraceEvent e;
  e.kind = EventKind::kComplete;
  e.component = std::move(component);
  e.name = std::move(name);
  e.target = target;
  e.virt_begin_cycles = virt_begin_cycles;
  e.virt_end_cycles = std::max(virt_end_cycles, virt_begin_cycles);
  e.wall_us = wall_us;
  e.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  e.seq = next_seq_++;
  events_.push_back(std::move(e));
}

void TraceRecorder::instant(std::string component, std::string name,
                            u32 target, u64 virt_cycles,
                            std::vector<TraceArg> args) {
  TraceEvent e;
  e.kind = EventKind::kInstant;
  e.component = std::move(component);
  e.name = std::move(name);
  e.target = target;
  e.virt_begin_cycles = virt_cycles;
  e.virt_end_cycles = virt_cycles;
  e.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  e.seq = next_seq_++;
  events_.push_back(std::move(e));
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  next_seq_ = 0;
}

std::string to_chrome_trace(const std::vector<TraceEvent>& events,
                            const ChromeTraceOptions& opts) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;

  // Thread-name metadata so chrome://tracing labels each component lane.
  std::map<std::pair<u32, int>, std::string> lanes;
  for (const auto& e : events) {
    lanes.emplace(std::make_pair(e.target, component_tid(e.component)),
                  e.component);
  }
  for (const auto& [lane, component] : lanes) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":";
    out += std::to_string(lane.first);
    out += ",\"tid\":";
    out += std::to_string(lane.second);
    out += ",\"args\":{\"name\":";
    append_json_string(out, component);
    out += "}}";
  }

  for (const auto& e : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, e.name);
    out += ",\"cat\":";
    append_json_string(out, e.component);
    out += ",\"ph\":";
    out += e.kind == EventKind::kComplete ? "\"X\"" : "\"i\"";
    out += ",\"pid\":";
    out += std::to_string(e.target);
    out += ",\"tid\":";
    out += std::to_string(component_tid(e.component));
    out += ",\"ts\":";
    append_fixed(out, static_cast<double>(e.virt_begin_cycles) *
                          opts.us_per_cycle);
    if (e.kind == EventKind::kComplete) {
      out += ",\"dur\":";
      append_fixed(out, static_cast<double>(e.virt_cycles()) *
                            opts.us_per_cycle);
    } else {
      out += ",\"s\":\"t\"";
    }
    bool has_args = !e.args.empty() ||
                    (opts.include_wall && e.kind == EventKind::kComplete);
    if (has_args) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& a : e.args) {
        if (!first_arg) out += ',';
        first_arg = false;
        append_json_string(out, a.key);
        out += ':';
        append_json_string(out, a.value);
      }
      if (opts.include_wall && e.kind == EventKind::kComplete) {
        if (!first_arg) out += ',';
        out += "\"wall_us\":\"";
        append_fixed(out, e.wall_us);
        out += '"';
      }
      out += '}';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::vector<TraceEvent> canonicalize(std::vector<TraceEvent> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.target != b.target) return a.target < b.target;
                     if (a.component != b.component) {
                       return a.component < b.component;
                     }
                     if (a.name != b.name) return a.name < b.name;
                     std::string ka = args_key(a), kb = args_key(b);
                     if (ka != kb) return ka < kb;
                     return a.virt_begin_cycles < b.virt_begin_cycles;
                   });
  return events;
}

}  // namespace kshot::obs
