// Named counters and histograms for the patching pipeline.
//
// Replaces the scattered per-object counters (sessions_, aborts_,
// stagings_seen_, BuildCacheStats, ...) with one thread-safe registry that
// every layer increments and that can be snapshotted, merged across fleet
// targets, and dumped as text or JSON from kshot-sim --metrics.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace kshot::obs {

/// Monotonic counter. Increments are lock-free; the registry hands out
/// stable references, so holders may cache the pointer.
class Counter {
 public:
  void inc(u64 delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] u64 value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<u64> value_{0};
};

/// Log2-bucketed histogram over non-negative doubles (microseconds, bytes).
/// Bucket i counts samples in [2^(i-1), 2^i); bucket 0 counts [0, 1).
class Histogram {
 public:
  static constexpr size_t kBuckets = 40;

  void observe(double v);

  struct Snapshot {
    u64 count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    u64 buckets[kBuckets] = {};
    [[nodiscard]] double mean() const { return count ? sum / count : 0; }
  };
  [[nodiscard]] Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  Snapshot s_;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, u64>> counters;  // name-sorted
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;

  /// Sums another snapshot into this one by metric name (fleet aggregation).
  void merge(const MetricsSnapshot& other);

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::string to_json() const;
};

/// Thread-safe registry. counter()/histogram() create on first use and
/// return references that stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);
  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace kshot::obs
