#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace kshot::obs {

namespace {

size_t bucket_for(double v) {
  if (v < 1.0) return 0;
  int e = static_cast<int>(std::floor(std::log2(v))) + 1;
  return std::min<size_t>(static_cast<size_t>(e), Histogram::kBuckets - 1);
}

void append_num(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

}  // namespace

void Histogram::observe(double v) {
  if (v < 0) v = 0;
  std::lock_guard<std::mutex> lock(mu_);
  if (s_.count == 0) {
    s_.min = s_.max = v;
  } else {
    s_.min = std::min(s_.min, v);
    s_.max = std::max(s_.max, v);
  }
  ++s_.count;
  s_.sum += v;
  ++s_.buckets[bucket_for(v)];
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return s_;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  std::map<std::string, u64> c;
  for (const auto& [name, v] : counters) c[name] += v;
  for (const auto& [name, v] : other.counters) c[name] += v;
  counters.assign(c.begin(), c.end());

  std::map<std::string, Histogram::Snapshot> h;
  for (const auto& [name, s] : histograms) h[name] = s;
  for (const auto& [name, s] : other.histograms) {
    auto& dst = h[name];
    if (dst.count == 0) {
      dst = s;
    } else if (s.count != 0) {
      dst.min = std::min(dst.min, s.min);
      dst.max = std::max(dst.max, s.max);
      dst.count += s.count;
      dst.sum += s.sum;
      for (size_t i = 0; i < Histogram::kBuckets; ++i) {
        dst.buckets[i] += s.buckets[i];
      }
    }
  }
  histograms.assign(h.begin(), h.end());
}

std::string MetricsSnapshot::to_string() const {
  std::string out;
  for (const auto& [name, v] : counters) {
    out += name;
    out += ' ';
    out += std::to_string(v);
    out += '\n';
  }
  for (const auto& [name, s] : histograms) {
    out += name;
    out += " count=";
    out += std::to_string(s.count);
    out += " sum=";
    append_num(out, s.sum);
    out += " mean=";
    append_num(out, s.mean());
    out += " min=";
    append_num(out, s.min);
    out += " max=";
    append_num(out, s.max);
    out += '\n';
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    out += std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, s] : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":{\"count\":";
    out += std::to_string(s.count);
    out += ",\"sum\":";
    append_num(out, s.sum);
    out += ",\"mean\":";
    append_num(out, s.mean());
    out += ",\"min\":";
    append_num(out, s.min);
    out += ",\"max\":";
    append_num(out, s.max);
    out += '}';
  }
  out += "}}";
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->snapshot());
  }
  return snap;
}

}  // namespace kshot::obs
