// Regression corpus I/O plus the canonical seed cases. Corpus files are
// hex dumps with '#' comments so a shrunk repro printed by the fuzzer can be
// pasted into tests/corpus/ verbatim; kcc cases are plain .ksrc source.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/hex.hpp"
#include "fuzz/fuzz.hpp"
#include "patchtool/package.hpp"

namespace kshot::fuzz {

namespace fs = std::filesystem;

std::string encode_hex_file(ByteSpan bytes, const std::string& comment) {
  std::ostringstream os;
  if (!comment.empty()) {
    std::istringstream is(comment);
    for (std::string line; std::getline(is, line);) os << "# " << line << "\n";
  }
  // 32 bytes per line keeps diffs readable.
  for (size_t i = 0; i < bytes.size(); i += 32) {
    os << to_hex(bytes.subspan(i, std::min<size_t>(32, bytes.size() - i)))
       << "\n";
  }
  return os.str();
}

Result<Bytes> decode_hex_file(const std::string& text) {
  std::string hex;
  std::istringstream is(text);
  for (std::string line; std::getline(is, line);) {
    auto cut = line.find('#');
    if (cut != std::string::npos) line.resize(cut);
    for (char c : line) {
      if (c == ' ' || c == '\t' || c == '\r') continue;
      hex.push_back(c);
    }
  }
  if (hex.size() % 2 != 0) {
    return Status{Errc::kInvalidArgument, "odd hex digit count"};
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  auto nib = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = nib(hex[i]);
    int lo = nib(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status{Errc::kInvalidArgument, "bad hex digit in corpus file"};
    }
    out.push_back(static_cast<u8>((hi << 4) | lo));
  }
  return out;
}

Result<std::vector<CorpusEntry>> load_corpus(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status{Errc::kNotFound, "corpus dir missing: " + dir};
  }
  std::vector<CorpusEntry> entries;
  for (const auto& sub : fs::directory_iterator(dir, ec)) {
    if (!sub.is_directory()) continue;
    std::string surface = sub.path().filename().string();
    for (const auto& f : fs::directory_iterator(sub.path(), ec)) {
      if (!f.is_regular_file()) continue;
      std::string ext = f.path().extension().string();
      if (ext != ".hex" && ext != ".ksrc") continue;
      std::ifstream in(f.path(), std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      CorpusEntry e;
      e.surface = surface;
      e.file = f.path().filename().string();
      if (ext == ".ksrc") {
        e.input = to_bytes(buf.str());
      } else {
        auto bytes = decode_hex_file(buf.str());
        if (!bytes.is_ok()) {
          return Status{bytes.status().code(),
                        e.file + ": " + bytes.status().message()};
        }
        e.input = std::move(*bytes);
      }
      entries.push_back(std::move(e));
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const CorpusEntry& a, const CorpusEntry& b) {
              return std::tie(a.surface, a.file) < std::tie(b.surface, b.file);
            });
  return entries;
}

// ---- Canonical seed cases ----------------------------------------------------

namespace {

using patchtool::FunctionPatch;
using patchtool::PatchOp;
using patchtool::PatchSet;
using patchtool::VarEdit;

PatchSet base_set() {
  PatchSet s;
  s.id = "SEED";
  s.kernel_version = "sim-4.4";
  FunctionPatch p;
  p.sequence = 0;
  p.name = "fn";
  p.taddr = 0x100040;              // inside the fuzz layout's text segment
  p.paddr = 0x171400;              // inside mem_X (base 0x171000)
  p.ftrace_off = 5;
  p.code = Bytes{0x48, 0x31, 0xC0, 0xC3};  // xor rax,rax; ret
  s.patches.push_back(std::move(p));
  return s;
}

}  // namespace

std::vector<std::pair<std::string, Bytes>> seed_package_cases() {
  std::vector<std::pair<std::string, Bytes>> out;

  out.emplace_back("valid-minimal", patchtool::serialize_patchset_raw(base_set()));

  {
    PatchSet s = base_set();
    s.patches[0].var_edits.push_back(
        {.addr = 0x140010, .value = 42, .kind = VarEdit::Kind::kSet});
    out.emplace_back("valid-with-var-edit",
                     patchtool::serialize_patchset_raw(s));
  }
  {
    // PR 3 regression: taddr near 2^64 so taddr + ftrace_off + 5 wraps past
    // the pre-fix upper-bound check.
    PatchSet s = base_set();
    s.patches[0].taddr = ~0ULL - 4;
    s.patches[0].ftrace_off = 10;
    out.emplace_back("wrapping-taddr", patchtool::serialize_patchset_raw(s));
  }
  {
    // PR 3 regression: paddr + code.size() wraps past the mem_X bound.
    PatchSet s = base_set();
    s.patches[0].paddr = ~0ULL - 2;
    out.emplace_back("wrapping-paddr", patchtool::serialize_patchset_raw(s));
  }
  {
    // Mixed patch/rollback ops in one package must be refused atomically.
    PatchSet s = base_set();
    FunctionPatch rb = s.patches[0];
    rb.sequence = 1;
    rb.op = PatchOp::kRollback;
    rb.paddr = 0x171800;
    s.patches.push_back(std::move(rb));
    out.emplace_back("mixed-op", patchtool::serialize_patchset_raw(s));
  }
  {
    PatchSet s = base_set();
    s.patches[0].op = PatchOp::kRollback;
    out.emplace_back("rollback-on-fresh", patchtool::serialize_patchset_raw(s));
  }
  {
    Bytes w = patchtool::serialize_patchset_raw(base_set());
    w.resize(w.size() - 3);
    out.emplace_back("truncated", std::move(w));
  }
  {
    Bytes w = patchtool::serialize_patchset_raw(base_set());
    w[12] ^= 0xFF;  // first digest byte
    out.emplace_back("bad-digest", std::move(w));
  }
  {
    // Batched session: two packages in one envelope under one SMI; both
    // apply as separate rollback units, peeled by two kRollback commands.
    PatchSet second = base_set();
    second.id = "SEED2";
    second.patches[0].taddr = 0x100080;
    second.patches[0].paddr = 0x171800;
    out.emplace_back("batch-valid-pair",
                     patchtool::serialize_batch(
                         {patchtool::serialize_patchset_raw(base_set()),
                          patchtool::serialize_patchset_raw(second)}));
  }
  {
    // Mid-batch digest failure: the envelope parses but the second inner
    // package fails verification — nothing may apply.
    Bytes bad = patchtool::serialize_patchset_raw(base_set());
    bad[12] ^= 0xFF;
    out.emplace_back("batch-bad-inner-digest",
                     patchtool::serialize_batch(
                         {patchtool::serialize_patchset_raw(base_set()),
                          std::move(bad)}));
  }
  {
    // A batch is an apply-only construct: an inner rollback package must
    // reject the whole batch.
    PatchSet rb = base_set();
    rb.patches[0].op = PatchOp::kRollback;
    out.emplace_back("batch-rollback-inner",
                     patchtool::serialize_batch(
                         {patchtool::serialize_patchset_raw(base_set()),
                          patchtool::serialize_patchset_raw(rb)}));
  }
  return out;
}

std::vector<std::pair<std::string, Bytes>> seed_netsim_cases() {
  std::vector<std::pair<std::string, Bytes>> out;
  auto tag0 = [](Bytes frame) {
    Bytes b{0};
    b.insert(b.end(), frame.begin(), frame.end());
    return b;
  };
  // Bad op byte: first frame byte is neither kFetchPatch nor kFetchRollback.
  out.emplace_back("bad-op", tag0(Bytes{9, 0, 0}));
  // Empty and truncated frames.
  out.emplace_back("empty-frame", Bytes{0});
  out.emplace_back("truncated-frame", tag0(Bytes{1, 0, 4, 'C', 'V'}));
  // This PR's regression: a structurally complete request followed by junk
  // must be rejected (exhaustion check in PatchRequest::deserialize).
  {
    Bytes frame{1, 0, 0};              // op=kFetchPatch, empty id
    frame.push_back(51);               // os_len u32 = 51 (le)
    frame.push_back(0);
    frame.push_back(0);
    frame.push_back(0);
    // Minimal OsInfo: empty version(2) + bases(16) + ftrace(1) + digest(32).
    frame.insert(frame.end(), 51, 0);
    frame.insert(frame.end(), 2 + 32 + 64 + 32 + 32, 0);  // attestation+pub
    frame.insert(frame.end(), 7, 0xEE);                   // trailing garbage
    out.emplace_back("trailing-garbage", tag0(std::move(frame)));
  }
  // Flip scripts: zero flips (must still verify) and one real flip.
  out.emplace_back("flip-none", Bytes{1, 0});
  out.emplace_back("flip-one", Bytes{1, 1, 0x10, 0, 0, 0, 0xFF});
  // Cancelling flips: same offset, same xor — net unchanged, must verify.
  out.emplace_back("flip-cancel",
                   Bytes{1, 2, 0x10, 0, 0, 0, 0xAA, 0x10, 0, 0, 0, 0xAA});
  // Truncations: keep=8 (must fail) and keep=0xFFFFFFFF (no-op, must pass).
  out.emplace_back("truncate-response", Bytes{2, 8, 0, 0, 0});
  out.emplace_back("truncate-none", Bytes{2, 0xFF, 0xFF, 0xFF, 0xFF});
  return out;
}

std::vector<std::pair<std::string, std::string>> seed_kcc_cases() {
  std::vector<std::pair<std::string, std::string>> out;
  out.emplace_back("modulo-fold",
                   "global g0 = 7;\n"
                   "fn f0(p0) {\n"
                   "  g0 = p0 % 3;\n"
                   "  return g0 * 2;\n"
                   "}\n"
                   "fn f1(p0) {\n"
                   "  return f0(p0) + (p0 / 2);\n"
                   "}\n");
  out.emplace_back("guarded-bug",
                   "global g0 = 0;\n"
                   "fn f0(p0) {\n"
                   "  if (p0 == 0) {\n"
                   "    bug(42);\n"
                   "  }\n"
                   "  g0 = p0;\n"
                   "  return p0 - 1;\n"
                   "}\n");
  out.emplace_back("inline-loop",
                   "global g0 = 1;\n"
                   "inline fn helper(h0) {\n"
                   "  let hv = h0 * 3;\n"
                   "  return hv;\n"
                   "}\n"
                   "fn f0(p0) {\n"
                   "  let i0 = 0;\n"
                   "  while (i0 < 4) {\n"
                   "    i0 = i0 + 1;\n"
                   "    g0 = g0 + helper(i0);\n"
                   "  }\n"
                   "  return g0;\n"
                   "}\n");
  return out;
}

Status write_seed_corpus(const std::string& dir) {
  std::error_code ec;
  for (const char* sub :
       {"package", "netsim", "kcc", "attacker_schedule", "lifecycle",
        "synth"}) {
    fs::create_directories(fs::path(dir) / sub, ec);
    if (ec) {
      return Status{Errc::kInternal, "cannot create corpus dir: " + dir};
    }
  }
  auto write = [](const fs::path& p, const std::string& text) -> Status {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << text;
    if (!out) return Status{Errc::kInternal, "write failed: " + p.string()};
    return Status::ok();
  };
  for (const auto& [name, bytes] : seed_package_cases()) {
    auto st = write(fs::path(dir) / "package" / (name + ".hex"),
                    encode_hex_file(bytes, "package seed: " + name));
    if (!st.is_ok()) return st;
  }
  for (const auto& [name, bytes] : seed_netsim_cases()) {
    auto st = write(fs::path(dir) / "netsim" / (name + ".hex"),
                    encode_hex_file(bytes, "netsim seed: " + name));
    if (!st.is_ok()) return st;
  }
  for (const auto& [name, bytes] : seed_attacker_cases()) {
    auto st = write(fs::path(dir) / "attacker_schedule" / (name + ".hex"),
                    encode_hex_file(bytes, "attacker-schedule seed: " + name));
    if (!st.is_ok()) return st;
  }
  for (const auto& [name, bytes] : seed_lifecycle_cases()) {
    auto st = write(fs::path(dir) / "lifecycle" / (name + ".hex"),
                    encode_hex_file(bytes, "lifecycle seed: " + name));
    if (!st.is_ok()) return st;
  }
  for (const auto& [name, bytes] : seed_synth_cases()) {
    auto st = write(fs::path(dir) / "synth" / (name + ".hex"),
                    encode_hex_file(bytes, "cve-synth seed: " + name));
    if (!st.is_ok()) return st;
  }
  for (const auto& [name, src] : seed_kcc_cases()) {
    auto st = write(fs::path(dir) / "kcc" / (name + ".ksrc"), src);
    if (!st.is_ok()) return st;
  }
  return Status::ok();
}

}  // namespace kshot::fuzz
