// Deterministic structure-aware fuzzing harness for KShot's three untrusted
// input surfaces (DESIGN.md §9):
//
//   package  plaintext patch-package wires delivered to the SMM handler
//            through the full begin-session / seal / stage / apply SMI
//            handshake (the §V-B attack surface PR 3 fixed three bugs on)
//   netsim   enclave<->server protocol frames (PatchRequest/PatchResponse)
//            run against the real attested handshake
//   kcc      ksrc source programs differential-tested between the AST
//            evaluator and the compiled machine
//
// Every case is judged by invariant oracles, not just "no crash": a package
// either applies exactly as an independent model predicts or leaves memory
// byte-identical; rollback restores the pre-patch text; the trace's smi-span
// sum equals the machine's published SMM residency; the handler's metrics
// counters match what the harness observed; the SMM status word is always a
// known, non-swallowed value.
//
// Everything is seeded: `run_fuzz` with the same options produces
// byte-identical reports, a failing case is replayable from its hex dump,
// and the greedy shrinker minimizes failures into checked-in corpus entries
// (tests/corpus/) that every ctest run replays.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace kshot::fuzz {

struct FuzzOptions {
  u64 seed = 1;
  u32 iters = 200;
  /// Wall-clock cap in seconds; 0 disables it. The iteration bound keeps a
  /// run deterministic — with a time budget the *case count* may vary
  /// between runs, so CI smokes pin iters and leave the budget off.
  double time_budget_s = 0;
  bool shrink = true;
  /// Executed shrink candidates per failure (greedy, first-improvement).
  u32 max_shrink_steps = 400;
  /// Stop the run after this many distinct failures.
  u32 max_failures = 5;
};

/// One tripped invariant, with the (shrunk) replayable input.
struct Failure {
  std::string surface;
  u32 case_index = 0;  // which iteration generated it
  u64 case_seed = 0;   // the per-case RNG seed (mix of run seed + index)
  std::string oracle;  // which invariant tripped
  std::string detail;
  Bytes input;             // encoded case after shrinking
  size_t original_size = 0;  // encoded size before shrinking
};

struct FuzzReport {
  std::string surface;
  u64 seed = 0;
  u32 cases = 0;
  u32 accepted = 0;  // target accepted the input end to end
  u32 rejected = 0;  // target rejected it with a clean Status
  u32 skipped = 0;   // oracle could not judge (e.g. instruction-cap timeout)
  bool budget_exhausted = false;
  std::vector<Failure> failures;

  /// Deterministic rendering (no wall times, no pointers).
  [[nodiscard]] std::string to_string() const;
};

/// One untrusted input surface. A surface owns whatever fixture it needs
/// (a bare machine + SMM handler, a booted testbed, a compiler) and exposes
/// three deterministic operations over an opaque encoded case:
/// generation, execution-with-oracles, and shrink-candidate enumeration.
/// execute() must be a pure function of the encoded bytes so the shrinker
/// and corpus replay reproduce verdicts exactly.
class Surface {
 public:
  virtual ~Surface() = default;
  [[nodiscard]] virtual const char* name() const = 0;

  /// Builds one encoded case (structure-aware generation + mutation).
  virtual Bytes generate(Rng& rng) = 0;

  struct Verdict {
    enum class Kind : u8 { kRejected = 0, kAccepted = 1, kSkipped = 2 };
    Kind kind = Kind::kRejected;
    /// Set when an invariant tripped: (oracle name, detail).
    std::optional<std::pair<std::string, std::string>> failure;
    /// Hex digest over the case's observable outcome (final target memory,
    /// per-step statuses, trace span content) where the surface computes
    /// one; empty otherwise. Copy-vs-span accounting (smm.staged_copies) is
    /// deliberately excluded: the zero-copy differential test asserts this
    /// digest is byte-identical across parser modes.
    std::string state_digest;
  };
  virtual Verdict execute(ByteSpan encoded) = 0;

  /// Strictly smaller candidates for the shrinker — structure-aware where
  /// the encoding still decodes, raw byte removals otherwise.
  virtual std::vector<Bytes> shrink_candidates(ByteSpan encoded, Rng& rng);

  /// Human-readable replay info for a (shrunk) case: sizes + hex dump.
  [[nodiscard]] virtual std::string describe(ByteSpan encoded) const;
};

struct PackageSurfaceOptions {
  /// Self-test seam: runs the SMM target with the pre-overflow-fix bounds
  /// check (SmmPatchHandler::enable_legacy_wrapping_bounds_for_selftest) so
  /// the harness can prove it detects that bug class. Test-only.
  bool legacy_wrapping_bounds = false;
  /// Differential seam: runs the SMM target through the legacy copying
  /// parser instead of the zero-copy span parser. Verdicts (including
  /// state_digest) must be identical either way. Test-only.
  bool legacy_copy_parser = false;
};

std::unique_ptr<Surface> make_package_surface(PackageSurfaceOptions o = {});
/// Boots one testbed (CVE-2014-0196, `boot_seed`) and fuzzes the protocol
/// decoders plus the live attested fetch handshake against it.
std::unique_ptr<Surface> make_netsim_surface(u64 boot_seed = 0x5EED);
std::unique_ptr<Surface> make_kcc_surface();

struct AttackerSurfaceOptions {
  /// Self-test seam: runs the SMM target with the pre-hardening double
  /// fetch (SmmPatchHandler::enable_legacy_double_fetch_for_selftest) so
  /// the harness can prove its prevented-or-detected oracle catches that
  /// TOCTOU class. Test-only.
  bool legacy_double_fetch = false;
  /// Differential seam: legacy copying parser instead of zero-copy spans.
  /// Test-only; never changes verdicts.
  bool legacy_copy_parser = false;
  /// Simulated CPUs on the fuzzed target (>= 1).
  u32 cpus = 1;
};

/// Fuzzes async-adversary schedule wires (attacks/async_adversary.hpp)
/// against a full live_patch run. Oracle: every schedule is prevented
/// (memory byte-identical to the no-attack run) or detected (classified
/// DetectionReport) — never silent corruption or silent failure.
std::unique_ptr<Surface> make_attacker_schedule_surface(
    AttackerSurfaceOptions o = {});

struct LifecycleSurfaceOptions {
  /// Differential seam: legacy copying parser instead of zero-copy spans.
  /// Test-only; never changes verdicts.
  bool legacy_copy_parser = false;
};

/// Fuzzes patch-stack lifecycle op schedules (apply / supersede / revert /
/// rollback) against the SMM handler through real SMI sessions. Oracle: a
/// reference model of the applied stack predicts every op's status and the
/// exact kQueryApplied blob, and a final rollback drain must restore all
/// memory outside SMRAM/mailbox/mem_W/mem_X byte-identically.
std::unique_ptr<Surface> make_lifecycle_surface(LifecycleSurfaceOptions o = {});

struct SynthSurfaceOptions {
  /// Self-test seam: plants every generated case's defensive fault-site
  /// limit one too high (cve::SynthOptions::misplant_off_by_one), so the
  /// probe-contract oracle must catch the mis-planted guard. Test-only.
  bool misplant_off_by_one = false;
};

/// Fuzzes the CVE synthesizer itself: each case decodes to (bug class,
/// knobs, seed), generates a SynthCase, and runs the full cve::check_case
/// oracle stack — probe contract on the AST evaluator, evaluator-vs-machine
/// differential, and structural diff confinement. Corpus dir: "synth".
std::unique_ptr<Surface> make_cve_synth_surface(SynthSurfaceOptions o = {});

/// Factory by surface name ("package", "netsim", "kcc",
/// "attacker_schedule", "lifecycle", "cve_synth" — alias "synth", which is
/// also its corpus dir); null for unknown.
std::unique_ptr<Surface> make_surface(const std::string& name);

/// Runs `opts.iters` generated cases, shrinking any failure.
FuzzReport run_fuzz(Surface& surface, const FuzzOptions& opts);

/// Greedy minimization: repeatedly adopts any strictly smaller candidate
/// that still trips `oracle`. Deterministic for a fixed failing input.
Bytes shrink_case(Surface& surface, Bytes failing, const std::string& oracle,
                  const FuzzOptions& opts);

// ---- Regression corpus -------------------------------------------------------
//
// Layout: <dir>/<surface>/<name>.hex for wire surfaces (hex bytes, '#'
// comments, whitespace ignored) and <dir>/kcc/<name>.ksrc for source cases.
// Policy: every shrunk fuzz failure that led to a code change is checked in
// here; `kshot-sim fuzz --write-corpus` regenerates the canonical seeds.

struct CorpusEntry {
  std::string surface;
  std::string file;  // basename, for reporting
  Bytes input;       // decoded encoded-case bytes
};

/// Loads every corpus entry under `dir`, sorted by (surface, file) so
/// replay order — and therefore output — is deterministic.
Result<std::vector<CorpusEntry>> load_corpus(const std::string& dir);

/// Writes the canonical seed corpus (the PR 3 regression wires, protocol
/// edge frames, kcc seeds). Overwrites existing files of the same names.
Status write_seed_corpus(const std::string& dir);

/// Replays entries grouped by surface; one report per surface touched.
/// Failures shrink with `opts` like generated cases.
std::vector<FuzzReport> replay_corpus(const std::vector<CorpusEntry>& entries,
                                      const FuzzOptions& opts);

/// The canonical seed cases for the wire surfaces, exposed so tests can
/// assert the checked-in corpus matches the generator.
std::vector<std::pair<std::string, Bytes>> seed_package_cases();
std::vector<std::pair<std::string, Bytes>> seed_netsim_cases();
std::vector<std::pair<std::string, Bytes>> seed_attacker_cases();
std::vector<std::pair<std::string, Bytes>> seed_lifecycle_cases();
std::vector<std::pair<std::string, Bytes>> seed_synth_cases();
std::vector<std::pair<std::string, std::string>> seed_kcc_cases();

// ---- Hex helpers (corpus file format) ---------------------------------------

std::string encode_hex_file(ByteSpan bytes, const std::string& comment);
Result<Bytes> decode_hex_file(const std::string& text);

}  // namespace kshot::fuzz
