// Netsim surface: fuzzes the enclave<->server protocol decoders and the
// attested fetch handshake against a real booted deployment. Three case
// encodings, distinguished by the first byte:
//
//   tag 0  [frame...]        raw PatchRequest wire -> server.handle_request.
//                            Oracles: an undecodable frame must be refused;
//                            an accepted frame must yield a decodable
//                            PatchResponse.
//   tag 1  [n][(off,xor)*n]  flip script over a fresh, valid handshake
//                            response. A response the script actually
//                            changed must fail finish_fetch (MAC/decode); an
//                            unchanged one (n == 0 or cancelling flips) must
//                            still succeed.
//   tag 2  [keep u32]        truncation of a fresh valid response: keep >=
//                            size must succeed, any real truncation must
//                            fail.
//
// Responses are session-fresh (the enclave generates a new DH key per
// fetch), so tag 1/2 cases encode *mutation scripts* rather than response
// bytes — the verdict depends only on the script, never on session content,
// which keeps execute() deterministic and corpus entries replayable.
#include <sstream>

#include "common/byte_io.hpp"
#include "common/hex.hpp"
#include "cve/suite.hpp"
#include "fuzz/fuzz.hpp"
#include "testbed/testbed.hpp"

namespace kshot::fuzz {

namespace {

using netsim::PatchRequest;
using netsim::PatchResponse;

class NetsimSurface final : public Surface {
 public:
  explicit NetsimSurface(u64 boot_seed) {
    const auto& c = cve::find_case("CVE-2014-0196");
    auto tb = testbed::Testbed::boot(c, {.seed = boot_seed});
    if (tb.is_ok()) tb_ = std::move(*tb);
    if (!tb_) return;
    patch_id_ = c.id;
    // One canonical valid frame + response: the frame seeds tag-0 mutation
    // cases (attestation stays valid — it is not session-bound on replay of
    // the same bytes); the response size bounds tag-2 keep values.
    auto req = tb_->kshot().enclave().begin_fetch(
        patch_id_, PatchRequest::Op::kFetchPatch);
    if (req.is_ok()) {
      canonical_frame_ = std::move(*req);
      auto resp = tb_->server().handle_request(canonical_frame_);
      if (resp.is_ok()) canonical_resp_size_ = resp->size();
    }
  }

  const char* name() const override { return "netsim"; }

  Bytes generate(Rng& rng) override;
  Verdict execute(ByteSpan encoded) override;
  std::vector<Bytes> shrink_candidates(ByteSpan encoded, Rng& rng) override;
  std::string describe(ByteSpan encoded) const override;

 private:
  Verdict run_request_case(ByteSpan frame);
  Verdict run_response_case(ByteSpan script, bool truncation);
  /// One fresh valid handshake up to (not including) finish_fetch.
  Result<Bytes> fresh_response();

  std::unique_ptr<testbed::Testbed> tb_;
  std::string patch_id_;
  Bytes canonical_frame_;
  size_t canonical_resp_size_ = 0;
};

// ---- Generation --------------------------------------------------------------

Bytes NetsimSurface::generate(Rng& rng) {
  ByteWriter w;
  u64 pick = rng.next_below(10);
  if (pick < 4) {
    // tag 0: request frames — mutated canonical, hand-built, or raw noise.
    w.put_u8(0);
    u64 kind = rng.next_below(4);
    if (kind == 0 && !canonical_frame_.empty()) {
      Bytes f = canonical_frame_;
      size_t nmut = 1 + rng.next_below(3);
      for (size_t i = 0; i < nmut && !f.empty(); ++i) {
        switch (rng.next_below(3)) {
          case 0:
            f[rng.next_below(f.size())] ^=
                static_cast<u8>(1 + rng.next_below(255));
            break;
          case 1:
            f.resize(rng.next_below(f.size() + 1));
            break;
          default: {
            Bytes tail = rng.next_bytes(1 + rng.next_below(32));
            f.insert(f.end(), tail.begin(), tail.end());
            break;
          }
        }
      }
      w.put_bytes(f);
    } else if (kind == 1 && !canonical_frame_.empty()) {
      w.put_bytes(canonical_frame_);  // the valid frame itself must keep working
    } else if (kind == 2) {
      // Hand-built structurally valid frame with garbage attestation.
      PatchRequest req;
      req.op = rng.next_below(2) ? PatchRequest::Op::kFetchPatch
                                 : PatchRequest::Op::kFetchRollback;
      req.patch_id = rng.next_below(2) ? patch_id_ : "CVE-0000-0000";
      req.os.version = "sim-4.4";
      req.os.text_base = rng.next();
      req.os.data_base = rng.next();
      rng.fill(MutByteSpan(req.os.measurement.data(),
                           req.os.measurement.size()));
      rng.fill(MutByteSpan(req.attestation.mac.data(),
                           req.attestation.mac.size()));
      rng.fill(MutByteSpan(req.client_pub.data(), req.client_pub.size()));
      w.put_bytes(req.serialize());
    } else {
      w.put_bytes(rng.next_bytes(rng.next_below(200)));
    }
  } else if (pick < 8) {
    // tag 1: flip script over a fresh response.
    w.put_u8(1);
    u8 nflips = static_cast<u8>(rng.next_below(5));
    w.put_u8(nflips);
    for (u8 i = 0; i < nflips; ++i) {
      w.put_u32(static_cast<u32>(rng.next()));
      w.put_u8(rng.next_byte());  // xor 0 is a legal no-op flip
    }
  } else {
    // tag 2: truncation.
    w.put_u8(2);
    w.put_u32(static_cast<u32>(
        rng.next_below(static_cast<u64>(canonical_resp_size_) + 64)));
  }
  return w.take();
}

// ---- Execution + oracles -----------------------------------------------------

Result<Bytes> NetsimSurface::fresh_response() {
  auto req = tb_->kshot().enclave().begin_fetch(
      patch_id_, PatchRequest::Op::kFetchPatch);
  if (!req.is_ok()) return req.status();
  return tb_->server().handle_request(*req);
}

Surface::Verdict NetsimSurface::run_request_case(ByteSpan frame) {
  Verdict v;
  bool decodes = PatchRequest::deserialize(frame).is_ok();
  auto resp = tb_->server().handle_request(frame);
  if (!decodes && resp.is_ok()) {
    v.failure = {"decode-reject",
                 "server accepted a frame PatchRequest::deserialize refuses"};
    return v;
  }
  if (resp.is_ok() && !PatchResponse::deserialize(*resp).is_ok()) {
    v.failure = {"response-undecodable",
                 "accepted request produced an undecodable PatchResponse"};
    return v;
  }
  v.kind = resp.is_ok() ? Verdict::Kind::kAccepted : Verdict::Kind::kRejected;
  return v;
}

Surface::Verdict NetsimSurface::run_response_case(ByteSpan script,
                                                  bool truncation) {
  Verdict v;
  auto resp = fresh_response();
  if (!resp.is_ok()) {
    v.failure = {"handshake-broken",
                 "valid fetch handshake failed: " + resp.status().to_string()};
    return v;
  }
  Bytes mutated = *resp;
  ByteReader r(script);
  if (truncation) {
    auto keep = r.get_u32();
    if (!keep) {
      v.kind = Verdict::Kind::kSkipped;  // malformed script, not a finding
      return v;
    }
    if (*keep < mutated.size()) mutated.resize(*keep);
  } else {
    auto n = r.get_u8();
    if (!n) {
      v.kind = Verdict::Kind::kSkipped;
      return v;
    }
    for (u8 i = 0; i < *n; ++i) {
      auto off = r.get_u32();
      auto x = r.get_u8();
      if (!off || !x) {
        v.kind = Verdict::Kind::kSkipped;
        return v;
      }
      if (!mutated.empty()) mutated[*off % mutated.size()] ^= *x;
    }
  }
  // Two flips at one offset (or xor 0) cancel: judge by effect, not intent.
  bool changed = mutated != *resp;
  auto stats = tb_->kshot().enclave().finish_fetch(mutated);
  if (changed && stats.is_ok()) {
    v.failure = {"tampered-response-accepted",
                 "finish_fetch accepted a modified response"};
    return v;
  }
  if (!changed && !stats.is_ok()) {
    v.failure = {"valid-response-rejected",
                 "finish_fetch rejected an unmodified response: " +
                     stats.status().to_string()};
    return v;
  }
  v.kind = stats.is_ok() ? Verdict::Kind::kAccepted : Verdict::Kind::kRejected;
  return v;
}

Surface::Verdict NetsimSurface::execute(ByteSpan encoded) {
  Verdict v;
  if (!tb_) {
    v.failure = {"rig", "testbed failed to boot"};
    return v;
  }
  if (encoded.empty()) {
    v.kind = Verdict::Kind::kSkipped;
    return v;
  }
  ByteSpan body = encoded.subspan(1);
  switch (encoded[0]) {
    case 0:
      return run_request_case(body);
    case 1:
      return run_response_case(body, /*truncation=*/false);
    case 2:
      return run_response_case(body, /*truncation=*/true);
    default:
      v.kind = Verdict::Kind::kSkipped;  // unknown tag
      return v;
  }
}

// ---- Shrinking ---------------------------------------------------------------

std::vector<Bytes> NetsimSurface::shrink_candidates(ByteSpan encoded,
                                                    Rng& rng) {
  std::vector<Bytes> out;
  if (encoded.size() <= 1) return out;
  u8 tag = encoded[0];
  ByteSpan body = encoded.subspan(1);
  if (tag == 1 && body.size() >= 1) {
    // Drop one flip record at a time.
    u8 n = body[0];
    for (u8 i = 0; i < n && 1 + static_cast<size_t>(n) * 5 <= body.size();
         ++i) {
      Bytes c;
      c.push_back(tag);
      c.push_back(static_cast<u8>(n - 1));
      for (u8 k = 0; k < n; ++k) {
        if (k == i) continue;
        size_t off = 1 + static_cast<size_t>(k) * 5;
        c.insert(c.end(), body.begin() + static_cast<std::ptrdiff_t>(off),
                 body.begin() + static_cast<std::ptrdiff_t>(off + 5));
      }
      out.push_back(std::move(c));
    }
    return out;
  }
  // Raw shrink of the body, tag preserved.
  for (auto& b : Surface::shrink_candidates(body, rng)) {
    Bytes c;
    c.push_back(tag);
    c.insert(c.end(), b.begin(), b.end());
    out.push_back(std::move(c));
  }
  return out;
}

std::string NetsimSurface::describe(ByteSpan encoded) const {
  std::ostringstream os;
  const char* kind = "empty";
  if (!encoded.empty()) {
    kind = encoded[0] == 0   ? "request-frame"
           : encoded[0] == 1 ? "response-flip-script"
           : encoded[0] == 2 ? "response-truncation"
                             : "unknown-tag";
  }
  os << "netsim case (" << kind << "): " << encoded.size()
     << " bytes\n  hex: " << to_hex(encoded);
  return os.str();
}

}  // namespace

std::unique_ptr<Surface> make_netsim_surface(u64 boot_seed) {
  return std::make_unique<NetsimSurface>(boot_seed);
}

}  // namespace kshot::fuzz
