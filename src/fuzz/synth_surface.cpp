// CVE-synthesizer surface: fuzzes the auto-CVE generator itself. A case is
// a tiny knob wire — (bug class, shape flags, filler, helpers, seed, limit)
// — decoded into cve::SynthKnobs; the target is cve::make_case and the
// oracle is the full cve::check_case stack:
//
//   probe contract    exploit traps pre-patch with the planted code,
//                     returns -EINVAL post-patch, benign agrees pre/post;
//   differential      the AST evaluator and the compiled machine agree on
//                     oops/trap/value/globals under two optimizer configs;
//   diff confinement  pre/post sources differ only at the planted site.
//
// Any knob combination must synthesize a case passing all three or be
// rejected cleanly by make_case — a generated-but-wrong case is a failure.
// The misplant_off_by_one self-test seam plants the defensive fault-site
// limit one too high, and the probe-contract oracle must catch it.
//
// Wire (1..16 bytes, zero-padded to 16):
//   [0]      bug class (mod 3)
//   [1]      shape flags: bit0 inline_flaw, bit1 guard_in_helper,
//            bit2 add_global_fix, bit3 size_neutral_fix
//   [2]      filler_lines   [3] helpers
//   [4..11]  case seed (u64 LE)
//   [12..15] guard limit (u32 LE)
#include <algorithm>
#include <cstdio>
#include <sstream>

#include "cve/synth.hpp"
#include "fuzz/fuzz.hpp"

namespace kshot::fuzz {

namespace {

constexpr size_t kWireLen = 16;

struct DecodedCase {
  cve::SynthKnobs knobs;
  u64 seed = 0;
};

DecodedCase decode(ByteSpan encoded) {
  u8 w[kWireLen] = {};
  for (size_t i = 0; i < encoded.size() && i < kWireLen; ++i) {
    w[i] = encoded[i];
  }
  DecodedCase d;
  d.knobs.bug_class = static_cast<cve::BugClass>(w[0] % 3);
  d.knobs.inline_flaw = (w[1] & 1) != 0;
  d.knobs.guard_in_helper = (w[1] & 2) != 0;
  d.knobs.add_global_fix = (w[1] & 4) != 0;
  d.knobs.size_neutral_fix = (w[1] & 8) != 0;
  d.knobs.filler_lines = w[2];
  d.knobs.helpers = w[3];
  for (int i = 7; i >= 0; --i) d.seed = (d.seed << 8) | w[4 + i];
  u64 limit = 0;
  for (int i = 3; i >= 0; --i) limit = (limit << 8) | w[12 + i];
  d.knobs.limit = limit;
  // normalize_knobs (inside make_case) clamps ranges and reconciles the
  // flag interactions, so every wire decodes to a generatable shape.
  return d;
}

class SynthSurface final : public Surface {
 public:
  explicit SynthSurface(SynthSurfaceOptions o) : opts_(o) {}

  const char* name() const override { return "cve_synth"; }

  Bytes generate(Rng& rng) override {
    Bytes w(kWireLen, 0);
    w[0] = rng.next_byte();
    w[1] = rng.next_byte();
    w[2] = static_cast<u8>(rng.next_below(10));
    w[3] = static_cast<u8>(rng.next_below(5));
    u64 seed = rng.next();
    for (int i = 0; i < 8; ++i) w[4 + i] = static_cast<u8>(seed >> (8 * i));
    // Bias toward in-range limits; out-of-range ones exercise the clamp.
    u64 limit = rng.next_below(4) == 0 ? rng.next() : (8ull << rng.next_below(11));
    for (int i = 0; i < 4; ++i) w[12 + i] = static_cast<u8>(limit >> (8 * i));
    // Occasionally truncate: short wires decode zero-padded.
    if (rng.next_below(8) == 0) {
      w.resize(1 + rng.next_below(kWireLen));
    }
    return w;
  }

  Verdict execute(ByteSpan encoded) override {
    Verdict v;
    if (encoded.empty()) {
      v.kind = Verdict::Kind::kRejected;
      return v;
    }
    DecodedCase d = decode(encoded);
    cve::SynthOptions so;
    so.misplant_off_by_one = opts_.misplant_off_by_one;
    auto sc = cve::make_case(d.knobs, d.seed, so);
    if (!sc) {
      // A clean generator-side rejection is fine; it must be a Status, not
      // a malformed case.
      v.kind = Verdict::Kind::kRejected;
      return v;
    }
    Status st = cve::check_case(*sc);
    if (!st.is_ok()) {
      v.kind = Verdict::Kind::kAccepted;
      v.failure = {oracle_for(st.message()),
                   sc->cve.id + ": " + st.message()};
      return v;
    }
    v.kind = Verdict::Kind::kAccepted;
    return v;
  }

  std::string describe(ByteSpan encoded) const override {
    DecodedCase d = decode(encoded);
    cve::SynthKnobs k = d.knobs;
    cve::normalize_knobs(k);
    std::ostringstream os;
    os << Surface::describe(encoded);
    char seedbuf[32];
    std::snprintf(seedbuf, sizeof(seedbuf), "0x%llx",
                  static_cast<unsigned long long>(d.seed));
    os << "decoded: class=" << cve::bug_class_tag(k.bug_class)
       << " seed=" << seedbuf << " inline=" << k.inline_flaw
       << " guard_in_helper=" << k.guard_in_helper
       << " global_add=" << k.add_global_fix
       << " size_neutral=" << k.size_neutral_fix
       << " filler=" << k.filler_lines << " helpers=" << k.helpers
       << " limit=" << k.limit << "\n";
    return os.str();
  }

 private:
  static std::string oracle_for(const std::string& msg) {
    if (msg.rfind("probe contract", 0) == 0) return "probe-contract";
    if (msg.find("differential") != std::string::npos) return "differential";
    if (msg.rfind("diff confinement", 0) == 0) return "diff-confinement";
    return "synth-oracle";
  }

  SynthSurfaceOptions opts_;
};

}  // namespace

std::unique_ptr<Surface> make_cve_synth_surface(SynthSurfaceOptions o) {
  return std::make_unique<SynthSurface>(o);
}

std::vector<std::pair<std::string, Bytes>> seed_synth_cases() {
  // One canonical wire per bug class × a distinctive shape, plus the edge
  // shapes regressions came from: a zero-padded short wire and a
  // size-neutral case (the splice-eligible derivation).
  auto wire = [](u8 cls, u8 flags, u8 filler, u8 helpers, u64 seed,
                 u32 limit) {
    Bytes w(kWireLen, 0);
    w[0] = cls;
    w[1] = flags;
    w[2] = filler;
    w[3] = helpers;
    for (int i = 0; i < 8; ++i) w[4 + i] = static_cast<u8>(seed >> (8 * i));
    for (int i = 0; i < 4; ++i) w[12 + i] = static_cast<u8>(limit >> (8 * i));
    return w;
  };
  std::vector<std::pair<std::string, Bytes>> out;
  // OOB, guard in helper, fix grows (trampoline path).
  out.emplace_back("oob_grown", wire(0, 0x2, 2, 1, 0x0A0B0C0D, 512));
  // CHK, inline flaw (Type 2, callers implicated).
  out.emplace_back("chk_inline", wire(1, 0x3, 1, 2, 0x11223344, 256));
  // DSP, entry guard + audit global (Type 3).
  out.emplace_back("dsp_global_entry", wire(2, 0x4, 3, 1, 0x55667788, 1024));
  // OOB, size-neutral fix: pad-equalized, exercises the splice path.
  out.emplace_back("oob_size_neutral", wire(0, 0xA, 0, 1, 0x99AABBCC, 128));
  // Short wire: everything past byte 5 decodes as zero (clamps kick in).
  Bytes shorty = wire(1, 0x2, 4, 3, 0x42, 64);
  shorty.resize(5);
  out.emplace_back("chk_short_wire", shorty);
  return out;
}

}  // namespace kshot::fuzz
