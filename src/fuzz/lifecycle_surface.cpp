// Lifecycle surface: fuzzes the patch-stack state machine that PR 8 added
// to the SMM handler — supersede retirement, dependency-fenced out-of-order
// revert, LIFO rollback, and the kQueryApplied introspection blob. Where
// the package surface throws hostile *wires* at one apply, this surface
// throws hostile *op sequences* at the applied-set bookkeeping: every case
// is a schedule of apply/supersede/revert/rollback ops driven through real
// SMI sessions against a fresh rig.
//
// The oracle keeps an independent reference model of the applied stack
// (units, provides/depends hashes, per-function write windows, mem_X
// occupancy) and checks three things after every op: the SMM status matches
// the model's prediction, the kQueryApplied blob is byte-identical to the
// blob the model would emit, and — after draining the stack with rollbacks
// at the end — all memory outside SMRAM/mailbox/mem_W/mem_X is
// byte-identical to the pre-run snapshot (reverted bodies legitimately stay
// behind in mem_X; nothing points at them).
#include <cstring>
#include <sstream>

#include "common/byte_io.hpp"
#include "common/hex.hpp"
#include "core/smm_handler.hpp"
#include "crypto/aead.hpp"
#include "crypto/sha256.hpp"
#include "crypto/simple_hash.hpp"
#include "fuzz/fuzz.hpp"
#include "machine/machine.hpp"
#include "patchtool/package.hpp"

namespace kshot::fuzz {

namespace {

using core::SmmCommand;
using core::SmmStatus;
using patchtool::FunctionPatch;
using patchtool::PatchSet;
using patchtool::PatchType;

constexpr u64 kRigSeed = 0x7E58;
constexpr u64 kAttackerSeed = 0xBAD5EED;

/// Op vocabulary: a case is a flat sequence of (op, arg) byte pairs. An
/// odd-length or oversize wire is structurally invalid and rejected without
/// booting a rig, so execute() stays cheap on garbage.
enum class Op : u8 {
  kApplyBase = 0,  // apply "U<k>"        k = arg % 4
  kApplySup = 1,   // apply "S<k>" superseding "U<k>"; arg & 4 → splice form
  kApplyDep = 2,   // apply "D<k>" depending on "U<k>"
  kRevert = 3,     // kRevertPatch targeting ids[arg % 12]
  kRollback = 4,   // kRollback (LIFO pop)
};
constexpr size_t kMaxOps = 32;

/// Same compact 2 MB layout as the package surface: cheap full-memory
/// snapshots keep the final byte-exact oracle affordable per case.
kernel::MemoryLayout fuzz_layout() {
  kernel::MemoryLayout lay;
  lay.mem_bytes = 0x20'0000;
  lay.smram_base = 0xA0000;
  lay.smram_size = 0x20000;
  lay.text_base = 0x10'0000;
  lay.text_max = 0x2'0000;
  lay.data_base = 0x14'0000;
  lay.data_max = 0x8000;
  lay.stacks_base = 0x14'8000;
  lay.stack_size = 0x1000;
  lay.max_threads = 4;
  lay.module_base = 0x15'0000;
  lay.module_size = 0x8000;
  lay.reserved_base = 0x16'0000;
  lay.mem_rw_size = 0x1000;
  lay.mem_w_size = 0x1'0000;
  lay.mem_x_size = 0x2'0000;
  lay.epc_base = 0x1A'0000;
  lay.epc_size = 0x1'0000;
  return lay;
}

/// Fixed, collision-free geometry per family: U/S/D slots never alias each
/// other, so the only window overlaps a schedule can produce are the
/// *semantic* ones (re-applying a live id, splicing over a live
/// trampoline) — exactly the cases the stack manager must referee.
u64 base_taddr(const kernel::MemoryLayout& lay, u8 k) {
  return lay.text_base + 0x400 * (u64{k} + 1);
}
u64 dep_taddr(const kernel::MemoryLayout& lay, u8 k) {
  return lay.text_base + 0x1'0000 + 0x400 * u64{k};
}

/// The revert op's 12-entry target table: every id any schedule can mint.
std::string revert_target_id(u8 arg) {
  static const char* kFam[3] = {"U", "S", "D"};
  u8 i = arg % 12;
  return std::string(kFam[i / 4]) + std::to_string(i % 4);
}

/// Deterministic body bytes so mem_X contents are nontrivial and the final
/// memory compare can catch a body written to the wrong slot.
Bytes body_bytes(char fam, u8 k, size_t n) {
  Bytes b(n);
  for (size_t i = 0; i < n; ++i) {
    b[i] = static_cast<u8>((static_cast<size_t>(fam) * 131 + k * 17 + i * 7) &
                           0xFF);
  }
  return b;
}

/// Builds the patch set an apply-family op stands for. All geometry is
/// valid by construction; the handler's verdict depends only on lifecycle
/// state (dependencies, supersede resolution, window overlaps).
PatchSet op_patchset(const kernel::MemoryLayout& lay, Op op, u8 arg) {
  u8 k = arg % 4;
  PatchSet set;
  set.kernel_version = "sim-4.4";
  FunctionPatch p;
  p.sequence = 0;
  p.type = PatchType::kType1;
  switch (op) {
    case Op::kApplyBase:
      set.id = "U" + std::to_string(k);
      p.name = "ufn" + std::to_string(k);
      p.taddr = base_taddr(lay, k);
      p.paddr = lay.mem_x_base() + 0x400 * u64{k};
      p.code = body_bytes('U', k, 32 + 8 * size_t{k});
      break;
    case Op::kApplySup:
      set.id = "S" + std::to_string(k);
      set.supersedes.push_back("U" + std::to_string(k));
      p.name = "sfn" + std::to_string(k);
      if (arg & 4) {
        // Splice form: the cumulative body lands in place over U<k>'s entry
        // (legal only because the supersede retires U<k>'s trampoline — or
        // because nothing is installed there at all).
        p.splice = true;
        p.taddr = base_taddr(lay, k);
        p.old_size = 48;
        p.code = body_bytes('S', k, 40);
      } else {
        p.taddr = base_taddr(lay, k);
        p.paddr = lay.mem_x_base() + 0x8000 + 0x400 * u64{k};
        p.code = body_bytes('S', k, 48);
      }
      break;
    case Op::kApplyDep:
      set.id = "D" + std::to_string(k);
      set.depends.push_back("U" + std::to_string(k));
      p.name = "dfn" + std::to_string(k);
      p.taddr = dep_taddr(lay, k);
      p.paddr = lay.mem_x_base() + 0x1'0000 + 0x400 * u64{k};
      p.code = body_bytes('D', k, 24);
      break;
    default:
      break;
  }
  set.patches.push_back(std::move(p));
  return set;
}

// ---- Reference model ---------------------------------------------------------

struct ModelFunc {
  u64 taddr = 0;
  u64 paddr = 0;
  u32 code_size = 0;
  u16 ftrace_off = 0;
  bool spliced = false;
};

struct ModelUnit {
  std::string id;
  std::string kernel_version;
  u64 id_hash = 0;
  u64 seq = 0;
  std::vector<u64> provides;
  std::vector<u64> depends;
  std::vector<ModelFunc> funcs;  // in apply order within the unit
};

struct RefWindow {
  u64 addr = 0;
  u64 len = 0;
};

bool overlaps(const RefWindow& a, const RefWindow& b) {
  return a.addr < b.addr + b.len && b.addr < a.addr + a.len;
}

void func_windows(const ModelFunc& f, std::vector<RefWindow>& out) {
  if (f.spliced) {
    if (f.code_size != 0) out.push_back({f.taddr, f.code_size});
    return;
  }
  if (f.code_size != 0) out.push_back({f.paddr, f.code_size});
  if (f.taddr != 0) out.push_back({f.taddr + f.ftrace_off, 5});
}

/// Mirror of apply_parsed's lifecycle contract: supersede resolution by
/// exact id, dependency fence over the union of applied provides, window
/// validation against the non-retired installed set, then commit (erase
/// retired, inherit provides, append the new unit with the next seq).
class StackModel {
 public:
  SmmStatus apply(const PatchSet& set) {
    std::vector<size_t> superseded;
    for (const auto& sid : set.supersedes) {
      for (size_t u = 0; u < units_.size(); ++u) {
        if (units_[u].id == sid) {
          superseded.push_back(u);
          break;
        }
      }
    }
    std::sort(superseded.begin(), superseded.end());
    superseded.erase(std::unique(superseded.begin(), superseded.end()),
                     superseded.end());
    for (const auto& dep : set.depends) {
      u64 h = crypto::sdbm(to_bytes(dep));
      bool found = false;
      for (const auto& u : units_) {
        for (u64 pv : u.provides) {
          if (pv == h) found = true;
        }
      }
      if (!found) return SmmStatus::kMissingDependency;
    }
    std::vector<RefWindow> mine;
    std::vector<ModelFunc> funcs;
    for (const auto& p : set.patches) {
      ModelFunc f;
      f.taddr = p.taddr;
      f.paddr = p.paddr;
      f.code_size = static_cast<u32>(p.code.size());
      f.ftrace_off = p.ftrace_off;
      f.spliced = p.splice;
      func_windows(f, mine);
      funcs.push_back(f);
    }
    std::vector<RefWindow> live;
    for (size_t u = 0; u < units_.size(); ++u) {
      if (std::find(superseded.begin(), superseded.end(), u) !=
          superseded.end()) {
        continue;
      }
      for (const auto& f : units_[u].funcs) func_windows(f, live);
    }
    for (size_t i = 0; i < mine.size(); ++i) {
      for (size_t j = i + 1; j < mine.size(); ++j) {
        if (overlaps(mine[i], mine[j])) return SmmStatus::kBadPackage;
      }
      for (const auto& w : live) {
        if (overlaps(mine[i], w)) return SmmStatus::kBadPackage;
      }
    }
    std::vector<u64> inherited;
    for (auto it = superseded.rbegin(); it != superseded.rend(); ++it) {
      inherited.insert(inherited.end(), units_[*it].provides.begin(),
                       units_[*it].provides.end());
      units_.erase(units_.begin() + static_cast<std::ptrdiff_t>(*it));
    }
    ModelUnit unit;
    unit.id = set.id;
    unit.kernel_version = set.kernel_version;
    unit.id_hash = crypto::sdbm(to_bytes(set.id));
    unit.funcs = std::move(funcs);
    unit.provides.push_back(unit.id_hash);
    unit.provides.insert(unit.provides.end(), inherited.begin(),
                         inherited.end());
    std::sort(unit.provides.begin(), unit.provides.end());
    unit.provides.erase(
        std::unique(unit.provides.begin(), unit.provides.end()),
        unit.provides.end());
    for (const auto& dep : set.depends) {
      unit.depends.push_back(crypto::sdbm(to_bytes(dep)));
    }
    unit.seq = ++seq_counter_;
    units_.push_back(std::move(unit));
    return SmmStatus::kOk;
  }

  SmmStatus revert(u64 id_hash) {
    size_t idx = units_.size();
    for (size_t u = 0; u < units_.size(); ++u) {
      if (units_[u].id_hash == id_hash) {
        idx = u;
        break;
      }
    }
    if (idx == units_.size()) return SmmStatus::kNothingToRollback;
    for (size_t u = 0; u < units_.size(); ++u) {
      if (u == idx) continue;
      for (u64 dep : units_[u].depends) {
        for (u64 pv : units_[idx].provides) {
          if (dep == pv) return SmmStatus::kRevertBlocked;
        }
      }
    }
    units_.erase(units_.begin() + static_cast<std::ptrdiff_t>(idx));
    return SmmStatus::kOk;
  }

  SmmStatus rollback() {
    if (units_.empty()) return SmmStatus::kNothingToRollback;
    units_.pop_back();
    return SmmStatus::kOk;
  }

  /// Byte-identical rebuild of the handler's kQueryApplied blob from model
  /// state alone.
  Bytes expected_query_blob(const kernel::MemoryLayout& lay) const {
    ByteWriter w;
    w.put_u32(core::kQueryMagic);
    w.put_u32(static_cast<u32>(units_.size()));
    auto put_string8 = [&w](const std::string& s) {
      size_t n = std::min<size_t>(s.size(), 255);
      w.put_u8(static_cast<u8>(n));
      w.put_bytes(ByteSpan(reinterpret_cast<const u8*>(s.data()), n));
    };
    for (const auto& u : units_) {
      put_string8(u.id);
      put_string8(u.kernel_version);
      w.put_u64(u.seq);
      w.put_u64(u.id_hash);
      w.put_u32(static_cast<u32>(u.funcs.size()));
      u32 code_bytes = 0;
      u8 spliced = 0;
      for (const auto& f : u.funcs) {
        code_bytes += f.code_size;
        if (f.spliced) ++spliced;
      }
      w.put_u32(code_bytes);
      w.put_u8(spliced);
    }
    std::vector<RefWindow> extents;
    u64 used = 0;
    for (const auto& u : units_) {
      for (const auto& f : u.funcs) {
        if (f.spliced) continue;
        used += f.code_size;
        if (f.code_size != 0) extents.push_back({f.paddr, f.code_size});
      }
    }
    std::sort(extents.begin(), extents.end(),
              [](const RefWindow& a, const RefWindow& b) {
                return a.addr < b.addr;
              });
    w.put_u64(used);
    w.put_u64(lay.mem_x_size - used);
    w.put_u32(static_cast<u32>(extents.size()));
    for (const auto& e : extents) {
      w.put_u64(e.addr);
      w.put_u64(e.len);
    }
    return w.take();
  }

  [[nodiscard]] size_t size() const { return units_.size(); }

 private:
  std::vector<ModelUnit> units_;
  u64 seq_counter_ = 0;
};

// ---- Surface -----------------------------------------------------------------

class LifecycleSurface final : public Surface {
 public:
  explicit LifecycleSurface(LifecycleSurfaceOptions o) : opts_(o) {}

  const char* name() const override { return "lifecycle"; }

  Bytes generate(Rng& rng) override;
  Verdict execute(ByteSpan encoded) override;
  std::vector<Bytes> shrink_candidates(ByteSpan encoded, Rng& rng) override;
  std::string describe(ByteSpan encoded) const override;

 private:
  LifecycleSurfaceOptions opts_;
  kernel::MemoryLayout lay_ = fuzz_layout();
};

Bytes LifecycleSurface::generate(Rng& rng) {
  if (rng.next_below(16) == 0) {
    // Structural garbage: odd lengths and oversize schedules must reject
    // cleanly without booting a rig.
    return rng.next_bytes(1 + rng.next_below(2 * kMaxOps + 8));
  }
  size_t n = 1 + rng.next_below(10);
  Bytes b;
  b.reserve(2 * n);
  for (size_t i = 0; i < n; ++i) {
    b.push_back(static_cast<u8>(rng.next_below(5)));
    // Small args keep schedules colliding on the same ids (that is where
    // the lifecycle logic lives); occasional full-range args exercise the
    // modular decoding and the whole revert table.
    b.push_back(static_cast<u8>(rng.next_below(2) ? rng.next_below(16)
                                                  : rng.next_below(256)));
  }
  return b;
}

Surface::Verdict LifecycleSurface::execute(ByteSpan encoded) {
  Verdict v;
  auto fail = [&](const char* oracle, std::string detail) {
    if (!v.failure) v.failure = {std::string(oracle), std::move(detail)};
  };

  if (encoded.empty() || encoded.size() % 2 != 0 ||
      encoded.size() > 2 * kMaxOps) {
    // No rig was booted, so the outcome is fully determined by the wire:
    // digest the wire itself to keep the differential invariant total.
    crypto::Digest256 d = crypto::sha256(encoded);
    v.state_digest = to_hex(ByteSpan(d.data(), d.size()));
    v.kind = Verdict::Kind::kRejected;
    return v;
  }

  obs::MetricsRegistry metrics;
  machine::Machine m(lay_.mem_bytes, lay_.smram_base, lay_.smram_size,
                     kRigSeed);
  core::SmmPatchHandler handler(lay_, kRigSeed, &metrics);
  if (opts_.legacy_copy_parser) {
    handler.enable_legacy_copy_parser_for_selftest();
  }
  if (!m.set_smm_handler(
           [&handler](machine::Machine& mm) { handler.on_smi(mm); })
           .is_ok()) {
    fail("rig", "set_smm_handler failed");
    return v;
  }
  // Zero-copy differential input: every op status, every query blob, final
  // memory and the SMM cycle ledger. smm.staged_copies is deliberately out.
  ByteWriter digest_w;

  auto fill = [&](PhysAddr base, size_t len) {
    u8* p = m.mem().raw(base, len);
    for (size_t i = 0; i < len; ++i) {
      p[i] = static_cast<u8>((base + i) * 0x9E37u >> 8);
    }
  };
  fill(lay_.text_base, lay_.text_max);
  fill(lay_.data_base, lay_.data_max);

  const auto mode = machine::AccessMode::normal();
  core::Mailbox mbox(m.mem(), lay_.mem_rw_base(), mode);
  Rng arng(kAttackerSeed);

  // Pre-run snapshot: after the final drain, everything outside
  // SMRAM/mailbox/mem_W/mem_X must come back to exactly this.
  Bytes snapshot(m.mem().raw(0, lay_.mem_bytes),
                 m.mem().raw(0, lay_.mem_bytes) + lay_.mem_bytes);

  StackModel model;
  bool applied_any = false;

  auto smi_status = [&](SmmCommand cmd) -> Result<SmmStatus> {
    mbox.write_command(cmd);
    m.trigger_smi();
    auto st = mbox.read_status();
    if (st) digest_w.put_u64(static_cast<u64>(*st));
    auto back = mbox.read_command();
    if (!back || *back != SmmCommand::kIdle) {
      fail("command-not-reset", "command word not reset to kIdle after SMI");
    }
    return st;
  };

  // One full helper handshake per apply op: fresh session keys, fresh
  // nonce, package sealed under the derived "sgx-smm" key.
  auto run_apply = [&](const PatchSet& set) -> Result<SmmStatus> {
    auto st = smi_status(SmmCommand::kBeginSession);
    if (!st || *st != SmmStatus::kOk) {
      fail("rig", "begin_session failed");
      return Status{Errc::kInternal, "begin_session"};
    }
    auto smm_pub = mbox.read_smm_pub();
    if (!smm_pub) {
      fail("rig", "smm pub unreadable after kBeginSession");
      return smm_pub.status();
    }
    auto keys = crypto::dh_generate(arng);
    auto shared = crypto::dh_shared(keys.private_key, *smm_pub);
    auto key = crypto::derive_key(ByteSpan(shared.data(), shared.size()),
                                  "sgx-smm");
    crypto::Nonce96 nonce{};
    arng.fill(MutByteSpan(nonce.data(), nonce.size()));
    Bytes wire = patchtool::serialize_patchset_raw(set);
    Bytes sealed = crypto::seal(key, nonce, wire).serialize();
    m.mem().write(lay_.mem_w_base(), sealed, mode);
    mbox.write_enclave_pub(keys.public_key);
    mbox.write_staged_size(sealed.size());
    return smi_status(SmmCommand::kApplyPatch);
  };

  // Query oracle: the handler's blob must match the model's byte-for-byte.
  auto check_query = [&](size_t op_idx) {
    auto st = smi_status(SmmCommand::kQueryApplied);
    if (!st || *st != SmmStatus::kOk) {
      fail("query-status",
           "op " + std::to_string(op_idx) + ": kQueryApplied returned " +
               (st ? core::smm_status_name(*st) : "<unreadable>"));
      return;
    }
    auto size = mbox.read_query_size();
    if (!size) {
      fail("query-size", "query size unreadable");
      return;
    }
    auto blob = m.mem().read_bytes(
        lay_.mem_rw_base() + core::MailboxLayout::kQueryBlob, *size, mode);
    if (!blob) {
      fail("query-blob", "query blob unreadable");
      return;
    }
    digest_w.put_u32(static_cast<u32>(blob->size()));
    digest_w.put_bytes(ByteSpan(blob->data(), blob->size()));
    Bytes expect = model.expected_query_blob(lay_);
    if (*blob != expect) {
      size_t at = 0;
      while (at < blob->size() && at < expect.size() &&
             (*blob)[at] == expect[at]) {
        ++at;
      }
      fail("query-model",
           "op " + std::to_string(op_idx) + ": blob diverges at offset " +
               std::to_string(at) + " (got " + std::to_string(blob->size()) +
               " bytes, expected " + std::to_string(expect.size()) + ")");
    }
  };

  for (size_t i = 0; i + 1 < encoded.size() && !v.failure; i += 2) {
    Op op = static_cast<Op>(encoded[i] % 5);
    u8 arg = encoded[i + 1];
    SmmStatus predicted;
    Result<SmmStatus> observed = SmmStatus::kOk;
    switch (op) {
      case Op::kApplyBase:
      case Op::kApplySup:
      case Op::kApplyDep: {
        PatchSet set = op_patchset(lay_, op, arg);
        predicted = model.apply(set);
        observed = run_apply(set);
        if (predicted == SmmStatus::kOk) applied_any = true;
        break;
      }
      case Op::kRevert: {
        u64 h = crypto::sdbm(to_bytes(revert_target_id(arg)));
        predicted = model.revert(h);
        mbox.write_revert_target(h);
        observed = smi_status(SmmCommand::kRevertPatch);
        break;
      }
      case Op::kRollback:
        predicted = model.rollback();
        observed = smi_status(SmmCommand::kRollback);
        break;
    }
    if (v.failure) break;
    if (!observed) {
      fail("status-unreadable",
           "op " + std::to_string(i / 2) + ": status word unreadable");
      break;
    }
    if (*observed != predicted) {
      fail("status-mismatch",
           "op " + std::to_string(i / 2) + ": expected " +
               core::smm_status_name(predicted) + " got " +
               core::smm_status_name(*observed));
      break;
    }
    check_query(i / 2);
  }

  // Final drain: LIFO rollback never blocks (dependents always sit above
  // what they depend on), so the stack must empty in exactly model.size()
  // pops and then report kNothingToRollback.
  if (!v.failure) {
    size_t pops = model.size();
    for (size_t i = 0; i < pops && !v.failure; ++i) {
      SmmStatus predicted = model.rollback();
      auto st = smi_status(SmmCommand::kRollback);
      if (!st || *st != predicted) {
        fail("drain-status",
             "drain pop " + std::to_string(i) + ": expected " +
                 core::smm_status_name(predicted) + " got " +
                 (st ? core::smm_status_name(*st) : "<unreadable>"));
      }
    }
    if (!v.failure) {
      auto st = smi_status(SmmCommand::kRollback);
      if (!st || *st != SmmStatus::kNothingToRollback) {
        fail("drain-exhausted",
             std::string("expected nothing-to-rollback got ") +
                 (st ? core::smm_status_name(*st) : "<unreadable>"));
      }
    }
  }

  // After the drain every trampoline and spliced body has been restored;
  // kernel text, data, and all other memory outside SMRAM, the mailbox,
  // mem_W (staged envelopes) and mem_X (abandoned bodies) must be
  // byte-identical to the pre-run snapshot.
  if (!v.failure) {
    u64 memw_base = lay_.mem_w_base();
    u64 memx_base = lay_.mem_x_base();
    const u8* cur = m.mem().raw(0, lay_.mem_bytes);
    for (size_t i = 0; i < lay_.mem_bytes; ++i) {
      if (i >= lay_.smram_base && i < lay_.smram_base + lay_.smram_size) {
        continue;
      }
      if (i >= lay_.mem_rw_base() &&
          i < lay_.mem_rw_base() + lay_.mem_rw_size) {
        continue;
      }
      if (i >= memw_base && i < memw_base + lay_.mem_w_size) continue;
      if (i >= memx_base && i < memx_base + lay_.mem_x_size) continue;
      if (cur[i] != snapshot[i]) {
        std::ostringstream os;
        os << "memory differs at 0x" << std::hex << i << " after drain";
        fail("drain-memory", os.str());
        break;
      }
    }
  }

  {
    const u8* cur = m.mem().raw(0, lay_.mem_bytes);
    auto put_mem = [&](u64 lo, u64 hi) {
      digest_w.put_bytes(ByteSpan(cur + lo, hi - lo));
    };
    put_mem(0, lay_.smram_base);
    put_mem(lay_.smram_base + lay_.smram_size, lay_.mem_rw_base());
    put_mem(lay_.mem_rw_base() + lay_.mem_rw_size, lay_.mem_bytes);
    digest_w.put_u64(m.smm_cycles());
    crypto::Digest256 d = crypto::sha256(digest_w.bytes());
    v.state_digest = to_hex(ByteSpan(d.data(), d.size()));
  }

  v.kind = applied_any && !v.failure ? Verdict::Kind::kAccepted
                                     : Verdict::Kind::kRejected;
  return v;
}

std::vector<Bytes> LifecycleSurface::shrink_candidates(ByteSpan encoded,
                                                       Rng& rng) {
  (void)rng;
  std::vector<Bytes> out;
  if (encoded.size() % 2 != 0) {
    // Structurally invalid wire: shrink toward the smallest odd wire.
    if (encoded.size() > 1) out.emplace_back(encoded.begin(),
                                             encoded.begin() + 1);
    return out;
  }
  // Drop one op pair at a time, then try prefixes.
  for (size_t i = 0; i + 1 < encoded.size(); i += 2) {
    Bytes b(encoded.begin(), encoded.end());
    b.erase(b.begin() + static_cast<std::ptrdiff_t>(i),
            b.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    if (!b.empty()) out.push_back(std::move(b));
  }
  for (size_t n = 2; n < encoded.size(); n += 2) {
    out.emplace_back(encoded.begin(),
                     encoded.begin() + static_cast<std::ptrdiff_t>(n));
  }
  return out;
}

std::string LifecycleSurface::describe(ByteSpan encoded) const {
  std::ostringstream os;
  os << "lifecycle schedule: " << encoded.size() / 2 << " op(s)";
  if (encoded.size() % 2 != 0) os << " (odd-length wire: rejected)";
  for (size_t i = 0; i + 1 < encoded.size(); i += 2) {
    u8 arg = encoded[i + 1];
    os << "\n  [" << i / 2 << "] ";
    switch (static_cast<Op>(encoded[i] % 5)) {
      case Op::kApplyBase:
        os << "apply U" << int{arg} % 4;
        break;
      case Op::kApplySup:
        os << "apply S" << int{arg} % 4 << " supersedes U" << int{arg} % 4
           << ((arg & 4) ? " (splice)" : "");
        break;
      case Op::kApplyDep:
        os << "apply D" << int{arg} % 4 << " depends U" << int{arg} % 4;
        break;
      case Op::kRevert:
        os << "revert " << revert_target_id(arg);
        break;
      case Op::kRollback:
        os << "rollback";
        break;
    }
  }
  os << "\n  hex: " << to_hex(encoded);
  return os.str();
}

}  // namespace

std::unique_ptr<Surface> make_lifecycle_surface(LifecycleSurfaceOptions o) {
  return std::make_unique<LifecycleSurface>(o);
}

std::vector<std::pair<std::string, Bytes>> seed_lifecycle_cases() {
  std::vector<std::pair<std::string, Bytes>> out;
  // U0, U1; S0 retires U0; S1 (splice form) retires U1 in place.
  out.emplace_back("supersede-chain", Bytes{0, 0, 0, 1, 1, 0, 1, 5});
  // U0, U1, U2; revert U1 out of order; D0 still applies on top.
  out.emplace_back("revert-out-of-order", Bytes{0, 0, 0, 1, 0, 2, 3, 1, 2, 0});
  // U0, D0(depends U0); revert U0 is fenced; rollback pops D0; retry lands.
  out.emplace_back("revert-blocked", Bytes{0, 0, 2, 0, 3, 0, 4, 0, 3, 0});
  // D2 without U2 is rejected; after U2 applies, D2 lands.
  out.emplace_back("missing-dependency", Bytes{2, 2, 0, 2, 2, 2});
  // Re-applying a live id overlaps its own windows; rollback drains.
  out.emplace_back("double-apply-overlap", Bytes{0, 3, 0, 3, 4, 3});
  return out;
}

}  // namespace kshot::fuzz
