// kcc surface: encoded cases are raw ksrc source text. Each case that parses
// and compiles is differential-tested — the compiled image running on the
// machine must agree with the AST reference evaluator on return values,
// oops/trap codes, and final global state, under two optimization configs.
// Argument vectors are derived from a hash of the source so execute() stays a
// pure function of the encoded bytes.
#include <sstream>

#include "fuzz/fuzz.hpp"
#include "kcc/compiler.hpp"
#include "kcc/eval.hpp"
#include "kcc/parser.hpp"
#include "machine/machine.hpp"

namespace kshot::fuzz {

namespace {

u64 fnv1a(ByteSpan bytes) {
  u64 h = 0xcbf29ce484222325ULL;
  for (u8 b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Simplified clone of the test-suite ProgramGen: globals, one inline
/// helper, a few straight-line/branch/loop functions calling earlier ones
/// (no recursion, bounded loops), last function is the entry.
class SourceGen {
 public:
  explicit SourceGen(Rng& rng) : rng_(rng) {}

  std::string generate() {
    std::ostringstream src;
    int nglobals = 2 + static_cast<int>(rng_.next_below(2));
    for (int i = 0; i < nglobals; ++i) {
      globals_.push_back("g" + std::to_string(i));
      src << "global g" << i << " = "
          << static_cast<i64>(rng_.next_below(100)) - 50 << ";\n";
    }
    src << "inline fn helper(h0) {\n"
        << "  let hv = h0 " << arith_op() << " " << (1 + rng_.next_below(9))
        << ";\n  return hv;\n}\n";
    fns_.push_back({"helper", 1});
    int nfns = 2 + static_cast<int>(rng_.next_below(2));
    for (int i = 0; i < nfns; ++i) {
      std::string name = "f" + std::to_string(i);
      int params = 1 + static_cast<int>(rng_.next_below(2));
      src << "fn " << name << "(";
      std::vector<std::string> scope;
      for (int p = 0; p < params; ++p) {
        if (p) src << ", ";
        src << "p" << p;
        scope.push_back("p" + std::to_string(p));
      }
      src << ") {\n";
      block(src, scope, 1);
      src << "  return " << expr(scope, 2) << ";\n}\n";
      fns_.push_back({name, params});
    }
    return src.str();
  }

 private:
  std::string arith_op() {
    static const char* kOps[] = {"+", "-", "*", "&", "|", "^", "%", "/"};
    return kOps[rng_.next_below(8)];
  }
  std::string cmp_op() {
    static const char* kOps[] = {"<", "<=", ">", ">=", "==", "!="};
    return kOps[rng_.next_below(6)];
  }

  std::string expr(const std::vector<std::string>& scope, int depth) {
    switch (rng_.next_below(depth <= 0 ? 2 : 5)) {
      case 0:
        return std::to_string(static_cast<i64>(rng_.next_below(64)) - 8);
      case 1:
        if (!scope.empty()) return scope[rng_.next_below(scope.size())];
        [[fallthrough]];
      case 2:
        return globals_[rng_.next_below(globals_.size())];
      case 3: {
        auto& [name, arity] = fns_[rng_.next_below(fns_.size())];
        std::string call = name + "(";
        for (int i = 0; i < arity; ++i) {
          if (i) call += ", ";
          call += expr(scope, depth - 1);
        }
        return call + ")";
      }
      default:
        return "(" + expr(scope, depth - 1) + " " +
               (rng_.next_below(5) == 0 ? cmp_op() : arith_op()) + " " +
               expr(scope, depth - 1) + ")";
    }
  }

  void block(std::ostringstream& src, std::vector<std::string>& scope,
             int indent) {
    std::string ind(static_cast<size_t>(indent) * 2, ' ');
    int stmts = 1 + static_cast<int>(rng_.next_below(3));
    for (int s = 0; s < stmts; ++s) {
      switch (rng_.next_below(5)) {
        case 0: {
          std::string name = "v" + std::to_string(indent) + "_" +
                             std::to_string(rng_.next_below(1000));
          src << ind << "let " << name << " = " << expr(scope, 2) << ";\n";
          scope.push_back(name);
          break;
        }
        case 1:
          src << ind << globals_[rng_.next_below(globals_.size())] << " = "
              << expr(scope, 2) << ";\n";
          break;
        case 2: {
          src << ind << "if (" << expr(scope, 1) << " " << cmp_op() << " "
              << expr(scope, 1) << ") {\n";
          size_t mark = scope.size();
          if (indent < 3) block(src, scope, indent + 1);
          scope.resize(mark);
          src << ind << "}\n";
          break;
        }
        case 3: {
          std::string i =
              "i" + std::to_string(indent) + std::to_string(rng_.next_below(100));
          src << ind << "let " << i << " = 0;\n"
              << ind << "while (" << i << " < " << (1 + rng_.next_below(5))
              << ") {\n"
              << ind << "  " << i << " = " << i << " + 1;\n";
          size_t mark = scope.size();
          scope.push_back(i);
          if (indent < 3) block(src, scope, indent + 1);
          scope.resize(mark);
          src << ind << "}\n";
          break;
        }
        default:
          if (rng_.next_below(4) == 0) {
            src << ind << "if (" << expr(scope, 1) << " == "
                << rng_.next_below(8) << ") {\n"
                << ind << "  bug(" << (1 + rng_.next_below(200)) << ");\n"
                << ind << "}\n";
          } else {
            src << ind << expr(scope, 2) << ";\n";
          }
          break;
      }
    }
  }

  Rng& rng_;
  std::vector<std::string> globals_;
  std::vector<std::pair<std::string, int>> fns_;
};

class KccSurface final : public Surface {
 public:
  const char* name() const override { return "kcc"; }

  Bytes generate(Rng& rng) override {
    SourceGen gen(rng);
    std::string src = gen.generate();
    if (rng.next_below(3) == 0) mutate(src, rng);
    return to_bytes(src);
  }

  Verdict execute(ByteSpan encoded) override;
  std::vector<Bytes> shrink_candidates(ByteSpan encoded, Rng& rng) override;

  std::string describe(ByteSpan encoded) const override {
    std::ostringstream os;
    os << "kcc source (" << encoded.size() << " bytes):\n"
       << std::string(encoded.begin(), encoded.end());
    return os.str();
  }

 private:
  static void mutate(std::string& src, Rng& rng);
};

void KccSurface::mutate(std::string& src, Rng& rng) {
  // Line-granular textual mutations: most results still parse, exercising
  // the compiler; the rest exercise parser rejection paths.
  size_t nmut = 1 + rng.next_below(2);
  for (size_t m = 0; m < nmut; ++m) {
    std::vector<std::string> lines;
    std::istringstream is(src);
    for (std::string l; std::getline(is, l);) lines.push_back(l);
    if (lines.empty()) return;
    switch (rng.next_below(4)) {
      case 0:  // delete a line
        lines.erase(lines.begin() +
                    static_cast<std::ptrdiff_t>(rng.next_below(lines.size())));
        break;
      case 1: {  // duplicate a line
        size_t i = rng.next_below(lines.size());
        lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(i),
                     lines[i]);
        break;
      }
      case 2: {  // swap one arithmetic operator on a random line
        std::string& l = lines[rng.next_below(lines.size())];
        static const char kOps[] = {'+', '-', '*', '&', '|', '^'};
        for (char& c : l) {
          if (c == kOps[rng.next_below(6)]) {
            c = kOps[rng.next_below(6)];
            break;
          }
        }
        break;
      }
      default:  // truncate the tail
        lines.resize(1 + rng.next_below(lines.size()));
        break;
    }
    std::ostringstream os;
    for (const auto& l : lines) os << l << "\n";
    src = os.str();
  }
}

Surface::Verdict KccSurface::execute(ByteSpan encoded) {
  Verdict v;
  std::string source(encoded.begin(), encoded.end());
  auto mod = kcc::parse(source);
  if (!mod.is_ok()) return v;  // clean parser rejection

  // Entry point: the last non-inline function, as the generator emits it.
  const kcc::Function* entry = nullptr;
  for (const auto& f : mod->functions) {
    if (!f.is_inline) entry = &f;
  }
  if (!entry || entry->params.size() > 5) return v;

  static const kcc::CompileOptions kConfigs[] = {
      {.text_base = 0x100000,
       .data_base = 0x400000,
       .enable_inlining = true,
       .enable_constfold = false},
      {.text_base = 0x100000,
       .data_base = 0x400000,
       .enable_inlining = true,
       .enable_constfold = true},
  };
  for (size_t ci = 0; ci < 2; ++ci) {
    auto img = kcc::compile_module(*mod, kConfigs[ci]);
    if (!img.is_ok()) return v;  // clean compiler rejection

    machine::Machine m{16 << 20, 0xA0000, 0x20000};
    if (!m.mem()
             .write(img->text_base, img->text, machine::AccessMode::smm())
             .is_ok()) {
      v.kind = Verdict::Kind::kSkipped;
      return v;
    }
    Bytes data = img->data_image();
    if (!data.empty() &&
        !m.mem().write(img->data_base, data, machine::AccessMode::smm())
             .is_ok()) {
      v.kind = Verdict::Kind::kSkipped;
      return v;
    }
    kcc::AstEvaluator ref(*mod);
    Rng args_rng(fnv1a(encoded) ^ (0xA46ULL + ci));
    for (int round = 0; round < 2; ++round) {
      std::vector<u64> args;
      for (size_t i = 0; i < entry->params.size(); ++i) {
        args.push_back(args_rng.next_below(2000));
      }
      auto expect = ref.call(entry->name, args);
      if (!expect.is_ok()) {
        // Step-budget / depth exhaustion: the reference can't judge it.
        v.kind = Verdict::Kind::kSkipped;
        return v;
      }
      const kcc::Symbol* sym = img->find_symbol(entry->name);
      if (!sym) {
        v.failure = {"differential-divergence",
                     "entry symbol missing from compiled image: " +
                         entry->name};
        return v;
      }
      auto& cpu = m.cpu();
      cpu = machine::CpuState{};
      for (size_t i = 0; i < args.size(); ++i) cpu.regs[1 + i] = args[i];
      cpu.sp() = (12 << 20) - 8;
      m.mem().write_u64(cpu.sp(), machine::kReturnSentinel,
                        machine::AccessMode::normal());
      cpu.rip = sym->addr;
      auto res = m.run(20'000'000);
      bool oops = res.kind == machine::StepKind::kOops;
      if (res.kind != machine::StepKind::kRetTop && !oops) {
        // Instruction budgets differ between the worlds; don't call a
        // near-boundary timeout a divergence.
        v.kind = Verdict::Kind::kSkipped;
        return v;
      }
      std::ostringstream why;
      if (oops != expect->oops) {
        why << "config " << ci << " round " << round << ": machine "
            << (oops ? "oopsed" : "returned") << ", evaluator "
            << (expect->oops ? "oopsed" : "returned");
      } else if (oops && res.info != expect->trap_code) {
        why << "config " << ci << " round " << round << ": trap "
            << res.info << " vs " << expect->trap_code;
      } else if (!oops && cpu.regs[0] != expect->value) {
        why << "config " << ci << " round " << round << ": value "
            << cpu.regs[0] << " vs " << expect->value;
      } else if (!oops) {
        for (const auto& g : mod->globals) {
          const kcc::GlobalSym* gs = img->find_global(g.name);
          auto eg = ref.global(g.name);
          if (!gs || !eg.is_ok()) continue;
          auto mg = m.mem().read_u64(gs->addr, machine::AccessMode::normal());
          if (mg.is_ok() && *mg != *eg) {
            why << "config " << ci << " round " << round << ": global "
                << g.name << " " << *mg << " vs " << *eg;
            break;
          }
        }
      }
      if (!why.str().empty()) {
        v.failure = {"differential-divergence", why.str()};
        return v;
      }
      // An oops desynchronizes global state between worlds; stop rounds.
      if (oops) break;
    }
  }
  v.kind = Verdict::Kind::kAccepted;
  return v;
}

std::vector<Bytes> KccSurface::shrink_candidates(ByteSpan encoded, Rng& rng) {
  // Line-granular shrinking: drop single lines and halving ranges.
  std::vector<Bytes> out;
  std::string src(encoded.begin(), encoded.end());
  std::vector<std::string> lines;
  std::istringstream is(src);
  for (std::string l; std::getline(is, l);) lines.push_back(l);
  size_t n = lines.size();
  if (n <= 1) return Surface::shrink_candidates(encoded, rng);
  auto emit = [&](size_t from, size_t len) {
    std::ostringstream os;
    for (size_t i = 0; i < n; ++i) {
      if (i >= from && i < from + len) continue;
      os << lines[i] << "\n";
    }
    Bytes b = to_bytes(os.str());
    if (b.size() < encoded.size()) out.push_back(std::move(b));
  };
  for (size_t chunk = n / 2; chunk >= 1; chunk /= 2) {
    for (size_t off = 0; off < n && out.size() < 64; off += chunk) {
      emit(off, std::min(chunk, n - off));
    }
    if (out.size() >= 64) break;
  }
  return out;
}

}  // namespace

std::unique_ptr<Surface> make_kcc_surface() {
  return std::make_unique<KccSurface>();
}

}  // namespace kshot::fuzz
