// Attacker-schedule surface: fuzzes the async-adversary hardening end to
// end. A case is an AdversarySchedule wire (see attacks/async_adversary.hpp)
// driven against a freshly booted deployment running the full live_patch
// pipeline. The oracle is the hardening contract itself:
//
//   every schedule is PREVENTED (the run succeeds and memory outside the
//   attacker's legitimate scratch — SMRAM, the mailbox page, mem_W — is
//   byte-identical to the no-attack run) or DETECTED (the run fails with a
//   populated, classified DetectionReport). Silent corruption and silent
//   failure both trip.
//
// Mid-SMI-only schedules get a sharper oracle: under the single-fetch
// snapshot discipline a mem_W rewrite between the handler's fetch and its
// use is *invisible* — no detections, no extra apply attempts. The
// legacy_double_fetch self-test seam re-opens the pre-hardening double
// fetch, and the harness must catch that class with a shrunk repro.
#include <algorithm>
#include <sstream>

#include "attacks/async_adversary.hpp"
#include "common/byte_io.hpp"
#include "common/hex.hpp"
#include "crypto/sha256.hpp"
#include "cve/suite.hpp"
#include "fuzz/fuzz.hpp"
#include "testbed/testbed.hpp"

namespace kshot::fuzz {

namespace {

using attacks::AdversaryAction;
using attacks::AdversarySchedule;
using attacks::AdversaryTrigger;
using attacks::AdversaryVariant;

/// Rig determinism: every case boots the same deployment from the same
/// seed, so the no-attack baseline is computed once and reused.
constexpr u64 kBootSeed = 0x7E57;
constexpr const char* kCveId = "CVE-2014-0196";

class AttackerSurface final : public Surface {
 public:
  explicit AttackerSurface(AttackerSurfaceOptions o) : opts_(o) {}

  const char* name() const override { return "attacker_schedule"; }

  Bytes generate(Rng& rng) override;
  Verdict execute(ByteSpan encoded) override;
  std::vector<Bytes> shrink_candidates(ByteSpan encoded, Rng& rng) override;
  std::string describe(ByteSpan encoded) const override;

 private:
  Result<std::unique_ptr<testbed::Testbed>> boot() const {
    testbed::TestbedOptions topts;
    topts.seed = kBootSeed;
    topts.cpus = opts_.cpus;
    return testbed::Testbed::boot(cve::find_case(kCveId), std::move(topts));
  }

  /// Compared memory window: everything below the EPC (kernel text, data,
  /// stacks, modules, mem_X). The EPC legitimately diverges across retry
  /// counts (enclave re-preprocessing), SMRAM across SMI counts, and the
  /// mailbox page + mem_W are attacker scratch by design.
  Bytes snap(testbed::Testbed& t) const {
    const auto& lay = t.layout();
    const u8* p = t.machine().mem().raw(0, lay.epc_base);
    return Bytes(p, p + lay.epc_base);
  }

  bool excluded(const kernel::MemoryLayout& lay, size_t i) const {
    if (i >= lay.smram_base && i < lay.smram_base + lay.smram_size) {
      return true;
    }
    if (i >= lay.mem_rw_base() && i < lay.mem_rw_base() + lay.mem_rw_size) {
      return true;
    }
    if (i >= lay.mem_w_base() && i < lay.mem_w_base() + lay.mem_w_size) {
      return true;
    }
    return false;
  }

  /// Boots and patches once with no adversary attached; the resulting
  /// memory image and attempt count are what "prevented" means.
  Status ensure_baseline() {
    if (baseline_ready_) return Status::ok();
    auto tb = boot();
    if (!tb) return tb.status();
    auto rep = (*tb)->kshot().live_patch(kCveId);
    if (!rep.is_ok()) return rep.status();
    if (!rep->success) {
      return Status{Errc::kInternal, "baseline live_patch failed"};
    }
    if (rep->detections.any()) {
      return Status{Errc::kInternal, "baseline run reported detections"};
    }
    baseline_final_ = snap(**tb);
    baseline_apply_attempts_ = rep->resilience.apply_attempts;
    baseline_ready_ = true;
    return Status::ok();
  }

  AttackerSurfaceOptions opts_;
  bool baseline_ready_ = false;
  Bytes baseline_final_;
  u32 baseline_apply_attempts_ = 0;
};

// ---- Generation --------------------------------------------------------------

Bytes AttackerSurface::generate(Rng& rng) {
  if (rng.next_below(4) == 0) {
    // Pure mid-SMI schedule: the invisibility-oracle class (and the class
    // the legacy_double_fetch self-test seam must get caught on).
    AdversarySchedule s;
    size_t n = 1 + rng.next_below(2);
    for (size_t i = 0; i < n; ++i) {
      AdversaryAction a{};
      a.variant = AdversaryVariant::kMidSmiMemWFlip;
      a.trigger = AdversaryTrigger::kOnStaged;
      a.param = static_cast<u16>((rng.next_below(2) << 8) |
                                 rng.next_below(256));
      a.value = static_cast<u32>(rng.next());
      s.actions.push_back(a);
    }
    return s.encode();
  }
  Bytes wire = AdversarySchedule::generate(rng.next()).encode();
  if (rng.next_below(8) == 0 && !wire.empty()) {
    // Raw wire damage exercises decode()'s rejection paths.
    wire[rng.next_below(wire.size())] ^=
        static_cast<u8>(1 + rng.next_below(255));
  }
  return wire;
}

// ---- Execution + oracles -----------------------------------------------------

Surface::Verdict AttackerSurface::execute(ByteSpan encoded) {
  Verdict v;
  auto fail = [&](const char* oracle, std::string detail) {
    if (!v.failure) v.failure = {std::string(oracle), std::move(detail)};
  };

  auto sched = AdversarySchedule::decode(encoded);
  if (!sched) {
    v.kind = Verdict::Kind::kRejected;  // malformed wire, cleanly refused
    return v;
  }

  if (!ensure_baseline().is_ok()) {
    v.kind = Verdict::Kind::kSkipped;
    return v;
  }
  auto tb = boot();
  if (!tb) {
    v.kind = Verdict::Kind::kSkipped;
    return v;
  }
  testbed::Testbed& t = **tb;
  if (opts_.legacy_double_fetch) {
    t.kshot().handler().enable_legacy_double_fetch_for_selftest();
  }
  if (opts_.legacy_copy_parser) {
    t.kshot().handler().enable_legacy_copy_parser_for_selftest();
  }

  Bytes pre = snap(t);

  attacks::AsyncAdversary adv(t.machine(), t.kshot(), t.layout(), *sched);
  adv.attach();
  auto rep = t.kshot().live_patch(kCveId);
  adv.detach();

  core::DetectionReport det =
      rep.is_ok() ? rep->detections : t.kshot().take_detections();
  const bool success = rep.is_ok() && rep->success;
  const u32 apply_attempts = rep.is_ok() ? rep->resilience.apply_attempts : 0;

  // Oracle: mid-SMI-only schedules are invisible under the single-fetch
  // snapshot discipline — the SMRAM copy was taken before the race window,
  // so nothing may be detected and nothing may need retrying. This is the
  // seam the legacy_double_fetch self-test re-opens.
  const bool midsmi_only =
      !sched->actions.empty() &&
      std::all_of(sched->actions.begin(), sched->actions.end(),
                  [](const AdversaryAction& a) {
                    return a.variant == AdversaryVariant::kMidSmiMemWFlip;
                  });
  if (midsmi_only) {
    if (!success) {
      fail("midsmi-visible",
           "mid-SMI-only schedule failed the run: " +
               (rep.is_ok()
                    ? std::string(core::smm_status_name(rep->smm_status))
                    : rep.status().to_string()));
    } else if (det.any()) {
      fail("midsmi-visible",
           "detections fired under the snapshot discipline:\n" +
               det.to_string());
    } else if (apply_attempts != baseline_apply_attempts_) {
      fail("midsmi-visible",
           "apply attempts " + std::to_string(apply_attempts) +
               " != baseline " + std::to_string(baseline_apply_attempts_));
    }
  }

  // Oracle: prevented-or-detected, never silent corruption. A successful
  // run must leave memory byte-identical to the no-attack run; a failed run
  // must leave the kernel byte-identical to its pre-patch image AND carry a
  // classified DetectionReport when the adversary actually interposed.
  const Bytes& expected = success ? baseline_final_ : pre;
  Bytes cur = snap(t);
  const auto& lay = t.layout();
  for (size_t i = 0; i < cur.size(); ++i) {
    if (excluded(lay, i)) continue;
    if (cur[i] != expected[i]) {
      std::ostringstream os;
      os << "memory differs from the " << (success ? "no-attack" : "pre-patch")
         << " image at 0x" << std::hex << i << ": expected 0x"
         << static_cast<int>(expected[i]) << " got 0x"
         << static_cast<int>(cur[i]);
      fail("silent-corruption", os.str());
      break;
    }
  }
  if (!success && !det.any() && adv.actions_fired() > 0) {
    fail("silent-failure",
         "attack caused a failure with no classified detection (fired: " +
             std::to_string(adv.actions_fired()) + " action(s))");
  }

  // State digest for the zero-copy differential: run outcome, detections,
  // downtime decomposition, and final memory outside the attacker scratch.
  // smm.staged_copies is deliberately not part of this.
  {
    ByteWriter dw;
    dw.put_u8(success ? 1 : 0);
    dw.put_u32(apply_attempts);
    if (rep.is_ok()) {
      dw.put_u64(static_cast<u64>(rep->smm_status));
      dw.put_u64(rep->downtime_cycles);
      dw.put_u64(rep->rendezvous_cycles);
      dw.put_u64(rep->handler_cycles);
      dw.put_u64(rep->resume_cycles);
    }
    std::string ds = det.to_string();
    dw.put_u32(static_cast<u32>(ds.size()));
    dw.put_bytes(to_bytes(ds));
    for (size_t i = 0; i < cur.size(); ++i) {
      if (!excluded(lay, i)) dw.put_u8(cur[i]);
    }
    crypto::Digest256 d = crypto::sha256(dw.bytes());
    v.state_digest = to_hex(ByteSpan(d.data(), d.size()));
  }

  v.kind = success ? Verdict::Kind::kAccepted : Verdict::Kind::kRejected;
  return v;
}

// ---- Shrinking ---------------------------------------------------------------

std::vector<Bytes> AttackerSurface::shrink_candidates(ByteSpan encoded,
                                                      Rng& rng) {
  auto sched = AdversarySchedule::decode(encoded);
  if (!sched) {
    // Undecodable wire: structural reduction can't apply; shrink raw bytes.
    return Surface::shrink_candidates(encoded, rng);
  }
  std::vector<Bytes> out;
  auto emit = [&](const AdversarySchedule& s) {
    Bytes w = s.encode();
    if (w.size() < encoded.size()) out.push_back(std::move(w));
  };
  // Drop one action at a time (the wire shrinks by 8 bytes per drop).
  for (size_t i = 0; i < sched->actions.size(); ++i) {
    AdversarySchedule s = *sched;
    s.actions.erase(s.actions.begin() + static_cast<std::ptrdiff_t>(i));
    emit(s);
  }
  return out;
}

std::string AttackerSurface::describe(ByteSpan encoded) const {
  std::ostringstream os;
  auto sched = AdversarySchedule::decode(encoded);
  os << "attacker schedule wire: " << encoded.size() << " bytes";
  if (sched) {
    os << ", " << sched->to_string();
  } else {
    os << ", malformed (" << sched.status().message() << ")";
  }
  os << "\n  hex: " << to_hex(encoded);
  return os.str();
}

}  // namespace

std::unique_ptr<Surface> make_attacker_schedule_surface(
    AttackerSurfaceOptions o) {
  return std::make_unique<AttackerSurface>(o);
}

std::vector<std::pair<std::string, Bytes>> seed_attacker_cases() {
  using attacks::AdversaryAction;
  using attacks::AdversarySchedule;
  using attacks::AdversaryTrigger;
  using attacks::AdversaryVariant;
  auto one = [](AdversaryVariant var, AdversaryTrigger trig, u16 param,
                u32 value) {
    AdversarySchedule s;
    s.actions.push_back(AdversaryAction{var, trig, param, value});
    return s.encode();
  };
  std::vector<std::pair<std::string, Bytes>> out;
  // The two silent-failure regressions this hardening closed: flipping the
  // command word of the apply SMI (pre-SMI occurrence 1) to kIdle left the
  // helper reading a stale kOk status, and flipping it to kBeginSession let
  // the handler write a genuine kOk for the wrong command.
  out.emplace_back("cmdflip-idle",
                   one(AdversaryVariant::kMailboxCmdFlip,
                       AdversaryTrigger::kPreSmi, 1u << 8, 0));
  out.emplace_back("cmdflip-begin",
                   one(AdversaryVariant::kMailboxCmdFlip,
                       AdversaryTrigger::kPreSmi, 1u << 8, 1));
  out.emplace_back("seqflip-apply",
                   one(AdversaryVariant::kMailboxSeqFlip,
                       AdversaryTrigger::kPreSmi, 1u << 8, 0xDEAD));
  out.emplace_back("sizeflip-zero",
                   one(AdversaryVariant::kStagedSizeFlip,
                       AdversaryTrigger::kPreSmi, 1u << 8, 0));
  out.emplace_back("memw-rewrite",
                   one(AdversaryVariant::kMemWRewrite,
                       AdversaryTrigger::kOnStaged, 3, 0xDEADBEEF));
  out.emplace_back("smi-suppress",
                   one(AdversaryVariant::kSmiSuppress,
                       AdversaryTrigger::kOnStaged, 2, 0));
  // Must stay invisible under the single-fetch snapshot discipline.
  out.emplace_back("midsmi-invisible",
                   one(AdversaryVariant::kMidSmiMemWFlip,
                       AdversaryTrigger::kOnStaged, 5, 0xCAFE));
  {
    // Capture (spoiled) + replay of the stale sealed envelope.
    AdversarySchedule s;
    s.actions.push_back(AdversaryAction{AdversaryVariant::kReplayEnvelope,
                                        AdversaryTrigger::kOnStaged, 1, 0});
    s.actions.push_back(AdversaryAction{AdversaryVariant::kReplayEnvelope,
                                        AdversaryTrigger::kOnStaged, 1u << 8,
                                        0});
    out.emplace_back("replay-spoiled-pair", s.encode());
  }
  return out;
}

}  // namespace kshot::fuzz
