// Package surface: fuzzes the SMM handler's §V-B attack surface — the
// plaintext patch-package wire an attacker who knows the handshake can seal
// under a valid session key (everything past the MAC must hold up on content
// checks alone, exactly the threat model of tests/test_security.cpp's
// MaliciousPackage suite).
//
// Every case boots a fresh compact machine + handler from fixed seeds, so
// execute() is a pure function of the wire bytes. The oracle re-derives the
// handler's entire contract independently: an overflow-safe reference
// validator predicts the exact SMM status, and a byte-exact expected-memory
// image (pre-SMI snapshot + modeled legitimate writes) is compared against
// all of physical memory except SMRAM and the mem_RW mailbox page. On a
// predicted-successful apply the case continues through a rollback SMI and
// asserts the pre-patch text comes back.
#include <cstring>
#include <sstream>

#include "common/byte_io.hpp"
#include "common/hex.hpp"
#include "core/smm_handler.hpp"
#include "crypto/aead.hpp"
#include "crypto/sha256.hpp"
#include "fuzz/fuzz.hpp"
#include "machine/machine.hpp"
#include "patchtool/package.hpp"

namespace kshot::fuzz {

namespace {

using core::SmmCommand;
using core::SmmStatus;
using patchtool::FunctionPatch;
using patchtool::PatchOp;
using patchtool::PatchSet;
using patchtool::PatchType;
using patchtool::VarEdit;

/// Rig entropy; execute() must be deterministic, so both the handler's DH
/// keys and the attacker's are fixed per case.
constexpr u64 kRigSeed = 0x7E57;
constexpr u64 kAttackerSeed = 0xBAD5EED;

/// A compact 2 MB layout: full-memory snapshots are what make the
/// byte-exact oracle affordable at thousands of cases (the default 64 MB
/// layout would memcpy ~100 GB over a 2000-iteration run).
kernel::MemoryLayout fuzz_layout() {
  kernel::MemoryLayout lay;
  lay.mem_bytes = 0x20'0000;
  lay.smram_base = 0xA0000;
  lay.smram_size = 0x20000;
  lay.text_base = 0x10'0000;
  lay.text_max = 0x2'0000;
  lay.data_base = 0x14'0000;
  lay.data_max = 0x8000;
  lay.stacks_base = 0x14'8000;
  lay.stack_size = 0x1000;
  lay.max_threads = 4;
  lay.module_base = 0x15'0000;
  lay.module_size = 0x8000;
  lay.reserved_base = 0x16'0000;
  lay.mem_rw_size = 0x1000;
  lay.mem_w_size = 0x1'0000;
  lay.mem_x_size = 0x2'0000;  // reserved region ends at 0x191000
  lay.epc_base = 0x1A'0000;
  lay.epc_size = 0x1'0000;
  return lay;
}

/// Reimplementation of the handler's trampoline encoding (E9 rel32,
/// relative to the end of the instruction) so the expected-memory model is
/// independent of the code under test.
std::array<u8, 5> model_jmp(u64 jmp_addr, u64 target) {
  std::array<u8, 5> b{};
  b[0] = 0xE9;
  i64 rel = static_cast<i64>(target) - static_cast<i64>(jmp_addr + 5);
  store_u32(b.data() + 1, static_cast<u32>(static_cast<i32>(rel)));
  return b;
}

/// Independent reference validator mirroring the *documented* contract of
/// apply_parsed's up-front validation (overflow-safe throughout). The
/// handler must agree with this on every input; a disagreement is exactly
/// the bug class PR 3 fixed by hand.
bool reference_entry_valid(const kernel::MemoryLayout& lay,
                           const FunctionPatch& p) {
  u64 memx_base = lay.mem_x_base();
  if (p.paddr < memx_base) return false;
  u64 memx_off = p.paddr - memx_base;
  if (memx_off > lay.mem_x_size || p.code.size() > lay.mem_x_size - memx_off) {
    return false;
  }
  if (p.taddr != 0) {
    if (p.taddr < lay.text_base) return false;
    u64 text_off = p.taddr - lay.text_base;
    if (text_off > lay.text_max) return false;
    if (static_cast<u64>(p.ftrace_off) + 5 > lay.text_max - text_off) {
      return false;
    }
  }
  if (!p.relocs.empty()) return false;  // not preprocessed
  for (const auto& v : p.var_edits) {
    if (v.addr < lay.data_base ||
        v.addr - lay.data_base > lay.data_max - 8) {
      return false;
    }
  }
  return true;
}

/// Mirror of the handler's byte-precise write windows: the mem_X body plus
/// the 5-byte trampoline (splice entries collapse to one in-place window).
struct RefWindow {
  u64 addr = 0;
  u64 len = 0;
};

void reference_windows(const FunctionPatch& p, std::vector<RefWindow>& out) {
  if (p.splice) {
    if (!p.code.empty()) out.push_back({p.taddr, p.code.size()});
    return;
  }
  if (!p.code.empty()) out.push_back({p.paddr, p.code.size()});
  if (p.taddr != 0) out.push_back({p.taddr + p.ftrace_off, 5});
}

bool reference_overlaps(const RefWindow& a, const RefWindow& b) {
  return a.addr < b.addr + b.len && b.addr < a.addr + a.len;
}

/// A set whose write windows intersect each other (or a prior batch
/// member's) is rejected by validate_set before anything touches memory.
bool reference_set_overlap_free(const PatchSet& set,
                                std::vector<RefWindow>& prior) {
  std::vector<RefWindow> mine;
  for (const auto& p : set.patches) reference_windows(p, mine);
  for (size_t i = 0; i < mine.size(); ++i) {
    for (size_t j = i + 1; j < mine.size(); ++j) {
      if (reference_overlaps(mine[i], mine[j])) return false;
    }
    for (const auto& b : prior) {
      if (reference_overlaps(mine[i], b)) return false;
    }
  }
  prior.insert(prior.end(), mine.begin(), mine.end());
  return true;
}

/// What the handler is expected to do with one delivered wire. A plain
/// package wire yields one set; a batch envelope yields one set per inner
/// package (the handler installs them under a single SMI as one rollback
/// unit each).
struct Prediction {
  SmmStatus status = SmmStatus::kBadPackage;
  bool applies = false;   // memory changes per the model below
  bool is_batch = false;  // delivered via kApplyBatch instead of kApplyPatch
  std::vector<PatchSet> sets;
};

Prediction predict(const kernel::MemoryLayout& lay, ByteSpan wire,
                   size_t sealed_size) {
  Prediction pred;
  if (sealed_size > lay.mem_w_size) {
    pred.status = SmmStatus::kBadPackage;  // staged-size check, pre-MAC
    return pred;
  }
  if (patchtool::is_batch_wire(wire)) {
    // Mirrors apply_batch exactly: envelope parse, then per-package verify
    // in order (digest beats bad-package per package; any inner rollback op
    // rejects the batch), then cross-batch validation before any applies.
    pred.is_batch = true;
    auto pkgs = patchtool::parse_batch(wire);
    if (!pkgs) {
      pred.status = SmmStatus::kBadPackage;
      return pred;
    }
    std::vector<PatchSet> sets;
    for (const Bytes& pkg : *pkgs) {
      auto set = patchtool::parse_patchset(pkg);
      if (!set) {
        pred.status = set.status().code() == Errc::kIntegrityFailure
                          ? SmmStatus::kDigestFailure
                          : SmmStatus::kBadPackage;
        return pred;
      }
      for (const auto& p : set->patches) {
        if (p.op == PatchOp::kRollback) {
          pred.status = SmmStatus::kBadPackage;  // apply-only construct
          return pred;
        }
      }
      sets.push_back(std::move(*set));
    }
    for (const auto& s : sets) {
      // Lifecycle directives (depends/supersedes/splice) are a single-
      // package construct; the handler rejects them inside a batch.
      if (s.has_lifecycle()) {
        pred.status = SmmStatus::kBadPackage;
        return pred;
      }
    }
    std::vector<RefWindow> prior;
    for (const auto& s : sets) {
      for (const auto& p : s.patches) {
        if (!reference_entry_valid(lay, p)) {
          pred.status = SmmStatus::kBadPackage;
          return pred;
        }
      }
      if (!reference_set_overlap_free(s, prior)) {
        pred.status = SmmStatus::kBadPackage;
        return pred;
      }
    }
    pred.status = SmmStatus::kOk;
    pred.applies = true;
    pred.sets = std::move(sets);
    return pred;
  }
  auto set = patchtool::parse_patchset(wire);
  if (!set) {
    pred.status = set.status().code() == Errc::kIntegrityFailure
                      ? SmmStatus::kDigestFailure
                      : SmmStatus::kBadPackage;
    return pred;
  }
  bool any_rollback = false;
  bool any_apply = false;
  for (const auto& p : set->patches) {
    (p.op == PatchOp::kRollback ? any_rollback : any_apply) = true;
  }
  if (any_rollback && any_apply) {
    pred.status = SmmStatus::kBadPackage;
    return pred;
  }
  if (any_rollback) {
    // Fresh rig: nothing has been applied, so nothing can roll back.
    pred.status = SmmStatus::kNothingToRollback;
    return pred;
  }
  // On a fresh rig the applied set is empty, so any dependency is missing
  // (the handler checks this before set validation).
  if (!set->depends.empty()) {
    pred.status = SmmStatus::kMissingDependency;
    return pred;
  }
  for (const auto& p : set->patches) {
    if (!reference_entry_valid(lay, p)) {
      pred.status = SmmStatus::kBadPackage;
      return pred;
    }
  }
  {
    std::vector<RefWindow> none;
    if (!reference_set_overlap_free(*set, none)) {
      pred.status = SmmStatus::kBadPackage;
      return pred;
    }
  }
  pred.status = SmmStatus::kOk;
  pred.applies = true;
  pred.sets.push_back(std::move(*set));
  return pred;
}

/// Applies the modeled legitimate writes of a successful apply to `image`,
/// in the handler's documented order (var edits, then bodies, then
/// trampolines), so overlapping writes resolve identically.
void model_trampolines(const PatchSet& set, Bytes& image) {
  for (const auto& p : set.patches) {
    if (p.taddr == 0) continue;
    u64 jmp = p.taddr + p.ftrace_off;
    auto t = model_jmp(jmp, p.paddr + p.ftrace_off);
    std::memcpy(&image[jmp], t.data(), t.size());
  }
}

void model_apply(const PatchSet& set, Bytes& image, bool with_trampolines) {
  for (const auto& p : set.patches) {
    for (const auto& v : p.var_edits) store_u64(&image[v.addr], v.value);
  }
  for (const auto& p : set.patches) {
    if (!p.code.empty()) std::memcpy(&image[p.paddr], p.code.data(),
                                     p.code.size());
  }
  if (with_trampolines) model_trampolines(set, image);
}

class PackageSurface final : public Surface {
 public:
  explicit PackageSurface(PackageSurfaceOptions o) : opts_(o) {}

  const char* name() const override { return "package"; }

  Bytes generate(Rng& rng) override;
  Verdict execute(ByteSpan encoded) override;
  std::vector<Bytes> shrink_candidates(ByteSpan encoded, Rng& rng) override;
  std::string describe(ByteSpan encoded) const override;

 private:
  PackageSurfaceOptions opts_;
  kernel::MemoryLayout lay_ = fuzz_layout();
};

// ---- Generation --------------------------------------------------------------

PatchSet random_set(const kernel::MemoryLayout& lay, Rng& rng) {
  PatchSet set;
  set.id = "FZ-" + std::to_string(rng.next_below(10000));
  set.kernel_version = "sim-4.4";
  size_t n = 1 + rng.next_below(4);
  for (size_t i = 0; i < n; ++i) {
    FunctionPatch p;
    p.sequence = static_cast<u16>(i);
    p.name = "fn" + std::to_string(i);
    p.type = static_cast<PatchType>(1 + rng.next_below(3));
    p.ftrace_off = rng.next_below(2) ? 5 : 0;
    p.code = rng.next_bytes(rng.next_below(513));
    // Entry fits: leave room for code-sized regions and the 5-byte jmp.
    if (rng.next_below(8) == 0) {
      p.taddr = 0;  // new mem_X-only helper
    } else {
      p.taddr = lay.text_base + 0x40 * rng.next_below(0x400);
    }
    p.paddr = lay.mem_x_base() + 0x400 * i + 0x40 * rng.next_below(8);
    size_t nvar = rng.next_below(3);
    for (size_t k = 0; k < nvar; ++k) {
      p.var_edits.push_back({lay.data_base + 8 * rng.next_below(64),
                             rng.next(), VarEdit::Kind::kSet});
    }
    set.patches.push_back(std::move(p));
  }
  return set;
}

/// Structural attacks: each targets one validation rule of apply_parsed.
void apply_structural_attack(const kernel::MemoryLayout& lay, PatchSet& set,
                             Rng& rng) {
  FunctionPatch& p = set.patches[rng.next_below(set.patches.size())];
  switch (rng.next_below(12)) {
    case 0:  // wrapping taddr: jmp address wraps to valid low memory
      p.taddr = ~0ull - rng.next_below(16);
      p.ftrace_off = static_cast<u16>(6 + rng.next_below(15));
      break;
    case 1:  // wrapping paddr: body write wraps below mem_X
      p.paddr = ~0ull - rng.next_below(8);
      break;
    case 2:  // taddr below kernel text
      p.taddr = lay.text_base - 1 - rng.next_below(256);
      break;
    case 3:  // entry span crosses the end of text
      p.taddr = lay.text_base + lay.text_max - rng.next_below(5);
      break;
    case 4:  // body crosses the end of mem_X
      p.paddr = lay.mem_x_base() + lay.mem_x_size - 1;
      if (p.code.empty()) p.code = rng.next_bytes(8);
      break;
    case 5:  // paddr below mem_X (into mem_W / the mailbox)
      p.paddr = lay.mem_x_base() - 1 - rng.next_below(0x1000);
      break;
    case 6:  // huge ftrace_off
      p.ftrace_off = 0xFFFF;
      break;
    case 7:  // var edit past the data segment
      p.var_edits.push_back({lay.data_base + lay.data_max - rng.next_below(8),
                             0xDEAD, VarEdit::Kind::kSet});
      break;
    case 8:  // wrapping var-edit address
      p.var_edits.push_back({~0ull - rng.next_below(8), 0xDEAD,
                             VarEdit::Kind::kSet});
      break;
    case 9:  // unpreprocessed reloc
      p.relocs.push_back({0, -1, lay.text_base});
      break;
    case 10:  // all-rollback package
      for (auto& e : set.patches) e.op = PatchOp::kRollback;
      break;
    case 11:  // mixed-op package
      p.op = PatchOp::kRollback;
      break;
  }
}

void mutate_wire(Bytes& wire, Rng& rng) {
  if (wire.empty()) return;
  size_t nmut = 1 + rng.next_below(3);
  for (size_t i = 0; i < nmut; ++i) {
    switch (rng.next_below(8)) {
      case 0:
        wire[rng.next_below(wire.size())] ^=
            static_cast<u8>(1 + rng.next_below(255));
        break;
      case 1:
        wire.resize(rng.next_below(wire.size() + 1));
        break;
      case 2: {
        Bytes tail = rng.next_bytes(1 + rng.next_below(64));
        wire.insert(wire.end(), tail.begin(), tail.end());
        break;
      }
      case 3:
        if (wire.size() >= 4) {
          store_u32(&wire[rng.next_below(wire.size() - 3)],
                    static_cast<u32>(rng.next()));
        }
        break;
      case 4:
        if (wire.size() >= 8) {
          store_u64(&wire[rng.next_below(wire.size() - 7)], rng.next());
        }
        break;
      case 5:  // zero the set digest
        if (wire.size() >= 44) std::memset(&wire[12], 0, 32);
        break;
      case 6:  // corrupt the entry count
        if (wire.size() >= 8) store_u16(&wire[6],
                                        static_cast<u16>(rng.next()));
        break;
      case 7:  // corrupt entries_size
        if (wire.size() >= 12) store_u32(&wire[8],
                                         static_cast<u32>(rng.next()));
        break;
    }
    if (wire.empty()) return;
  }
}

Bytes PackageSurface::generate(Rng& rng) {
  if (rng.next_below(4) == 0) {
    // Batch envelope: 1-3 inner packages installed under one modeled SMI.
    // Inner packages get the same structural attacks and wire mutations as
    // bare packages (a mutated inner digest exercises the mid-batch reject
    // path; an inner rollback op exercises the apply-only rule), and the
    // envelope itself is occasionally mutated too.
    size_t n = 1 + rng.next_below(3);
    std::vector<Bytes> pkgs;
    pkgs.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      PatchSet set = random_set(lay_, rng);
      if (rng.next_below(4) == 0) apply_structural_attack(lay_, set, rng);
      Bytes w = patchtool::serialize_patchset_raw(set);
      if (rng.next_below(8) == 0) mutate_wire(w, rng);
      pkgs.push_back(std::move(w));
    }
    Bytes wire = patchtool::serialize_batch(pkgs);
    if (rng.next_below(8) == 0) mutate_wire(wire, rng);
    return wire;
  }
  PatchSet set = random_set(lay_, rng);
  if (rng.next_below(3) == 0) apply_structural_attack(lay_, set, rng);
  Bytes wire = patchtool::serialize_patchset_raw(set);
  if (rng.next_below(4) == 0) mutate_wire(wire, rng);
  return wire;
}

// ---- Execution + oracles -----------------------------------------------------

Surface::Verdict PackageSurface::execute(ByteSpan encoded) {
  Verdict v;
  auto fail = [&](const char* oracle, std::string detail) {
    if (!v.failure) v.failure = {std::string(oracle), std::move(detail)};
  };

  obs::MetricsRegistry metrics;
  machine::Machine m(lay_.mem_bytes, lay_.smram_base, lay_.smram_size,
                     kRigSeed);
  core::SmmPatchHandler handler(lay_, kRigSeed, &metrics);
  if (opts_.legacy_wrapping_bounds) {
    handler.enable_legacy_wrapping_bounds_for_selftest();
  }
  if (opts_.legacy_copy_parser) {
    handler.enable_legacy_copy_parser_for_selftest();
  }
  // Everything the zero-copy differential compares across parser modes:
  // every observed status lands here as it is read, final memory and the
  // trace spans at the end. smm.staged_copies is deliberately not included.
  ByteWriter digest_w;
  obs::TraceRecorder trace;
  handler.set_trace(&trace, 0);
  if (!m.set_smm_handler(
           [&handler](machine::Machine& mm) { handler.on_smi(mm); })
           .is_ok()) {
    fail("rig", "set_smm_handler failed");
    return v;
  }

  // Deterministic non-zero fill of kernel text + data so captured entry
  // bytes and var-edit undo values are nontrivial.
  auto fill = [&](PhysAddr base, size_t len) {
    u8* p = m.mem().raw(base, len);
    for (size_t i = 0; i < len; ++i) {
      p[i] = static_cast<u8>((base + i) * 0x9E37u >> 8);
    }
  };
  fill(lay_.text_base, lay_.text_max);
  fill(lay_.data_base, lay_.data_max);

  // Attacker handshake (the SmmRig protocol from tests/test_security.cpp).
  const auto mode = machine::AccessMode::normal();
  core::Mailbox mbox(m.mem(), lay_.mem_rw_base(), mode);
  mbox.write_command(SmmCommand::kBeginSession);
  m.trigger_smi();
  auto smm_pub = mbox.read_smm_pub();
  if (!smm_pub) {
    fail("rig", "smm pub unreadable after kBeginSession");
    return v;
  }
  Rng arng(kAttackerSeed);
  auto keys = crypto::dh_generate(arng);
  auto shared = crypto::dh_shared(keys.private_key, *smm_pub);
  auto key =
      crypto::derive_key(ByteSpan(shared.data(), shared.size()), "sgx-smm");
  crypto::Nonce96 nonce{};
  arng.fill(MutByteSpan(nonce.data(), nonce.size()));
  Bytes sealed = crypto::seal(key, nonce, encoded).serialize();

  m.mem().write(lay_.mem_w_base(), sealed, mode);
  mbox.write_enclave_pub(keys.public_key);
  mbox.write_staged_size(sealed.size());

  // Pre-apply snapshot: the byte-identical baseline every rejection path
  // must restore. Taken before the apply SMI; the mailbox page and SMRAM
  // are excluded from comparison (both legitimately change under SMIs).
  Bytes snapshot(m.mem().raw(0, lay_.mem_bytes),
                 m.mem().raw(0, lay_.mem_bytes) + lay_.mem_bytes);

  Prediction pred = predict(lay_, encoded, sealed.size());

  mbox.write_command(pred.is_batch ? SmmCommand::kApplyBatch
                                   : SmmCommand::kApplyPatch);
  m.trigger_smi();

  // Oracle: no Status swallowed — the status word must be readable and a
  // known SmmStatus value, and the command word must be consumed.
  auto raw_status = m.mem().read_u64(
      lay_.mem_rw_base() + core::MailboxLayout::kStatus, mode);
  if (!raw_status) {
    fail("status-unreadable", "mailbox status word unreadable after apply");
    return v;
  }
  if (*raw_status > static_cast<u64>(SmmStatus::kRevertBlocked)) {
    fail("status-unknown",
         "status word not a known SmmStatus: " + std::to_string(*raw_status));
    return v;
  }
  auto observed = static_cast<SmmStatus>(*raw_status);
  digest_w.put_u64(*raw_status);
  auto cmd = mbox.read_command();
  if (!cmd || *cmd != SmmCommand::kIdle) {
    fail("command-not-reset", "command word not reset to kIdle after SMI");
  }

  // Oracle: the handler's status must match the independent prediction.
  if (observed != pred.status) {
    fail("status-mismatch",
         std::string("expected ") + core::smm_status_name(pred.status) +
             " got " + core::smm_status_name(observed));
  }

  // Oracle: success-or-byte-identical memory. Expected image = snapshot
  // (+ modeled writes iff the apply was predicted to succeed).
  auto compare_memory = [&](const Bytes& expected, const char* oracle) {
    const u8* cur = m.mem().raw(0, lay_.mem_bytes);
    for (size_t i = 0; i < lay_.mem_bytes; ++i) {
      if (i >= lay_.smram_base && i < lay_.smram_base + lay_.smram_size) {
        continue;
      }
      if (i >= lay_.mem_rw_base() &&
          i < lay_.mem_rw_base() + lay_.mem_rw_size) {
        continue;
      }
      if (cur[i] != expected[i]) {
        std::ostringstream os;
        os << "memory differs at 0x" << std::hex << i << ": expected 0x"
           << static_cast<int>(expected[i]) << " got 0x"
           << static_cast<int>(cur[i]);
        fail(oracle, os.str());
        return;
      }
    }
  };

  bool applied = pred.applies && observed == SmmStatus::kOk;
  size_t total_entries = 0;
  for (const auto& s : pred.sets) total_entries += s.patches.size();
  {
    // Sets apply in batch order; var edits (data), bodies (mem_X) and
    // trampolines (text) live in disjoint regions, so modeling them
    // category-by-category preserves every cross-set last-writer outcome.
    Bytes expected = snapshot;
    if (applied) {
      for (const auto& s : pred.sets) {
        model_apply(s, expected, /*with_trampolines=*/true);
      }
    }
    compare_memory(expected, applied ? "apply-memory-model"
                                     : "reject-memory-identical");
  }
  if (applied && handler.installed().size() != total_entries) {
    fail("installed-count",
         "installed() size " + std::to_string(handler.installed().size()) +
             " != package entries " + std::to_string(total_entries));
  }

  // Oracle: rollback restores the pre-patch snapshot (trampolines revert to
  // the captured entry bytes; var edits and mem_X bodies legitimately stay).
  // Each non-empty applied set is one rollback unit, popped in reverse
  // batch order; after the stack drains, one more kRollback must report
  // kNothingToRollback.
  u64 rollbacks_done = 0;
  if (applied) {
    std::vector<size_t> units;
    for (size_t i = 0; i < pred.sets.size(); ++i) {
      if (!pred.sets[i].patches.empty()) units.push_back(i);
    }
    size_t remaining = total_entries;
    for (auto it = units.rbegin(); it != units.rend(); ++it) {
      mbox.write_command(SmmCommand::kRollback);
      m.trigger_smi();
      auto rb = mbox.read_status();
      if (rb) digest_w.put_u64(static_cast<u64>(*rb));
      if (!rb || *rb != SmmStatus::kOk) {
        fail("rollback-status",
             std::string("unit ") + std::to_string(*it) + ": expected ok got " +
                 (rb ? core::smm_status_name(*rb) : "<unreadable>"));
        break;
      }
      ++rollbacks_done;
      remaining -= pred.sets[*it].patches.size();
      // Popping unit *it restores the entry bytes captured just before that
      // set applied — the earlier sets' trampolines stay live (overlapping
      // jmp windows never get this far: validation rejects them).
      Bytes expected = snapshot;
      for (const auto& s : pred.sets) {
        model_apply(s, expected, /*with_trampolines=*/false);
      }
      for (size_t j = 0; j < *it; ++j) {
        model_trampolines(pred.sets[j], expected);
      }
      compare_memory(expected, "rollback-memory");
      if (handler.installed().size() != remaining) {
        fail("rollback-residue",
             "installed() size " + std::to_string(handler.installed().size()) +
                 " != remaining entries " + std::to_string(remaining));
      }
    }
    mbox.write_command(SmmCommand::kRollback);
    m.trigger_smi();
    auto rb = mbox.read_status();
    if (rb) digest_w.put_u64(static_cast<u64>(*rb));
    if (!rb || *rb != SmmStatus::kNothingToRollback) {
      fail("rollback-exhausted",
           std::string("expected nothing-to-rollback got ") +
               (rb ? core::smm_status_name(*rb) : "<unreadable>"));
    }
  }

  // Oracle: the trace's smi-span sum equals the machine's published SMM
  // residency (the paper's downtime figure) exactly.
  u64 span_sum = 0;
  for (const auto& e : trace.snapshot()) {
    if (e.kind == obs::EventKind::kComplete && e.component == "smm" &&
        e.name == "smi") {
      span_sum += e.virt_cycles();
    }
  }
  if (span_sum != m.smm_cycles()) {
    fail("trace-downtime",
         "smi span sum " + std::to_string(span_sum) + " != smm_cycles " +
             std::to_string(m.smm_cycles()));
  }

  // Oracle: metrics counters consistent with what the harness drove, and
  // the registry snapshot agrees with the handler's accessors.
  auto expect_counter = [&](const char* name, u64 got, u64 want) {
    if (got != want) {
      fail("metrics", std::string(name) + " = " + std::to_string(got) +
                          ", expected " + std::to_string(want));
    }
  };
  expect_counter("smm.sessions", handler.sessions_started(), 1);
  expect_counter("smm.stagings_seen", handler.stagings_seen(), 1);
  expect_counter("smm.applied", handler.patches_applied(),
                 applied ? pred.sets.size() : 0);
  expect_counter("smm.rollbacks", handler.rollbacks(), rollbacks_done);
  expect_counter("smm.aborts", handler.sessions_aborted(), 0);
  expect_counter("smm.batch_applies",
                 metrics.counter("smm.batch_applies").value(),
                 pred.is_batch && applied ? 1 : 0);
  for (const auto& [cname, cval] : metrics.snapshot().counters) {
    u64 accessor = cname == "smm.sessions"        ? handler.sessions_started()
                   : cname == "smm.applied"       ? handler.patches_applied()
                   : cname == "smm.rollbacks"     ? handler.rollbacks()
                   : cname == "smm.stagings_seen" ? handler.stagings_seen()
                   : cname == "smm.aborts"        ? handler.sessions_aborted()
                                                  : cval;
    if (cval != accessor) {
      fail("metrics", "registry " + cname + " = " + std::to_string(cval) +
                          " disagrees with handler accessor " +
                          std::to_string(accessor));
    }
  }

  {
    const u8* cur = m.mem().raw(0, lay_.mem_bytes);
    auto put_mem = [&](u64 lo, u64 hi) {
      digest_w.put_bytes(ByteSpan(cur + lo, hi - lo));
    };
    put_mem(0, lay_.smram_base);
    put_mem(lay_.smram_base + lay_.smram_size, lay_.mem_rw_base());
    put_mem(lay_.mem_rw_base() + lay_.mem_rw_size, lay_.mem_bytes);
    for (const auto& e : trace.snapshot()) {
      digest_w.put_u8(static_cast<u8>(e.kind));
      digest_w.put_u32(static_cast<u32>(e.component.size()));
      digest_w.put_bytes(to_bytes(e.component));
      digest_w.put_u32(static_cast<u32>(e.name.size()));
      digest_w.put_bytes(to_bytes(e.name));
      digest_w.put_u64(e.virt_cycles());
    }
    digest_w.put_u64(m.smm_cycles());
    crypto::Digest256 d = crypto::sha256(digest_w.bytes());
    v.state_digest = to_hex(ByteSpan(d.data(), d.size()));
  }

  v.kind = applied ? Verdict::Kind::kAccepted : Verdict::Kind::kRejected;
  return v;
}

// ---- Shrinking ---------------------------------------------------------------

std::vector<Bytes> PackageSurface::shrink_candidates(ByteSpan encoded,
                                                     Rng& rng) {
  if (patchtool::is_batch_wire(encoded)) {
    auto pkgs = patchtool::parse_batch(encoded);
    if (!pkgs) {
      // Malformed envelope: structural reduction can't preserve the oracle,
      // shrink raw bytes.
      return Surface::shrink_candidates(encoded, rng);
    }
    std::vector<Bytes> out;
    auto emit = [&](Bytes w) {
      if (w.size() < encoded.size()) out.push_back(std::move(w));
    };
    // A one-package batch often reproduces as a bare package wire.
    if (pkgs->size() == 1) emit((*pkgs)[0]);
    // Drop one inner package at a time.
    if (pkgs->size() > 1) {
      for (size_t i = 0; i < pkgs->size(); ++i) {
        std::vector<Bytes> rest;
        for (size_t j = 0; j < pkgs->size(); ++j) {
          if (j != i) rest.push_back((*pkgs)[j]);
        }
        emit(patchtool::serialize_batch(rest));
      }
    }
    // Structurally reduce one inner package, keeping the envelope.
    for (size_t i = 0; i < pkgs->size(); ++i) {
      auto set = patchtool::parse_patchset((*pkgs)[i]);
      if (!set) continue;
      for (size_t k = 0; k < set->patches.size(); ++k) {
        PatchSet s = *set;
        s.patches.erase(s.patches.begin() + static_cast<std::ptrdiff_t>(k));
        std::vector<Bytes> repl = *pkgs;
        repl[i] = patchtool::serialize_patchset_raw(s);
        emit(patchtool::serialize_batch(repl));
      }
      {
        PatchSet s = *set;
        for (auto& p : s.patches) {
          p.code.clear();
          p.var_edits.clear();
        }
        std::vector<Bytes> repl = *pkgs;
        repl[i] = patchtool::serialize_patchset_raw(s);
        emit(patchtool::serialize_batch(repl));
      }
    }
    return out;
  }
  auto set = patchtool::parse_patchset(encoded);
  if (!set) {
    // Digest-invalid wire: structural reduction would change the oracle
    // (every re-serialization fixes the digest), so shrink raw bytes.
    return Surface::shrink_candidates(encoded, rng);
  }
  // Digest-valid wire: produce reduced sets and re-serialize (recomputing
  // the digest) so candidates stay parseable and trip the same content
  // oracle with fewer attacker-controlled bytes.
  std::vector<Bytes> out;
  auto emit = [&](const PatchSet& s) {
    Bytes w = patchtool::serialize_patchset_raw(s);
    if (w.size() < encoded.size()) out.push_back(std::move(w));
  };
  for (size_t i = 0; i < set->patches.size(); ++i) {
    PatchSet s = *set;
    s.patches.erase(s.patches.begin() + static_cast<std::ptrdiff_t>(i));
    emit(s);
  }
  for (size_t i = 0; i < set->patches.size(); ++i) {
    {
      PatchSet s = *set;
      s.patches[i].code.clear();
      emit(s);
    }
    {
      PatchSet s = *set;
      s.patches[i].code.resize(s.patches[i].code.size() / 2);
      emit(s);
    }
    {
      PatchSet s = *set;
      s.patches[i].name.clear();
      emit(s);
    }
    {
      PatchSet s = *set;
      s.patches[i].var_edits.clear();
      emit(s);
    }
    {
      PatchSet s = *set;
      s.patches[i].relocs.clear();
      emit(s);
    }
  }
  {
    PatchSet s = *set;
    s.id.clear();
    s.kernel_version.clear();
    emit(s);
  }
  return out;
}

std::string PackageSurface::describe(ByteSpan encoded) const {
  std::ostringstream os;
  if (patchtool::is_batch_wire(encoded)) {
    os << "batch wire: " << encoded.size() << " total bytes";
    auto pkgs = patchtool::parse_batch(encoded);
    if (pkgs) {
      os << ", " << pkgs->size() << " inner package(s)";
    } else {
      os << ", malformed envelope";
    }
    os << "\n  hex: " << to_hex(encoded);
    return os.str();
  }
  os << "package wire: " << encoded.size() << " total bytes";
  if (encoded.size() >= 44) {
    // The 44-byte set envelope (magic/version/count/entries_size/digest) is
    // fixed cost; the region after it is what the attacker really controls.
    os << ", " << encoded.size() - 44 << " attacker-controlled entry bytes";
  }
  os << "\n  hex: " << to_hex(encoded);
  return os.str();
}

}  // namespace

std::unique_ptr<Surface> make_package_surface(PackageSurfaceOptions o) {
  return std::make_unique<PackageSurface>(o);
}

}  // namespace kshot::fuzz
