// Surface-independent fuzz driver: seeded case generation, verdict
// accounting, greedy shrinking, and the deterministic report rendering.
#include "fuzz/fuzz.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "common/hex.hpp"

namespace kshot::fuzz {

namespace {

/// SplitMix64 finalizer: decorrelates per-case seeds derived from
/// (run seed, case index) so neighbouring cases share no RNG structure.
u64 mix64(u64 x) {
  x += 0x9e3779b97f4a7c15ULL;
  u64 z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

u64 case_seed_for(u64 run_seed, u32 index) {
  return mix64(run_seed + (static_cast<u64>(index) + 1) *
                              0x9e3779b97f4a7c15ULL);
}

std::vector<Bytes> Surface::shrink_candidates(ByteSpan encoded, Rng& rng) {
  // Default: ddmin-style chunk removals at halving granularity, plus a
  // sampled set of single-byte removals. Structure-aware surfaces override.
  std::vector<Bytes> out;
  size_t n = encoded.size();
  if (n <= 1) return out;
  for (size_t chunk = n / 2; chunk >= 1; chunk /= 2) {
    for (size_t off = 0; off < n; off += chunk) {
      Bytes c(encoded.begin(), encoded.end());
      size_t len = std::min(chunk, n - off);
      c.erase(c.begin() + static_cast<std::ptrdiff_t>(off),
              c.begin() + static_cast<std::ptrdiff_t>(off + len));
      if (!c.empty() || n == 1) out.push_back(std::move(c));
      if (out.size() >= 64) break;
    }
    if (out.size() >= 64) break;
  }
  // A few random single-byte removals to escape chunk-boundary plateaus.
  for (int i = 0; i < 8 && n > 1; ++i) {
    size_t off = rng.next_below(n);
    Bytes c(encoded.begin(), encoded.end());
    c.erase(c.begin() + static_cast<std::ptrdiff_t>(off));
    out.push_back(std::move(c));
  }
  return out;
}

std::string Surface::describe(ByteSpan encoded) const {
  std::ostringstream os;
  os << encoded.size() << " bytes: " << to_hex(encoded);
  return os.str();
}

std::string FuzzReport::to_string() const {
  std::ostringstream os;
  os << "fuzz surface=" << surface << " seed=" << seed << " cases=" << cases
     << " accepted=" << accepted << " rejected=" << rejected
     << " skipped=" << skipped << " failures=" << failures.size()
     << (budget_exhausted ? " (time budget exhausted)" : "") << "\n";
  for (const auto& f : failures) {
    os << "FAILURE surface=" << f.surface << " case=" << f.case_index
       << " case_seed=0x" << std::hex << f.case_seed << std::dec
       << " oracle=" << f.oracle << "\n"
       << "  detail: " << f.detail << "\n"
       << "  shrunk " << f.original_size << " -> " << f.input.size()
       << " bytes\n"
       << "  repro: " << to_hex(f.input) << "\n";
  }
  return os.str();
}

Bytes shrink_case(Surface& surface, Bytes failing, const std::string& oracle,
                  const FuzzOptions& opts) {
  // Greedy first-improvement descent: adopt any strictly smaller candidate
  // that still trips the same oracle, restart candidate enumeration from it.
  // The candidate RNG is seeded from the run seed only, so shrinking is a
  // pure function of (failing input, oracle, options).
  Rng rng(opts.seed ^ 0x5318A11ULL);
  u32 steps = 0;
  bool improved = true;
  while (improved && steps < opts.max_shrink_steps) {
    improved = false;
    auto candidates = surface.shrink_candidates(failing, rng);
    for (auto& cand : candidates) {
      if (cand.size() >= failing.size()) continue;
      if (++steps > opts.max_shrink_steps) break;
      auto v = surface.execute(cand);
      if (v.failure && v.failure->first == oracle) {
        failing = std::move(cand);
        improved = true;
        break;
      }
    }
  }
  return failing;
}

namespace {

/// Executes one encoded case and folds the verdict into the report.
/// Returns true while the run should continue.
bool run_one(Surface& surface, Bytes encoded, u32 index, u64 case_seed,
             const FuzzOptions& opts, FuzzReport& rep) {
  auto v = surface.execute(encoded);
  ++rep.cases;
  switch (v.kind) {
    case Surface::Verdict::Kind::kAccepted:
      ++rep.accepted;
      break;
    case Surface::Verdict::Kind::kRejected:
      ++rep.rejected;
      break;
    case Surface::Verdict::Kind::kSkipped:
      ++rep.skipped;
      break;
  }
  if (v.failure) {
    Failure f;
    f.surface = surface.name();
    f.case_index = index;
    f.case_seed = case_seed;
    f.oracle = v.failure->first;
    f.detail = v.failure->second;
    f.original_size = encoded.size();
    f.input = opts.shrink
                  ? shrink_case(surface, std::move(encoded), f.oracle, opts)
                  : std::move(encoded);
    rep.failures.push_back(std::move(f));
    if (rep.failures.size() >= opts.max_failures) return false;
  }
  return true;
}

}  // namespace

FuzzReport run_fuzz(Surface& surface, const FuzzOptions& opts) {
  FuzzReport rep;
  rep.surface = surface.name();
  rep.seed = opts.seed;
  auto t0 = std::chrono::steady_clock::now();
  for (u32 i = 0; i < opts.iters; ++i) {
    if (opts.time_budget_s > 0) {
      std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - t0;
      if (elapsed.count() > opts.time_budget_s) {
        rep.budget_exhausted = true;
        break;
      }
    }
    u64 cs = case_seed_for(opts.seed, i);
    Rng rng(cs);
    Bytes encoded = surface.generate(rng);
    if (!run_one(surface, std::move(encoded), i, cs, opts, rep)) break;
  }
  return rep;
}

std::vector<FuzzReport> replay_corpus(const std::vector<CorpusEntry>& entries,
                                      const FuzzOptions& opts) {
  // One report per surface, in first-appearance order (entries arrive
  // sorted by surface, so this is also sorted).
  std::vector<FuzzReport> reports;
  std::unique_ptr<Surface> surface;
  // Group by the *requested* directory name, not surface->name(): aliases
  // (corpus dir "synth" -> surface "cve_synth") would otherwise re-create
  // the surface — and open a fresh report — for every entry.
  std::string current;
  FuzzReport* rep = nullptr;
  u32 index = 0;
  for (const auto& e : entries) {
    if (!surface || e.surface != current) {
      surface = make_surface(e.surface);
      current = e.surface;
      if (!surface) continue;  // unknown surface directory: skip
      reports.emplace_back();
      rep = &reports.back();
      rep->surface = surface->name();
      rep->seed = opts.seed;
      index = 0;
    }
    run_one(*surface, e.input, index++, 0, opts, *rep);
  }
  return reports;
}

std::unique_ptr<Surface> make_surface(const std::string& name) {
  if (name == "package") return make_package_surface();
  if (name == "netsim") return make_netsim_surface();
  if (name == "kcc") return make_kcc_surface();
  if (name == "attacker_schedule") return make_attacker_schedule_surface();
  if (name == "lifecycle") return make_lifecycle_surface();
  // "synth" is both the CLI alias and the corpus directory name.
  if (name == "cve_synth" || name == "synth") return make_cve_synth_surface();
  return nullptr;
}

}  // namespace kshot::fuzz
