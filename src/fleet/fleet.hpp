// Fleet orchestration: concurrent live-patch campaigns across N simulated
// targets sharing one PatchServer.
//
// The paper patches one machine; this layer turns the reproduction into a
// distribution system. A FleetController boots N independent Testbeds (one
// deployment per target, each deterministically seeded) against a single
// thread-safe PatchServer whose build cache compiles each patch set once
// per fleet, then drives a staged rollout through a bounded worker pool:
//
//   canary wave (k targets) -> health check -> full waves -> ... -> report
//
// Each target walks the state machine
//
//   PENDING -> FETCHING -> STAGED -> APPLIED | FAILED | ROLLED_BACK
//                                  | QUARANTINED (detections, recovery
//                                    rounds exhausted)
//
// mirrored off the core pipeline's real phase transitions (Kshot's phase
// observer). A target whose run reports classified detections without
// proof of health enters quarantine recovery: escalating modeled backoff,
// session abort, and a fresh fetch per round; exhausting the rounds fences
// the target as QUARANTINED and (in degraded mode) halves later waves. A wave whose failure fraction reaches RolloutPlan::
// abort_failure_rate aborts the rollout: the wave's applied targets are
// rolled back and every remaining target stays PENDING — by the pipeline's
// transactional invariant, every non-applied kernel is byte-identical to
// its pre-patch snapshot.
//
// Determinism: all numbers in a FleetReport are modeled (virtual-clock
// downtime, modeled link latency, modeled backoff) or counters, and are
// aggregated in target-index order, so the same seeds produce a
// byte-identical report at any --jobs level.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "testbed/testbed.hpp"

namespace kshot::fleet {

enum class TargetState : u8 {
  kPending = 0,   // not attempted (or rollout aborted before its wave)
  kFetching,      // talking to the patch server
  kStaged,        // sealed package staged in mem_W
  kApplied,       // patch live and health-checked
  kFailed,        // pipeline failed; kernel untouched (transactional)
  kRolledBack,    // applied, then undone (health failure or wave abort)
  kQuarantined,   // tampering detected and recovery attempts exhausted:
                  // the target is fenced off from further rollout traffic
                  // (kernel untouched — every detection path is
                  // transactional)
};

const char* target_state_name(TargetState s);

/// Staged-rollout policy.
struct RolloutPlan {
  u32 canary = 1;  // size of the first (canary) wave
  u32 wave = 4;    // size of every later wave
  /// Abort the rollout when a wave's failure fraction (FAILED +
  /// health-rollbacks) reaches this; 1.01 disables aborting.
  double abort_failure_rate = 0.5;
  /// On abort, roll the wave's applied targets back too.
  bool rollback_failed_wave = true;
  /// Post-patch health probe rounds per applied target (each round: one
  /// benign syscall must complete cleanly, one exploit must stay dead).
  u32 health_probes = 1;

  // Quarantine policy (async-adversary hardening) -------------------------
  /// Recovery rounds granted to a target that reported detections without
  /// proof of health: each round aborts the session, charges escalating
  /// modeled backoff, and re-runs the pipeline against a freshly fetched
  /// envelope. A target still unhealthy afterwards is QUARANTINED.
  u32 quarantine_retry_limit = 2;
  /// Modeled backoff before recovery round r is kQuarantineBackoffUs << r.
  static constexpr double kQuarantineBackoffUs = 500.0;
  /// Abort the rollout when a wave's quarantine fraction reaches this
  /// (quarantines are bounded-blast-radius events, judged separately from
  /// plain failures); 1.01 disables aborting.
  double max_quarantine_rate = 0.5;
  /// Degraded mode: any quarantine in a wave halves every later wave
  /// (floor 1), trading rollout speed for blast radius while an active
  /// adversary is loose in the fleet.
  bool degrade_on_quarantine = true;
};

struct FleetOptions {
  std::string cve_id = "CVE-2014-0196";
  /// Non-empty switches the campaign to batched mode: every target boots
  /// the merged kernel of combine_cases(batch_cve_ids), the server learns
  /// one per-CVE patch source each (batch_part_cases), and each rollout
  /// step installs all the packages in ONE batched SMM session
  /// (Kshot::live_patch_batch). cve_id is ignored; the report carries the
  /// merged "BATCH(...)" id. Health checks probe every part's exploit.
  std::vector<std::string> batch_cve_ids;
  u32 targets = 4;
  u32 jobs = 1;  // worker threads (bounded concurrency), >= 1
  /// Worker threads for the shared server's patch preparation (bindiff +
  /// matcher fan-out into the content-addressed prep cache).
  u32 prep_jobs = 1;
  u64 base_seed = 0x5EED;
  RolloutPlan rollout;
  /// Channel fault plan applied to every target (clean when unset).
  std::optional<netsim::FaultPlan> fault_plan;
  /// Per-target overrides (e.g. make exactly one wave hostile).
  std::map<u32, netsim::FaultPlan> target_fault_plans;
  std::optional<core::RetryPolicy> retry_policy;
  /// Extend the post-apply health check with a kQueryApplied probe: the
  /// applied inventory SMM reports must contain every patch id this step
  /// installed (case id, or all batch part ids). A syscall probe proves the
  /// fix behaves; this proves the *stack bookkeeping* agrees — a unit
  /// missing from SMM's own inventory would strand later supersede/revert
  /// lifecycle operations fleet-wide. Off by default (one extra SMI per
  /// target).
  bool verify_applied_inventory = false;
  /// When set, every target's rollout runs under an AsyncAdversary driving
  /// the schedule generate(adversary_seed ^ target_seed(i)) — a different,
  /// deterministic attack per target. Detections feed the quarantine state
  /// machine instead of counting as plain failures.
  std::optional<u64> adversary_seed;
  int workload_threads = 0;  // background workload per target
  /// Simulated CPUs per target (>= 1); >1 engages the SMI rendezvous model
  /// and the per-CPU downtime decomposition in every TargetResult.
  u32 cpus = 1;
  /// Record per-target pipeline traces and fleet-level events; the campaign
  /// report then carries a deterministic Chrome-trace JSON (virtual
  /// timestamps only, byte-identical across --jobs levels).
  bool capture_trace = false;
};

struct TargetResult {
  u32 index = 0;
  u64 seed = 0;
  TargetState state = TargetState::kPending;
  u32 wave = 0;          // wave the target was scheduled in
  bool healthy = false;  // post-patch probes passed
  core::ResilienceStats resilience;
  double downtime_us = 0;  // modeled SMM downtime (virtual clock)
  /// Per-CPU decomposition of the modeled downtime, in integer cycles so the
  /// identity rendezvous + handler + resume == downtime_cycles is exact.
  u64 downtime_cycles = 0;
  u64 rendezvous_cycles = 0;  // all-CPU SMI entry (incl. IPI + jitter)
  u64 handler_cycles = 0;     // BSP handler work between entry and resume
  u64 resume_cycles = 0;      // RSM + AP staggered release
  double e2e_us = 0;       // modeled end-to-end latency: link + backoff +
                           // downtime
  u32 detection_events = 0;   // classified detections across all rounds
  u32 quarantine_rounds = 0;  // recovery rounds consumed
  bool recovered = false;     // applied+healthy only after recovery rounds
  std::string detections;     // comma-joined detection classes, in order
  std::string detail;         // failure reason when not applied
};

struct LatencyPercentiles {
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Aggregated outcome of one fleet campaign.
struct FleetReport {
  std::string cve_id;
  u32 targets = 0;
  u32 jobs = 0;
  u32 cpus = 1;
  u32 waves_run = 0;

  u32 applied = 0;
  u32 failed = 0;
  u32 rolled_back = 0;
  u32 quarantined = 0;
  u32 recovered = 0;  // applied after at least one quarantine-recovery round
  u32 pending = 0;    // never attempted (rollout aborted first)

  bool aborted = false;
  u32 abort_wave = 0;  // wave index that tripped the abort (when aborted)
  /// Degraded mode engaged: a quarantine shrank every later wave.
  bool degraded = false;
  u32 degraded_from_wave = 0;  // first wave run at reduced size
  u64 total_detections = 0;    // classified detection events, fleet-wide

  u64 total_fetch_attempts = 0;
  u64 total_apply_attempts = 0;
  u64 total_retries = 0;  // attempts beyond the first, both phases
  u64 total_session_aborts = 0;

  netsim::BuildCacheStats cache;
  double cache_hit_rate = 0;  // patch-set cache

  /// Over applied targets, in sorted-sample order.
  LatencyPercentiles downtime_us;
  LatencyPercentiles e2e_us;

  /// Fleet-wide per-CPU downtime decomposition, summed over all targets in
  /// index order. Invariant: rendezvous + handler + resume == downtime,
  /// exactly (integer cycles end to end).
  u64 total_downtime_cycles = 0;
  u64 total_rendezvous_cycles = 0;
  u64 total_handler_cycles = 0;
  u64 total_resume_cycles = 0;

  std::vector<TargetResult> results;  // index order, one per target

  /// Chrome-trace JSON of the whole campaign (empty unless
  /// FleetOptions::capture_trace): per-target recorders concatenated in
  /// index order, then the canonicalized shared-recorder events (server,
  /// wave markers). Virtual timestamps only — byte-identical across --jobs.
  std::string trace_json;
  /// Fleet-wide metrics (every target's pipeline + the shared server).
  obs::MetricsSnapshot metrics;

  /// Deterministic formatted summary (the determinism tests compare this
  /// byte-for-byte across runs and --jobs levels).
  [[nodiscard]] std::string to_string() const;
};

/// Boots and drives a fleet. Targets stay alive after the campaign so tests
/// and tools can inspect (or snapshot-compare) their kernels.
class FleetController {
 public:
  explicit FleetController(FleetOptions opts);
  ~FleetController();

  FleetController(const FleetController&) = delete;
  FleetController& operator=(const FleetController&) = delete;

  /// Boots the shared server and one testbed per target (parallel, bounded
  /// by jobs). Idempotent; run_campaign() calls it if needed.
  Status boot_fleet();

  /// Executes the staged rollout and returns the aggregated report.
  Result<FleetReport> run_campaign();

  [[nodiscard]] u32 size() const { return static_cast<u32>(targets_.size()); }
  /// Valid after boot_fleet(); nullptr for an out-of-range index.
  testbed::Testbed* target(u32 i);
  netsim::PatchServer& server() { return *server_; }
  [[nodiscard]] u64 target_seed(u32 i) const;

 private:
  void patch_one(u32 index, u32 wave, TargetResult& out);
  bool health_check(testbed::Testbed& t, TargetResult& out) const;
  void rollback_target(u32 index, TargetResult& out, const char* why);

  FleetOptions opts_;
  cve::CveCase case_;
  /// Batched mode only: per-CVE cases rebased onto the merged kernel.
  std::vector<cve::CveCase> batch_parts_;
  // Observability state must outlive server_/targets_, which hold pointers
  // into it — keep these declared first.
  obs::MetricsRegistry metrics_;
  /// One recorder per target: each is written serially by whichever worker
  /// drives that target, so per-target event order is deterministic.
  std::vector<std::unique_ptr<obs::TraceRecorder>> target_traces_;
  /// Shared recorder for events with no owning target (patch server, wave
  /// markers); canonicalized before export.
  obs::TraceRecorder shared_trace_;
  std::unique_ptr<netsim::PatchServer> server_;
  std::vector<std::unique_ptr<testbed::Testbed>> targets_;
  bool booted_ = false;
};

/// p50/p95/p99 of `samples` (nearest-rank on the sorted vector; zeros when
/// empty). Exposed for the fleet report and its tests.
LatencyPercentiles percentiles_of(std::vector<double> samples);

/// Modeled campaign makespan for a worker pool of width `jobs`: each wave's
/// attempted targets are placed (in index order, greedy least-loaded) onto
/// `jobs` virtual workers, with a barrier between waves; the result is the
/// sum of per-wave spans in modeled microseconds. A pure function of the
/// report, so concurrency scaling can be quantified deterministically even
/// on a single physical core (where wall-clock speedup is unmeasurable).
double modeled_makespan_us(const FleetReport& report, u32 jobs);

}  // namespace kshot::fleet
