#include "fleet/fleet.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <functional>
#include <iterator>
#include <thread>

#include "attacks/async_adversary.hpp"
#include "common/log.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"

namespace kshot::fleet {

const char* target_state_name(TargetState s) {
  switch (s) {
    case TargetState::kPending: return "PENDING";
    case TargetState::kFetching: return "FETCHING";
    case TargetState::kStaged: return "STAGED";
    case TargetState::kApplied: return "APPLIED";
    case TargetState::kFailed: return "FAILED";
    case TargetState::kRolledBack: return "ROLLED_BACK";
    case TargetState::kQuarantined: return "QUARANTINED";
  }
  return "?";
}

LatencyPercentiles percentiles_of(std::vector<double> samples) {
  LatencyPercentiles p;
  if (samples.empty()) return p;
  std::sort(samples.begin(), samples.end());
  p.p50 = percentile_sorted(samples, 50);
  p.p95 = percentile_sorted(samples, 95);
  p.p99 = percentile_sorted(samples, 99);
  return p;
}

double modeled_makespan_us(const FleetReport& report, u32 jobs) {
  jobs = std::max<u32>(1, jobs);
  double total = 0;
  u32 waves = report.waves_run;
  for (u32 w = 0; w < waves; ++w) {
    std::vector<double> workers(jobs, 0.0);
    for (const TargetResult& r : report.results) {
      if (r.wave != w || r.state == TargetState::kPending) continue;
      auto slot = std::min_element(workers.begin(), workers.end());
      *slot += r.e2e_us;
    }
    total += *std::max_element(workers.begin(), workers.end());
  }
  return total;
}

FleetController::FleetController(FleetOptions opts)
    : opts_(std::move(opts)) {
  if (opts_.jobs == 0) opts_.jobs = 1;
  // resolve_case also understands synthesized SYNTH-* ids (regenerated from
  // the id alone); a failed lookup is reported by boot_fleet.
  auto resolved = cve::resolve_case(opts_.cve_id);
  if (resolved) case_ = *resolved;
}

FleetController::~FleetController() = default;

u64 FleetController::target_seed(u32 i) const {
  return opts_.base_seed + 0x9E3779B97F4A7C15ull * (i + 1);
}

testbed::Testbed* FleetController::target(u32 i) {
  return i < targets_.size() ? targets_[i].get() : nullptr;
}

Status FleetController::boot_fleet() {
  if (booted_) return Status::ok();
  if (!opts_.batch_cve_ids.empty()) {
    auto batch = cve::combine_cases(opts_.batch_cve_ids);
    if (!batch) return batch.status();
    auto parts = cve::batch_part_cases(opts_.batch_cve_ids);
    if (!parts) return parts.status();
    case_ = batch->merged;
    opts_.cve_id = case_.id;
    batch_parts_ = std::move(*parts);
  } else if (case_.id != opts_.cve_id) {
    return Status{Errc::kNotFound, "unknown CVE id: " + opts_.cve_id};
  }
  server_ = std::make_unique<netsim::PatchServer>(
      nullptr, opts_.base_seed ^ 0xF1EE7, &metrics_);
  server_->set_prep_jobs(opts_.prep_jobs);
  // Batched mode: announce each per-CVE source alongside the merged case
  // (which Testbed::boot registers); the parts share the merged kernel, so
  // their pre images all land on the same server-side build-cache entries.
  for (const cve::CveCase& p : batch_parts_) {
    server_->add_patch({p.id, p.kernel, p.pre_source, p.post_source});
  }
  if (opts_.capture_trace) {
    server_->set_trace(&shared_trace_);
    target_traces_.resize(opts_.targets);
    for (u32 i = 0; i < opts_.targets; ++i) {
      target_traces_[i] = std::make_unique<obs::TraceRecorder>();
    }
  }
  targets_.resize(opts_.targets);
  std::vector<Status> boot_status(opts_.targets, Status::ok());

  parallel_for(opts_.targets, opts_.jobs, [&](u32 i) {
    testbed::TestbedOptions topts;
    topts.seed = target_seed(i);
    topts.shared_server = server_.get();
    topts.workload_threads = opts_.workload_threads;
    topts.cpus = opts_.cpus;
    topts.metrics = &metrics_;
    if (opts_.capture_trace) {
      topts.trace = target_traces_[i].get();
      topts.trace_target = i;
    }
    auto it = opts_.target_fault_plans.find(i);
    if (it != opts_.target_fault_plans.end()) {
      topts.fault_plan = it->second;
    } else if (opts_.fault_plan) {
      topts.fault_plan = opts_.fault_plan;
    }
    topts.fault_seed = topts.seed ^ 0xFA017;
    topts.retry_policy = opts_.retry_policy;
    auto tb = testbed::Testbed::boot(case_, std::move(topts));
    if (!tb) {
      boot_status[i] = tb.status();
      return;
    }
    // Batched mode: each part's exploit syscall must be reachable for the
    // per-part health probes (the merged case only wires parts[0]'s).
    for (const cve::CveCase& p : batch_parts_) {
      Status st = (*tb)->kernel().register_syscall(p.syscall_nr,
                                                   p.entry_function);
      if (!st.is_ok()) {
        boot_status[i] = st;
        return;
      }
    }
    targets_[i] = std::move(*tb);
  });

  for (const Status& st : boot_status) {
    if (!st.is_ok()) return st;
  }
  booted_ = true;
  return Status::ok();
}

bool FleetController::health_check(testbed::Testbed& t,
                                   TargetResult& out) const {
  // In batched mode every part's fix must hold; otherwise just the case's.
  std::vector<const cve::CveCase*> probes;
  if (batch_parts_.empty()) {
    probes.push_back(&case_);
  } else {
    for (const cve::CveCase& p : batch_parts_) probes.push_back(&p);
  }
  cve::ProbeFn probe_fn = testbed::prober(t);
  for (u32 probe = 0; probe < opts_.rollout.health_probes; ++probe) {
    for (const cve::CveCase* c : probes) {
      auto rep = cve::probe_case(*c, probe_fn, /*expect_fixed=*/true);
      if (!rep) {
        out.detail = "health probe [" + c->id + "]: " +
                     rep.status().message();
        return false;
      }
      if (!rep->detail.empty()) {
        out.detail = "health " + rep->detail;
        return false;
      }
    }
  }
  return true;
}

void FleetController::rollback_target(u32 index, TargetResult& out,
                                      const char* why) {
  testbed::Testbed& t = *targets_[index];
  auto rb = t.kshot().rollback();
  if (rb.is_ok() && rb->success) {
    out.state = TargetState::kRolledBack;
    out.detail = why;
  } else {
    out.detail = std::string(why) + "; rollback FAILED";
  }
}

void FleetController::patch_one(u32 index, u32 wave, TargetResult& out) {
  testbed::Testbed& t = *targets_[index];
  out.index = index;
  out.seed = target_seed(index);
  out.wave = wave;

  obs::TraceRecorder* tr =
      index < target_traces_.size() ? target_traces_[index].get() : nullptr;

  // Hostile fleet: each target gets its own deterministic attack schedule,
  // derived from the campaign-wide adversary seed and the target seed.
  std::unique_ptr<attacks::AsyncAdversary> adversary;
  if (opts_.adversary_seed) {
    adversary = std::make_unique<attacks::AsyncAdversary>(
        t.machine(), t.kshot(), t.layout(),
        attacks::AdversarySchedule::generate(*opts_.adversary_seed ^
                                             target_seed(index)));
    adversary->attach();
  }

  auto note_detections = [&out](const core::DetectionReport& d) {
    for (const auto& ev : d.events) {
      ++out.detection_events;
      if (!out.detections.empty()) out.detections += ",";
      out.detections += core::detection_class_name(ev.cls);
    }
  };

  // One full pipeline run: mirror the real phase transitions into the
  // per-target state, accumulate resilience/latency, health-check on
  // success. Returns true only with proof of health (applied + probed).
  auto attempt = [&]() -> bool {
    t.kshot().set_phase_observer([&out, &t, tr, index](core::PatchPhase p) {
      switch (p) {
        case core::PatchPhase::kFetching:
          out.state = TargetState::kFetching;
          break;
        case core::PatchPhase::kStaged:
          out.state = TargetState::kStaged;
          break;
        case core::PatchPhase::kApplied:
          out.state = TargetState::kApplied;
          break;
        case core::PatchPhase::kFailed:
          out.state = TargetState::kFailed;
          break;
      }
      if (tr) {
        tr->instant("fleet", target_state_name(out.state), index,
                    t.machine().cycles());
      }
    });
    double link_before = t.channel().total_latency_us();
    auto rep = batch_parts_.empty()
                   ? t.kshot().live_patch(case_.id)
                   : t.kshot().live_patch_batch(opts_.batch_cve_ids);
    t.kshot().clear_phase_observer();
    double link_us = t.channel().total_latency_us() - link_before;

    if (!rep.is_ok()) {
      // Unrecoverable transport failure (e.g. fetch retries exhausted):
      // the per-attempt counters died with the report; the status says
      // why. Detections survive in the pipeline — harvest them so the
      // quarantine machine still sees the evidence.
      out.state = TargetState::kFailed;
      out.detail = rep.status().to_string();
      note_detections(t.kshot().take_detections());
      return false;
    }
    out.resilience.fetch_attempts += rep->resilience.fetch_attempts;
    out.resilience.apply_attempts += rep->resilience.apply_attempts;
    out.resilience.session_aborts += rep->resilience.session_aborts;
    out.resilience.backoff_us += rep->resilience.backoff_us;
    out.resilience.retries_exhausted = rep->resilience.retries_exhausted;
    note_detections(rep->detections);
    // Failed rounds still burned real (modeled) time — charge them so the
    // quarantine recovery cost is honest, not just the winning round.
    out.downtime_us += rep->smm.modeled_total_us;
    out.downtime_cycles += rep->downtime_cycles;
    out.rendezvous_cycles += rep->rendezvous_cycles;
    out.handler_cycles += rep->handler_cycles;
    out.resume_cycles += rep->resume_cycles;
    out.e2e_us += link_us + rep->resilience.backoff_us +
                  rep->smm.modeled_total_us;
    if (!rep->success) {
      out.state = TargetState::kFailed;
      out.detail = std::string("smm: ") +
                   core::smm_status_name(rep->smm_status);
      return false;
    }
    out.state = TargetState::kApplied;

    out.healthy = health_check(t, out);
    if (!out.healthy) {
      rollback_target(index, out, "health check failed");
      return false;
    }
    if (opts_.verify_applied_inventory) {
      auto inv = t.kshot().query_applied();
      std::vector<const std::string*> want;
      if (batch_parts_.empty()) {
        want.push_back(&case_.id);
      } else {
        for (const std::string& id : opts_.batch_cve_ids) want.push_back(&id);
      }
      for (const std::string* id : want) {
        bool found = false;
        if (inv.is_ok()) {
          for (const auto& u : inv->units) {
            if (u.id == *id) found = true;
          }
        }
        if (!found) {
          out.healthy = false;
          std::string why =
              "inventory probe: applied set missing [" + *id + "]";
          rollback_target(index, out, why.c_str());
          return false;
        }
      }
    }
    return true;
  };

  bool ok = attempt();

  // Quarantine state machine: detections without proof of health fence the
  // target; each recovery round charges escalating modeled backoff and
  // retries against a freshly fetched envelope (the attack schedule's
  // actions fire once, so a transient attacker loses the race eventually;
  // a persistent one keeps the target fenced).
  if (!ok && out.detection_events > 0) {
    const u32 limit = opts_.rollout.quarantine_retry_limit;
    for (u32 round = 0; round < limit && !ok; ++round) {
      ++out.quarantine_rounds;
      double backoff =
          RolloutPlan::kQuarantineBackoffUs * static_cast<double>(1u << round);
      out.resilience.backoff_us += backoff;
      out.e2e_us += backoff;
      if (tr) {
        tr->instant("fleet", "quarantine_retry", index, t.machine().cycles());
      }
      ok = attempt();
    }
    if (ok) {
      out.recovered = true;
    } else {
      out.state = TargetState::kQuarantined;
      out.detail = out.detail.empty()
                       ? "detections without proof of health"
                       : out.detail + "; quarantined";
    }
  }

  if (adversary) adversary->detach();
}

Result<FleetReport> FleetController::run_campaign() {
  KSHOT_RETURN_IF_ERROR(boot_fleet());

  FleetReport report;
  report.cve_id = opts_.cve_id;
  report.targets = opts_.targets;
  report.jobs = opts_.jobs;
  report.cpus = opts_.cpus;
  report.results.resize(opts_.targets);
  for (u32 i = 0; i < opts_.targets; ++i) {
    report.results[i].index = i;
    report.results[i].seed = target_seed(i);
  }

  const RolloutPlan& plan = opts_.rollout;
  u32 done = 0;
  u32 wave_idx = 0;
  // Current full-wave width; quarantines halve it (degraded mode).
  u32 wave_cap = std::max<u32>(1, plan.wave);
  while (done < opts_.targets) {
    u32 wave_size = wave_idx == 0 ? std::max<u32>(1, plan.canary) : wave_cap;
    wave_size = std::min(wave_size, opts_.targets - done);

    if (opts_.capture_trace) {
      shared_trace_.instant("fleet", "wave_start", obs::kSharedTarget, 0,
                            {{"wave", std::to_string(wave_idx)},
                             {"size", std::to_string(wave_size)}});
    }
    parallel_for(wave_size, opts_.jobs, [&](u32 k) {
      patch_one(done + k, wave_idx, report.results[done + k]);
    });
    ++report.waves_run;

    u32 failures = 0;
    u32 wave_quarantined = 0;
    for (u32 k = 0; k < wave_size; ++k) {
      TargetState s = report.results[done + k].state;
      if (s == TargetState::kFailed || s == TargetState::kRolledBack) {
        ++failures;
      }
      if (s == TargetState::kQuarantined) ++wave_quarantined;
    }
    // Quarantines are judged against their own bound: too many fenced
    // targets in one wave means an adversary owns a fleet-wide layer, and
    // pushing more waves at it only widens the blast radius.
    double quarantine_rate = static_cast<double>(wave_quarantined) /
                             static_cast<double>(wave_size);
    if (wave_quarantined > 0 && quarantine_rate >= plan.max_quarantine_rate) {
      if (plan.rollback_failed_wave) {
        for (u32 k = 0; k < wave_size; ++k) {
          TargetResult& r = report.results[done + k];
          if (r.state == TargetState::kApplied) {
            rollback_target(done + k, r, "wave aborted (quarantine)");
          }
        }
      }
      report.aborted = true;
      report.abort_wave = wave_idx;
      KSHOT_LOG(kWarn, "fleet")
          << "rollout aborted at wave " << wave_idx << " ("
          << wave_quarantined << "/" << wave_size << " quarantined)";
      done += wave_size;
      break;  // everything after this wave stays PENDING
    }
    if (wave_quarantined > 0 && plan.degrade_on_quarantine) {
      wave_cap = std::max<u32>(1, wave_cap / 2);
      if (!report.degraded) {
        report.degraded = true;
        report.degraded_from_wave = wave_idx + 1;
      }
      KSHOT_LOG(kInfo, "fleet")
          << "degraded mode: wave width now " << wave_cap << " after "
          << wave_quarantined << " quarantine(s) in wave " << wave_idx;
    }
    double failure_rate =
        static_cast<double>(failures) / static_cast<double>(wave_size);
    if (failures > 0 && failure_rate >= plan.abort_failure_rate) {
      if (plan.rollback_failed_wave) {
        for (u32 k = 0; k < wave_size; ++k) {
          TargetResult& r = report.results[done + k];
          if (r.state == TargetState::kApplied) {
            rollback_target(done + k, r, "wave aborted");
          }
        }
      }
      report.aborted = true;
      report.abort_wave = wave_idx;
      KSHOT_LOG(kWarn, "fleet")
          << "rollout aborted at wave " << wave_idx << " ("
          << failures << "/" << wave_size << " failures)";
      done += wave_size;
      break;  // everything after this wave stays PENDING
    }
    done += wave_size;
    ++wave_idx;
  }

  // ---- Aggregate, strictly in target-index order ---------------------------
  std::vector<double> downtime;
  std::vector<double> e2e;
  for (const TargetResult& r : report.results) {
    switch (r.state) {
      case TargetState::kApplied:
        ++report.applied;
        downtime.push_back(r.downtime_us);
        e2e.push_back(r.e2e_us);
        break;
      case TargetState::kFailed:
        ++report.failed;
        break;
      case TargetState::kRolledBack:
        ++report.rolled_back;
        break;
      case TargetState::kQuarantined:
        ++report.quarantined;
        break;
      default:
        ++report.pending;
        break;
    }
    if (r.recovered) ++report.recovered;
    report.total_detections += r.detection_events;
    report.total_fetch_attempts += r.resilience.fetch_attempts;
    report.total_apply_attempts += r.resilience.apply_attempts;
    // Batched mode fetches once per part, so only attempts beyond one per
    // package count as retries.
    u64 base_fetches =
        batch_parts_.empty() ? 1 : static_cast<u64>(batch_parts_.size());
    if (r.resilience.fetch_attempts > base_fetches) {
      report.total_retries += r.resilience.fetch_attempts - base_fetches;
    }
    if (r.resilience.apply_attempts > 1) {
      report.total_retries += r.resilience.apply_attempts - 1;
    }
    report.total_session_aborts += r.resilience.session_aborts;
    report.total_downtime_cycles += r.downtime_cycles;
    report.total_rendezvous_cycles += r.rendezvous_cycles;
    report.total_handler_cycles += r.handler_cycles;
    report.total_resume_cycles += r.resume_cycles;
  }
  report.downtime_us = percentiles_of(std::move(downtime));
  report.e2e_us = percentiles_of(std::move(e2e));
  report.cache = server_->cache_stats();
  report.cache_hit_rate = report.cache.patchset_hit_rate();
  report.metrics = metrics_.snapshot();

  if (opts_.capture_trace) {
    // Per-target recorders are written serially (one worker at a time per
    // target), so their event order is already deterministic; only the
    // shared recorder's racy append order needs canonicalizing. Wall time
    // is excluded so the export is byte-identical across --jobs levels.
    std::vector<obs::TraceEvent> events;
    for (const auto& rec : target_traces_) {
      auto ev = rec->snapshot();
      events.insert(events.end(), std::make_move_iterator(ev.begin()),
                    std::make_move_iterator(ev.end()));
    }
    auto shared = obs::canonicalize(shared_trace_.snapshot());
    events.insert(events.end(), std::make_move_iterator(shared.begin()),
                  std::make_move_iterator(shared.end()));
    obs::ChromeTraceOptions copts;
    copts.include_wall = false;
    report.trace_json = obs::to_chrome_trace(events, copts);
  }
  return report;
}

std::string FleetReport::to_string() const {
  std::string out;
  char line[256];
  auto append = [&](const char* fmt, auto... args) {
    std::snprintf(line, sizeof(line), fmt, args...);
    out += line;
  };
  append("fleet campaign %s: %u targets, jobs=%u, cpus=%u, %u wave(s)\n",
         cve_id.c_str(), targets, jobs, cpus, waves_run);
  append("  applied %u  failed %u  rolled_back %u  quarantined %u  "
         "pending %u%s\n",
         applied, failed, rolled_back, quarantined, pending,
         aborted ? "  [ABORTED]" : "");
  if (aborted) append("  aborted at wave %u\n", abort_wave);
  if (quarantined > 0 || recovered > 0 || total_detections > 0) {
    append("  quarantine: %u fenced  %u recovered  %llu detection(s)%s\n",
           quarantined, recovered,
           static_cast<unsigned long long>(total_detections),
           degraded ? "  [DEGRADED]" : "");
  }
  if (degraded) append("  degraded from wave %u\n", degraded_from_wave);
  append("  attempts: fetch %llu  apply %llu  retries %llu  aborts %llu\n",
         static_cast<unsigned long long>(total_fetch_attempts),
         static_cast<unsigned long long>(total_apply_attempts),
         static_cast<unsigned long long>(total_retries),
         static_cast<unsigned long long>(total_session_aborts));
  append("  patchset cache: %llu miss / %llu hit (%.1f%%)  image cache: "
         "%llu miss / %llu hit\n",
         static_cast<unsigned long long>(cache.patchset_misses),
         static_cast<unsigned long long>(cache.patchset_hits),
         100.0 * cache_hit_rate,
         static_cast<unsigned long long>(cache.image_misses),
         static_cast<unsigned long long>(cache.image_hits));
  append("  smm downtime us: p50 %.3f  p95 %.3f  p99 %.3f\n",
         downtime_us.p50, downtime_us.p95, downtime_us.p99);
  append("  smm cycles: rendezvous %llu + handler %llu + resume %llu = %llu\n",
         static_cast<unsigned long long>(total_rendezvous_cycles),
         static_cast<unsigned long long>(total_handler_cycles),
         static_cast<unsigned long long>(total_resume_cycles),
         static_cast<unsigned long long>(total_downtime_cycles));
  append("  e2e latency us:  p50 %.3f  p95 %.3f  p99 %.3f\n", e2e_us.p50,
         e2e_us.p95, e2e_us.p99);
  for (const TargetResult& r : results) {
    append("  [%3u] wave %u seed %016llx %-11s %s  fetch %u apply %u  "
           "downtime %.3f  e2e %.3f%s%s\n",
           r.index, r.wave, static_cast<unsigned long long>(r.seed),
           target_state_name(r.state),
           r.state == TargetState::kApplied
               ? (r.healthy ? "healthy  " : "UNHEALTHY")
               : "-        ",
           r.resilience.fetch_attempts, r.resilience.apply_attempts,
           r.downtime_us, r.e2e_us, r.detail.empty() ? "" : "  # ",
           r.detail.c_str());
    if (r.detection_events > 0) {
      append("        detections[%u]: %s  (recovery rounds %u%s)\n",
             r.detection_events, r.detections.c_str(), r.quarantine_rounds,
             r.recovered ? ", recovered" : "");
    }
  }
  return out;
}

}  // namespace kshot::fleet
