// Common reporting surface for the baseline kernel live patchers KShot is
// compared against in Tables IV/V: kpatch (function-level, OS-trusted),
// KUP (whole-kernel replacement + checkpoint/restore) and KARMA
// (instruction-level in-place). All of them execute with *kernel* privilege
// and therefore sit inside the threat model KShot removes.
#pragma once

#include <string>

#include "common/status.hpp"
#include "common/types.hpp"

namespace kshot::baselines {

struct BaselineReport {
  std::string id;
  bool success = false;
  std::string detail;
  /// Virtual cycles the OS (all threads) was paused while applying.
  u64 downtime_cycles = 0;
  /// Extra memory the mechanism consumed (trampoline area, checkpoint
  /// buffers, staged kernel image...).
  size_t memory_overhead_bytes = 0;
  /// Trusted code base: for in-kernel patchers, the whole kernel text plus
  /// the patcher itself.
  size_t tcb_bytes = 0;
};

}  // namespace kshot::baselines
