// KARMA-style patcher: adaptive instruction-level patching from a kernel
// module. Replaces the vulnerable function's instructions *in place*, which
// is tiny and fast but only works when the replacement fits in the original
// footprint and nothing else (globals, added functions) changes — the
// limitations Table V records ("Instruction" granularity, "<5us small
// patches", fails on data-structure changes).
#pragma once

#include "baselines/baseline.hpp"
#include "kernel/scheduler.hpp"
#include "patchtool/patch.hpp"

namespace kshot::baselines {

class KarmaSim {
 public:
  KarmaSim(kernel::Kernel& k, kernel::Scheduler& sched);

  Result<BaselineReport> apply(const patchtool::PatchSet& set);

 private:
  kernel::Kernel& kernel_;
  kernel::Scheduler& sched_;
};

}  // namespace kshot::baselines
