// KUP-style patcher: replaces the *entire* kernel image and carries the
// applications across with checkpoint/restore (Criu analogue). Handles
// arbitrary patches — including data-structure layout changes — at the price
// of large memory overhead and long downtime, and it depends on kexec, a
// kernel facility with its own CVE history (paper §VI-D cites
// CVE-2015-7837: unsigned kernels loadable via kexec).
#pragma once

#include <functional>

#include "baselines/baseline.hpp"
#include "kcc/image.hpp"
#include "kernel/scheduler.hpp"

namespace kshot::baselines {

class KupSim {
 public:
  KupSim(kernel::Kernel& k, kernel::Scheduler& sched);

  /// Kexec-style hook: kernel-privileged code may substitute the image that
  /// actually gets booted (models the unsigned-kexec attack).
  using KexecHook = std::function<void(kcc::KernelImage& image)>;
  void set_kexec_hook(KexecHook h) { hook_ = std::move(h); }

  /// Checkpoints userspace, swaps in `post` as the running kernel, restores
  /// userspace, restarting in-flight syscalls.
  Result<BaselineReport> apply(const std::string& id,
                               kcc::KernelImage post);

 private:
  kernel::Kernel& kernel_;
  kernel::Scheduler& sched_;
  KexecHook hook_;
};

}  // namespace kshot::baselines
