// kpatch-style live patcher: runs as kernel code, uses stop_machine plus an
// activeness check, allocates trampoline targets from the kernel module
// area, and rewrites function entries through the ftrace pad. Everything it
// does is observable and corruptible by other kernel-privileged code — the
// `pre_write_hook` models a hijacked ftrace/patching path (paper §VI-D:
// "the integrity of patches can be easily compromised by attacks which have
// the kernel access privilege").
#pragma once

#include <functional>

#include "baselines/baseline.hpp"
#include "kernel/scheduler.hpp"
#include "patchtool/patch.hpp"

namespace kshot::baselines {

class KpatchSim {
 public:
  KpatchSim(kernel::Kernel& k, kernel::Scheduler& sched);

  /// Kernel-privileged hook on every patch byte-write (rootkit attack
  /// surface; nullptr when the kernel is clean).
  using WriteHook = std::function<void(Bytes& code)>;
  void set_pre_write_hook(WriteHook h) { hook_ = std::move(h); }

  /// Applies a (plaintext, kernel-resident) patch set.
  Result<BaselineReport> apply(const patchtool::PatchSet& set);

  /// Undo the most recent apply.
  Status revert_last();

 private:
  kernel::Kernel& kernel_;
  kernel::Scheduler& sched_;
  WriteHook hook_;
  u64 module_cursor_ = 0;

  struct Applied {
    u64 taddr = 0;
    u16 ftrace_off = 0;
    std::array<u8, 5> original{};
  };
  std::vector<Applied> last_applied_;
};

}  // namespace kshot::baselines
