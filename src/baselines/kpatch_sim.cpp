#include "baselines/kpatch_sim.hpp"

#include "common/byte_io.hpp"
#include "isa/reloc.hpp"

namespace kshot::baselines {

namespace {
// Modeled stop_machine cost: every online CPU spins until the patch is in
// place; we charge a quantum's worth of cycles per live thread.
constexpr u64 kStopMachineCyclesPerThread = 64 * 4;
}  // namespace

KpatchSim::KpatchSim(kernel::Kernel& k, kernel::Scheduler& sched)
    : kernel_(k), sched_(sched) {}

Result<BaselineReport> KpatchSim::apply(const patchtool::PatchSet& set) {
  auto& m = kernel_.machine();
  const auto& lay = kernel_.layout();
  const auto mode = machine::AccessMode::normal();  // kernel privilege

  BaselineReport rep;
  rep.id = set.id;
  rep.tcb_bytes = kernel_.image().text.size() + 32 * 1024;  // kernel + kpatch
  u64 cycles_before = m.cycles();

  // stop_machine: pause everything, then the activeness check — no thread
  // may be suspended inside a function we are about to redirect.
  m.charge_cycles(kStopMachineCyclesPerThread * sched_.thread_count());
  for (const auto& p : set.patches) {
    if (p.taddr == 0) continue;
    const kcc::Symbol* sym = kernel_.image().symbol_at(p.taddr);
    u64 hi = sym ? sym->addr + sym->size : p.taddr + p.ftrace_off + 5;
    if (sched_.any_thread_in_range(p.taddr, hi)) {
      rep.detail = "activeness check failed: thread inside " + p.name;
      rep.downtime_cycles = m.cycles() - cycles_before;
      return rep;
    }
  }

  // Lay the replacement functions out in the module area and fix up their
  // external branches (kpatch links its patch module in-kernel).
  struct Placed {
    const patchtool::FunctionPatch* p;
    u64 addr;
    Bytes code;
  };
  std::vector<Placed> placed;
  u64 base = lay.module_base;
  u64 cursor = module_cursor_;
  for (const auto& p : set.patches) {
    u64 aligned = (cursor + 15) & ~u64{15};
    if (aligned + p.code.size() > lay.module_size) {
      rep.detail = "module area exhausted";
      return rep;
    }
    placed.push_back({&p, base + aligned, p.code});
    cursor = aligned + p.code.size();
  }
  for (auto& pl : placed) {
    for (const auto& rel : pl.p->relocs) {
      u64 target;
      if (rel.patch_index >= 0) {
        const auto& callee = placed[static_cast<size_t>(rel.patch_index)];
        target = callee.addr + callee.p->ftrace_off;
      } else {
        target = rel.target;
      }
      isa::retarget_rel32(MutByteSpan(pl.code), rel.offset, pl.addr, target);
    }
  }

  // Global edits, then code writes (all with plain kernel privilege).
  for (const auto& p : set.patches) {
    for (const auto& v : p.var_edits) {
      Status st = m.mem().write_u64(v.addr, v.value, mode);
      if (!st.is_ok()) {
        rep.detail = "var edit failed: " + st.message();
        return rep;
      }
    }
  }

  last_applied_.clear();
  for (auto& pl : placed) {
    // The hijackable write path: a rootkit hook sees (and may corrupt) the
    // patch bytes before they reach memory — kpatch has no way to notice.
    Bytes code = pl.code;
    if (hook_) hook_(code);
    Status st = m.mem().write(pl.addr, code, mode);
    if (!st.is_ok()) {
      rep.detail = "module write failed: " + st.message();
      return rep;
    }

    if (pl.p->taddr != 0) {
      Applied a;
      a.taddr = pl.p->taddr;
      a.ftrace_off = pl.p->ftrace_off;
      u64 jmp_addr = a.taddr + a.ftrace_off;
      m.mem().read(jmp_addr, MutByteSpan(a.original.data(), 5), mode);

      Bytes jmp;
      jmp.push_back(0xE9);
      u8 rel[4];
      i64 disp = static_cast<i64>(pl.addr + pl.p->ftrace_off) -
                 static_cast<i64>(jmp_addr + 5);
      store_u32(rel, static_cast<u32>(static_cast<i32>(disp)));
      jmp.insert(jmp.end(), rel, rel + 4);
      if (hook_) hook_(jmp);  // the trampoline write is hijackable too
      st = m.mem().write(jmp_addr, jmp, mode);
      if (!st.is_ok()) {
        rep.detail = "trampoline write failed: " + st.message();
        return rep;
      }
      last_applied_.push_back(a);
    }
    m.charge_cycles(code.size() * 2);  // in-kernel memcpy cost
  }

  rep.memory_overhead_bytes = cursor - module_cursor_;
  module_cursor_ = cursor;
  rep.success = true;
  rep.downtime_cycles = m.cycles() - cycles_before;
  return rep;
}

Status KpatchSim::revert_last() {
  const auto mode = machine::AccessMode::normal();
  if (last_applied_.empty()) {
    return {Errc::kFailedPrecondition, "nothing to revert"};
  }
  for (auto it = last_applied_.rbegin(); it != last_applied_.rend(); ++it) {
    KSHOT_RETURN_IF_ERROR(kernel_.machine().mem().write(
        it->taddr + it->ftrace_off, ByteSpan(it->original.data(), 5), mode));
  }
  last_applied_.clear();
  return Status::ok();
}

}  // namespace kshot::baselines
