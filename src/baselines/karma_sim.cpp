#include "baselines/karma_sim.hpp"

#include "isa/reloc.hpp"

namespace kshot::baselines {

KarmaSim::KarmaSim(kernel::Kernel& k, kernel::Scheduler& sched)
    : kernel_(k), sched_(sched) {}

Result<BaselineReport> KarmaSim::apply(const patchtool::PatchSet& set) {
  auto& m = kernel_.machine();
  const auto mode = machine::AccessMode::normal();

  BaselineReport rep;
  rep.id = set.id;
  rep.tcb_bytes = kernel_.image().text.size() + 16 * 1024;
  u64 cycles_before = m.cycles();

  // Feasibility: in-place only.
  for (const auto& p : set.patches) {
    if (p.taddr == 0) {
      rep.detail = "patch adds a new function (not in-place patchable)";
      return rep;
    }
    if (!p.var_edits.empty()) {
      rep.detail = "patch changes data structures / globals";
      return rep;
    }
    const kcc::Symbol* sym = kernel_.image().symbol_at(p.taddr);
    if (sym == nullptr || p.code.size() > sym->size) {
      rep.detail = "replacement larger than original function: " + p.name;
      return rep;
    }
  }

  for (const auto& p : set.patches) {
    const kcc::Symbol* sym = kernel_.image().symbol_at(p.taddr);
    if (sched_.any_thread_in_range(sym->addr, sym->addr + sym->size)) {
      rep.detail = "activeness check failed: thread inside " + p.name;
      rep.downtime_cycles = m.cycles() - cycles_before;
      return rep;
    }
  }

  for (const auto& p : set.patches) {
    // Fix up external branches for execution at taddr instead of mem_X.
    Bytes code = p.code;
    for (const auto& rel : p.relocs) {
      if (rel.patch_index >= 0) {
        // Intra-set call: the callee is also patched in place, so the call
        // target is simply the callee's original entry.
        const auto& callee = set.patches[static_cast<size_t>(rel.patch_index)];
        if (callee.taddr == 0) {
          rep.detail = "intra-set call to added function";
          return rep;
        }
        isa::retarget_rel32(MutByteSpan(code), rel.offset, p.taddr,
                            callee.taddr + callee.ftrace_off);
      } else {
        isa::retarget_rel32(MutByteSpan(code), rel.offset, p.taddr,
                            rel.target);
      }
    }
    Status st = m.mem().write(p.taddr, code, mode);
    if (!st.is_ok()) {
      rep.detail = "in-place write failed: " + st.message();
      return rep;
    }
    // Pad any leftover original bytes with nops so stale tail instructions
    // cannot be reached.
    const kcc::Symbol* sym = kernel_.image().symbol_at(p.taddr);
    if (code.size() < sym->size) {
      Bytes nops(sym->size - code.size(), 0x90);
      m.mem().write(p.taddr + code.size(), nops, mode);
    }
    m.charge_cycles(code.size() * 2);
  }

  rep.success = true;
  rep.downtime_cycles = m.cycles() - cycles_before;
  rep.memory_overhead_bytes = 0;  // in place
  return rep;
}

}  // namespace kshot::baselines
