#include "baselines/kup_sim.hpp"

namespace kshot::baselines {

namespace {
// Checkpoint/restore costs ~4 cycles/byte each way (Criu-style serialize +
// deserialize), and the kernel swap is a straight memcpy.
constexpr double kCheckpointCyclesPerByte = 4.0;
constexpr double kSwapCyclesPerByte = 1.0;
}  // namespace

KupSim::KupSim(kernel::Kernel& k, kernel::Scheduler& sched)
    : kernel_(k), sched_(sched) {}

Result<BaselineReport> KupSim::apply(const std::string& id,
                                     kcc::KernelImage post) {
  auto& m = kernel_.machine();
  const auto& lay = kernel_.layout();
  const auto mode = machine::AccessMode::normal();

  BaselineReport rep;
  rep.id = id;
  rep.tcb_bytes = kernel_.image().text.size() + 96 * 1024;  // kernel + kup
  u64 cycles_before = m.cycles();

  if (post.text.size() > lay.text_max) {
    rep.detail = "post image too large";
    return rep;
  }

  // 1. Checkpoint userspace: copy every live thread's stack + context.
  size_t ckpt_bytes = sched_.checkpointable_bytes();
  Bytes checkpoint;
  checkpoint.reserve(ckpt_bytes);
  for (size_t tid = 0; tid < sched_.thread_count(); ++tid) {
    auto stack = m.mem().read_bytes(
        lay.stacks_base + tid * lay.stack_size, lay.stack_size, mode);
    if (stack) {
      checkpoint.insert(checkpoint.end(), stack->begin(), stack->end());
    }
  }
  m.charge_cycles(
      static_cast<u64>(kCheckpointCyclesPerByte * checkpoint.size()));

  // 2. kexec the new kernel. The hook models a compromised kexec path that
  //    swaps in an attacker-controlled image (CVE-2015-7837 analogue).
  if (hook_) hook_(post);
  Status st = m.mem().write(lay.text_base, post.text, mode);
  if (!st.is_ok()) {
    rep.detail = "kernel swap failed: " + st.message();
    return rep;
  }
  Bytes data = post.data_image();
  if (!data.empty()) {
    st = m.mem().write(lay.data_base, data, mode);
    if (!st.is_ok()) {
      rep.detail = "data swap failed: " + st.message();
      return rep;
    }
  }
  m.charge_cycles(static_cast<u64>(
      kSwapCyclesPerByte * (post.text.size() + data.size())));

  // The kernel object now describes the new image (symbols moved!).
  kernel_.replace_image(std::move(post));

  // 3. Restore userspace and restart every in-flight syscall: saved
  //    kernel-mode contexts reference the old image and cannot resume.
  m.charge_cycles(
      static_cast<u64>(kCheckpointCyclesPerByte * checkpoint.size()));
  sched_.restart_in_flight_syscalls();

  rep.success = true;
  rep.downtime_cycles = m.cycles() - cycles_before;
  rep.memory_overhead_bytes = checkpoint.size() + kernel_.image().text.size();
  return rep;
}

}  // namespace kshot::baselines
