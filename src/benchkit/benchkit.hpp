// Deterministic bench-regression harness behind `kshot-sim bench`.
//
// Two canonical JSON documents are produced per run:
//
//   BENCH_table3.json  patch-size sweep (the Table III scenario): modeled
//                      SMM downtime by payload size, single + batched.
//   BENCH_table4.json  batched-session matrix (the Table IV batched
//                      variants): K-CVE sequential vs one batched SMM
//                      session, plus batched-fleet, adversary, planet-scale,
//                      and auto-CVE synthesis campaign rows.
//
// Everything in those documents is *modeled* (virtual-clock cycles, modeled
// microseconds, counters): for a fixed seed the bytes are identical at any
// --jobs level, so the files can be checked in as goldens and diffed by CI.
// Wall-clock timings are real and therefore noisy; they are emitted into
// separate *_wall.json sidecars that are never golden-compared or gated.
//
// gate_compare() is the regression gate: every numeric leaf of the current
// document must stay within `tolerance` (relative) of the checked-in
// baseline, and no baseline key may disappear. BenchOptions::cost_scale
// exists so tests can inflate the emitted modeled numbers and prove the
// gate actually trips.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace kshot::benchkit {

struct BenchOptions {
  u64 seed = 0x5EED;
  u32 jobs = 1;       // row-level worker pool (never changes the bytes)
  bool quick = false;  // CI profile: smaller sweep + fleet
  /// Multiplier applied to every modeled number at emission time. 1.0 in
  /// real runs; tests raise it to demonstrate the gate failing.
  double cost_scale = 1.0;
};

struct BenchResults {
  std::string table3_json;       // canonical, golden-comparable
  std::string table4_json;       // canonical, golden-comparable
  std::string table3_wall_json;  // wall-clock sidecar, never gated
  std::string table4_wall_json;  // wall-clock sidecar, never gated
};

/// Runs the full harness. Boots one testbed per scenario row; rows are
/// distributed over `jobs` workers and merged in row order.
Result<BenchResults> run_bench(const BenchOptions& opts);

/// Flattens a canonical bench JSON document into "path.to[2].leaf" -> value
/// for every numeric leaf (booleans and strings are skipped).
Result<std::map<std::string, double>> flatten_json(const std::string& json);

struct GateFinding {
  std::string key;
  double baseline = 0;
  double current = 0;
};

struct GateReport {
  std::vector<GateFinding> regressions;   // current > baseline * (1 + tol)
  std::vector<std::string> missing_keys;  // in baseline, absent in current
  /// Soft findings from the *_wall.json sidecars (wall_compare): printed as
  /// warnings, never fail the gate. Deliberately excluded from ok().
  std::vector<GateFinding> warnings;
  [[nodiscard]] bool ok() const {
    return regressions.empty() && missing_keys.empty();
  }
  [[nodiscard]] std::string to_string() const;
};

/// Compares every numeric leaf of `current` against `baseline`. Only cost
/// *increases* beyond the relative tolerance are regressions; improvements
/// pass (the baseline is refreshed by re-generating the goldens).
Result<GateReport> gate_compare(const std::string& baseline_json,
                                const std::string& current_json,
                                double tolerance);

/// Soft gate over the wall-clock sidecars: every numeric leaf of `current`
/// that exceeds its baseline by more than `tolerance` (relative) lands in
/// GateReport::warnings. Wall time is real and noisy, so these never fail
/// the gate (ok() stays true); they are surfaced with a distinct
/// "WALL WARNING" message so a >10% slowdown is visible in CI logs. Missing
/// sidecar keys are also warnings, not failures.
Result<GateReport> wall_compare(const std::string& baseline_json,
                                const std::string& current_json,
                                double tolerance = 0.10);

}  // namespace kshot::benchkit
