#include "benchkit/benchkit.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/parallel.hpp"
#include "cve/synth.hpp"
#include "fleet/fleet.hpp"
#include "fleetscale/fleetscale.hpp"
#include "testbed/testbed.hpp"

namespace kshot::benchkit {

namespace {

// ---- Canonical formatting -------------------------------------------------
// Every number in the golden-compared documents goes through these, so the
// byte representation is a pure function of the value.

std::string fmt(double v) {
  char b[64];
  std::snprintf(b, sizeof(b), "%.6f", v);
  return b;
}

std::string fmt(u64 v) {
  char b[32];
  std::snprintf(b, sizeof(b), "%llu", static_cast<unsigned long long>(v));
  return b;
}

u64 scaled(u64 v, double s) {
  if (s == 1.0) return v;
  return static_cast<u64>(static_cast<double>(v) * s + 0.5);
}

/// Minimal append-only JSON writer producing a stable, human-diffable
/// layout (two-space indent, keys in emission order).
class Json {
 public:
  void open_obj() {
    sep();
    pad();
    out_ += "{\n";
    ++depth_;
    fresh_ = true;
  }
  void close_obj() {
    --depth_;
    out_ += "\n";
    pad();
    out_ += "}";
    fresh_ = false;
  }
  void open_arr(const std::string& key) {
    sep();
    pad();
    out_ += "\"" + key + "\": [\n";
    ++depth_;
    fresh_ = true;
  }
  void close_arr() {
    --depth_;
    out_ += "\n";
    pad();
    out_ += "]";
    fresh_ = false;
  }
  void open_row() { open_obj(); }
  void close_row() { close_obj(); }
  void field(const std::string& key, const std::string& str_value) {
    field_raw(key, "\"" + str_value + "\"");
  }
  void field_raw(const std::string& key, const std::string& raw) {
    sep();
    pad();
    out_ += "\"" + key + "\": " + raw;
  }
  void field(const std::string& key, double v) { field_raw(key, fmt(v)); }
  void field(const std::string& key, u64 v) { field_raw(key, fmt(v)); }
  void field(const std::string& key, bool v) {
    field_raw(key, v ? "true" : "false");
  }
  std::string finish() { return out_ + "\n"; }

 private:
  void pad() { out_.append(static_cast<size_t>(depth_) * 2, ' '); }
  /// Separator before any new element: nothing right after an opener (it
  /// already ended with a newline), ",\n" between siblings.
  void sep() {
    if (out_.empty()) return;  // document root
    if (fresh_) {
      fresh_ = false;
    } else {
      out_ += ",\n";
    }
  }
  std::string out_;
  int depth_ = 0;
  bool fresh_ = true;
};

// ---- Scenario definitions -------------------------------------------------

std::vector<size_t> sweep_sizes(bool quick) {
  if (quick) return {64, 1024, 4096};
  return {64, 400, 4096, 40960, 409600};
}

/// sim-4.4 cases with pairwise-distinct functions — combinable into one
/// merged kernel for the batched legs.
const std::vector<std::string>& batchable_ids() {
  static const std::vector<std::string> kIds = {
      "CVE-2016-2543", "CVE-2016-4578", "CVE-2016-4580", "CVE-2016-5829",
      "CVE-2016-7916"};
  return kIds;
}

std::vector<u32> batch_ks(bool quick) {
  (void)quick;
  return {2, 5};  // K=5 backs the strictly-faster acceptance criterion
}

// ---- Table 3: patch-size sweep -------------------------------------------

struct T3Row {
  size_t target_bytes = 0;
  Status st = Status::ok();
  // Modeled (golden-compared).
  u64 code_bytes = 0, package_bytes = 0, functions = 0;
  u64 downtime_cycles = 0, smis = 0;
  u64 detection_cycles = 0;  // TOCTOU-hardening share of the downtime
  double modeled_total_us = 0;
  // Wall (sidecar only).
  double decrypt_us = 0, verify_us = 0, apply_us = 0, total_us = 0;
  double fetch_us = 0, preprocess_us = 0, passing_us = 0;
};

T3Row run_t3_row(size_t size, u64 seed) {
  T3Row row;
  row.target_bytes = size;
  cve::CveCase c = testbed::make_size_sweep_case(size);
  testbed::TestbedOptions topts;
  topts.layout = testbed::layout_for_patch_bytes(size);
  topts.seed = seed;
  auto tb = testbed::Testbed::boot(c, std::move(topts));
  if (!tb) {
    row.st = tb.status();
    return row;
  }
  testbed::Testbed& t = **tb;
  auto rep = t.kshot().live_patch(c.id);
  if (!rep) {
    row.st = rep.status();
    return row;
  }
  if (!rep->success) {
    row.st = Status{Errc::kInternal,
                    std::string("live_patch failed: ") +
                        core::smm_status_name(rep->smm_status)};
    return row;
  }
  row.code_bytes = rep->stats.code_bytes;
  row.package_bytes = rep->stats.package_bytes;
  row.functions = rep->stats.functions;
  row.downtime_cycles = rep->downtime_cycles;
  row.modeled_total_us = rep->smm.modeled_total_us;
  row.smis = t.machine().smi_count();
  row.detection_cycles = t.kshot().handler().detection_overhead_cycles();
  row.decrypt_us = rep->smm.decrypt_us;
  row.verify_us = rep->smm.verify_us;
  row.apply_us = rep->smm.apply_us;
  row.total_us = rep->smm.total_us;
  row.fetch_us = rep->sgx.fetch_us;
  row.preprocess_us = rep->sgx.preprocess_us;
  row.passing_us = rep->sgx.passing_us;
  return row;
}

/// Splice-vs-trampoline leg (gated table3 row): the same splice-eligible
/// case applied twice on identical deployments — once through the default
/// mem_X + trampoline path, once with LifecycleOptions::allow_splice so the
/// enclave lays the body out in place. Both downtime figures are modeled
/// (virtual cycles), so the row is golden-comparable and the in-place
/// write's cheaper per-byte cost shows up as a deterministic reduction.
struct T3SpliceRow {
  Status st = Status::ok();
  u64 code_bytes = 0;
  u64 tramp_downtime_cycles = 0;
  u64 splice_downtime_cycles = 0;
  u64 spliced = 0;  // members installed in place (must be > 0)
};

T3SpliceRow run_t3_splice_row(size_t size, u64 seed) {
  T3SpliceRow row;
  cve::CveCase c = testbed::make_splice_sweep_case(size);
  auto leg = [&](bool splice) -> Result<u64> {
    testbed::TestbedOptions topts;
    topts.layout = testbed::layout_for_patch_bytes(size);
    topts.seed = seed;
    auto tb = testbed::Testbed::boot(c, std::move(topts));
    if (!tb) return tb.status();
    core::LifecycleOptions lo;
    lo.allow_splice = splice;
    auto rep = (*tb)->kshot().live_patch(c.id, lo);
    if (!rep) return rep.status();
    if (!rep->success) {
      return Status{Errc::kInternal,
                    std::string("splice-leg apply failed: ") +
                        core::smm_status_name(rep->smm_status)};
    }
    auto inv = (*tb)->kshot().query_applied();
    if (!inv) return inv.status();
    if (inv->units.size() != 1) {
      return Status{Errc::kInternal, "splice leg: expected one applied unit"};
    }
    row.code_bytes = inv->units[0].code_bytes;
    if (splice) {
      row.spliced = inv->units[0].spliced;
      if (row.spliced == 0) {
        return Status{Errc::kInternal,
                      "splice leg installed no in-place members: " + c.id};
      }
    }
    return rep->downtime_cycles;
  };
  auto tramp = leg(false);
  if (!tramp) {
    row.st = tramp.status();
    return row;
  }
  row.tramp_downtime_cycles = *tramp;
  auto spliced = leg(true);
  if (!spliced) {
    row.st = spliced.status();
    return row;
  }
  row.splice_downtime_cycles = *spliced;
  return row;
}

// ---- Multi-CPU rendezvous legs (gated table3 rows) ------------------------
// Minimal payload, so the rendezvous/resume machinery dominates: the gated
// ratio proves parallel SMI entry + early AP release keep the 16-CPU
// downtime within a small multiple of 1-CPU, while the serial row records
// what the naive one-entry-per-CPU model would cost.

struct T3McpuRow {
  Status st = Status::ok();
  u32 cpus = 1;
  bool serial = false;
  u64 downtime_cycles = 0;
  u64 rendezvous_cycles = 0, handler_cycles = 0, resume_cycles = 0;
};

T3McpuRow run_t3_mcpu_row(u32 cpus, bool serial, u64 seed) {
  T3McpuRow row;
  row.cpus = cpus;
  row.serial = serial;
  const size_t size = 64;
  cve::CveCase c = testbed::make_size_sweep_case(size);
  testbed::TestbedOptions topts;
  topts.layout = testbed::layout_for_patch_bytes(size);
  topts.seed = seed;
  topts.cpus = cpus;
  topts.serial_rendezvous = serial;
  auto tb = testbed::Testbed::boot(c, std::move(topts));
  if (!tb) {
    row.st = tb.status();
    return row;
  }
  auto rep = (*tb)->kshot().live_patch(c.id);
  if (!rep || !rep->success) {
    row.st = !rep ? rep.status()
                  : Status{Errc::kInternal, "mcpu-leg apply failed"};
    return row;
  }
  row.downtime_cycles = rep->downtime_cycles;
  row.rendezvous_cycles = rep->rendezvous_cycles;
  row.handler_cycles = rep->handler_cycles;
  row.resume_cycles = rep->resume_cycles;
  return row;
}

// ---- Zero-copy staging leg (gated table3 row) -----------------------------
// The same deployment run through the borrowed-span parser (default) and the
// legacy copying parser (test seam); smm.staged_copies counts actual byte
// copies of staged package data. Gated: copies_per_package must stay at 1
// (the SMM write) and the zero-copy/legacy ratio must not grow.

struct T3CopyRow {
  Status st = Status::ok();
  u64 zero_copy_copies = 0;
  u64 legacy_copies = 0;
};

T3CopyRow run_t3_copy_row(u64 seed) {
  T3CopyRow row;
  const size_t size = 4096;
  cve::CveCase c = testbed::make_size_sweep_case(size);
  auto leg = [&](bool legacy) -> Result<u64> {
    obs::MetricsRegistry reg;
    testbed::TestbedOptions topts;
    topts.layout = testbed::layout_for_patch_bytes(size);
    topts.seed = seed;
    topts.metrics = &reg;
    auto tb = testbed::Testbed::boot(c, std::move(topts));
    if (!tb) return tb.status();
    if (legacy) {
      (*tb)->kshot().handler().enable_legacy_copy_parser_for_selftest();
    }
    auto rep = (*tb)->kshot().live_patch(c.id);
    if (!rep) return rep.status();
    if (!rep->success) {
      return Status{Errc::kInternal, "copy-leg apply failed"};
    }
    for (const auto& [name, v] : reg.snapshot().counters) {
      if (name == "smm.staged_copies") return v;
    }
    return Status{Errc::kInternal, "smm.staged_copies counter missing"};
  };
  auto zc = leg(false);
  if (!zc) {
    row.st = zc.status();
    return row;
  }
  row.zero_copy_copies = *zc;
  auto legacy = leg(true);
  if (!legacy) {
    row.st = legacy.status();
    return row;
  }
  row.legacy_copies = *legacy;
  return row;
}

// ---- Table 4: batched-session matrix -------------------------------------

struct T4BatchRow {
  u32 k = 0;
  Status st = Status::ok();
  u64 seq_downtime_cycles = 0, batch_downtime_cycles = 0;
  u64 seq_smis = 0, batch_smis = 0;
  u64 installed = 0;
  double modeled_batch_us = 0;
};

T4BatchRow run_t4_batch_row(u32 k, u64 seed) {
  T4BatchRow row;
  row.k = k;
  std::vector<std::string> ids(batchable_ids().begin(),
                               batchable_ids().begin() + k);
  auto batch = cve::combine_cases(ids);
  if (!batch) {
    row.st = batch.status();
    return row;
  }
  auto parts = cve::batch_part_cases(ids);
  if (!parts) {
    row.st = parts.status();
    return row;
  }

  auto boot = [&](u64 s) -> Result<std::unique_ptr<testbed::Testbed>> {
    testbed::TestbedOptions topts;
    topts.seed = s;
    auto tb = testbed::Testbed::boot(batch->merged, std::move(topts));
    if (!tb) return tb.status();
    for (const auto& p : *parts) {
      (*tb)->server().add_patch({p.id, p.kernel, p.pre_source,
                                 p.post_source});
    }
    return tb;
  };

  // Batched leg: one seal->stage->apply session for all K packages.
  auto tb_batch = boot(seed);
  if (!tb_batch) {
    row.st = tb_batch.status();
    return row;
  }
  auto rep = (*tb_batch)->kshot().live_patch_batch(ids);
  if (!rep || !rep->success) {
    row.st = !rep ? rep.status()
                  : Status{Errc::kInternal,
                           std::string("batch apply failed: ") +
                               core::smm_status_name(rep->smm_status)};
    return row;
  }
  row.batch_downtime_cycles = rep->downtime_cycles;
  row.batch_smis = (*tb_batch)->machine().smi_count();
  row.installed = (*tb_batch)->kshot().handler().installed().size();
  row.modeled_batch_us = rep->smm.modeled_total_us;

  // Sequential leg: K independent sessions on an identical deployment.
  auto tb_seq = boot(seed);
  if (!tb_seq) {
    row.st = tb_seq.status();
    return row;
  }
  for (const auto& id : ids) {
    auto r = (*tb_seq)->kshot().live_patch(id);
    if (!r || !r->success) {
      row.st = Status{Errc::kInternal, "sequential apply failed: " + id};
      return row;
    }
    row.seq_downtime_cycles += r->downtime_cycles;
  }
  row.seq_smis = (*tb_seq)->machine().smi_count();
  return row;
}

struct T4AdversaryRow {
  Status st = Status::ok();
  u64 targets = 0, quarantined = 0, recovered = 0;
  u64 total_detections = 0;
  /// Modeled escalating backoff charged to quarantine recovery rounds
  /// across the fleet (microseconds).
  double recovery_cost_us = 0;
};

/// Small fleet campaign under a deterministic per-target async adversary;
/// quantifies what quarantine recovery costs the rollout. Wave aborts are
/// disabled so the row is a pure function of the schedules, and the fleet's
/// internal jobs width is a fixed constant (the report is byte-identical
/// across it anyway).
T4AdversaryRow run_t4_adversary_row(bool quick, u64 seed) {
  T4AdversaryRow row;
  fleet::FleetOptions fo;
  fo.targets = quick ? 4 : 8;
  fo.jobs = 2;
  fo.base_seed = seed;
  fo.adversary_seed = seed ^ 0xAD5E12;
  fo.rollout.abort_failure_rate = 1.01;
  fo.rollout.max_quarantine_rate = 1.01;
  // In-run retries off: every detection surfaces to the fleet layer, so the
  // row prices the quarantine state machine itself, not the retry budget.
  fo.retry_policy = core::RetryPolicy::none();
  fleet::FleetController fc(fo);
  auto rep = fc.run_campaign();
  if (!rep) {
    row.st = rep.status();
    return row;
  }
  row.targets = rep->targets;
  row.quarantined = rep->quarantined;
  row.recovered = rep->recovered;
  row.total_detections = rep->total_detections;
  for (const auto& r : rep->results) {
    for (u32 round = 0; round < r.quarantine_rounds; ++round) {
      row.recovery_cost_us +=
          fleet::RolloutPlan::kQuarantineBackoffUs * (1u << round);
    }
  }
  return row;
}

struct T4FleetRow {
  Status st = Status::ok();
  u64 targets = 0, applied = 0, waves = 0;
  double downtime_p50_us = 0, e2e_p50_us = 0;
  double makespan_w1_us = 0, makespan_w4_us = 0;
  u64 prep_hits = 0, prep_misses = 0;  // sidecar; boolean is golden
};

T4FleetRow run_t4_fleet_row(bool quick, u64 seed) {
  T4FleetRow row;
  fleet::FleetOptions fo;
  fo.batch_cve_ids = {batchable_ids()[0], batchable_ids()[1],
                      batchable_ids()[2]};
  fo.targets = quick ? 4 : 8;
  // Internal widths are fixed constants: the fleet report is byte-identical
  // across its own jobs level, and the makespan is evaluated at fixed
  // *virtual* widths below, so the bench --jobs flag never leaks in.
  fo.jobs = 2;
  fo.prep_jobs = 2;
  fo.base_seed = seed;
  fleet::FleetController fc(fo);
  auto rep = fc.run_campaign();
  if (!rep) {
    row.st = rep.status();
    return row;
  }
  row.targets = rep->targets;
  row.applied = rep->applied;
  row.waves = rep->waves_run;
  row.downtime_p50_us = rep->downtime_us.p50;
  row.e2e_p50_us = rep->e2e_us.p50;
  row.makespan_w1_us = fleet::modeled_makespan_us(*rep, 1);
  row.makespan_w4_us = fleet::modeled_makespan_us(*rep, 4);
  row.prep_hits = fc.server().prep_hits();
  row.prep_misses = fc.server().prep_misses();
  return row;
}

struct T4ScaleRow {
  Status st = Status::ok();
  u64 targets = 0, applied = 0, waves = 0;
  double makespan_us = 0;
  /// Emitted as a *miss* ratio (lower is better) so the gate's
  /// increase-is-regression rule applies directly; the hit ratio lives in
  /// the wall sidecar.
  double relay_miss_ratio = 0;
  double relay_hit_ratio = 0;
  double downtime_p99_us = 0;
  u64 origin_fetches = 0;
};

/// Planet-scale modeled rollout: prices the sharded coordinator + relay
/// tier end to end. Internal shards/jobs are fixed constants — the report
/// is byte-identical across both, so the bench --jobs flag never leaks in.
T4ScaleRow run_t4_scale_row(bool quick, u64 seed) {
  T4ScaleRow row;
  fleetscale::FleetScaleOptions so;
  so.targets = quick ? 50'000 : 250'000;
  so.shards = 4;
  so.sample = 1;
  so.relays = 8;
  so.relay_fanout = 4;
  so.jobs = 2;
  so.base_seed = seed;
  fleetscale::FleetCoordinator fc(std::move(so));
  auto rep = fc.run();
  if (!rep) {
    row.st = rep.status();
    return row;
  }
  row.targets = rep->targets;
  row.applied = rep->applied;
  row.waves = rep->waves.size();
  row.makespan_us = rep->modeled_makespan_us;
  row.relay_miss_ratio =
      rep->relay.pulls() == 0
          ? 0
          : static_cast<double>(rep->relay.misses) / rep->relay.pulls();
  row.relay_hit_ratio = rep->relay.hit_rate();
  row.downtime_p99_us = rep->downtime_us.p99;
  row.origin_fetches = rep->origin_fetches;
  return row;
}

struct T4SynthRow {
  Status st = Status::ok();
  u64 cases = 0, failed = 0;
  u64 live_downtime_cycles = 0;
  u64 live_code_bytes = 0;
  double live_modeled_us = 0;
};

/// Auto-CVE synthesis row (DESIGN.md §14): a fixed-size campaign in which
/// every synthesized case must pass the probe-contract, differential, and
/// diff-confinement oracles (`oracle_failures` is gated at 0), plus one
/// live-patched synthesized case pricing the end-to-end pipeline on
/// generated input. The campaign's internal jobs width is a fixed constant;
/// its report is byte-identical across it anyway.
T4SynthRow run_t4_synth_row(bool quick, u64 seed) {
  T4SynthRow row;
  cve::CampaignOptions co;
  co.seed = seed ^ 0x5D17;
  co.cases = quick ? 12 : 24;
  co.jobs = 2;
  auto rep = cve::run_campaign(co);
  if (!rep) {
    row.st = rep.status();
    return row;
  }
  row.cases = rep->cases;
  row.failed = rep->failed;

  auto sc = cve::make_case(cve::BugClass::kOobWrite,
                           cve::synth_case_seed(co.seed, 0));
  if (!sc) {
    row.st = sc.status();
    return row;
  }
  auto tb = testbed::Testbed::boot(sc->cve, {.seed = seed});
  if (!tb) {
    row.st = tb.status();
    return row;
  }
  auto patched = (*tb)->kshot().live_patch(sc->cve.id);
  if (!patched) {
    row.st = patched.status();
    return row;
  }
  if (!patched->success) {
    row.st = Status{Errc::kInternal, "synth live patch failed"};
    return row;
  }
  row.live_downtime_cycles = patched->downtime_cycles;
  row.live_code_bytes = patched->stats.code_bytes;
  row.live_modeled_us = patched->smm.modeled_total_us;
  return row;
}

void meta_header(const char* bench, const BenchOptions& o, Json& j) {
  j.open_obj();
  j.field("bench", std::string(bench));
  char seed[32];
  std::snprintf(seed, sizeof(seed), "0x%llx",
                static_cast<unsigned long long>(o.seed));
  j.field("seed", std::string(seed));
  j.field("quick", o.quick);
}

}  // namespace

Result<BenchResults> run_bench(const BenchOptions& opts) {
  const double cs = opts.cost_scale;
  BenchResults res;

  // ---- Table 3 ------------------------------------------------------------
  std::vector<size_t> sizes = sweep_sizes(opts.quick);
  std::vector<T3Row> t3(sizes.size());
  T3SpliceRow splice_row;
  const size_t splice_bytes = 4096;
  // Multi-CPU legs share one seed so 1/4/16 differ only in topology.
  const std::vector<std::pair<u32, bool>> mcpu_cfgs = {
      {1, false}, {4, false}, {16, false}, {16, true}};
  std::vector<T3McpuRow> mcpu(mcpu_cfgs.size());
  T3CopyRow copy_row;
  // Extra thunks: splice leg, the mcpu legs, and the zero-copy leg.
  const u32 extra = 2 + static_cast<u32>(mcpu_cfgs.size());
  parallel_for(static_cast<u32>(sizes.size()) + extra, opts.jobs, [&](u32 i) {
    if (i < sizes.size()) {
      t3[i] = run_t3_row(sizes[i], opts.seed + 7919 * (i + 1));
    } else if (i == sizes.size()) {
      splice_row = run_t3_splice_row(splice_bytes, opts.seed + 104033);
    } else if (i == sizes.size() + 1) {
      copy_row = run_t3_copy_row(opts.seed + 7);
    } else {
      size_t m = i - sizes.size() - 2;
      mcpu[m] = run_t3_mcpu_row(mcpu_cfgs[m].first, mcpu_cfgs[m].second,
                                opts.seed + 31);
    }
  });
  for (const T3Row& r : t3) {
    if (!r.st.is_ok()) return r.st;
  }
  if (!splice_row.st.is_ok()) return splice_row.st;
  if (!copy_row.st.is_ok()) return copy_row.st;
  for (const T3McpuRow& r : mcpu) {
    if (!r.st.is_ok()) return r.st;
  }

  {
    Json j;
    meta_header("table3", opts, j);
    j.open_arr("rows");
    for (const T3Row& r : t3) {
      j.open_row();
      j.field("name", "sweep-" + std::to_string(r.target_bytes));
      j.field("target_bytes", static_cast<u64>(r.target_bytes));
      j.field("code_bytes", r.code_bytes);
      j.field("package_bytes", r.package_bytes);
      j.field("functions", r.functions);
      j.field("downtime_cycles", scaled(r.downtime_cycles, cs));
      j.field("modeled_total_us", r.modeled_total_us * cs);
      j.field("smi_count", r.smis);
      j.field("detection_overhead", scaled(r.detection_cycles, cs));
      j.close_row();
    }
    j.open_row();
    j.field("name", "splice-" + std::to_string(splice_bytes));
    j.field("code_bytes", splice_row.code_bytes);
    j.field("trampoline_downtime_cycles",
            scaled(splice_row.tramp_downtime_cycles, cs));
    j.field("splice_downtime_cycles",
            scaled(splice_row.splice_downtime_cycles, cs));
    // Gated ratio (lower is better): in-place splicing must stay cheaper
    // than the mem_X + trampoline path for the same body.
    j.field("splice_cost_ratio",
            static_cast<double>(splice_row.splice_downtime_cycles) /
                static_cast<double>(splice_row.tramp_downtime_cycles));
    j.field("spliced_members", splice_row.spliced);
    j.close_row();
    for (const T3McpuRow& r : mcpu) {
      j.open_row();
      j.field("name", std::string("mcpu-") + std::to_string(r.cpus) +
                          (r.serial ? "-serial" : ""));
      j.field("cpus", static_cast<u64>(r.cpus));
      j.field("downtime_cycles", scaled(r.downtime_cycles, cs));
      j.field("rendezvous_cycles", scaled(r.rendezvous_cycles, cs));
      j.field("handler_cycles", scaled(r.handler_cycles, cs));
      j.field("resume_cycles", scaled(r.resume_cycles, cs));
      j.close_row();
    }
    // Gated ratios (lower is better). mcpu[0]=1 cpu, [2]=16 parallel,
    // [3]=16 serial: parallel rendezvous + early AP release must keep the
    // 16-CPU downtime within a small multiple of the 1-CPU baseline, while
    // the serial model's ratio documents what was recovered.
    j.open_row();
    j.field("name", std::string("mcpu-ratios"));
    j.field("mcpu16_vs_1_ratio",
            cs * static_cast<double>(mcpu[2].downtime_cycles) /
                static_cast<double>(mcpu[0].downtime_cycles));
    j.field("serial16_vs_1_ratio",
            cs * static_cast<double>(mcpu[3].downtime_cycles) /
                static_cast<double>(mcpu[0].downtime_cycles));
    j.close_row();
    // Gated copy accounting: staged package bytes are copied exactly once
    // (the SMM write) on the zero-copy path; the ratio against the legacy
    // copying parser must not grow back toward 1.
    j.open_row();
    j.field("name", std::string("zero-copy"));
    j.field("copies_per_package", copy_row.zero_copy_copies);
    j.field("legacy_copies_per_package", copy_row.legacy_copies);
    j.field("zero_copy_ratio",
            cs * static_cast<double>(copy_row.zero_copy_copies) /
                static_cast<double>(copy_row.legacy_copies));
    j.close_row();
    j.close_arr();
    j.close_obj();
    res.table3_json = j.finish();
  }
  {
    Json j;
    meta_header("table3-wall", opts, j);
    j.open_arr("rows");
    for (const T3Row& r : t3) {
      j.open_row();
      j.field("name", "sweep-" + std::to_string(r.target_bytes));
      j.field("decrypt_us", r.decrypt_us);
      j.field("verify_us", r.verify_us);
      j.field("apply_us", r.apply_us);
      j.field("total_us", r.total_us);
      j.field("fetch_us", r.fetch_us);
      j.field("preprocess_us", r.preprocess_us);
      j.field("passing_us", r.passing_us);
      j.close_row();
    }
    j.close_arr();
    j.close_obj();
    res.table3_wall_json = j.finish();
  }

  // ---- Table 4 ------------------------------------------------------------
  std::vector<u32> ks = batch_ks(opts.quick);
  std::vector<T4BatchRow> t4(ks.size());
  T4FleetRow fleet_row;
  T4AdversaryRow adv_row;
  T4ScaleRow scale_row;
  T4SynthRow synth_row;
  // One thunk per row (the fleet/synth rows are indices ks.size() ..
  // ks.size()+3).
  parallel_for(static_cast<u32>(ks.size()) + 4, opts.jobs, [&](u32 i) {
    if (i < ks.size()) {
      t4[i] = run_t4_batch_row(ks[i], opts.seed + 104729 * (i + 1));
    } else if (i == ks.size()) {
      fleet_row = run_t4_fleet_row(opts.quick, opts.seed);
    } else if (i == ks.size() + 1) {
      adv_row = run_t4_adversary_row(opts.quick, opts.seed);
    } else if (i == ks.size() + 2) {
      scale_row = run_t4_scale_row(opts.quick, opts.seed);
    } else {
      synth_row = run_t4_synth_row(opts.quick, opts.seed);
    }
  });
  for (const T4BatchRow& r : t4) {
    if (!r.st.is_ok()) return r.st;
  }
  if (!fleet_row.st.is_ok()) return fleet_row.st;
  if (!adv_row.st.is_ok()) return adv_row.st;
  if (!scale_row.st.is_ok()) return scale_row.st;
  if (!synth_row.st.is_ok()) return synth_row.st;

  {
    Json j;
    meta_header("table4", opts, j);
    j.open_arr("rows");
    for (const T4BatchRow& r : t4) {
      j.open_row();
      j.field("name", "batch-k" + std::to_string(r.k));
      j.field("k", static_cast<u64>(r.k));
      j.field("seq_downtime_cycles", scaled(r.seq_downtime_cycles, cs));
      j.field("batch_downtime_cycles", scaled(r.batch_downtime_cycles, cs));
      j.field("seq_smis", r.seq_smis);
      j.field("batch_smis", r.batch_smis);
      j.field("installed", r.installed);
      j.field("modeled_batch_us", r.modeled_batch_us * cs);
      // Emitted as a cost ratio (lower is better) so the gate's
      // increase-is-regression rule applies directly.
      j.field("batch_cost_ratio",
              static_cast<double>(r.batch_downtime_cycles) /
                  static_cast<double>(r.seq_downtime_cycles));
      j.close_row();
    }
    j.open_row();
    j.field("name", std::string("fleet-batched"));
    j.field("targets", fleet_row.targets);
    j.field("applied_deficit", fleet_row.targets - fleet_row.applied);
    j.field("waves", fleet_row.waves);
    j.field("downtime_p50_us", fleet_row.downtime_p50_us * cs);
    j.field("e2e_p50_us", fleet_row.e2e_p50_us * cs);
    j.field("makespan_w1_us", fleet_row.makespan_w1_us * cs);
    j.field("makespan_w4_us", fleet_row.makespan_w4_us * cs);
    j.field("prep_cache_hit", fleet_row.prep_hits > 0);
    j.close_row();
    j.open_row();
    j.field("name", std::string("fleet-adversary"));
    j.field("targets", adv_row.targets);
    j.field("quarantined", adv_row.quarantined);
    j.field("recovered", adv_row.recovered);
    j.field("total_detections", adv_row.total_detections);
    j.field("quarantine_recovery_cost", adv_row.recovery_cost_us * cs);
    j.close_row();
    j.open_row();
    j.field("name", std::string("fleet-scale"));
    j.field("targets", scale_row.targets);
    j.field("applied_deficit", scale_row.targets - scale_row.applied);
    j.field("waves", scale_row.waves);
    j.field("makespan_us", scale_row.makespan_us * cs);
    j.field("relay_miss_ratio", scale_row.relay_miss_ratio * cs);
    j.field("downtime_p99_us", scale_row.downtime_p99_us * cs);
    j.close_row();
    j.open_row();
    j.field("name", std::string("synth-campaign"));
    j.field("cases", synth_row.cases);
    // Gated at 0: any synthesized case failing its oracle stack regresses.
    j.field("oracle_failures", synth_row.failed);
    j.field("live_code_bytes", synth_row.live_code_bytes);
    j.field("live_downtime_cycles", scaled(synth_row.live_downtime_cycles, cs));
    j.field("live_modeled_us", synth_row.live_modeled_us * cs);
    j.close_row();
    j.close_arr();
    j.close_obj();
    res.table4_json = j.finish();
  }
  {
    Json j;
    meta_header("table4-wall", opts, j);
    j.open_arr("rows");
    j.open_row();
    j.field("name", std::string("fleet-batched"));
    // Exact hit/miss counts can shift with build interleaving, so they are
    // sidecar-only; the golden document keeps just the hit>0 boolean.
    j.field("prep_hits", fleet_row.prep_hits);
    j.field("prep_misses", fleet_row.prep_misses);
    j.close_row();
    j.open_row();
    j.field("name", std::string("fleet-scale"));
    // Hit ratio improves over time; the gate only flags increases, so it
    // stays out of the golden document (the gated miss ratio covers it).
    j.field("relay_hit_ratio", scale_row.relay_hit_ratio);
    j.field("origin_fetches", scale_row.origin_fetches);
    j.close_row();
    j.close_arr();
    j.close_obj();
    res.table4_wall_json = j.finish();
  }
  return res;
}

// ---- Gate -----------------------------------------------------------------

namespace {

/// Strict-enough parser for the canonical documents run_bench emits.
class JsonParser {
 public:
  JsonParser(const std::string& s, std::map<std::string, double>& out)
      : start_(s.c_str()),
        p_(s.c_str()),
        end_(s.c_str() + s.size()),
        out_(out) {}

  Status parse() {
    KSHOT_RETURN_IF_ERROR(value(""));
    skip_ws();
    if (p_ != end_) return err("trailing content");
    return Status::ok();
  }

 private:
  Status value(const std::string& path) {
    skip_ws();
    if (p_ == end_) return err("unexpected end");
    switch (*p_) {
      case '{': return object(path);
      case '[': return array(path);
      case '"': {
        std::string s;
        return string(&s);
      }
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number(path);
    }
  }

  Status object(const std::string& path) {
    ++p_;  // '{'
    skip_ws();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return Status::ok();
    }
    while (true) {
      skip_ws();
      std::string key;
      KSHOT_RETURN_IF_ERROR(string(&key));
      skip_ws();
      if (p_ == end_ || *p_ != ':') return err("expected ':'");
      ++p_;
      KSHOT_RETURN_IF_ERROR(
          value(path.empty() ? key : path + "." + key));
      skip_ws();
      if (p_ != end_ && *p_ == ',') {
        ++p_;
        continue;
      }
      if (p_ != end_ && *p_ == '}') {
        ++p_;
        return Status::ok();
      }
      return err("expected ',' or '}'");
    }
  }

  Status array(const std::string& path) {
    ++p_;  // '['
    skip_ws();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return Status::ok();
    }
    size_t i = 0;
    while (true) {
      KSHOT_RETURN_IF_ERROR(value(path + "[" + std::to_string(i++) + "]"));
      skip_ws();
      if (p_ != end_ && *p_ == ',') {
        ++p_;
        continue;
      }
      if (p_ != end_ && *p_ == ']') {
        ++p_;
        return Status::ok();
      }
      return err("expected ',' or ']'");
    }
  }

  Status string(std::string* out) {
    skip_ws();
    if (p_ == end_ || *p_ != '"') return err("expected string");
    ++p_;
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\' && p_ + 1 != end_) ++p_;
      out->push_back(*p_++);
    }
    if (p_ == end_) return err("unterminated string");
    ++p_;
    return Status::ok();
  }

  Status number(const std::string& path) {
    char* after = nullptr;
    double v = std::strtod(p_, &after);
    if (after == p_) return err("expected number");
    p_ = after;
    out_[path] = v;
    return Status::ok();
  }

  Status literal(const char* lit) {
    size_t n = std::strlen(lit);
    if (static_cast<size_t>(end_ - p_) < n || std::strncmp(p_, lit, n) != 0) {
      return err("bad literal");
    }
    p_ += n;
    return Status::ok();
  }

  void skip_ws() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\n' || *p_ == '\t' || *p_ == '\r')) {
      ++p_;
    }
  }

  Status err(const char* what) const {
    return Status{Errc::kInvalidArgument,
                  std::string("bench json: ") + what + " at offset " +
                      std::to_string(p_ - start_)};
  }

  const char* start_;
  const char* p_;
  const char* end_;
  std::map<std::string, double>& out_;
};

}  // namespace

Result<std::map<std::string, double>> flatten_json(const std::string& json) {
  std::map<std::string, double> out;
  JsonParser parser(json, out);
  KSHOT_RETURN_IF_ERROR(parser.parse());
  return out;
}

std::string GateReport::to_string() const {
  std::string s;
  // Wall warnings first: they never affect ok(), but a gate that passes
  // with warnings must still show them.
  for (const auto& f : warnings) {
    char b[192];
    std::snprintf(b, sizeof(b),
                  "bench gate: WALL WARNING (not gated) %s: baseline %.6f -> "
                  "current %.6f (+%.2f%%)\n",
                  f.key.c_str(), f.baseline, f.current,
                  100.0 * (f.current - f.baseline) /
                      (f.baseline == 0 ? 1 : f.baseline));
    s += b;
  }
  if (ok()) return s + "bench gate: OK\n";
  for (const auto& k : missing_keys) {
    s += "bench gate: key missing from current run: " + k + "\n";
  }
  for (const auto& f : regressions) {
    char b[192];
    std::snprintf(b, sizeof(b),
                  "bench gate: REGRESSION %s: baseline %.6f -> current %.6f "
                  "(+%.2f%%)\n",
                  f.key.c_str(), f.baseline, f.current,
                  100.0 * (f.current - f.baseline) /
                      (f.baseline == 0 ? 1 : f.baseline));
    s += b;
  }
  return s;
}

Result<GateReport> gate_compare(const std::string& baseline_json,
                                const std::string& current_json,
                                double tolerance) {
  auto base = flatten_json(baseline_json);
  if (!base) return base.status();
  auto cur = flatten_json(current_json);
  if (!cur) return cur.status();

  GateReport report;
  for (const auto& [key, bval] : *base) {
    auto it = cur->find(key);
    if (it == cur->end()) {
      report.missing_keys.push_back(key);
      continue;
    }
    double limit = bval >= 0 ? bval * (1.0 + tolerance) + 1e-9
                             : bval * (1.0 - tolerance) + 1e-9;
    if (it->second > limit) {
      report.regressions.push_back({key, bval, it->second});
    }
  }
  return report;
}

Result<GateReport> wall_compare(const std::string& baseline_json,
                                const std::string& current_json,
                                double tolerance) {
  auto base = flatten_json(baseline_json);
  if (!base) return base.status();
  auto cur = flatten_json(current_json);
  if (!cur) return cur.status();

  GateReport report;
  for (const auto& [key, bval] : *base) {
    auto it = cur->find(key);
    if (it == cur->end()) {
      // A vanished wall key is a sidecar-layout change, not a perf event;
      // note it softly so renames don't fail anyone's build.
      report.warnings.push_back({key, bval, 0.0});
      continue;
    }
    double limit = bval >= 0 ? bval * (1.0 + tolerance) + 1e-9
                             : bval * (1.0 - tolerance) + 1e-9;
    if (it->second > limit) {
      report.warnings.push_back({key, bval, it->second});
    }
  }
  return report;
}

}  // namespace kshot::benchkit
