#include "kernel/kernel.hpp"

#include "common/log.hpp"

namespace kshot::kernel {

MemoryLayout MemoryLayout::for_size_sweep() {
  MemoryLayout l;
  l.mem_bytes = 256ull << 20;
  l.text_base = 0x10'0000;
  l.text_max = 24ull << 20;            // text ends at 25 MB
  l.data_base = 0x190'0000;            // 25 MB
  l.data_max = 1ull << 20;
  l.stacks_base = 0x1A0'0000;          // 26 MB
  l.module_base = 0x1E0'0000;          // 30 MB
  l.reserved_base = 0x200'0000;        // 32 MB
  l.mem_w_size = (24ull << 20) - l.mem_rw_size;
  l.mem_x_size = 24ull << 20;          // reserved region ends at 80 MB
  l.epc_base = 0x500'0000;             // 80 MB
  l.epc_size = 52ull << 20;            // ends at 132 MB
  return l;
}

MemoryLayout MemoryLayout::for_large_patches() {
  MemoryLayout l;
  l.mem_bytes = 128ull << 20;
  l.mem_w_size = (24ull << 20) - l.mem_rw_size;
  l.mem_x_size = 24ull << 20;   // reserved region ends at 64 MB
  l.epc_base = 0x400'0000;      // EPC: 52 MB starting at 64 MB
  l.epc_size = 52ull << 20;
  return l;
}

Kernel::Kernel(machine::Machine& m, kcc::KernelImage image, MemoryLayout layout)
    : machine_(m), image_(std::move(image)), layout_(layout) {}

Status Kernel::load() {
  using machine::AccessMode;
  using machine::PageAttr;
  auto& mem = machine_.mem();

  if (image_.text.size() > layout_.text_max) {
    return {Errc::kResourceExhausted, "kernel text exceeds segment"};
  }
  if (image_.text_base != layout_.text_base ||
      image_.data_base != layout_.data_base) {
    return {Errc::kFailedPrecondition, "image linked for a different layout"};
  }

  // The loader acts as early boot firmware: raw copies, then attributes.
  KSHOT_RETURN_IF_ERROR(
      mem.write(layout_.text_base, image_.text, AccessMode::smm()));
  Bytes data = image_.data_image();
  if (!data.empty()) {
    KSHOT_RETURN_IF_ERROR(
        mem.write(layout_.data_base, data, AccessMode::smm()));
  }

  // Kernel text: readable, writable, executable from normal mode (real
  // kernels can patch their own text; so can rootkits — that is the threat).
  mem.set_attrs(layout_.text_base, layout_.text_max, {true, true, true, 0});
  // Data and stacks: RW, no exec.
  mem.set_attrs(layout_.data_base, layout_.data_max, {true, true, false, 0});
  mem.set_attrs(layout_.stacks_base, layout_.stack_size * layout_.max_threads,
                {true, true, false, 0});
  // Module area: RWX (loadable kernel modules, kpatch trampoline memory).
  mem.set_attrs(layout_.module_base, layout_.module_size,
                {true, true, true, 0});

  // KShot reserved region (paper §V-B "Memory Protection and Isolation"):
  //   mem_RW: read/write mailbox for key exchange,
  //   mem_W : write-only staging for the encrypted patch,
  //   mem_X : execute-only home for patched function text.
  mem.set_attrs(layout_.mem_rw_base(), layout_.mem_rw_size,
                {true, true, false, 0});
  mem.set_attrs(layout_.mem_w_base(), layout_.mem_w_size,
                {false, true, false, 0});
  mem.set_attrs(layout_.mem_x_base(), layout_.mem_x_size,
                {false, false, true, 0});

  loaded_ = true;
  KSHOT_LOG(kInfo, "kernel") << "loaded " << image_.version << ": "
                             << image_.symbols.size() << " functions, "
                             << image_.text.size() << " text bytes";
  return Status::ok();
}

Status Kernel::register_syscall(int nr, const std::string& function) {
  if (!image_.find_symbol(function)) {
    return {Errc::kNotFound, "no such kernel function: " + function};
  }
  syscalls_[nr] = function;
  return Status::ok();
}

Result<u64> Kernel::syscall_entry(int nr) const {
  auto it = syscalls_.find(nr);
  if (it == syscalls_.end()) {
    return {Errc::kNotFound, "unknown syscall " + std::to_string(nr)};
  }
  return image_.find_symbol(it->second)->addr;
}

OsInfo Kernel::os_info() const {
  OsInfo info;
  info.version = image_.version;
  info.text_base = image_.text_base;
  info.data_base = image_.data_base;
  info.ftrace = true;
  info.measurement = image_.measurement();
  return info;
}

Result<u64> Kernel::read_global(const std::string& name) const {
  const kcc::GlobalSym* g = image_.find_global(name);
  if (!g) return {Errc::kNotFound, "no global '" + name + "'"};
  return machine_.mem().read_u64(g->addr, machine::AccessMode::normal());
}

Status Kernel::write_global(const std::string& name, u64 value) {
  const kcc::GlobalSym* g = image_.find_global(name);
  if (!g) return {Errc::kNotFound, "no global '" + name + "'"};
  return machine_.mem().write_u64(g->addr, value,
                                  machine::AccessMode::normal());
}

Status Kernel::rmmod(const std::string& name) {
  for (auto it = modules_.begin(); it != modules_.end(); ++it) {
    if ((*it)->name() == name) {
      modules_.erase(it);
      return Status::ok();
    }
  }
  return {Errc::kNotFound, "module not loaded: " + name};
}

}  // namespace kshot::kernel
