#include "kernel/scheduler.hpp"

#include "common/log.hpp"

namespace kshot::kernel {

namespace {
constexpr size_t kMaxRecordedResults = 4096;
}

Thread::Thread(int id, std::vector<SyscallReq> program, bool loop)
    : id_(id), program_(std::move(program)), loop_(loop) {}

Result<int> Scheduler::spawn(std::vector<SyscallReq> program, bool loop) {
  if (threads_.size() >= kernel_.layout().max_threads) {
    return {Errc::kResourceExhausted, "too many threads"};
  }
  if (program.empty()) {
    return {Errc::kInvalidArgument, "empty thread program"};
  }
  int id = static_cast<int>(threads_.size());
  threads_.emplace_back(id, std::move(program), loop);
  return id;
}

void Scheduler::begin_syscall(Thread& t) {
  const MemoryLayout& lay = kernel_.layout();
  const SyscallReq& req = t.program_[t.pc_];
  auto entry = kernel_.syscall_entry(req.nr);
  if (!entry) {
    t.state_ = ThreadState::kOops;
    kernel_.record_oops({t.id_, 0, 0, "bad syscall nr"});
    return;
  }

  machine::CpuState ctx{};
  for (size_t i = 0; i < req.args.size(); ++i) ctx.regs[1 + i] = req.args[i];
  u64 stack_top =
      lay.stacks_base + (static_cast<u64>(t.id_) + 1) * lay.stack_size - 64;
  ctx.sp() = stack_top;
  ctx.rip = *entry;
  t.ctx_ = ctx;
  t.in_call_ = true;

  // Push the return sentinel the runtime uses to detect completion.
  machine_.mem().write_u64(stack_top - 8, machine::kReturnSentinel,
                           machine::AccessMode::normal());
  t.ctx_.sp() = stack_top - 8;
}

void Scheduler::run_thread_quantum(Thread& t, u64 quantum_instrs) {
  if (t.state_ == ThreadState::kFinished || t.state_ == ThreadState::kOops) {
    return;
  }
  if (!t.in_call_) begin_syscall(t);
  if (t.state_ != ThreadState::kReady) return;

  machine_.cpu() = t.ctx_;
  u64 budget = quantum_instrs;
  while (budget > 0) {
    machine::StepResult res = machine_.step();
    --budget;
    switch (res.kind) {
      case machine::StepKind::kOk:
        continue;
      case machine::StepKind::kRetTop: {
        // Syscall finished.
        t.last_result_ = machine_.cpu().regs[0];
        if (t.results_.size() < kMaxRecordedResults) {
          t.results_.push_back(t.last_result_);
        }
        ++t.completed_;
        ++stats_.syscalls_completed;
        t.in_call_ = false;
        ++t.pc_;
        if (t.pc_ >= t.program_.size()) {
          if (t.loop_) {
            t.pc_ = 0;
          } else {
            t.state_ = ThreadState::kFinished;
            t.ctx_ = machine_.cpu();
            return;
          }
        }
        begin_syscall(t);
        if (t.state_ != ThreadState::kReady) return;
        machine_.cpu() = t.ctx_;
        continue;
      }
      case machine::StepKind::kOops:
      case machine::StepKind::kMemFault:
      case machine::StepKind::kBadInstr: {
        t.state_ = ThreadState::kOops;
        ++stats_.oopses;
        kernel_.record_oops(
            {t.id_, machine_.cpu().rip, res.info, res.detail});
        KSHOT_LOG(kDebug, "sched")
            << "thread " << t.id_ << " oops at rip=0x" << std::hex
            << machine_.cpu().rip << std::dec << ": " << res.detail;
        return;
      }
      case machine::StepKind::kHalt:
      case machine::StepKind::kBreak:
        t.state_ = ThreadState::kFinished;
        t.ctx_ = machine_.cpu();
        return;
    }
  }
  // Quantum expired mid-syscall: save context.
  t.ctx_ = machine_.cpu();
}

void Scheduler::run(u64 quanta, u64 quantum_instrs) {
  for (u64 q = 0; q < quanta; ++q) {
    if (!threads_.empty()) {
      Thread& t = threads_[next_ % threads_.size()];
      ++next_;
      run_thread_quantum(t, quantum_instrs);
    }
    ++stats_.quanta;
    // Kernel modules (including rootkits) run with kernel privilege even on
    // an otherwise idle system.
    for (const auto& mod : kernel_.modules()) {
      mod->on_tick(machine_, kernel_);
    }
  }
}

void Scheduler::restart_in_flight_syscalls() {
  for (auto& t : threads_) {
    if (t.in_call_ && t.state_ == ThreadState::kReady) {
      t.in_call_ = false;  // begin_syscall will re-enter the same request
    }
  }
}

bool Scheduler::any_thread_in_range(u64 lo, u64 hi) const {
  for (const auto& t : threads_) {
    if (t.in_call_ && t.state_ == ThreadState::kReady &&
        t.ctx_.rip >= lo && t.ctx_.rip < hi) {
      return true;
    }
  }
  return false;
}

size_t Scheduler::checkpointable_bytes() const {
  size_t total = 0;
  for (const auto& t : threads_) {
    if (t.state() == ThreadState::kReady ||
        t.state() == ThreadState::kRunning || t.mid_syscall()) {
      total += kernel_.layout().stack_size + sizeof(machine::CpuState);
    }
  }
  return total;
}

}  // namespace kshot::kernel
