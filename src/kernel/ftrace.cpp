#include "kernel/ftrace.hpp"

#include "common/byte_io.hpp"
#include "isa/assembler.hpp"

namespace kshot::kernel {

namespace {
// The stub and counter live in the last page of the module area, away from
// kpatch-style patch modules that allocate from the bottom.
constexpr u64 kStubPageOffsetFromEnd = 4096;
}  // namespace

Status FtraceRuntime::install() {
  if (installed_) return Status::ok();
  const MemoryLayout& lay = kernel_.layout();
  auto& mem = kernel_.machine().mem();

  u64 page = lay.module_base + lay.module_size - kStubPageOffsetFromEnd;
  counter_addr_ = page;      // 8-byte hit counter
  stub_addr_ = page + 16;    // stub code follows

  // __fentry__: preserve r10 (the only register used), bump the counter.
  isa::Assembler a;
  a.push(10);
  a.loadg(10, static_cast<u32>(counter_addr_));
  a.alui(isa::Op::kAddi, 10, 1);
  a.storeg(10, static_cast<u32>(counter_addr_));
  a.pop(10);
  a.ret();
  auto code = a.finish();
  if (!code) return code.status();

  KSHOT_RETURN_IF_ERROR(
      mem.write_u64(counter_addr_, 0, machine::AccessMode::normal()));
  KSHOT_RETURN_IF_ERROR(
      mem.write(stub_addr_, *code, machine::AccessMode::normal()));
  installed_ = true;
  return Status::ok();
}

Status FtraceRuntime::enable(const std::string& function) {
  if (!installed_) return {Errc::kFailedPrecondition, "ftrace not installed"};
  const kcc::Symbol* sym = kernel_.image().find_symbol(function);
  if (sym == nullptr) return {Errc::kNotFound, "no such function"};
  if (!sym->traced) {
    return {Errc::kUnsupported, "function compiled notrace"};
  }
  // call rel32: E8, displacement relative to the end of the instruction.
  Bytes call;
  call.push_back(0xE8);
  u8 rel[4];
  i64 disp = static_cast<i64>(stub_addr_) - static_cast<i64>(sym->addr + 5);
  store_u32(rel, static_cast<u32>(static_cast<i32>(disp)));
  call.insert(call.end(), rel, rel + 4);
  KSHOT_RETURN_IF_ERROR(kernel_.machine().mem().write(
      sym->addr, call, machine::AccessMode::normal()));
  enabled_.insert(function);
  return Status::ok();
}

Status FtraceRuntime::disable(const std::string& function) {
  if (!enabled_.count(function)) {
    return {Errc::kFailedPrecondition, "not traced"};
  }
  const kcc::Symbol* sym = kernel_.image().find_symbol(function);
  if (sym == nullptr) return {Errc::kNotFound, "no such function"};
  Bytes nop5 = {0x0F, 0x1F, 0x44, 0x00, 0x00};
  KSHOT_RETURN_IF_ERROR(kernel_.machine().mem().write(
      sym->addr, nop5, machine::AccessMode::normal()));
  enabled_.erase(function);
  return Status::ok();
}

Result<u64> FtraceRuntime::hits() const {
  if (!installed_) return Status{Errc::kFailedPrecondition, "not installed"};
  return kernel_.machine().mem().read_u64(counter_addr_,
                                          machine::AccessMode::normal());
}

}  // namespace kshot::kernel
