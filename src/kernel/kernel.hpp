// The simulated OS kernel: loads a kcc KernelImage into machine memory,
// dispatches syscalls to kernel functions, and keeps an oops log. Also hosts
// the kernel-module framework that both benign modules and rootkits use —
// modules run with full kernel privilege (normal-mode memory access), which
// is exactly the privilege level the paper distrusts.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kcc/image.hpp"
#include "kernel/layout.hpp"
#include "machine/machine.hpp"

namespace kshot::kernel {

/// Diagnostic record for a kernel oops (trap, BUG, fault).
struct OopsRecord {
  int thread_id = -1;
  u64 rip = 0;
  u64 code = 0;
  std::string detail;
};

/// Information the target sends to the remote patch server so it can build a
/// byte-compatible image (paper: "kernel version, configuration, and
/// compilation flags sufficient to rebuild the binary image").
struct OsInfo {
  std::string version;
  u64 text_base = 0;
  u64 data_base = 0;
  bool ftrace = true;
  crypto::Digest256 measurement{};
};

class Kernel;

/// A loadable kernel module: runs with kernel privilege on every scheduler
/// tick. Rootkits in `attacks/` implement this interface.
class KernelModule {
 public:
  virtual ~KernelModule() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual void on_tick(machine::Machine& m, Kernel& k) = 0;
};

class Kernel {
 public:
  Kernel(machine::Machine& m, kcc::KernelImage image, MemoryLayout layout);

  /// Copies text and data into machine memory and applies the boot-time page
  /// attribute configuration, including the KShot reserved region (mem_RW /
  /// mem_W / mem_X) that paging_init would set up (paper §V-B).
  Status load();

  /// Registers syscall `nr` -> kernel function.
  Status register_syscall(int nr, const std::string& function);
  [[nodiscard]] Result<u64> syscall_entry(int nr) const;

  [[nodiscard]] const kcc::KernelImage& image() const { return image_; }

  /// Swaps the kernel's notion of its own image (whole-kernel replacement,
  /// used by the KUP baseline). Syscalls re-resolve by symbol name.
  void replace_image(kcc::KernelImage img) { image_ = std::move(img); }
  [[nodiscard]] const MemoryLayout& layout() const { return layout_; }
  machine::Machine& machine() { return machine_; }

  [[nodiscard]] OsInfo os_info() const;

  /// Current value of a global variable, read from machine memory.
  [[nodiscard]] Result<u64> read_global(const std::string& name) const;
  Status write_global(const std::string& name, u64 value);

  // Oops log ---------------------------------------------------------------
  void record_oops(OopsRecord rec) { oops_log_.push_back(std::move(rec)); }
  [[nodiscard]] const std::vector<OopsRecord>& oops_log() const {
    return oops_log_;
  }
  void clear_oops_log() { oops_log_.clear(); }

  // Kernel modules -----------------------------------------------------------
  void insmod(std::shared_ptr<KernelModule> mod) {
    modules_.push_back(std::move(mod));
  }
  Status rmmod(const std::string& name);
  [[nodiscard]] const std::vector<std::shared_ptr<KernelModule>>& modules()
      const {
    return modules_;
  }

 private:
  machine::Machine& machine_;
  kcc::KernelImage image_;
  MemoryLayout layout_;
  std::map<int, std::string> syscalls_;
  std::vector<OopsRecord> oops_log_;
  std::vector<std::shared_ptr<KernelModule>> modules_;
  bool loaded_ = false;
};

}  // namespace kshot::kernel
