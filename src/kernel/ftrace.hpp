// Kernel dynamic tracing runtime (paper §V-A "Supporting Kernel Tracing").
// Traced functions are compiled with a 5-byte nop pad at their entry; this
// runtime — like the real kernel's ftrace — rewrites that pad at runtime
// into `call __fentry__` and back. Live patching must coexist: KShot writes
// its trampoline *after* the pad, so the tracer and the patcher own disjoint
// bytes of the function entry.
//
// The __fentry__ stub is hand-assembled to clobber nothing the interrupted
// function needs: it saves the one scratch register it uses and touches no
// flags (our ISA's arithmetic does not set flags; only cmp does).
#pragma once

#include <set>

#include "kernel/kernel.hpp"

namespace kshot::kernel {

class FtraceRuntime {
 public:
  explicit FtraceRuntime(Kernel& k) : kernel_(k) {}

  /// Installs the __fentry__ stub and its hit counter at the top of the
  /// kernel module area.
  Status install();

  /// Rewrites `function`'s entry pad into `call __fentry__`. Fails for
  /// functions compiled `notrace` or when not installed.
  Status enable(const std::string& function);

  /// Restores the nop pad.
  Status disable(const std::string& function);

  [[nodiscard]] bool is_traced(const std::string& function) const {
    return enabled_.count(function) > 0;
  }

  /// Number of traced-function entries since install().
  [[nodiscard]] Result<u64> hits() const;

  /// Address of the stub (for tests).
  [[nodiscard]] u64 stub_addr() const { return stub_addr_; }

 private:
  Kernel& kernel_;
  bool installed_ = false;
  u64 stub_addr_ = 0;
  u64 counter_addr_ = 0;
  std::set<std::string> enabled_;
};

}  // namespace kshot::kernel
