// Threads and a round-robin scheduler. Each thread repeatedly issues
// syscalls from a small program; the scheduler time-slices them on the
// single simulated core. Because SMIs arrive between instructions, a live
// patch can land while any thread is suspended *inside* a target function —
// the consistency situation trampoline-at-entry patching must tolerate.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "kernel/kernel.hpp"

namespace kshot::kernel {

/// One syscall invocation in a thread's program.
struct SyscallReq {
  int nr = 0;
  std::array<u64, 5> args{};
};

enum class ThreadState { kReady, kRunning, kFinished, kOops };

class Thread {
 public:
  Thread(int id, std::vector<SyscallReq> program, bool loop);

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] ThreadState state() const { return state_; }
  [[nodiscard]] u64 syscalls_completed() const { return completed_; }
  [[nodiscard]] u64 last_result() const { return last_result_; }
  /// All syscall return values collected so far (capped).
  [[nodiscard]] const std::vector<u64>& results() const { return results_; }

  /// True if the thread is currently suspended mid-syscall (its saved rip is
  /// inside kernel text rather than between calls).
  [[nodiscard]] bool mid_syscall() const { return in_call_; }
  [[nodiscard]] const machine::CpuState& saved_ctx() const { return ctx_; }

 private:
  friend class Scheduler;

  int id_;
  std::vector<SyscallReq> program_;
  bool loop_;
  size_t pc_ = 0;  // index of next syscall
  bool in_call_ = false;
  machine::CpuState ctx_{};
  ThreadState state_ = ThreadState::kReady;
  u64 completed_ = 0;
  u64 last_result_ = 0;
  std::vector<u64> results_;
};

struct SchedulerStats {
  u64 quanta = 0;
  u64 syscalls_completed = 0;
  u64 oopses = 0;
};

class Scheduler {
 public:
  Scheduler(machine::Machine& m, Kernel& k) : machine_(m), kernel_(k) {}

  /// Creates a thread running `program`; if `loop`, the program repeats
  /// forever. Returns the thread id.
  Result<int> spawn(std::vector<SyscallReq> program, bool loop = true);

  [[nodiscard]] Thread& thread(int id) { return threads_[id]; }
  [[nodiscard]] const Thread& thread(int id) const { return threads_[id]; }
  [[nodiscard]] size_t thread_count() const { return threads_.size(); }

  /// Runs `quanta` scheduling quanta of `quantum_instrs` instructions each.
  /// Kernel modules' on_tick hooks run between quanta (with kernel
  /// privilege).
  void run(u64 quanta, u64 quantum_instrs = 64);

  [[nodiscard]] const SchedulerStats& stats() const { return stats_; }

  /// Sum of userspace memory bytes (stacks) across live threads — what a
  /// checkpoint/restore patching system (KUP) would have to save.
  [[nodiscard]] size_t checkpointable_bytes() const;

  /// Aborts every in-flight syscall and restarts it from its entry point —
  /// what a whole-kernel-replacement patcher (KUP) does after swapping
  /// kernels, since saved kernel-mode contexts are invalid in the new image.
  void restart_in_flight_syscalls();

  /// True if any live thread's saved rip lies within [lo, hi) — the
  /// activeness check in-kernel patchers (kpatch/KARMA) rely on.
  [[nodiscard]] bool any_thread_in_range(u64 lo, u64 hi) const;

 private:
  void run_thread_quantum(Thread& t, u64 quantum_instrs);
  void begin_syscall(Thread& t);

  machine::Machine& machine_;
  Kernel& kernel_;
  std::vector<Thread> threads_;
  size_t next_ = 0;
  SchedulerStats stats_;
};

}  // namespace kshot::kernel
