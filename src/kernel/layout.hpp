// Physical memory map of the simulated target machine.
//
//   0x000A0000  SMRAM (128 KB)           -- locked by firmware at boot
//   0x00100000  kernel text (<= 2 MB)    -- RWX for normal mode (the kernel
//                                           may patch itself; so may rootkits)
//   0x00400000  kernel data (<= 1 MB)    -- globals, 8 bytes each, plus slack
//   0x00800000  thread stacks            -- 64 KB per thread
//   0x01000000  KShot reserved region    -- 18 MB by default (paper §V-B):
//                 mem_RW (4 KB)   key-exchange mailbox, read/write
//                 mem_W  (~8 MB)  encrypted patch staging, write-only
//                 mem_X  (~10 MB) patched function text, execute-only
//   0x02400000  SGX EPC (16 MB)
//
// The machine defaults to 64 MB of physical memory.
#pragma once

#include "common/types.hpp"

namespace kshot::kernel {

struct MemoryLayout {
  size_t mem_bytes = 64ull << 20;

  PhysAddr smram_base = 0xA0000;
  size_t smram_size = 0x20000;

  PhysAddr text_base = 0x10'0000;
  size_t text_max = 2ull << 20;

  PhysAddr data_base = 0x40'0000;
  size_t data_max = 1ull << 20;

  PhysAddr stacks_base = 0x80'0000;
  size_t stack_size = 64 * 1024;
  size_t max_threads = 64;

  // Kernel module area (kpatch-style in-kernel patchers allocate here).
  PhysAddr module_base = 0xE0'0000;
  size_t module_size = 1ull << 20;

  // KShot reserved region (total = paper's 18 MB).
  PhysAddr reserved_base = 0x100'0000;
  size_t mem_rw_size = 4 * 1024;
  size_t mem_w_size = (6ull << 20) - 4 * 1024;
  size_t mem_x_size = 12ull << 20;

  PhysAddr epc_base = 0x240'0000;
  size_t epc_size = 16ull << 20;

  [[nodiscard]] PhysAddr mem_rw_base() const { return reserved_base; }
  [[nodiscard]] PhysAddr mem_w_base() const {
    return reserved_base + mem_rw_size;
  }
  [[nodiscard]] PhysAddr mem_x_base() const {
    return reserved_base + mem_rw_size + mem_w_size;
  }
  [[nodiscard]] size_t reserved_total() const {
    return mem_rw_size + mem_w_size + mem_x_size;
  }

  /// A layout with an enlarged staging/text region for the big-patch
  /// sweeps of Tables II/III (up to 10 MB patches need both a bigger mem_W
  /// and a bigger mem_X).
  static MemoryLayout for_large_patches();

  /// A layout whose kernel text segment itself is large enough to hold a
  /// multi-megabyte function (Table II/III sweeps go to 10 MB patches).
  static MemoryLayout for_size_sweep();
};

}  // namespace kshot::kernel
