#include "testbed/testbed.hpp"

namespace kshot::testbed {

kcc::CompileOptions options_for_layout(const kernel::MemoryLayout& lay,
                                       const std::string& version) {
  kcc::CompileOptions opts;
  opts.text_base = lay.text_base;
  opts.data_base = lay.data_base;
  opts.enable_inlining = true;
  opts.enable_ftrace = true;
  opts.version = version;
  return opts;
}

Result<std::unique_ptr<Testbed>> Testbed::boot(const cve::CveCase& c,
                                               TestbedOptions opts) {
  auto tb = std::unique_ptr<Testbed>(new Testbed(c));
  const kernel::MemoryLayout& lay = opts.layout;
  tb->layout_ = lay;

  tb->machine_ = std::make_unique<machine::Machine>(
      lay.mem_bytes, lay.smram_base, lay.smram_size, opts.seed);
  KSHOT_RETURN_IF_ERROR(tb->machine_->set_cpus(opts.cpus));
  tb->machine_->set_serial_rendezvous(opts.serial_rendezvous);
  tb->sgx_ = std::make_unique<sgx::SgxRuntime>(
      *tb->machine_, lay.epc_base, lay.epc_size, opts.seed ^ 0xA77E57);
  if (opts.fault_plan) {
    auto inj = std::make_unique<netsim::FaultInjector>(*opts.fault_plan,
                                                       opts.fault_seed);
    tb->fault_injector_ = inj.get();
    tb->channel_ = std::move(inj);
  } else {
    tb->channel_ = std::make_unique<netsim::Channel>();
  }
  if (opts.shared_server != nullptr) {
    tb->server_ = opts.shared_server;
    tb->server_->add_verifier(tb->sgx_.get());
  } else {
    tb->owned_server_ = std::make_unique<netsim::PatchServer>(
        tb->sgx_.get(), opts.seed ^ 0x5E17E5, opts.metrics);
    tb->server_ = tb->owned_server_.get();
    if (opts.trace) tb->owned_server_->set_trace(opts.trace);
  }

  tb->server_->add_patch(
      {c.id, c.kernel, c.pre_source, c.post_source});

  auto pre = tb->server_->build_pre_image(
      c.id, options_for_layout(lay, c.kernel));
  if (!pre) return pre.status();
  tb->pre_image_ = *pre;

  tb->kernel_ =
      std::make_unique<kernel::Kernel>(*tb->machine_, std::move(*pre), lay);
  KSHOT_RETURN_IF_ERROR(tb->kernel_->load());

  KSHOT_RETURN_IF_ERROR(
      tb->kernel_->register_syscall(cve::kSysAccount, "sys_account"));
  KSHOT_RETURN_IF_ERROR(
      tb->kernel_->register_syscall(cve::kSysBusy, "sys_busy"));
  KSHOT_RETURN_IF_ERROR(
      tb->kernel_->register_syscall(cve::kSysHash, "sys_hash"));
  KSHOT_RETURN_IF_ERROR(
      tb->kernel_->register_syscall(c.syscall_nr, c.entry_function));

  tb->sched_ = std::make_unique<kernel::Scheduler>(*tb->machine_,
                                                   *tb->kernel_);
  for (int i = 0; i < opts.workload_threads; ++i) {
    auto tid = tb->sched_->spawn(
        {{cve::kSysBusy, {8, 0, 0, 0, 0}},
         {cve::kSysHash, {static_cast<u64>(i), 0, 0, 0, 0}}},
        /*loop=*/true);
    if (!tid) return tid.status();
  }

  tb->kshot_ = std::make_unique<core::Kshot>(
      *tb->kernel_, *tb->sgx_, *tb->server_, *tb->channel_,
      opts.seed ^ 0xC0FFEE);
  if (opts.metrics) tb->kshot_->set_metrics(opts.metrics);
  if (opts.trace) tb->kshot_->set_trace(opts.trace, opts.trace_target);
  if (opts.retry_policy) tb->kshot_->set_retry_policy(*opts.retry_policy);
  if (opts.install_kshot) {
    KSHOT_RETURN_IF_ERROR(
        tb->kshot_->install(opts.watchdog_interval_cycles));
  }
  return tb;
}

Result<SyscallOutcome> Testbed::run_syscall(int nr, std::array<u64, 5> args,
                                            u64 max_instrs) {
  auto entry = kernel_->syscall_entry(nr);
  if (!entry) return entry.status();
  const auto& lay = kernel_->layout();

  // Use the last stack slot (beyond scheduler threads) for direct calls.
  u64 stack_top =
      lay.stacks_base + lay.max_threads * lay.stack_size - 64;
  machine::CpuState saved = machine_->cpu();

  machine::CpuState ctx{};
  for (size_t i = 0; i < args.size(); ++i) ctx.regs[1 + i] = args[i];
  ctx.sp() = stack_top - 8;
  ctx.rip = *entry;
  KSHOT_RETURN_IF_ERROR(machine_->mem().write_u64(
      ctx.sp(), machine::kReturnSentinel, machine::AccessMode::normal()));
  machine_->cpu() = ctx;

  SyscallOutcome out;
  machine::StepResult res = machine_->run(max_instrs);
  switch (res.kind) {
    case machine::StepKind::kRetTop:
      out.value = machine_->cpu().regs[0];
      break;
    case machine::StepKind::kOops:
      out.oops = true;
      out.trap_code = res.info;
      out.detail = res.detail;
      break;
    default:
      machine_->cpu() = saved;
      return Status{Errc::kInternal,
                    "syscall did not complete: " + res.detail};
  }
  machine_->cpu() = saved;
  return out;
}

Result<SyscallOutcome> Testbed::run_exploit() {
  return run_syscall(case_.syscall_nr, case_.exploit_args);
}

Result<SyscallOutcome> Testbed::run_benign() {
  return run_syscall(case_.syscall_nr, case_.benign_args);
}

kcc::CompileOptions Testbed::compile_options() const {
  return options_for_layout(kernel_->layout(), case_.kernel);
}

cve::ProbeFn prober(Testbed& tb) {
  return [&tb](int nr,
               const std::array<u64, 5>& args) -> Result<cve::ProbeOutcome> {
    auto out = tb.run_syscall(nr, args);
    if (!out) return out.status();
    cve::ProbeOutcome po;
    po.oops = out->oops;
    po.trap_code = static_cast<u8>(out->trap_code);
    po.value = out->value;
    return po;
  };
}

cve::CveCase make_size_sweep_case(size_t target_bytes) {
  cve::CveCase c;
  c.id = "SWEEP-" + std::to_string(target_bytes);
  c.kernel = "sim-4.4";
  c.functions = {"sweep_target"};
  c.types = "1";
  c.trap_code = 99;
  c.syscall_nr = 90;
  c.entry_function = "sweep_target";
  c.exploit_args = {8192, 0, 0, 0, 0};
  c.benign_args = {123, 0, 0, 0, 0};

  std::string base = cve::base_kernel_source();
  if (target_bytes < 128) {
    // Minimal untraced function: the whole body is the patch payload.
    c.pre_source = base +
        "\nnotrace fn sweep_target(a1, a2) {\n"
        "  if (a1 > 4096) {\n    bug(99);\n  }\n"
        "  return a1 + 1;\n}\n";
    c.post_source = base +
        "\nnotrace fn sweep_target(a1, a2) {\n"
        "  if (a1 > 4096) {\n    return 0 - 22;\n  }\n"
        "  return a1 + 1;\n}\n";
    return c;
  }

  // Padded function: the post body carries ~target_bytes of code. The fixed
  // parts of the schema are ~120 bytes; the pad makes up the rest.
  size_t pad = target_bytes > 140 ? target_bytes - 140 : 8;
  auto body = [&](bool fixed) {
    std::string guard = fixed ? "    return 0 - 22;\n" : "    bug(99);\n";
    return std::string("\nfn sweep_target(a1, a2) {\n") +
           "  let t = k_account();\n" +
           "  if (a1 > 4096) {\n" + guard + "  }\n" +
           "  pad(" + std::to_string(pad) + ");\n" +
           "  return k_hash(a1 & 4095) + t * 0;\n}\n";
  };
  c.pre_source = base + body(false);
  c.post_source = base + body(true);
  return c;
}

cve::CveCase make_splice_sweep_case(size_t target_bytes) {
  cve::CveCase c;
  c.id = "SPLICE-" + std::to_string(target_bytes);
  c.kernel = "sim-4.4";
  c.functions = {"splice_target"};
  c.types = "1";
  c.trap_code = 98;
  c.syscall_nr = 91;
  c.entry_function = "splice_target";
  c.exploit_args = {8192, 0, 0, 0, 0};
  c.benign_args = {123, 0, 0, 0, 0};

  // The vulnerable guard traps on the exploit input; the fix widens the
  // constant so the trap is unreachable. Both bodies are byte-count
  // identical (only an immediate changes), which is what makes the patched
  // function fit the old footprint and splice in place.
  std::string base = cve::base_kernel_source();
  size_t pad = target_bytes > 140 ? target_bytes - 140 : 8;
  auto body = [&](const char* limit) {
    return std::string("\nfn splice_target(a1, a2) {\n") +
           "  let t = k_account();\n" +
           "  if (a1 > " + limit + ") {\n    bug(98);\n  }\n" +
           "  pad(" + std::to_string(pad) + ");\n" +
           "  return k_hash(a1 & 4095) + t * 0;\n}\n";
  };
  c.pre_source = base + body("4096");
  c.post_source = base + body("999999999");
  return c;
}

kernel::MemoryLayout layout_for_patch_bytes(size_t target_bytes) {
  if (target_bytes <= 512 * 1024) return kernel::MemoryLayout{};
  return kernel::MemoryLayout::for_size_sweep();
}

}  // namespace kshot::testbed
