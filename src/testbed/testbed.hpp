// Experiment harness: boots a complete simulated deployment — target
// machine, vulnerable kernel, SGX runtime, remote patch server, network
// channel, and an installed KShot — for one CVE case. Shared by the test
// suite, the benchmark binaries, and the examples.
#pragma once

#include <memory>
#include <optional>

#include "core/kshot.hpp"
#include "cve/suite.hpp"
#include "kernel/scheduler.hpp"
#include "netsim/faults.hpp"
#include "netsim/patch_server.hpp"

namespace kshot::testbed {

/// Outcome of driving one syscall to completion on the target.
struct SyscallOutcome {
  bool oops = false;
  u64 trap_code = 0;   // meaningful when oops
  u64 value = 0;       // r0 when !oops
  std::string detail;
};

struct TestbedOptions {
  kernel::MemoryLayout layout{};
  u64 seed = 0x1234;
  bool install_kshot = true;
  /// Number of simulated CPUs on the target (1 = classic single-CPU model;
  /// >1 engages the SMI rendezvous cost model). Must be >= 1.
  u32 cpus = 1;
  /// Serial (pessimistic, one-SMI-entry-per-CPU) rendezvous instead of the
  /// default broadcast-parallel model. Only meaningful when cpus > 1.
  bool serial_rendezvous = false;
  /// Spawn this many looping background workload threads (sys_busy).
  int workload_threads = 0;
  /// Nonzero arms the firmware periodic-SMI introspection watchdog.
  u64 watchdog_interval_cycles = 0;
  /// When set, the enclave<->server channel is a FaultInjector built from
  /// this plan (seeded with `fault_seed`) instead of a clean Channel.
  std::optional<netsim::FaultPlan> fault_plan;
  u64 fault_seed = 0xFA017;
  /// Retry policy installed on the booted Kshot (default: Kshot's default).
  std::optional<core::RetryPolicy> retry_policy;
  /// When non-null, this testbed joins an existing fleet-wide patch server
  /// instead of booting its own: the target's SGX platform is registered as
  /// an accepted verifier, the CVE's patch sources are announced (idempotent
  /// across the fleet), and the pre-image build goes through the server's
  /// shared cache. The server must outlive the testbed.
  netsim::PatchServer* shared_server = nullptr;
  /// When non-null, the booted Kshot pipeline (handler, enclave, fetch/retry
  /// path) emits spans into this recorder, tagged with `trace_target`.
  obs::TraceRecorder* trace = nullptr;
  u32 trace_target = 0;
  /// When non-null, pipeline counters/histograms land in this registry
  /// instead of a per-pipeline private one (fleet aggregation).
  obs::MetricsRegistry* metrics = nullptr;
};

class Testbed {
 public:
  /// Boots the full deployment for `c`. The machine runs the *pre* (still
  /// vulnerable) kernel; the server knows the patch.
  static Result<std::unique_ptr<Testbed>> boot(const cve::CveCase& c,
                                               TestbedOptions opts = {});

  machine::Machine& machine() { return *machine_; }
  kernel::Kernel& kernel() { return *kernel_; }
  kernel::Scheduler& scheduler() { return *sched_; }
  sgx::SgxRuntime& sgx() { return *sgx_; }
  netsim::Channel& channel() { return *channel_; }
  /// Non-null iff the testbed was booted with a fault plan.
  netsim::FaultInjector* fault_injector() { return fault_injector_; }
  /// The patch server this deployment talks to (owned, or the fleet-shared
  /// one from TestbedOptions::shared_server).
  netsim::PatchServer& server() { return *server_; }
  core::Kshot& kshot() { return *kshot_; }
  /// The memory layout this deployment was booted with (adversaries need
  /// the reserved-region addresses to aim their interpositions).
  [[nodiscard]] const kernel::MemoryLayout& layout() const { return layout_; }
  const cve::CveCase& cve_case() const { return case_; }
  const kcc::KernelImage& pre_image() const { return pre_image_; }

  /// Runs one syscall synchronously on a dedicated context (not a scheduler
  /// thread), up to `max_instrs` instructions.
  Result<SyscallOutcome> run_syscall(int nr, std::array<u64, 5> args,
                                     u64 max_instrs = 2'000'000);

  /// Convenience: fires the case's exploit / benign input.
  Result<SyscallOutcome> run_exploit();
  Result<SyscallOutcome> run_benign();

  /// The OsInfo + compile options matching this deployment.
  [[nodiscard]] kcc::CompileOptions compile_options() const;

 private:
  Testbed(cve::CveCase c) : case_(std::move(c)) {}

  cve::CveCase case_;
  kernel::MemoryLayout layout_{};
  std::unique_ptr<machine::Machine> machine_;
  std::unique_ptr<kernel::Kernel> kernel_;
  std::unique_ptr<kernel::Scheduler> sched_;
  std::unique_ptr<sgx::SgxRuntime> sgx_;
  std::unique_ptr<netsim::Channel> channel_;
  netsim::FaultInjector* fault_injector_ = nullptr;  // view into channel_
  std::unique_ptr<netsim::PatchServer> owned_server_;
  netsim::PatchServer* server_ = nullptr;  // owned_server_ or the shared one
  std::unique_ptr<core::Kshot> kshot_;
  kcc::KernelImage pre_image_;
};

/// Compile options for a memory layout + kernel version.
kcc::CompileOptions options_for_layout(const kernel::MemoryLayout& lay,
                                       const std::string& version);

/// Adapts a booted testbed to the backend-free cve::ProbeFn signature, so
/// cve::probe_case() (fleet health checks, the CVE tests) can drive this
/// deployment. The testbed must outlive the returned callable.
cve::ProbeFn prober(Testbed& tb);

/// Synthesizes a case whose post-patch binary payload is approximately
/// `target_bytes`, for the Table II/III patch-size sweeps (40 B .. 10 MB).
/// The exact payload size is whatever the compiler emits; benches report it.
cve::CveCase make_size_sweep_case(size_t target_bytes);

/// Synthesizes a splice-eligible case of approximately `target_bytes`: the
/// fix only widens a guard constant, so the patched body compiles to
/// exactly the old function's footprint and the enclave (under
/// LifecycleOptions::allow_splice) lays it out as an in-place splice — no
/// mem_X slot, no trampoline. The usual fix shape (bug() → return -ERR)
/// always grows the body past the old footprint, so the sweep cases above
/// never qualify.
cve::CveCase make_splice_sweep_case(size_t target_bytes);

/// A layout that can stage and place a patch of `target_bytes`.
kernel::MemoryLayout layout_for_patch_bytes(size_t target_bytes);

}  // namespace kshot::testbed
