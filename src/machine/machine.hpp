// The simulated target machine: CPU state, instruction interpreter, System
// Management Mode with its SMRAM save-state area, and the virtual cycle
// clock. The SMM handler is a native callback registered by "firmware"
// before SMRAM is locked — after locking, nothing (in particular not the
// simulated kernel or a rootkit) can replace it, which models D_LCK.
#pragma once

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "isa/isa.hpp"
#include "machine/cost_model.hpp"
#include "machine/phys_mem.hpp"

namespace kshot::machine {

/// Register used as the stack pointer by push/pop/call/ret (like x86 rsp,
/// it is an ordinary GPR).
inline constexpr int kSpReg = 15;
/// Register used as the frame pointer by compiled code (convention only).
inline constexpr int kFpReg = 14;

/// Architectural register state of the single simulated core.
struct CpuState {
  std::array<u64, isa::kNumRegs> regs{};
  u64 rip = 0;
  // Flags produced by cmp: zero and signed-less.
  bool zf = false;
  bool sf = false;

  u64& sp() { return regs[kSpReg]; }
  [[nodiscard]] u64 sp() const { return regs[kSpReg]; }
};

enum class CpuMode { kProtected, kSmm };

/// Why a step() stopped (other than normal completion).
enum class StepKind {
  kOk,         // instruction retired
  kHalt,       // hlt
  kBreak,      // int3
  kOops,       // ud2 / trap / divide-by-zero: a kernel oops
  kMemFault,   // page-attribute or range violation
  kBadInstr,   // undecodable bytes at rip
  kRetTop,     // returned to the call-stack sentinel (function finished)
};

struct StepResult {
  StepKind kind = StepKind::kOk;
  u64 info = 0;          // trap code / faulting address
  std::string detail;    // diagnostic text for faults
};

/// Return address sentinel pushed by the kernel runtime before dispatching
/// into a function; `ret` to it reports kRetTop.
inline constexpr u64 kReturnSentinel = 0xFFFF'FFFF'FFFF'F000ULL;

/// Offset of the save-state area inside SMRAM (mirrors real hardware's
/// SMBASE + 0xFC00 layout).
inline constexpr u64 kSaveStateOffset = 0xFC00;

class Machine {
 public:
  /// Creates a machine with `mem_bytes` of physical memory and SMRAM at
  /// [smram_base, smram_base + smram_size).
  Machine(size_t mem_bytes, PhysAddr smram_base, size_t smram_size,
          u64 entropy_seed = 0x5eed);

  PhysMem& mem() { return mem_; }
  const PhysMem& mem() const { return mem_; }
  CpuState& cpu() { return cpu_; }
  const CpuState& cpu() const { return cpu_; }
  [[nodiscard]] CpuMode mode() const { return mode_; }

  CostModel& cost_model() { return cost_; }
  const CostModel& cost_model() const { return cost_; }

  /// "Hardware" entropy source (used by the SMM handler's DH keygen).
  Rng& hw_rng() { return rng_; }

  // Firmware configuration ------------------------------------------------
  /// Registers the SMM handler. Fails once SMRAM is locked.
  Status set_smm_handler(std::function<void(Machine&)> handler);
  /// Locks SMRAM (models the D_LCK bit); irreversible.
  void lock_smram() { smram_locked_ = true; }
  [[nodiscard]] bool smram_locked() const { return smram_locked_; }

  // Execution ---------------------------------------------------------------
  /// Interprets the instruction at cpu().rip in the current mode.
  StepResult step();

  /// Runs up to `max_instrs` instructions; stops early on any non-kOk result.
  StepResult run(u64 max_instrs);

  /// Arms a firmware periodic SMI timer: an SMI fires automatically every
  /// `interval_cycles` of virtual time while instructions execute (the
  /// HyperCheck-style heartbeat KShot's introspection can ride on). Pass 0
  /// to disarm. Fails once SMRAM is locked, like handler registration.
  Status set_periodic_smi(u64 interval_cycles);
  [[nodiscard]] u64 periodic_smi_interval() const {
    return periodic_smi_interval_;
  }

  /// Raises a System Management Interrupt: saves the architectural state into
  /// the SMRAM save-state area, switches to SMM, runs the handler, and
  /// resumes (RSM) by restoring the saved state. Charges modeled entry/exit
  /// cycles and accounts the SMM residency as downtime. With more than one
  /// CPU the entry charge becomes a full rendezvous (IPI every AP, wait for
  /// the slowest jittered arrival) and the RSM charge a per-AP wakeup.
  void trigger_smi();

  // Multi-CPU topology -------------------------------------------------------
  /// Bookkeeping for one simulated CPU. Index 0 is the BSP.
  struct CpuSlot {
    u64 entry_latency_cycles = 0;  // jitter drawn for the last rendezvous
    u64 smi_count = 0;             // SMIs this CPU rendezvoused into
  };

  /// Sets the simulated CPU count (>= 1). A 1-CPU machine is byte-for-byte
  /// the pre-multi-CPU model: fixed entry/RSM charges, no RNG draws.
  Status set_cpus(u32 n);
  [[nodiscard]] u32 cpus() const { return static_cast<u32>(slots_.size()); }
  [[nodiscard]] const std::vector<CpuSlot>& cpu_slots() const {
    return slots_;
  }
  /// Naive serial rendezvous (every CPU pays full SMI entry + RSM back to
  /// back) — the contrast model for the bench gate; default is parallel.
  void set_serial_rendezvous(bool serial) { serial_rendezvous_ = serial; }
  [[nodiscard]] bool serial_rendezvous() const { return serial_rendezvous_; }

  /// Handler-side early resume: releases `k` more application processors
  /// before RSM (clamped to cpus()-1 total). A released AP's resume overlaps
  /// the handler's remaining work and drops out of the RSM charge. Reset at
  /// every SMI entry; no-op outside SMM or in serial mode.
  void release_aps(u32 k);
  [[nodiscard]] u32 released_aps() const { return released_aps_; }

  /// Entry (rendezvous) charge of the in-flight SMI — valid inside the
  /// handler; retains the last SMI's value afterwards.
  [[nodiscard]] u64 current_rendezvous_cycles() const {
    return current_rendezvous_cycles_;
  }
  /// What RSM will charge given the current early-release state. trigger_smi
  /// charges exactly this value at RSM, so handler span math is exact.
  [[nodiscard]] u64 projected_resume_cycles() const;

  // Downtime decomposition: rendezvous + handler + resume == smm_cycles(),
  // exactly, by construction.
  [[nodiscard]] u64 rendezvous_cycles_total() const {
    return rendezvous_cycles_total_;
  }
  [[nodiscard]] u64 handler_cycles_total() const {
    return handler_cycles_total_;
  }
  [[nodiscard]] u64 resume_cycles_total() const {
    return resume_cycles_total_;
  }

  // Attack modeling ---------------------------------------------------------
  /// Models a rootkit gating SMI delivery (the DoS the paper's §VI-C
  /// handshake detects): while blocked, trigger_smi() silently does nothing —
  /// no handler run, no heartbeat, no status update. Untrusted code cannot
  /// observe the suppression directly; only the staleness of SMM-written
  /// mailbox fields reveals it.
  void set_smi_blocked(bool blocked) { smi_blocked_ = blocked; }
  [[nodiscard]] bool smi_blocked() const { return smi_blocked_; }
  /// Invoked at every trigger_smi() entry, before suppression checks and
  /// handler dispatch — the instant between the helper app's mailbox writes
  /// and SMI delivery, where an asynchronous adversary can race. Not
  /// re-entered for SMIs the hook itself raises. Pass nullptr to clear.
  void set_pre_smi_hook(std::function<void(Machine&)> hook) {
    pre_smi_hook_ = std::move(hook);
  }
  /// Models a transient SMI-gating attack: the next `n` trigger_smi() calls
  /// are swallowed, then delivery recovers on its own (unlike the sticky
  /// set_smi_blocked). Budgets add to any remaining budget.
  void add_smi_suppress_budget(u64 n) { smi_suppress_budget_ += n; }
  [[nodiscard]] u64 smi_suppress_budget() const { return smi_suppress_budget_; }
  /// SMIs swallowed while blocked (harness-side ground truth).
  [[nodiscard]] u64 suppressed_smis() const { return suppressed_smis_; }

  // Virtual time ------------------------------------------------------------
  [[nodiscard]] u64 cycles() const { return cycles_; }
  void charge_cycles(u64 c) { cycles_ += c; }
  /// Cycles spent inside SMM since construction (the paper's "downtime").
  [[nodiscard]] u64 smm_cycles() const { return smm_cycles_; }
  /// Number of SMIs taken.
  [[nodiscard]] u64 smi_count() const { return smi_count_; }
  /// Instructions retired in protected mode.
  [[nodiscard]] u64 instret() const { return instret_; }

  /// Current access mode for memory operations performed by executing code.
  [[nodiscard]] AccessMode access_mode() const {
    return mode_ == CpuMode::kSmm ? AccessMode::smm() : AccessMode::normal();
  }

  // Save-state serialization (exposed for tests and for the SMM handler,
  // which may legitimately inspect/modify the saved context).
  void save_state_to_smram();
  void restore_state_from_smram();

 private:
  StepResult exec(const isa::Instr& in, size_t len);
  /// Entry charge for the next SMI; draws one jitter per AP (never touches
  /// hw_rng, and draws nothing at all on a 1-CPU machine).
  u64 rendezvous_cost();

  PhysMem mem_;
  CpuState cpu_;
  CpuMode mode_ = CpuMode::kProtected;
  CostModel cost_;
  Rng rng_;
  /// Dedicated stream for rendezvous jitter so multi-CPU never perturbs the
  /// hw_rng draws existing goldens depend on.
  Rng jitter_rng_;

  std::function<void(Machine&)> smm_handler_;
  std::function<void(Machine&)> pre_smi_hook_;
  bool smram_locked_ = false;
  bool in_smi_ = false;
  bool in_pre_smi_hook_ = false;
  bool smi_blocked_ = false;
  u64 smi_suppress_budget_ = 0;
  u64 suppressed_smis_ = 0;
  u64 periodic_smi_interval_ = 0;
  u64 next_periodic_smi_ = 0;

  u64 cycles_ = 0;
  u64 smm_cycles_ = 0;
  u64 smi_count_ = 0;
  u64 instret_ = 0;

  std::vector<CpuSlot> slots_{1};
  bool serial_rendezvous_ = false;
  u32 released_aps_ = 0;
  u64 current_rendezvous_cycles_ = 0;
  u64 rendezvous_cycles_total_ = 0;
  u64 handler_cycles_total_ = 0;
  u64 resume_cycles_total_ = 0;
};

}  // namespace kshot::machine
