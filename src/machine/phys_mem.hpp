// Simulated physical memory with 4 KB pages, per-page R/W/X attributes, a
// firmware-lockable SMRAM range, and SGX EPC page ownership. Access control
// is the trust anchor of the whole reproduction:
//   * normal (kernel/user) accesses honor page attributes and are denied on
//     SMRAM and EPC pages;
//   * SMM accesses bypass page attributes and may touch SMRAM, but never EPC
//     (real SMM cannot read enclave memory either);
//   * enclave accesses may touch their own EPC pages plus ordinary memory.
#pragma once

#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace kshot::machine {

inline constexpr size_t kPageSize = 4096;

/// Who is performing a memory access.
struct AccessMode {
  enum class Kind { kNormal, kSmm, kEnclave };
  Kind kind = Kind::kNormal;
  u16 enclave_id = 0;  // meaningful for kEnclave

  static AccessMode normal() { return {Kind::kNormal, 0}; }
  static AccessMode smm() { return {Kind::kSmm, 0}; }
  static AccessMode enclave(u16 id) { return {Kind::kEnclave, id}; }
};

/// Per-page protection attributes as seen by normal-mode software.
struct PageAttr {
  bool read = true;
  bool write = true;
  bool exec = true;
  u16 epc_owner = 0;  // nonzero: EPC page owned by that enclave id
};

class PhysMem {
 public:
  explicit PhysMem(size_t size_bytes);

  [[nodiscard]] size_t size() const { return mem_.size(); }

  // Data access ---------------------------------------------------------
  Status read(PhysAddr addr, MutByteSpan out, AccessMode mode) const;
  Status write(PhysAddr addr, ByteSpan data, AccessMode mode);
  Result<u64> read_u64(PhysAddr addr, AccessMode mode) const;
  Status write_u64(PhysAddr addr, u64 value, AccessMode mode);
  Result<Bytes> read_bytes(PhysAddr addr, size_t n, AccessMode mode) const;

  /// Instruction fetch: checked against the page's exec attribute (not read),
  /// so execute-only regions like mem_X work as the paper requires.
  Status fetch(PhysAddr addr, size_t n, MutByteSpan out, AccessMode mode) const;

  // Page attributes ------------------------------------------------------
  /// Sets attributes on [addr, addr+len), rounded outward to page boundaries.
  void set_attrs(PhysAddr addr, size_t len, PageAttr attr);
  [[nodiscard]] PageAttr attrs_at(PhysAddr addr) const;

  // SMRAM ----------------------------------------------------------------
  void set_smram(PhysAddr base, size_t len);
  [[nodiscard]] bool in_smram(PhysAddr addr) const;
  [[nodiscard]] PhysAddr smram_base() const { return smram_base_; }
  [[nodiscard]] size_t smram_size() const { return smram_len_; }

  /// Raw pointer for the simulator harness itself (tests, loaders). Not
  /// reachable from simulated software; bounds-checked.
  u8* raw(PhysAddr addr, size_t len);
  const u8* raw(PhysAddr addr, size_t len) const;

 private:
  Status check(PhysAddr addr, size_t len, AccessMode mode, bool writing,
               bool fetching) const;

  Bytes mem_;
  std::vector<PageAttr> attrs_;
  PhysAddr smram_base_ = 0;
  size_t smram_len_ = 0;
};

}  // namespace kshot::machine
