#include "machine/machine.hpp"

#include <cassert>

#include "common/byte_io.hpp"
#include "common/log.hpp"

namespace kshot::machine {

Machine::Machine(size_t mem_bytes, PhysAddr smram_base, size_t smram_size,
                 u64 entropy_seed)
    : mem_(mem_bytes),
      rng_(entropy_seed),
      jitter_rng_(entropy_seed ^ 0x9E3779B97F4A7C15ULL) {
  mem_.set_smram(smram_base, smram_size);
}

Status Machine::set_cpus(u32 n) {
  if (n == 0) return {Errc::kInvalidArgument, "cpu count must be >= 1"};
  if (in_smi_) return {Errc::kFailedPrecondition, "cannot hotplug inside SMM"};
  slots_.assign(n, CpuSlot{});
  return Status::ok();
}

void Machine::release_aps(u32 k) {
  if (!in_smi_ || serial_rendezvous_) return;
  const u32 aps = cpus() - 1;
  released_aps_ = released_aps_ + k < aps ? released_aps_ + k : aps;
}

u64 Machine::projected_resume_cycles() const {
  const u32 n = cpus();
  if (n == 1) return cost_.rsm_cycles;
  if (serial_rendezvous_) {
    // Naive model: every CPU pays a full RSM back to back.
    return static_cast<u64>(n) * cost_.rsm_cycles;
  }
  // Parallel: one RSM plus a per-AP wakeup for every AP still parked in SMM.
  // Early-released APs resumed under the handler's remaining work for free.
  return cost_.rsm_cycles +
         static_cast<u64>(n - 1 - released_aps_) * cost_.resume_cycles_per_cpu;
}

u64 Machine::rendezvous_cost() {
  const u32 n = cpus();
  if (n == 1) return cost_.smi_entry_cycles;  // legacy model, no RNG draw
  u64 jitter_max = 0;
  u64 jitter_sum = 0;
  for (u32 i = 1; i < n; ++i) {
    u64 j = jitter_rng_.next_below(cost_.rendezvous_jitter_max_cycles + 1);
    slots_[i].entry_latency_cycles = j;
    if (j > jitter_max) jitter_max = j;
    jitter_sum += j;
  }
  slots_[0].entry_latency_cycles = 0;
  const u64 ipi = static_cast<u64>(n - 1) * cost_.ipi_cycles_per_cpu;
  if (serial_rendezvous_) {
    // Every CPU pays a full SMI entry, one after another.
    return static_cast<u64>(n) * cost_.smi_entry_cycles + ipi + jitter_sum;
  }
  // All APs enter concurrently: the BSP waits for the slowest arrival.
  return cost_.smi_entry_cycles + ipi + jitter_max;
}

Status Machine::set_smm_handler(std::function<void(Machine&)> handler) {
  if (smram_locked_) {
    return {Errc::kPermissionDenied, "SMRAM is locked (D_LCK)"};
  }
  smm_handler_ = std::move(handler);
  return Status::ok();
}

void Machine::save_state_to_smram() {
  PhysAddr base = mem_.smram_base() + kSaveStateOffset;
  u8* p = mem_.raw(base, 16 * 8 + 3 * 8);
  for (int i = 0; i < isa::kNumRegs; ++i) store_u64(p + 8 * i, cpu_.regs[i]);
  store_u64(p + 128, cpu_.rip);
  // regs already include the stack pointer (r15).
  store_u64(p + 144, (cpu_.zf ? 1u : 0u) | (cpu_.sf ? 2u : 0u));
}

void Machine::restore_state_from_smram() {
  PhysAddr base = mem_.smram_base() + kSaveStateOffset;
  const u8* p = mem_.raw(base, 16 * 8 + 3 * 8);
  for (int i = 0; i < isa::kNumRegs; ++i) cpu_.regs[i] = load_u64(p + 8 * i);
  cpu_.rip = load_u64(p + 128);
  
  u64 flags = load_u64(p + 144);
  cpu_.zf = flags & 1;
  cpu_.sf = flags & 2;
}

void Machine::trigger_smi() {
  if (pre_smi_hook_ && !in_pre_smi_hook_ && !in_smi_) {
    in_pre_smi_hook_ = true;
    pre_smi_hook_(*this);
    in_pre_smi_hook_ = false;
  }
  if (smi_blocked_) {
    ++suppressed_smis_;
    return;
  }
  if (smi_suppress_budget_ > 0) {
    --smi_suppress_budget_;
    ++suppressed_smis_;
    return;
  }
  assert(!in_smi_ && "nested SMI not modeled");
  in_smi_ = true;
  ++smi_count_;
  released_aps_ = 0;
  for (auto& s : slots_) ++s.smi_count;

  u64 entered = cycles_;
  current_rendezvous_cycles_ = rendezvous_cost();
  charge_cycles(current_rendezvous_cycles_);
  save_state_to_smram();
  mode_ = CpuMode::kSmm;

  if (smm_handler_) {
    smm_handler_(*this);
  } else {
    KSHOT_LOG(kWarn, "machine") << "SMI with no handler installed";
  }

  // RSM: restore the architectural state the hardware saved.
  restore_state_from_smram();
  mode_ = CpuMode::kProtected;
  const u64 resume = projected_resume_cycles();
  charge_cycles(resume);

  smm_cycles_ += cycles_ - entered;
  rendezvous_cycles_total_ += current_rendezvous_cycles_;
  resume_cycles_total_ += resume;
  handler_cycles_total_ +=
      cycles_ - entered - current_rendezvous_cycles_ - resume;
  in_smi_ = false;
}

StepResult Machine::step() {
  // Fetch up to the longest instruction (7 bytes).
  u8 buf[8] = {0};
  size_t want = 7;
  if (cpu_.rip + want > mem_.size()) {
    if (cpu_.rip >= mem_.size()) {
      return {StepKind::kMemFault, cpu_.rip, "rip out of range"};
    }
    want = mem_.size() - cpu_.rip;
  }
  Status st = mem_.fetch(cpu_.rip, want, MutByteSpan(buf, sizeof(buf)),
                         access_mode());
  if (!st.is_ok()) {
    return {StepKind::kMemFault, cpu_.rip, "fetch: " + st.message()};
  }
  auto dec = isa::decode(ByteSpan(buf, want));
  if (!dec) {
    return {StepKind::kBadInstr, cpu_.rip, dec.status().message()};
  }
  charge_cycles(cost_.cycles_per_instr);
  ++instret_;
  StepResult res = exec(dec->instr, dec->len);

  // Firmware periodic SMI timer: fires between instructions.
  if (periodic_smi_interval_ != 0 && cycles_ >= next_periodic_smi_ &&
      !in_smi_) {
    trigger_smi();
    next_periodic_smi_ = cycles_ + periodic_smi_interval_;
  }
  return res;
}

StepResult Machine::exec(const isa::Instr& in, size_t len) {
  using isa::Op;
  u64 next = cpu_.rip + len;
  auto& r = cpu_.regs;

  auto set_flags_cmp = [&](u64 a, u64 b) {
    cpu_.zf = a == b;
    cpu_.sf = static_cast<i64>(a) < static_cast<i64>(b);
  };

  switch (in.op) {
    case Op::kNop:
    case Op::kNop5:
      break;
    case Op::kHlt:
      cpu_.rip = next;
      return {StepKind::kHalt, 0, ""};
    case Op::kInt3:
      cpu_.rip = next;
      return {StepKind::kBreak, 0, ""};
    case Op::kUd2:
      return {StepKind::kOops, 0, "ud2 (kernel BUG)"};
    case Op::kTrap:
      return {StepKind::kOops, static_cast<u64>(in.imm), "software trap"};

    case Op::kMov:
      r[in.a] = r[in.b];
      break;
    case Op::kMovi:
      r[in.a] = static_cast<u64>(in.imm);
      break;

    case Op::kAdd: r[in.a] += r[in.b]; break;
    case Op::kSub: r[in.a] -= r[in.b]; break;
    case Op::kMul: r[in.a] *= r[in.b]; break;
    case Op::kDiv:
      if (r[in.b] == 0) return {StepKind::kOops, 0, "divide by zero"};
      r[in.a] /= r[in.b];
      break;
    case Op::kMod:
      if (r[in.b] == 0) return {StepKind::kOops, 0, "mod by zero"};
      r[in.a] %= r[in.b];
      break;
    case Op::kXor: r[in.a] ^= r[in.b]; break;
    case Op::kAnd: r[in.a] &= r[in.b]; break;
    case Op::kOr: r[in.a] |= r[in.b]; break;
    case Op::kShl: r[in.a] <<= (r[in.b] & 63); break;
    case Op::kShr: r[in.a] >>= (r[in.b] & 63); break;

    case Op::kAddi: r[in.a] += static_cast<u64>(in.imm); break;
    case Op::kSubi: r[in.a] -= static_cast<u64>(in.imm); break;
    case Op::kMuli: r[in.a] *= static_cast<u64>(in.imm); break;
    case Op::kDivi:
      if (in.imm == 0) return {StepKind::kOops, 0, "divide by zero"};
      r[in.a] /= static_cast<u64>(in.imm);
      break;
    case Op::kModi:
      if (in.imm == 0) return {StepKind::kOops, 0, "mod by zero"};
      r[in.a] %= static_cast<u64>(in.imm);
      break;
    case Op::kXori: r[in.a] ^= static_cast<u64>(in.imm); break;
    case Op::kAndi: r[in.a] &= static_cast<u64>(in.imm); break;
    case Op::kOri: r[in.a] |= static_cast<u64>(in.imm); break;
    case Op::kShli: r[in.a] <<= (in.imm & 63); break;
    case Op::kShri: r[in.a] >>= (in.imm & 63); break;

    case Op::kLoadG: {
      auto v = mem_.read_u64(static_cast<u64>(in.imm), access_mode());
      if (!v) return {StepKind::kMemFault, static_cast<u64>(in.imm),
                      v.status().message()};
      r[in.a] = *v;
      break;
    }
    case Op::kStoreG: {
      Status st =
          mem_.write_u64(static_cast<u64>(in.imm), r[in.a], access_mode());
      if (!st.is_ok()) {
        return {StepKind::kMemFault, static_cast<u64>(in.imm), st.message()};
      }
      break;
    }
    case Op::kLoadR: {
      u64 addr = r[in.b] + static_cast<u64>(in.imm);
      auto v = mem_.read_u64(addr, access_mode());
      if (!v) return {StepKind::kMemFault, addr, v.status().message()};
      r[in.a] = *v;
      break;
    }
    case Op::kStoreR: {
      u64 addr = r[in.b] + static_cast<u64>(in.imm);
      Status st = mem_.write_u64(addr, r[in.a], access_mode());
      if (!st.is_ok()) return {StepKind::kMemFault, addr, st.message()};
      break;
    }

    case Op::kCmp:
      set_flags_cmp(r[in.a], r[in.b]);
      break;
    case Op::kCmpi:
      set_flags_cmp(r[in.a], static_cast<u64>(in.imm));
      break;

    case Op::kJmp:
      next = next + static_cast<i64>(in.imm);
      break;
    case Op::kJe:
      if (cpu_.zf) next = next + static_cast<i64>(in.imm);
      break;
    case Op::kJne:
      if (!cpu_.zf) next = next + static_cast<i64>(in.imm);
      break;
    case Op::kJl:
      if (cpu_.sf) next = next + static_cast<i64>(in.imm);
      break;
    case Op::kJge:
      if (!cpu_.sf) next = next + static_cast<i64>(in.imm);
      break;
    case Op::kJg:
      if (!cpu_.sf && !cpu_.zf) next = next + static_cast<i64>(in.imm);
      break;
    case Op::kJle:
      if (cpu_.sf || cpu_.zf) next = next + static_cast<i64>(in.imm);
      break;

    case Op::kCall: {
      cpu_.sp() -= 8;
      Status st = mem_.write_u64(cpu_.sp(), next, access_mode());
      if (!st.is_ok()) return {StepKind::kMemFault, cpu_.sp(), st.message()};
      next = next + static_cast<i64>(in.imm);
      break;
    }
    case Op::kRet: {
      auto ra = mem_.read_u64(cpu_.sp(), access_mode());
      if (!ra) return {StepKind::kMemFault, cpu_.sp(), ra.status().message()};
      cpu_.sp() += 8;
      if (*ra == kReturnSentinel) {
        cpu_.rip = *ra;
        return {StepKind::kRetTop, 0, ""};
      }
      next = *ra;
      break;
    }

    case Op::kPush: {
      cpu_.sp() -= 8;
      Status st = mem_.write_u64(cpu_.sp(), r[in.a], access_mode());
      if (!st.is_ok()) return {StepKind::kMemFault, cpu_.sp(), st.message()};
      break;
    }
    case Op::kPop: {
      auto v = mem_.read_u64(cpu_.sp(), access_mode());
      if (!v) return {StepKind::kMemFault, cpu_.sp(), v.status().message()};
      cpu_.sp() += 8;
      r[in.a] = *v;
      break;
    }
  }

  cpu_.rip = next;
  return {StepKind::kOk, 0, ""};
}

Status Machine::set_periodic_smi(u64 interval_cycles) {
  if (smram_locked_) {
    return {Errc::kPermissionDenied, "SMRAM is locked (D_LCK)"};
  }
  periodic_smi_interval_ = interval_cycles;
  next_periodic_smi_ = cycles_ + interval_cycles;
  return Status::ok();
}

StepResult Machine::run(u64 max_instrs) {
  StepResult res;
  for (u64 i = 0; i < max_instrs; ++i) {
    res = step();
    if (res.kind != StepKind::kOk) return res;
  }
  return res;
}

}  // namespace kshot::machine
