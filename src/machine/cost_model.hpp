// Virtual-time cost model. The simulator cannot reproduce the authors'
// i7/Coreboot wall-clock numbers, so the machine keeps a cycle counter and
// charges costs calibrated to the paper's reported fixed costs (§VI-C2:
// SMM entry 12.9us, RSM 21.7us, SMM key generation 5.2us, at an assumed
// 3 GHz). Per-byte charges are calibrated to Table III's slopes. Benches
// report both real wall time of the real work and modeled microseconds.
#pragma once

#include "common/types.hpp"

namespace kshot::machine {

struct CostModel {
  double ghz = 3.0;  // modeled core frequency

  // Interpreter charge per executed instruction.
  u64 cycles_per_instr = 4;

  // Fixed-cost SMM operations (paper: 12.9us entry, 21.7us resume, 5.2us
  // key generation).
  u64 smi_entry_cycles = 38'700;
  u64 rsm_cycles = 65'100;
  u64 keygen_cycles = 15'600;

  // Per-byte charges for SMM handler phases, fitted to Table III:
  //   decrypt ~ 0.34 ns/B, verify ~ 0.80 ns/B + 2.9us fixed,
  //   apply ~ 0.45 ns/B.
  double decrypt_cycles_per_byte = 1.02;
  double verify_cycles_per_byte = 2.40;
  u64 verify_fixed_cycles = 8'700;
  double apply_cycles_per_byte = 1.35;
  // In-place splice writes the body straight over the old function: no
  // mem_X copy and no trampoline, so the per-byte charge is the bare text
  // write (roughly the copy half of the trampoline path's apply charge).
  double splice_cycles_per_byte = 0.45;

  // TOCTOU hardening charged against downtime: one mailbox snapshot per
  // SMI, pinning the staged bytes' hash into SMRAM, and the freshness /
  // classification checks that turn tampering into a DetectionReport.
  u64 snapshot_cycles = 900;
  double pin_hash_cycles_per_byte = 0.50;
  u64 detect_fixed_cycles = 1'200;

  // Multi-CPU SMM rendezvous (SmmPack-style honest accounting): the BSP
  // IPIs every AP into SMM and waits for the slowest arrival; each AP's
  // entry latency jitters uniformly in [0, rendezvous_jitter_max_cycles].
  // On RSM the BSP pays a small per-AP wakeup unless the handler released
  // that AP early (release_aps), in which case its resume overlaps handler
  // work and costs nothing on the critical path.
  u64 ipi_cycles_per_cpu = 400;
  u64 rendezvous_jitter_max_cycles = 12'000;
  u64 resume_cycles_per_cpu = 300;
  // Combining per-CPU partial verify/hash results inside the handler.
  u64 verify_merge_cycles_per_cpu = 250;

  [[nodiscard]] double to_us(u64 cycles) const {
    return static_cast<double>(cycles) / (ghz * 1000.0);
  }
  [[nodiscard]] u64 bytes_cost(double per_byte, size_t n) const {
    return static_cast<u64>(per_byte * static_cast<double>(n));
  }
};

}  // namespace kshot::machine
