#include "machine/phys_mem.hpp"

#include <cassert>
#include <cstdlib>
#include <cstring>

#include "common/byte_io.hpp"

namespace kshot::machine {

PhysMem::PhysMem(size_t size_bytes)
    : mem_(size_bytes, 0), attrs_((size_bytes + kPageSize - 1) / kPageSize) {}

Status PhysMem::check(PhysAddr addr, size_t len, AccessMode mode, bool writing,
                      bool fetching) const {
  if (addr + len > mem_.size() || addr + len < addr) {
    return {Errc::kOutOfRange, "physical address out of range"};
  }
  if (len == 0) return Status::ok();

  for (PhysAddr page = addr / kPageSize; page <= (addr + len - 1) / kPageSize;
       ++page) {
    const PageAttr& a = attrs_[page];
    PhysAddr page_addr = page * kPageSize;
    bool smram = in_smram(page_addr);

    switch (mode.kind) {
      case AccessMode::Kind::kNormal:
        if (smram) {
          return {Errc::kPermissionDenied, "SMRAM access in protected mode"};
        }
        if (a.epc_owner != 0) {
          return {Errc::kPermissionDenied, "EPC access from non-enclave code"};
        }
        if (fetching) {
          if (!a.exec) return {Errc::kPermissionDenied, "page not executable"};
        } else if (writing) {
          if (!a.write) return {Errc::kPermissionDenied, "page not writable"};
        } else {
          if (!a.read) return {Errc::kPermissionDenied, "page not readable"};
        }
        break;
      case AccessMode::Kind::kSmm:
        // SMM bypasses page attributes and may use SMRAM, but the memory
        // encryption engine keeps EPC opaque even to SMM.
        if (a.epc_owner != 0) {
          return {Errc::kPermissionDenied, "EPC access from SMM"};
        }
        break;
      case AccessMode::Kind::kEnclave:
        if (smram) {
          return {Errc::kPermissionDenied, "SMRAM access from enclave"};
        }
        if (a.epc_owner != 0 && a.epc_owner != mode.enclave_id) {
          return {Errc::kPermissionDenied, "EPC page of another enclave"};
        }
        // Enclave code obeys ordinary page attributes on non-EPC memory.
        if (a.epc_owner == 0) {
          if (fetching) {
            if (!a.exec)
              return {Errc::kPermissionDenied, "page not executable"};
          } else if (writing) {
            if (!a.write) return {Errc::kPermissionDenied, "page not writable"};
          } else {
            if (!a.read) return {Errc::kPermissionDenied, "page not readable"};
          }
        }
        break;
    }
  }
  return Status::ok();
}

Status PhysMem::read(PhysAddr addr, MutByteSpan out, AccessMode mode) const {
  KSHOT_RETURN_IF_ERROR(check(addr, out.size(), mode, false, false));
  // Empty spans may carry a null data(); memcpy's pointer args must be
  // non-null even for size 0.
  if (!out.empty()) std::memcpy(out.data(), mem_.data() + addr, out.size());
  return Status::ok();
}

Status PhysMem::write(PhysAddr addr, ByteSpan data, AccessMode mode) {
  KSHOT_RETURN_IF_ERROR(check(addr, data.size(), mode, true, false));
  if (!data.empty()) {
    std::memcpy(mem_.data() + addr, data.data(), data.size());
  }
  return Status::ok();
}

Result<u64> PhysMem::read_u64(PhysAddr addr, AccessMode mode) const {
  u8 buf[8];
  Status st = read(addr, MutByteSpan(buf, 8), mode);
  if (!st.is_ok()) return st;
  return load_u64(buf);
}

Status PhysMem::write_u64(PhysAddr addr, u64 value, AccessMode mode) {
  u8 buf[8];
  store_u64(buf, value);
  return write(addr, ByteSpan(buf, 8), mode);
}

Result<Bytes> PhysMem::read_bytes(PhysAddr addr, size_t n,
                                  AccessMode mode) const {
  Bytes out(n);
  Status st = read(addr, MutByteSpan(out), mode);
  if (!st.is_ok()) return st;
  return out;
}

Status PhysMem::fetch(PhysAddr addr, size_t n, MutByteSpan out,
                      AccessMode mode) const {
  assert(out.size() >= n);
  KSHOT_RETURN_IF_ERROR(check(addr, n, mode, false, true));
  std::memcpy(out.data(), mem_.data() + addr, n);
  return Status::ok();
}

void PhysMem::set_attrs(PhysAddr addr, size_t len, PageAttr attr) {
  if (len == 0) return;
  PhysAddr first = addr / kPageSize;
  PhysAddr last = (addr + len - 1) / kPageSize;
  for (PhysAddr p = first; p <= last && p < attrs_.size(); ++p) {
    attrs_[p] = attr;
  }
}

PageAttr PhysMem::attrs_at(PhysAddr addr) const {
  assert(addr / kPageSize < attrs_.size());
  return attrs_[addr / kPageSize];
}

void PhysMem::set_smram(PhysAddr base, size_t len) {
  assert(base % kPageSize == 0 && len % kPageSize == 0);
  smram_base_ = base;
  smram_len_ = len;
}

bool PhysMem::in_smram(PhysAddr addr) const {
  return smram_len_ > 0 && addr >= smram_base_ &&
         addr < smram_base_ + smram_len_;
}

u8* PhysMem::raw(PhysAddr addr, size_t len) {
  if (addr + len > mem_.size()) std::abort();
  return mem_.data() + addr;
}

const u8* PhysMem::raw(PhysAddr addr, size_t len) const {
  if (addr + len > mem_.size()) std::abort();
  return mem_.data() + addr;
}

}  // namespace kshot::machine
