#include "fleetscale/fleetscale.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/hex.hpp"
#include "common/parallel.hpp"
#include "crypto/sha256.hpp"
#include "cve/suite.hpp"
#include "fleet/fleet.hpp"
#include "patchtool/package.hpp"
#include "testbed/testbed.hpp"

namespace kshot::fleetscale {

namespace {

constexpr u64 kGolden = 0x9E3779B97F4A7C15ull;

u64 splitmix64(u64 x) {
  x += kGolden;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// The per-target hash every modeled quantity derives from. A pure function
/// of (base_seed, global index) — shard and wave assignment can never leak
/// into it, which is what makes the report shard-count independent. The
/// kGolden * (i + 1) pre-mix mirrors fleet::FleetController::target_seed so
/// a sampled testbed and its modeled cousin draw from the same seed family.
u64 target_hash(u64 base_seed, u64 index) {
  return splitmix64(base_seed + kGolden * (index + 1));
}

/// Uniform draw in [0, 1) from a hash (top 53 bits).
double unit_from(u64 h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }

/// Balanced contiguous shard ranges: shard s owns [lo(s), lo(s+1)).
/// Overflow-safe for any u64 target count.
u64 shard_lo(u64 targets, u32 shards, u32 s) {
  return s * (targets / shards) +
         std::min<u64>(s, targets % shards);
}

u64 us_to_cycles(double us) {
  return us <= 0 ? 0 : static_cast<u64>(us * 3000.0);  // 3 GHz virtual clock
}

/// Wave-local per-shard accumulator. Sketch inserts land here first and are
/// merged into the campaign sketches only once the wave survives its abort
/// checks — a rolled-back wave must not pollute the percentiles.
struct ShardWave {
  u64 applied = 0;
  u64 failed = 0;
  QuantileSketch down;
  QuantileSketch e2e;
  std::vector<u64> pulls;  // per-relay pull tally for this shard's slice
};

}  // namespace

const char* scale_state_name(ScaleTargetState s) {
  switch (s) {
    case ScaleTargetState::kPending:
      return "PENDING";
    case ScaleTargetState::kApplied:
      return "APPLIED";
    case ScaleTargetState::kFailed:
      return "FAILED";
    case ScaleTargetState::kRolledBack:
      return "ROLLED_BACK";
  }
  return "?";
}

FleetCoordinator::FleetCoordinator(FleetScaleOptions opts)
    : opts_(std::move(opts)) {}

FleetCoordinator::~FleetCoordinator() = default;

Status FleetCoordinator::validate(const FleetScaleOptions& opts) {
  auto bad = [](const char* msg) {
    return Status{Errc::kInvalidArgument, msg};
  };
  if (opts.targets == 0) return bad("fleetscale: targets must be >= 1");
  if (opts.shards == 0) return bad("fleetscale: shards must be >= 1");
  if (opts.relays == 0) return bad("fleetscale: relays must be >= 1");
  if (opts.relay_fanout == 0) {
    return bad("fleetscale: relay fanout must be >= 1");
  }
  if (opts.jobs == 0) return bad("fleetscale: jobs must be >= 1");
  if (static_cast<u64>(opts.sample) > opts.targets) {
    return bad("fleetscale: sample exceeds target count");
  }
  if (opts.sample == 0 && !opts.calibration_override_us) {
    return bad(
        "fleetscale: sampling disabled (sample=0) without a calibration "
        "override — the model would have no ground truth");
  }
  if (opts.plan.canary == 0) return bad("fleetscale: canary must be >= 1");
  if (opts.plan.growth < 1.0) {
    return bad("fleetscale: wave growth must be >= 1.0");
  }
  if (opts.cost.relay_workers == 0) {
    return bad("fleetscale: relay workers must be >= 1");
  }
  return Status::ok();
}

Result<FleetScaleReport> FleetCoordinator::run() {
  Status v = validate(opts_);
  if (!v.is_ok()) return v;
  // Table ids and synthesized SYNTH-* ids both resolve here.
  auto resolved = cve::resolve_case(opts_.cve_id);
  if (!resolved) {
    return Status{Errc::kNotFound,
                  "fleetscale: unknown CVE case " + opts_.cve_id};
  }

  const u64 targets = opts_.targets;
  const u32 shards = opts_.shards;
  const u32 relays = opts_.relays;
  const ScaleRolloutPlan& plan = opts_.plan;
  const ScaleCostModel& cost = opts_.cost;

  FleetScaleReport rep;
  rep.cve_id = opts_.cve_id;
  rep.targets = targets;
  rep.relays = relays;
  rep.relay_fanout = opts_.relay_fanout;
  rep.sample_per_wave = opts_.sample;
  rep.cpus = opts_.cpus;

  states_.assign(targets, ScaleTargetState::kPending);

  obs::MetricsRegistry metrics;
  obs::TraceRecorder trace;

  // Reference envelope: one real testbed + the real PatchServer build the
  // sealed wire the relay tier distributes. Content addressing starts here —
  // everything downstream is keyed by this digest.
  auto ref = testbed::Testbed::boot(*resolved);
  if (!ref.is_ok()) return ref.status();
  auto set = (*ref)->server().build_patchset(opts_.cve_id,
                                             (*ref)->kernel().os_info());
  if (!set.is_ok()) return set.status();
  Bytes envelope = patchtool::serialize_patchset_raw(*set);
  rep.envelope_bytes = envelope.size();
  auto d = crypto::sha256(ByteSpan(envelope));
  const std::string digest = to_hex(ByteSpan(d.data(), d.size()));
  auto env_shared = std::make_shared<const Bytes>(std::move(envelope));

  RelayTier tier(relays, opts_.relay_fanout,
                 [env_shared](const std::string&)
                     -> Result<std::shared_ptr<const Bytes>> {
                   return env_shared;
                 });

  // Campaign-lifetime per-shard sketches; merged in shard order at the end.
  std::vector<QuantileSketch> shard_down(shards), shard_e2e(shards);
  // Relay cache-warm model for span pricing (the real caches agree, but the
  // span math must come from the model so it cannot depend on serve order).
  std::vector<char> relay_warm(relays, 0);
  bool origin_warm = false;

  double base = 0;
  bool calibrated = false;
  if (opts_.calibration_override_us) {
    base = *opts_.calibration_override_us;
    calibrated = true;
    rep.calibrated_downtime_us = base;
  }

  double virt_clock_us = 0;  // trace placement only
  u64 done = 0;
  u64 prev_size = 0;
  u32 wave_idx = 0;
  char buf[192];

  while (done < targets && !rep.aborted) {
    u64 wave_size =
        wave_idx == 0
            ? std::min<u64>(std::max<u64>(1, plan.canary), targets)
            : std::min<u64>(
                  std::max<u64>(prev_size + 1,
                                static_cast<u64>(std::llround(
                                    static_cast<double>(prev_size) *
                                    plan.growth))),
                  targets - done);

    ScaleWave wv;
    wv.index = wave_idx;
    wv.first = done;
    wv.size = wave_size;

    // ---- Ground truth: K real seeded testbeds through src/fleet ----------
    double sample_span_us = 0;
    if (opts_.sample > 0) {
      u32 k = static_cast<u32>(std::min<u64>(opts_.sample, wave_size));
      fleet::FleetOptions fo;
      fo.cve_id = opts_.cve_id;
      fo.targets = k;
      fo.cpus = opts_.cpus;
      fo.jobs = 1;  // K is tiny; serial keeps the sample fully deterministic
      fo.base_seed = splitmix64(opts_.base_seed ^ (kGolden * (wave_idx + 1)));
      fo.rollout.canary = k;  // one wave: the sample is not itself staged
      fo.rollout.wave = k;
      fo.rollout.abort_failure_rate = 1.01;
      fo.rollout.max_quarantine_rate = 1.01;
      fleet::FleetController fc(std::move(fo));
      auto sample = fc.run_campaign();
      if (!sample.is_ok()) return sample.status();
      double sum = 0;
      u32 applied = 0;
      for (const auto& r : sample->results) {
        if (r.state == fleet::TargetState::kApplied && r.healthy) {
          sum += r.downtime_us;
          ++applied;
        }
        sample_span_us = std::max(sample_span_us, r.e2e_us);
        rep.sampled_downtime_cycles += r.downtime_cycles;
        rep.sampled_rendezvous_cycles += r.rendezvous_cycles;
        rep.sampled_handler_cycles += r.handler_cycles;
        rep.sampled_resume_cycles += r.resume_cycles;
      }
      wv.sampled = k;
      wv.sampled_applied = applied;
      wv.sample_mean_downtime_us = applied ? sum / applied : 0;
      rep.sampled_runs += k;
      rep.sampled_applied += applied;

      if (!calibrated) {
        if (applied == 0) {
          rep.aborted = true;
          rep.abort_wave = wave_idx;
          rep.abort_reason =
              "calibration failed: no sampled testbed applied healthily";
        } else {
          base = wv.sample_mean_downtime_us;
          calibrated = true;
          rep.calibrated_downtime_us = base;
        }
      } else if (applied == 0) {
        wv.diverged = true;
        rep.aborted = true;
        rep.abort_wave = wave_idx;
        rep.abort_reason = "ground truth: no sampled testbed applied";
      } else {
        double dev = std::abs(wv.sample_mean_downtime_us - base) / base;
        if (dev > plan.divergence_tolerance) {
          wv.diverged = true;
          rep.aborted = true;
          rep.abort_wave = wave_idx;
          std::snprintf(buf, sizeof(buf),
                        "model divergence: wave %u sampled mean %.3f us vs "
                        "calibrated %.3f us (dev %.2f > tol %.2f)",
                        wave_idx, wv.sample_mean_downtime_us, base, dev,
                        plan.divergence_tolerance);
          rep.abort_reason = buf;
        }
      }
      if (!rep.aborted && k > 0) {
        double fail_frac = static_cast<double>(k - applied) / k;
        if (fail_frac >= plan.abort_failure_rate && applied < k) {
          wv.diverged = true;
          rep.aborted = true;
          rep.abort_wave = wave_idx;
          std::snprintf(buf, sizeof(buf),
                        "ground truth: sampled failure rate %.2f >= %.2f",
                        fail_frac, plan.abort_failure_rate);
          rep.abort_reason = buf;
        }
      }
    }

    if (rep.aborted) {
      // Divergence aborts strike before the modeled population commits:
      // the wave's targets stay PENDING; only the sample's span is priced.
      wv.span_us = sample_span_us;
      rep.modeled_makespan_us += wv.span_us;
      if (opts_.capture_trace) {
        trace.instant("fleetscale", "divergence_abort", obs::kSharedTarget,
                      us_to_cycles(virt_clock_us),
                      {{"wave", std::to_string(wave_idx)},
                       {"reason", rep.abort_reason}});
      }
      rep.waves.push_back(wv);
      break;
    }

    // ---- Modeled transitions: sharded, wave-local accumulators -----------
    std::vector<ShardWave> sw(shards);
    for (auto& s : sw) s.pulls.assign(relays, 0);
    parallel_for(shards, opts_.jobs, [&](u32 s) {
      u64 lo = std::max(shard_lo(targets, shards, s), done);
      u64 hi = std::min(shard_lo(targets, shards, s + 1), done + wave_size);
      ShardWave& acc = sw[s];
      for (u64 idx = lo; idx < hi; ++idx) {
        u64 h = target_hash(opts_.base_seed, idx);
        ++acc.pulls[idx % relays];  // the fetch precedes the apply attempt
        u64 h2 = splitmix64(h ^ 0xFA11C0DEull);
        if (opts_.fail_permille != 0 && h2 % 1000 < opts_.fail_permille) {
          states_[idx] = ScaleTargetState::kFailed;
          ++acc.failed;
          continue;
        }
        double jitter =
            1.0 - cost.jitter_frac + 2.0 * cost.jitter_frac * unit_from(h);
        double downtime = base * jitter;
        states_[idx] = ScaleTargetState::kApplied;
        ++acc.applied;
        acc.down.insert(downtime);
        acc.e2e.insert(downtime + cost.relay_hit_service_us);
      }
    });

    // Fold in shard order (each term is shard-partition independent).
    std::vector<u64> pulls(relays, 0);
    for (u32 s = 0; s < shards; ++s) {
      wv.applied += sw[s].applied;
      wv.failed += sw[s].failed;
      for (u32 r = 0; r < relays; ++r) pulls[r] += sw[s].pulls[r];
    }

    // ---- Modeled wave abort (failure rate) -------------------------------
    double fail_frac =
        wave_size ? static_cast<double>(wv.failed) / wave_size : 0;
    bool modeled_abort = wv.failed > 0 && fail_frac >= plan.abort_failure_rate;
    if (modeled_abort && plan.rollback_failed_wave) {
      for (u64 idx = done; idx < done + wave_size; ++idx) {
        if (states_[idx] == ScaleTargetState::kApplied) {
          states_[idx] = ScaleTargetState::kRolledBack;
        }
      }
      wv.rolled_back = wv.applied;
      wv.applied = 0;
      // Wave-local sketches are dropped: rolled-back downtimes must not
      // survive in the campaign percentiles.
    } else {
      for (u32 s = 0; s < shards; ++s) {
        shard_down[s].merge(sw[s].down);
        shard_e2e[s].merge(sw[s].e2e);
      }
    }

    // ---- Drive the relay tier (real caches, real counters) ---------------
    for (u32 r = 0; r < relays; ++r) {
      if (pulls[r] == 0) continue;
      Status st = tier.relay(r).serve_population(digest, pulls[r]);
      if (!st.is_ok()) return st;
    }

    // ---- Span pricing from the warm/cold model ---------------------------
    double fill_us = 0;
    for (u32 r = 0; r < relays; ++r) {
      if (pulls[r] == 0 || relay_warm[r]) continue;
      u32 n = r;
      u32 hops = 0;
      bool from_origin = false;
      while (true) {
        ++hops;  // n is cold: one parent-hop fill
        if (n == 0) {
          from_origin = !origin_warm;
          break;
        }
        n = (n - 1) / tier.fanout();
        if (relay_warm[n]) break;
      }
      double path = hops * cost.relay_hop_fill_us +
                    (from_origin ? cost.origin_build_us : 0);
      fill_us = std::max(fill_us, path);
    }
    for (u32 r = 0; r < relays; ++r) {
      if (pulls[r] == 0) continue;
      u32 n = r;
      while (!relay_warm[n]) {
        relay_warm[n] = 1;
        origin_warm = origin_warm || n == 0;
        if (n == 0) break;
        n = (n - 1) / tier.fanout();
      }
    }
    double service_us = 0;
    for (u32 r = 0; r < relays; ++r) {
      service_us = std::max(
          service_us, static_cast<double>(pulls[r]) *
                          cost.relay_hit_service_us / cost.relay_workers);
    }
    double apply_us = base * (1.0 + cost.jitter_frac);
    wv.span_us = fill_us + service_us + std::max(apply_us, sample_span_us);

    if (opts_.capture_trace) {
      trace.instant("fleetscale", "wave_start", obs::kSharedTarget,
                    us_to_cycles(virt_clock_us),
                    {{"wave", std::to_string(wave_idx)},
                     {"size", std::to_string(wave_size)}});
      for (u32 s = 0; s < shards; ++s) {
        u64 processed = sw[s].applied + sw[s].failed;
        if (processed == 0) continue;
        trace.complete("fleetscale", "wave-" + std::to_string(wave_idx), s,
                       us_to_cycles(virt_clock_us),
                       us_to_cycles(virt_clock_us + wv.span_us), 0,
                       {{"shard", std::to_string(s)},
                        {"targets", std::to_string(processed)}});
      }
    }
    virt_clock_us += wv.span_us;

    rep.applied += wv.applied;
    rep.failed += wv.failed;
    rep.rolled_back += wv.rolled_back;
    rep.modeled_makespan_us += wv.span_us;
    rep.waves.push_back(wv);
    done += wave_size;
    prev_size = wave_size;
    ++wave_idx;

    if (modeled_abort) {
      rep.aborted = true;
      rep.abort_wave = wv.index;
      std::snprintf(buf, sizeof(buf),
                    "modeled failure rate %.2f >= %.2f (wave rolled back)",
                    fail_frac, plan.abort_failure_rate);
      rep.abort_reason = buf;
      if (opts_.capture_trace) {
        trace.instant("fleetscale", "failure_abort", obs::kSharedTarget,
                      us_to_cycles(virt_clock_us),
                      {{"wave", std::to_string(wv.index)},
                       {"reason", rep.abort_reason}});
      }
    }
  }

  rep.pending = targets - rep.applied - rep.failed - rep.rolled_back;

  for (u32 s = 0; s < shards; ++s) {
    rep.downtime_sketch.merge(shard_down[s]);
    rep.e2e_sketch.merge(shard_e2e[s]);
  }
  rep.downtime_us = {rep.downtime_sketch.p50(), rep.downtime_sketch.p95(),
                     rep.downtime_sketch.p99()};
  rep.e2e_us = {rep.e2e_sketch.p50(), rep.e2e_sketch.p95(),
                rep.e2e_sketch.p99()};

  rep.relay = tier.total_stats();
  rep.origin_fetches = tier.origin_fetches();

  metrics.counter("fleetscale.targets.applied").inc(rep.applied);
  metrics.counter("fleetscale.targets.failed").inc(rep.failed);
  metrics.counter("fleetscale.targets.rolled_back").inc(rep.rolled_back);
  metrics.counter("fleetscale.targets.pending").inc(rep.pending);
  metrics.counter("fleetscale.waves").inc(rep.waves.size());
  metrics.counter("fleetscale.sampled.runs").inc(rep.sampled_runs);
  metrics.counter("fleetscale.sampled.applied").inc(rep.sampled_applied);
  metrics.counter("fleetscale.relay.hits").inc(rep.relay.hits);
  metrics.counter("fleetscale.relay.misses").inc(rep.relay.misses);
  metrics.counter("fleetscale.relay.corruption_evictions")
      .inc(rep.relay.corruption_evictions);
  metrics.counter("fleetscale.origin_fetches").inc(rep.origin_fetches);
  rep.metrics = metrics.snapshot();

  if (opts_.capture_trace) {
    obs::ChromeTraceOptions copts;
    copts.include_wall = false;
    // All events are coordinator-emitted (single thread), but canonicalize
    // anyway so the export contract matches the fleet layer's.
    rep.trace_json = obs::to_chrome_trace(obs::canonicalize(trace.snapshot()),
                                          copts);
  }
  return rep;
}

std::string FleetScaleReport::to_string() const {
  std::string out;
  char line[256];
  auto append = [&](const char* fmt, auto... args) {
    std::snprintf(line, sizeof(line), fmt, args...);
    out += line;
  };
  auto ull = [](u64 v) { return static_cast<unsigned long long>(v); };
  // Deliberately no jobs / shard count anywhere below: the determinism
  // tests cmp this output byte-for-byte across both.
  append("fleetscale campaign %s: %llu targets, %u relays (fanout %u), "
         "sample %u/wave, %zu wave(s)\n",
         cve_id.c_str(), ull(targets), relays, relay_fanout, sample_per_wave,
         waves.size());
  append("  applied %llu  failed %llu  rolled_back %llu  pending %llu%s\n",
         ull(applied), ull(failed), ull(rolled_back), ull(pending),
         aborted ? "  [ABORTED]" : "");
  if (aborted) {
    append("  aborted at wave %u: %s\n", abort_wave, abort_reason.c_str());
  }
  append("  ground truth: %llu sampled run(s), %llu applied, calibrated "
         "downtime %.3f us\n",
         ull(sampled_runs), ull(sampled_applied), calibrated_downtime_us);
  append("  sampled smm cycles (cpus=%u): rendezvous %llu + handler %llu + "
         "resume %llu = %llu\n",
         cpus, ull(sampled_rendezvous_cycles), ull(sampled_handler_cycles),
         ull(sampled_resume_cycles), ull(sampled_downtime_cycles));
  append("  downtime us (sketch, +/-1%%): p50 %.3f  p95 %.3f  p99 %.3f\n",
         downtime_us.p50, downtime_us.p95, downtime_us.p99);
  append("  e2e latency us (sketch, +/-1%%): p50 %.3f  p95 %.3f  p99 %.3f\n",
         e2e_us.p50, e2e_us.p95, e2e_us.p99);
  append("  relay tier: %llu pulls  %llu hits  %llu misses (hit rate %.4f)  "
         "evictions %llu  rejects %llu\n",
         ull(relay.pulls()), ull(relay.hits), ull(relay.misses),
         relay.hit_rate(), ull(relay.corruption_evictions),
         ull(relay.parent_digest_rejects));
  append("  origin fetches %llu  envelope %llu bytes  parent bytes %llu\n",
         ull(origin_fetches), ull(envelope_bytes),
         ull(relay.bytes_from_parent));
  append("  modeled makespan %.3f us\n", modeled_makespan_us);
  for (const ScaleWave& w : waves) {
    append("  wave %2u: [%llu, %llu)  applied %llu  failed %llu  "
           "rolled_back %llu  sampled %u/%u  mean %.3f  span %.3f us%s\n",
           w.index, ull(w.first), ull(w.first + w.size), ull(w.applied),
           ull(w.failed), ull(w.rolled_back), w.sampled_applied, w.sampled,
           w.sample_mean_downtime_us, w.span_us,
           w.diverged ? "  [DIVERGED]" : "");
  }
  return out;
}

}  // namespace kshot::fleetscale
