// Planet-scale fleet rollout: sharded controllers over a modeled target
// population, ground-truthed by sampled real testbeds.
//
// src/fleet boots one full Testbed (machine + kernel + SGX + SMM + channel)
// per target — honest, but it tops out at hundreds of targets. This layer
// is the higher tier the Xen livepatch design anticipates ("higher-level
// tools managing multiple patches on production machines"), built to
// simulate millions:
//
//   FleetCoordinator
//     ├── ShardController × R   lightweight per-target state machines
//     │                         (PENDING→APPLIED|FAILED|ROLLED_BACK as one
//     │                         byte of state + modeled-cost transitions —
//     │                         no Machine, no testbed, no per-sample
//     │                         vectors)
//     ├── RelayTier × M         content-addressed envelope distribution
//     │                         (relay.hpp); the lone PatchServer serves
//     │                         the relay tree, not a million targets
//     └── sampled ground truth  K *real* seeded testbeds per wave, driven
//                               through src/fleet (the sampled-testbed
//                               executor); any divergence between sampled
//                               reality and the modeled population aborts
//                               the wave
//
// Sampling ground-truth protocol: wave 0's sample calibrates the model (the
// population's base downtime is the sampled mean, measured on real
// virtual-clock testbeds); every later wave's sample re-measures it, and a
// relative deviation beyond ScaleRolloutPlan::divergence_tolerance — or a
// sampled failure fraction at/above abort_failure_rate — aborts the
// campaign before the wave's modeled population is committed.
//
// Determinism: every modeled per-target quantity is a pure function of
// (base_seed, global target index, calibrated base), wave boundaries are
// shard-independent, sketches merge by exact bucket addition, and relay
// counters are order-independent — so the FleetScaleReport is
// byte-identical across --jobs and across shard counts. Shards and jobs are
// execution topology, not semantics, and deliberately do not appear in the
// report.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/sketch.hpp"
#include "fleetscale/relay.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace kshot::fleetscale {

enum class ScaleTargetState : u8 {
  kPending = 0,  // not attempted (or rollout aborted before its wave)
  kApplied,      // modeled rollout succeeded
  kFailed,       // modeled failure draw; kernel untouched (transactional)
  kRolledBack,   // applied, then undone by a wave abort
};

const char* scale_state_name(ScaleTargetState s);

/// Staged-rollout policy for the modeled population.
struct ScaleRolloutPlan {
  /// Wave 0 (canary) size; each later wave is the previous size * growth.
  u64 canary = 64;
  double growth = 8.0;
  /// Abort when a wave's modeled failure fraction reaches this (the wave's
  /// applied targets are rolled back); 1.01 disables.
  double abort_failure_rate = 0.25;
  /// Abort when a wave's sampled mean downtime deviates from the calibrated
  /// base by more than this relative fraction.
  double divergence_tolerance = 0.25;
  bool rollback_failed_wave = true;
};

/// Modeled costs of the relay/rollout machinery. All priced into the
/// modeled makespan; none of them affect counters or state.
struct ScaleCostModel {
  double relay_hit_service_us = 40.0;   // one warm pull at a relay
  double relay_hop_fill_us = 1500.0;    // one parent-hop of a cold fill
  double origin_build_us = 12000.0;     // PatchServer build+seal on first
                                        // origin fetch
  u32 relay_workers = 64;               // modeled per-relay concurrency
  double jitter_frac = 0.10;            // per-target downtime jitter (+/-)
};

struct FleetScaleOptions {
  std::string cve_id = "CVE-2014-0196";
  u64 targets = 1'000'000;
  /// Execution sharding (ShardController count). Never changes the report.
  u32 shards = 4;
  /// Real testbeds sampled per wave for ground truth; 0 disables sampling
  /// (then calibration_override_us must be set — test configurations only).
  u32 sample = 2;
  u32 relays = 8;
  u32 relay_fanout = 4;
  /// Worker threads driving the shards. Never changes the report.
  u32 jobs = 1;
  u64 base_seed = 0x5EED;
  /// Simulated CPUs per sampled ground-truth testbed (>= 1). Semantics, not
  /// topology: more CPUs means a longer rendezvous, so the calibrated base
  /// (and hence the whole modeled population) shifts with it.
  u32 cpus = 1;
  /// Modeled per-target failure rate, in permille (deterministic per-target
  /// draw). 0 in production-shaped runs; tests raise it to exercise wave
  /// aborts and rollback accounting.
  u32 fail_permille = 0;
  /// Test hook: forces the model's calibrated base downtime instead of the
  /// wave-0 sampled mean — used to prove the divergence abort fires when
  /// the model and sampled reality disagree.
  std::optional<double> calibration_override_us;
  ScaleRolloutPlan plan;
  ScaleCostModel cost;
  /// Record shard-level spans + wave/relay instants. The trace (unlike the
  /// report) reflects execution topology: per-shard spans appear per shard.
  bool capture_trace = false;
};

struct ScaleWave {
  u32 index = 0;
  u64 first = 0;  // first global target index of the wave
  u64 size = 0;
  u64 applied = 0;
  u64 failed = 0;
  u64 rolled_back = 0;
  u32 sampled = 0;          // real testbeds run for this wave
  u32 sampled_applied = 0;  // of those, applied + healthy
  double sample_mean_downtime_us = 0;
  double span_us = 0;  // modeled wave span (fills + service + applies)
  bool diverged = false;
};

struct SketchPercentiles {
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Aggregated outcome of one planet-scale campaign. Deliberately carries no
/// jobs/shards fields: the determinism tests compare to_string() (and the
/// sketch encodings) byte-for-byte across both.
struct FleetScaleReport {
  std::string cve_id;
  u64 targets = 0;
  u32 relays = 0;
  u32 relay_fanout = 0;
  u32 sample_per_wave = 0;

  u64 applied = 0;
  u64 failed = 0;
  u64 rolled_back = 0;
  u64 pending = 0;

  bool aborted = false;
  u32 abort_wave = 0;
  std::string abort_reason;

  /// Ground truth.
  double calibrated_downtime_us = 0;
  u64 sampled_runs = 0;
  u64 sampled_applied = 0;
  /// Per-CPU downtime decomposition summed over every sampled testbed
  /// (integer cycles; rendezvous + handler + resume == downtime exactly).
  u32 cpus = 1;
  u64 sampled_downtime_cycles = 0;
  u64 sampled_rendezvous_cycles = 0;
  u64 sampled_handler_cycles = 0;
  u64 sampled_resume_cycles = 0;

  /// Streaming-sketch percentiles over the applied modeled population
  /// (guaranteed within QuantileSketch::kRelativeError of exact).
  SketchPercentiles downtime_us;
  SketchPercentiles e2e_us;
  QuantileSketch downtime_sketch;  // exposed for the agreement tests
  QuantileSketch e2e_sketch;

  RelayStats relay;
  u64 origin_fetches = 0;
  u64 envelope_bytes = 0;

  /// Sum of wave spans: cold relay fills + per-relay service queues + the
  /// slowest modeled apply (and the sampled real testbeds' span).
  double modeled_makespan_us = 0;

  std::vector<ScaleWave> waves;

  std::string trace_json;  // empty unless capture_trace
  obs::MetricsSnapshot metrics;

  [[nodiscard]] std::string to_string() const;
};

class FleetCoordinator {
 public:
  explicit FleetCoordinator(FleetScaleOptions opts);
  ~FleetCoordinator();

  FleetCoordinator(const FleetCoordinator&) = delete;
  FleetCoordinator& operator=(const FleetCoordinator&) = delete;

  /// Rejects impossible topologies (0 shards/relays/targets, sample >
  /// targets, sampling disabled with no calibration override).
  static Status validate(const FleetScaleOptions& opts);

  Result<FleetScaleReport> run();

  /// Valid after run(): per-target final states (one byte each — the whole
  /// point of the subsystem is that this is the *only* per-target storage).
  [[nodiscard]] const std::vector<ScaleTargetState>& states() const {
    return states_;
  }

 private:
  FleetScaleOptions opts_;
  std::vector<ScaleTargetState> states_;
};

}  // namespace kshot::fleetscale
