#include "fleetscale/relay.hpp"

#include <utility>

#include "common/hex.hpp"
#include "crypto/sha256.hpp"

namespace kshot::fleetscale {

namespace {

std::string digest_of(const Bytes& b) {
  auto d = crypto::sha256(ByteSpan(b));
  return to_hex(ByteSpan(d.data(), d.size()));
}

}  // namespace

void RelayStats::merge(const RelayStats& o) {
  hits += o.hits;
  misses += o.misses;
  corruption_evictions += o.corruption_evictions;
  parent_digest_rejects += o.parent_digest_rejects;
  bytes_served += o.bytes_served;
  bytes_from_parent += o.bytes_from_parent;
}

PatchRelay::PatchRelay(std::string name, ParentFetch parent)
    : name_(std::move(name)), parent_(std::move(parent)) {}

Result<std::shared_ptr<const Bytes>> PatchRelay::fetch(
    const std::string& digest_hex) {
  return fetch_verified(digest_hex, /*allow_repair=*/true);
}

Result<std::shared_ptr<const Bytes>> PatchRelay::fetch_verified(
    const std::string& digest_hex, bool allow_repair) {
  std::shared_future<Entry> fut;
  bool filler = false;
  std::promise<Entry> promise;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(digest_hex);
    if (it == cache_.end()) {
      fut = promise.get_future().share();
      cache_.emplace(digest_hex, fut);
      filler = true;
    } else {
      fut = it->second;
    }
  }

  if (filler) {
    // The single-flight fill runs outside the lock; every concurrent puller
    // for this digest blocks on the shared future instead of the parent.
    misses_.fetch_add(1, std::memory_order_relaxed);
    Entry got = parent_(digest_hex);
    if (got.is_ok()) {
      bytes_from_parent_.fetch_add((*got)->size(),
                                   std::memory_order_relaxed);
      if (digest_of(**got) != digest_hex) {
        parent_digest_rejects_.fetch_add(1, std::memory_order_relaxed);
        got = Status{Errc::kIntegrityFailure,
                     name_ + ": parent bytes do not hash to " + digest_hex};
      }
    }
    if (!got.is_ok()) {
      // Failed fills are not cached: drop the future so a later pull
      // retries the parent instead of replaying the failure forever.
      std::lock_guard<std::mutex> lock(mu_);
      cache_.erase(digest_hex);
    }
    promise.set_value(got);
    if (!got.is_ok()) return got.status();
    bytes_served_.fetch_add((*got)->size(), std::memory_order_relaxed);
    return *got;
  }

  Entry got = fut.get();
  if (!got.is_ok()) return got.status();
  // Warm serve: re-verify the cached bytes. A corrupted entry is evicted
  // and refetched from the parent — never served.
  if (digest_of(**got) != digest_hex) {
    corruption_evictions_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = cache_.find(digest_hex);
      // Only evict the entry we verified; a concurrent repair may already
      // have replaced it.
      if (it != cache_.end() && it->second.valid() &&
          it->second.wait_for(std::chrono::seconds(0)) ==
              std::future_status::ready &&
          it->second.get().is_ok() && it->second.get().value() == *got) {
        cache_.erase(it);
      }
    }
    if (!allow_repair) {
      return Status{Errc::kIntegrityFailure,
                    name_ + ": cached entry corrupt for " + digest_hex};
    }
    return fetch_verified(digest_hex, /*allow_repair=*/false);
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  bytes_served_.fetch_add((*got)->size(), std::memory_order_relaxed);
  return *got;
}

Status PatchRelay::serve_population(const std::string& digest_hex,
                                    u64 pulls) {
  if (pulls == 0) return Status::ok();
  auto first = fetch(digest_hex);
  if (!first.is_ok()) return first.status();
  hits_.fetch_add(pulls - 1, std::memory_order_relaxed);
  bytes_served_.fetch_add((pulls - 1) * (*first)->size(),
                          std::memory_order_relaxed);
  return Status::ok();
}

RelayStats PatchRelay::stats() const {
  RelayStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.corruption_evictions =
      corruption_evictions_.load(std::memory_order_relaxed);
  s.parent_digest_rejects =
      parent_digest_rejects_.load(std::memory_order_relaxed);
  s.bytes_served = bytes_served_.load(std::memory_order_relaxed);
  s.bytes_from_parent = bytes_from_parent_.load(std::memory_order_relaxed);
  return s;
}

bool PatchRelay::corrupt_cached_entry(const std::string& digest_hex) {
  std::shared_future<Entry> fut;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(digest_hex);
    if (it == cache_.end()) return false;
    fut = it->second;
  }
  Entry got = fut.get();
  if (!got.is_ok() || (*got)->empty()) return false;
  // The cache stores const Bytes behind a shared_ptr; simulated bit rot
  // needs to reach through that, which is exactly what makes it "silent".
  auto* mutable_bytes = const_cast<Bytes*>(got->get());
  (*mutable_bytes)[0] ^= 0xFF;
  return true;
}

RelayTier::RelayTier(u32 relays, u32 fanout, PatchRelay::ParentFetch origin)
    : fanout_(fanout == 0 ? 1 : fanout) {
  nodes_.reserve(relays);
  auto counted_origin =
      [this, origin = std::move(origin)](
          const std::string& digest) -> Result<std::shared_ptr<const Bytes>> {
    origin_fetches_.fetch_add(1, std::memory_order_relaxed);
    return origin(digest);
  };
  for (u32 i = 0; i < relays; ++i) {
    PatchRelay::ParentFetch parent;
    if (i == 0) {
      parent = counted_origin;
    } else {
      PatchRelay* up = nodes_[(i - 1) / fanout_].get();
      parent = [up](const std::string& digest) { return up->fetch(digest); };
    }
    nodes_.push_back(std::make_unique<PatchRelay>(
        "relay-" + std::to_string(i), std::move(parent)));
  }
}

u32 RelayTier::depth(u32 i) const {
  u32 d = 0;
  while (i != 0) {
    i = (i - 1) / fanout_;
    ++d;
  }
  return d;
}

RelayStats RelayTier::total_stats() const {
  RelayStats total;
  for (const auto& n : nodes_) total.merge(n->stats());
  return total;
}

}  // namespace kshot::fleetscale
