// Content-addressed patch relay tier.
//
// At fleet scale the lone PatchServer is the bottleneck: a million targets
// pulling one sealed envelope means a million origin round-trips for bytes
// that are identical by construction (the envelope is content-addressed by
// its SHA-256). A PatchRelay caches sealed envelopes by digest and fills
// cold entries from its parent exactly once per digest (single-flight: the
// first puller publishes a shared future under the lock and fetches outside
// it; concurrent pullers for the same digest block on that future and count
// as hits). Every serve re-verifies that the cached bytes still hash to the
// requested digest — a corrupted (bit-rotted or tampered) cache entry is
// evicted and refetched from the parent, never served.
//
// RelayTier arranges M relays into a fan-out tree (heap-shaped, fanout F:
// parent(r) = (r-1)/F, relay 0 fills from the origin). A cold digest
// propagates down the tree with one parent fetch per relay, so the origin
// is hit once per campaign no matter how many relays or targets exist.
// Counters are order-independent (per relay per digest: exactly 1 miss,
// every other pull a hit), so fleet reports built from them stay
// byte-identical across --jobs and shard counts.
#pragma once

#include <atomic>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace kshot::fleetscale {

/// Monotonic per-relay counters. A "hit" includes a puller that arrived
/// while the fill was in flight and waited for it (same convention as the
/// PatchServer build caches); the one puller that ran the parent fetch is
/// the "miss".
struct RelayStats {
  u64 hits = 0;
  u64 misses = 0;
  /// Cached entries whose bytes no longer hashed to their digest: evicted
  /// and refetched instead of served.
  u64 corruption_evictions = 0;
  /// Parent responses whose bytes did not hash to the requested digest:
  /// rejected (kIntegrityFailure), never cached.
  u64 parent_digest_rejects = 0;
  u64 bytes_served = 0;       // envelope bytes handed to pullers
  u64 bytes_from_parent = 0;  // envelope bytes pulled from the parent

  [[nodiscard]] u64 pulls() const { return hits + misses; }
  [[nodiscard]] double hit_rate() const {
    return pulls() == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(pulls());
  }
  void merge(const RelayStats& o);
};

class PatchRelay {
 public:
  /// Fetches the envelope for a digest from the next tier up (the parent
  /// relay or the origin PatchServer). Must be thread-safe.
  using ParentFetch =
      std::function<Result<std::shared_ptr<const Bytes>>(const std::string&)>;

  PatchRelay(std::string name, ParentFetch parent);

  /// Content-addressed pull: returns the (verified) envelope whose SHA-256
  /// is `digest_hex`. Cold entries fill from the parent single-flight;
  /// warm entries are integrity-checked before every serve.
  Result<std::shared_ptr<const Bytes>> fetch(const std::string& digest_hex);

  /// Bulk accounting for the modeled population: one real fetch (cold fill,
  /// digest verify) plus `pulls - 1` further pulls counted as hits without
  /// re-hashing per pull. pulls == 0 is a no-op.
  Status serve_population(const std::string& digest_hex, u64 pulls);

  [[nodiscard]] RelayStats stats() const;
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Test hook: flips a byte of the cached entry so the next fetch sees a
  /// digest mismatch. Returns false if the digest is not cached.
  bool corrupt_cached_entry(const std::string& digest_hex);

 private:
  using Entry = Result<std::shared_ptr<const Bytes>>;
  /// Verifies bytes against the digest; on mismatch evicts and refetches
  /// (at most one repair round per fetch call).
  Result<std::shared_ptr<const Bytes>> fetch_verified(
      const std::string& digest_hex, bool allow_repair);

  std::string name_;
  ParentFetch parent_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_future<Entry>> cache_;
  // Counters are atomics: pull paths run lock-free after the future
  // resolves, and tests hammer one relay from many threads.
  std::atomic<u64> hits_{0};
  std::atomic<u64> misses_{0};
  std::atomic<u64> corruption_evictions_{0};
  std::atomic<u64> parent_digest_rejects_{0};
  std::atomic<u64> bytes_served_{0};
  std::atomic<u64> bytes_from_parent_{0};
};

/// The fan-out tree: relay r >= 1 fills from relay (r-1)/fanout; relay 0
/// fills from the origin. Targets stripe across relays (target i pulls from
/// relay i % size()).
class RelayTier {
 public:
  RelayTier(u32 relays, u32 fanout, PatchRelay::ParentFetch origin);

  [[nodiscard]] u32 size() const { return static_cast<u32>(nodes_.size()); }
  [[nodiscard]] u32 fanout() const { return fanout_; }
  PatchRelay& relay(u32 i) { return *nodes_[i]; }
  /// Tree depth of relay i (root = 0); cold-fill latency is proportional.
  [[nodiscard]] u32 depth(u32 i) const;
  /// Number of times the origin fetch was actually invoked.
  [[nodiscard]] u64 origin_fetches() const {
    return origin_fetches_.load(std::memory_order_relaxed);
  }

  /// Sum of every relay's counters.
  [[nodiscard]] RelayStats total_stats() const;

 private:
  u32 fanout_;
  std::atomic<u64> origin_fetches_{0};
  std::vector<std::unique_ptr<PatchRelay>> nodes_;
};

}  // namespace kshot::fleetscale
