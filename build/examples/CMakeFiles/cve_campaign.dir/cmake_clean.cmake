file(REMOVE_RECURSE
  "CMakeFiles/cve_campaign.dir/cve_campaign.cpp.o"
  "CMakeFiles/cve_campaign.dir/cve_campaign.cpp.o.d"
  "cve_campaign"
  "cve_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cve_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
