# Empty dependencies file for cve_campaign.
# This may be replaced when dependencies are built.
