# Empty compiler generated dependencies file for compromised_kernel.
# This may be replaced when dependencies are built.
