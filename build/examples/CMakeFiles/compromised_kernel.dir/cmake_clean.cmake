file(REMOVE_RECURSE
  "CMakeFiles/compromised_kernel.dir/compromised_kernel.cpp.o"
  "CMakeFiles/compromised_kernel.dir/compromised_kernel.cpp.o.d"
  "compromised_kernel"
  "compromised_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compromised_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
