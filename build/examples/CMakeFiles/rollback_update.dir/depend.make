# Empty dependencies file for rollback_update.
# This may be replaced when dependencies are built.
