file(REMOVE_RECURSE
  "CMakeFiles/rollback_update.dir/rollback_update.cpp.o"
  "CMakeFiles/rollback_update.dir/rollback_update.cpp.o.d"
  "rollback_update"
  "rollback_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rollback_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
