file(REMOVE_RECURSE
  "libkshot_common.a"
)
