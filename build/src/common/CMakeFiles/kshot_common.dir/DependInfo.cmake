
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/byte_io.cpp" "src/common/CMakeFiles/kshot_common.dir/byte_io.cpp.o" "gcc" "src/common/CMakeFiles/kshot_common.dir/byte_io.cpp.o.d"
  "/root/repo/src/common/hex.cpp" "src/common/CMakeFiles/kshot_common.dir/hex.cpp.o" "gcc" "src/common/CMakeFiles/kshot_common.dir/hex.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/common/CMakeFiles/kshot_common.dir/log.cpp.o" "gcc" "src/common/CMakeFiles/kshot_common.dir/log.cpp.o.d"
  "/root/repo/src/common/status.cpp" "src/common/CMakeFiles/kshot_common.dir/status.cpp.o" "gcc" "src/common/CMakeFiles/kshot_common.dir/status.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
