# Empty compiler generated dependencies file for kshot_common.
# This may be replaced when dependencies are built.
