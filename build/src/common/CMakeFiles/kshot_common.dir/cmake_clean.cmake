file(REMOVE_RECURSE
  "CMakeFiles/kshot_common.dir/byte_io.cpp.o"
  "CMakeFiles/kshot_common.dir/byte_io.cpp.o.d"
  "CMakeFiles/kshot_common.dir/hex.cpp.o"
  "CMakeFiles/kshot_common.dir/hex.cpp.o.d"
  "CMakeFiles/kshot_common.dir/log.cpp.o"
  "CMakeFiles/kshot_common.dir/log.cpp.o.d"
  "CMakeFiles/kshot_common.dir/status.cpp.o"
  "CMakeFiles/kshot_common.dir/status.cpp.o.d"
  "libkshot_common.a"
  "libkshot_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshot_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
