# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("crypto")
subdirs("isa")
subdirs("machine")
subdirs("kcc")
subdirs("kernel")
subdirs("sgx")
subdirs("patchtool")
subdirs("netsim")
subdirs("core")
subdirs("baselines")
subdirs("attacks")
subdirs("cve")
subdirs("testbed")
