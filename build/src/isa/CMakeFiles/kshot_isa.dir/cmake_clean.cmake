file(REMOVE_RECURSE
  "CMakeFiles/kshot_isa.dir/assembler.cpp.o"
  "CMakeFiles/kshot_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/kshot_isa.dir/disasm.cpp.o"
  "CMakeFiles/kshot_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/kshot_isa.dir/isa.cpp.o"
  "CMakeFiles/kshot_isa.dir/isa.cpp.o.d"
  "CMakeFiles/kshot_isa.dir/reloc.cpp.o"
  "CMakeFiles/kshot_isa.dir/reloc.cpp.o.d"
  "libkshot_isa.a"
  "libkshot_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshot_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
