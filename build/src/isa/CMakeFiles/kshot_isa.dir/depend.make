# Empty dependencies file for kshot_isa.
# This may be replaced when dependencies are built.
