file(REMOVE_RECURSE
  "libkshot_isa.a"
)
