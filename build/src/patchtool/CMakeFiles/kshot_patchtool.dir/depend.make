# Empty dependencies file for kshot_patchtool.
# This may be replaced when dependencies are built.
