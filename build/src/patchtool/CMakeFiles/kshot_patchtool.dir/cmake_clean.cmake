file(REMOVE_RECURSE
  "CMakeFiles/kshot_patchtool.dir/bindiff.cpp.o"
  "CMakeFiles/kshot_patchtool.dir/bindiff.cpp.o.d"
  "CMakeFiles/kshot_patchtool.dir/callgraph.cpp.o"
  "CMakeFiles/kshot_patchtool.dir/callgraph.cpp.o.d"
  "CMakeFiles/kshot_patchtool.dir/consistency.cpp.o"
  "CMakeFiles/kshot_patchtool.dir/consistency.cpp.o.d"
  "CMakeFiles/kshot_patchtool.dir/matcher.cpp.o"
  "CMakeFiles/kshot_patchtool.dir/matcher.cpp.o.d"
  "CMakeFiles/kshot_patchtool.dir/package.cpp.o"
  "CMakeFiles/kshot_patchtool.dir/package.cpp.o.d"
  "libkshot_patchtool.a"
  "libkshot_patchtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshot_patchtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
