file(REMOVE_RECURSE
  "libkshot_patchtool.a"
)
