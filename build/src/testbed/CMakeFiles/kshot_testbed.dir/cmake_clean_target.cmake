file(REMOVE_RECURSE
  "libkshot_testbed.a"
)
