# Empty compiler generated dependencies file for kshot_testbed.
# This may be replaced when dependencies are built.
