file(REMOVE_RECURSE
  "CMakeFiles/kshot_testbed.dir/testbed.cpp.o"
  "CMakeFiles/kshot_testbed.dir/testbed.cpp.o.d"
  "libkshot_testbed.a"
  "libkshot_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshot_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
