file(REMOVE_RECURSE
  "CMakeFiles/kshot_sgx.dir/sgx.cpp.o"
  "CMakeFiles/kshot_sgx.dir/sgx.cpp.o.d"
  "libkshot_sgx.a"
  "libkshot_sgx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshot_sgx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
