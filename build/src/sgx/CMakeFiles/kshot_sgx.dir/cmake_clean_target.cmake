file(REMOVE_RECURSE
  "libkshot_sgx.a"
)
