# Empty dependencies file for kshot_sgx.
# This may be replaced when dependencies are built.
