
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sgx/sgx.cpp" "src/sgx/CMakeFiles/kshot_sgx.dir/sgx.cpp.o" "gcc" "src/sgx/CMakeFiles/kshot_sgx.dir/sgx.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kshot_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/kshot_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/kshot_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/kshot_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
