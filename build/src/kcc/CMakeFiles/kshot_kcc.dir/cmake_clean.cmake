file(REMOVE_RECURSE
  "CMakeFiles/kshot_kcc.dir/ast.cpp.o"
  "CMakeFiles/kshot_kcc.dir/ast.cpp.o.d"
  "CMakeFiles/kshot_kcc.dir/codegen.cpp.o"
  "CMakeFiles/kshot_kcc.dir/codegen.cpp.o.d"
  "CMakeFiles/kshot_kcc.dir/compiler.cpp.o"
  "CMakeFiles/kshot_kcc.dir/compiler.cpp.o.d"
  "CMakeFiles/kshot_kcc.dir/constfold.cpp.o"
  "CMakeFiles/kshot_kcc.dir/constfold.cpp.o.d"
  "CMakeFiles/kshot_kcc.dir/eval.cpp.o"
  "CMakeFiles/kshot_kcc.dir/eval.cpp.o.d"
  "CMakeFiles/kshot_kcc.dir/image.cpp.o"
  "CMakeFiles/kshot_kcc.dir/image.cpp.o.d"
  "CMakeFiles/kshot_kcc.dir/inline_pass.cpp.o"
  "CMakeFiles/kshot_kcc.dir/inline_pass.cpp.o.d"
  "CMakeFiles/kshot_kcc.dir/lexer.cpp.o"
  "CMakeFiles/kshot_kcc.dir/lexer.cpp.o.d"
  "CMakeFiles/kshot_kcc.dir/parser.cpp.o"
  "CMakeFiles/kshot_kcc.dir/parser.cpp.o.d"
  "CMakeFiles/kshot_kcc.dir/printer.cpp.o"
  "CMakeFiles/kshot_kcc.dir/printer.cpp.o.d"
  "libkshot_kcc.a"
  "libkshot_kcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshot_kcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
