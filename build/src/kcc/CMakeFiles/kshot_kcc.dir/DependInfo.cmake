
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kcc/ast.cpp" "src/kcc/CMakeFiles/kshot_kcc.dir/ast.cpp.o" "gcc" "src/kcc/CMakeFiles/kshot_kcc.dir/ast.cpp.o.d"
  "/root/repo/src/kcc/codegen.cpp" "src/kcc/CMakeFiles/kshot_kcc.dir/codegen.cpp.o" "gcc" "src/kcc/CMakeFiles/kshot_kcc.dir/codegen.cpp.o.d"
  "/root/repo/src/kcc/compiler.cpp" "src/kcc/CMakeFiles/kshot_kcc.dir/compiler.cpp.o" "gcc" "src/kcc/CMakeFiles/kshot_kcc.dir/compiler.cpp.o.d"
  "/root/repo/src/kcc/constfold.cpp" "src/kcc/CMakeFiles/kshot_kcc.dir/constfold.cpp.o" "gcc" "src/kcc/CMakeFiles/kshot_kcc.dir/constfold.cpp.o.d"
  "/root/repo/src/kcc/eval.cpp" "src/kcc/CMakeFiles/kshot_kcc.dir/eval.cpp.o" "gcc" "src/kcc/CMakeFiles/kshot_kcc.dir/eval.cpp.o.d"
  "/root/repo/src/kcc/image.cpp" "src/kcc/CMakeFiles/kshot_kcc.dir/image.cpp.o" "gcc" "src/kcc/CMakeFiles/kshot_kcc.dir/image.cpp.o.d"
  "/root/repo/src/kcc/inline_pass.cpp" "src/kcc/CMakeFiles/kshot_kcc.dir/inline_pass.cpp.o" "gcc" "src/kcc/CMakeFiles/kshot_kcc.dir/inline_pass.cpp.o.d"
  "/root/repo/src/kcc/lexer.cpp" "src/kcc/CMakeFiles/kshot_kcc.dir/lexer.cpp.o" "gcc" "src/kcc/CMakeFiles/kshot_kcc.dir/lexer.cpp.o.d"
  "/root/repo/src/kcc/parser.cpp" "src/kcc/CMakeFiles/kshot_kcc.dir/parser.cpp.o" "gcc" "src/kcc/CMakeFiles/kshot_kcc.dir/parser.cpp.o.d"
  "/root/repo/src/kcc/printer.cpp" "src/kcc/CMakeFiles/kshot_kcc.dir/printer.cpp.o" "gcc" "src/kcc/CMakeFiles/kshot_kcc.dir/printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kshot_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/kshot_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/kshot_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
