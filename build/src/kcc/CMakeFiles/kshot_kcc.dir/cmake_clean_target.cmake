file(REMOVE_RECURSE
  "libkshot_kcc.a"
)
