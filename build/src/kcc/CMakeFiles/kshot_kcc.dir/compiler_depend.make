# Empty compiler generated dependencies file for kshot_kcc.
# This may be replaced when dependencies are built.
