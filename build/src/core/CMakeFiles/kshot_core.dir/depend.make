# Empty dependencies file for kshot_core.
# This may be replaced when dependencies are built.
