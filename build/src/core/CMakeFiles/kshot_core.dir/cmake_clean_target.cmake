file(REMOVE_RECURSE
  "libkshot_core.a"
)
