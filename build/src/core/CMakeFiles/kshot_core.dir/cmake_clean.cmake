file(REMOVE_RECURSE
  "CMakeFiles/kshot_core.dir/kshot.cpp.o"
  "CMakeFiles/kshot_core.dir/kshot.cpp.o.d"
  "CMakeFiles/kshot_core.dir/kshot_enclave.cpp.o"
  "CMakeFiles/kshot_core.dir/kshot_enclave.cpp.o.d"
  "CMakeFiles/kshot_core.dir/mailbox.cpp.o"
  "CMakeFiles/kshot_core.dir/mailbox.cpp.o.d"
  "CMakeFiles/kshot_core.dir/smm_handler.cpp.o"
  "CMakeFiles/kshot_core.dir/smm_handler.cpp.o.d"
  "libkshot_core.a"
  "libkshot_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshot_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
