file(REMOVE_RECURSE
  "CMakeFiles/kshot_attacks.dir/network_attacks.cpp.o"
  "CMakeFiles/kshot_attacks.dir/network_attacks.cpp.o.d"
  "CMakeFiles/kshot_attacks.dir/rootkits.cpp.o"
  "CMakeFiles/kshot_attacks.dir/rootkits.cpp.o.d"
  "libkshot_attacks.a"
  "libkshot_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshot_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
