# Empty compiler generated dependencies file for kshot_attacks.
# This may be replaced when dependencies are built.
