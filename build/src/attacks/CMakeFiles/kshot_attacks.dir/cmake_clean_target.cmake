file(REMOVE_RECURSE
  "libkshot_attacks.a"
)
