file(REMOVE_RECURSE
  "libkshot_machine.a"
)
