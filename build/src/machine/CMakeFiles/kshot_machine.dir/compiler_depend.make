# Empty compiler generated dependencies file for kshot_machine.
# This may be replaced when dependencies are built.
