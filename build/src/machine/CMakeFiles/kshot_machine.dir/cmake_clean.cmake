file(REMOVE_RECURSE
  "CMakeFiles/kshot_machine.dir/machine.cpp.o"
  "CMakeFiles/kshot_machine.dir/machine.cpp.o.d"
  "CMakeFiles/kshot_machine.dir/phys_mem.cpp.o"
  "CMakeFiles/kshot_machine.dir/phys_mem.cpp.o.d"
  "libkshot_machine.a"
  "libkshot_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshot_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
