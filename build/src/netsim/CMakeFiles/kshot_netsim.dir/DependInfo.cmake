
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/channel.cpp" "src/netsim/CMakeFiles/kshot_netsim.dir/channel.cpp.o" "gcc" "src/netsim/CMakeFiles/kshot_netsim.dir/channel.cpp.o.d"
  "/root/repo/src/netsim/patch_server.cpp" "src/netsim/CMakeFiles/kshot_netsim.dir/patch_server.cpp.o" "gcc" "src/netsim/CMakeFiles/kshot_netsim.dir/patch_server.cpp.o.d"
  "/root/repo/src/netsim/protocol.cpp" "src/netsim/CMakeFiles/kshot_netsim.dir/protocol.cpp.o" "gcc" "src/netsim/CMakeFiles/kshot_netsim.dir/protocol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kshot_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/kshot_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/kcc/CMakeFiles/kshot_kcc.dir/DependInfo.cmake"
  "/root/repo/build/src/patchtool/CMakeFiles/kshot_patchtool.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/kshot_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/kshot_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/kshot_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/kshot_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
