# Empty compiler generated dependencies file for kshot_netsim.
# This may be replaced when dependencies are built.
