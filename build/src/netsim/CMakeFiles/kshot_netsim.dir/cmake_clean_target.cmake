file(REMOVE_RECURSE
  "libkshot_netsim.a"
)
