file(REMOVE_RECURSE
  "CMakeFiles/kshot_netsim.dir/channel.cpp.o"
  "CMakeFiles/kshot_netsim.dir/channel.cpp.o.d"
  "CMakeFiles/kshot_netsim.dir/patch_server.cpp.o"
  "CMakeFiles/kshot_netsim.dir/patch_server.cpp.o.d"
  "CMakeFiles/kshot_netsim.dir/protocol.cpp.o"
  "CMakeFiles/kshot_netsim.dir/protocol.cpp.o.d"
  "libkshot_netsim.a"
  "libkshot_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshot_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
