file(REMOVE_RECURSE
  "CMakeFiles/kshot_kernel.dir/ftrace.cpp.o"
  "CMakeFiles/kshot_kernel.dir/ftrace.cpp.o.d"
  "CMakeFiles/kshot_kernel.dir/kernel.cpp.o"
  "CMakeFiles/kshot_kernel.dir/kernel.cpp.o.d"
  "CMakeFiles/kshot_kernel.dir/scheduler.cpp.o"
  "CMakeFiles/kshot_kernel.dir/scheduler.cpp.o.d"
  "libkshot_kernel.a"
  "libkshot_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshot_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
