file(REMOVE_RECURSE
  "libkshot_kernel.a"
)
