# Empty dependencies file for kshot_kernel.
# This may be replaced when dependencies are built.
