file(REMOVE_RECURSE
  "libkshot_cve.a"
)
