
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cve/suite.cpp" "src/cve/CMakeFiles/kshot_cve.dir/suite.cpp.o" "gcc" "src/cve/CMakeFiles/kshot_cve.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kshot_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kcc/CMakeFiles/kshot_kcc.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/kshot_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/kshot_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
