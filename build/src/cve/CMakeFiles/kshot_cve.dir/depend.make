# Empty dependencies file for kshot_cve.
# This may be replaced when dependencies are built.
