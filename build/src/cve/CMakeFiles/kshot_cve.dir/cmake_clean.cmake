file(REMOVE_RECURSE
  "CMakeFiles/kshot_cve.dir/suite.cpp.o"
  "CMakeFiles/kshot_cve.dir/suite.cpp.o.d"
  "libkshot_cve.a"
  "libkshot_cve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshot_cve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
