# CMake generated Testfile for 
# Source directory: /root/repo/src/cve
# Build directory: /root/repo/build/src/cve
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
