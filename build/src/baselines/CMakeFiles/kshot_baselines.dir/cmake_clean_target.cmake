file(REMOVE_RECURSE
  "libkshot_baselines.a"
)
