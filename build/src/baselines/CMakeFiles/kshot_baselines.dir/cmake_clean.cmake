file(REMOVE_RECURSE
  "CMakeFiles/kshot_baselines.dir/karma_sim.cpp.o"
  "CMakeFiles/kshot_baselines.dir/karma_sim.cpp.o.d"
  "CMakeFiles/kshot_baselines.dir/kpatch_sim.cpp.o"
  "CMakeFiles/kshot_baselines.dir/kpatch_sim.cpp.o.d"
  "CMakeFiles/kshot_baselines.dir/kup_sim.cpp.o"
  "CMakeFiles/kshot_baselines.dir/kup_sim.cpp.o.d"
  "libkshot_baselines.a"
  "libkshot_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshot_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
