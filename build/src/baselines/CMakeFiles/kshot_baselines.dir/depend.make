# Empty dependencies file for kshot_baselines.
# This may be replaced when dependencies are built.
