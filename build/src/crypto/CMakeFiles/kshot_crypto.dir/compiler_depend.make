# Empty compiler generated dependencies file for kshot_crypto.
# This may be replaced when dependencies are built.
