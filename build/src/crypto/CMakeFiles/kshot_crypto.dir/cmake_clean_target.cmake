file(REMOVE_RECURSE
  "libkshot_crypto.a"
)
