file(REMOVE_RECURSE
  "CMakeFiles/kshot_crypto.dir/aead.cpp.o"
  "CMakeFiles/kshot_crypto.dir/aead.cpp.o.d"
  "CMakeFiles/kshot_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/kshot_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/kshot_crypto.dir/hmac.cpp.o"
  "CMakeFiles/kshot_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/kshot_crypto.dir/sha256.cpp.o"
  "CMakeFiles/kshot_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/kshot_crypto.dir/simple_hash.cpp.o"
  "CMakeFiles/kshot_crypto.dir/simple_hash.cpp.o.d"
  "CMakeFiles/kshot_crypto.dir/x25519.cpp.o"
  "CMakeFiles/kshot_crypto.dir/x25519.cpp.o.d"
  "libkshot_crypto.a"
  "libkshot_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshot_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
