file(REMOVE_RECURSE
  "CMakeFiles/kshot-sim.dir/kshot_sim.cpp.o"
  "CMakeFiles/kshot-sim.dir/kshot_sim.cpp.o.d"
  "kshot-sim"
  "kshot-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshot-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
