# Empty compiler generated dependencies file for kshot-sim.
# This may be replaced when dependencies are built.
