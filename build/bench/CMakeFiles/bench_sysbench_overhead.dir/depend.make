# Empty dependencies file for bench_sysbench_overhead.
# This may be replaced when dependencies are built.
