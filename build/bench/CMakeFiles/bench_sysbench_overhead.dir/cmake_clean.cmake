file(REMOVE_RECURSE
  "CMakeFiles/bench_sysbench_overhead.dir/bench_sysbench_overhead.cpp.o"
  "CMakeFiles/bench_sysbench_overhead.dir/bench_sysbench_overhead.cpp.o.d"
  "bench_sysbench_overhead"
  "bench_sysbench_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sysbench_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
