# Empty dependencies file for bench_table1_cves.
# This may be replaced when dependencies are built.
