file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_chunked.dir/bench_ablation_chunked.cpp.o"
  "CMakeFiles/bench_ablation_chunked.dir/bench_ablation_chunked.cpp.o.d"
  "bench_ablation_chunked"
  "bench_ablation_chunked.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_chunked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
