# Empty compiler generated dependencies file for bench_ablation_chunked.
# This may be replaced when dependencies are built.
