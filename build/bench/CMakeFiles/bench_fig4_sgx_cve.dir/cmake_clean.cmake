file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_sgx_cve.dir/bench_fig4_sgx_cve.cpp.o"
  "CMakeFiles/bench_fig4_sgx_cve.dir/bench_fig4_sgx_cve.cpp.o.d"
  "bench_fig4_sgx_cve"
  "bench_fig4_sgx_cve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_sgx_cve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
