# Empty dependencies file for bench_fig4_sgx_cve.
# This may be replaced when dependencies are built.
