# Empty compiler generated dependencies file for bench_fig5_smm_cve.
# This may be replaced when dependencies are built.
