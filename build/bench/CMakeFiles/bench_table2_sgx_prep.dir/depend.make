# Empty dependencies file for bench_table2_sgx_prep.
# This may be replaced when dependencies are built.
