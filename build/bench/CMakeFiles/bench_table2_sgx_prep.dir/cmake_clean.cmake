file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_sgx_prep.dir/bench_table2_sgx_prep.cpp.o"
  "CMakeFiles/bench_table2_sgx_prep.dir/bench_table2_sgx_prep.cpp.o.d"
  "bench_table2_sgx_prep"
  "bench_table2_sgx_prep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_sgx_prep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
