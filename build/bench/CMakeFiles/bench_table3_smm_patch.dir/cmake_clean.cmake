file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_smm_patch.dir/bench_table3_smm_patch.cpp.o"
  "CMakeFiles/bench_table3_smm_patch.dir/bench_table3_smm_patch.cpp.o.d"
  "bench_table3_smm_patch"
  "bench_table3_smm_patch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_smm_patch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
