# Empty dependencies file for bench_table3_smm_patch.
# This may be replaced when dependencies are built.
