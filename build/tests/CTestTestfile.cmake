# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_kcc[1]_include.cmake")
include("/root/repo/build/tests/test_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_sgx[1]_include.cmake")
include("/root/repo/build/tests/test_patchtool[1]_include.cmake")
include("/root/repo/build/tests/test_netsim[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_cves[1]_include.cmake")
include("/root/repo/build/tests/test_security[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_ftrace[1]_include.cmake")
include("/root/repo/build/tests/test_eval_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_guard[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_baselines_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_batch[1]_include.cmake")
include("/root/repo/build/tests/test_chunked[1]_include.cmake")
