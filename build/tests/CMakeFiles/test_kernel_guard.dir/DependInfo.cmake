
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_kernel_guard.cpp" "tests/CMakeFiles/test_kernel_guard.dir/test_kernel_guard.cpp.o" "gcc" "tests/CMakeFiles/test_kernel_guard.dir/test_kernel_guard.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kshot_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/kshot_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/kshot_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/kshot_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/kcc/CMakeFiles/kshot_kcc.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/kshot_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/kshot_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/patchtool/CMakeFiles/kshot_patchtool.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/kshot_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/kshot_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/kshot_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/kshot_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/cve/CMakeFiles/kshot_cve.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/kshot_testbed.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
