# Empty dependencies file for test_kernel_guard.
# This may be replaced when dependencies are built.
