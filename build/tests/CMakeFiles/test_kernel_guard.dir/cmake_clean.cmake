file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_guard.dir/test_kernel_guard.cpp.o"
  "CMakeFiles/test_kernel_guard.dir/test_kernel_guard.cpp.o.d"
  "test_kernel_guard"
  "test_kernel_guard.pdb"
  "test_kernel_guard[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
