file(REMOVE_RECURSE
  "CMakeFiles/test_ftrace.dir/test_ftrace.cpp.o"
  "CMakeFiles/test_ftrace.dir/test_ftrace.cpp.o.d"
  "test_ftrace"
  "test_ftrace.pdb"
  "test_ftrace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ftrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
