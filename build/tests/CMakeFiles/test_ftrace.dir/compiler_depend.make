# Empty compiler generated dependencies file for test_ftrace.
# This may be replaced when dependencies are built.
