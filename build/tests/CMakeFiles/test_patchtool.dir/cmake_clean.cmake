file(REMOVE_RECURSE
  "CMakeFiles/test_patchtool.dir/test_patchtool.cpp.o"
  "CMakeFiles/test_patchtool.dir/test_patchtool.cpp.o.d"
  "test_patchtool"
  "test_patchtool.pdb"
  "test_patchtool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_patchtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
