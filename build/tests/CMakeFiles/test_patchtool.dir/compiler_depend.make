# Empty compiler generated dependencies file for test_patchtool.
# This may be replaced when dependencies are built.
