file(REMOVE_RECURSE
  "CMakeFiles/test_cves.dir/test_cves.cpp.o"
  "CMakeFiles/test_cves.dir/test_cves.cpp.o.d"
  "test_cves"
  "test_cves.pdb"
  "test_cves[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
