# Empty compiler generated dependencies file for test_cves.
# This may be replaced when dependencies are built.
