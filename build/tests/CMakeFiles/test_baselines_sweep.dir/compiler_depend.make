# Empty compiler generated dependencies file for test_baselines_sweep.
# This may be replaced when dependencies are built.
