file(REMOVE_RECURSE
  "CMakeFiles/test_baselines_sweep.dir/test_baselines_sweep.cpp.o"
  "CMakeFiles/test_baselines_sweep.dir/test_baselines_sweep.cpp.o.d"
  "test_baselines_sweep"
  "test_baselines_sweep.pdb"
  "test_baselines_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baselines_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
