file(REMOVE_RECURSE
  "CMakeFiles/test_eval_fuzz.dir/test_eval_fuzz.cpp.o"
  "CMakeFiles/test_eval_fuzz.dir/test_eval_fuzz.cpp.o.d"
  "test_eval_fuzz"
  "test_eval_fuzz.pdb"
  "test_eval_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eval_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
