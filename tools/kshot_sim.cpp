// kshot-sim — command-line driver for the KShot simulation.
//
//   kshot-sim list                         table of all CVE benchmark cases
//   kshot-sim patch <CVE-ID> [flags]       run the live-patch scenario
//       --rootkit      load the reversion rootkit first
//       --watchdog     arm the periodic-SMI introspection watchdog
//       --guard        arm the kernel-text guard
//       --kpatch       use the kpatch baseline instead of KShot
//   kshot-sim disasm <CVE-ID> <function>   disassemble a kernel function
//   kshot-sim package <CVE-ID>             show the built patch set / wire
//   kshot-sim exploit <CVE-ID>             just demonstrate the exploit
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "attacks/rootkits.hpp"
#include "baselines/kpatch_sim.hpp"
#include "common/hex.hpp"
#include "isa/disasm.hpp"
#include "patchtool/package.hpp"
#include "testbed/testbed.hpp"

using namespace kshot;

namespace {

int cmd_list() {
  std::printf("%-16s %-9s %4s %-5s %s\n", "CVE", "kernel", "LoC", "types",
              "affected functions");
  for (const auto& c : cve::all_cases()) {
    std::string fns;
    for (size_t i = 0; i < c.functions.size(); ++i) {
      if (i) fns += ", ";
      fns += c.functions[i];
    }
    std::printf("%-16s %-9s %4d %-5s %s\n", c.id.c_str(), c.kernel.c_str(),
                c.patch_loc, c.types.c_str(), fns.c_str());
  }
  return 0;
}

int cmd_exploit(const std::string& id) {
  const auto& c = cve::find_case(id);
  auto tb = testbed::Testbed::boot(c, {});
  if (!tb.is_ok()) {
    std::fprintf(stderr, "boot failed: %s\n", tb.status().to_string().c_str());
    return 1;
  }
  auto e = (*tb)->run_exploit();
  if (!e.is_ok()) {
    std::fprintf(stderr, "%s\n", e.status().to_string().c_str());
    return 1;
  }
  std::printf("syscall(%d, 0x%llx) -> %s\n", c.syscall_nr,
              static_cast<unsigned long long>(c.exploit_args[0]),
              e->oops ? "KERNEL OOPS" : "no oops");
  return 0;
}

int cmd_patch(const std::string& id, bool rootkit, bool watchdog, bool guard,
              bool use_kpatch) {
  const auto& c = cve::find_case(id);
  testbed::TestbedOptions opts;
  opts.workload_threads = 2;
  if (watchdog) opts.watchdog_interval_cycles = 50'000;
  auto tb = testbed::Testbed::boot(c, opts);
  if (!tb.is_ok()) {
    std::fprintf(stderr, "boot failed: %s\n", tb.status().to_string().c_str());
    return 1;
  }
  testbed::Testbed& t = **tb;
  if (guard && !t.kshot().arm_kernel_guard().is_ok()) {
    std::fprintf(stderr, "guard arming failed\n");
    return 1;
  }
  if (rootkit) {
    t.kernel().insmod(
        std::make_shared<attacks::ReversionRootkit>(t.pre_image()));
    std::printf("[attack] reversion rootkit resident\n");
  }

  auto pre = t.run_exploit();
  std::printf("exploit before: %s\n",
              pre.is_ok() && pre->oops ? "fires" : "no effect");

  if (use_kpatch) {
    baselines::KpatchSim kpatch(t.kernel(), t.scheduler());
    auto set = t.server().build_patchset(c.id, t.kernel().os_info());
    if (!set.is_ok()) {
      std::fprintf(stderr, "%s\n", set.status().to_string().c_str());
      return 1;
    }
    auto rep = kpatch.apply(*set);
    std::printf("kpatch: %s\n", rep.is_ok() && rep->success
                                    ? "applied"
                                    : rep->detail.c_str());
  } else {
    auto rep = t.kshot().live_patch(c.id);
    if (!rep.is_ok() || !rep->success) {
      std::fprintf(stderr, "live patch failed\n");
      return 1;
    }
    std::printf(
        "kshot: %u fn / %u bytes; SGX %.1fus; OS paused %.1fus (modeled)\n",
        rep->stats.functions, rep->stats.code_bytes, rep->sgx.total_us(),
        rep->smm.modeled_total_us);
  }

  t.scheduler().run(1000, 64);  // let attackers/watchdog act
  // Operator verification sweep (the remote server's final check): without
  // it, checking at an arbitrary instant races the rootkit's last tick.
  if (!use_kpatch) t.kshot().introspect();

  auto post = t.run_exploit();
  std::printf("exploit after (post attack window): %s\n",
              post.is_ok() && post->oops ? "STILL FIRES" : "dead");
  return post.is_ok() && !post->oops ? 0 : 1;
}

int cmd_disasm(const std::string& id, const std::string& fn) {
  const auto& c = cve::find_case(id);
  auto tb = testbed::Testbed::boot(c, {.install_kshot = false});
  if (!tb.is_ok()) return 1;
  const auto& img = (*tb)->kernel().image();
  const kcc::Symbol* sym = img.find_symbol(fn);
  if (sym == nullptr) {
    std::fprintf(stderr, "no such function; available:\n");
    for (const auto& s : img.symbols) {
      std::fprintf(stderr, "  %s\n", s.name.c_str());
    }
    return 1;
  }
  auto body = img.function_bytes(fn);
  std::printf("%s @ 0x%llx (%u bytes%s)\n%s", fn.c_str(),
              static_cast<unsigned long long>(sym->addr), sym->size,
              sym->traced ? ", traced" : "",
              isa::disassemble(*body, sym->addr).c_str());
  return 0;
}

int cmd_package(const std::string& id) {
  const auto& c = cve::find_case(id);
  auto tb = testbed::Testbed::boot(c, {.install_kshot = false});
  if (!tb.is_ok()) return 1;
  auto set = (*tb)->server().build_patchset(id, (*tb)->kernel().os_info());
  if (!set.is_ok()) {
    std::fprintf(stderr, "%s\n", set.status().to_string().c_str());
    return 1;
  }
  std::printf("patch set %s (kernel %s): %zu function(s)\n",
              set->id.c_str(), set->kernel_version.c_str(),
              set->patches.size());
  for (const auto& p : set->patches) {
    std::printf(
        "  [%u] %-36s type %d  taddr=0x%llx  %zuB code, %zu relocs, %zu var "
        "edits%s\n",
        p.sequence, p.name.c_str(), static_cast<int>(p.type),
        static_cast<unsigned long long>(p.taddr), p.code.size(),
        p.relocs.size(), p.var_edits.size(),
        p.ftrace_off ? "  (ftrace pad)" : "");
  }
  Bytes wire = patchtool::serialize_patchset(*set, patchtool::PatchOp::kPatch);
  std::printf("wire package: %zu bytes; first 64:\n%s", wire.size(),
              hexdump(ByteSpan(wire).subspan(
                          0, std::min<size_t>(64, wire.size())))
                  .c_str());
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: kshot-sim list\n"
               "       kshot-sim exploit <CVE-ID>\n"
               "       kshot-sim patch <CVE-ID> [--rootkit] [--watchdog] "
               "[--guard] [--kpatch]\n"
               "       kshot-sim disasm <CVE-ID> <function>\n"
               "       kshot-sim package <CVE-ID>\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    usage();
    return 2;
  }
  const std::string& cmd = args[0];
  auto has_flag = [&](const char* f) {
    for (const auto& a : args) {
      if (a == f) return true;
    }
    return false;
  };

  if (cmd == "list") return cmd_list();
  if (cmd == "exploit" && args.size() >= 2) return cmd_exploit(args[1]);
  if (cmd == "patch" && args.size() >= 2) {
    return cmd_patch(args[1], has_flag("--rootkit"), has_flag("--watchdog"),
                     has_flag("--guard"), has_flag("--kpatch"));
  }
  if (cmd == "disasm" && args.size() >= 3) return cmd_disasm(args[1], args[2]);
  if (cmd == "package" && args.size() >= 2) return cmd_package(args[1]);
  usage();
  return 2;
}
